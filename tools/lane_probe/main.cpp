// lane_probe: print which int8 GEMM kernel lane the runtime dispatcher
// resolves on this host, plus the compiled/supported lane inventory.
//
// CI builds this tool in a tree configured with -DDARPA_NATIVE_SIMD=OFF
// and asserts `--require avx2` on AVX2 hosts: the SIMD lanes are compiled
// via per-function target attributes (src/nn/kernels/), so the *default*
// build — no -march=native anywhere — must still dispatch the widest lane
// the CPU supports. A failure here means the target-attribute build
// strategy regressed and production binaries silently fell back to the
// scalar reference lane.
//
// Usage:
//   lane_probe                 # print active/compiled/supported, exit 0
//   lane_probe --require LANE  # additionally exit 1 unless active == LANE
//
// DARPA_KERNEL is honored (the probe goes through the same resolver as
// production), so `DARPA_KERNEL=scalar lane_probe --require scalar` also
// exercises the override path.
#include <cstdio>
#include <cstring>

#include "nn/kernels/int8_kernels.h"

namespace {

using darpa::nn::kernels::Int8Lane;
using darpa::nn::kernels::kInt8LaneCount;
using darpa::nn::kernels::laneCompiled;
using darpa::nn::kernels::laneName;
using darpa::nn::kernels::laneSupported;

void printInventory(const char* label, bool (*pred)(Int8Lane)) {
  std::printf("%s=", label);
  bool first = true;
  for (int i = 0; i < kInt8LaneCount; ++i) {
    const auto lane = static_cast<Int8Lane>(i);
    if (!pred(lane)) continue;
    std::printf("%s%s", first ? "" : ",", laneName(lane));
    first = false;
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const darpa::nn::kernels::Int8Kernel& active =
      darpa::nn::kernels::activeInt8Kernel();
  std::printf("active=%s\n", active.name);
  printInventory("compiled", laneCompiled);
  printInventory("supported", laneSupported);

  if (argc == 3 && std::strcmp(argv[1], "--require") == 0) {
    if (std::strcmp(active.name, argv[2]) != 0) {
      std::fprintf(stderr,
                   "lane_probe: dispatcher resolved '%s' but '%s' was "
                   "required\n",
                   active.name, argv[2]);
      return 1;
    }
  } else if (argc != 1) {
    std::fprintf(stderr, "usage: lane_probe [--require LANE]\n");
    return 2;
  }
  return 0;
}
