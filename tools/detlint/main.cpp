// detlint — the determinism & concurrency source linter for this repo.
//
// DARPA's thesis is that a cheap static pass in front of an expensive
// runtime path pays for itself (the AUI lint in src/analysis). detlint
// applies the same idea to this codebase's own contracts: the properties
// the last five PRs guarded by hand-review — bit-identical fig8/Table III/
// Table VII/bench digests across worker counts, pooling modes, and
// batched/scalar lanes — are exactly the properties a grep-level scanner
// can enforce mechanically, before TSan or a digest-diff ever runs.
//
// Rules (ids are stable; see DESIGN.md §12 for the catalog):
//
//   wall-clock-in-digest-path
//       wallMicros / std::chrono / steady_clock / gettimeofday / ... inside
//       digest-affecting code. Wall time varies run to run; anything it
//       feeds cannot be byte-stable. The WorkLedger's observability axis is
//       the one audited exception (explicit allow regions).
//   ambient-rng-in-digest-path
//       rand / srand / std::random_device / arc4random inside
//       digest-affecting code. All randomness must flow from the seeded
//       util::Rng so reruns replay exactly.
//   unordered-iteration-in-digest-path
//       Range-for or .begin()/.cbegin() over a std::unordered_map/set
//       declared in the same file, inside digest-affecting code. Hash
//       order is salted per process; iterating it leaks that order into
//       results. Membership ops (find/count/insert/erase) stay legal.
//   pointer-keyed-ordered-container
//       std::map/std::set keyed by a pointer type in digest-affecting
//       code. Ordered iteration over addresses is allocation-order — i.e.
//       nondeterministic across runs — wearing a deterministic disguise.
//   env-config-in-digest-path
//       getenv / secure_getenv / __builtin_cpu_supports / __get_cpuid
//       inside digest-affecting code. Ambient host configuration (env
//       vars, CPUID) varies machine to machine and deploy to deploy;
//       code that branches on it mid-computation produces digests that
//       depend on where the run happened. The one legal shape is
//       one-time init whose every outcome is bit-equal (the int8 kernel
//       dispatcher in src/nn/kernels/int8_dispatch.cpp: all lanes
//       produce identical bytes, so the CPUID/env read only picks a
//       speed) — documented with an explicit begin-allow region.
//   mutex-missing-guarded-by
//       A std::mutex / RankedMutex member whose file contains no
//       GUARDED_BY(<that mutex>) annotation. Applies everywhere (not only
//       digest paths): an unannotated mutex is invisible to the
//       -Wthread-safety lane, so its protected set is unchecked.
//   raw-mutex-in-fleet
//       A raw std::mutex member in fleet code (any file whose path
//       contains "fleet"). The work-stealing scheduler's deadlock-freedom
//       argument is the lock-rank order, and the rank validator only sees
//       RankedMutex — a raw std::mutex bypasses it, so a rank inversion
//       through that lock would go undetected until it deadlocks in
//       production.
//
// What counts as digest-affecting:
//   * Path rules: every file under src/ (the runtime + substrate that
//     feeds every digest). bench/ and tests/ are out of scope — benches
//     time themselves with wall clocks by design and assert their digest
//     contracts at run time.
//   * Region tags, for future digest code outside src/:
//         // detlint: digest-path begin
//         // detlint: digest-path end
//
// Suppressions, each carrying its audit trail in the comment:
//   * line:    ... // detlint: allow(rule-id[,rule-id]) reason
//   * region:  // detlint: begin-allow(rule-id) reason
//              // detlint: end-allow(rule-id)
//
// Modes:
//   detlint --root <repo-root>      lint <root>/src; exit 1 on findings
//   detlint --self-test <dir>       fixture mode: every file in <dir> is
//                                   scanned as digest-path code and its
//                                   "// expect: rule-id" markers must match
//                                   the findings exactly (each rule must
//                                   demonstrably fire, nothing extra).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct FileReport {
  std::vector<Finding> findings;
  /// Self-test expectations: (line, rule) from "// expect: rule" markers.
  std::vector<std::pair<int, std::string>> expected;
};

const char kRuleWallClock[] = "wall-clock-in-digest-path";
const char kRuleAmbientRng[] = "ambient-rng-in-digest-path";
const char kRuleUnorderedIter[] = "unordered-iteration-in-digest-path";
const char kRulePtrKeyed[] = "pointer-keyed-ordered-container";
const char kRuleEnvConfig[] = "env-config-in-digest-path";
const char kRuleMutexGuard[] = "mutex-missing-guarded-by";
const char kRuleRawMutexFleet[] = "raw-mutex-in-fleet";

/// Strips // and /* */ comments plus string/char literal CONTENTS from one
/// line, so banned tokens in comments or messages never fire. `inBlock`
/// carries /* */ state across lines. Literal delimiters are kept (the
/// stripped text stays roughly token-shaped).
std::string stripCommentsAndStrings(const std::string& line, bool& inBlock) {
  std::string out;
  out.reserve(line.size());
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (inBlock) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        inBlock = false;
        ++i;
      }
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      inBlock = true;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      out.push_back(quote);
      ++i;
      while (i < line.size() && line[i] != quote) {
        if (line[i] == '\\') ++i;  // skip escaped char
        ++i;
      }
      out.push_back(quote);
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Region/line state driven by the detlint directives in comments.
struct ScanState {
  bool inBlockComment = false;
  bool inDigestRegion = false;             ///< "digest-path begin" tag seen.
  std::set<std::string> allowRegions;      ///< Open begin-allow(rule)s.
  /// Names declared in this file as unordered containers / mutexes.
  std::set<std::string> unorderedNames;
  std::map<std::string, int> mutexDecls;   ///< name -> line declared.
  std::set<std::string> guardedByRefs;     ///< Names seen in GUARDED_BY().
  std::set<std::string> mutexAllowed;      ///< Mutex names with line allows.
  /// std::mutex (not RankedMutex) members: name -> line, for the
  /// fleet-path rank-bypass rule.
  std::map<std::string, int> rawMutexDecls;
  std::set<std::string> rawMutexAllowed;   ///< Raw-mutex names with allows.
};

/// Parses "// detlint: ..." directives and "// expect: ..." markers from
/// the RAW line (they live in comments on purpose).
void parseDirectives(const std::string& raw, int lineNo, ScanState& state,
                     std::set<std::string>& lineAllows, FileReport& report) {
  static const std::regex kDigestBegin(R"(//\s*detlint:\s*digest-path\s+begin)");
  static const std::regex kDigestEnd(R"(//\s*detlint:\s*digest-path\s+end)");
  static const std::regex kAllow(R"(//\s*detlint:\s*allow\(([^)]+)\))");
  static const std::regex kBeginAllow(R"(//\s*detlint:\s*begin-allow\(([^)]+)\))");
  static const std::regex kEndAllow(R"(//\s*detlint:\s*end-allow\(([^)]+)\))");
  static const std::regex kExpect(R"(//\s*expect:\s*([A-Za-z0-9-]+))");

  std::smatch m;
  if (std::regex_search(raw, m, kDigestBegin)) state.inDigestRegion = true;
  if (std::regex_search(raw, m, kDigestEnd)) state.inDigestRegion = false;

  auto splitRules = [](const std::string& list, std::set<std::string>& into) {
    std::stringstream ss(list);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      const auto first = rule.find_first_not_of(" \t");
      const auto last = rule.find_last_not_of(" \t");
      if (first != std::string::npos) {
        into.insert(rule.substr(first, last - first + 1));
      }
    }
  };
  if (std::regex_search(raw, m, kAllow)) splitRules(m[1].str(), lineAllows);
  if (std::regex_search(raw, m, kBeginAllow)) {
    std::set<std::string> rules;
    splitRules(m[1].str(), rules);
    state.allowRegions.insert(rules.begin(), rules.end());
  }
  if (std::regex_search(raw, m, kEndAllow)) {
    std::set<std::string> rules;
    splitRules(m[1].str(), rules);
    for (const std::string& rule : rules) state.allowRegions.erase(rule);
  }
  auto begin = std::sregex_iterator(raw.begin(), raw.end(), kExpect);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    report.expected.emplace_back(lineNo, (*it)[1].str());
  }
}

bool suppressed(const std::string& rule, const ScanState& state,
                const std::set<std::string>& lineAllows) {
  return lineAllows.count(rule) > 0 || state.allowRegions.count(rule) > 0;
}

/// Pass 1 over the stripped line: collect declarations the cross-line
/// rules need (unordered members, mutex members, GUARDED_BY references).
void collectDeclarations(const std::string& text, int lineNo, ScanState& state,
                         const std::set<std::string>& lineAllows) {
  // Declarations may end at end-of-line with the annotation macro on the
  // next line, hence the `$` alternative after the declared name.
  static const std::regex kUnorderedDecl(
      R"(std::unordered_(?:map|set)\s*<.*>\s+([A-Za-z_]\w*)\s*(?:[;={(]|$))");
  static const std::regex kMutexDecl(
      R"((?:std::mutex|RankedMutex)\s+([A-Za-z_]\w*)\s*(?:[;={]|$))");
  static const std::regex kRawMutexDecl(
      R"(std::mutex\s+([A-Za-z_]\w*)\s*(?:[;={]|$))");
  static const std::regex kGuardedBy(R"(GUARDED_BY\(\s*([A-Za-z_]\w*)\s*\))");

  std::smatch m;
  if (std::regex_search(text, m, kUnorderedDecl)) {
    state.unorderedNames.insert(m[1].str());
  }
  if (std::regex_search(text, m, kMutexDecl)) {
    const std::string name = m[1].str();
    state.mutexDecls.emplace(name, lineNo);
    if (lineAllows.count(kRuleMutexGuard) > 0) state.mutexAllowed.insert(name);
  }
  if (std::regex_search(text, m, kRawMutexDecl)) {
    const std::string name = m[1].str();
    state.rawMutexDecls.emplace(name, lineNo);
    if (lineAllows.count(kRuleRawMutexFleet) > 0) {
      state.rawMutexAllowed.insert(name);
    }
  }
  auto begin = std::sregex_iterator(text.begin(), text.end(), kGuardedBy);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    state.guardedByRefs.insert((*it)[1].str());
  }
}

/// Pass 2: the per-line digest-path rules.
void checkDigestRules(const std::string& text, const std::string& file,
                      int lineNo, const ScanState& state,
                      const std::set<std::string>& lineAllows,
                      FileReport& report) {
  struct TokenRule {
    const char* rule;
    std::regex pattern;
    const char* what;
  };
  static const std::vector<TokenRule> kTokenRules = {
      {kRuleWallClock,
       std::regex(R"(\bwallMicros\b|std::chrono\b|\bsteady_clock\b|\bsystem_clock\b|\bhigh_resolution_clock\b|\bclock_gettime\b|\bgettimeofday\b)"),
       "wall-clock read"},
      {kRuleAmbientRng,
       std::regex(R"(\brand\s*\(|\bsrand\s*\(|std::random_device\b|\brandom_device\b|\barc4random\b)"),
       "ambient (unseeded) randomness"},
      {kRulePtrKeyed,
       std::regex(R"(std::(?:map|set)\s*<\s*(?:const\s+)?[A-Za-z_][\w:]*\s*\*)"),
       "pointer-keyed ordered container (iteration order = address order)"},
      {kRuleEnvConfig,
       std::regex(R"(\bgetenv\s*\(|\bsecure_getenv\s*\(|__builtin_cpu_supports\b|__get_cpuid\b)"),
       "ambient host configuration read (env/CPUID); only legal as "
       "documented one-time init whose outcomes are all bit-equal"},
  };

  for (const TokenRule& tr : kTokenRules) {
    if (suppressed(tr.rule, state, lineAllows)) continue;
    if (std::regex_search(text, tr.pattern)) {
      report.findings.push_back(
          {file, lineNo, tr.rule,
           std::string(tr.what) + " in digest-affecting code"});
    }
  }

  if (!suppressed(kRuleUnorderedIter, state, lineAllows)) {
    static const std::regex kRangeFor(
        R"(for\s*\([^;)]*:\s*\*?([A-Za-z_]\w*)\s*\))");
    static const std::regex kBeginCall(R"(\b([A-Za-z_]\w*)\.c?begin\s*\()");
    std::smatch m;
    std::string hit;
    if (std::regex_search(text, m, kRangeFor) &&
        state.unorderedNames.count(m[1].str()) > 0) {
      hit = m[1].str();
    } else if (std::regex_search(text, m, kBeginCall) &&
               state.unorderedNames.count(m[1].str()) > 0) {
      hit = m[1].str();
    }
    if (!hit.empty()) {
      report.findings.push_back(
          {file, lineNo, kRuleUnorderedIter,
           "iteration over unordered container '" + hit +
               "' in digest-affecting code (hash order leaks into output)"});
    }
  }
}

/// Scans one file. `forceDigest` marks the whole file digest-affecting
/// (fixture mode and src/ path rule).
FileReport scanFile(const fs::path& path, const std::string& displayName,
                    bool forceDigest) {
  FileReport report;
  std::ifstream in(path);
  if (!in) {
    report.findings.push_back({displayName, 0, "io-error", "cannot open"});
    return report;
  }

  ScanState state;
  // The digest rules need the declaration table before flagging usage, and
  // members are routinely declared after use sites (class bodies list
  // methods first). Two passes over the buffered lines.
  std::vector<std::string> rawLines;
  for (std::string line; std::getline(in, line);) rawLines.push_back(line);

  {
    bool inBlock = false;
    int lineNo = 0;
    for (const std::string& raw : rawLines) {
      ++lineNo;
      std::set<std::string> lineAllows;
      FileReport scratch;  // declaration pass ignores expects/regions
      parseDirectives(raw, lineNo, state, lineAllows, scratch);
      const std::string text = stripCommentsAndStrings(raw, inBlock);
      collectDeclarations(text, lineNo, state, lineAllows);
    }
    // parseDirectives in the declaration pass may leave region state set;
    // reset everything positional for the checking pass.
    state.inBlockComment = false;
    state.inDigestRegion = false;
    state.allowRegions.clear();
  }

  bool inBlock = false;
  int lineNo = 0;
  for (const std::string& raw : rawLines) {
    ++lineNo;
    std::set<std::string> lineAllows;
    parseDirectives(raw, lineNo, state, lineAllows, report);
    const std::string text = stripCommentsAndStrings(raw, inBlock);
    const bool digest = forceDigest || state.inDigestRegion;
    if (digest) {
      checkDigestRules(text, displayName, lineNo, state, lineAllows, report);
    }
  }

  // File-scope rule: every mutex member must be referenced by a GUARDED_BY
  // somewhere in the same file (or carry an explicit allow).
  for (const auto& [name, declLine] : state.mutexDecls) {
    if (state.guardedByRefs.count(name) > 0) continue;
    if (state.mutexAllowed.count(name) > 0) continue;
    report.findings.push_back(
        {displayName, declLine, kRuleMutexGuard,
         "mutex member '" + name +
             "' has no GUARDED_BY(" + name +
             ") field in this file — its protected set is invisible to "
             "-Wthread-safety"});
  }

  // File-scope rule: fleet code — and the shared verdict tier, which sits
  // on the fleet's lock-rank spine at kVerdictTier — never declares a raw
  // std::mutex member; it must be a RankedMutex so the lock-rank validator
  // (the scheduler's deadlock-freedom argument) can see every acquisition.
  if (displayName.find("fleet") != std::string::npos ||
      displayName.find("verdict_tier") != std::string::npos) {
    for (const auto& [name, declLine] : state.rawMutexDecls) {
      if (state.rawMutexAllowed.count(name) > 0) continue;
      report.findings.push_back(
          {displayName, declLine, kRuleRawMutexFleet,
           "raw std::mutex member '" + name +
               "' in fleet code bypasses the lock-rank validator — use "
               "util::RankedMutex with a documented rank"});
    }
  }
  return report;
}

[[nodiscard]] bool isSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

/// Deterministically ordered source files under `dir` (the linter obeys
/// its own rules: no directory-entry hash order in its output).
std::vector<fs::path> collectFiles(const fs::path& dir) {
  std::vector<fs::path> files;
  if (!fs::exists(dir)) return files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && isSourceFile(entry.path())) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int lintTree(const fs::path& root) {
  const fs::path srcDir = root / "src";
  if (!fs::exists(srcDir)) {
    std::fprintf(stderr, "detlint: no src/ under %s\n", root.c_str());
    return 2;
  }
  std::vector<Finding> all;
  for (const fs::path& file : collectFiles(srcDir)) {
    const std::string display = fs::relative(file, root).generic_string();
    // Path rule: everything under src/ is digest-affecting.
    FileReport report = scanFile(file, display, /*forceDigest=*/true);
    all.insert(all.end(), report.findings.begin(), report.findings.end());
  }
  for (const Finding& f : all) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!all.empty()) {
    std::printf("detlint: %zu finding(s)\n", all.size());
    return 1;
  }
  std::printf("detlint: clean\n");
  return 0;
}

int selfTest(const fs::path& fixtureDir) {
  if (!fs::exists(fixtureDir)) {
    std::fprintf(stderr, "detlint: no fixture dir %s\n", fixtureDir.c_str());
    return 2;
  }
  int failures = 0;
  std::set<std::string> rulesFired;
  for (const fs::path& file : collectFiles(fixtureDir)) {
    const std::string display = file.filename().string();
    FileReport report = scanFile(file, display, /*forceDigest=*/true);

    std::multiset<std::pair<int, std::string>> expected(
        report.expected.begin(), report.expected.end());
    std::multiset<std::pair<int, std::string>> actual;
    for (const Finding& f : report.findings) {
      actual.insert({f.line, f.rule});
      rulesFired.insert(f.rule);
    }
    for (const auto& [line, rule] : expected) {
      if (actual.count({line, rule}) == 0) {
        std::printf("SELF-TEST FAIL %s:%d: expected [%s], did not fire\n",
                    display.c_str(), line, rule.c_str());
        ++failures;
      }
    }
    for (const auto& [line, rule] : actual) {
      if (expected.count({line, rule}) == 0) {
        std::printf("SELF-TEST FAIL %s:%d: unexpected [%s]\n", display.c_str(),
                    line, rule.c_str());
        ++failures;
      }
    }
  }
  // Coverage contract: the fixture suite must make every rule fire at
  // least once, or a silently dead rule would pass CI forever.
  for (const char* rule : {kRuleWallClock, kRuleAmbientRng, kRuleUnorderedIter,
                           kRulePtrKeyed, kRuleEnvConfig, kRuleMutexGuard,
                           kRuleRawMutexFleet}) {
    if (rulesFired.count(rule) == 0) {
      std::printf("SELF-TEST FAIL: rule [%s] fired on no fixture\n", rule);
      ++failures;
    }
  }
  if (failures > 0) {
    std::printf("detlint self-test: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("detlint self-test: all rules fire as expected\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() == 2 && args[0] == "--root") return lintTree(args[1]);
  if (args.size() == 2 && args[0] == "--self-test") return selfTest(args[1]);
  std::fprintf(stderr,
               "usage: detlint --root <repo-root> | --self-test <fixture-dir>\n");
  return 2;
}
