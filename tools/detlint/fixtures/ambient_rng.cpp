// Fixture: ambient-rng-in-digest-path — unseeded randomness can never
// reach digest-affecting code; all draws go through the seeded util::Rng.
#include <cstdlib>

namespace fixture {

int ambientDraw() {
  return rand();  // expect: ambient-rng-in-digest-path
}

void ambientSeed(unsigned seed) {
  srand(seed);  // expect: ambient-rng-in-digest-path
}

unsigned hardwareEntropy() {
  std::random_device rd;  // expect: ambient-rng-in-digest-path
  return rd();
}

// Identifiers merely containing "rand" must NOT fire.
int randomizedButSeeded(int randomSeedValue) {
  int brand = randomSeedValue;  // "brand", "randomSeedValue": no calls
  return brand;
}

}  // namespace fixture
