// Fixture: raw-mutex-in-fleet, verdict-tier scope — the shared verdict
// tier lives outside src/fleet/ (it is core code the fleet owns), but its
// shard stripes sit on the fleet's lock-rank spine at kVerdictTier, so
// the raw-mutex rule covers any path containing "verdict_tier" too. A raw
// std::mutex shard would be invisible to the rank validator, and a
// publish-under-flush ordering bug could hide there.
#include <mutex>
#include <vector>

#define GUARDED_BY(x)  // stand-in for util/thread_annotations.h
class RankedMutex;     // stand-in for util/lock_rank.h

namespace fixture {

class UnrankedTierShard {
 private:
  // Unguarded AND unranked: both file-scope rules fire on this line.
  std::mutex shardMutex_;  // expect: mutex-missing-guarded-by // expect: raw-mutex-in-fleet
  std::vector<int> entries_;
};

class AnnotatedTierShard {
 private:
  // GUARDED_BY keeps -Wthread-safety happy, but the validator still
  // cannot see the acquisitions: the tier-scope rule fires regardless.
  std::mutex lruMutex_;  // expect: raw-mutex-in-fleet
  std::vector<int> lru_ GUARDED_BY(lruMutex_);
};

class RankedTierShard {
 private:
  RankedMutex* stripe_ = nullptr;  // pointer, not a member mutex: clean
};

}  // namespace fixture
