// Fixture: a digest-path file written to the house rules produces zero
// findings — seeded randomness, simulated time, ordered iteration,
// annotated locking. This file doubles as the no-false-positive check for
// every rule: any finding here fails the self-test.
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#define GUARDED_BY(x)  // stand-in for util/thread_annotations.h

namespace fixture {

/// Seeded, replayable randomness (the util::Rng pattern).
class SeededRng {
 public:
  explicit SeededRng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_;
  }

 private:
  std::uint64_t state_;
};

/// Simulated time (the SimClock pattern) instead of any wall clock.
struct SimMillis {
  std::int64_t count = 0;
};

class Deterministic {
 public:
  std::int64_t total() const {
    std::int64_t sum = 0;
    for (const auto& [key, value] : ordered_) sum += value;  // ordered: fine
    return sum;
  }

  void record(const std::string& key, std::int64_t value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    guarded_.push_back(value);
    ordered_[key] += value;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::int64_t> guarded_ GUARDED_BY(mutex_);
  std::map<std::string, std::int64_t> ordered_ GUARDED_BY(mutex_);
};

}  // namespace fixture
