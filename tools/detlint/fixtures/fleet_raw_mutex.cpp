// Fixture: raw-mutex-in-fleet — fleet code (any path containing "fleet",
// like this file's name) must not declare raw std::mutex members: the
// lock-rank validator, which is the scheduler's deadlock-freedom argument,
// only instruments RankedMutex, so a raw mutex is a blind spot where a
// rank inversion can hide. A raw mutex WITH a GUARDED_BY still fires —
// thread-safety analysis and rank validation are separate gates.
#include <mutex>
#include <vector>

#define GUARDED_BY(x)  // stand-in for util/thread_annotations.h
class RankedMutex;     // stand-in for util/lock_rank.h

namespace fixture {

class SneakyScheduler {
 private:
  // Unguarded AND unranked: both file-scope rules fire on this line.
  std::mutex queueMutex_;  // expect: mutex-missing-guarded-by // expect: raw-mutex-in-fleet
  std::vector<int> runQueue_;
};

class AnnotatedButUnranked {
 private:
  // GUARDED_BY satisfies -Wthread-safety, but the validator still cannot
  // see this lock's acquisitions: the fleet rule fires regardless.
  std::mutex stateMutex_;  // expect: raw-mutex-in-fleet
  std::vector<int> state_ GUARDED_BY(stateMutex_);
};

class Ranked {
 private:
  RankedMutex* control_ = nullptr;  // pointer, not a member mutex: clean
};

class AllowedBridge {
 private:
  // A condition_variable interop shim may genuinely need a std::mutex;
  // that escape hatch carries its audit trail:
  std::mutex cvMutex_;  // detlint: allow(raw-mutex-in-fleet,mutex-missing-guarded-by) cv interop shim
};

}  // namespace fixture
