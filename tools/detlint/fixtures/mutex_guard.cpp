// Fixture: mutex-missing-guarded-by — a mutex member with no
// GUARDED_BY(<mutex>) in its file is invisible to -Wthread-safety: the
// analysis has nothing to check, so races in "protected" state compile
// clean. RankedMutex members obey the same rule.
#include <mutex>
#include <vector>

#define GUARDED_BY(x)  // stand-in for util/thread_annotations.h
class RankedMutex;     // stand-in for util/lock_rank.h

namespace fixture {

class Unguarded {
 private:
  // Distinct name from Guarded's mutex_ below: the rule is file-scoped by
  // mutex name, matching the one-mutex-per-file layout of the runtime.
  mutable std::mutex unguardedMutex_;  // expect: mutex-missing-guarded-by
  std::vector<int> queue_;  // which lock protects this? unchecked.
};

class Guarded {
 private:
  mutable std::mutex mutex_;
  std::vector<int> queue_ GUARDED_BY(mutex_);  // annotated: no finding
};

class UnguardedRanked {
 private:
  RankedMutex* lock() { return ranked_; }
  RankedMutex* ranked_ = nullptr;  // pointer, not a member mutex: no finding
};

class Allowed {
 private:
  // A mutex that genuinely guards nothing field-shaped (e.g. a registry
  // internal) documents itself out with a reasoned allow:
  mutable std::mutex barrier_;  // detlint: allow(mutex-missing-guarded-by) pure rendezvous
};

}  // namespace fixture
