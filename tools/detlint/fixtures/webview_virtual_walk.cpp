// Fixture: digest-path rules in a WebView virtual-tree walk. The hybrid
// UI dump feeds the screen fingerprint (and with it every fleet digest),
// so a virtual-subtree visitor is digest-affecting code: no wall clocks,
// no ambient randomness, no hash-ordered iteration, no pointer keys.
#include <chrono>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

struct VirtualNode {
  std::string virtualId;
  std::vector<VirtualNode> children;
};

// Timing a traversal with the wall clock poisons any digest derived from
// the visit (e.g. a "slow page" branch would flip run to run).
double timedWalk(const VirtualNode& root) {
  const auto t0 = std::chrono::steady_clock::now();  // expect: wall-clock-in-digest-path
  (void)root;
  const auto t1 = std::chrono::steady_clock::now();  // expect: wall-clock-in-digest-path
  return static_cast<double>((t1 - t0).count());
}

// Indexing virtual ids is fine; ITERATING the unordered index while
// emitting dump nodes leaks hash order into the fingerprint.
std::unordered_map<std::string, int> idIndex;

int emitInHashOrder() {
  int emitted = 0;
  for (const auto& [id, count] : idIndex) {  // expect: unordered-iteration-in-digest-path
    emitted += count + static_cast<int>(id.size());
  }
  return emitted;
}

// Pointer-keyed ordered containers sort by address — a virtual-node visit
// order keyed this way differs across allocations.
std::map<const VirtualNode*, int> visitOrder;  // expect: pointer-keyed-ordered-container

// Negative: document-order traversal over value containers is exactly what
// the iterative walk does, and must not fire.
int countNodes(const VirtualNode& root) {
  int count = 0;
  std::vector<const VirtualNode*> stack{&root};
  while (!stack.empty()) {
    const VirtualNode* node = stack.back();
    stack.pop_back();
    ++count;
    for (const VirtualNode& child : node->children) stack.push_back(&child);
  }
  return count;
}

// Negative: lookups into the unordered index (no iteration) are fine.
int lookupId(const std::string& id) {
  const auto it = idIndex.find(id);
  return it == idIndex.end() ? 0 : it->second;
}

// Negative: observability-only timing is allowed when explicitly waived.
// detlint: begin-allow(wall-clock-in-digest-path)
double allowedProbe() {
  return static_cast<double>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}
// detlint: end-allow(wall-clock-in-digest-path)

}  // namespace fixture
