// Fixture: wall-clock-in-digest-path must fire on every wall-clock read
// reachable from digest-affecting code, and the allow machinery must be
// able to carve out the audited observability axis.
#include <cstdint>

double wallMicros();  // expect: wall-clock-in-digest-path

namespace fixture {

double modeledCost() {
  // A digest-stable quantity computed from wall time: the canonical bug.
  return wallMicros() * 0.5;  // expect: wall-clock-in-digest-path
}

std::int64_t chronoRead() {
  return static_cast<std::int64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());  // expect: wall-clock-in-digest-path
}

// "steady_clock" in a comment must NOT fire (comments are stripped).
double commentOnly() { return 0.0; }

// detlint: begin-allow(wall-clock-in-digest-path) observability axis only
double observabilityAxis() { return wallMicros(); }
// detlint: end-allow(wall-clock-in-digest-path)

double lineAllow() {
  return wallMicros();  // detlint: allow(wall-clock-in-digest-path) audited
}

}  // namespace fixture
