// Fixture: pointer-keyed-ordered-container — a std::map/set keyed by a
// pointer iterates in address order, which is allocation order, which is
// nondeterministic across runs. Value-keyed ordered containers are fine.
#include <map>
#include <set>
#include <string>
#include <vector>

namespace fixture {

struct Detector {};

class Router {
 private:
  std::map<const Detector*, int> byDetector_;  // expect: pointer-keyed-ordered-container
  std::set<Detector*> live_;  // expect: pointer-keyed-ordered-container
  std::map<std::string, int> byName_;          // value-keyed: no finding
  std::map<int, std::vector<const Detector*>> byId_;  // pointer VALUES: fine
};

}  // namespace fixture
