// Fixture: unordered-iteration-in-digest-path — hash-order iteration
// leaks the per-process salt into anything it feeds. Membership ops and
// ordered-container iteration stay legal.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

class Tracker {
 public:
  std::int64_t total() const {
    std::int64_t sum = 0;
    for (const auto& [id, count] : counts_) {  // expect: unordered-iteration-in-digest-path
      sum += count;
    }
    return sum;
  }

  bool seen(std::uint64_t id) const {
    return ids_.find(id) != ids_.end();  // membership probe: no finding
  }

  auto firstEntry() const {
    return counts_.begin();  // expect: unordered-iteration-in-digest-path
  }

  std::int64_t orderedTotal() const {
    std::int64_t sum = 0;
    for (const auto& [id, count] : sorted_) {  // ordered map: no finding
      sum += count;
    }
    return sum;
  }

 private:
  std::unordered_map<std::uint64_t, std::int64_t> counts_;
  std::unordered_set<std::uint64_t> ids_;
  std::map<std::uint64_t, std::int64_t> sorted_;
};

}  // namespace fixture
