// Fixture: env-config-in-digest-path must fire on every ambient host
// configuration read (env vars, CPUID) in digest-affecting code, and the
// allow machinery must be able to carve out the one legal shape: a
// documented one-time init whose every outcome is bit-equal, like the
// int8 kernel dispatcher (src/nn/kernels/int8_dispatch.cpp).
#include <cstdlib>

extern "C" char* secure_getenv(const char*);  // expect: env-config-in-digest-path

namespace fixture {

int batchSizeFromEnv() {
  // Branching the computation on an env var: digests now depend on the
  // deploy environment. The canonical bug this rule exists for.
  const char* v = std::getenv("DARPA_BATCH");  // expect: env-config-in-digest-path
  return v != nullptr ? std::atoi(v) : 64;
}

bool debugFlag() {
  return secure_getenv("DARPA_DEBUG") != nullptr;  // expect: env-config-in-digest-path
}

int tileWidthFromCpu() {
  // Sizing a digest-affecting tile by CPUID: fp32 summation order would
  // change per host. (The int8 lanes dodge this with exact int32
  // accumulation — see the allowed region below.)
  return __builtin_cpu_supports("avx2") ? 8 : 4;  // expect: env-config-in-digest-path
}

// "getenv" or "__builtin_cpu_supports" in a comment must NOT fire, and
// neither must the token inside a string literal:
const char* docString() { return "set via getenv(DARPA_KERNEL)"; }

// The audited exception shape: a one-time lane pick where every outcome
// is bit-equal, so the ambient read selects a speed, never a value.
// detlint: begin-allow(env-config-in-digest-path) one-time init; all lanes bit-equal
inline int pickLaneOnce() {
  if (std::getenv("DARPA_KERNEL") != nullptr) return 0;
  return __builtin_cpu_supports("avx2") ? 2 : 1;
}
// detlint: end-allow(env-config-in-digest-path)

int lineAllow() {
  return std::getenv("X") ? 1 : 0;  // detlint: allow(env-config-in-digest-path) audited
}

}  // namespace fixture
