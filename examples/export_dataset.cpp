// Example: regenerate and export the D_aui dataset the way the paper
// releases it — COCO-style annotations plus screenshot images — so external
// tooling (or an actual YOLOv5 run) can consume it.
//
// Usage: example_export_dataset [output_dir] [num_samples]
#include <cstdio>
#include <cstdlib>

#include "dataset/export.h"

using namespace darpa;

int main(int argc, char** argv) {
  const std::string outDir = argc > 1 ? argv[1] : "daui_export";
  const int samples = argc > 2 ? std::atoi(argv[2]) : 60;

  dataset::DatasetConfig config;
  config.totalScreenshots = 1072;  // full paper-scale descriptor set
  config.seed = 2023;
  const dataset::AuiDataset data = dataset::AuiDataset::build(config);

  dataset::ExportOptions options;
  options.maxSamples = samples;
  std::printf("exporting %d of %zu samples to %s/ ...\n", samples, data.size(),
              outDir.c_str());
  const auto summary = dataset::exportCocoDataset(data, outDir, options);
  if (!summary) {
    std::fprintf(stderr, "export failed (I/O error)\n");
    return 1;
  }
  std::printf("wrote %d images and %d annotations\n", summary->images,
              summary->annotations);
  std::printf("annotations: %s\n", summary->annotationsPath.c_str());
  std::printf("images:      %s/images/*.ppm\n", outDir.c_str());
  std::printf("\ncategories: 1 = AGO (app-guided option), 2 = UPO "
              "(user-preferred option)\n");
  return 0;
}
