// Example: the app-store / regulator use case (paper §VII).
//
// DARPA's detector is not only a user-side mitigation: a market operator
// can sweep submitted apps for asymmetric dark UIs. This example audits a
// population of synthetic apps with Monkey sessions, ranks them by AUI
// pressure (exposures per minute and whether the escape option is a ghost),
// and prints a compliance report — including the FraudDroid-like baseline's
// blind spots on obfuscated apps.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "android/system.h"
#include "apps/app_model.h"
#include "baselines/frauddroid.h"
#include "core/darpa_service.h"
#include "cv/one_stage.h"
#include "dataset/dataset.h"

using namespace darpa;

int main() {
  dataset::DatasetConfig dataConfig;
  dataConfig.totalScreenshots = 240;
  dataConfig.seed = 7;
  const dataset::AuiDataset data = dataset::AuiDataset::build(dataConfig);
  cv::TrainConfig trainConfig;
  trainConfig.epochs = 14;
  trainConfig.benignImages = 60;
  std::printf("training detector...\n");
  const cv::OneStageDetector detector =
      cv::OneStageDetector::train(data, cv::OneStageConfig{}, trainConfig);
  const baselines::FraudDroidDetector fraudDroid;

  struct AppReport {
    std::string package;
    int auiExposures = 0;
    int flaggedByDarpa = 0;
    int flaggedByFraudDroid = 0;
    std::int64_t analyses = 0;
  };
  std::vector<AppReport> reports;

  Rng rng(505);
  constexpr int kApps = 12;
  std::printf("auditing %d apps, 1 Monkey-minute each...\n\n", kApps);
  for (int i = 0; i < kApps; ++i) {
    android::AndroidSystem device;
    core::DarpaService darpa(detector);
    device.accessibility.connect(darpa);

    AppReport report;
    report.package = "com.market.app" + std::to_string(i);
    apps::AppSession session(device,
                             apps::randomAppProfile(report.package, rng),
                             rng.next());
    apps::MonkeyDriver monkey(device, rng.next());

    darpa.setAnalysisListener([&](bool isAui, const auto&) {
      ++report.analyses;
      if (isAui) ++report.flaggedByDarpa;
      const auto verdict = fraudDroid.analyze(
          device.windowManager.dumpTopWindow(),
          device.windowManager.config().screenSize);
      if (verdict.isAui) ++report.flaggedByFraudDroid;
    });

    session.start(ms(60'000));
    monkey.start(device.clock.now() + ms(60'000));
    device.looper.runUntil(device.clock.now() + ms(60'000));
    report.auiExposures = static_cast<int>(session.exposures().size());
    reports.push_back(report);
  }

  std::sort(reports.begin(), reports.end(),
            [](const AppReport& a, const AppReport& b) {
              return a.flaggedByDarpa > b.flaggedByDarpa;
            });
  std::printf("  %-22s %10s %14s %18s\n", "package", "AUIs shown",
              "DARPA flags", "FraudDroid flags");
  for (const AppReport& report : reports) {
    std::printf("  %-22s %10d %14d %18d%s\n", report.package.c_str(),
                report.auiExposures, report.flaggedByDarpa,
                report.flaggedByFraudDroid,
                report.flaggedByDarpa > 0 && report.flaggedByFraudDroid == 0
                    ? "  <- invisible to string matching"
                    : "");
  }
  std::printf("\napps with AUI pressure should be queued for manual review;\n"
              "string-based screening alone misses the obfuscated ones.\n");
  return 0;
}
