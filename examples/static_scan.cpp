// Example: offline market scan with the static lint pass — no detector,
// no screenshots, no pixels.
//
// The run-time pipeline needs a trained CV model; a market operator
// triaging thousands of submitted APKs does not want to replay every one
// of them through a GPU. This driver runs Monkey sessions against a
// population of synthetic apps and audits nothing but the ADB-style view
// hierarchy dumps: every 400 ms of simulated time the top window's dump
// goes through analysis::LintEngine, and the merged verdicts are scored
// against the sessions' AUI-exposure ground truth. Apps are ranked by
// lint pressure, with per-rule firing counts showing *why* each app was
// flagged — the structured-diagnostic output a review queue needs.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "android/system.h"
#include "apps/app_model.h"

using namespace darpa;

int main() {
  const analysis::LintEngine engine = analysis::LintEngine::withDefaultRules();
  std::printf("static market scan: %zu lint rules, no CV model in the loop\n",
              engine.ruleCount());

  struct AppReport {
    std::string package;
    int screensLinted = 0;
    int screensFlagged = 0;
    int auiExposures = 0;
    int exposuresCaught = 0;  ///< Exposures flagged by >= 1 lint pass.
    double maxScore = 0.0;
    bool ghostUpo = false;  ///< Contrast rule saw a near-invisible option.
  };
  std::vector<AppReport> reports;
  std::map<std::string, int> ruleFirings;

  Rng rng(909);
  constexpr int kApps = 24;
  constexpr Millis kSessionLength{60'000};
  constexpr Millis kSampleEvery{400};
  std::printf("auditing %d apps, 1 Monkey-minute each, sampling every %lld ms"
              "...\n\n", kApps, static_cast<long long>(kSampleEvery.count));

  for (int i = 0; i < kApps; ++i) {
    android::AndroidSystem device;
    AppReport report;
    report.package = "com.market.app" + std::to_string(i);
    apps::AppSession session(device,
                             apps::randomAppProfile(report.package, rng),
                             rng.next());
    apps::MonkeyDriver monkey(device, rng.next());

    session.start(kSessionLength);
    monkey.start(device.clock.now() + kSessionLength);

    // Step the looper in sampling-interval increments and lint the top
    // window after each step; exposuresCaught is filled per exposure below.
    std::vector<Millis> flaggedAt;
    const Millis end = device.clock.now() + kSessionLength;
    while (device.looper.now() < end) {
      const Millis next = std::min(device.looper.now() + kSampleEvery, end);
      device.looper.runUntil(next);
      const analysis::LintReport lint = engine.run(
          device.windowManager.dumpTopWindow(),
          device.windowManager.config().screenSize);
      ++report.screensLinted;
      report.maxScore = std::max(report.maxScore, lint.verdict.score);
      if (lint.verdict.isAui) {
        ++report.screensFlagged;
        flaggedAt.push_back(device.looper.now());
        for (const analysis::LintFinding& finding : lint.findings) {
          ++ruleFirings[finding.ruleId];
          if (finding.ruleId == "aui-contrast-asymmetry" &&
              finding.severity == analysis::Severity::kError) {
            report.ghostUpo = true;
          }
        }
      }
    }

    report.auiExposures = static_cast<int>(session.exposures().size());
    for (const apps::AuiExposure& exposure : session.exposures()) {
      const bool caught = std::any_of(
          flaggedAt.begin(), flaggedAt.end(), [&](Millis t) {
            return t >= exposure.shownAt && t < exposure.hiddenAt;
          });
      report.exposuresCaught += caught;
    }
    reports.push_back(report);
  }

  std::sort(reports.begin(), reports.end(),
            [](const AppReport& a, const AppReport& b) {
              return a.screensFlagged > b.screensFlagged;
            });

  int totalExposures = 0;
  int totalCaught = 0;
  std::printf("  %-22s %8s %9s %10s %9s %s\n", "package", "linted", "flagged",
              "AUIs shown", "caught", "notes");
  for (const AppReport& report : reports) {
    totalExposures += report.auiExposures;
    totalCaught += report.exposuresCaught;
    std::printf("  %-22s %8d %9d %10d %7d/%-2d %s\n", report.package.c_str(),
                report.screensLinted, report.screensFlagged,
                report.auiExposures, report.exposuresCaught,
                report.auiExposures,
                report.ghostUpo ? "ghost escape option" : "");
  }

  std::printf("\n  exposure coverage, lint only: %d / %d (%.1f%%)\n",
              totalCaught, totalExposures,
              totalExposures == 0 ? 0.0
                                  : 100.0 * totalCaught / totalExposures);
  std::printf("\n  rule firings on flagged screens:\n");
  for (const auto& [rule, count] : ruleFirings) {
    std::printf("    %-26s %6d\n", rule.c_str(), count);
  }
  std::printf("\napps with lint pressure go to the manual-review queue; the\n"
              "structured findings (rule, view path, box) tell the reviewer\n"
              "where to look before an emulator is ever booted.\n");
  return 0;
}
