// End-to-end example: the full DARPA pipeline on a simulated device.
//
// A shopping-style app shows a sales-promotion AUI; DARPA (connected as an
// Accessibility Service) waits for the screen to stabilize, takes a
// screenshot, runs the CV model, and decorates the user-preferred option.
// The example saves before/after screenshots as PPM files so you can see
// the decoration ring around the close button.
#include <cstdio>
#include <memory>

#include "android/system.h"
#include "apps/screen_generator.h"
#include "core/darpa_service.h"
#include "cv/one_stage.h"
#include "dataset/dataset.h"

using namespace darpa;

int main() {
  // 1. Train a small detector (a production deployment would ship a
  //    pre-trained model; examples/quickstart.cpp covers training).
  dataset::DatasetConfig dataConfig;
  dataConfig.totalScreenshots = 240;
  dataConfig.seed = 7;
  const dataset::AuiDataset data = dataset::AuiDataset::build(dataConfig);
  cv::TrainConfig trainConfig;
  trainConfig.epochs = 14;
  trainConfig.benignImages = 60;
  std::printf("training detector on %zu screenshots...\n",
              data.trainIndices().size());
  const cv::OneStageDetector detector =
      cv::OneStageDetector::train(data, cv::OneStageConfig{}, trainConfig);

  // 2. Boot the simulated device and connect DARPA through the
  //    Accessibility Service, exactly like enabling it in Settings.
  android::AndroidSystem device;
  core::DarpaService darpa(detector);
  device.accessibility.connect(darpa);
  std::printf("DARPA connected: ct=%lldms, %d event types registered\n",
              static_cast<long long>(darpa.darpaConfig().cutoff.count),
              static_cast<int>(android::kAllEventTypes.size()));

  // 3. An app shows a benign feed, then a sales-promotion AUI pops up.
  apps::ScreenGenerator::Params genParams;
  const Rect frame = device.windowManager.appFrame(false);
  genParams.frame = {frame.width, frame.height};
  apps::ScreenGenerator generator(genParams, 4242);

  device.windowManager.showAppWindow("com.example.shop",
                                     std::move(generator.makeBenign().root),
                                     false);
  device.looper.runFor(ms(1000));

  apps::AuiSpec spec;
  spec.type = apps::AuiType::kSalesPromotion;
  spec.host = apps::AuiHost::kFirstParty;
  apps::GeneratedScreen aui = generator.makeAui(spec);
  const Rect upoTruth = aui.truth.upoBoxes.front().translated(frame.x, frame.y);
  device.windowManager.showAppWindow("com.example.shop", std::move(aui.root),
                                     false);
  const gfx::Bitmap before = device.windowManager.composite();

  // 4. Let the ct timer fire: DARPA analyzes the stable AUI screen.
  device.looper.runFor(ms(1500));
  const gfx::Bitmap after = device.windowManager.composite();

  std::printf("\nDARPA stats: %lld events, %lld analyses, %lld AUIs flagged, "
              "%lld decorations\n",
              static_cast<long long>(darpa.stats().eventsReceived),
              static_cast<long long>(darpa.stats().analysesRun),
              static_cast<long long>(darpa.stats().auisFlagged),
              static_cast<long long>(darpa.stats().decorationsDrawn));
  std::printf("screenshots taken %lld / rinsed %lld (none retained: %s)\n",
              static_cast<long long>(darpa.vault().stored()),
              static_cast<long long>(darpa.vault().rinsed()),
              darpa.vault().holding() ? "NO" : "yes");

  std::printf("\nground-truth UPO at (%d,%d %dx%d); decorations on screen:\n",
              upoTruth.x, upoTruth.y, upoTruth.width, upoTruth.height);
  for (const Rect& r : darpa.decorationRects()) {
    std::printf("  decoration at (%d,%d %dx%d) IoU-with-UPO %.2f\n", r.x, r.y,
                r.width, r.height, iou(r, upoTruth.inflated(4)));
  }

  if (before.writePpm("runtime_before.ppm") &&
      after.writePpm("runtime_after.ppm")) {
    std::printf("\nwrote runtime_before.ppm / runtime_after.ppm\n");
  }
  return 0;
}
