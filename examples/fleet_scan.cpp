// Example: fleet-scale scanning with the batched detection executor.
//
// One DARPA deployment rarely watches one phone: a market operator or a
// research fleet runs many simulated device sessions against one shared
// detector backend. This example spins up a small fleet, advances every
// session in lockstep epochs, coalesces the sessions' screenshots into
// batched detectBatch() calls at each epoch barrier, and prints the merged
// fleet snapshot — same verdicts as running each device alone, at an
// amortized per-screen detection cost.
#include <cstdio>

#include "cv/one_stage.h"
#include "dataset/dataset.h"
#include "fleet/executors.h"
#include "fleet/fleet.h"

using namespace darpa;

int main() {
  dataset::DatasetConfig dataConfig;
  dataConfig.totalScreenshots = 240;
  dataConfig.seed = 7;
  const dataset::AuiDataset data = dataset::AuiDataset::build(dataConfig);
  cv::TrainConfig trainConfig;
  trainConfig.epochs = 14;
  trainConfig.benignImages = 60;
  std::printf("training detector...\n");
  const cv::OneStageDetector detector =
      cv::OneStageDetector::train(data, cv::OneStageConfig{}, trainConfig);

  // One shared batching backend: every session's stable screens park here
  // and are resolved together at each epoch barrier.
  fleet::BatchingExecutor executor({.maxBatchSize = 32, .threads = 4});

  fleet::FleetConfig config;
  config.sessions = 8;
  config.workers = 4;          // sessions advance on 4 threads
  config.epoch = ms(1000);     // flush the executor every simulated second
  config.duration = ms(30'000);
  std::printf("running %d sessions x %lld simulated ms (epoch %lld ms)...\n",
              config.sessions, static_cast<long long>(config.duration.count),
              static_cast<long long>(config.epoch.count));

  fleet::Fleet fleet(detector, executor, config);
  fleet.run();

  const fleet::FleetSnapshot snap = fleet.snapshot();
  std::printf("\nfleet snapshot (%d sessions, %lld ms simulated each):\n",
              snap.sessions, static_cast<long long>(snap.simTime.count));
  std::printf("  events received     %lld\n",
              static_cast<long long>(snap.stats.eventsReceived));
  std::printf("  analyses run        %lld (verdict-cache hits %lld)\n",
              static_cast<long long>(snap.stats.analysesRun),
              static_cast<long long>(snap.stats.verdictCacheHits));
  std::printf("  AUIs flagged        %lld\n",
              static_cast<long long>(snap.stats.auisFlagged));
  std::printf("  decorations drawn   %lld\n",
              static_cast<long long>(snap.stats.decorationsDrawn));
  std::printf("  AUI exposures       %lld, covered %lld\n",
              static_cast<long long>(snap.auiExposures),
              static_cast<long long>(snap.auisCovered));
  std::printf("  modeled CPU         %.1f ms total, detect %.1f ms\n",
              snap.ledger.totalCpuMs(),
              snap.ledger.tally(core::Stage::kDetect).cpuMs);
  std::printf("\nbatching: %lld detectBatch calls over %lld screenshots "
              "(mean batch %.1f, largest %d)\n",
              static_cast<long long>(executor.batchesDispatched()),
              static_cast<long long>(executor.imagesBatched()),
              executor.meanBatchSize(), executor.largestBatch());
  std::printf("per-session verdicts are identical to running each device "
              "alone;\nthe batch amortization only changes what the fleet "
              "pays per screen.\n");
  return 0;
}
