// Example: DARPA's auto-bypass mode (§IV-D's "alternative option").
//
// Instead of decorating the user-preferred option, DARPA dispatches a click
// on the UPO and dismisses the AUI for the user. This example shows a lucky
// money (red packet) popup being auto-closed, and contrasts a user session
// with and without DARPA by counting how often the app-guided option would
// have been triggered.
#include <cstdio>
#include <memory>

#include "android/system.h"
#include "apps/screen_generator.h"
#include "core/darpa_service.h"
#include "cv/one_stage.h"
#include "dataset/dataset.h"

using namespace darpa;

namespace {
/// Shows a red-packet AUI whose options report clicks into the counters.
/// Returns the window so the caller can keep the session going.
void showLuckyMoneyAui(android::AndroidSystem& device,
                       apps::ScreenGenerator& generator, int& agoClicks,
                       int& upoClicks) {
  apps::AuiSpec spec;
  spec.type = apps::AuiType::kLuckyMoney;
  spec.host = apps::AuiHost::kFirstParty;
  apps::GeneratedScreen aui = generator.makeAui(spec);
  const Rect frame = device.windowManager.appFrame(false);

  // Wire the truth boxes to click counters via hit-testing views.
  android::View* root = aui.root.get();
  if (android::View* ago =
          root->hitTest(aui.truth.agoBoxes.front().center())) {
    ago->setOnClick([&agoClicks] { ++agoClicks; });
  }
  android::View* upoView = root->hitTest(aui.truth.upoBoxes.front().center());
  if (upoView != nullptr) {
    upoView->setOnClick([&device, &upoClicks] {
      ++upoClicks;
      device.windowManager.popAppWindow();  // close the AUI
    });
  }
  device.windowManager.showAppWindow("com.example.game", std::move(aui.root),
                                     false);
  (void)frame;
}
}  // namespace

int main() {
  dataset::DatasetConfig dataConfig;
  dataConfig.totalScreenshots = 240;
  dataConfig.seed = 7;
  const dataset::AuiDataset data = dataset::AuiDataset::build(dataConfig);
  cv::TrainConfig trainConfig;
  trainConfig.epochs = 14;
  trainConfig.benignImages = 60;
  std::printf("training detector...\n");
  const cv::OneStageDetector detector =
      cv::OneStageDetector::train(data, cv::OneStageConfig{}, trainConfig);

  android::AndroidSystem device;
  core::DarpaConfig config;
  config.autoBypass = true;  // click the UPO instead of decorating
  core::DarpaService darpa(detector, config);
  device.accessibility.connect(darpa);

  apps::ScreenGenerator::Params genParams;
  const Rect frame = device.windowManager.appFrame(false);
  genParams.frame = {frame.width, frame.height};
  apps::ScreenGenerator generator(genParams, 99);

  device.windowManager.showAppWindow("com.example.game",
                                     std::move(generator.makeBenign().root),
                                     false);
  device.looper.runFor(ms(800));

  int agoClicks = 0, upoClicks = 0;
  int auisClosed = 0;
  for (int round = 0; round < 5; ++round) {
    showLuckyMoneyAui(device, generator, agoClicks, upoClicks);
    const std::size_t windowsBefore = device.windowManager.appWindowCount();
    device.looper.runFor(ms(2500));  // ct elapses; DARPA clicks the UPO
    if (device.windowManager.appWindowCount() < windowsBefore) ++auisClosed;
  }

  std::printf("\n5 red-packet AUIs shown.\n");
  std::printf("  auto-bypass clicks dispatched: %lld\n",
              static_cast<long long>(darpa.stats().bypassClicks));
  std::printf("  AUIs closed via their UPO:     %d\n", auisClosed);
  std::printf("  UPO (close) clicks:            %d\n", upoClicks);
  std::printf("  AGO (claim) clicks:            %d  <- money kept safe\n",
              agoClicks);
  return 0;
}
