// Quickstart: build a small AUI dataset, train the one-stage detector,
// evaluate it on the held-out test split, and run it on one screenshot.
//
// This is the 5-minute tour of the library's data + CV layers; see
// examples/runtime_decoration.cpp for the end-to-end Accessibility-Service
// pipeline and examples/auto_bypass.cpp for the auto-click mitigation.
#include <cstdio>

#include "cv/one_stage.h"
#include "dataset/dataset.h"

using namespace darpa;

int main() {
  // 1. Build a (reduced-size) D_aui: deterministic, paper-faithful quotas.
  dataset::DatasetConfig dataConfig;
  dataConfig.totalScreenshots = 300;  // paper: 1,072 (bench binaries use that)
  dataConfig.seed = 2023;
  const dataset::AuiDataset data = dataset::AuiDataset::build(dataConfig);
  const auto trainCounts = data.countBoxes(data.trainIndices());
  const auto testCounts = data.countBoxes(data.testIndices());
  std::printf("dataset: %zu screenshots (train %d / test %d), "
              "train boxes AGO=%d UPO=%d\n",
              data.size(), trainCounts.screenshots, testCounts.screenshots,
              trainCounts.ago, trainCounts.upo);

  // 2. Train the one-stage detector (the YOLOv5 analogue).
  cv::OneStageConfig modelConfig;
  cv::TrainConfig trainConfig;
  trainConfig.epochs = 12;
  trainConfig.benignImages = 60;
  const cv::OneStageDetector detector =
      cv::OneStageDetector::train(data, modelConfig, trainConfig);

  // 3. Evaluate at the paper's strict IoU 0.9.
  const cv::ModelMetrics metrics =
      cv::evaluateDetector(detector, data, data.testIndices());
  std::printf("UPO: precision %.3f recall %.3f f1 %.3f\n",
              metrics.upo.precision(), metrics.upo.recall(), metrics.upo.f1());
  std::printf("AGO: precision %.3f recall %.3f f1 %.3f\n",
              metrics.ago.precision(), metrics.ago.recall(), metrics.ago.f1());
  std::printf("All: precision %.3f recall %.3f f1 %.3f\n",
              metrics.all().precision(), metrics.all().recall(),
              metrics.all().f1());

  // 4. Detect on a single screenshot and print the boxes.
  const dataset::Sample sample = data.materialize(data.testIndices().front());
  for (const cv::Detection& det : detector.detect(sample.image)) {
    std::printf("  %s conf=%.2f box=(%d,%d %dx%d)\n",
                det.label == dataset::BoxLabel::kAgo ? "AGO" : "UPO",
                det.confidence, det.box.x, det.box.y, det.box.width,
                det.box.height);
  }
  for (const dataset::Annotation& gt : sample.annotations) {
    std::printf("  gt %s box=(%d,%d %dx%d)\n",
                gt.label == dataset::BoxLabel::kAgo ? "AGO" : "UPO", gt.box.x,
                gt.box.y, gt.box.width, gt.box.height);
  }
  return 0;
}
