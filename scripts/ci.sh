#!/usr/bin/env bash
# Full local CI: configure, build, test, the same again under ASan+UBSan,
# then clang-tidy (skipped automatically when LLVM is not installed).
#
#   scripts/ci.sh            # everything
#   SKIP_SANITIZE=1 scripts/ci.sh   # plain build + tests + tidy only
#
# Uses build/ and build-asan/ at the repo root; both are gitignored.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure + build (build/) =="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build -j "$JOBS"

echo "== ctest (build/) =="
ctest --test-dir build --output-on-failure -j "$JOBS"

if [ "${SKIP_SANITIZE:-0}" != "1" ]; then
  echo "== configure + build, ASan+UBSan (build-asan/) =="
  cmake -B build-asan -S . -DDARPA_SANITIZE=ON
  cmake --build build-asan -j "$JOBS"

  echo "== ctest, sanitized (build-asan/) =="
  # halt_on_error keeps UBSan findings fatal so ctest reports them.
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"
fi

echo "== clang-tidy =="
scripts/tidy.sh build

echo "CI OK"
