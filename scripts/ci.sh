#!/usr/bin/env bash
# Full local CI: configure, build, test (which includes the detlint
# determinism-lint gates), the same again under ASan+UBSan, a TSan lane
# over the threaded fleet/executor tests, a bench smoke lane (every bench
# binary once with --quick), a Release perf-smoke lane (the detector
# hot-path bench's speedup/zero-alloc contracts need optimized codegen),
# then the Clang-only static lanes: a -Wthread-safety -Werror build over
# the GUARDED_BY/RankedMutex annotations and a FATAL clang-tidy pass
# (bugprone-*/performance-* as errors). Both Clang lanes are skipped
# automatically when LLVM is not installed — the detlint + rank-validator
# gates above run on any toolchain and stay fatal everywhere.
#
#   scripts/ci.sh            # everything
#   SKIP_SANITIZE=1 scripts/ci.sh   # skip the sanitizer rebuilds + reruns
#   SKIP_BENCH=1 scripts/ci.sh      # skip the bench smoke + perf lanes
#
# Uses build/, build-asan/, build-tsan/, build-perf/ and build-tsa/ at the
# repo root; all gitignored.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure + build (build/) =="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build -j "$JOBS"

echo "== ctest (build/) =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== detlint (determinism/concurrency source lint) =="
# Redundant with the DetlintRepo ctest gate above, but run explicitly so a
# lint failure is reported as its own lane with the findings on stdout.
./build/tools/detlint/detlint --root .

if [ "${SKIP_SANITIZE:-0}" != "1" ]; then
  echo "== configure + build, ASan+UBSan (build-asan/) =="
  cmake -B build-asan -S . -DDARPA_SANITIZE=ON
  cmake --build build-asan -j "$JOBS"

  echo "== ctest, sanitized (build-asan/) =="
  # halt_on_error keeps UBSan findings fatal so ctest reports them.
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"

  echo "== ctest, ASan strict-stack webview/virtual-tree tests (build-asan/) =="
  # Focused rerun of the WebView/virtual-subtree suites with
  # stack-use-after-return detection on: the iterative virtual-tree walk
  # exists precisely so hostile page depth stays off the native stack, and
  # the deep/wide traversal tests are where a frame-lifetime bug would hide.
  ASAN_OPTIONS=detect_leaks=1:detect_stack_use_after_return=1 \
  UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
      -R 'WebViewTest|VirtualFingerprintPropertyTest|VirtualLintTraversalTest|VirtualDecorationTest'

  echo "== configure + build, TSan (build-tsan/) =="
  # ThreadSanitizer lane over the tests that actually exercise threads: the
  # work-stealing fleet scheduler (steal-heavy skewed workload at W=4), the
  # lockstep reference driver, and the deferred detection executors.
  # (TSan is incompatible with ASan, hence the separate build tree.)
  cmake -B build-tsan -S . -DDARPA_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"

  echo "== ctest, TSan fleet/scheduler/executor/pool/tier/webview tests (build-tsan/) =="
  # The webview suites ride along: hybrid dumps flow through the same
  # threaded fleet pipeline (fingerprint -> verdict caches -> tier), so
  # the virtual-subtree code must be as race-clean as the native path.
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R 'FleetTest|FleetSchedulerTest|ExecutorTest|FramePoolTest|SharedVerdictTierTest|WebViewTest|VirtualFingerprintPropertyTest|VirtualLintTraversalTest'
fi

if [ "${SKIP_BENCH:-0}" != "1" ]; then
  echo "== bench smoke (--quick) =="
  # Every bench binary runs once at reduced scale. Benches exit non-zero
  # when one of their modeled contracts fails (e.g. bench_pipeline_cache's
  # cache-coverage contract), so this lane is fatal.
  for bench in build/bench/bench_*; do
    [ -x "$bench" ] || continue
    echo "-- $(basename "$bench") --quick"
    "$bench" --quick > /dev/null
  done

  echo "== perf smoke, Release (build-perf/) =="
  # The hot-path bench asserts real speedups (batched GEMM >= 3x, detect
  # >= 2x) and zero steady-state allocations, and the fleet-throughput
  # bench asserts the work-stealing driver's sessions/sec at 256 sessions
  # stays >= 0.95x the lockstep baseline (best-of-3 per driver). Those
  # contracts are only meaningful under optimization, so this lane builds
  # Release (-O2) and runs both benches at --quick scale. Fatal on
  # contract failure. The two binaries share the trained-model cache in
  # build-perf/bench, so the fleet bench reuses the hot-path bench's model.
  cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-perf -j "$JOBS" \
    --target bench_detector_hotpath --target bench_fleet_throughput
  (cd build-perf/bench && ./bench_detector_hotpath --quick)
  (cd build-perf/bench && ./bench_fleet_throughput --quick)

  # Both perf benches persist their measured numbers as JSON next to the
  # binary; the lane fails if either artifact is missing and then publishes
  # both at the repo root (gitignored) so perf regressions are diffable
  # across runs without re-running the lane.
  for artifact in BENCH_detector.json BENCH_fleet.json; do
    if [ ! -f "build-perf/bench/$artifact" ]; then
      echo "FAIL: perf lane did not produce $artifact" >&2
      exit 1
    fi
    cp "build-perf/bench/$artifact" "./$artifact"
    echo "-- published $artifact"
  done
fi

echo "== thread-safety (clang -Wthread-safety, errors) =="
# Compile-time concurrency proof over the GUARDED_BY/RankedMutex
# annotations (util/thread_annotations.h). Clang-only: GCC compiles the
# annotations away, so the lane configures its own clang++ tree. Library
# target only — the annotations all live in src/. DARPA_NATIVE_SIMD stays
# off so the lane builds on any host clang without -march surprises.
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DDARPA_THREAD_SAFETY=ON -DDARPA_NATIVE_SIMD=OFF
  cmake --build build-tsa -j "$JOBS" --target darpa
else
  echo "clang++ not installed; skipping thread-safety lane"
fi

echo "== clang-tidy (fatal: bugprone-*/performance-* are errors) =="
# The curated bugprone-*/performance-* set is promoted to errors via
# WarningsAsErrors in .clang-tidy; the advisory modernize/readability
# checks still only warn. tidy.sh exits 0 with a notice when clang-tidy
# is not installed, so non-LLVM machines skip rather than fail.
scripts/tidy.sh build

echo "CI OK"
