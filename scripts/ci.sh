#!/usr/bin/env bash
# Full local CI: configure, build, test (which includes the detlint
# determinism-lint gates), the same again under ASan+UBSan, a TSan lane
# over the threaded fleet/executor tests, forced-scalar int8 kernel-lane
# parity reruns under both sanitizers (DARPA_KERNEL=scalar), a dispatch
# probe asserting a -DDARPA_NATIVE_SIMD=OFF build still selects the avx2
# int8 lane on AVX2 hosts, a bench smoke lane (every bench binary once
# with --quick), a Release perf-smoke lane (the detector hot-path bench's
# speedup/zero-alloc contracts need optimized codegen) followed by a perf
# floor gate over the published BENCH_detector.json numbers, then the
# Clang-only static lanes: a -Wthread-safety -Werror build over
# the GUARDED_BY/RankedMutex annotations and a FATAL clang-tidy pass
# (bugprone-*/performance-* as errors). Both Clang lanes are skipped
# automatically when LLVM is not installed — the detlint + rank-validator
# gates above run on any toolchain and stay fatal everywhere.
#
#   scripts/ci.sh            # everything
#   SKIP_SANITIZE=1 scripts/ci.sh   # skip the sanitizer rebuilds + reruns
#   SKIP_BENCH=1 scripts/ci.sh      # skip the bench smoke + perf lanes
#
# Uses build/, build-asan/, build-tsan/, build-lane/, build-perf/ and
# build-tsa/ at the repo root; all gitignored.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== configure + build (build/) =="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build -j "$JOBS"

echo "== ctest (build/) =="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== detlint (determinism/concurrency source lint) =="
# Redundant with the DetlintRepo ctest gate above, but run explicitly so a
# lint failure is reported as its own lane with the findings on stdout.
./build/tools/detlint/detlint --root .

if [ "${SKIP_SANITIZE:-0}" != "1" ]; then
  echo "== configure + build, ASan+UBSan (build-asan/) =="
  cmake -B build-asan -S . -DDARPA_SANITIZE=ON
  cmake --build build-asan -j "$JOBS"

  echo "== ctest, sanitized (build-asan/) =="
  # halt_on_error keeps UBSan findings fatal so ctest reports them.
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS"

  echo "== ctest, ASan, int8 parity with DARPA_KERNEL=scalar forced (build-asan/) =="
  # Rerun the kernel-lane parity/dispatch suites with the scalar reference
  # lane forced via the env override. The normal run above dispatches the
  # widest lane, so this rerun is what keeps the scalar lane (and the
  # override plumbing itself) sanitizer-covered even on wide hosts.
  DARPA_KERNEL=scalar \
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
      -R 'MlpBatchTest|QuantizeTest|KernelDispatchTest'

  echo "== ctest, ASan strict-stack webview/virtual-tree tests (build-asan/) =="
  # Focused rerun of the WebView/virtual-subtree suites with
  # stack-use-after-return detection on: the iterative virtual-tree walk
  # exists precisely so hostile page depth stays off the native stack, and
  # the deep/wide traversal tests are where a frame-lifetime bug would hide.
  ASAN_OPTIONS=detect_leaks=1:detect_stack_use_after_return=1 \
  UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
      -R 'WebViewTest|VirtualFingerprintPropertyTest|VirtualLintTraversalTest|VirtualDecorationTest'

  echo "== configure + build, TSan (build-tsan/) =="
  # ThreadSanitizer lane over the tests that actually exercise threads: the
  # work-stealing fleet scheduler (steal-heavy skewed workload at W=4), the
  # lockstep reference driver, and the deferred detection executors.
  # (TSan is incompatible with ASan, hence the separate build tree.)
  cmake -B build-tsan -S . -DDARPA_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"

  echo "== ctest, TSan fleet/scheduler/executor/pool/tier/webview tests (build-tsan/) =="
  # The webview suites ride along: hybrid dumps flow through the same
  # threaded fleet pipeline (fingerprint -> verdict caches -> tier), so
  # the virtual-subtree code must be as race-clean as the native path.
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R 'FleetTest|FleetSchedulerTest|ExecutorTest|FramePoolTest|SharedVerdictTierTest|WebViewTest|VirtualFingerprintPropertyTest|VirtualLintTraversalTest'

  echo "== ctest, TSan, int8 parity with DARPA_KERNEL=scalar forced (build-tsan/) =="
  # The dispatcher's std::call_once + env read is exactly the kind of
  # one-time init TSan is good at: the parity suite spawns no threads, but
  # the fleet suites above already hammered activeInt8Kernel() through the
  # quantized executors, so this forced-scalar rerun checks the override
  # path under the same runtime.
  DARPA_KERNEL=scalar TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R 'MlpBatchTest|QuantizeTest|KernelDispatchTest'
fi

echo "== int8 kernel dispatch probe (default build, no -march=native) =="
# Build tools/lane_probe in a tree with DARPA_NATIVE_SIMD explicitly OFF:
# the int8 SIMD lanes are compiled via per-function target attributes, so
# even a fully generic build must dispatch avx2 on an AVX2 host. Catches
# regressions where a kernel file loses its target attribute and the whole
# fleet silently drops to the scalar reference lane.
cmake -B build-lane -S . -DDARPA_NATIVE_SIMD=OFF
cmake --build build-lane -j "$JOBS" --target lane_probe
./build-lane/tools/lane_probe/lane_probe
if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
  ./build-lane/tools/lane_probe/lane_probe --require avx2
fi
DARPA_KERNEL=scalar ./build-lane/tools/lane_probe/lane_probe --require scalar

if [ "${SKIP_BENCH:-0}" != "1" ]; then
  echo "== bench smoke (--quick) =="
  # Every bench binary runs once at reduced scale. Benches exit non-zero
  # when one of their modeled contracts fails (e.g. bench_pipeline_cache's
  # cache-coverage contract), so this lane is fatal.
  for bench in build/bench/bench_*; do
    [ -x "$bench" ] || continue
    echo "-- $(basename "$bench") --quick"
    "$bench" --quick > /dev/null
  done

  echo "== perf smoke, Release (build-perf/) =="
  # The hot-path bench asserts real speedups (batched GEMM >= 3x, detect
  # >= 2x) and zero steady-state allocations, and the fleet-throughput
  # bench asserts the work-stealing driver's sessions/sec at 256 sessions
  # stays >= 0.95x the lockstep baseline (best-of-3 per driver). Those
  # contracts are only meaningful under optimization, so this lane builds
  # Release (-O2) and runs both benches at --quick scale. Fatal on
  # contract failure. The two binaries share the trained-model cache in
  # build-perf/bench, so the fleet bench reuses the hot-path bench's model.
  cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-perf -j "$JOBS" \
    --target bench_detector_hotpath --target bench_fleet_throughput
  (cd build-perf/bench && ./bench_detector_hotpath --quick)
  (cd build-perf/bench && ./bench_fleet_throughput --quick)

  # Both perf benches persist their measured numbers as JSON next to the
  # binary; the lane fails if either artifact is missing and then publishes
  # both at the repo root (gitignored) so perf regressions are diffable
  # across runs without re-running the lane.
  for artifact in BENCH_detector.json BENCH_fleet.json; do
    if [ ! -f "build-perf/bench/$artifact" ]; then
      echo "FAIL: perf lane did not produce $artifact" >&2
      exit 1
    fi
    cp "build-perf/bench/$artifact" "./$artifact"
    echo "-- published $artifact"
  done

  echo "== perf floor gate (BENCH_detector.json) =="
  # Hard floor on the head's batched throughput and the end-to-end batched
  # detect: fail the lane when either regresses past 0.5x of the SIMD-era
  # baseline (ceilings are 2x the measured PR 10 numbers on the reference
  # AVX2 host: fp32 batched ~198 ns/candidate, batched detect ~8.5
  # ms/image, int8 avx2 lane ~171 ns, sse4 ~252 ns). Absolute ceilings
  # deliberately complement the bench's in-run speedup ratios, whose
  # scalar denominators are link-layout-sensitive.
  # Deliberately loose enough to absorb machine jitter, tight enough that
  # "the dispatcher fell back to scalar" (~870 ns) or "the batched GEMM
  # lost its tiling" cannot slip through as a green run.
  python3 - <<'PYEOF'
import json, sys

d = json.load(open("BENCH_detector.json"))
checks = [("forward_batched_ns_per_candidate", 400.0),
          ("detect_batched_ms_per_image", 17.0)]
lane = d.get("int8_kernel_lane")
ceil_by_lane = {"avx2": 350.0, "sse4": 520.0}
if lane in ceil_by_lane:
    checks.append((f"int8_lane_{lane}_ns_per_candidate", ceil_by_lane[lane]))
failed = False
for key, ceiling in checks:
    value = d.get(key)
    if value is None or value < 0:
        print(f"FAIL: perf floor gate: {key} missing from BENCH_detector.json")
        failed = True
    elif value > ceiling:
        print(f"FAIL: perf floor gate: {key} = {value:.1f} ns exceeds the "
              f"{ceiling:.0f} ns ceiling (0.5x SIMD baseline)")
        failed = True
    else:
        print(f"perf floor OK: {key} = {value:.1f} ns <= {ceiling:.0f} ns")
sys.exit(1 if failed else 0)
PYEOF
fi

echo "== thread-safety (clang -Wthread-safety, errors) =="
# Compile-time concurrency proof over the GUARDED_BY/RankedMutex
# annotations (util/thread_annotations.h). Clang-only: GCC compiles the
# annotations away, so the lane configures its own clang++ tree. Library
# target only — the annotations all live in src/. DARPA_NATIVE_SIMD stays
# off so the lane builds on any host clang without -march surprises.
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DDARPA_THREAD_SAFETY=ON -DDARPA_NATIVE_SIMD=OFF
  cmake --build build-tsa -j "$JOBS" --target darpa
else
  echo "clang++ not installed; skipping thread-safety lane"
fi

echo "== clang-tidy (fatal: bugprone-*/performance-* are errors) =="
# The curated bugprone-*/performance-* set is promoted to errors via
# WarningsAsErrors in .clang-tidy; the advisory modernize/readability
# checks still only warn. tidy.sh exits 0 with a notice when clang-tidy
# is not installed, so non-LLVM machines skip rather than fail.
scripts/tidy.sh build

echo "CI OK"
