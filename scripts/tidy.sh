#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the first-party
# sources using an existing build tree's compile_commands.json.
#
#   scripts/tidy.sh [--fix] [build-dir] [paths...]
#
# Defaults: build dir "build", paths src/core and src/android (the layers the
# lint/tidy toolchain targets first). --fix passes clang-tidy's --fix through
# (apply suggested fixes in place; review the diff before committing). The
# script is a no-op with a notice when clang-tidy is not installed, so CI
# images without LLVM still pass.
#
# Exit status is clang-tidy's own: since .clang-tidy promotes the curated
# bugprone-*/performance-* set via WarningsAsErrors, those findings fail the
# run (the fatal CI lane); everything else only warns.
set -euo pipefail

cd "$(dirname "$0")/.."

FIX_ARGS=()
if [ "${1:-}" = "--fix" ]; then
  FIX_ARGS=(--fix)
  shift
fi

BUILD_DIR="${1:-build}"
shift || true
PATHS=("$@")
if [ ${#PATHS[@]} -eq 0 ]; then
  PATHS=(src/core src/android)
fi

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "tidy: $TIDY not installed; skipping (install LLVM to enable)" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "tidy: generating $BUILD_DIR/compile_commands.json" >&2
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

mapfile -t FILES < <(find "${PATHS[@]}" -name '*.cpp' | sort)
echo "tidy: ${#FILES[@]} files under: ${PATHS[*]}" >&2
"$TIDY" -p "$BUILD_DIR" --quiet "${FIX_ARGS[@]}" "${FILES[@]}"
