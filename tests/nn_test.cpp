// Unit tests for the NN substrate: MLP forward/backward, Adam training,
// losses, and int8 quantization.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/kernels/int8_kernels.h"
#include "nn/losses.h"
#include "nn/mlp.h"
#include "nn/quantize.h"
#include "util/rng.h"

namespace darpa::nn {
namespace {

TEST(LossesTest, SigmoidRangeAndSymmetry) {
  EXPECT_NEAR(sigmoid(0.0f), 0.5f, 1e-6f);
  EXPECT_GT(sigmoid(10.0f), 0.9999f);
  EXPECT_LT(sigmoid(-10.0f), 0.0001f);
  EXPECT_NEAR(sigmoid(2.0f) + sigmoid(-2.0f), 1.0f, 1e-6f);
}

TEST(LossesTest, BceMatchesDefinition) {
  // BCE(logit, 1) = -log(sigmoid(logit))
  const float logit = 0.7f;
  EXPECT_NEAR(bceWithLogits(logit, 1.0f), -std::log(sigmoid(logit)), 1e-5f);
  EXPECT_NEAR(bceWithLogits(logit, 0.0f), -std::log(1.0f - sigmoid(logit)),
              1e-5f);
}

TEST(LossesTest, BceStableForExtremeLogits) {
  EXPECT_TRUE(std::isfinite(bceWithLogits(100.0f, 0.0f)));
  EXPECT_TRUE(std::isfinite(bceWithLogits(-100.0f, 1.0f)));
  EXPECT_NEAR(bceWithLogits(100.0f, 1.0f), 0.0f, 1e-5f);
}

TEST(LossesTest, BceGradientIsSigmoidMinusTarget) {
  EXPECT_NEAR(bceWithLogitsGrad(0.0f, 1.0f), -0.5f, 1e-6f);
  EXPECT_NEAR(bceWithLogitsGrad(0.0f, 0.0f), 0.5f, 1e-6f);
}

TEST(LossesTest, SmoothL1QuadraticNearZeroLinearFar) {
  EXPECT_NEAR(smoothL1(0.5f, 0.0f), 0.125f, 1e-6f);  // 0.5 * 0.25
  EXPECT_NEAR(smoothL1(3.0f, 0.0f), 2.5f, 1e-6f);    // |3| - 0.5
  EXPECT_NEAR(smoothL1Grad(0.5f, 0.0f), 0.5f, 1e-6f);
  EXPECT_NEAR(smoothL1Grad(3.0f, 0.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(smoothL1Grad(-3.0f, 0.0f), -1.0f, 1e-6f);
}

TEST(MlpTest, ShapesAndParameterCount) {
  Rng rng(1);
  const Mlp mlp({4, 8, 3}, rng);
  EXPECT_EQ(mlp.inputSize(), 4);
  EXPECT_EQ(mlp.outputSize(), 3);
  EXPECT_EQ(mlp.parameterCount(), 4u * 8 + 8 + 8u * 3 + 3);
  const std::vector<float> out = mlp.forward(std::vector<float>{1, 2, 3, 4});
  EXPECT_EQ(out.size(), 3u);
}

TEST(MlpTest, DeterministicGivenSeed) {
  Rng rngA(42);
  Rng rngB(42);
  const Mlp a({5, 6, 2}, rngA);
  const Mlp b({5, 6, 2}, rngB);
  const std::vector<float> x{0.1f, -0.2f, 0.3f, 0.5f, -0.9f};
  EXPECT_EQ(a.forward(x), b.forward(x));
}

TEST(MlpTest, ForwardCachedMatchesForward) {
  Rng rng(3);
  const Mlp mlp({3, 4, 4, 2}, rng);
  const std::vector<float> x{0.5f, -1.0f, 2.0f};
  Mlp::Cache cache;
  EXPECT_EQ(mlp.forwardCached(x, cache), mlp.forward(x));
  EXPECT_EQ(cache.activations.size(), 4u);  // input + 3 layers
}

TEST(MlpTest, GradientMatchesFiniteDifference) {
  Rng rng(7);
  Mlp mlp({2, 3, 1}, rng);
  const std::vector<float> x{0.4f, -0.6f};
  const float target = 1.0f;

  // Analytic gradient via BCE on the single output.
  Mlp::Cache cache;
  const std::vector<float> out = mlp.forwardCached(x, cache);
  mlp.accumulateGradient(cache, std::vector<float>{
                                    bceWithLogitsGrad(out[0], target)});
  // Perturb the first weight of layer 0 and compare numeric gradient.
  const float analytic = mlp.layers()[0].gradWeights[0];
  // Rebuild identical model and evaluate loss at w +- eps.
  const float eps = 1e-3f;
  auto lossWithDelta = [&](float delta) {
    Rng rng2(7);
    Mlp probe({2, 3, 1}, rng2);
    const_cast<DenseLayer&>(probe.layers()[0]).weights[0] += delta;
    return bceWithLogits(probe.forward(x)[0], target);
  };
  const float numeric = (lossWithDelta(eps) - lossWithDelta(-eps)) / (2 * eps);
  EXPECT_NEAR(analytic, numeric, 5e-3f);
}

TEST(MlpTest, LearnsXor) {
  Rng rng(5);
  Mlp mlp({2, 8, 1}, rng);
  const float inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const float targets[4] = {0, 1, 1, 0};
  AdamConfig adam;
  adam.learningRate = 0.05f;
  for (int epoch = 0; epoch < 400; ++epoch) {
    for (int i = 0; i < 4; ++i) {
      Mlp::Cache cache;
      const std::vector<float> out = mlp.forwardCached(
          std::vector<float>{inputs[i][0], inputs[i][1]}, cache);
      mlp.accumulateGradient(
          cache, std::vector<float>{bceWithLogitsGrad(out[0], targets[i])});
    }
    mlp.applyAdam(adam, 4);
  }
  for (int i = 0; i < 4; ++i) {
    const float prob = sigmoid(
        mlp.forward(std::vector<float>{inputs[i][0], inputs[i][1]})[0]);
    if (targets[i] > 0.5f) {
      EXPECT_GT(prob, 0.8f) << "case " << i;
    } else {
      EXPECT_LT(prob, 0.2f) << "case " << i;
    }
  }
}

TEST(MlpTest, ClearGradientsZeroesAccumulators) {
  Rng rng(9);
  Mlp mlp({2, 2, 1}, rng);
  Mlp::Cache cache;
  mlp.forwardCached(std::vector<float>{1.0f, 1.0f}, cache);
  mlp.accumulateGradient(cache, std::vector<float>{1.0f});
  mlp.clearGradients();
  for (const DenseLayer& layer : mlp.layers()) {
    for (float g : layer.gradWeights) EXPECT_EQ(g, 0.0f);
    for (float g : layer.gradBias) EXPECT_EQ(g, 0.0f);
  }
}

TEST(QuantizeTest, QuantizedCloselyTracksFloatModel) {
  Rng rng(11);
  const Mlp mlp({6, 12, 4}, rng);
  // Calibration inputs spanning the input range.
  std::vector<std::vector<float>> calibration;
  Rng dataRng(13);
  for (int i = 0; i < 64; ++i) {
    std::vector<float> x(6);
    for (float& v : x) v = static_cast<float>(dataRng.uniform(-1.0, 1.0));
    calibration.push_back(std::move(x));
  }
  const QuantizedMlp quantized = QuantizedMlp::fromMlp(mlp, calibration);
  EXPECT_EQ(quantized.inputSize(), 6);
  EXPECT_EQ(quantized.outputSize(), 4);

  double maxErr = 0.0;
  double maxMag = 0.0;
  for (const std::vector<float>& x : calibration) {
    const std::vector<float> a = mlp.forward(x);
    const std::vector<float> b = quantized.forward(x);
    for (std::size_t i = 0; i < a.size(); ++i) {
      maxErr = std::max(maxErr, std::fabs(static_cast<double>(a[i]) - b[i]));
      maxMag = std::max(maxMag, std::fabs(static_cast<double>(a[i])));
    }
  }
  EXPECT_LT(maxErr, 0.1 * maxMag + 0.05);  // small relative error
}

TEST(QuantizeTest, ModelShrinksRoughly4x) {
  Rng rng(17);
  const Mlp mlp({20, 32, 16, 6}, rng);
  const QuantizedMlp quantized = QuantizedMlp::fromMlp(mlp, {});
  const std::size_t floatBytes = mlp.parameterCount() * sizeof(float);
  EXPECT_LT(quantized.modelBytes(), floatBytes / 3);
}

TEST(QuantizeTest, EmptyCalibrationStillRuns) {
  Rng rng(19);
  const Mlp mlp({3, 4, 2}, rng);
  const QuantizedMlp quantized = QuantizedMlp::fromMlp(mlp, {});
  const std::vector<float> out =
      quantized.forward(std::vector<float>{0.1f, 0.2f, 0.3f});
  EXPECT_EQ(out.size(), 2u);
  for (float v : out) EXPECT_TRUE(std::isfinite(v));
}

// --- batched-forward parity -------------------------------------------------
// The tentpole contract: forwardBatch is a pure throughput transform. The
// batched GEMM keeps the scalar kernel's per-(row, unit) accumulation order,
// so its logits must be BIT-equal to looping forward() — EXPECT_EQ on
// floats, no tolerance.

std::vector<std::vector<float>> randomInputs(int count, int dim,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> inputs(count);
  for (std::vector<float>& x : inputs) {
    x.resize(dim);
    for (float& v : x) v = static_cast<float>(rng.uniform(-2.0, 2.0));
  }
  return inputs;
}

TEST(MlpBatchTest, ForwardBatchBitEqualsLoopedForward) {
  Rng rng(31);
  const Mlp mlp({13, 24, 17, 6}, rng);
  // Batch sizes straddling the GEMM row tile, including 1 and a non-multiple.
  for (const int batch : {1, 3, 64, 65, 130}) {
    const std::vector<std::vector<float>> inputs =
        randomInputs(batch, mlp.inputSize(), 100 + batch);
    std::vector<float> packed;
    for (const std::vector<float>& x : inputs) {
      packed.insert(packed.end(), x.begin(), x.end());
    }
    std::vector<float> logits(
        static_cast<std::size_t>(batch) * mlp.outputSize());
    ForwardScratch scratch;
    mlp.forwardBatch(packed, batch, logits, scratch);
    for (int n = 0; n < batch; ++n) {
      const std::vector<float> expected = mlp.forward(inputs[n]);
      for (int j = 0; j < mlp.outputSize(); ++j) {
        EXPECT_EQ(logits[static_cast<std::size_t>(n) * mlp.outputSize() + j],
                  expected[j])
            << "batch=" << batch << " row=" << n << " unit=" << j;
      }
    }
  }
}

TEST(MlpBatchTest, QuantizedForwardBatchBitEqualsLoopedForward) {
  Rng rng(37);
  const Mlp mlp({9, 16, 6}, rng);
  const QuantizedMlp quantized =
      QuantizedMlp::fromMlp(mlp, randomInputs(32, 9, 41));
  for (const int batch : {1, 7, 64, 100}) {
    const std::vector<std::vector<float>> inputs =
        randomInputs(batch, quantized.inputSize(), 200 + batch);
    std::vector<float> packed;
    for (const std::vector<float>& x : inputs) {
      packed.insert(packed.end(), x.begin(), x.end());
    }
    std::vector<float> logits(
        static_cast<std::size_t>(batch) * quantized.outputSize());
    ForwardScratch scratch;
    quantized.forwardBatch(packed, batch, logits, scratch);
    for (int n = 0; n < batch; ++n) {
      const std::vector<float> expected = quantized.forward(inputs[n]);
      for (int j = 0; j < quantized.outputSize(); ++j) {
        EXPECT_EQ(
            logits[static_cast<std::size_t>(n) * quantized.outputSize() + j],
            expected[j])
            << "batch=" << batch << " row=" << n << " unit=" << j;
      }
    }
  }
}

TEST(MlpBatchTest, ForwardIntoMatchesForward) {
  Rng rng(43);
  const Mlp mlp({8, 12, 5}, rng);
  const std::vector<std::vector<float>> inputs = randomInputs(4, 8, 47);
  ForwardScratch scratch;
  std::vector<float> out(5);
  for (const std::vector<float>& x : inputs) {
    mlp.forwardInto(x, out, scratch);
    EXPECT_EQ(out, mlp.forward(x));
  }
}

TEST(MlpBatchTest, ForwardCachedIntoMatchesAndReusesCapacity) {
  Rng rng(53);
  const Mlp mlp({6, 10, 10, 4}, rng);
  const std::vector<std::vector<float>> inputs = randomInputs(8, 6, 59);
  Mlp::Cache cache;
  for (const std::vector<float>& x : inputs) {
    mlp.forwardCachedInto(x, cache);
    const std::span<const float> out = cache.output();
    const std::vector<float> expected = mlp.forward(x);
    ASSERT_EQ(out.size(), expected.size());
    for (std::size_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(out[j], expected[j]);
    }
  }
}

TEST(MlpBatchTest, ScratchStopsGrowingAfterWarmup) {
  Rng rng(61);
  const Mlp mlp({16, 32, 16, 6}, rng);
  const QuantizedMlp quantized = QuantizedMlp::fromMlp(mlp, {});
  constexpr int kBatch = 96;
  const std::vector<std::vector<float>> inputs =
      randomInputs(kBatch, 16, 67);
  std::vector<float> packed;
  for (const std::vector<float>& x : inputs) {
    packed.insert(packed.end(), x.begin(), x.end());
  }
  std::vector<float> logits(static_cast<std::size_t>(kBatch) * 6);

  ForwardScratch scratch;
  // Warm-up pass sizes the arena (growth expected)...
  mlp.forwardBatch(packed, kBatch, logits, scratch);
  quantized.forwardBatch(packed, kBatch, logits, scratch);
  EXPECT_GT(scratch.growths(), 0);
  scratch.resetStats();
  // ...after which repeated batched forwards — full size and smaller —
  // must never touch the heap again.
  for (const int batch : {kBatch, kBatch / 2, 1, kBatch}) {
    mlp.forwardBatch(
        std::span<const float>(packed.data(),
                               static_cast<std::size_t>(batch) * 16),
        batch, logits, scratch);
    quantized.forwardBatch(
        std::span<const float>(packed.data(),
                               static_cast<std::size_t>(batch) * 16),
        batch, logits, scratch);
  }
  EXPECT_EQ(scratch.growths(), 0);
  EXPECT_EQ(scratch.grownBytes(), 0);
}

// --- dispatch-lane parity suite ---------------------------------------------
// Every compiled-in SIMD lane must be BIT-equal to the scalar reference
// lane: the int8 core accumulates in exact int32 and the float quantize/
// dequant stages are written to evaluate identical IEEE sequences (see
// src/nn/kernels/int8_kernels.h). EXPECT_EQ on floats, no tolerance —
// this is what lets different hosts dispatch different kernels while the
// fleet digests stay byte-identical. Lanes the host CPU lacks are skipped
// (and reported), not failed.

std::vector<kernels::Int8Lane> supportedSimdLanes() {
  std::vector<kernels::Int8Lane> lanes;
  for (const kernels::Int8Lane lane :
       {kernels::Int8Lane::kSse4, kernels::Int8Lane::kAvx2}) {
    if (kernels::laneSupported(lane)) lanes.push_back(lane);
  }
  return lanes;
}

TEST(MlpBatchTest, KernelLanesBitEqualToScalarLane) {
  const std::vector<kernels::Int8Lane> lanes = supportedSimdLanes();
  if (lanes.empty()) {
    GTEST_SKIP() << "host CPU offers no SIMD lane; scalar-only build";
  }
  // Layer widths straddling the kernel pad (32): 1, width-1, width+1,
  // plus the production head shape. Batches straddle the old row tile.
  const std::vector<std::vector<int>> shapes = {
      {1, 4, 1}, {31, 33, 5}, {33, 31, 4}, {24, 48, 24, 6}};
  const kernels::Int8Kernel& scalarKernel =
      kernels::kernelForLane(kernels::Int8Lane::kScalar);
  std::uint64_t seed = 500;
  for (const std::vector<int>& shape : shapes) {
    Rng rng(++seed);
    const Mlp mlp(shape, rng);
    // Calibrated and the empty-calibration scale-1 edge case both count.
    for (const bool calibrated : {true, false}) {
      const QuantizedMlp quantized = QuantizedMlp::fromMlp(
          mlp, calibrated
                   ? randomInputs(32, mlp.inputSize(), ++seed)
                   : std::vector<std::vector<float>>{});
      for (const int batch : {1, 31, 64, 65, 130}) {
        const std::vector<std::vector<float>> inputs =
            randomInputs(batch, mlp.inputSize(), ++seed);
        std::vector<float> packed;
        for (const std::vector<float>& x : inputs) {
          packed.insert(packed.end(), x.begin(), x.end());
        }
        const std::size_t outCount =
            static_cast<std::size_t>(batch) * quantized.outputSize();
        std::vector<float> reference(outCount);
        ForwardScratch scratch;
        quantized.forwardBatchWithKernel(packed, batch, reference, scratch,
                                         scalarKernel);
        for (const kernels::Int8Lane lane : lanes) {
          std::vector<float> simd(outCount, -1.0f);
          quantized.forwardBatchWithKernel(packed, batch, simd, scratch,
                                           kernels::kernelForLane(lane));
          for (std::size_t i = 0; i < outCount; ++i) {
            EXPECT_EQ(simd[i], reference[i])
                << "lane=" << kernels::laneName(lane)
                << " shape[0]=" << shape[0] << " calibrated=" << calibrated
                << " batch=" << batch << " out=" << i;
          }
        }
      }
    }
  }
}

TEST(KernelDispatchTest, ActiveKernelIsASupportedLaneAndStable) {
  const kernels::Int8Kernel& active = kernels::activeInt8Kernel();
  EXPECT_TRUE(kernels::laneSupported(active.lane));
  EXPECT_STREQ(active.name, kernels::laneName(active.lane));
  // once_flag resolution: the table is resolved exactly once per process.
  EXPECT_EQ(&kernels::activeInt8Kernel(), &active);
  EXPECT_EQ(kernels::activeInt8Lane(), active.lane);
}

TEST(KernelDispatchTest, ResolveHonorsOverrideAndPicksWidestByDefault) {
  // "scalar" is compiled and supported everywhere.
  EXPECT_EQ(kernels::resolveInt8Kernel("scalar").lane,
            kernels::Int8Lane::kScalar);
  EXPECT_EQ(kernels::resolveInt8Kernel(nullptr).lane,
            kernels::resolveInt8Kernel("").lane);
  const kernels::Int8Kernel& best = kernels::resolveInt8Kernel(nullptr);
  EXPECT_TRUE(kernels::laneSupported(best.lane));
  if (kernels::laneSupported(kernels::Int8Lane::kAvx2)) {
    EXPECT_EQ(best.lane, kernels::Int8Lane::kAvx2);
  }
  for (const kernels::Int8Lane lane : supportedSimdLanes()) {
    EXPECT_EQ(kernels::resolveInt8Kernel(kernels::laneName(lane)).lane, lane);
  }
}

TEST(KernelDispatchTest, UnknownLaneAborts) {
  // DARPA_KERNEL typos must fail loudly, not silently fall back — perf
  // numbers pinned to a lane that was never selected are worse than none.
  EXPECT_DEATH(static_cast<void>(kernels::resolveInt8Kernel("neon")),
               "unknown kernel lane");
}

TEST(KernelDispatchTest, PaddingIsKernelSized) {
  EXPECT_EQ(kernels::padInt8RowSize(1), kernels::kInt8KernelPad);
  EXPECT_EQ(kernels::padInt8RowSize(kernels::kInt8KernelPad),
            kernels::kInt8KernelPad);
  EXPECT_EQ(kernels::padInt8RowSize(kernels::kInt8KernelPad + 1),
            2 * kernels::kInt8KernelPad);
  Rng rng(71);
  const Mlp mlp({33, 31, 4}, rng);
  const QuantizedMlp quantized = QuantizedMlp::fromMlp(mlp, {});
  for (const QuantizedLayer& layer : quantized.layers()) {
    EXPECT_EQ(layer.paddedInSize, kernels::padInt8RowSize(layer.inSize));
    ASSERT_EQ(layer.packedWeights.size(),
              static_cast<std::size_t>(layer.outSize) * layer.paddedInSize);
    for (int j = 0; j < layer.outSize; ++j) {
      const std::int8_t* packed =
          layer.packedWeights.data() +
          static_cast<std::size_t>(j) * layer.paddedInSize;
      for (int i = 0; i < layer.inSize; ++i) {
        EXPECT_EQ(packed[i],
                  layer.weights[static_cast<std::size_t>(j) * layer.inSize +
                                i]);
      }
      for (int i = layer.inSize; i < layer.paddedInSize; ++i) {
        EXPECT_EQ(packed[i], 0) << "padding must be zero (exactness)";
      }
    }
  }
}

TEST(QuantizeTest, WeightsAreInt8Range) {
  Rng rng(23);
  const Mlp mlp({4, 8, 2}, rng);
  const QuantizedMlp quantized = QuantizedMlp::fromMlp(mlp, {});
  for (const QuantizedLayer& layer : quantized.layers()) {
    for (std::int8_t w : layer.weights) {
      EXPECT_GE(w, -127);
      EXPECT_LE(w, 127);
    }
    EXPECT_GT(layer.dequantScale, 0.0f);
  }
}

}  // namespace
}  // namespace darpa::nn
