// Unit tests for src/gfx: Bitmap operations and Canvas drawing.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <utility>

#include "gfx/bitmap.h"
#include "gfx/canvas.h"

namespace darpa::gfx {
namespace {

TEST(BitmapTest, ConstructionAndFill) {
  Bitmap bmp(4, 3, colors::kRed);
  EXPECT_EQ(bmp.width(), 4);
  EXPECT_EQ(bmp.height(), 3);
  EXPECT_EQ(bmp.pixelCount(), 12u);
  EXPECT_EQ(bmp.at(0, 0), colors::kRed);
  EXPECT_EQ(bmp.at(3, 2), colors::kRed);
  bmp.fill(colors::kBlue);
  EXPECT_EQ(bmp.at(2, 1), colors::kBlue);
}

TEST(BitmapTest, EmptyBitmap) {
  Bitmap bmp;
  EXPECT_TRUE(bmp.empty());
  EXPECT_EQ(bmp.pixelCount(), 0u);
  Bitmap negative(-5, 10);
  EXPECT_TRUE(negative.empty());
}

TEST(BitmapTest, CloneIsADeepCopy) {
  Bitmap bmp(3, 3, colors::kRed);
  Bitmap copy = bmp.clone();
  EXPECT_EQ(copy, bmp);
  copy.set(1, 1, colors::kBlue);
  EXPECT_EQ(bmp.at(1, 1), colors::kRed);  // the original is untouched
  EXPECT_NE(copy, bmp);
}

TEST(BitmapTest, MovedFromIsEmpty) {
  Bitmap bmp(4, 4, colors::kGreen);
  const Bitmap moved = std::move(bmp);
  EXPECT_TRUE(bmp.empty());  // NOLINT(bugprone-use-after-move): the contract
  EXPECT_EQ(bmp.pixelCount(), 0u);
  EXPECT_EQ(moved.at(3, 3), colors::kGreen);
}

TEST(BitmapTest, EqualityComparesContentsNotIdentity) {
  Bitmap a(2, 2, colors::kRed);
  Bitmap b(2, 2, colors::kRed);
  EXPECT_EQ(a, b);  // distinct slabs, same pixels
  b.set(0, 0, colors::kBlue);
  EXPECT_NE(a, b);
  EXPECT_NE(a, Bitmap(2, 3, colors::kRed));  // same area, different shape
}

#if DARPA_BOUNDS_CHECKS
TEST(BitmapDeathTest, AtOutOfBoundsAborts) {
  Bitmap bmp(2, 2, colors::kWhite);
  EXPECT_DEATH((void)bmp.at(2, 0), "bounds");
  EXPECT_DEATH((void)bmp.at(0, -1), "bounds");
}

TEST(BitmapDeathTest, SetOutOfBoundsAborts) {
  Bitmap bmp(2, 2, colors::kWhite);
  EXPECT_DEATH(bmp.set(-1, 0, colors::kRed), "bounds");
  EXPECT_DEATH(bmp.set(0, 2, colors::kRed), "bounds");
}
#endif  // DARPA_BOUNDS_CHECKS

TEST(BitmapTest, AtClampedOutOfBounds) {
  Bitmap bmp(2, 2, colors::kWhite);
  EXPECT_EQ(bmp.atClamped(-1, 0), colors::kTransparent);
  EXPECT_EQ(bmp.atClamped(0, 5), colors::kTransparent);
  EXPECT_EQ(bmp.atClamped(1, 1), colors::kWhite);
}

TEST(BitmapTest, FillRectClipsToBounds) {
  Bitmap bmp(10, 10, colors::kWhite);
  bmp.fillRect({8, 8, 10, 10}, colors::kBlack);
  EXPECT_EQ(bmp.at(9, 9), colors::kBlack);
  EXPECT_EQ(bmp.at(7, 7), colors::kWhite);
}

TEST(BitmapTest, CropCopiesRegion) {
  Bitmap bmp(10, 10, colors::kWhite);
  bmp.fillRect({2, 2, 3, 3}, colors::kGreen);
  const Bitmap cropped = bmp.crop({2, 2, 3, 3});
  EXPECT_EQ(cropped.width(), 3);
  EXPECT_EQ(cropped.height(), 3);
  EXPECT_EQ(cropped.at(0, 0), colors::kGreen);
  EXPECT_EQ(cropped.at(2, 2), colors::kGreen);
}

TEST(BitmapTest, CropClipsOutOfBounds) {
  Bitmap bmp(10, 10);
  const Bitmap cropped = bmp.crop({8, 8, 10, 10});
  EXPECT_EQ(cropped.width(), 2);
  EXPECT_EQ(cropped.height(), 2);
}

TEST(BitmapTest, DownscaleAveragesRegions) {
  Bitmap bmp(4, 4, colors::kWhite);
  bmp.fillRect({0, 0, 2, 4}, colors::kBlack);  // left half black
  const Bitmap small = bmp.downscale(2, 1);
  EXPECT_EQ(small.at(0, 0), colors::kBlack);
  EXPECT_EQ(small.at(1, 0), colors::kWhite);
}

TEST(BitmapTest, DownscalePreservesMeanLuma) {
  Bitmap bmp(64, 64);
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      bmp.set(x, y, Color::rgb(static_cast<std::uint8_t>((x * 4) & 0xff),
                               static_cast<std::uint8_t>((y * 4) & 0xff), 128));
    }
  }
  const Bitmap small = bmp.downscale(16, 16);
  EXPECT_NEAR(small.meanLuma(small.bounds()), bmp.meanLuma(bmp.bounds()), 2.0);
}

TEST(BitmapTest, DownscaleTwoXFastPathMatchesBlockAverage) {
  // The exact-2x decimation shortcut must reproduce the general path's
  // truncating per-block average on every channel, alpha included.
  Bitmap bmp(26, 14);
  std::uint32_t state = 0x12345u;
  auto next = [&] {
    state = state * 1664525u + 1013904223u;
    return static_cast<std::uint8_t>(state >> 24);
  };
  for (int y = 0; y < 14; ++y) {
    for (int x = 0; x < 26; ++x) {
      bmp.set(x, y, {next(), next(), next(), next()});
    }
  }
  const Bitmap small = bmp.downscale(13, 7);
  for (int oy = 0; oy < 7; ++oy) {
    for (int ox = 0; ox < 13; ++ox) {
      std::uint32_t r = 0, g = 0, b = 0, a = 0;
      for (int dy = 0; dy < 2; ++dy) {
        for (int dx = 0; dx < 2; ++dx) {
          const Color c = bmp.at(2 * ox + dx, 2 * oy + dy);
          r += c.r;
          g += c.g;
          b += c.b;
          a += c.a;
        }
      }
      const Color got = small.at(ox, oy);
      EXPECT_EQ(got.r, r / 4) << ox << "," << oy;
      EXPECT_EQ(got.g, g / 4) << ox << "," << oy;
      EXPECT_EQ(got.b, b / 4) << ox << "," << oy;
      EXPECT_EQ(got.a, a / 4) << ox << "," << oy;
    }
  }
}

TEST(BitmapTest, MeanColorAndLuma) {
  Bitmap bmp(2, 1);
  bmp.set(0, 0, colors::kBlack);
  bmp.set(1, 0, colors::kWhite);
  const Color mean = bmp.meanColor(bmp.bounds());
  EXPECT_NEAR(mean.r, 127, 1);
  EXPECT_NEAR(bmp.meanLuma(bmp.bounds()), 127.5, 1.0);
}

TEST(BitmapTest, LumaStddevUniformIsZero) {
  Bitmap bmp(8, 8, colors::kGray);
  EXPECT_NEAR(bmp.lumaStddev(bmp.bounds()), 0.0, 1e-4);
}

TEST(BitmapTest, LumaStddevCheckerboardIsLarge) {
  Bitmap bmp(8, 8);
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      bmp.set(x, y, (x + y) % 2 == 0 ? colors::kBlack : colors::kWhite);
    }
  }
  EXPECT_GT(bmp.lumaStddev(bmp.bounds()), 100.0);
}

TEST(BitmapTest, BoxBlurReducesStddev) {
  Bitmap bmp(16, 16);
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 16; ++x) {
      bmp.set(x, y, (x + y) % 2 == 0 ? colors::kBlack : colors::kWhite);
    }
  }
  const double before = bmp.lumaStddev(bmp.bounds());
  bmp.boxBlur(bmp.bounds(), 2);
  EXPECT_LT(bmp.lumaStddev(bmp.bounds()), before / 4.0);
}

TEST(BitmapTest, BoxBlurOnlyTouchesRegion) {
  Bitmap bmp(20, 20, colors::kWhite);
  bmp.fillRect({0, 0, 20, 20}, colors::kWhite);
  bmp.fillRect({5, 5, 4, 4}, colors::kBlack);
  bmp.boxBlur({5, 5, 4, 4}, 1);
  // Outside the region untouched.
  EXPECT_EQ(bmp.at(0, 0), colors::kWhite);
  EXPECT_EQ(bmp.at(15, 15), colors::kWhite);
}

TEST(BitmapTest, WritePpmProducesHeaderAndPayload) {
  Bitmap bmp(3, 2, colors::kRed);
  const std::string path = "/tmp/darpa_test_bitmap.ppm";
  ASSERT_TRUE(bmp.writePpm(path));
  std::ifstream in(path, std::ios::binary);
  std::string header;
  in >> header;
  EXPECT_EQ(header, "P6");
  std::remove(path.c_str());
}

TEST(CanvasTest, FillRectOpaque) {
  Bitmap bmp(10, 10, colors::kWhite);
  Canvas canvas(bmp);
  canvas.fillRect({2, 2, 4, 4}, colors::kBlue);
  EXPECT_EQ(bmp.at(3, 3), colors::kBlue);
  EXPECT_EQ(bmp.at(1, 1), colors::kWhite);
}

TEST(CanvasTest, FillRectTranslucentBlends) {
  Bitmap bmp(4, 4, colors::kWhite);
  Canvas canvas(bmp);
  canvas.fillRect(bmp.bounds(), colors::kBlack.withAlpha(128));
  EXPECT_GT(bmp.at(0, 0).r, 100);
  EXPECT_LT(bmp.at(0, 0).r, 160);
}

TEST(CanvasTest, StrokeRectLeavesInteriorUntouched) {
  Bitmap bmp(20, 20, colors::kWhite);
  Canvas canvas(bmp);
  canvas.strokeRect({2, 2, 16, 16}, colors::kRed, 2);
  EXPECT_EQ(bmp.at(2, 2), colors::kRed);     // border
  EXPECT_EQ(bmp.at(17, 17), colors::kRed);   // border
  EXPECT_EQ(bmp.at(10, 10), colors::kWhite); // interior
  EXPECT_EQ(bmp.at(0, 0), colors::kWhite);   // outside
}

TEST(CanvasTest, RoundedRectCutsCorners) {
  Bitmap bmp(20, 20, colors::kWhite);
  Canvas canvas(bmp);
  canvas.fillRoundedRect({0, 0, 20, 20}, colors::kBlack, 8);
  EXPECT_EQ(bmp.at(0, 0), colors::kWhite);    // corner outside radius
  EXPECT_EQ(bmp.at(10, 10), colors::kBlack);  // center
  EXPECT_EQ(bmp.at(10, 0), colors::kBlack);   // mid-edge
}

TEST(CanvasTest, FillCircle) {
  Bitmap bmp(21, 21, colors::kWhite);
  Canvas canvas(bmp);
  canvas.fillCircle({10, 10}, 5, colors::kGreen);
  EXPECT_EQ(bmp.at(10, 10), colors::kGreen);
  EXPECT_EQ(bmp.at(10, 5), colors::kGreen);   // on radius
  EXPECT_EQ(bmp.at(0, 0), colors::kWhite);    // far corner
}

TEST(CanvasTest, StrokeCircleHollow) {
  Bitmap bmp(31, 31, colors::kWhite);
  Canvas canvas(bmp);
  canvas.strokeCircle({15, 15}, 10, colors::kBlack, 2);
  EXPECT_EQ(bmp.at(15, 15), colors::kWhite);  // hollow center
  EXPECT_EQ(bmp.at(15, 5), colors::kBlack);   // on the ring
}

TEST(CanvasTest, GradientMonotoneLuma) {
  Bitmap bmp(4, 32, colors::kWhite);
  Canvas canvas(bmp);
  canvas.fillVerticalGradient(bmp.bounds(), colors::kBlack, colors::kWhite);
  double prev = -1.0;
  for (int y = 0; y < 32; y += 4) {
    const double l = luma(bmp.at(2, y));
    EXPECT_GE(l, prev);
    prev = l;
  }
}

TEST(CanvasTest, DrawLineEndpoints) {
  Bitmap bmp(10, 10, colors::kWhite);
  Canvas canvas(bmp);
  canvas.drawLine({1, 1}, {8, 8}, colors::kRed);
  EXPECT_EQ(bmp.at(1, 1), colors::kRed);
  EXPECT_EQ(bmp.at(8, 8), colors::kRed);
  EXPECT_EQ(bmp.at(4, 4), colors::kRed);  // on the diagonal
}

TEST(CanvasTest, DrawCrossPutsInkInRect) {
  Bitmap bmp(20, 20, colors::kWhite);
  Canvas canvas(bmp);
  canvas.drawCross({4, 4, 12, 12}, colors::kBlack, 2);
  int inked = 0;
  for (int y = 4; y < 16; ++y) {
    for (int x = 4; x < 16; ++x) {
      if (bmp.at(x, y) == colors::kBlack) ++inked;
    }
  }
  EXPECT_GT(inked, 10);
  EXPECT_EQ(bmp.at(0, 0), colors::kWhite);
}

TEST(CanvasTest, PseudoTextDeterministicAndInked) {
  Bitmap a(100, 20, colors::kWhite);
  Bitmap b(100, 20, colors::kWhite);
  Canvas ca(a);
  Canvas cb(b);
  const Rect ra = ca.drawPseudoText({2, 2}, "close", colors::kBlack, 2);
  const Rect rb = cb.drawPseudoText({2, 2}, "close", colors::kBlack, 2);
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(a, b);
  // Different strings produce different ink.
  Bitmap c(100, 20, colors::kWhite);
  Canvas cc(c);
  cc.drawPseudoText({2, 2}, "openx", colors::kBlack, 2);
  EXPECT_NE(a, c);
}

TEST(CanvasTest, PseudoTextWidthMatchesPaintedRect) {
  Bitmap bmp(200, 20, colors::kWhite);
  Canvas canvas(bmp);
  const Rect painted = canvas.drawPseudoText({0, 0}, "hello w", colors::kBlack, 3);
  EXPECT_EQ(painted.width, Canvas::pseudoTextWidth("hello w", 3));
  EXPECT_EQ(painted.height, Canvas::pseudoTextHeight(3));
}

TEST(CanvasTest, DrawBitmapHonorsLayerAlpha) {
  Bitmap dst(4, 4, colors::kWhite);
  Bitmap src(4, 4, colors::kBlack);
  Canvas canvas(dst);
  canvas.drawBitmap(src, {0, 0}, 0);  // fully transparent layer: no-op
  EXPECT_EQ(dst.at(1, 1), colors::kWhite);
  canvas.drawBitmap(src, {0, 0}, 255);
  EXPECT_EQ(dst.at(1, 1), colors::kBlack);
}

}  // namespace
}  // namespace darpa::gfx
