// Lock-rank validator tests: the strictly-increasing acquisition rule, its
// abort-on-violation contract (death tests), the registry's view of the
// runtime's lock population, and a W=4 fleet smoke run proving the rank
// tags on the FramePool + executor locks hold under real concurrency.
#include <gtest/gtest.h>

#include "core/work_ledger.h"
#include "cv/detector.h"
#include "fleet/executors.h"
#include "fleet/fleet.h"
#include "gfx/frame_pool.h"
#include "util/lock_rank.h"

namespace darpa::util {
namespace {

TEST(LockRankTest, IncreasingAcquisitionIsLegal) {
  RankedMutex queue(LockRank::kExecutorQueue, "test.queue");
  RankedMutex pool(LockRank::kFramePool, "test.pool");
  {
    const LockGuard outer(queue);
    EXPECT_EQ(RankValidator::topRank(),
              static_cast<int>(LockRank::kExecutorQueue));
    {
      const LockGuard inner(pool);  // higher rank under lower: fine
      EXPECT_EQ(RankValidator::heldCount(), 2);
      EXPECT_EQ(RankValidator::topRank(),
                static_cast<int>(LockRank::kFramePool));
    }
    EXPECT_EQ(RankValidator::heldCount(), 1);
  }
  EXPECT_EQ(RankValidator::heldCount(), 0);
  EXPECT_EQ(RankValidator::topRank(), -1);
}

TEST(LockRankTest, ReleaseRestoresLowerRanksAcquirable) {
  RankedMutex control(LockRank::kFleetControl, "test.control");
  RankedMutex pool(LockRank::kFramePool, "test.pool");
  {
    const LockGuard a(pool);  // take the leaf first...
  }
  {
    const LockGuard b(control);  // ...then, after release, a lower rank
    EXPECT_EQ(RankValidator::heldCount(), 1);
  }
}

#if DARPA_LOCK_RANK_CHECKS
TEST(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  RankedMutex queue(LockRank::kExecutorQueue, "test.queue");
  RankedMutex pool(LockRank::kFramePool, "test.pool");
  EXPECT_DEATH(
      {
        const LockGuard outer(pool);   // leaf rank first...
        const LockGuard inner(queue);  // ...then a LOWER rank: deadlockable
      },
      "lock-rank");
}

TEST(LockRankDeathTest, SameRankReacquisitionAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  RankedMutex a(LockRank::kExecutorQueue, "test.a");
  RankedMutex b(LockRank::kExecutorQueue, "test.b");
  EXPECT_DEATH(
      {
        const LockGuard outer(a);
        const LockGuard inner(b);  // equal rank: order undefined -> abort
      },
      "lock-rank");
}
#endif  // DARPA_LOCK_RANK_CHECKS

TEST(LockRankTest, RegistryTracksLiveMutexes) {
  const int before =
      LockRankRegistry::instance().liveCount(LockRank::kSessionQueue);
  {
    RankedMutex m(LockRank::kSessionQueue, "test.registry-probe");
    EXPECT_EQ(LockRankRegistry::instance().liveCount(LockRank::kSessionQueue),
              before + 1);
    bool found = false;
    for (const auto& entry : LockRankRegistry::instance().snapshot()) {
      if (entry.rank == LockRank::kSessionQueue &&
          std::string(entry.name) == "test.registry-probe") {
        found = entry.live >= 1;
      }
    }
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(LockRankRegistry::instance().liveCount(LockRank::kSessionQueue),
            before);
}

TEST(LockRankTest, RankNamesCoverTheTable) {
  EXPECT_STREQ(lockRankName(LockRank::kFleetControl), "fleet-control");
  EXPECT_STREQ(lockRankName(LockRank::kFleetFlush), "fleet-flush");
  EXPECT_STREQ(lockRankName(LockRank::kSessionQueue), "session-queue");
  EXPECT_STREQ(lockRankName(LockRank::kExecutorQueue), "executor-queue");
  EXPECT_STREQ(lockRankName(LockRank::kStatMerge), "stat-merge");
  EXPECT_STREQ(lockRankName(LockRank::kFramePool), "frame-pool");
  EXPECT_STREQ(lockRankName(LockRank::kFramePoolSpill), "frame-pool-spill");
}

// ------------------------------------------------- fleet rank smoke (W=4)

/// Deterministic thread-safe detector (one confident UPO per screen).
class SmokeDetector : public cv::Detector {
 public:
  std::vector<cv::Detection> detect(const gfx::Bitmap&) const override {
    return {cv::Detection{{10, 50, 60, 24}, dataset::BoxLabel::kUpo, 0.9f}};
  }
  double costMacsPerImage() const override { return 1.0e6; }
};

TEST(LockRankTest, FleetRankTagsConsistentUnderFourWorkers) {
  // A pooled, batched fleet at W=4 exercises every ranked lock in the
  // runtime concurrently: executor submit from four session workers,
  // FramePool acquire/release from captures and §IV-E scrubs, all while
  // the rank validator is live on every thread. An ordering violation
  // anywhere would abort the run.
  SmokeDetector detector;
  fleet::BatchingExecutor executor({.maxBatchSize = 16, .threads = 4});
  fleet::FleetConfig config;
  config.sessions = 16;
  config.workers = 4;
  config.epoch = ms(500);
  config.duration = ms(2000);
  config.pooledFrames = true;
  config.sharedVerdictTier = true;  // shards resolve to the worker count
  fleet::Fleet fleet(detector, executor, config);

  // The runtime's lock population carries the documented ranks: both
  // executor classes at kExecutorQueue, the shared pool at kFramePool —
  // and the pool rank stays strictly above the executor rank so slab
  // release is a legal leaf under a queue lock.
  auto& registry = LockRankRegistry::instance();
  EXPECT_GE(registry.liveCount(LockRank::kExecutorQueue), 1);
  EXPECT_GE(registry.liveCount(LockRank::kFramePool), 1);
  EXPECT_GT(static_cast<int>(LockRank::kFramePool),
            static_cast<int>(LockRank::kExecutorQueue));

  // The work-stealing driver's lock population (the fleet default): the
  // global control lock, one run-queue shard per worker, the flush token —
  // ranked strictly BELOW the executor queue, because a flushing worker
  // submits into the backend while holding it — and one stat-merge shard
  // per worker for the retirement folds.
  EXPECT_GE(registry.liveCount(LockRank::kFleetControl), 1);
  EXPECT_GE(registry.liveCount(LockRank::kSessionQueue), 4);
  EXPECT_GE(registry.liveCount(LockRank::kFleetFlush), 1);
  EXPECT_GE(registry.liveCount(LockRank::kStatMerge), 4);
  EXPECT_LT(static_cast<int>(LockRank::kFleetFlush),
            static_cast<int>(LockRank::kExecutorQueue));

  // The shared verdict tier's stripes: one per worker here, ranked
  // strictly between the executor queues (completions may publish while a
  // flush holds one) and the stat-merge/frame-pool leaves.
  EXPECT_GE(registry.liveCount(LockRank::kVerdictTier), 4);
  EXPECT_GT(static_cast<int>(LockRank::kVerdictTier),
            static_cast<int>(LockRank::kExecutorQueue));
  EXPECT_LT(static_cast<int>(LockRank::kVerdictTier),
            static_cast<int>(LockRank::kStatMerge));

  fleet.run();
  const fleet::FleetSnapshot snap = fleet.snapshot();
  EXPECT_GT(snap.ledger.analyses(), 0);
  EXPECT_GT(snap.framePool.acquires, 0);
  // Quiescent at the end: no thread still holds a ranked lock.
  EXPECT_EQ(RankValidator::heldCount(), 0);
}

}  // namespace
}  // namespace darpa::util
