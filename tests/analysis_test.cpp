// Unit tests for the static AUI lint pass: context reconstruction from the
// pre-order dump, one positive and one negative fixture per rule, the merged
// verdict on AUI / symmetric-dialog / benign-banner screens, the style
// metadata the WindowManager dump feeds the rules, and the DarpaService
// pre-filter short-circuiting CV on confident verdicts.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/lint.h"
#include "android/system.h"
#include "baselines/frauddroid.h"
#include "core/darpa_service.h"

namespace darpa::analysis {
namespace {

constexpr Size kScreen{360, 720};
constexpr Rect kWindow{0, 24, 360, 648};

android::UiNode makeNode(std::string cls, Rect bounds, int depth) {
  android::UiNode n;
  n.className = std::move(cls);
  n.boundsOnScreen = bounds;
  n.depth = depth;
  return n;
}

/// The generator's canonical asymmetric popup with obfuscated ids: scrim,
/// opaque panel, loud dominant CTA, 18x18 low-contrast corner close.
android::UiDump auiDump() {
  android::UiDump dump;
  auto root = makeNode("View", kWindow, 0);
  root.background = colors::kWhite;
  dump.push_back(root);

  auto scrim = makeNode("View", kWindow, 1);
  scrim.background = colors::kBlack;
  scrim.effAlpha = 0.6;
  dump.push_back(scrim);

  auto panel = makeNode("View", {40, 200, 280, 300}, 1);
  panel.background = colors::kWhite;
  dump.push_back(panel);

  auto ago = makeNode("Button", {64, 380, 232, 56}, 2);
  ago.clickable = true;
  ago.background = Color::rgb(230, 70, 40);
  ago.contentColor = colors::kWhite;
  ago.hasContentColor = true;
  dump.push_back(ago);

  auto upo = makeNode("IconView", {44, 204, 18, 18}, 2);
  upo.clickable = true;
  upo.contentColor = Color::rgb(190, 190, 190);
  upo.hasContentColor = true;
  dump.push_back(upo);
  return dump;
}

/// Footnote-4 hard negative: a modal offering two comparably prominent
/// options plus an ordinary close button. Must NOT be flagged.
android::UiDump symmetricDialogDump() {
  android::UiDump dump;
  auto root = makeNode("View", kWindow, 0);
  root.background = colors::kWhite;
  dump.push_back(root);

  auto scrim = makeNode("View", kWindow, 1);
  scrim.background = colors::kBlack;
  scrim.effAlpha = 0.6;
  dump.push_back(scrim);

  auto panel = makeNode("View", {40, 220, 280, 260}, 1);
  panel.background = colors::kWhite;
  dump.push_back(panel);

  auto yes = makeNode("Button", {60, 400, 120, 48}, 2);
  yes.clickable = true;
  yes.background = Color::rgb(230, 70, 40);
  yes.contentColor = colors::kWhite;
  yes.hasContentColor = true;
  dump.push_back(yes);

  auto no = makeNode("Button", {190, 400, 120, 48}, 2);
  no.clickable = true;
  no.background = Color::rgb(235, 235, 235);
  no.contentColor = colors::kBlack;
  no.hasContentColor = true;
  dump.push_back(no);

  auto close = makeNode("IconView", {44, 224, 20, 20}, 2);
  close.clickable = true;
  close.contentColor = colors::kBlack;  // reads as loud as the dialog text
  close.hasContentColor = true;
  dump.push_back(close);
  return dump;
}

/// Benign feed with an honest banner ad whose resource ids are designed to
/// trip string matching ("iv_ad_banner", "btn_close").
android::UiDump benignBannerDump() {
  android::UiDump dump;
  auto root = makeNode("View", kWindow, 0);
  root.background = colors::kWhite;
  dump.push_back(root);

  auto content = makeNode("TextView", {16, 60, 328, 40}, 1);
  content.text = "feed item";
  content.contentColor = colors::kBlack;
  content.hasContentColor = true;
  dump.push_back(content);

  auto banner = makeNode("View", {0, 598, 360, 74}, 1);
  banner.background = colors::kWhite;
  dump.push_back(banner);

  auto creative = makeNode("ImageView", {0, 598, 320, 74}, 2);
  creative.clickable = true;
  creative.resourceId = "iv_ad_banner";
  dump.push_back(creative);

  auto close = makeNode("Button", {324, 602, 24, 24}, 2);
  close.clickable = true;
  close.resourceId = "btn_close";
  close.background = Color::rgb(235, 235, 235);
  close.contentColor = colors::kBlack;
  close.hasContentColor = true;
  dump.push_back(close);
  return dump;
}

// ---------------------------------------------------------------- context

TEST(LintContextTest, ReconstructsHierarchyFromPreOrderDepths) {
  const android::UiDump dump = auiDump();
  const LintContext ctx(dump, kScreen);
  EXPECT_EQ(ctx.parent(0), -1);
  EXPECT_EQ(ctx.parent(1), 0);
  EXPECT_EQ(ctx.parent(2), 0);
  EXPECT_EQ(ctx.parent(3), 2);
  EXPECT_EQ(ctx.parent(4), 2);
  EXPECT_EQ(ctx.subtreeEnd(2), 5);  // panel subtree spans the two options
  EXPECT_TRUE(ctx.isDescendant(4, 2));
  EXPECT_FALSE(ctx.isDescendant(2, 4));
  EXPECT_EQ(ctx.path(0), "View");
  EXPECT_EQ(ctx.path(2), "View/View[1]");
  EXPECT_EQ(ctx.path(4), "View/View[1]/IconView[1]");
}

TEST(LintContextTest, DetectsModalScaffolding) {
  const android::UiDump dump = auiDump();
  const LintContext ctx(dump, kScreen);
  EXPECT_TRUE(ctx.modal());
  EXPECT_EQ(ctx.scrimIndex(), 1);
  EXPECT_EQ(ctx.panelIndex(), 2);
  EXPECT_EQ(ctx.panelRect(), (Rect{40, 200, 280, 300}));
  EXPECT_EQ(ctx.dominantClickable(0.02), 3);
  const std::vector<int> dismiss = ctx.dismissCandidates(2600, 28);
  ASSERT_EQ(dismiss.size(), 1u);
  EXPECT_EQ(dismiss[0], 4);
  EXPECT_FALSE(ctx.symmetricPair());
}

TEST(LintContextTest, BenignScreenHasNoModalAndSymmetricDialogIsDetected) {
  const android::UiDump bannerDump = benignBannerDump();
  const LintContext benign(bannerDump, kScreen);
  EXPECT_FALSE(benign.modal());
  EXPECT_EQ(benign.panelRect(), kWindow);  // falls back to the window

  const android::UiDump dialogDump = symmetricDialogDump();
  const LintContext dialog(dialogDump, kScreen);
  EXPECT_TRUE(dialog.modal());
  EXPECT_TRUE(dialog.symmetricPair());
}

TEST(LintContextTest, EffectiveBackdropCompositesAncestorPaint) {
  const android::UiDump dump = auiDump();
  const LintContext ctx(dump, kScreen);
  // The UPO sits on the opaque white panel: backdrop is pure white even
  // though a dark scrim was painted between root and panel.
  EXPECT_EQ(ctx.effectiveBackdrop(4), colors::kWhite);
  // The scrim itself sits on the white root, darkened by nothing above.
  EXPECT_EQ(ctx.effectiveBackdrop(1), colors::kWhite);
}

// ------------------------------------------------------------------ rules

TEST(SizeAsymmetryRuleTest, FlagsTinyDismissNextToDominantOption) {
  const android::UiDump dump = auiDump();
  const LintContext ctx(dump, kScreen);
  std::vector<LintFinding> findings;
  SizeAsymmetryRule().run(ctx, findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].ruleId, "aui-size-asymmetry");
  EXPECT_EQ(findings[0].nodeIndex, 4);
  EXPECT_EQ(findings[0].severity, Severity::kError);  // ratio ~40x
  EXPECT_GE(findings[0].score, 0.9);
  EXPECT_EQ(findings[0].box, (Rect{44, 204, 18, 18}));
}

TEST(SizeAsymmetryRuleTest, SymmetricDialogDowngradesToInfo) {
  const android::UiDump dump = symmetricDialogDump();
  const LintContext ctx(dump, kScreen);
  std::vector<LintFinding> findings;
  SizeAsymmetryRule().run(ctx, findings);
  ASSERT_EQ(findings.size(), 1u);  // the close button still trips the ratio
  EXPECT_EQ(findings[0].severity, Severity::kInfo);
  EXPECT_LE(findings[0].score, 0.25);
}

TEST(SizeAsymmetryRuleTest, DisabledRuleEmitsNothing) {
  SizeAsymmetryRule::Config config;
  config.enabled = false;
  const android::UiDump dump = auiDump();
  const LintContext ctx(dump, kScreen);
  std::vector<LintFinding> findings;
  SizeAsymmetryRule(config).run(ctx, findings);
  EXPECT_TRUE(findings.empty());
}

TEST(CornerPlacementRuleTest, FlagsCornerPinnedDismissOnModal) {
  const android::UiDump dump = auiDump();
  const LintContext ctx(dump, kScreen);
  std::vector<LintFinding> findings;
  CornerPlacementRule().run(ctx, findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].ruleId, "aui-corner-upo");
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_DOUBLE_EQ(findings[0].score, 1.0);
  EXPECT_NE(findings[0].message.find("corner"), std::string::npos);
}

TEST(CornerPlacementRuleTest, CentralDismissDoesNotFire) {
  android::UiDump dump = auiDump();
  // Move the close option to the middle of the panel.
  dump[4].boundsOnScreen = {171, 340, 18, 18};
  const LintContext ctx(dump, kScreen);
  std::vector<LintFinding> findings;
  CornerPlacementRule().run(ctx, findings);
  EXPECT_TRUE(findings.empty());
}

TEST(ContrastAsymmetryRuleTest, FlagsMutedDismissNextToLoudCta) {
  const android::UiDump dump = auiDump();
  const LintContext ctx(dump, kScreen);
  std::vector<LintFinding> findings;
  ContrastAsymmetryRule().run(ctx, findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].ruleId, "aui-contrast-asymmetry");
  EXPECT_EQ(findings[0].nodeIndex, 4);
  EXPECT_GT(findings[0].score, 0.0);
}

TEST(ContrastAsymmetryRuleTest, GhostDismissIsAnErrorOnItsOwn) {
  android::UiDump dump = auiDump();
  dump[4].effAlpha = 0.2;  // the generator's ghost-UPO range
  const LintContext ctx(dump, kScreen);
  std::vector<LintFinding> findings;
  ContrastAsymmetryRule().run(ctx, findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_DOUBLE_EQ(findings[0].score, 1.0);
  EXPECT_NE(findings[0].message.find("ghost"), std::string::npos);
}

TEST(ContrastAsymmetryRuleTest, HighContrastDismissDoesNotFire) {
  const android::UiDump dump = symmetricDialogDump();
  const LintContext ctx(dump, kScreen);
  std::vector<LintFinding> findings;
  ContrastAsymmetryRule().run(ctx, findings);
  EXPECT_TRUE(findings.empty());  // dark-on-white close reads louder than CTA
}

TEST(TouchTargetRuleTest, FlagsSubMinimumTargetsAndSpares48dp) {
  const android::UiDump dump = auiDump();
  const LintContext aui(dump, kScreen);
  std::vector<LintFinding> findings;
  TouchTargetRule().run(aui, findings);
  ASSERT_EQ(findings.size(), 1u);  // only the 18x18 close; the CTA is fine
  EXPECT_EQ(findings[0].ruleId, "touch-target");
  EXPECT_EQ(findings[0].nodeIndex, 4);
  EXPECT_DOUBLE_EQ(findings[0].score, 1.0);  // 18 < the 24px critical floor

  // Default ceiling is kWarning; a stricter deployment can raise it.
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  TouchTargetRule::Config strict;
  strict.maxSeverity = Severity::kError;
  std::vector<LintFinding> strictFindings;
  TouchTargetRule(strict).run(aui, strictFindings);
  ASSERT_EQ(strictFindings.size(), 1u);
  EXPECT_EQ(strictFindings[0].severity, Severity::kError);
}

TEST(HiddenClickableRuleTest, FlagsOffscreenClickable) {
  android::UiDump dump;
  auto root = makeNode("View", kWindow, 0);
  root.background = colors::kWhite;
  dump.push_back(root);
  auto button = makeNode("Button", {-100, 100, 80, 40}, 1);
  button.clickable = true;
  dump.push_back(button);

  const LintContext ctx(dump, kScreen);
  std::vector<LintFinding> findings;
  HiddenClickableRule().run(ctx, findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].ruleId, "hidden-clickable");
  EXPECT_EQ(findings[0].severity, Severity::kError);  // fully off-screen
  EXPECT_DOUBLE_EQ(findings[0].score, 1.0);
}

TEST(HiddenClickableRuleTest, FlagsOpaqueOcclusionButNotTranslucent) {
  android::UiDump dump;
  auto root = makeNode("View", kWindow, 0);
  root.background = colors::kWhite;
  dump.push_back(root);
  auto button = makeNode("Button", {20, 100, 100, 48}, 1);
  button.clickable = true;
  dump.push_back(button);
  auto cover = makeNode("View", kWindow, 1);  // painted after the button
  cover.background = colors::kWhite;
  dump.push_back(cover);

  {
    const LintContext ctx(dump, kScreen);
    std::vector<LintFinding> findings;
    HiddenClickableRule().run(ctx, findings);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_NE(findings[0].message.find("occluded"), std::string::npos);
  }
  dump[2].effAlpha = 0.5;  // a translucent veil doesn't hide the button
  {
    const LintContext ctx(dump, kScreen);
    std::vector<LintFinding> findings;
    HiddenClickableRule().run(ctx, findings);
    EXPECT_TRUE(findings.empty());
  }
}

TEST(IdTokenRuleTest, FlagsFraudDroidVocabularyAndStarvesOnObfuscation) {
  const android::UiDump bannerDump = benignBannerDump();
  const LintContext banner(bannerDump, kScreen);
  std::vector<LintFinding> findings;
  IdTokenRule().run(banner, findings);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].message.find("iv_ad_banner"), std::string::npos);
  EXPECT_EQ(findings[0].message.rfind("CTA", 0), 0u);  // tagged as AGO hit
  EXPECT_NE(findings[1].message.find("btn_close"), std::string::npos);

  // The AUI fixture is fully obfuscated: the id rule sees nothing — the
  // asymmetry that FraudDroid-style matching goes blind on (§VI-C).
  const android::UiDump auiFixture = auiDump();
  const LintContext aui(auiFixture, kScreen);
  std::vector<LintFinding> none;
  IdTokenRule().run(aui, none);
  EXPECT_TRUE(none.empty());
}

// ---------------------------------------------------------------- verdict

TEST(LintEngineTest, FlagsObfuscatedAuiConfidently) {
  const LintEngine engine = LintEngine::withDefaultRules();
  EXPECT_EQ(engine.ruleCount(), 6u);
  const LintReport report = engine.run(auiDump(), kScreen);
  EXPECT_TRUE(report.verdict.isAui);
  EXPECT_TRUE(report.verdict.confident);
  EXPECT_GE(report.verdict.score, 0.6);
  EXPECT_EQ(report.nodesVisited, 5);
  EXPECT_TRUE(report.has("aui-size-asymmetry"));
  EXPECT_TRUE(report.has("aui-corner-upo"));
  EXPECT_FALSE(report.has("aui-id-hint"));
  ASSERT_NE(report.best("aui-size-asymmetry"), nullptr);
  EXPECT_GE(report.best("aui-size-asymmetry")->score, 0.9);

  // Option boxes are FraudDroidResult-shaped: UPO = the corner close,
  // AGO = the dominant CTA.
  ASSERT_EQ(report.verdict.upoBoxes.size(), 1u);
  EXPECT_EQ(report.verdict.upoBoxes[0], (Rect{44, 204, 18, 18}));
  ASSERT_EQ(report.verdict.agoBoxes.size(), 1u);
  EXPECT_EQ(report.verdict.agoBoxes[0], (Rect{64, 380, 232, 56}));

  // The same screen is invisible to resource-id matching.
  const baselines::FraudDroidDetector fraudDroid;
  EXPECT_FALSE(fraudDroid.analyze(auiDump(), kScreen).isAui);
}

TEST(LintEngineTest, SymmetricDialogIsConfidentlyClean) {
  const LintEngine engine = LintEngine::withDefaultRules();
  const LintReport report = engine.run(symmetricDialogDump(), kScreen);
  EXPECT_FALSE(report.verdict.isAui);
  EXPECT_TRUE(report.verdict.confident);
  EXPECT_LE(report.verdict.score, 0.15);
}

TEST(LintEngineTest, HonestBannerIsNotFlaggedButStaysUnconfident) {
  const LintEngine engine = LintEngine::withDefaultRules();
  const LintReport report = engine.run(benignBannerDump(), kScreen);
  EXPECT_FALSE(report.verdict.isAui);
  // The banner shape is suspicious enough that lint declines to vouch for
  // it: in the runtime this screen falls through to the CV pass.
  EXPECT_FALSE(report.verdict.confident);
}

TEST(LintEngineTest, HygieneFindingsAloneNeverFlagAScreen) {
  // A screen with only a tiny clickable (touch-target + id vocabulary) but
  // no dominant counterpart must stay clean: the structural asymmetry rules
  // carry the verdict.
  android::UiDump dump;
  auto root = makeNode("View", kWindow, 0);
  root.background = colors::kWhite;
  dump.push_back(root);
  auto chip = makeNode("Button", {20, 100, 30, 30}, 1);
  chip.clickable = true;
  chip.resourceId = "btn_close";
  dump.push_back(chip);

  const LintEngine engine = LintEngine::withDefaultRules();
  const LintReport report = engine.run(dump, kScreen);
  EXPECT_TRUE(report.has("touch-target"));
  EXPECT_FALSE(report.verdict.isAui);
}

TEST(LintEngineTest, EmptyDumpIsConfidentlyClean) {
  const LintEngine engine = LintEngine::withDefaultRules();
  const LintReport report = engine.run({}, kScreen);
  EXPECT_FALSE(report.verdict.isAui);
  EXPECT_TRUE(report.verdict.confident);
  EXPECT_TRUE(report.findings.empty());
}

// ---------------------------------------------- dump style metadata

TEST(DumpMetadataTest, CarriesDepthColorsAndEffectiveAlpha) {
  android::WindowManager wm;
  auto root = std::make_unique<android::View>();
  root->setBackground(colors::kWhite);

  auto faded = std::make_unique<android::View>();
  faded->setFrame({10, 10, 200, 200});
  faded->setBackground(colors::kBlack);
  faded->setAlpha(0.5);
  auto* fadedPtr = root->addChild(std::move(faded));

  auto text = std::make_unique<android::TextView>();
  text->setFrame({5, 5, 100, 30});
  text->setText("hello");
  text->setTextColor(Color::rgb(200, 30, 30));
  text->setAlpha(0.8);
  fadedPtr->addChild(std::move(text));

  auto icon = std::make_unique<android::IconView>();
  icon->setFrame({5, 50, 20, 20});
  icon->setGlyphColor(Color::rgb(30, 30, 200));
  fadedPtr->addChild(std::move(icon));

  wm.showAppWindow("com.test.app", std::move(root), false);
  const android::UiDump dump = wm.dumpTopWindow();
  ASSERT_EQ(dump.size(), 4u);

  EXPECT_EQ(dump[0].depth, 0);
  EXPECT_EQ(dump[0].background, colors::kWhite);
  EXPECT_DOUBLE_EQ(dump[0].effAlpha, 1.0);
  EXPECT_FALSE(dump[0].hasContentColor);

  EXPECT_EQ(dump[1].depth, 1);
  EXPECT_EQ(dump[1].background, colors::kBlack);
  EXPECT_DOUBLE_EQ(dump[1].effAlpha, 0.5);

  EXPECT_EQ(dump[2].className, "TextView");
  EXPECT_EQ(dump[2].depth, 2);
  EXPECT_EQ(dump[2].text, "hello");
  EXPECT_TRUE(dump[2].hasContentColor);
  EXPECT_EQ(dump[2].contentColor, Color::rgb(200, 30, 30));
  EXPECT_DOUBLE_EQ(dump[2].effAlpha, 0.4);  // 0.5 * 0.8 through the chain

  EXPECT_EQ(dump[3].className, "IconView");
  EXPECT_TRUE(dump[3].hasContentColor);
  EXPECT_EQ(dump[3].contentColor, Color::rgb(30, 30, 200));
}

// ------------------------------------------------- service pre-filter

class CountingDetector : public cv::Detector {
 public:
  mutable int calls = 0;
  std::vector<cv::Detection> detect(const gfx::Bitmap&) const override {
    ++calls;
    return {};
  }
  double costMacsPerImage() const override { return 1.0e6; }
};

/// Live view tree mirroring auiDump(): scrim + panel + loud CTA + tiny
/// corner close, all ids obfuscated.
std::unique_ptr<android::View> makeAuiContent() {
  auto root = std::make_unique<android::View>();
  root->setBackground(colors::kWhite);

  auto scrim = std::make_unique<android::View>();
  scrim->setFrame({0, 0, 360, 648});
  scrim->setBackground(colors::kBlack);
  scrim->setAlpha(0.6);
  root->addChild(std::move(scrim));

  auto panel = std::make_unique<android::View>();
  panel->setFrame({40, 176, 280, 300});
  panel->setBackground(colors::kWhite);

  auto cta = std::make_unique<android::Button>();
  cta->setFrame({24, 180, 232, 56});
  cta->setBackground(Color::rgb(230, 70, 40));
  cta->setTextColor(colors::kWhite);
  cta->setText("INSTALL NOW");
  panel->addChild(std::move(cta));

  auto close = std::make_unique<android::IconView>();
  close->setFrame({4, 4, 18, 18});
  close->setGlyphColor(Color::rgb(190, 190, 190));
  close->setClickable(true);
  panel->addChild(std::move(close));

  root->addChild(std::move(panel));
  return root;
}

TEST(LintPrefilterTest, ConfidentCleanScreenSkipsCv) {
  android::AndroidSystem system;
  CountingDetector detector;
  const LintEngine engine = LintEngine::withDefaultRules();
  core::DarpaConfig config;
  config.lintPrefilter = &engine;
  core::DarpaService service(detector, config);
  system.accessibility.connect(service);

  auto root = std::make_unique<android::View>();  // static screen, no options
  root->setBackground(colors::kWhite);
  system.windowManager.showAppWindow("com.test.app", std::move(root), false);

  service.analyzeNow();
  EXPECT_EQ(detector.calls, 0);
  EXPECT_EQ(service.stats().lintRuns, 1);
  EXPECT_EQ(service.stats().cvSkippedByLint, 1);
  EXPECT_EQ(service.stats().screenshotsTaken, 0);
  EXPECT_FALSE(service.lastWasAui());
}

TEST(LintPrefilterTest, ConfidentAuiSkipsCvAndSynthesizesDetections) {
  android::AndroidSystem system;
  CountingDetector detector;
  const LintEngine engine = LintEngine::withDefaultRules();
  core::DarpaConfig config;
  config.lintPrefilter = &engine;
  core::DarpaService service(detector, config);
  system.accessibility.connect(service);

  system.windowManager.showAppWindow("com.evil.app", makeAuiContent(), false);

  service.analyzeNow();
  EXPECT_EQ(detector.calls, 0);
  EXPECT_EQ(service.stats().cvSkippedByLint, 1);
  EXPECT_TRUE(service.lastWasAui());
  bool hasUpo = false;
  for (const cv::Detection& det : service.lastDetections()) {
    if (det.label == dataset::BoxLabel::kUpo) hasUpo = true;
  }
  EXPECT_TRUE(hasUpo);
  // Lint-sourced detections drive decoration exactly like CV ones.
  EXPECT_FALSE(service.decorationRects().empty());
}

TEST(LintPrefilterTest, WithoutPrefilterCvRunsAsBefore) {
  android::AndroidSystem system;
  CountingDetector detector;
  core::DarpaService service(detector, {});
  system.accessibility.connect(service);
  system.windowManager.showAppWindow("com.evil.app", makeAuiContent(), false);

  service.analyzeNow();
  EXPECT_EQ(detector.calls, 1);
  EXPECT_EQ(service.stats().lintRuns, 0);
  EXPECT_EQ(service.stats().screenshotsTaken, 1);
}

}  // namespace
}  // namespace darpa::analysis
