// Unit tests for the FraudDroid baseline, the device performance model, and
// the user-study simulation.
#include <gtest/gtest.h>

#include "baselines/frauddroid.h"
#include "perf/device_model.h"
#include "study/user_study.h"

namespace darpa {
namespace {

using baselines::FraudDroidDetector;
using baselines::FraudDroidResult;

android::UiNode node(std::string cls, std::string rid, Rect bounds,
                     bool clickable) {
  android::UiNode n;
  n.className = std::move(cls);
  n.resourceId = std::move(rid);
  n.boundsOnScreen = bounds;
  n.clickable = clickable;
  return n;
}

constexpr Size kScreen{360, 720};

TEST(FraudDroidTest, FlagsAuiWithNamedIds) {
  const android::UiDump dump = {
      node("ImageView", "iv_ad_creative", {30, 100, 300, 400}, true),
      node("IconView", "btn_close", {310, 90, 20, 20}, true),
  };
  const FraudDroidResult result = FraudDroidDetector().analyze(dump, kScreen);
  EXPECT_TRUE(result.isAui);
  ASSERT_EQ(result.upoBoxes.size(), 1u);
  EXPECT_EQ(result.upoBoxes[0], (Rect{310, 90, 20, 20}));
  EXPECT_FALSE(result.agoBoxes.empty());
}

TEST(FraudDroidTest, ObfuscatedIdsDefeatIt) {
  // Same layout, ids minified — exactly the §VI-C failure mode.
  const android::UiDump dump = {
      node("ImageView", "ax", {30, 100, 300, 400}, true),
      node("IconView", "", {310, 90, 20, 20}, true),
  };
  const FraudDroidResult result = FraudDroidDetector().analyze(dump, kScreen);
  EXPECT_FALSE(result.isAui);
  EXPECT_TRUE(result.upoBoxes.empty());
}

TEST(FraudDroidTest, LargeCloseButtonFailsPlacementHeuristic) {
  const android::UiDump dump = {
      node("ImageView", "iv_ad_creative", {30, 100, 300, 400}, true),
      node("Button", "btn_close", {30, 520, 300, 120}, true),  // too big
  };
  EXPECT_FALSE(FraudDroidDetector().analyze(dump, kScreen).isAui);
}

TEST(FraudDroidTest, UpoWithoutAgoIsNotAui) {
  const android::UiDump dump = {
      node("IconView", "btn_close", {310, 90, 20, 20}, true),
  };
  EXPECT_FALSE(FraudDroidDetector().analyze(dump, kScreen).isAui);
}

TEST(FraudDroidTest, DominantClickableSurfaceCountsAsAgo) {
  const android::UiDump dump = {
      node("ImageView", "xy", {0, 24, 360, 648}, true),  // whole-screen ad
      node("IconView", "btn_skip_x", {330, 30, 18, 18}, true),
  };
  EXPECT_TRUE(FraudDroidDetector().analyze(dump, kScreen).isAui);
}

TEST(FraudDroidTest, EmptyDump) {
  EXPECT_FALSE(FraudDroidDetector().analyze({}, kScreen).isAui);
}

// ------------------------------------------------------------- perf model
TEST(DeviceModelTest, BaselineMatchesTableVII) {
  const perf::DeviceModel model;
  const perf::PerfMetrics base = model.baseline();
  EXPECT_DOUBLE_EQ(base.cpuPercent, 55.22);
  EXPECT_DOUBLE_EQ(base.memoryMb, 4291.96);
  EXPECT_DOUBLE_EQ(base.frameRate, 81.0);
  EXPECT_DOUBLE_EQ(base.powerMw, 443.85);
}

namespace {
/// Synthesizes a ledger priced with the model's own StageCosts table, the
/// way the pipeline would while running: n events/screenshots/detections
/// plus optional decorations.
core::WorkLedger syntheticLedger(const perf::DeviceModel& model,
                                 std::int64_t events, std::int64_t shots,
                                 std::int64_t detections, double macs,
                                 std::int64_t decorations = 0) {
  const core::StageCosts& costs = model.config().costs;
  core::WorkLedger ledger(costs);
  ledger.recordRuns(core::Stage::kEvent, events, costs.eventCpuMs);
  ledger.recordRuns(core::Stage::kScreenshot, shots, costs.screenshotCpuMs);
  ledger.recordRuns(core::Stage::kDetect, detections,
                    macs / costs.macsPerCpuMs);
  for (std::int64_t i = 0; i < decorations; ++i) ledger.recordDecoration();
  return ledger;
}
}  // namespace

TEST(DeviceModelTest, MoreWorkCostsMore) {
  const perf::DeviceModel model;
  const double macs = 5e6;
  const core::WorkLedger light = syntheticLedger(model, 30, 5, 5, macs);
  const core::WorkLedger heavy = syntheticLedger(model, 300, 100, 100, macs);
  const auto a = model.withWork(light, ms(60000));
  const auto b = model.withWork(heavy, ms(60000));
  EXPECT_GT(b.cpuPercent, a.cpuPercent);
  EXPECT_GT(b.powerMw, a.powerMw);
  EXPECT_LT(b.frameRate, a.frameRate);
  EXPECT_GT(a.cpuPercent, model.baseline().cpuPercent);
}

TEST(DeviceModelTest, ComponentFlagsDecomposeOverhead) {
  const perf::DeviceModel model;
  const double macs = 2e7;  // a realistic one-stage detector footprint
  const core::WorkLedger work = syntheticLedger(model, 120, 20, 20, macs, 2);
  const auto monitoring = model.withWork(work, ms(60000), true, false, false);
  const auto withDetection =
      model.withWork(work, ms(60000), true, true, false);
  const auto full = model.withWork(work, ms(60000), true, true, true);
  // Detection dominates the increments (Table VII's finding).
  const double detCpu = withDetection.cpuPercent - monitoring.cpuPercent;
  const double monCpu = monitoring.cpuPercent - model.baseline().cpuPercent;
  const double decCpu = full.cpuPercent - withDetection.cpuPercent;
  EXPECT_GT(detCpu, monCpu);
  EXPECT_GT(detCpu, decCpu);
  EXPECT_GT(full.memoryMb, monitoring.memoryMb);
}

TEST(DeviceModelTest, ZeroWorkEqualsBaselinePlusResidentMemory) {
  const perf::DeviceModel model;
  const auto idle = model.withWork(core::WorkLedger{}, ms(60000));
  EXPECT_DOUBLE_EQ(idle.cpuPercent, model.baseline().cpuPercent);
  EXPECT_GT(idle.memoryMb, model.baseline().memoryMb);  // resident model
}

TEST(DeviceModelTest, CacheHitsReduceModeledCost) {
  // Two workloads analyzing the same 100 screens: one pays full screenshot
  // + detection every time, the other serves 80 from the verdict cache.
  const perf::DeviceModel model;
  const double macs = 2e7;
  const core::StageCosts& costs = model.config().costs;
  const core::WorkLedger cold = syntheticLedger(model, 200, 100, 100, macs);
  core::WorkLedger warm = syntheticLedger(model, 200, 20, 20, macs);
  warm.recordRuns(core::Stage::kVerdict, 100, costs.cacheLookupCpuMs);
  for (int i = 0; i < 80; ++i) warm.recordCacheHit();
  const auto coldMetrics = model.withWork(cold, ms(60000));
  const auto warmMetrics = model.withWork(warm, ms(60000));
  EXPECT_LT(warmMetrics.cpuPercent, coldMetrics.cpuPercent);
  EXPECT_GT(warmMetrics.frameRate, coldMetrics.frameRate);
  EXPECT_EQ(warm.cacheHits(), 80);
}

// -------------------------------------------------------------- user study
TEST(UserStudyTest, ReproducesFindingShapes) {
  study::StudyConfig config;
  const study::StudyResults results = study::runUserStudy(config);
  EXPECT_EQ(results.participants, 165);
  // Finding 1: strong agreement that AUIs mislead; AGO rated far above UPO.
  EXPECT_GT(results.misleadingAgreePct, 80.0);
  EXPECT_GT(results.avgAgoRating, results.avgUpoRating + 1.5);
  EXPECT_GT(results.avgAgoRating, 6.0);
  EXPECT_LT(results.avgUpoRating, 6.0);
  // Finding 2: most users misclick at least occasionally.
  EXPECT_GT(results.oftenMisclickPct, 50.0);
  EXPECT_LT(results.neverMisclickPct, 15.0);
  EXPECT_NEAR(results.oftenMisclickPct + results.occasionallyMisclickPct +
                  results.neverMisclickPct,
              100.0, 0.1);
  // Finding 3: clear demand for mitigation.
  EXPECT_GT(results.demandRating, 6.0);
  EXPECT_GT(results.wantHighlightPct, 50.0);
  // Demographics echo the paper's skew.
  EXPECT_GT(results.bachelorPct, 85.0);
  EXPECT_GT(results.age18to35Pct, 60.0);
}

TEST(UserStudyTest, DeterministicForSeed) {
  study::StudyConfig config;
  const auto a = study::runUserStudy(config);
  const auto b = study::runUserStudy(config);
  EXPECT_EQ(a.avgAgoRating, b.avgAgoRating);
  EXPECT_EQ(a.oftenMisclickPct, b.oftenMisclickPct);
}

TEST(UserStudyTest, MoreParticipantsStillSane) {
  study::StudyConfig config;
  config.participants = 600;
  config.seed = 77;
  const auto results = study::runUserStudy(config);
  EXPECT_EQ(results.participants, 600);
  EXPECT_GT(results.avgAgoRating, results.avgUpoRating);
}

}  // namespace
}  // namespace darpa
