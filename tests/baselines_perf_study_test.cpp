// Unit tests for the FraudDroid baseline, the device performance model, and
// the user-study simulation.
#include <gtest/gtest.h>

#include "baselines/frauddroid.h"
#include "perf/device_model.h"
#include "study/user_study.h"

namespace darpa {
namespace {

using baselines::FraudDroidDetector;
using baselines::FraudDroidResult;

android::UiNode node(std::string cls, std::string rid, Rect bounds,
                     bool clickable) {
  android::UiNode n;
  n.className = std::move(cls);
  n.resourceId = std::move(rid);
  n.boundsOnScreen = bounds;
  n.clickable = clickable;
  return n;
}

constexpr Size kScreen{360, 720};

TEST(FraudDroidTest, FlagsAuiWithNamedIds) {
  const android::UiDump dump = {
      node("ImageView", "iv_ad_creative", {30, 100, 300, 400}, true),
      node("IconView", "btn_close", {310, 90, 20, 20}, true),
  };
  const FraudDroidResult result = FraudDroidDetector().analyze(dump, kScreen);
  EXPECT_TRUE(result.isAui);
  ASSERT_EQ(result.upoBoxes.size(), 1u);
  EXPECT_EQ(result.upoBoxes[0], (Rect{310, 90, 20, 20}));
  EXPECT_FALSE(result.agoBoxes.empty());
}

TEST(FraudDroidTest, ObfuscatedIdsDefeatIt) {
  // Same layout, ids minified — exactly the §VI-C failure mode.
  const android::UiDump dump = {
      node("ImageView", "ax", {30, 100, 300, 400}, true),
      node("IconView", "", {310, 90, 20, 20}, true),
  };
  const FraudDroidResult result = FraudDroidDetector().analyze(dump, kScreen);
  EXPECT_FALSE(result.isAui);
  EXPECT_TRUE(result.upoBoxes.empty());
}

TEST(FraudDroidTest, LargeCloseButtonFailsPlacementHeuristic) {
  const android::UiDump dump = {
      node("ImageView", "iv_ad_creative", {30, 100, 300, 400}, true),
      node("Button", "btn_close", {30, 520, 300, 120}, true),  // too big
  };
  EXPECT_FALSE(FraudDroidDetector().analyze(dump, kScreen).isAui);
}

TEST(FraudDroidTest, UpoWithoutAgoIsNotAui) {
  const android::UiDump dump = {
      node("IconView", "btn_close", {310, 90, 20, 20}, true),
  };
  EXPECT_FALSE(FraudDroidDetector().analyze(dump, kScreen).isAui);
}

TEST(FraudDroidTest, DominantClickableSurfaceCountsAsAgo) {
  const android::UiDump dump = {
      node("ImageView", "xy", {0, 24, 360, 648}, true),  // whole-screen ad
      node("IconView", "btn_skip_x", {330, 30, 18, 18}, true),
  };
  EXPECT_TRUE(FraudDroidDetector().analyze(dump, kScreen).isAui);
}

TEST(FraudDroidTest, EmptyDump) {
  EXPECT_FALSE(FraudDroidDetector().analyze({}, kScreen).isAui);
}

// ------------------------------------------------------------- perf model
TEST(DeviceModelTest, BaselineMatchesTableVII) {
  const perf::DeviceModel model;
  const perf::PerfMetrics base = model.baseline();
  EXPECT_DOUBLE_EQ(base.cpuPercent, 55.22);
  EXPECT_DOUBLE_EQ(base.memoryMb, 4291.96);
  EXPECT_DOUBLE_EQ(base.frameRate, 81.0);
  EXPECT_DOUBLE_EQ(base.powerMw, 443.85);
}

TEST(DeviceModelTest, WorkCountsRecordKinds) {
  perf::WorkCounts counts;
  counts.record(core::WorkKind::kEventHandling);
  counts.record(core::WorkKind::kScreenshot);
  counts.record(core::WorkKind::kDetection);
  counts.record(core::WorkKind::kDetection);
  counts.record(core::WorkKind::kDecoration);
  EXPECT_EQ(counts.events, 1);
  EXPECT_EQ(counts.screenshots, 1);
  EXPECT_EQ(counts.detections, 2);
  EXPECT_EQ(counts.decorations, 1);
  perf::WorkCounts other;
  other.events = 4;
  counts += other;
  EXPECT_EQ(counts.events, 5);
}

TEST(DeviceModelTest, MoreWorkCostsMore) {
  const perf::DeviceModel model;
  perf::WorkCounts light;
  light.events = 30;
  light.screenshots = 5;
  light.detections = 5;
  perf::WorkCounts heavy;
  heavy.events = 300;
  heavy.screenshots = 100;
  heavy.detections = 100;
  const double macs = 5e6;
  const auto a = model.withWork(light, ms(60000), macs);
  const auto b = model.withWork(heavy, ms(60000), macs);
  EXPECT_GT(b.cpuPercent, a.cpuPercent);
  EXPECT_GT(b.powerMw, a.powerMw);
  EXPECT_LT(b.frameRate, a.frameRate);
  EXPECT_GT(a.cpuPercent, model.baseline().cpuPercent);
}

TEST(DeviceModelTest, ComponentFlagsDecomposeOverhead) {
  const perf::DeviceModel model;
  perf::WorkCounts work;
  work.events = 120;
  work.screenshots = 20;
  work.detections = 20;
  work.decorations = 2;
  const double macs = 2e7;  // a realistic one-stage detector footprint
  const auto monitoring =
      model.withWork(work, ms(60000), macs, true, false, false);
  const auto withDetection =
      model.withWork(work, ms(60000), macs, true, true, false);
  const auto full = model.withWork(work, ms(60000), macs, true, true, true);
  // Detection dominates the increments (Table VII's finding).
  const double detCpu = withDetection.cpuPercent - monitoring.cpuPercent;
  const double monCpu = monitoring.cpuPercent - model.baseline().cpuPercent;
  const double decCpu = full.cpuPercent - withDetection.cpuPercent;
  EXPECT_GT(detCpu, monCpu);
  EXPECT_GT(detCpu, decCpu);
  EXPECT_GT(full.memoryMb, monitoring.memoryMb);
}

TEST(DeviceModelTest, ZeroWorkEqualsBaselinePlusResidentMemory) {
  const perf::DeviceModel model;
  const auto idle = model.withWork({}, ms(60000), 1e6);
  EXPECT_DOUBLE_EQ(idle.cpuPercent, model.baseline().cpuPercent);
  EXPECT_GT(idle.memoryMb, model.baseline().memoryMb);  // resident model
}

// -------------------------------------------------------------- user study
TEST(UserStudyTest, ReproducesFindingShapes) {
  study::StudyConfig config;
  const study::StudyResults results = study::runUserStudy(config);
  EXPECT_EQ(results.participants, 165);
  // Finding 1: strong agreement that AUIs mislead; AGO rated far above UPO.
  EXPECT_GT(results.misleadingAgreePct, 80.0);
  EXPECT_GT(results.avgAgoRating, results.avgUpoRating + 1.5);
  EXPECT_GT(results.avgAgoRating, 6.0);
  EXPECT_LT(results.avgUpoRating, 6.0);
  // Finding 2: most users misclick at least occasionally.
  EXPECT_GT(results.oftenMisclickPct, 50.0);
  EXPECT_LT(results.neverMisclickPct, 15.0);
  EXPECT_NEAR(results.oftenMisclickPct + results.occasionallyMisclickPct +
                  results.neverMisclickPct,
              100.0, 0.1);
  // Finding 3: clear demand for mitigation.
  EXPECT_GT(results.demandRating, 6.0);
  EXPECT_GT(results.wantHighlightPct, 50.0);
  // Demographics echo the paper's skew.
  EXPECT_GT(results.bachelorPct, 85.0);
  EXPECT_GT(results.age18to35Pct, 60.0);
}

TEST(UserStudyTest, DeterministicForSeed) {
  study::StudyConfig config;
  const auto a = study::runUserStudy(config);
  const auto b = study::runUserStudy(config);
  EXPECT_EQ(a.avgAgoRating, b.avgAgoRating);
  EXPECT_EQ(a.oftenMisclickPct, b.oftenMisclickPct);
}

TEST(UserStudyTest, MoreParticipantsStillSane) {
  study::StudyConfig config;
  config.participants = 600;
  config.seed = 77;
  const auto results = study::runUserStudy(config);
  EXPECT_EQ(results.participants, 600);
  EXPECT_GT(results.avgAgoRating, results.avgUpoRating);
}

}  // namespace
}  // namespace darpa
