// Unit tests for the app population: AUI taxonomy, screen generation
// invariants, resource-id obfuscation, and the runtime app sessions.
#include <gtest/gtest.h>

#include "apps/app_model.h"
#include "apps/aui_types.h"
#include "apps/screen_generator.h"
#include "gfx/canvas.h"

namespace darpa::apps {
namespace {

TEST(AuiTypesTest, SharesSumToHundred) {
  double total = 0.0;
  for (AuiType type : kAllAuiTypes) total += auiTypePaperShare(type);
  EXPECT_NEAR(total, 100.0, 0.01);
}

TEST(AuiTypesTest, CountsSumTo1072) {
  int total = 0;
  for (AuiType type : kAllAuiTypes) total += auiTypePaperCount(type);
  EXPECT_EQ(total, 1072);
}

TEST(AuiTypesTest, NamesAreDistinct) {
  for (AuiType a : kAllAuiTypes) {
    for (AuiType b : kAllAuiTypes) {
      if (a != b) {
        EXPECT_NE(auiTypeName(a), auiTypeName(b));
      }
    }
  }
  EXPECT_EQ(auiHostName(AuiHost::kFirstParty), "first-party");
  EXPECT_EQ(auiHostName(AuiHost::kThirdParty), "third-party");
}

ScreenGenerator makeGenerator(std::uint64_t seed = 99) {
  return ScreenGenerator(ScreenGenerator::Params{}, seed);
}

TEST(ScreenGeneratorTest, AuiTruthConsistentWithSpec) {
  ScreenGenerator gen = makeGenerator();
  for (AuiType type : kAllAuiTypes) {
    AuiSpec spec;
    spec.type = type;
    spec.hasAgoBox = true;
    spec.numUpos = 1;
    const GeneratedScreen screen = gen.makeAui(spec);
    EXPECT_TRUE(screen.truth.isAui);
    ASSERT_TRUE(screen.truth.spec.has_value());
    EXPECT_EQ(screen.truth.spec->type, type);
    EXPECT_EQ(screen.truth.agoBoxes.size(), 1u) << auiTypeName(type);
    EXPECT_EQ(screen.truth.upoBoxes.size(), 1u) << auiTypeName(type);
    EXPECT_NE(screen.root, nullptr);
  }
}

TEST(ScreenGeneratorTest, BoxesWithinFrame) {
  ScreenGenerator gen = makeGenerator(123);
  const Rect frame{0, 0, 360, 648};
  for (int i = 0; i < 40; ++i) {
    AuiSpec spec;
    ScreenGenerator probe = makeGenerator(1000 + i);
    spec = probe.randomSpec();
    const GeneratedScreen screen = gen.makeAui(spec);
    for (const Rect& box : screen.truth.agoBoxes) {
      EXPECT_TRUE(frame.contains(box)) << "AGO " << box;
    }
    for (const Rect& box : screen.truth.upoBoxes) {
      EXPECT_TRUE(frame.contains(box)) << "UPO " << box;
    }
  }
}

TEST(ScreenGeneratorTest, UpoSmallerThanAgo) {
  ScreenGenerator gen = makeGenerator(7);
  for (int i = 0; i < 25; ++i) {
    AuiSpec spec = gen.randomSpec();
    spec.hasAgoBox = true;
    const GeneratedScreen screen = gen.makeAui(spec);
    ASSERT_FALSE(screen.truth.agoBoxes.empty());
    ASSERT_FALSE(screen.truth.upoBoxes.empty());
    EXPECT_GT(screen.truth.agoBoxes[0].area(),
              screen.truth.upoBoxes[0].area() * 4);
  }
}

TEST(ScreenGeneratorTest, GhostUpoIsNearlyInvisible) {
  // Compare each screen against itself with the UPO hidden: the ghost
  // variant's pixels barely change, the regular variant's change a lot.
  auto upoInkDelta = [](const GeneratedScreen& screen) {
    const Rect upo = screen.truth.upoBoxes[0];
    android::View* upoView = nullptr;
    for (const auto& child : screen.root->children()) {
      if (child->frame() == upo) upoView = child.get();
    }
    EXPECT_NE(upoView, nullptr);
    gfx::Bitmap with(360, 648, colors::kWhite);
    gfx::Canvas cw(with);
    screen.root->draw(cw, {0, 0});
    upoView->setVisible(false);
    gfx::Bitmap without(360, 648, colors::kWhite);
    gfx::Canvas cwo(without);
    screen.root->draw(cwo, {0, 0});
    double delta = 0.0;
    for (int y = upo.top(); y < upo.bottom(); ++y) {
      for (int x = upo.left(); x < upo.right(); ++x) {
        delta += std::fabs(luma(with.atClamped(x, y)) -
                           luma(without.atClamped(x, y)));
      }
    }
    return delta / static_cast<double>(upo.area());
  };
  double ghostSum = 0.0, plainSum = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    AuiSpec spec;
    spec.type = AuiType::kSalesPromotion;
    spec.ghostUpo = false;
    ScreenGenerator genA = makeGenerator(100 + seed);
    plainSum += upoInkDelta(genA.makeAui(spec));
    spec.ghostUpo = true;
    ScreenGenerator genB = makeGenerator(100 + seed);
    ghostSum += upoInkDelta(genB.makeAui(spec));
  }
  EXPECT_LT(ghostSum, plainSum * 0.5);
}

TEST(ScreenGeneratorTest, ObfuscationFollowsHostRates) {
  ScreenGenerator::Params params;
  params.obfuscateThirdParty = 1.0;  // always obfuscated
  params.obfuscateFirstParty = 0.0;  // never
  ScreenGenerator gen(params, 5);
  AuiSpec adSpec;
  adSpec.type = AuiType::kAdvertisement;
  adSpec.host = AuiHost::kThirdParty;
  const GeneratedScreen ad = gen.makeAui(adSpec);
  // The ad's close button id must be obfuscated (junk or empty).
  EXPECT_EQ(ad.root->findViewByResourceId("btn_close"), nullptr);

  AuiSpec promoSpec;
  promoSpec.type = AuiType::kSalesPromotion;
  promoSpec.host = AuiHost::kFirstParty;
  const GeneratedScreen promo = gen.makeAui(promoSpec);
  EXPECT_NE(promo.root->findViewByResourceId("btn_close"), nullptr);
}

TEST(ScreenGeneratorTest, BenignScreensHaveNoTruth) {
  ScreenGenerator gen = makeGenerator(55);
  for (int i = 0; i < 10; ++i) {
    const GeneratedScreen screen = gen.makeBenign();
    EXPECT_FALSE(screen.truth.isAui);
    EXPECT_TRUE(screen.truth.agoBoxes.empty());
    EXPECT_TRUE(screen.truth.upoBoxes.empty());
  }
}

TEST(ScreenGeneratorTest, HardNegativeHasCloseButtonButIsNotAui) {
  ScreenGenerator gen = makeGenerator(66);
  const GeneratedScreen screen = gen.makeHardNegative();
  EXPECT_FALSE(screen.truth.isAui);
  EXPECT_TRUE(screen.truth.hardNegative);
  EXPECT_NE(screen.root->findViewByResourceId("btn_close"), nullptr);
}

TEST(ScreenGeneratorTest, DeterministicForSeed) {
  AuiSpec spec;
  spec.type = AuiType::kAppUpgrade;
  ScreenGenerator genA = makeGenerator(9);
  ScreenGenerator genB = makeGenerator(9);
  const GeneratedScreen a = genA.makeAui(spec);
  const GeneratedScreen b = genB.makeAui(spec);
  EXPECT_EQ(a.truth.agoBoxes, b.truth.agoBoxes);
  EXPECT_EQ(a.truth.upoBoxes, b.truth.upoBoxes);
  gfx::Bitmap bmpA(360, 648), bmpB(360, 648);
  gfx::Canvas ca(bmpA), cb(bmpB);
  a.root->draw(ca, {0, 0});
  b.root->draw(cb, {0, 0});
  EXPECT_EQ(bmpA, bmpB);
}

TEST(ScreenGeneratorTest, RandomSpecFollowsPaperMarginals) {
  ScreenGenerator gen = makeGenerator(314);
  int ads = 0, central = 0, corner = 0, n = 2000;
  for (int i = 0; i < n; ++i) {
    const AuiSpec spec = gen.randomSpec();
    ads += spec.type == AuiType::kAdvertisement;
    central += spec.agoCentral;
    corner += spec.upoCorner;
  }
  EXPECT_NEAR(ads / static_cast<double>(n), 0.649, 0.04);
  EXPECT_NEAR(central / static_cast<double>(n), 0.946, 0.02);
  EXPECT_NEAR(corner / static_cast<double>(n), 0.731, 0.04);
}

// ------------------------------------------------------------- sessions
TEST(AppSessionTest, SessionShowsScreensAndEmitsEvents) {
  android::AndroidSystem system;
  AppProfile profile;
  profile.package = "com.test.app";
  profile.auisPerMinute = 0.0;  // benign-only session
  AppSession session(system, profile, 1);
  session.start(ms(30000));
  system.looper.runUntil(ms(30000));
  EXPECT_GT(session.screensShown(), 3);
  EXPECT_GT(system.accessibility.totalEmitted(), 20);
  EXPECT_TRUE(session.exposures().empty());
}

TEST(AppSessionTest, AuiExposuresRecorded) {
  android::AndroidSystem system;
  AppProfile profile;
  profile.auisPerMinute = 6.0;  // aggressive popups for the test
  AppSession session(system, profile, 2);
  session.start(ms(60000));
  system.looper.runUntil(ms(60000));
  ASSERT_FALSE(session.exposures().empty());
  for (const AuiExposure& e : session.exposures()) {
    EXPECT_GT(e.hiddenAt.count, e.shownAt.count);
    EXPECT_FALSE(e.upoScreenBoxes.empty());
    // Exposure boxes are in screen coordinates (inside the app frame).
    const Rect frame = system.windowManager.appFrame(false);
    for (const Rect& box : e.upoScreenBoxes) {
      EXPECT_TRUE(frame.contains(box));
    }
    // exposureAt finds the exposure mid-window.
    const Millis mid{(e.shownAt.count + e.hiddenAt.count) / 2};
    EXPECT_EQ(session.exposureAt(mid), &e);
  }
}

TEST(AppSessionTest, ExposureAtReturnsNullOutside) {
  android::AndroidSystem system;
  AppProfile profile;
  profile.auisPerMinute = 0.0;
  AppSession session(system, profile, 3);
  session.start(ms(5000));
  system.looper.runUntil(ms(5000));
  EXPECT_EQ(session.exposureAt(ms(2500)), nullptr);
}

TEST(MonkeyDriverTest, TapsEmitTouchEvents) {
  android::AndroidSystem system;
  system.windowManager.showAppWindow("com.app", std::make_unique<android::View>(),
                                     false);
  MonkeyDriver monkey(system, 4);
  monkey.start(ms(10000));
  system.looper.runUntil(ms(10000));
  EXPECT_GT(monkey.taps(), 5);
  EXPECT_GT(system.accessibility.totalEmitted(), monkey.taps());
}

TEST(AppProfileTest, RandomProfilesVaryButAreSane) {
  Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const AppProfile profile = randomAppProfile("com.app", rng);
    EXPECT_GT(profile.screenChangeMeanMs, 0);
    EXPECT_GT(profile.maxBurst, profile.minBurst);
    EXPECT_GT(profile.auiMaxVisibleMs, profile.auiMinVisibleMs);
    EXPECT_GE(profile.animatedAuiProb, 0.0);
    EXPECT_LE(profile.animatedAuiProb, 1.0);
  }
}

}  // namespace
}  // namespace darpa::apps
