// Unit tests for the DARPA core runtime: ct debouncing, screenshot custody,
// decoration calibration, auto-bypass, and the security invariants.
#include <gtest/gtest.h>

#include <memory>

#include "android/system.h"
#include "core/darpa_service.h"
#include "core/decoration.h"
#include "core/screen_frame.h"
#include "core/security.h"

namespace darpa::core {
namespace {

/// Scripted detector: returns a fixed set of detections for any screenshot.
class FakeDetector : public cv::Detector {
 public:
  std::vector<cv::Detection> detections;
  mutable int calls = 0;

  std::vector<cv::Detection> detect(const gfx::Bitmap&) const override {
    ++calls;
    return detections;
  }
  double costMacsPerImage() const override { return 1.0e6; }
};

cv::Detection makeDet(Rect box, dataset::BoxLabel label, float conf = 0.9f) {
  return cv::Detection{box, label, conf};
}

std::unique_ptr<android::View> blankScreen() {
  auto root = std::make_unique<android::View>();
  root->setBackground(colors::kWhite);
  return root;
}

// ---------------------------------------------------------------- security
/// Frame with pixels but no UI dump — all the vault cares about.
FramePtr pixelFrame(gfx::Bitmap pixels) {
  auto frame = std::make_shared<ScreenFrame>(android::UiDump{}, "test");
  frame->attachPixels(std::move(pixels));
  return frame;
}

TEST(ScreenshotVaultTest, SingleScreenshotInvariant) {
  ScreenshotVault vault;
  EXPECT_FALSE(vault.holding());
  vault.store(pixelFrame(gfx::Bitmap(4, 4, colors::kRed)));
  EXPECT_TRUE(vault.holding());
  // Implicit rinse of the first frame.
  vault.store(pixelFrame(gfx::Bitmap(4, 4, colors::kBlue)));
  EXPECT_EQ(vault.stored(), 2);
  EXPECT_EQ(vault.rinsed(), 1);
  EXPECT_EQ(vault.peakHeld(), 1);
  vault.rinse();
  EXPECT_FALSE(vault.holding());
  EXPECT_EQ(vault.rinsed(), 2);
  vault.rinse();  // idempotent
  EXPECT_EQ(vault.rinsed(), 2);
}

TEST(ScreenshotVaultTest, CurrentExposesHeldScreenshot) {
  ScreenshotVault vault;
  EXPECT_EQ(vault.current(), nullptr);
  vault.store(pixelFrame(gfx::Bitmap(2, 2, colors::kGreen)));
  ASSERT_NE(vault.current(), nullptr);
  EXPECT_EQ(vault.current()->pixels().at(0, 0), colors::kGreen);
}

TEST(PermissionManifestTest, DefaultIsMinimal) {
  const PermissionManifest manifest;
  EXPECT_TRUE(manifest.minimal());
  PermissionManifest leaky = manifest;
  leaky.internet = true;
  EXPECT_FALSE(leaky.minimal());
}

// ------------------------------------------------------------- decoration
TEST(DecorationViewTest, DrawsBorderNotInterior) {
  gfx::Bitmap bmp(40, 40, colors::kWhite);
  gfx::Canvas canvas(bmp);
  DecorationView decoration(colors::kGreen, 3);
  decoration.setFrame({5, 5, 30, 30});
  decoration.draw(canvas, {0, 0});
  EXPECT_EQ(bmp.at(6, 6), colors::kGreen);       // border
  EXPECT_EQ(bmp.at(20, 20), colors::kWhite);     // interior untouched
  EXPECT_FALSE(decoration.clickable());          // touches pass through
  EXPECT_EQ(decoration.className(), "DarpaDecorationView");
}

// ----------------------------------------------------------- the service
struct Harness {
  android::AndroidSystem system;
  FakeDetector detector;
  DarpaService service;

  explicit Harness(DarpaConfig config = {}) : service(detector, config) {
    system.accessibility.connect(service);
  }
};

TEST(DarpaServiceTest, RegistersAllEventsOnConnect) {
  Harness h;
  EXPECT_EQ(h.service.eventTypesMask(), android::kAllEventTypesMask);
  EXPECT_EQ(h.service.notificationTimeout().count, 200);
  EXPECT_TRUE(h.service.permissions().minimal());
}

TEST(DarpaServiceTest, DebounceWaitsForStability) {
  Harness h;
  h.system.windowManager.showAppWindow("com.app", blankScreen(), false);
  h.system.looper.runUntilIdle();
  const auto analysesAfterShow = h.service.stats().analysesRun;
  EXPECT_EQ(analysesAfterShow, 1);  // one analysis after the screen settled

  // A storm of events inside the ct window coalesces into one analysis.
  for (int i = 0; i < 5; ++i) {
    h.system.windowManager.notifyContentChanged();
    h.system.looper.runFor(ms(100));  // below notification timeout spacing
  }
  h.system.looper.runUntilIdle();
  EXPECT_LE(h.service.stats().analysesRun - analysesAfterShow, 5);
  EXPECT_GT(h.service.stats().eventsReceived, 0);
}

TEST(DarpaServiceTest, AnalysisTakesAndRinsesScreenshot) {
  Harness h;
  h.system.windowManager.showAppWindow("com.app", blankScreen(), false);
  h.system.looper.runUntilIdle();
  EXPECT_EQ(h.service.stats().screenshotsTaken, 1);
  EXPECT_EQ(h.service.vault().stored(), 1);
  EXPECT_EQ(h.service.vault().rinsed(), 1);   // rinsed right after detect
  EXPECT_FALSE(h.service.vault().holding());  // nothing retained
  EXPECT_EQ(h.detector.calls, 1);
}

TEST(DarpaServiceTest, NoAuiMeansNoDecorations) {
  Harness h;
  h.system.windowManager.showAppWindow("com.app", blankScreen(), false);
  h.system.looper.runUntilIdle();
  EXPECT_FALSE(h.service.lastWasAui());
  EXPECT_EQ(h.system.windowManager.overlayCount(), 0u);
}

TEST(DarpaServiceTest, DecoratesUpoWithCalibratedOffset) {
  Harness h;
  // Detector reports a UPO at screen coords (100, 100).
  h.detector.detections = {makeDet({100, 100, 20, 20}, dataset::BoxLabel::kUpo)};
  h.system.windowManager.showAppWindow("com.app", blankScreen(), false);
  h.system.looper.runUntilIdle();
  EXPECT_TRUE(h.service.lastWasAui());
  EXPECT_EQ(h.service.stats().auisFlagged, 1);
  const std::vector<Rect> rects = h.service.decorationRects();
  ASSERT_EQ(rects.size(), 1u);
  // The decoration ring must sit around the detection box ON SCREEN —
  // i.e., the §IV-D calibration corrected for the status-bar offset.
  const Rect expected = Rect{100, 100, 20, 20}.inflated(
      h.service.darpaConfig().decorationThickness + 1);
  EXPECT_EQ(rects[0], expected);
}

TEST(DarpaServiceTest, WithoutCalibrationDecorationWouldDrift) {
  // Demonstrates Fig. 4: placing the overlay at raw screen coordinates
  // (i.e., skipping the anchor-view offset) lands it offset by the status
  // bar height for non-fullscreen windows.
  android::AndroidSystem system;
  system.windowManager.showAppWindow("com.app", blankScreen(), false);
  auto naive = std::make_unique<DecorationView>(colors::kGreen, 2);
  const int id =
      system.windowManager.addOverlay(std::move(naive), {100, 100, 20, 20});
  const Rect actual = *system.windowManager.overlayBoundsOnScreen(id);
  EXPECT_EQ(actual.y, 100 + 24);  // drifted by the status bar height
}

TEST(DarpaServiceTest, DecorationsClearedBeforeNextScreenshot) {
  Harness h;
  h.detector.detections = {makeDet({50, 50, 20, 20}, dataset::BoxLabel::kUpo)};
  h.system.windowManager.showAppWindow("com.app", blankScreen(), false);
  h.system.looper.runUntilIdle();
  EXPECT_EQ(h.system.windowManager.overlayCount(), 1u);
  // Next UI change triggers re-analysis; old decoration must be gone first
  // and replaced by the new one (count stays 1, not 2).
  h.system.windowManager.notifyContentChanged();
  h.system.looper.runUntilIdle();
  EXPECT_EQ(h.system.windowManager.overlayCount(), 1u);
}

TEST(DarpaServiceTest, DecoratesBothClasses) {
  Harness h;
  h.detector.detections = {
      makeDet({50, 300, 200, 60}, dataset::BoxLabel::kAgo),
      makeDet({300, 50, 20, 20}, dataset::BoxLabel::kUpo)};
  h.system.windowManager.showAppWindow("com.app", blankScreen(), true);
  h.system.looper.runUntilIdle();
  EXPECT_EQ(h.service.stats().decorationsDrawn, 2);
  EXPECT_EQ(h.system.windowManager.overlayCount(), 2u);
}

TEST(DarpaServiceTest, RequireUpoGatesAuiVerdict) {
  Harness h;
  h.detector.detections = {makeDet({50, 300, 200, 60}, dataset::BoxLabel::kAgo)};
  h.system.windowManager.showAppWindow("com.app", blankScreen(), false);
  h.system.looper.runUntilIdle();
  // AGO alone does not make an AUI (footnote-4 rule).
  EXPECT_FALSE(h.service.lastWasAui());
  EXPECT_EQ(h.service.stats().auisFlagged, 0);
}

TEST(DarpaServiceTest, AutoBypassClicksUpo) {
  DarpaConfig config;
  config.autoBypass = true;
  Harness h(config);
  h.detector.detections = {makeDet({100, 100, 20, 20}, dataset::BoxLabel::kUpo)};

  auto root = blankScreen();
  auto* closeBtn = root->addChild(std::make_unique<android::Button>());
  closeBtn->setFrame({100, 100, 20, 20});  // fullscreen: window == screen
  int closed = 0;
  closeBtn->setOnClick([&] { ++closed; });
  h.system.windowManager.showAppWindow("com.app", std::move(root), true);
  h.system.looper.runUntilIdle();

  EXPECT_GE(h.service.stats().bypassClicks, 1);
  EXPECT_GE(closed, 1);
  // Bypass mode doesn't draw decorations.
  EXPECT_EQ(h.system.windowManager.overlayCount(), 0u);
}

TEST(DarpaServiceTest, LedgerMetersAllStages) {
  Harness h;
  h.detector.detections = {makeDet({10, 10, 20, 20}, dataset::BoxLabel::kUpo)};
  h.system.windowManager.showAppWindow("com.app", blankScreen(), false);
  h.system.looper.runUntilIdle();
  const WorkLedger& ledger = h.service.ledger();
  EXPECT_GT(ledger.tally(Stage::kEvent).runs, 0);
  EXPECT_EQ(ledger.tally(Stage::kScreenshot).runs, 1);
  EXPECT_EQ(ledger.tally(Stage::kDetect).runs, 1);
  EXPECT_EQ(ledger.tally(Stage::kVerdict).runs, 2);  // cache probe + merge
  EXPECT_EQ(ledger.decorations(), 1);
  EXPECT_GT(ledger.tally(Stage::kAct).cpuMs, 0.0);
  // No lint engine configured: the stage is skipped, never run.
  EXPECT_EQ(ledger.tally(Stage::kLint).runs, 0);
  EXPECT_EQ(ledger.tally(Stage::kLint).skips, 1);
  EXPECT_EQ(ledger.analyses(), h.service.stats().analysesRun);
  EXPECT_GT(ledger.totalCpuMs(), 0.0);
  EXPECT_GT(ledger.analysisCpuMs(), 0.0);
  EXPECT_GT(ledger.totalDebounceLatency().count, 0);
}

TEST(DarpaServiceTest, AnalysisListenerReportsVerdict) {
  Harness h;
  bool verdict = false;
  int calls = 0;
  h.service.setAnalysisListener(
      [&](bool isAui, const std::vector<cv::Detection>&) {
        verdict = isAui;
        ++calls;
      });
  h.system.windowManager.showAppWindow("com.app", blankScreen(), false);
  h.system.looper.runUntilIdle();
  EXPECT_EQ(calls, 1);
  EXPECT_FALSE(verdict);
  // Mutate the screen along with the scripted detector: an unchanged screen
  // would (correctly) be served its cached non-AUI verdict.
  h.detector.detections = {makeDet({10, 10, 20, 20}, dataset::BoxLabel::kUpo)};
  auto popup = std::make_unique<android::View>();
  popup->setFrame({10, 10, 20, 20});
  h.system.windowManager.topAppWindow()->content().addChild(std::move(popup));
  h.system.windowManager.notifyContentChanged();
  h.system.looper.runUntilIdle();
  EXPECT_EQ(calls, 2);
  EXPECT_TRUE(verdict);
}

TEST(DarpaServiceTest, CutoffDelaysAnalysis) {
  DarpaConfig config;
  config.cutoff = ms(500);
  Harness h(config);
  h.system.windowManager.showAppWindow("com.app", blankScreen(), false);
  h.system.looper.runFor(ms(400));
  EXPECT_EQ(h.service.stats().analysesRun, 0);  // not yet stable long enough
  h.system.looper.runFor(ms(400));
  EXPECT_EQ(h.service.stats().analysesRun, 1);
}

}  // namespace
}  // namespace darpa::core
