// Work-stealing scheduler tests: the hard contract is that the barrier-free
// driver's merged paper digests (fig8 counts, Table III stats, ledger
// totals, Table VII metrics) are BYTE-identical to the lockstep reference
// driver — across worker counts, backend kinds, pooling on/off, reruns, and
// a deliberately skewed workload that forces steals. Plus the fleet's
// single-use / bounds guards and the sharded live stat-merge.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/detection_executor.h"
#include "fleet/executors.h"
#include "fleet/fleet.h"
#include "perf/device_model.h"

namespace darpa::fleet {
namespace {

/// Deterministic, thread-safe detector: every screen yields one confident
/// UPO (so the verdict/act stages run), at a fixed modeled cost.
class StubDetector : public cv::Detector {
 public:
  std::vector<cv::Detection> detect(const gfx::Bitmap&) const override {
    ++calls_;
    return {cv::Detection{{10, 50, 60, 24}, dataset::BoxLabel::kUpo, 0.9f}};
  }
  double costMacsPerImage() const override { return 1.0e6; }

 private:
  mutable std::atomic<std::int64_t> calls_{0};
};

/// The paper-facing output digest, fixed-point formatted so comparisons are
/// exact string equality, not epsilon tolerance. Same axes as the
/// bench_frame_pool / bench_fleet_throughput digests.
std::string digestOf(const FleetSnapshot& snap) {
  const perf::DeviceModel device;
  const Millis window{static_cast<std::int64_t>(snap.sessions) *
                      snap.simTime.count};
  const perf::PerfMetrics perf = device.withWork(snap.ledger, window);

  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "fig8: analyses=%lld events=%lld exposures=%lld covered=%lld\n"
      "stats: shots=%lld flagged=%lld decorated=%lld bypass=%lld lint=%lld "
      "lintskip=%lld cachehits=%lld anchors=%lld\n"
      "ledger: cpuMs=%.6f cacheHits=%lld cacheMisses=%lld "
      "peakFrameBytes=%lld\n"
      "table7: cpu=%.4f mem=%.4f fps=%.4f power=%.4f\n",
      static_cast<long long>(snap.ledger.analyses()),
      static_cast<long long>(snap.eventsEmitted),
      static_cast<long long>(snap.auiExposures),
      static_cast<long long>(snap.auisCovered),
      static_cast<long long>(snap.stats.screenshotsTaken),
      static_cast<long long>(snap.stats.auisFlagged),
      static_cast<long long>(snap.stats.decorationsDrawn),
      static_cast<long long>(snap.stats.bypassClicks),
      static_cast<long long>(snap.stats.lintRuns),
      static_cast<long long>(snap.stats.cvSkippedByLint),
      static_cast<long long>(snap.stats.verdictCacheHits),
      static_cast<long long>(snap.stats.anchorMeasurements),
      snap.ledger.totalCpuMs(), static_cast<long long>(snap.ledger.cacheHits()),
      static_cast<long long>(snap.ledger.cacheMisses()),
      static_cast<long long>(snap.ledger.peakFrameBytes()), perf.cpuPercent,
      perf.memoryMb, perf.frameRate, perf.powerMw);
  return buf;
}

enum class Backend { kBatching, kThreadPool, kInline };

struct RunOutcome {
  std::string digest;
  SchedulerMetrics scheduler;  ///< Zeroed under the lockstep driver.
  bool hadScheduler = false;
};

RunOutcome runFleet(
    FleetDriver driver, Backend backend, int sessions, int workers,
    bool pooled,
    const std::function<void(int, DeviceSession::Config&)>& tweak = nullptr) {
  StubDetector detector;
  std::unique_ptr<core::DetectionExecutor> owned;
  switch (backend) {
    case Backend::kBatching:
      owned = std::make_unique<BatchingExecutor>(
          BatchingExecutor::Options{.maxBatchSize = 16, .threads = 4});
      break;
    case Backend::kThreadPool:
      owned = std::make_unique<ThreadPoolExecutor>(4);
      break;
    case Backend::kInline:
      owned = std::make_unique<core::InlineExecutor>();
      break;
  }

  FleetConfig config;
  config.sessions = sessions;
  config.workers = workers;
  config.epoch = ms(500);
  config.duration = ms(3000);
  config.driver = driver;
  config.pooledFrames = pooled;
  config.sessionTweak = tweak;

  Fleet fleet(detector, *owned, config);
  fleet.run();
  EXPECT_EQ(owned->pendingCount(), 0u)
      << "a finished run must leave no parked requests";

  RunOutcome out;
  out.digest = digestOf(fleet.snapshot());
  if (const SchedulerMetrics* metrics = fleet.schedulerMetrics()) {
    out.scheduler = *metrics;
    out.hadScheduler = true;
  }
  return out;
}

// ------------------------------------------- cross-driver byte equality

TEST(FleetSchedulerTest, BatchedDigestsMatchLockstepAcrossWorkersAndPooling) {
  const RunOutcome reference =
      runFleet(FleetDriver::kLockstep, Backend::kBatching, 64, 1, true);
  ASSERT_FALSE(reference.digest.empty());
  EXPECT_FALSE(reference.hadScheduler);

  const RunOutcome wsSerial =
      runFleet(FleetDriver::kWorkStealing, Backend::kBatching, 64, 1, true);
  EXPECT_TRUE(wsSerial.hadScheduler);
  EXPECT_EQ(wsSerial.digest, reference.digest);

  const RunOutcome wsFour =
      runFleet(FleetDriver::kWorkStealing, Backend::kBatching, 64, 4, true);
  EXPECT_EQ(wsFour.digest, reference.digest);

  // Rerun at W=4: steal interleavings differ, the digest must not.
  const RunOutcome wsRepeat =
      runFleet(FleetDriver::kWorkStealing, Backend::kBatching, 64, 4, true);
  EXPECT_EQ(wsRepeat.digest, reference.digest);

  // Pooling off, both drivers: the pool only moves where bytes live.
  EXPECT_EQ(
      runFleet(FleetDriver::kLockstep, Backend::kBatching, 64, 4, false).digest,
      reference.digest);
  EXPECT_EQ(runFleet(FleetDriver::kWorkStealing, Backend::kBatching, 64, 4,
                     false)
                .digest,
            reference.digest);
}

TEST(FleetSchedulerTest, ThreadPoolDigestsMatchLockstep) {
  const RunOutcome reference =
      runFleet(FleetDriver::kLockstep, Backend::kThreadPool, 16, 1, true);
  EXPECT_EQ(
      runFleet(FleetDriver::kWorkStealing, Backend::kThreadPool, 16, 1, true)
          .digest,
      reference.digest);
  const RunOutcome wsFour =
      runFleet(FleetDriver::kWorkStealing, Backend::kThreadPool, 16, 4, true);
  EXPECT_EQ(wsFour.digest, reference.digest);
  // Non-coalescing backends flush per session, never per group.
  ASSERT_TRUE(wsFour.hadScheduler);
  EXPECT_EQ(wsFour.scheduler.groupFlushes, 0);
  EXPECT_GT(wsFour.scheduler.sessionFlushes, 0);
}

TEST(FleetSchedulerTest, InlineDigestsMatchLockstep) {
  const RunOutcome reference =
      runFleet(FleetDriver::kLockstep, Backend::kInline, 8, 1, true);
  const RunOutcome ws =
      runFleet(FleetDriver::kWorkStealing, Backend::kInline, 8, 4, true);
  EXPECT_EQ(ws.digest, reference.digest);
  // Synchronous backend: no inboxes, nothing parked, no flushes at all.
  ASSERT_TRUE(ws.hadScheduler);
  EXPECT_EQ(ws.scheduler.groupFlushes, 0);
  EXPECT_EQ(ws.scheduler.sessionFlushes, 0);
}

// --------------------------------------------------- steal-heavy skew

TEST(FleetSchedulerTest, SkewedWorkloadStealsAndMatchesLockstep) {
  // Session 0 is a deliberate straggler: a hyperactive monkey makes its
  // slices far more expensive than everyone else's, so its home worker
  // stays pinned while the siblings drain — and then rob — its shard.
  const auto straggler = [](int id, DeviceSession::Config& config) {
    if (id == 0) {
      config.monkeyMinGapMs = 10;
      config.monkeyMaxGapMs = 25;
    }
  };
  const RunOutcome reference = runFleet(FleetDriver::kLockstep,
                                        Backend::kBatching, 16, 1, true,
                                        straggler);
  const RunOutcome ws = runFleet(FleetDriver::kWorkStealing,
                                 Backend::kBatching, 16, 4, true, straggler);
  EXPECT_EQ(ws.digest, reference.digest)
      << "steal interleavings must never reach the digest";
  ASSERT_TRUE(ws.hadScheduler);
  EXPECT_GT(ws.scheduler.steals, 0)
      << "a pinned home worker should have its queue drained by siblings";
  EXPECT_GT(ws.scheduler.groupFlushes, 0);
}

// ------------------------------------------------- sharded live merge

TEST(FleetSchedulerTest, SnapshotLiveMergeMatchesManualSessionScan) {
  StubDetector detector;
  BatchingExecutor executor({.maxBatchSize = 16, .threads = 4});
  FleetConfig config;
  config.sessions = 16;
  config.workers = 4;
  config.epoch = ms(500);
  config.duration = ms(3000);
  Fleet fleet(detector, executor, config);
  fleet.run();

  const FleetSnapshot snap = fleet.snapshot();

  core::DarpaStats stats;
  core::WorkLedger ledger;
  std::int64_t events = 0;
  std::int64_t exposures = 0;
  std::int64_t covered = 0;
  for (int i = 0; i < fleet.sessionCount(); ++i) {
    const DeviceSession& session = fleet.session(i);
    stats.merge(session.stats().snapshot());
    ledger.merge(session.ledger().snapshot());
    events += session.eventsEmitted();
    exposures += session.auiExposures();
    covered += session.auisCovered();
  }

  // The retirement folds must reproduce the quiescent scan bit-for-bit —
  // including the double summation order (ascending session id).
  EXPECT_EQ(snap.stats.analysesRun, stats.analysesRun);
  EXPECT_EQ(snap.stats.screenshotsTaken, stats.screenshotsTaken);
  EXPECT_EQ(snap.stats.decorationsDrawn, stats.decorationsDrawn);
  EXPECT_EQ(snap.stats.verdictCacheHits, stats.verdictCacheHits);
  EXPECT_DOUBLE_EQ(snap.ledger.totalCpuMs(), ledger.totalCpuMs());
  EXPECT_EQ(snap.ledger.analyses(), ledger.analyses());
  EXPECT_EQ(snap.ledger.cacheHits(), ledger.cacheHits());
  EXPECT_EQ(snap.ledger.peakFrameBytes(), ledger.peakFrameBytes());
  EXPECT_EQ(snap.eventsEmitted, events);
  EXPECT_EQ(snap.auiExposures, exposures);
  EXPECT_EQ(snap.auisCovered, covered);

  // Scheduler bookkeeping sanity.
  const SchedulerMetrics* metrics = fleet.schedulerMetrics();
  ASSERT_NE(metrics, nullptr);
  EXPECT_GE(metrics->slicesRun, static_cast<std::int64_t>(config.sessions));
  EXPECT_EQ(metrics->localPops + metrics->steals, metrics->slicesRun)
      << "every slice was popped from exactly one queue";
  EXPECT_GT(metrics->groupFlushes, 0);
  ASSERT_EQ(metrics->finishWallMs.size(),
            static_cast<std::size_t>(config.sessions));
  for (const double msToFinish : metrics->finishWallMs) {
    EXPECT_GT(msToFinish, 0.0);
  }
}

// ------------------------------------------------------ fleet guards

TEST(FleetSchedulerTest, RunTwiceAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  StubDetector detector;
  core::InlineExecutor executor;
  FleetConfig config;
  config.sessions = 1;
  config.duration = ms(200);
  Fleet fleet(detector, executor, config);
  fleet.run();
  EXPECT_DEATH(fleet.run(), "single-use");
}

TEST(FleetSchedulerTest, SessionIndexOutOfRangeAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  StubDetector detector;
  core::InlineExecutor executor;
  FleetConfig config;
  config.sessions = 2;
  config.duration = ms(200);
  Fleet fleet(detector, executor, config);
  EXPECT_DEATH((void)fleet.session(2), "out of range");
  EXPECT_DEATH((void)fleet.session(-1), "out of range");
}

}  // namespace
}  // namespace darpa::fleet
