// Unit tests for the CV library: feature extraction, NMS, evaluation
// matching, flood-fill refinement, and detector scaffolding.
#include <gtest/gtest.h>

#include "cv/detection.h"
#include "cv/features.h"
#include "cv/one_stage.h"
#include "cv/refine.h"
#include "cv/two_stage.h"
#include "gfx/canvas.h"

namespace darpa::cv {
namespace {

gfx::Bitmap plateOnBackground(Size size, Color background, const Rect& plate,
                              Color plateColor) {
  gfx::Bitmap bmp(size.width, size.height, background);
  bmp.fillRect(plate, plateColor);
  return bmp;
}

// ---------------------------------------------------------------- channels
TEST(ChannelSetTest, MaskOperations) {
  EXPECT_EQ(ChannelSet::all().count(), kChannelCount);
  const ChannelSet noEdge = ChannelSet::all().without(Channel::kEdge);
  EXPECT_EQ(noEdge.count(), kChannelCount - 1);
  EXPECT_FALSE(noEdge.enabled(Channel::kEdge));
  EXPECT_TRUE(noEdge.enabled(Channel::kLuma));
  const Channel two[] = {Channel::kLuma, Channel::kSaliency};
  const ChannelSet only = ChannelSet::only(two);
  EXPECT_EQ(only.count(), 2);
  EXPECT_TRUE(only.enabled(Channel::kSaliency));
  EXPECT_FALSE(only.enabled(Channel::kContrast));
}

// ---------------------------------------------------------------- features
TEST(FeatureMapTest, LumaMeansReflectContent) {
  gfx::Bitmap bmp(64, 64, colors::kWhite);
  bmp.fillRect({0, 0, 32, 64}, colors::kBlack);
  const FeatureMap map(bmp, ChannelSet::all(), 2);
  EXPECT_LT(map.boxMean(Channel::kLuma, {0, 0, 32, 64}), 0.1f);
  EXPECT_GT(map.boxMean(Channel::kLuma, {32, 0, 32, 64}), 0.9f);
  EXPECT_NEAR(map.globalMean(Channel::kLuma), 0.5f, 0.05f);
}

TEST(FeatureMapTest, EdgeFiresOnBoundary) {
  gfx::Bitmap bmp(64, 64, colors::kWhite);
  bmp.fillRect({0, 0, 32, 64}, colors::kBlack);
  const FeatureMap map(bmp, ChannelSet::all(), 2);
  EXPECT_GT(map.boxMean(Channel::kEdge, {28, 0, 8, 64}),
            map.boxMean(Channel::kEdge, {48, 0, 8, 64}) + 0.1f);
}

TEST(FeatureMapTest, RingContrastPositiveForBrightPlate) {
  const gfx::Bitmap bmp = plateOnBackground({80, 80}, colors::kBlack,
                                            {30, 30, 20, 20}, colors::kWhite);
  const FeatureMap map(bmp, ChannelSet::all(), 2);
  EXPECT_GT(map.ringContrast(Channel::kLuma, {30, 30, 20, 20}), 0.3f);
  // A box over uniform background has ~zero ring contrast.
  EXPECT_NEAR(map.ringContrast(Channel::kLuma, {2, 2, 10, 10}), 0.0f, 0.05f);
}

TEST(FeatureMapTest, DisabledChannelReadsZero) {
  const gfx::Bitmap bmp = plateOnBackground({40, 40}, colors::kBlack,
                                            {10, 10, 10, 10}, colors::kRed);
  const FeatureMap map(bmp, ChannelSet::all().without(Channel::kSaturation), 2);
  EXPECT_EQ(map.boxMean(Channel::kSaturation, {10, 10, 10, 10}), 0.0f);
  EXPECT_GT(map.boxMean(Channel::kSaliency, {10, 10, 10, 10}), 0.0f);
}

TEST(FeatureMapTest, CenterSurroundDetectsDarkSurround) {
  gfx::Bitmap bmp(80, 160, colors::kBlack);
  bmp.fillRect({20, 40, 40, 80}, colors::kWhite);  // bright center panel
  const FeatureMap map(bmp, ChannelSet::all(), 2);
  EXPECT_GT(map.centerSurroundLuma(), 0.3f);
}

TEST(CandidateFeaturesTest, DimensionMatchesConstant) {
  const gfx::Bitmap bmp(64, 64, colors::kGray);
  const FeatureMap map(bmp, ChannelSet::all(), 2);
  const std::vector<float> f = candidateFeatures(map, {10, 10, 20, 20});
  EXPECT_EQ(static_cast<int>(f.size()), kCandidateFeatureDim);
  for (float v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(CandidateFeaturesTest, ContinuationSeparatesBlobFromBorder) {
  // Isolated blob vs a long horizontal stripe of the same height.
  gfx::Bitmap blobImg(200, 100, colors::kWhite);
  blobImg.fillRect({90, 40, 20, 20}, colors::kBlack);
  gfx::Bitmap stripeImg(200, 100, colors::kWhite);
  stripeImg.fillRect({0, 40, 200, 20}, colors::kBlack);
  const FeatureMap blobMap(blobImg, ChannelSet::all(), 2);
  const FeatureMap stripeMap(stripeImg, ChannelSet::all(), 2);
  const Rect box{90, 40, 20, 20};
  const auto blobF = candidateFeatures(blobMap, box);
  const auto stripeF = candidateFeatures(stripeMap, box);
  // Horizontal continuation (second-to-last feature) is larger on stripes.
  const std::size_t contX = blobF.size() - 2;
  EXPECT_GT(stripeF[contX], blobF[contX] + 0.05f);
}

// ---------------------------------------------------------------- NMS/eval
Detection det(Rect box, dataset::BoxLabel label, float conf) {
  return Detection{box, label, conf};
}

TEST(NmsTest, SuppressesOverlappingSameClass) {
  std::vector<Detection> dets = {
      det({0, 0, 20, 20}, dataset::BoxLabel::kUpo, 0.9f),
      det({2, 2, 20, 20}, dataset::BoxLabel::kUpo, 0.8f),
      det({100, 100, 20, 20}, dataset::BoxLabel::kUpo, 0.7f),
  };
  const auto kept = nonMaxSuppression(std::move(dets), 0.5);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].confidence, 0.9f);  // highest kept first
}

TEST(NmsTest, DifferentClassesSurvive) {
  std::vector<Detection> dets = {
      det({0, 0, 20, 20}, dataset::BoxLabel::kUpo, 0.9f),
      det({0, 0, 20, 20}, dataset::BoxLabel::kAgo, 0.8f),
  };
  EXPECT_EQ(nonMaxSuppression(std::move(dets), 0.5).size(), 2u);
}

TEST(EvalTest, PerfectDetectionCountsTp) {
  const dataset::Annotation gt{{10, 10, 20, 20}, dataset::BoxLabel::kUpo};
  const std::vector<Detection> dets = {
      det({10, 10, 20, 20}, dataset::BoxLabel::kUpo, 0.9f)};
  const EvalCounts counts = evaluateImage(dets, {&gt, 1}, 0.9);
  EXPECT_EQ(counts.tp, 1);
  EXPECT_EQ(counts.fp, 0);
  EXPECT_EQ(counts.fn, 0);
  EXPECT_DOUBLE_EQ(counts.precision(), 1.0);
  EXPECT_DOUBLE_EQ(counts.recall(), 1.0);
  EXPECT_DOUBLE_EQ(counts.f1(), 1.0);
}

TEST(EvalTest, WrongClassIsFpPlusFn) {
  const dataset::Annotation gt{{10, 10, 20, 20}, dataset::BoxLabel::kUpo};
  const std::vector<Detection> dets = {
      det({10, 10, 20, 20}, dataset::BoxLabel::kAgo, 0.9f)};
  const EvalCounts counts = evaluateImage(dets, {&gt, 1}, 0.9);
  EXPECT_EQ(counts.tp, 0);
  EXPECT_EQ(counts.fp, 1);
  EXPECT_EQ(counts.fn, 1);
}

TEST(EvalTest, LooseBoxFailsStrictIouButPassesLoose) {
  const dataset::Annotation gt{{10, 10, 20, 20}, dataset::BoxLabel::kUpo};
  const std::vector<Detection> dets = {
      det({12, 12, 20, 20}, dataset::BoxLabel::kUpo, 0.9f)};
  EXPECT_EQ(evaluateImage(dets, {&gt, 1}, 0.9).tp, 0);
  EXPECT_EQ(evaluateImage(dets, {&gt, 1}, 0.5).tp, 1);
}

TEST(EvalTest, EachGtMatchedOnce) {
  const dataset::Annotation gt{{10, 10, 20, 20}, dataset::BoxLabel::kUpo};
  const std::vector<Detection> dets = {
      det({10, 10, 20, 20}, dataset::BoxLabel::kUpo, 0.9f),
      det({10, 10, 20, 20}, dataset::BoxLabel::kUpo, 0.8f)};
  const EvalCounts counts = evaluateImage(dets, {&gt, 1}, 0.9);
  EXPECT_EQ(counts.tp, 1);
  EXPECT_EQ(counts.fp, 1);
}

TEST(EvalTest, LabelFilterScopesCounts) {
  const dataset::Annotation gts[] = {
      {{10, 10, 20, 20}, dataset::BoxLabel::kUpo},
      {{50, 50, 40, 40}, dataset::BoxLabel::kAgo}};
  const std::vector<Detection> dets = {
      det({10, 10, 20, 20}, dataset::BoxLabel::kUpo, 0.9f)};
  const EvalCounts upoOnly =
      evaluateImage(dets, gts, 0.9, dataset::BoxLabel::kUpo);
  EXPECT_EQ(upoOnly.tp, 1);
  EXPECT_EQ(upoOnly.fn, 0);
  const EvalCounts agoOnly =
      evaluateImage(dets, gts, 0.9, dataset::BoxLabel::kAgo);
  EXPECT_EQ(agoOnly.fn, 1);
}

TEST(EvalTest, CountsAccumulate) {
  EvalCounts a{3, 1, 2};
  const EvalCounts b{1, 1, 1};
  a += b;
  EXPECT_EQ(a.tp, 4);
  EXPECT_EQ(a.fp, 2);
  EXPECT_EQ(a.fn, 3);
}

// ---------------------------------------------------------------- refine
TEST(RefineTest, SnapsExactlyToSolidPlate) {
  const Rect plate{40, 40, 18, 18};
  const gfx::Bitmap bmp =
      plateOnBackground({120, 120}, colors::kWhite, plate, Color::rgb(200, 200, 205));
  // Coarse box offset by a few pixels still snaps to the exact plate.
  const auto snapped = snapToRegion(bmp, plate.translated(3, -2));
  ASSERT_TRUE(snapped.has_value());
  EXPECT_EQ(*snapped, plate);
}

TEST(RefineTest, SnapsPlateWithGlyphOnTop) {
  const Rect plate{40, 40, 20, 20};
  gfx::Bitmap bmp =
      plateOnBackground({120, 120}, colors::kWhite, plate, Color::rgb(200, 200, 205));
  gfx::Canvas canvas(bmp);
  canvas.drawCross(plate, Color::rgb(90, 90, 90), 2);  // glyph over the plate
  const auto snapped = snapToRegion(bmp, plate.inflated(2));
  ASSERT_TRUE(snapped.has_value());
  EXPECT_GT(iou(*snapped, plate), 0.9);
}

TEST(RefineTest, FailsOnUniformBackground) {
  const gfx::Bitmap bmp(100, 100, colors::kWhite);
  EXPECT_FALSE(snapToRegion(bmp, {40, 40, 20, 20}).has_value());
}

TEST(RefineTest, FailsOnGhostPlate) {
  // A plate whose color is within tolerance of the background: the fill
  // leaks into the window border and is rejected (the paper's transparent
  // close-button FNs).
  const Rect plate{40, 40, 18, 18};
  const gfx::Bitmap bmp = plateOnBackground(
      {120, 120}, Color::rgb(240, 240, 240), plate, Color::rgb(232, 232, 232));
  EXPECT_FALSE(snapToRegion(bmp, plate.inflated(2)).has_value());
}

TEST(RefineTest, SnapsPlateStraddlingPanelEdge) {
  // Plate half on a white panel, half on dark scrim: the ring-discounted
  // mode must still find the plate color.
  gfx::Bitmap bmp(140, 140, Color::rgb(90, 90, 90));  // scrim
  bmp.fillRect({0, 60, 140, 80}, colors::kWhite);     // panel below
  const Rect plate{60, 52, 18, 18};                   // straddles y=60
  bmp.fillRect(plate, Color::rgb(190, 150, 60));
  const auto snapped = snapToRegion(bmp, plate.inflated(3));
  ASSERT_TRUE(snapped.has_value());
  EXPECT_GT(iou(*snapped, plate), 0.9);
}

TEST(RefineTest, EmptyInputsRejected) {
  const gfx::Bitmap bmp(50, 50, colors::kWhite);
  EXPECT_FALSE(snapToRegion(bmp, Rect{}).has_value());
  EXPECT_FALSE(snapToRegion(gfx::Bitmap{}, {0, 0, 10, 10}).has_value());
  EXPECT_FALSE(snapToRegion(bmp, {200, 200, 10, 10}).has_value());
}

// ------------------------------------------------------------- detectors
TEST(OneStageTest, AnchorStrideScalesWithSize) {
  EXPECT_EQ((Anchor{20, 20}).stride(), 10);
  EXPECT_EQ((Anchor{8, 8}).stride(), 8);    // clamped low
  EXPECT_EQ((Anchor{210, 48}).stride(), 24);
  EXPECT_EQ((Anchor{130, 130}).stride(), 32);  // clamped high
}

TEST(OneStageTest, TinyTrainedModelDetectsObviousAui) {
  // A deliberately tiny dataset/short schedule: this is a smoke test that
  // the full train->detect->refine pipeline is wired correctly end to end.
  dataset::DatasetConfig dataConfig;
  dataConfig.totalScreenshots = 170;
  dataConfig.seed = 77;
  const dataset::AuiDataset data = dataset::AuiDataset::build(dataConfig);
  cv::TrainConfig trainConfig;
  trainConfig.epochs = 14;
  trainConfig.benignImages = 30;
  const OneStageDetector detector =
      OneStageDetector::train(data, OneStageConfig{}, trainConfig);
  const ModelMetrics metrics =
      evaluateDetector(detector, data, data.testIndices(), false, 0.5);
  // Loose bar: at IoU 0.5 the tiny model must already find most AGOs.
  EXPECT_GT(metrics.ago.recall(), 0.4);
  EXPECT_GT(detector.costMacsPerImage(), 0.0);
}

TEST(TwoStageTest, ModelNames) {
  EXPECT_EQ(twoStageModelName(HeadKind::kFaster, Backbone::kV),
            "Faster RCNN-like+V16");
  EXPECT_EQ(twoStageModelName(HeadKind::kMask, Backbone::kR),
            "Mask RCNN-like+R50");
}

TEST(TwoStageTest, ProposalsCoverSalientPlate) {
  gfx::Bitmap bmp(360, 720, colors::kWhite);
  bmp.fillRect({100, 300, 150, 150}, colors::kRed);  // big salient block
  dataset::DatasetConfig dataConfig;
  dataConfig.totalScreenshots = 20;
  dataConfig.seed = 3;
  const dataset::AuiDataset data = dataset::AuiDataset::build(dataConfig);
  TwoStageTrainConfig trainConfig;
  trainConfig.epochs = 1;
  trainConfig.benignImages = 2;
  const TwoStageDetector detector =
      TwoStageDetector::train(data, TwoStageConfig{}, trainConfig);
  double best = 0.0;
  for (const Rect& prop : detector.proposals(bmp)) {
    best = std::max(best, iou(prop, Rect{100, 300, 150, 150}));
  }
  EXPECT_GT(best, 0.5);
}

}  // namespace
}  // namespace darpa::cv
