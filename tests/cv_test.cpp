// Unit tests for the CV library: feature extraction, NMS, evaluation
// matching, flood-fill refinement, and detector scaffolding.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "cv/detection.h"
#include "cv/features.h"
#include "cv/one_stage.h"
#include "cv/refine.h"
#include "cv/two_stage.h"
#include "gfx/canvas.h"
#include "util/rng.h"

namespace darpa::cv {
namespace {

gfx::Bitmap plateOnBackground(Size size, Color background, const Rect& plate,
                              Color plateColor) {
  gfx::Bitmap bmp(size.width, size.height, background);
  bmp.fillRect(plate, plateColor);
  return bmp;
}

// ---------------------------------------------------------------- channels
TEST(ChannelSetTest, MaskOperations) {
  EXPECT_EQ(ChannelSet::all().count(), kChannelCount);
  const ChannelSet noEdge = ChannelSet::all().without(Channel::kEdge);
  EXPECT_EQ(noEdge.count(), kChannelCount - 1);
  EXPECT_FALSE(noEdge.enabled(Channel::kEdge));
  EXPECT_TRUE(noEdge.enabled(Channel::kLuma));
  const Channel two[] = {Channel::kLuma, Channel::kSaliency};
  const ChannelSet only = ChannelSet::only(two);
  EXPECT_EQ(only.count(), 2);
  EXPECT_TRUE(only.enabled(Channel::kSaliency));
  EXPECT_FALSE(only.enabled(Channel::kContrast));
}

// ---------------------------------------------------------------- features
TEST(FeatureMapTest, LumaMeansReflectContent) {
  gfx::Bitmap bmp(64, 64, colors::kWhite);
  bmp.fillRect({0, 0, 32, 64}, colors::kBlack);
  const FeatureMap map(bmp, ChannelSet::all(), 2);
  EXPECT_LT(map.boxMean(Channel::kLuma, {0, 0, 32, 64}), 0.1f);
  EXPECT_GT(map.boxMean(Channel::kLuma, {32, 0, 32, 64}), 0.9f);
  EXPECT_NEAR(map.globalMean(Channel::kLuma), 0.5f, 0.05f);
}

TEST(FeatureMapTest, EdgeFiresOnBoundary) {
  gfx::Bitmap bmp(64, 64, colors::kWhite);
  bmp.fillRect({0, 0, 32, 64}, colors::kBlack);
  const FeatureMap map(bmp, ChannelSet::all(), 2);
  EXPECT_GT(map.boxMean(Channel::kEdge, {28, 0, 8, 64}),
            map.boxMean(Channel::kEdge, {48, 0, 8, 64}) + 0.1f);
}

TEST(FeatureMapTest, RingContrastPositiveForBrightPlate) {
  const gfx::Bitmap bmp = plateOnBackground({80, 80}, colors::kBlack,
                                            {30, 30, 20, 20}, colors::kWhite);
  const FeatureMap map(bmp, ChannelSet::all(), 2);
  EXPECT_GT(map.ringContrast(Channel::kLuma, {30, 30, 20, 20}), 0.3f);
  // A box over uniform background has ~zero ring contrast.
  EXPECT_NEAR(map.ringContrast(Channel::kLuma, {2, 2, 10, 10}), 0.0f, 0.05f);
}

TEST(FeatureMapTest, DisabledChannelReadsZero) {
  const gfx::Bitmap bmp = plateOnBackground({40, 40}, colors::kBlack,
                                            {10, 10, 10, 10}, colors::kRed);
  const FeatureMap map(bmp, ChannelSet::all().without(Channel::kSaturation), 2);
  EXPECT_EQ(map.boxMean(Channel::kSaturation, {10, 10, 10, 10}), 0.0f);
  EXPECT_GT(map.boxMean(Channel::kSaliency, {10, 10, 10, 10}), 0.0f);
}

TEST(FeatureMapTest, CenterSurroundDetectsDarkSurround) {
  gfx::Bitmap bmp(80, 160, colors::kBlack);
  bmp.fillRect({20, 40, 40, 80}, colors::kWhite);  // bright center panel
  const FeatureMap map(bmp, ChannelSet::all(), 2);
  EXPECT_GT(map.centerSurroundLuma(), 0.3f);
}

TEST(CandidateFeaturesTest, DimensionMatchesConstant) {
  const gfx::Bitmap bmp(64, 64, colors::kGray);
  const FeatureMap map(bmp, ChannelSet::all(), 2);
  const std::vector<float> f = candidateFeatures(map, {10, 10, 20, 20});
  EXPECT_EQ(static_cast<int>(f.size()), kCandidateFeatureDim);
  for (float v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(CandidateFeaturesTest, ContinuationSeparatesBlobFromBorder) {
  // Isolated blob vs a long horizontal stripe of the same height.
  gfx::Bitmap blobImg(200, 100, colors::kWhite);
  blobImg.fillRect({90, 40, 20, 20}, colors::kBlack);
  gfx::Bitmap stripeImg(200, 100, colors::kWhite);
  stripeImg.fillRect({0, 40, 200, 20}, colors::kBlack);
  const FeatureMap blobMap(blobImg, ChannelSet::all(), 2);
  const FeatureMap stripeMap(stripeImg, ChannelSet::all(), 2);
  const Rect box{90, 40, 20, 20};
  const auto blobF = candidateFeatures(blobMap, box);
  const auto stripeF = candidateFeatures(stripeMap, box);
  // Horizontal continuation (second-to-last feature) is larger on stripes.
  const std::size_t contX = blobF.size() - 2;
  EXPECT_GT(stripeF[contX], blobF[contX] + 0.05f);
}

// ---------------------------------------------------------------- NMS/eval
Detection det(Rect box, dataset::BoxLabel label, float conf) {
  return Detection{box, label, conf};
}

TEST(NmsTest, SuppressesOverlappingSameClass) {
  std::vector<Detection> dets = {
      det({0, 0, 20, 20}, dataset::BoxLabel::kUpo, 0.9f),
      det({2, 2, 20, 20}, dataset::BoxLabel::kUpo, 0.8f),
      det({100, 100, 20, 20}, dataset::BoxLabel::kUpo, 0.7f),
  };
  const auto kept = nonMaxSuppression(std::move(dets), 0.5);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].confidence, 0.9f);  // highest kept first
}

TEST(NmsTest, DifferentClassesSurvive) {
  std::vector<Detection> dets = {
      det({0, 0, 20, 20}, dataset::BoxLabel::kUpo, 0.9f),
      det({0, 0, 20, 20}, dataset::BoxLabel::kAgo, 0.8f),
  };
  EXPECT_EQ(nonMaxSuppression(std::move(dets), 0.5).size(), 2u);
}

TEST(EvalTest, PerfectDetectionCountsTp) {
  const dataset::Annotation gt{{10, 10, 20, 20}, dataset::BoxLabel::kUpo};
  const std::vector<Detection> dets = {
      det({10, 10, 20, 20}, dataset::BoxLabel::kUpo, 0.9f)};
  const EvalCounts counts = evaluateImage(dets, {&gt, 1}, 0.9);
  EXPECT_EQ(counts.tp, 1);
  EXPECT_EQ(counts.fp, 0);
  EXPECT_EQ(counts.fn, 0);
  EXPECT_DOUBLE_EQ(counts.precision(), 1.0);
  EXPECT_DOUBLE_EQ(counts.recall(), 1.0);
  EXPECT_DOUBLE_EQ(counts.f1(), 1.0);
}

TEST(EvalTest, WrongClassIsFpPlusFn) {
  const dataset::Annotation gt{{10, 10, 20, 20}, dataset::BoxLabel::kUpo};
  const std::vector<Detection> dets = {
      det({10, 10, 20, 20}, dataset::BoxLabel::kAgo, 0.9f)};
  const EvalCounts counts = evaluateImage(dets, {&gt, 1}, 0.9);
  EXPECT_EQ(counts.tp, 0);
  EXPECT_EQ(counts.fp, 1);
  EXPECT_EQ(counts.fn, 1);
}

TEST(EvalTest, LooseBoxFailsStrictIouButPassesLoose) {
  const dataset::Annotation gt{{10, 10, 20, 20}, dataset::BoxLabel::kUpo};
  const std::vector<Detection> dets = {
      det({12, 12, 20, 20}, dataset::BoxLabel::kUpo, 0.9f)};
  EXPECT_EQ(evaluateImage(dets, {&gt, 1}, 0.9).tp, 0);
  EXPECT_EQ(evaluateImage(dets, {&gt, 1}, 0.5).tp, 1);
}

TEST(EvalTest, EachGtMatchedOnce) {
  const dataset::Annotation gt{{10, 10, 20, 20}, dataset::BoxLabel::kUpo};
  const std::vector<Detection> dets = {
      det({10, 10, 20, 20}, dataset::BoxLabel::kUpo, 0.9f),
      det({10, 10, 20, 20}, dataset::BoxLabel::kUpo, 0.8f)};
  const EvalCounts counts = evaluateImage(dets, {&gt, 1}, 0.9);
  EXPECT_EQ(counts.tp, 1);
  EXPECT_EQ(counts.fp, 1);
}

TEST(EvalTest, LabelFilterScopesCounts) {
  const dataset::Annotation gts[] = {
      {{10, 10, 20, 20}, dataset::BoxLabel::kUpo},
      {{50, 50, 40, 40}, dataset::BoxLabel::kAgo}};
  const std::vector<Detection> dets = {
      det({10, 10, 20, 20}, dataset::BoxLabel::kUpo, 0.9f)};
  const EvalCounts upoOnly =
      evaluateImage(dets, gts, 0.9, dataset::BoxLabel::kUpo);
  EXPECT_EQ(upoOnly.tp, 1);
  EXPECT_EQ(upoOnly.fn, 0);
  const EvalCounts agoOnly =
      evaluateImage(dets, gts, 0.9, dataset::BoxLabel::kAgo);
  EXPECT_EQ(agoOnly.fn, 1);
}

TEST(EvalTest, CountsAccumulate) {
  EvalCounts a{3, 1, 2};
  const EvalCounts b{1, 1, 1};
  a += b;
  EXPECT_EQ(a.tp, 4);
  EXPECT_EQ(a.fp, 2);
  EXPECT_EQ(a.fn, 3);
}

// ---------------------------------------------------------------- refine
TEST(RefineTest, SnapsExactlyToSolidPlate) {
  const Rect plate{40, 40, 18, 18};
  const gfx::Bitmap bmp =
      plateOnBackground({120, 120}, colors::kWhite, plate, Color::rgb(200, 200, 205));
  // Coarse box offset by a few pixels still snaps to the exact plate.
  const auto snapped = snapToRegion(bmp, plate.translated(3, -2));
  ASSERT_TRUE(snapped.has_value());
  EXPECT_EQ(*snapped, plate);
}

TEST(RefineTest, SnapsPlateWithGlyphOnTop) {
  const Rect plate{40, 40, 20, 20};
  gfx::Bitmap bmp =
      plateOnBackground({120, 120}, colors::kWhite, plate, Color::rgb(200, 200, 205));
  gfx::Canvas canvas(bmp);
  canvas.drawCross(plate, Color::rgb(90, 90, 90), 2);  // glyph over the plate
  const auto snapped = snapToRegion(bmp, plate.inflated(2));
  ASSERT_TRUE(snapped.has_value());
  EXPECT_GT(iou(*snapped, plate), 0.9);
}

TEST(RefineTest, FailsOnUniformBackground) {
  const gfx::Bitmap bmp(100, 100, colors::kWhite);
  EXPECT_FALSE(snapToRegion(bmp, {40, 40, 20, 20}).has_value());
}

TEST(RefineTest, FailsOnGhostPlate) {
  // A plate whose color is within tolerance of the background: the fill
  // leaks into the window border and is rejected (the paper's transparent
  // close-button FNs).
  const Rect plate{40, 40, 18, 18};
  const gfx::Bitmap bmp = plateOnBackground(
      {120, 120}, Color::rgb(240, 240, 240), plate, Color::rgb(232, 232, 232));
  EXPECT_FALSE(snapToRegion(bmp, plate.inflated(2)).has_value());
}

TEST(RefineTest, SnapsPlateStraddlingPanelEdge) {
  // Plate half on a white panel, half on dark scrim: the ring-discounted
  // mode must still find the plate color.
  gfx::Bitmap bmp(140, 140, Color::rgb(90, 90, 90));  // scrim
  bmp.fillRect({0, 60, 140, 80}, colors::kWhite);     // panel below
  const Rect plate{60, 52, 18, 18};                   // straddles y=60
  bmp.fillRect(plate, Color::rgb(190, 150, 60));
  const auto snapped = snapToRegion(bmp, plate.inflated(3));
  ASSERT_TRUE(snapped.has_value());
  EXPECT_GT(iou(*snapped, plate), 0.9);
}

TEST(RefineTest, FailsWhenFillLeaksThroughRibbonToWindowBorder) {
  // The candidate's color continues as a ribbon far past the snap window:
  // the flood fill reaches the window border (the early-abort seam) and the
  // candidate must be rejected, not snapped to a truncated box.
  gfx::Bitmap bmp(160, 160, Color::rgb(90, 90, 90));
  bmp.fillRect({60, 60, 90, 18}, Color::rgb(190, 150, 60));  // runs off-window
  EXPECT_FALSE(snapToRegion(bmp, {60, 60, 18, 18}).has_value());
}

TEST(RefineTest, EmptyInputsRejected) {
  const gfx::Bitmap bmp(50, 50, colors::kWhite);
  EXPECT_FALSE(snapToRegion(bmp, Rect{}).has_value());
  EXPECT_FALSE(snapToRegion(gfx::Bitmap{}, {0, 0, 10, 10}).has_value());
  EXPECT_FALSE(snapToRegion(bmp, {200, 200, 10, 10}).has_value());
}

// ------------------------------------------------------------- detectors
TEST(OneStageTest, AnchorStrideScalesWithSize) {
  EXPECT_EQ((Anchor{20, 20}).stride(), 10);
  EXPECT_EQ((Anchor{8, 8}).stride(), 8);    // clamped low
  EXPECT_EQ((Anchor{210, 48}).stride(), 24);
  EXPECT_EQ((Anchor{130, 130}).stride(), 32);  // clamped high
}

TEST(OneStageTest, TinyTrainedModelDetectsObviousAui) {
  // A deliberately tiny dataset/short schedule: this is a smoke test that
  // the full train->detect->refine pipeline is wired correctly end to end.
  dataset::DatasetConfig dataConfig;
  dataConfig.totalScreenshots = 170;
  dataConfig.seed = 77;
  const dataset::AuiDataset data = dataset::AuiDataset::build(dataConfig);
  cv::TrainConfig trainConfig;
  trainConfig.epochs = 14;
  trainConfig.benignImages = 30;
  const OneStageDetector detector =
      OneStageDetector::train(data, OneStageConfig{}, trainConfig);
  const ModelMetrics metrics =
      evaluateDetector(detector, data, data.testIndices(), false, 0.5);
  // Loose bar: at IoU 0.5 the tiny model must already find most AGOs.
  EXPECT_GT(metrics.ago.recall(), 0.4);
  EXPECT_GT(detector.costMacsPerImage(), 0.0);
}

// ----------------------------------------------- fused feature-pass parity
// Naive single-channel-at-a-time reference for the fused FeatureMap pass:
// per-pixel 25-tap clamped contrast window, per-pixel clamped Sobel, and the
// same integral accumulation order. The fused implementation must match it
// BIT-exactly (EXPECT_EQ on floats) — including every border pixel, which is
// where the separable sliding window's clamping could drift.
struct ReferencePlanes {
  int w = 0;
  int h = 0;
  std::array<std::vector<double>, kChannelCount> integrals;

  [[nodiscard]] double sum(int c, const Rect& cells) const {
    const int stride = w + 1;
    const double* integral = integrals[static_cast<std::size_t>(c)].data();
    const double a = integral[static_cast<std::size_t>(cells.y) * stride + cells.x];
    const double b =
        integral[static_cast<std::size_t>(cells.y) * stride + cells.right()];
    const double cc =
        integral[static_cast<std::size_t>(cells.bottom()) * stride + cells.x];
    const double d = integral[static_cast<std::size_t>(cells.bottom()) * stride +
                              cells.right()];
    return d - b - cc + a;
  }
  [[nodiscard]] float mean(int c, const Rect& cells) const {
    return static_cast<float>(sum(c, cells) /
                              static_cast<double>(cells.area()));
  }
};

std::int32_t refIntLuma(Color c) { return 299 * c.r + 587 * c.g + 114 * c.b; }

ReferencePlanes naiveReference(const gfx::Bitmap& screenshot,
                               ChannelSet channels, int scale) {
  const gfx::Bitmap small = screenshot.downscale(
      std::max(screenshot.width() / scale, 1),
      std::max(screenshot.height() / scale, 1));
  ReferencePlanes ref;
  ref.w = small.width();
  ref.h = small.height();
  const int w = ref.w;
  const int h = ref.h;
  for (auto& plane : ref.integrals) {
    plane.assign(static_cast<std::size_t>(w + 1) * (h + 1), 0.0);
  }
  const Color meanColor = small.meanColor(small.bounds());
  std::vector<float> lumaF(static_cast<std::size_t>(w) * h);
  std::vector<std::int32_t> lumaI(static_cast<std::size_t>(w) * h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const Color c = small.at(x, y);
      lumaF[static_cast<std::size_t>(y) * w + x] =
          static_cast<float>(luma(c) / 255.0);
      lumaI[static_cast<std::size_t>(y) * w + x] = refIntLuma(c);
    }
  }
  auto lumaAt = [&](int x, int y) {
    return lumaF[static_cast<std::size_t>(std::clamp(y, 0, h - 1)) * w +
                 std::clamp(x, 0, w - 1)];
  };
  auto intLumaAt = [&](int x, int y) {
    return lumaI[static_cast<std::size_t>(std::clamp(y, 0, h - 1)) * w +
                 std::clamp(x, 0, w - 1)];
  };
  auto pixelValue = [&](Channel channel, int x, int y) -> double {
    const Color c = small.at(x, y);
    switch (channel) {
      case Channel::kLuma:
        return lumaAt(x, y);
      case Channel::kEdge: {
        const float gx =
            (lumaAt(x + 1, y - 1) + 2 * lumaAt(x + 1, y) + lumaAt(x + 1, y + 1)) -
            (lumaAt(x - 1, y - 1) + 2 * lumaAt(x - 1, y) + lumaAt(x - 1, y + 1));
        const float gy =
            (lumaAt(x - 1, y + 1) + 2 * lumaAt(x, y + 1) + lumaAt(x + 1, y + 1)) -
            (lumaAt(x - 1, y - 1) + 2 * lumaAt(x, y - 1) + lumaAt(x + 1, y - 1));
        return std::min(std::sqrt(gx * gx + gy * gy) / 4.0f, 1.0f);
      }
      case Channel::kContrast: {
        // The naive 25-tap window the separable pass must reproduce.
        std::int64_t windowSum = 0;
        for (int dy = -2; dy <= 2; ++dy) {
          for (int dx = -2; dx <= 2; ++dx) {
            windowSum += intLumaAt(x + dx, y + dy);
          }
        }
        const std::int64_t diff =
            25LL * intLumaAt(x, y) - windowSum;
        return static_cast<float>(
            static_cast<double>(diff < 0 ? -diff : diff) / (25.0 * 255000.0));
      }
      case Channel::kSaturation: {
        const int mx = std::max({c.r, c.g, c.b});
        const int mn = std::min({c.r, c.g, c.b});
        return static_cast<float>(mx - mn) / 255.0f;
      }
      case Channel::kSaliency: {
        const float dr = static_cast<float>(c.r - meanColor.r);
        const float dg = static_cast<float>(c.g - meanColor.g);
        const float db = static_cast<float>(c.b - meanColor.b);
        return std::sqrt(dr * dr + dg * dg + db * db) / 442.0f;
      }
    }
    return 0.0;
  };
  for (int ci = 0; ci < kChannelCount; ++ci) {
    if (!channels.enabled(static_cast<Channel>(ci))) continue;
    std::vector<double>& integral = ref.integrals[static_cast<std::size_t>(ci)];
    const std::size_t stride = static_cast<std::size_t>(w) + 1;
    for (int y = 0; y < h; ++y) {
      double rowSum = 0.0;
      for (int x = 0; x < w; ++x) {
        rowSum += pixelValue(static_cast<Channel>(ci), x, y);
        integral[static_cast<std::size_t>(y + 1) * stride + x + 1] =
            integral[static_cast<std::size_t>(y) * stride + x + 1] + rowSum;
      }
    }
  }
  return ref;
}

gfx::Bitmap randomBitmap(int w, int h, std::uint64_t seed) {
  Rng rng(seed);
  gfx::Bitmap bmp(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      bmp.set(x, y,
              Color::rgb(static_cast<std::uint8_t>(rng.next() & 0xff),
                         static_cast<std::uint8_t>(rng.next() & 0xff),
                         static_cast<std::uint8_t>(rng.next() & 0xff)));
    }
  }
  return bmp;
}

void expectFusedMatchesReference(const gfx::Bitmap& bmp, ChannelSet channels,
                                 int scale, const std::string& label) {
  const FeatureMap map(bmp, channels, scale);
  const ReferencePlanes ref = naiveReference(bmp, channels, scale);
  ASSERT_EQ(map.width(), ref.w) << label;
  ASSERT_EQ(map.height(), ref.h) << label;
  for (int ci = 0; ci < kChannelCount; ++ci) {
    if (!channels.enabled(static_cast<Channel>(ci))) continue;
    const Channel channel = static_cast<Channel>(ci);
    // Every single cell — this sweeps every border and corner pixel, the
    // exact places where the sliding window's clamping could diverge from
    // the naive reference.
    for (int y = 0; y < ref.h; ++y) {
      for (int x = 0; x < ref.w; ++x) {
        const Rect cellRect{x * scale, y * scale, scale, scale};
        EXPECT_EQ(map.boxMean(channel, cellRect),
                  ref.mean(ci, Rect{x, y, 1, 1}))
            << label << " channel=" << channelName(channel) << " cell=(" << x
            << "," << y << ")";
      }
    }
    // A few multi-cell boxes exercise the integral arithmetic end to end.
    const Rect whole{0, 0, ref.w * scale, ref.h * scale};
    EXPECT_EQ(map.boxMean(channel, whole),
              ref.mean(ci, Rect{0, 0, ref.w, ref.h}))
        << label << " channel=" << channelName(channel) << " whole";
  }
}

TEST(FusedFeatureParityTest, FusedMatchesNaiveReferenceOnRandomBitmaps) {
  // Assorted shapes: wider than the window, narrower than the window in one
  // or both axes (maximal clamping), and non-multiples of the scale.
  const std::array<std::array<int, 2>, 6> shapes = {
      {{64, 48}, {33, 17}, {5, 5}, {3, 9}, {9, 3}, {7, 40}}};
  std::uint64_t seed = 1000;
  for (const auto& shape : shapes) {
    for (const int scale : {1, 2}) {
      const gfx::Bitmap bmp = randomBitmap(shape[0], shape[1], ++seed);
      expectFusedMatchesReference(
          bmp, ChannelSet::all(), scale,
          std::to_string(shape[0]) + "x" + std::to_string(shape[1]) +
              " scale=" + std::to_string(scale));
    }
  }
}

TEST(FusedFeatureParityTest, TinyAndDegenerateSizes) {
  // 1x1 through sizes smaller than the 5x5 window: every pixel is a border
  // pixel and the clamped window folds onto itself.
  for (const auto& shape :
       std::array<std::array<int, 2>, 5>{{{1, 1}, {2, 2}, {1, 7}, {7, 1}, {4, 4}}}) {
    const gfx::Bitmap bmp = randomBitmap(shape[0], shape[1], 7700 + shape[0]);
    expectFusedMatchesReference(bmp, ChannelSet::all(), 1,
                                std::to_string(shape[0]) + "x" +
                                    std::to_string(shape[1]));
  }
}

TEST(FusedFeatureParityTest, ChannelSubsetsMatchAndDisabledStayZero) {
  const gfx::Bitmap bmp = randomBitmap(24, 18, 909);
  const Channel contrastOnly[] = {Channel::kContrast};
  const Channel edgeSal[] = {Channel::kEdge, Channel::kSaliency};
  for (const ChannelSet set :
       {ChannelSet::only(contrastOnly), ChannelSet::only(edgeSal),
        ChannelSet::all().without(Channel::kLuma)}) {
    expectFusedMatchesReference(bmp, set, 1, "subset");
    const FeatureMap map(bmp, set, 1);
    for (int ci = 0; ci < kChannelCount; ++ci) {
      if (set.enabled(static_cast<Channel>(ci))) continue;
      EXPECT_EQ(map.boxMean(static_cast<Channel>(ci), {0, 0, 24, 18}), 0.0f);
    }
  }
}

TEST(FusedFeatureParityTest, BoundaryPixelsOfStructuredImage) {
  // Regression guard for the border audit: a structured (non-random) image
  // whose strong gradients sit exactly on the frame so any clamp mismatch
  // in the separable window or Sobel pointers shows up as a corner diff.
  gfx::Bitmap bmp(20, 14, colors::kWhite);
  bmp.fillRect({0, 0, 10, 14}, colors::kBlack);    // vertical edge mid-frame
  bmp.fillRect({0, 0, 20, 2}, colors::kRed);       // stripe on the top border
  bmp.fillRect({18, 0, 2, 14}, colors::kBlue);     // stripe on the right border
  const FeatureMap map(bmp, ChannelSet::all(), 1);
  const ReferencePlanes ref = naiveReference(bmp, ChannelSet::all(), 1);
  for (const Channel channel : {Channel::kEdge, Channel::kContrast}) {
    const int ci = static_cast<int>(channel);
    for (int x = 0; x < 20; ++x) {  // top and bottom rows
      EXPECT_EQ(map.boxMean(channel, {x, 0, 1, 1}), ref.mean(ci, {x, 0, 1, 1}));
      EXPECT_EQ(map.boxMean(channel, {x, 13, 1, 1}),
                ref.mean(ci, {x, 13, 1, 1}));
    }
    for (int y = 0; y < 14; ++y) {  // left and right columns
      EXPECT_EQ(map.boxMean(channel, {0, y, 1, 1}), ref.mean(ci, {0, y, 1, 1}));
      EXPECT_EQ(map.boxMean(channel, {19, y, 1, 1}),
                ref.mean(ci, {19, y, 1, 1}));
    }
  }
}

TEST(FusedFeatureParityTest, PooledPlaneReuseLeavesNoStaleData) {
  // The integral planes are recycled through a thread-local pool, and a
  // reused buffer is only re-zeroed along its integral borders (enabled
  // channels) or in full (disabled channels). Build a large all-channels map
  // first so the pool holds a thoroughly dirty buffer, then verify maps that
  // reuse it — a smaller frame and a channel subset — still match the naive
  // reference bit-for-bit and read zero on disabled channels.
  const gfx::Bitmap big = randomBitmap(72, 54, 4242);
  { const FeatureMap dirty(big, ChannelSet::all(), 1); }  // seeds the pool

  const gfx::Bitmap smaller = randomBitmap(19, 11, 4343);
  expectFusedMatchesReference(smaller, ChannelSet::all(), 1,
                              "pool-reuse smaller frame");

  { const FeatureMap dirty(big, ChannelSet::all(), 1); }  // re-dirty the pool
  const ChannelSet subset =
      ChannelSet::all().without(Channel::kSaturation).without(Channel::kEdge);
  expectFusedMatchesReference(big, subset, 1, "pool-reuse channel subset");
  const FeatureMap map(big, subset, 1);
  for (const Channel off : {Channel::kSaturation, Channel::kEdge}) {
    EXPECT_EQ(map.globalMean(off), 0.0f) << channelName(off);
    for (int y = 0; y < map.height(); ++y) {
      for (int x = 0; x < map.width(); ++x) {
        ASSERT_EQ(map.boxMean(off, {x, y, 1, 1}), 0.0f)
            << channelName(off) << " cell=(" << x << "," << y << ")";
      }
    }
  }
}

TEST(FusedFeatureParityTest, PlannedGeometryDescriptorMatchesDirect) {
  // The batched detector replays a cached geometric-prior block per grid
  // entry; the planned fill must be bit-equal to the direct per-candidate
  // descriptor for arbitrary boxes.
  const gfx::Bitmap bmp = randomBitmap(96, 64, 515);
  const FeatureMap map(bmp, ChannelSet::all(), 2);
  const std::array<Rect, 4> boxes = {
      {{4, 4, 20, 20}, {0, 0, 96, 64}, {70, 40, 26, 24}, {33, 17, 9, 41}}};
  for (const Rect& box : boxes) {
    const std::vector<float> direct = candidateFeatures(map, box);
    std::array<float, kCandidateGeometryDim> geo{};
    candidateGeometryInto(map.fullSize(), box, geo);
    std::vector<float> planned(kCandidateFeatureDim);
    candidateFeaturesPlannedInto(map, box, geo, planned);
    ASSERT_EQ(direct.size(), planned.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(direct[i], planned[i]) << "feature i=" << i;
    }
  }
}

// ------------------------------------------------ batched detect parity

void expectDetectionsEq(const std::vector<Detection>& a,
                        const std::vector<Detection>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].box.x, b[i].box.x) << label << " i=" << i;
    EXPECT_EQ(a[i].box.y, b[i].box.y) << label << " i=" << i;
    EXPECT_EQ(a[i].box.width, b[i].box.width) << label << " i=" << i;
    EXPECT_EQ(a[i].box.height, b[i].box.height) << label << " i=" << i;
    EXPECT_EQ(a[i].label, b[i].label) << label << " i=" << i;
    EXPECT_EQ(a[i].confidence, b[i].confidence) << label << " i=" << i;
  }
}

TEST(OneStageTest, BatchedHeadBitEqualsScalarDetect) {
  dataset::DatasetConfig dataConfig;
  dataConfig.totalScreenshots = 120;
  dataConfig.seed = 31;
  const dataset::AuiDataset data = dataset::AuiDataset::build(dataConfig);
  cv::TrainConfig trainConfig;
  trainConfig.epochs = 6;
  trainConfig.benignImages = 20;
  const OneStageDetector batched =
      OneStageDetector::train(data, OneStageConfig{}, trainConfig);
  ASSERT_TRUE(batched.config().batchedHead);

  // Same weights through the scalar per-candidate path.
  const std::string path = testing::TempDir() + "/one_stage_parity.bin";
  ASSERT_TRUE(batched.saveModel(path));
  OneStageConfig scalarConfig;
  scalarConfig.batchedHead = false;
  auto scalar = OneStageDetector::loadModel(path, scalarConfig);
  ASSERT_TRUE(scalar.has_value());

  std::vector<gfx::Bitmap> images;
  for (std::size_t i = 0; i < 6 && i < data.testIndices().size(); ++i) {
    images.push_back(data.materialize(data.testIndices()[i]).image);
  }
  images.push_back(randomBitmap(360, 720, 404));
  for (std::size_t i = 0; i < images.size(); ++i) {
    expectDetectionsEq(batched.detect(images[i]), scalar->detect(images[i]),
                       "image " + std::to_string(i));
  }

  // detectBatch must equal per-image detect regardless of pack composition.
  std::vector<const gfx::Bitmap*> ptrs;
  ptrs.reserve(images.size());
  for (const gfx::Bitmap& img : images) ptrs.push_back(&img);
  const std::vector<std::vector<Detection>> batchResults =
      batched.detectBatch(ptrs);
  ASSERT_EQ(batchResults.size(), images.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    expectDetectionsEq(batchResults[i], batched.detect(images[i]),
                       "batch image " + std::to_string(i));
  }
}

TEST(TwoStageTest, ModelNames) {
  EXPECT_EQ(twoStageModelName(HeadKind::kFaster, Backbone::kV),
            "Faster RCNN-like+V16");
  EXPECT_EQ(twoStageModelName(HeadKind::kMask, Backbone::kR),
            "Mask RCNN-like+R50");
}

TEST(TwoStageTest, ProposalsCoverSalientPlate) {
  gfx::Bitmap bmp(360, 720, colors::kWhite);
  bmp.fillRect({100, 300, 150, 150}, colors::kRed);  // big salient block
  dataset::DatasetConfig dataConfig;
  dataConfig.totalScreenshots = 20;
  dataConfig.seed = 3;
  const dataset::AuiDataset data = dataset::AuiDataset::build(dataConfig);
  TwoStageTrainConfig trainConfig;
  trainConfig.epochs = 1;
  trainConfig.benignImages = 2;
  const TwoStageDetector detector =
      TwoStageDetector::train(data, TwoStageConfig{}, trainConfig);
  double best = 0.0;
  for (const Rect& prop : detector.proposals(bmp)) {
    best = std::max(best, iou(prop, Rect{100, 300, 150, 150}));
  }
  EXPECT_GT(best, 0.5);
}

}  // namespace
}  // namespace darpa::cv
