// SharedVerdictTier tests: the striped L2's LRU/eviction/poisoning-guard
// unit contracts, a concurrent publish/find hammer (the TSan lane runs this
// suite), and the tier refactor's two fleet-level contracts:
//
//  1. Tier DISABLED (the default): 64-session fleet digests stay
//     byte-identical across drivers and worker counts — the tier's mere
//     existence changes nothing.
//  2. Tier ENABLED over a shared app population: every session still
//     reaches the same per-session verdicts (same analyses, same AUIs
//     flagged), but the fleet runs strictly fewer model detects — the L2
//     hits and the single-flight coalescing moved who pays, never what is
//     decided.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/verdict_tier.h"
#include "fleet/executors.h"
#include "fleet/fleet.h"
#include "perf/device_model.h"
#include "util/rng.h"

namespace darpa::core {
namespace {

cv::Detection upo() {
  return cv::Detection{{10, 50, 60, 24}, dataset::BoxLabel::kUpo, 0.9f};
}

// ------------------------------------------------------- unit contracts

TEST(SharedVerdictTierTest, PublishFindLruAndEvictions) {
  SharedVerdictTier tier({.shards = 1, .capacityPerShard = 2});
  EXPECT_TRUE(tier.enabled());
  EXPECT_EQ(tier.shardCount(), 1);

  using Evidence = SharedVerdictTier::Evidence;
  EXPECT_TRUE(tier.publish(1, {true, {upo()}}, Evidence::kCapture));
  EXPECT_TRUE(tier.publish(2, {false, {}}, Evidence::kLint));
  ASSERT_TRUE(tier.find(1).has_value());  // refresh 1: now 2 is the LRU
  EXPECT_TRUE(tier.publish(3, {true, {upo()}}, Evidence::kCapture));

  EXPECT_FALSE(tier.find(2).has_value());  // 2 was evicted
  const auto one = tier.find(1);
  ASSERT_TRUE(one.has_value());
  EXPECT_TRUE(one->isAui);
  ASSERT_EQ(one->detections.size(), 1u);
  EXPECT_TRUE(tier.find(3).has_value());

  // Re-publishing refreshes value and recency instead of duplicating.
  EXPECT_TRUE(tier.publish(1, {false, {}}, Evidence::kCapture));
  const auto updated = tier.find(1);
  ASSERT_TRUE(updated.has_value());
  EXPECT_FALSE(updated->isAui);

  const SharedVerdictTier::Stats stats = tier.stats();
  EXPECT_EQ(stats.entries, 2);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.publishes, 4);
  EXPECT_EQ(stats.hits, 4);
  EXPECT_EQ(stats.misses, 1);
}

TEST(SharedVerdictTierTest, PoisoningGuardRejectsUnevidencedVerdicts) {
  SharedVerdictTier tier({.shards = 1, .capacityPerShard = 8});
  // A verdict with no lint resolution and no usable capture (a transient
  // screenshot failure) must never become fleet truth.
  EXPECT_FALSE(tier.publish(7, {false, {}},
                            SharedVerdictTier::Evidence::kNone));
  EXPECT_FALSE(tier.find(7).has_value());
  const SharedVerdictTier::Stats stats = tier.stats();
  EXPECT_EQ(stats.rejectedUnevidenced, 1);
  EXPECT_EQ(stats.publishes, 0);
  EXPECT_EQ(stats.entries, 0);
}

TEST(SharedVerdictTierTest, ZeroCapacityDisablesWithoutUnwiring) {
  SharedVerdictTier tier({.shards = 4, .capacityPerShard = 0});
  EXPECT_FALSE(tier.enabled());
  EXPECT_FALSE(tier.publish(1, {true, {upo()}},
                            SharedVerdictTier::Evidence::kCapture));
  EXPECT_FALSE(tier.find(1).has_value());
  EXPECT_EQ(tier.stats().entries, 0);
}

TEST(SharedVerdictTierTest, ShardsResolveAndClearDropsEverything) {
  SharedVerdictTier tier({.shards = 0, .capacityPerShard = 16});
  EXPECT_GE(tier.shardCount(), 1);  // 0 resolves to a positive default
  for (std::uint64_t fp = 1; fp <= 64; ++fp) {
    tier.publish(fp, {fp % 2 == 0, {}}, SharedVerdictTier::Evidence::kLint);
  }
  EXPECT_GT(tier.stats().entries, 0);
  tier.clear();
  EXPECT_EQ(tier.stats().entries, 0);
  EXPECT_FALSE(tier.find(1).has_value());
  tier.noteSuppressedDetect();
  EXPECT_EQ(tier.stats().suppressedDetects, 1);
}

// --------------------------------------------------- concurrency hammer

// Four threads publish and probe overlapping fingerprint ranges through
// every shard; run under TSan this proves the stripes actually protect
// the LRU structures. Assertions are on invariants, not interleavings.
TEST(SharedVerdictTierTest, ConcurrentPublishFindHammer) {
  SharedVerdictTier tier({.shards = 4, .capacityPerShard = 32});
  constexpr int kThreads = 4;
  constexpr std::uint64_t kKeys = 256;
  constexpr int kRounds = 200;
  std::atomic<std::int64_t> observedHits{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &tier, &observedHits] {
      for (int round = 0; round < kRounds; ++round) {
        for (std::uint64_t k = static_cast<std::uint64_t>(t); k < kKeys;
             k += kThreads) {
          const std::uint64_t fp = k * 2654435761u + 1;
          tier.publish(fp, {k % 2 == 0, {upo()}},
                       k % 3 == 0 ? SharedVerdictTier::Evidence::kNone
                                  : SharedVerdictTier::Evidence::kCapture);
          const auto hit = tier.find(fp ^ (round % 2));
          if (hit.has_value()) {
            observedHits.fetch_add(1, std::memory_order_relaxed);
            // A served record is always internally consistent.
            if (hit->isAui) {
              EXPECT_FALSE(hit->detections.empty());
            }
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const SharedVerdictTier::Stats stats = tier.stats();
  EXPECT_EQ(stats.hits, observedHits.load());
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::int64_t>(kThreads) * kRounds * (kKeys / kThreads));
  EXPECT_GT(stats.rejectedUnevidenced, 0);
  EXPECT_LE(stats.entries, 4 * 32);
}

}  // namespace
}  // namespace darpa::core

// ------------------------------------------------- fleet-level contracts

namespace darpa::fleet {
namespace {

/// Deterministic, thread-safe detector whose verdict is a pure function of
/// the screen content: screens whose pixel checksum lands even get a
/// confident UPO (an AUI), the rest get nothing. That makes verdicts
/// fingerprint-deterministic — the premise that makes cross-session
/// sharing sound — while keeping them non-trivial (not every screen is
/// positive, so a wrong cache entry would flip a verdict and fail the
/// equivalence check below).
class ParityDetector : public cv::Detector {
 public:
  std::vector<cv::Detection> detect(const gfx::Bitmap& image) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t sum = 0;
    // A sparse deterministic checksum; full scans would dominate runtime.
    for (int y = 0; y < image.height(); y += 37) {
      for (int x = 0; x < image.width(); x += 41) {
        const Color c = image.at(x, y);
        sum += c.r + 3u * c.g + 7u * c.b;
      }
    }
    if (sum % 2 != 0) return {};
    return {cv::Detection{{10, 50, 60, 24}, dataset::BoxLabel::kUpo, 0.9f}};
  }
  double costMacsPerImage() const override { return 1.0e6; }

  [[nodiscard]] std::int64_t calls() const {
    return calls_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<std::int64_t> calls_{0};
};

/// The paper-facing output digest (same axes and fixed-point formatting as
/// fleet_scheduler_test.cpp): exact string equality, not epsilon.
std::string digestOf(const FleetSnapshot& snap) {
  const perf::DeviceModel device;
  const Millis window{static_cast<std::int64_t>(snap.sessions) *
                      snap.simTime.count};
  const perf::PerfMetrics perf = device.withWork(snap.ledger, window);

  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "fig8: analyses=%lld events=%lld exposures=%lld covered=%lld\n"
      "stats: shots=%lld flagged=%lld decorated=%lld lint=%lld "
      "cachehits=%lld tierhits=%lld\n"
      "ledger: cpuMs=%.6f cacheHits=%lld cacheMisses=%lld "
      "peakFrameBytes=%lld\n"
      "table7: cpu=%.4f mem=%.4f fps=%.4f power=%.4f\n",
      static_cast<long long>(snap.ledger.analyses()),
      static_cast<long long>(snap.eventsEmitted),
      static_cast<long long>(snap.auiExposures),
      static_cast<long long>(snap.auisCovered),
      static_cast<long long>(snap.stats.screenshotsTaken),
      static_cast<long long>(snap.stats.auisFlagged),
      static_cast<long long>(snap.stats.decorationsDrawn),
      static_cast<long long>(snap.stats.lintRuns),
      static_cast<long long>(snap.stats.verdictCacheHits),
      static_cast<long long>(snap.stats.verdictTierHits),
      snap.ledger.totalCpuMs(), static_cast<long long>(snap.ledger.cacheHits()),
      static_cast<long long>(snap.ledger.cacheMisses()),
      static_cast<long long>(snap.ledger.peakFrameBytes()), perf.cpuPercent,
      perf.memoryMb, perf.frameRate, perf.powerMw);
  return buf;
}

/// A SHARED app population: `apps` distinct apps, session i running app
/// i % apps with identical profile and app seed — the workload where a
/// fleet-wide tier can actually share (fingerprints mix the package in,
/// so the fleet's default unique-package-per-session population shares
/// nothing across sessions). Monkey seeds stay per-session (the fleet's
/// own draw): the screen sequence is a pure function of (profile,
/// appSeed), so sessions of one app see identical screens but analyze
/// them at skewed instants — some in the same flush epoch (single-flight
/// coalescing) and some a later epoch (a real L2 hit on a verdict another
/// session already published).
std::function<void(int, DeviceSession::Config&)> sharedPopulation(int apps) {
  struct App {
    apps::AppProfile profile;
    std::uint64_t appSeed;
  };
  auto population = std::make_shared<std::vector<App>>();
  Rng rng(977);
  for (int a = 0; a < apps; ++a) {
    App app{apps::randomAppProfile("com.shared.app" + std::to_string(a), rng),
            rng.next()};
    // Aggressive AUI churn on a stable base screen: every popup cycle
    // re-exposes the base fingerprint in a LATER epoch than its first
    // analysis — the screen-recurrence pattern an L2 exists for. (Fresh
    // benign screens never repeat, so without churn every probe would
    // land before the fingerprint's first publish and the tier could
    // only ever coalesce, never serve.)
    app.profile.screenChangeMeanMs = 6000;
    app.profile.auisPerMinute = 40.0;
    app.profile.auiMinVisibleMs = 600;
    app.profile.auiMaxVisibleMs = 1600;
    population->push_back(std::move(app));
  }
  return [population, apps](int i, DeviceSession::Config& config) {
    const App& app = (*population)[static_cast<std::size_t>(i % apps)];
    config.profile = app.profile;
    config.appSeed = app.appSeed;
  };
}

struct TierRun {
  std::string digest;
  std::vector<std::int64_t> analysesBySession;
  std::vector<std::int64_t> flaggedBySession;
  std::vector<std::int64_t> eventsBySession;
  std::int64_t detectorCalls = 0;
  core::SharedVerdictTier::Stats tier;
};

TierRun runSharedFleet(FleetDriver driver, int workers, bool tierEnabled) {
  ParityDetector detector;
  BatchingExecutor executor({.maxBatchSize = 16, .threads = 4});

  FleetConfig config;
  config.sessions = 64;
  config.workers = workers;
  config.epoch = ms(500);
  config.duration = ms(3000);
  config.driver = driver;
  config.sessionTweak = sharedPopulation(/*apps=*/8);
  config.sharedVerdictTier = tierEnabled;
  // A deliberately thrashing L1 (capacity 1, same in the reference run):
  // screens an epoch evicted re-probe below it, so the run exercises real
  // L1-miss -> L2-hit -> promote traffic, not just publishes.
  config.darpa.verdictCacheCapacity = 1;

  Fleet fleet(detector, executor, config);
  fleet.run();
  EXPECT_EQ(executor.pendingCount(), 0u);

  TierRun run;
  run.digest = digestOf(fleet.snapshot());
  for (int i = 0; i < fleet.sessionCount(); ++i) {
    const DeviceSession& session = fleet.session(i);
    run.analysesBySession.push_back(session.stats().analysesRun);
    run.flaggedBySession.push_back(session.stats().auisFlagged);
    run.eventsBySession.push_back(session.eventsEmitted());
  }
  run.detectorCalls = detector.calls();
  run.tier = fleet.snapshot().verdictTier;
  return run;
}

// Contract 1: with the tier DISABLED the refactor is invisible — digests
// byte-identical across drivers and worker counts (and, by the unchanged
// code paths, to the pre-tier seed).
TEST(SharedVerdictTierTest, TierDisabledDigestsByteIdenticalAcrossDrivers) {
  const TierRun reference =
      runSharedFleet(FleetDriver::kLockstep, /*workers=*/1, false);
  ASSERT_FALSE(reference.digest.empty());
  EXPECT_EQ(reference.tier.publishes, 0);  // no tier, no tier traffic

  EXPECT_EQ(runSharedFleet(FleetDriver::kLockstep, 4, false).digest,
            reference.digest);
  EXPECT_EQ(runSharedFleet(FleetDriver::kWorkStealing, 1, false).digest,
            reference.digest);
  EXPECT_EQ(runSharedFleet(FleetDriver::kWorkStealing, 4, false).digest,
            reference.digest);
}

// Contract 2: with the tier ENABLED every session reaches the same
// per-session verdicts over the same event streams — only who paid for
// them moved: the fleet runs strictly fewer model detects, the tier
// serves real hits, and the batching backend's single-flight suppresses
// duplicate in-flush detects.
TEST(SharedVerdictTierTest, TierEnabledIsVerdictEquivalentWithFewerDetects) {
  const TierRun reference =
      runSharedFleet(FleetDriver::kLockstep, /*workers=*/1, false);

  const struct {
    FleetDriver driver;
    int workers;
  } combos[] = {
      {FleetDriver::kLockstep, 1},
      {FleetDriver::kLockstep, 4},
      {FleetDriver::kWorkStealing, 1},
      {FleetDriver::kWorkStealing, 4},
  };
  for (const auto& combo : combos) {
    SCOPED_TRACE(testing::Message()
                 << (combo.driver == FleetDriver::kLockstep ? "lockstep"
                                                            : "ws")
                 << " W=" << combo.workers);
    const TierRun tiered = runSharedFleet(combo.driver, combo.workers, true);

    // Same inputs, same decisions — per session, not just in aggregate.
    EXPECT_EQ(tiered.eventsBySession, reference.eventsBySession);
    EXPECT_EQ(tiered.analysesBySession, reference.analysesBySession);
    EXPECT_EQ(tiered.flaggedBySession, reference.flaggedBySession);

    // ...but the fleet paid less for them.
    EXPECT_LT(tiered.detectorCalls, reference.detectorCalls);
    EXPECT_GT(tiered.tier.hits, 0);
    EXPECT_GT(tiered.tier.publishes, 0);
    EXPECT_GT(tiered.tier.suppressedDetects, 0)
        << "64 sessions over 8 shared apps must coalesce same-screen "
           "misses within a flush";
    EXPECT_EQ(tiered.tier.rejectedUnevidenced, 0)
        << "this workload never fails a capture";
  }
}

}  // namespace
}  // namespace darpa::fleet
