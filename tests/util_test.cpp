// Unit tests for src/util: geometry, color math, RNG, clock.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/clock.h"
#include "util/color.h"
#include "util/geometry.h"
#include "util/rng.h"

namespace darpa {
namespace {

// ---------------------------------------------------------------- geometry
TEST(RectTest, BasicAccessors) {
  const Rect r{10, 20, 30, 40};
  EXPECT_EQ(r.left(), 10);
  EXPECT_EQ(r.top(), 20);
  EXPECT_EQ(r.right(), 40);
  EXPECT_EQ(r.bottom(), 60);
  EXPECT_EQ(r.area(), 1200);
  EXPECT_EQ(r.center(), (Point{25, 40}));
  EXPECT_FALSE(r.empty());
}

TEST(RectTest, EmptyRects) {
  EXPECT_TRUE((Rect{0, 0, 0, 10}).empty());
  EXPECT_TRUE((Rect{0, 0, 10, 0}).empty());
  EXPECT_TRUE((Rect{5, 5, -3, 10}).empty());
  EXPECT_FALSE((Rect{0, 0, 1, 1}).empty());
}

TEST(RectTest, ContainsPoint) {
  const Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.contains(Point{0, 0}));
  EXPECT_TRUE(r.contains(Point{9, 9}));
  EXPECT_FALSE(r.contains(Point{10, 9}));  // right edge is exclusive
  EXPECT_FALSE(r.contains(Point{-1, 5}));
}

TEST(RectTest, ContainsRect) {
  const Rect outer{0, 0, 100, 100};
  EXPECT_TRUE(outer.contains(Rect{10, 10, 20, 20}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect{90, 90, 20, 20}));
  EXPECT_FALSE(outer.contains(Rect{10, 10, 0, 0}));  // empty is not contained
}

TEST(RectTest, IntersectOverlapping) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 5, 10, 10};
  EXPECT_EQ(a.intersect(b), (Rect{5, 5, 5, 5}));
  EXPECT_EQ(b.intersect(a), (Rect{5, 5, 5, 5}));
}

TEST(RectTest, IntersectDisjointIsEmpty) {
  const Rect a{0, 0, 10, 10};
  const Rect b{20, 20, 5, 5};
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(RectTest, UniteAndTranslate) {
  const Rect a{0, 0, 10, 10};
  const Rect b{20, 5, 10, 10};
  EXPECT_EQ(a.unite(b), (Rect{0, 0, 30, 15}));
  EXPECT_EQ(a.unite(Rect{}), a);
  EXPECT_EQ(Rect{}.unite(b), b);
  EXPECT_EQ(a.translated(3, -2), (Rect{3, -2, 10, 10}));
  EXPECT_EQ(a.inflated(2), (Rect{-2, -2, 14, 14}));
}

TEST(IouTest, IdenticalRectsGiveOne) {
  const Rect r{5, 5, 20, 30};
  EXPECT_DOUBLE_EQ(iou(r, r), 1.0);
}

TEST(IouTest, DisjointRectsGiveZero) {
  EXPECT_DOUBLE_EQ(iou(Rect{0, 0, 5, 5}, Rect{10, 10, 5, 5}), 0.0);
}

TEST(IouTest, HalfOverlap) {
  // Two 10x10 rects sharing a 5x10 strip: IoU = 50 / 150 = 1/3.
  EXPECT_NEAR(iou(Rect{0, 0, 10, 10}, Rect{5, 0, 10, 10}), 1.0 / 3.0, 1e-12);
}

TEST(IouTest, FloatMatchesIntOnAlignedBoxes) {
  const Rect a{0, 0, 10, 10};
  const Rect b{5, 0, 10, 10};
  EXPECT_NEAR(iou(a, b), iou(RectF::fromRect(a), RectF::fromRect(b)), 1e-9);
}

TEST(RectFTest, RoundTripThroughRect) {
  const RectF rf{1.4f, 2.6f, 10.2f, 19.8f};
  EXPECT_EQ(rf.toRect(), (Rect{1, 3, 10, 20}));
}

TEST(GeometryTest, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

// ---------------------------------------------------------------- color
TEST(ColorTest, ArgbRoundTrip) {
  const Color c = Color::rgba(12, 34, 56, 78);
  EXPECT_EQ(Color::fromArgb(c.toArgb()), c);
}

TEST(ColorTest, BlendOpaqueSourceWins) {
  EXPECT_EQ(blend(colors::kWhite, colors::kRed), colors::kRed);
}

TEST(ColorTest, BlendTransparentSourceKeepsDst) {
  EXPECT_EQ(blend(colors::kBlue, colors::kTransparent), colors::kBlue);
}

TEST(ColorTest, BlendHalfAlphaIsBetween) {
  const Color out = blend(colors::kBlack, colors::kWhite.withAlpha(128));
  EXPECT_GT(out.r, 100);
  EXPECT_LT(out.r, 160);
}

TEST(ColorTest, ContrastRatioExtremes) {
  EXPECT_NEAR(contrastRatio(colors::kBlack, colors::kWhite), 21.0, 0.01);
  EXPECT_NEAR(contrastRatio(colors::kGray, colors::kGray), 1.0, 1e-9);
  // Symmetry.
  EXPECT_DOUBLE_EQ(contrastRatio(colors::kRed, colors::kWhite),
                   contrastRatio(colors::kWhite, colors::kRed));
}

TEST(ColorTest, HighContrastPicksOppositeExtreme) {
  EXPECT_EQ(highContrastAgainst(colors::kBlack), colors::kWhite);
  EXPECT_EQ(highContrastAgainst(colors::kWhite), colors::kBlack);
  // Mid-gray: both extremes are weak, accent color expected.
  EXPECT_EQ(highContrastAgainst(Color::rgb(119, 119, 119)), colors::kRed);
}

TEST(ColorTest, LerpEndpoints) {
  EXPECT_EQ(lerp(colors::kBlack, colors::kWhite, 0.0), colors::kBlack);
  EXPECT_EQ(lerp(colors::kBlack, colors::kWhite, 1.0), colors::kWhite);
}

// ---------------------------------------------------------------- rng
TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sumSq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sumSq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sumSq / kN, 1.0, 0.05);
}

TEST(RngTest, PickWeightedRespectsWeights) {
  Rng rng(13);
  const double weights[] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) {
    ++counts[rng.pickWeighted(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 2);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(5);
  Rng childA = parent.fork();
  Rng childB = parent.fork();
  EXPECT_NE(childA.next(), childB.next());
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// ---------------------------------------------------------------- clock
TEST(SimClockTest, AdvanceMonotonic) {
  SimClock clock;
  EXPECT_EQ(clock.now().count, 0);
  clock.advance(ms(100));
  EXPECT_EQ(clock.now().count, 100);
  clock.advance(ms(-50));  // negative ignored
  EXPECT_EQ(clock.now().count, 100);
  clock.advanceTo(ms(80));  // backwards ignored
  EXPECT_EQ(clock.now().count, 100);
  clock.advanceTo(ms(250));
  EXPECT_EQ(clock.now().count, 250);
}

TEST(MillisTest, Arithmetic) {
  EXPECT_EQ((ms(100) + ms(50)).count, 150);
  EXPECT_EQ((ms(100) - ms(50)).count, 50);
  EXPECT_LT(ms(10), ms(20));
}

}  // namespace
}  // namespace darpa
