// Integration tests: the whole system wired together — a real (small)
// trained detector, live app sessions with Monkey, and DarpaService
// mediating through the accessibility framework.
#include <gtest/gtest.h>

#include "android/system.h"
#include "apps/app_model.h"
#include "core/darpa_service.h"
#include "cv/one_stage.h"
#include "dataset/dataset.h"

namespace darpa {
namespace {

/// One small detector shared by every integration test (training once).
const cv::OneStageDetector& sharedDetector() {
  static const cv::OneStageDetector detector = [] {
    dataset::DatasetConfig dataConfig;
    dataConfig.totalScreenshots = 260;
    dataConfig.seed = 99;
    const dataset::AuiDataset data = dataset::AuiDataset::build(dataConfig);
    cv::TrainConfig trainConfig;
    trainConfig.epochs = 16;
    trainConfig.benignImages = 90;
    return cv::OneStageDetector::train(data, cv::OneStageConfig{}, trainConfig);
  }();
  return detector;
}

TEST(IntegrationTest, FullPipelineOverLiveSession) {
  android::AndroidSystem device;
  core::DarpaService darpa(sharedDetector());
  device.accessibility.connect(darpa);

  apps::AppProfile profile;
  profile.package = "com.integration.app";
  profile.auisPerMinute = 4.0;
  apps::AppSession session(device, profile, 17);
  apps::MonkeyDriver monkey(device, 18);

  int positives = 0;
  darpa.setAnalysisListener([&](bool isAui, const auto&) {
    positives += isAui ? 1 : 0;
  });

  session.start(ms(40'000));
  monkey.start(ms(40'000));
  device.looper.runUntil(ms(40'000));

  // The pipeline ran: events flowed, screens were analyzed, screenshots
  // were taken and every one was rinsed.
  EXPECT_GT(darpa.stats().eventsReceived, 20);
  EXPECT_GT(darpa.stats().analysesRun, 3);
  // Every analysis either captured a screenshot or was served its verdict
  // by the fingerprint cache (a re-stabilized identical screen).
  EXPECT_EQ(darpa.stats().screenshotsTaken + darpa.stats().verdictCacheHits,
            darpa.stats().analysesRun);
  EXPECT_EQ(darpa.vault().stored(), darpa.vault().rinsed());
  EXPECT_FALSE(darpa.vault().holding());
  EXPECT_EQ(darpa.vault().peakHeld(), 1);
  // At least one AUI was exposed; DARPA flagged at least one analysis.
  EXPECT_FALSE(session.exposures().empty());
  EXPECT_GT(positives, 0);
  EXPECT_EQ(darpa.stats().auisFlagged, positives);
}

TEST(IntegrationTest, DetectorFindsKnownUpoAndDecoratesIt) {
  // Over a handful of clear (non-ghost) promo screens, the small shared
  // model must localize the UPO on most, and whenever it is the top UPO
  // detection the decoration must sit on it (calibration correctness).
  int found = 0, decorated = 0;
  constexpr int kScreens = 5;
  for (int k = 0; k < kScreens; ++k) {
    android::AndroidSystem device;
    core::DarpaService darpa(sharedDetector());
    device.accessibility.connect(darpa);
    const Rect frame = device.windowManager.appFrame(false);
    apps::ScreenGenerator::Params genParams;
    genParams.frame = {frame.width, frame.height};
    apps::ScreenGenerator generator(genParams, 2024 + k);
    apps::AuiSpec spec;
    spec.type = apps::AuiType::kSalesPromotion;
    spec.ghostUpo = false;
    spec.upoCorner = true;
    apps::GeneratedScreen screen = generator.makeAui(spec);
    const Rect upoOnScreen =
        screen.truth.upoBoxes.front().translated(frame.x, frame.y);
    device.windowManager.showAppWindow("com.integration.app",
                                       std::move(screen.root), false);
    device.looper.runFor(ms(1000));

    bool hit = false;
    for (const cv::Detection& det : darpa.lastDetections()) {
      hit |= det.label == dataset::BoxLabel::kUpo &&
             iou(det.box, upoOnScreen) > 0.5;
    }
    found += hit;
    for (const Rect& r : darpa.decorationRects()) {
      decorated += iou(r, upoOnScreen.inflated(4)) > 0.5;
    }
  }
  EXPECT_GE(found, kScreens / 2 + 1);
  EXPECT_GE(decorated, 1);
}

TEST(IntegrationTest, BenignSessionRarelyFlagged) {
  android::AndroidSystem device;
  core::DarpaService darpa(sharedDetector());
  device.accessibility.connect(darpa);
  apps::AppProfile profile;
  profile.package = "com.benign.app";
  profile.auisPerMinute = 0.0;
  apps::AppSession session(device, profile, 23);
  int positives = 0, analyses = 0;
  darpa.setAnalysisListener([&](bool isAui, const auto&) {
    ++analyses;
    positives += isAui ? 1 : 0;
  });
  session.start(ms(45'000));
  device.looper.runUntil(ms(45'000));
  ASSERT_GT(analyses, 2);
  // False-positive rate on benign screens stays a clear minority (the
  // full-scale model is far better; this is the small test model).
  EXPECT_LT(positives, analyses * 6 / 10 + 1);
}

}  // namespace
}  // namespace darpa
