// Property-based tests (parameterized gtest sweeps) over module invariants:
// geometry algebra, color math, NMS/eval semantics, flood-fill refinement,
// looper ordering, quantization error, dataset quota invariants, and the
// DARPA debounce contract — each checked across many seeded random inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "android/system.h"
#include "core/darpa_service.h"
#include "cv/detection.h"
#include "cv/refine.h"
#include "dataset/dataset.h"
#include "nn/quantize.h"
#include "util/rng.h"

namespace darpa {
namespace {

Rect randomRect(Rng& rng, int maxDim = 200) {
  return {rng.uniformInt(-50, 300), rng.uniformInt(-50, 600),
          rng.uniformInt(1, maxDim), rng.uniformInt(1, maxDim)};
}

// ------------------------------------------------------------ geometry
class GeometryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeometryProperty, IouAlgebra) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const Rect a = randomRect(rng);
    const Rect b = randomRect(rng);
    const double ab = iou(a, b);
    // Range, symmetry, identity.
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_DOUBLE_EQ(ab, iou(b, a));
    EXPECT_DOUBLE_EQ(iou(a, a), 1.0);
    // Intersection is commutative and contained in both.
    const Rect inter = a.intersect(b);
    EXPECT_EQ(inter, b.intersect(a));
    if (!inter.empty()) {
      EXPECT_TRUE(a.contains(inter));
      EXPECT_TRUE(b.contains(inter));
    }
    // Union contains both; intersection area <= min area.
    const Rect uni = a.unite(b);
    EXPECT_TRUE(uni.contains(a));
    EXPECT_TRUE(uni.contains(b));
    EXPECT_LE(inter.area(), std::min(a.area(), b.area()));
    // Translation invariance of IoU.
    EXPECT_NEAR(ab, iou(a.translated(13, -7), b.translated(13, -7)), 1e-12);
  }
}

TEST_P(GeometryProperty, IntRectAndFloatRectAgree) {
  Rng rng(GetParam() + 1);
  for (int i = 0; i < 100; ++i) {
    const Rect a = randomRect(rng);
    const Rect b = randomRect(rng);
    EXPECT_NEAR(iou(a, b), iou(RectF::fromRect(a), RectF::fromRect(b)), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

// ------------------------------------------------------------ color
class ColorProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColorProperty, BlendAndContrastInvariants) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const Color a = Color::rgba(static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                                static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                                static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                                static_cast<std::uint8_t>(rng.uniformInt(0, 255)));
    const Color b = Color::rgb(static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                               static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                               static_cast<std::uint8_t>(rng.uniformInt(0, 255)));
    // ARGB round trip.
    EXPECT_EQ(Color::fromArgb(a.toArgb()), a);
    // Contrast ratio: symmetric, in [1, 21].
    const double cr = contrastRatio(a, b);
    EXPECT_GE(cr, 1.0);
    EXPECT_LE(cr, 21.0 + 1e-9);
    EXPECT_DOUBLE_EQ(cr, contrastRatio(b, a));
    // Blending opaque over anything returns the source.
    EXPECT_EQ(blend(b, a.withAlpha(255)), a.withAlpha(255));
    // Blending transparent is identity.
    EXPECT_EQ(blend(b, a.withAlpha(0)), b);
    // Luma is bounded.
    EXPECT_GE(luma(b), 0.0);
    EXPECT_LE(luma(b), 255.0);
    // highContrastAgainst really contrasts (>= 4.5:1, the WCAG AA bar, or
    // it picked the accent for mid-gray).
    const Color hc = highContrastAgainst(b);
    if (hc == colors::kWhite || hc == colors::kBlack) {
      EXPECT_GE(contrastRatio(b, hc), 4.5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColorProperty, ::testing::Values(7u, 8u, 9u));

// ------------------------------------------------------------ NMS / eval
class NmsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NmsProperty, SuppressionInvariants) {
  Rng rng(GetParam());
  std::vector<cv::Detection> detections;
  const int n = rng.uniformInt(5, 60);
  for (int i = 0; i < n; ++i) {
    detections.push_back(cv::Detection{
        randomRect(rng, 120),
        rng.chance(0.5) ? dataset::BoxLabel::kAgo : dataset::BoxLabel::kUpo,
        static_cast<float>(rng.uniform())});
  }
  const auto kept = cv::nonMaxSuppression(detections, 0.5);
  // Output is a subset, sorted by confidence.
  EXPECT_LE(kept.size(), detections.size());
  for (std::size_t i = 1; i < kept.size(); ++i) {
    EXPECT_GE(kept[i - 1].confidence, kept[i].confidence);
  }
  // No same-class pair overlaps above the threshold.
  for (std::size_t i = 0; i < kept.size(); ++i) {
    for (std::size_t j = i + 1; j < kept.size(); ++j) {
      if (kept[i].label == kept[j].label) {
        EXPECT_LE(iou(kept[i].box, kept[j].box), 0.5 + 1e-12);
      }
    }
  }
  // Idempotence.
  const auto again = cv::nonMaxSuppression(kept, 0.5);
  EXPECT_EQ(again.size(), kept.size());
}

TEST_P(NmsProperty, EvalCountsConserveTotals) {
  Rng rng(GetParam() + 100);
  std::vector<dataset::Annotation> gts;
  const int g = rng.uniformInt(0, 6);
  for (int i = 0; i < g; ++i) {
    gts.push_back(dataset::Annotation{
        randomRect(rng, 80),
        rng.chance(0.5) ? dataset::BoxLabel::kAgo : dataset::BoxLabel::kUpo});
  }
  std::vector<cv::Detection> dets;
  const int d = rng.uniformInt(0, 8);
  for (int i = 0; i < d; ++i) {
    dets.push_back(cv::Detection{
        randomRect(rng, 80),
        rng.chance(0.5) ? dataset::BoxLabel::kAgo : dataset::BoxLabel::kUpo,
        static_cast<float>(rng.uniform())});
  }
  const cv::EvalCounts counts = cv::evaluateImage(dets, gts, 0.5);
  // Every detection is TP or FP; every GT is TP or FN.
  EXPECT_EQ(counts.tp + counts.fp, d);
  EXPECT_EQ(counts.tp + counts.fn, g);
  // Per-class counts sum to the unfiltered ones.
  const cv::EvalCounts upo =
      cv::evaluateImage(dets, gts, 0.5, dataset::BoxLabel::kUpo);
  const cv::EvalCounts ago =
      cv::evaluateImage(dets, gts, 0.5, dataset::BoxLabel::kAgo);
  EXPECT_EQ(upo.tp + ago.tp, counts.tp);
  EXPECT_EQ(upo.fn + ago.fn, counts.fn);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NmsProperty,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

// ------------------------------------------------------------ refinement
struct RefineCase {
  int plateSize;
  int offset;  ///< Coarse box displacement from the plate.
};

class RefineProperty : public ::testing::TestWithParam<RefineCase> {};

TEST_P(RefineProperty, RecoversContrastingPlates) {
  const RefineCase param = GetParam();
  Rng rng(static_cast<std::uint64_t>(param.plateSize * 131 + param.offset));
  int recovered = 0;
  constexpr int kTrials = 25;
  for (int i = 0; i < kTrials; ++i) {
    const Color bg = Color::rgb(
        static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
        static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
        static_cast<std::uint8_t>(rng.uniformInt(0, 255)));
    // Plate color with at least ~tolerance contrast on every draw.
    Color plate;
    do {
      plate = Color::rgb(static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                         static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                         static_cast<std::uint8_t>(rng.uniformInt(0, 255)));
    } while (std::abs(plate.r - bg.r) + std::abs(plate.g - bg.g) +
                 std::abs(plate.b - bg.b) <
             90);
    gfx::Bitmap bmp(160, 160, bg);
    const Rect plateRect{60, 60, param.plateSize, param.plateSize};
    bmp.fillRect(plateRect, plate);
    const auto snapped = cv::snapToRegion(
        bmp, plateRect.translated(param.offset, -param.offset));
    if (snapped && iou(*snapped, plateRect) > 0.95) ++recovered;
  }
  EXPECT_GE(recovered, kTrials * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RefineProperty,
                         ::testing::Values(RefineCase{14, 0}, RefineCase{14, 3},
                                           RefineCase{20, 5}, RefineCase{32, 8},
                                           RefineCase{60, 10}));

// ------------------------------------------------------------ looper
class LooperProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LooperProperty, ExecutionRespectsDueTimes) {
  Rng rng(GetParam());
  SimClock clock;
  android::Looper looper(clock);
  std::vector<std::int64_t> executionTimes;
  const int n = rng.uniformInt(10, 50);
  for (int i = 0; i < n; ++i) {
    looper.postDelayed(
        [&executionTimes, &clock] {
          executionTimes.push_back(clock.now().count);
        },
        ms(rng.uniformInt(0, 500)));
  }
  looper.runUntilIdle();
  EXPECT_EQ(executionTimes.size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(std::is_sorted(executionTimes.begin(), executionTimes.end()));
}

TEST_P(LooperProperty, CancelledNeverRun) {
  Rng rng(GetParam() + 7);
  SimClock clock;
  android::Looper looper(clock);
  int ran = 0;
  std::vector<android::TaskId> ids;
  for (int i = 0; i < 30; ++i) {
    ids.push_back(
        looper.postDelayed([&ran] { ++ran; }, ms(rng.uniformInt(0, 100))));
  }
  int cancelled = 0;
  for (android::TaskId id : ids) {
    if (rng.chance(0.5) && looper.cancel(id)) ++cancelled;
  }
  looper.runUntilIdle();
  EXPECT_EQ(ran, 30 - cancelled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LooperProperty,
                         ::testing::Values(21u, 22u, 23u, 24u));

// ------------------------------------------------------------ quantization
class QuantizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantizeProperty, BoundedErrorOnCalibratedRange) {
  Rng rng(GetParam());
  const nn::Mlp mlp({8, 16, 8, 4}, rng);
  std::vector<std::vector<float>> calibration;
  for (int i = 0; i < 50; ++i) {
    std::vector<float> x(8);
    for (float& v : x) v = static_cast<float>(rng.uniform(-2.0, 2.0));
    calibration.push_back(std::move(x));
  }
  const nn::QuantizedMlp quantized = nn::QuantizedMlp::fromMlp(mlp, calibration);
  // Int8 error compounds across the three layers of an *untrained* random
  // network; bound the worst absolute error by a fraction of the global
  // output magnitude over the calibration set.
  double globalMag = 1e-3;
  for (const auto& x : calibration) {
    for (float v : mlp.forward(x)) {
      globalMag = std::max(globalMag, std::fabs(static_cast<double>(v)));
    }
  }
  double worstAbs = 0.0;
  for (const auto& x : calibration) {
    const auto a = mlp.forward(x);
    const auto b = quantized.forward(x);
    for (std::size_t i = 0; i < a.size(); ++i) {
      worstAbs =
          std::max(worstAbs, std::fabs(static_cast<double>(a[i]) - b[i]));
    }
  }
  EXPECT_LT(worstAbs, 0.2 * globalMag);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantizeProperty,
                         ::testing::Values(31u, 32u, 33u, 34u, 35u));

// ------------------------------------------------------------ dataset
class DatasetProperty : public ::testing::TestWithParam<int> {};

TEST_P(DatasetProperty, QuotaInvariantsAtAnyScale) {
  dataset::DatasetConfig config;
  config.totalScreenshots = GetParam();
  config.seed = 77;
  const dataset::AuiDataset data = dataset::AuiDataset::build(config);
  EXPECT_EQ(data.size(), static_cast<std::size_t>(GetParam()));
  // Split partitions with 6:2:2 proportions.
  EXPECT_EQ(data.trainIndices().size() + data.valIndices().size() +
                data.testIndices().size(),
            data.size());
  EXPECT_EQ(data.valIndices().size(), data.testIndices().size());
  EXPECT_GE(data.trainIndices().size(), 2 * data.valIndices().size() - 2);
  // Type shares track Table I within rounding.
  int ads = 0;
  for (const dataset::SampleSpec& spec : data.specs()) {
    ads += spec.spec.type == apps::AuiType::kAdvertisement;
  }
  EXPECT_NEAR(static_cast<double>(ads) / GetParam(), 0.649, 0.02);
  // Box totals scale with Table II cardinalities.
  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  const auto counts = data.countBoxes(all);
  EXPECT_NEAR(static_cast<double>(counts.ago) / GetParam(), 744.0 / 1072.0,
              0.02);
  EXPECT_NEAR(static_cast<double>(counts.upo) / GetParam(), 1103.0 / 1072.0,
              0.02);
}

INSTANTIATE_TEST_SUITE_P(Scales, DatasetProperty,
                         ::testing::Values(100, 250, 536, 1072));

// ------------------------------------------------------------ debounce
class DebounceProperty : public ::testing::TestWithParam<std::uint64_t> {};

namespace {
class NullDetector : public cv::Detector {
 public:
  std::vector<cv::Detection> detect(const gfx::Bitmap&) const override {
    return {};
  }
  double costMacsPerImage() const override { return 1.0; }
};
}  // namespace

TEST_P(DebounceProperty, AnalysisOnlyAfterQuietPeriod) {
  Rng rng(GetParam());
  android::AndroidSystem system;
  NullDetector detector;
  core::DarpaConfig config;
  config.cutoff = ms(200);
  config.notificationDelay = ms(0);  // deliver events immediately
  core::DarpaService service(detector, config);
  system.accessibility.connect(service);
  system.windowManager.showAppWindow("com.app",
                                     std::make_unique<android::View>(), false);

  // Random event train; record event delivery times. The window-show above
  // already emitted events at t=0.
  std::vector<std::int64_t> eventTimes{0};
  std::int64_t t = 0;
  for (int i = 0; i < 60; ++i) {
    t += rng.uniformInt(20, 600);
    const std::int64_t at = t;
    system.looper.postDelayed(
        [&system, &eventTimes, at] {
          eventTimes.push_back(at);
          system.windowManager.notifyContentChanged();
        },
        ms(at - system.looper.now().count));
  }
  std::vector<std::int64_t> analysisTimes;
  service.setAnalysisListener([&](bool, const auto&) {
    analysisTimes.push_back(system.clock.now().count);
  });
  system.looper.runUntilIdle();

  // Property: every analysis happens exactly `cutoff` after some event, and
  // NO event lands strictly inside the (analysis - cutoff, analysis) window.
  for (std::int64_t a : analysisTimes) {
    bool anchored = false;
    for (std::int64_t e : eventTimes) {
      EXPECT_FALSE(e > a - 200 && e < a)
          << "event at " << e << " inside quiet window of analysis " << a;
      anchored |= e == a - 200;
    }
    EXPECT_TRUE(anchored) << "analysis at " << a << " not ct after an event";
  }
  EXPECT_FALSE(analysisTimes.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DebounceProperty,
                         ::testing::Values(41u, 42u, 43u));

}  // namespace
}  // namespace darpa
