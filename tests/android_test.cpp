// Unit tests for the Android substrate: views, looper, window manager,
// accessibility event routing, and the anchor-view offset trick.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "android/system.h"

namespace darpa::android {
namespace {

// ---------------------------------------------------------------- views
TEST(ViewTest, TreeAndFindById) {
  View root;
  root.setId(1);
  auto* child = root.addChild(std::make_unique<View>());
  child->setId(2);
  auto* grandchild = child->addChild(std::make_unique<TextView>());
  grandchild->setId(3);
  EXPECT_EQ(root.findViewById(3), grandchild);
  EXPECT_EQ(root.findViewById(99), nullptr);
  EXPECT_EQ(grandchild->parent(), child);
  EXPECT_EQ(root.subtreeSize(), 3);
}

TEST(ViewTest, FindByResourceId) {
  View root;
  auto* btn = root.addChild(std::make_unique<Button>());
  btn->setResourceId("btn_close");
  EXPECT_EQ(root.findViewByResourceId("btn_close"), btn);
  EXPECT_EQ(root.findViewByResourceId("missing"), nullptr);
}

TEST(ViewTest, PositionInRoot) {
  View root;
  root.setFrame({0, 0, 100, 100});
  auto* a = root.addChild(std::make_unique<View>());
  a->setFrame({10, 20, 50, 50});
  auto* b = a->addChild(std::make_unique<View>());
  b->setFrame({5, 5, 10, 10});
  EXPECT_EQ(b->positionInRoot(), (Point{15, 25}));
}

TEST(ViewTest, HitTestFindsDeepestClickable) {
  View root;
  root.setFrame({0, 0, 100, 100});
  root.setClickable(true);
  auto* panel = root.addChild(std::make_unique<View>());
  panel->setFrame({10, 10, 50, 50});
  auto* button = panel->addChild(std::make_unique<Button>());
  button->setFrame({5, 5, 20, 10});
  EXPECT_EQ(root.hitTest({16, 16}), button);   // inside the button
  EXPECT_EQ(root.hitTest({80, 80}), &root);    // outside panel, root clickable
  EXPECT_EQ(root.hitTest({200, 200}), nullptr);
}

TEST(ViewTest, HitTestSkipsInvisible) {
  View root;
  root.setFrame({0, 0, 100, 100});
  auto* button = root.addChild(std::make_unique<Button>());
  button->setFrame({0, 0, 100, 100});
  button->setVisible(false);
  EXPECT_EQ(root.hitTest({50, 50}), nullptr);
}

TEST(ViewTest, HitTestLaterSiblingOnTop) {
  View root;
  root.setFrame({0, 0, 100, 100});
  auto* lower = root.addChild(std::make_unique<Button>());
  lower->setFrame({0, 0, 100, 100});
  auto* upper = root.addChild(std::make_unique<Button>());
  upper->setFrame({0, 0, 100, 100});
  EXPECT_EQ(root.hitTest({50, 50}), upper);
}

TEST(ViewTest, PerformClickRunsHandler) {
  Button button;
  int clicks = 0;
  button.setOnClick([&] { ++clicks; });
  EXPECT_TRUE(button.performClick());
  EXPECT_EQ(clicks, 1);
  View plain;
  EXPECT_FALSE(plain.performClick());
}

TEST(ViewTest, DrawRespectsAlphaAndVisibility) {
  gfx::Bitmap bmp(20, 20, colors::kWhite);
  gfx::Canvas canvas(bmp);
  View opaque;
  opaque.setFrame({0, 0, 10, 10});
  opaque.setBackground(colors::kBlack);
  opaque.draw(canvas, {0, 0});
  EXPECT_EQ(bmp.at(5, 5), colors::kBlack);

  gfx::Bitmap bmp2(20, 20, colors::kWhite);
  gfx::Canvas canvas2(bmp2);
  View faint;
  faint.setFrame({0, 0, 10, 10});
  faint.setBackground(colors::kBlack);
  faint.setAlpha(0.1);  // a UPO-style barely-visible element
  faint.draw(canvas2, {0, 0});
  EXPECT_GT(bmp2.at(5, 5).r, 200);  // almost white still

  gfx::Bitmap bmp3(20, 20, colors::kWhite);
  gfx::Canvas canvas3(bmp3);
  faint.setVisible(false);
  faint.setAlpha(1.0);
  faint.draw(canvas3, {0, 0});
  EXPECT_EQ(bmp3.at(5, 5), colors::kWhite);
}

TEST(ViewTest, AlphaMultipliesIntoChildren) {
  gfx::Bitmap bmp(20, 20, colors::kWhite);
  gfx::Canvas canvas(bmp);
  View parent;
  parent.setFrame({0, 0, 20, 20});
  parent.setAlpha(0.2);
  auto* child = parent.addChild(std::make_unique<View>());
  child->setFrame({0, 0, 20, 20});
  child->setBackground(colors::kBlack);
  parent.draw(canvas, {0, 0});
  EXPECT_GT(bmp.at(10, 10).r, 150);  // child dimmed by parent alpha
}

TEST(ViewTest, ClassNames) {
  EXPECT_EQ(View{}.className(), "View");
  EXPECT_EQ(TextView{}.className(), "TextView");
  EXPECT_EQ(Button{}.className(), "Button");
  EXPECT_EQ(ImageView{}.className(), "ImageView");
  EXPECT_EQ(IconView{}.className(), "IconView");
}

// ---------------------------------------------------------------- looper
TEST(LooperTest, RunsTasksInDueOrder) {
  SimClock clock;
  Looper looper(clock);
  std::vector<int> order;
  looper.postDelayed([&] { order.push_back(2); }, ms(20));
  looper.postDelayed([&] { order.push_back(1); }, ms(10));
  looper.post([&] { order.push_back(0); });
  looper.runUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(clock.now().count, 20);
}

TEST(LooperTest, FifoAmongSameInstant) {
  SimClock clock;
  Looper looper(clock);
  std::vector<int> order;
  looper.post([&] { order.push_back(1); });
  looper.post([&] { order.push_back(2); });
  looper.post([&] { order.push_back(3); });
  looper.runUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(LooperTest, RunUntilStopsAtDeadline) {
  SimClock clock;
  Looper looper(clock);
  int ran = 0;
  looper.postDelayed([&] { ++ran; }, ms(10));
  looper.postDelayed([&] { ++ran; }, ms(100));
  looper.runUntil(ms(50));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(clock.now().count, 50);
  EXPECT_EQ(looper.pendingCount(), 1u);
}

TEST(LooperTest, CancelPreventsExecution) {
  SimClock clock;
  Looper looper(clock);
  int ran = 0;
  const TaskId id = looper.postDelayed([&] { ++ran; }, ms(10));
  EXPECT_TRUE(looper.cancel(id));
  EXPECT_FALSE(looper.cancel(id));  // second cancel fails
  looper.runUntilIdle();
  EXPECT_EQ(ran, 0);
  EXPECT_TRUE(looper.idle());
}

TEST(LooperTest, CancelAfterRunFails) {
  SimClock clock;
  Looper looper(clock);
  const TaskId id = looper.post([] {});
  looper.runUntilIdle();
  EXPECT_FALSE(looper.cancel(id));
}

TEST(LooperTest, TaskCanRescheduleItself) {
  SimClock clock;
  Looper looper(clock);
  int ticks = 0;
  std::function<void()> tick = [&] {
    if (++ticks < 5) looper.postDelayed(tick, ms(10));
  };
  looper.postDelayed(tick, ms(10));
  looper.runUntilIdle();
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(clock.now().count, 50);
}

TEST(LooperTest, NegativeDelayClampsToNow) {
  SimClock clock;
  Looper looper(clock);
  int ran = 0;
  looper.postDelayed([&] { ++ran; }, ms(-100));
  looper.runUntil(ms(0));
  EXPECT_EQ(ran, 1);
}

TEST(LooperTest, NegativeDelayKeepsFifoOrderWithImmediatePosts) {
  SimClock clock;
  Looper looper(clock);
  std::vector<int> order;
  looper.post([&] { order.push_back(1); });
  looper.postDelayed([&] { order.push_back(2); }, ms(-50));  // clamps to now
  looper.post([&] { order.push_back(3); });
  looper.runUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now().count, 0);  // clamping never rewinds the clock
}

TEST(LooperTest, CancelOfAlreadyRunDelayedTaskFails) {
  SimClock clock;
  Looper looper(clock);
  int ran = 0;
  const TaskId id = looper.postDelayed([&] { ++ran; }, ms(25));
  looper.runUntil(ms(25));  // task due exactly at the deadline runs
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(looper.cancel(id));
  EXPECT_EQ(looper.pendingCount(), 0u);
}

TEST(LooperTest, TasksPostedFromWithinRunUntilIdleAreDrained) {
  SimClock clock;
  Looper looper(clock);
  std::vector<int> order;
  looper.post([&] {
    order.push_back(1);
    looper.post([&] { order.push_back(3); });
    looper.postDelayed([&] { order.push_back(4); }, ms(5));
  });
  looper.post([&] { order.push_back(2); });
  looper.runUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(clock.now().count, 5);
  EXPECT_TRUE(looper.idle());
}

TEST(LooperTest, TaskPostedFromTaskBeyondDeadlineStaysPending) {
  SimClock clock;
  Looper looper(clock);
  int lateRan = 0;
  looper.postDelayed(
      [&] { looper.postDelayed([&] { ++lateRan; }, ms(100)); }, ms(10));
  looper.runUntil(ms(50));
  EXPECT_EQ(lateRan, 0);
  EXPECT_EQ(looper.pendingCount(), 1u);
  EXPECT_EQ(clock.now().count, 50);
  looper.runUntilIdle();
  EXPECT_EQ(lateRan, 1);
  EXPECT_EQ(clock.now().count, 110);
}

TEST(LooperTest, TaskCanCancelAPendingSibling) {
  SimClock clock;
  Looper looper(clock);
  int victimRan = 0;
  const TaskId victim = looper.postDelayed([&] { ++victimRan; }, ms(20));
  bool cancelled = false;
  looper.postDelayed([&] { cancelled = looper.cancel(victim); }, ms(10));
  looper.runUntilIdle();
  EXPECT_TRUE(cancelled);
  EXPECT_EQ(victimRan, 0);
  EXPECT_TRUE(looper.idle());
}

// -------------------------------------------------------- window manager
std::unique_ptr<View> makeScreenRoot(Color bg = colors::kWhite) {
  auto root = std::make_unique<View>();
  root->setBackground(bg);
  return root;
}

TEST(WindowManagerTest, AppFrameInsets) {
  WindowManager wm;  // 360x720, status 24, nav 48
  EXPECT_EQ(wm.appFrame(true), (Rect{0, 0, 360, 720}));
  EXPECT_EQ(wm.appFrame(false), (Rect{0, 24, 360, 648}));
}

TEST(WindowManagerTest, ShowAndPopWindows) {
  WindowManager wm;
  EXPECT_EQ(wm.topAppWindow(), nullptr);
  Window* w1 = wm.showAppWindow("com.app.one", makeScreenRoot(), false);
  Window* w2 = wm.showAppWindow("com.app.two", makeScreenRoot(), true);
  EXPECT_EQ(wm.topAppWindow(), w2);
  EXPECT_EQ(wm.appWindowCount(), 2u);
  wm.popAppWindow();
  EXPECT_EQ(wm.topAppWindow(), w1);
  wm.popAppWindow();
  EXPECT_EQ(wm.topAppWindow(), nullptr);
  wm.popAppWindow();  // no-op on empty stack
}

TEST(WindowManagerTest, CompositeShowsBarsForNonFullscreen) {
  WindowManager wm;
  wm.showAppWindow("com.app", makeScreenRoot(colors::kWhite), false);
  const gfx::Bitmap screen = wm.composite();
  // Status bar area is dark.
  EXPECT_LT(screen.meanLuma({0, 0, 360, 24}), 80.0);
  // App content area is white.
  EXPECT_GT(screen.meanLuma({100, 300, 100, 100}), 240.0);
  // Nav bar area is dark.
  EXPECT_LT(screen.meanLuma({0, 720 - 48, 360, 48}), 80.0);
}

TEST(WindowManagerTest, CompositeFullscreenHidesBars) {
  WindowManager wm;
  wm.showAppWindow("com.app", makeScreenRoot(colors::kWhite), true);
  const gfx::Bitmap screen = wm.composite();
  EXPECT_GT(screen.meanLuma({0, 0, 360, 24}), 240.0);
}

TEST(WindowManagerTest, OverlayPositionedRelativeToAppFrame) {
  WindowManager wm;
  wm.showAppWindow("com.app", makeScreenRoot(), false);
  auto marker = std::make_unique<View>();
  marker->setBackground(colors::kRed);
  const int id = wm.addOverlay(std::move(marker), {10, 10, 20, 20});
  // App frame starts at y=24, so the overlay lands at (10, 34) on screen.
  const auto loc = wm.overlayLocationOnScreen(id);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(*loc, (Point{10, 34}));
  const gfx::Bitmap screen = wm.composite();
  EXPECT_EQ(screen.at(15, 40), colors::kRed);
}

TEST(WindowManagerTest, AnchorViewRevealsWindowOffset) {
  // The paper's §IV-D trick: add a 1x1 anchor at window (0,0) and read its
  // screen location to learn the app-window offset.
  WindowManager wm;
  wm.showAppWindow("com.app", makeScreenRoot(), false);
  const int anchor = wm.addOverlay(std::make_unique<View>(), {0, 0, 1, 1});
  const auto loc = wm.overlayLocationOnScreen(anchor);
  ASSERT_TRUE(loc.has_value());
  EXPECT_EQ(loc->x, 0);
  EXPECT_EQ(loc->y, 24);  // status bar height

  // Full-screen window: offset is zero.
  wm.removeAllOverlays();
  wm.showAppWindow("com.app2", makeScreenRoot(), true);
  const int anchor2 = wm.addOverlay(std::make_unique<View>(), {0, 0, 1, 1});
  EXPECT_EQ(*wm.overlayLocationOnScreen(anchor2), (Point{0, 0}));
}

TEST(WindowManagerTest, RemoveOverlay) {
  WindowManager wm;
  const int id = wm.addOverlay(std::make_unique<View>(), {0, 0, 5, 5});
  EXPECT_EQ(wm.overlayCount(), 1u);
  EXPECT_TRUE(wm.removeOverlay(id));
  EXPECT_FALSE(wm.removeOverlay(id));
  EXPECT_EQ(wm.overlayCount(), 0u);
  EXPECT_FALSE(wm.overlayLocationOnScreen(id).has_value());
}

TEST(WindowManagerTest, ClickDispatchToAppView) {
  WindowManager wm;
  auto root = makeScreenRoot();
  auto* button = root->addChild(std::make_unique<Button>());
  button->setFrame({100, 100, 80, 40});  // window coords
  int clicks = 0;
  button->setOnClick([&] { ++clicks; });
  wm.showAppWindow("com.app", std::move(root), false);
  // Window origin is (0, 24): screen (140, 144) hits the button.
  View* hit = wm.clickAt({140, 144});
  EXPECT_EQ(hit, button);
  EXPECT_EQ(clicks, 1);
  // A miss returns nullptr.
  EXPECT_EQ(wm.clickAt({10, 700}), nullptr);
}

TEST(WindowManagerTest, DumpTopWindowHasScreenCoords) {
  WindowManager wm;
  auto root = makeScreenRoot();
  auto* button = root->addChild(std::make_unique<Button>());
  button->setFrame({10, 20, 50, 30});
  button->setResourceId("btn_ok");
  static_cast<Button*>(button)->setText("ok");
  wm.showAppWindow("com.app", std::move(root), false);
  const UiDump dump = wm.dumpTopWindow();
  ASSERT_EQ(dump.size(), 2u);
  EXPECT_EQ(dump[0].className, "View");
  EXPECT_EQ(dump[1].className, "Button");
  EXPECT_EQ(dump[1].resourceId, "btn_ok");
  EXPECT_EQ(dump[1].boundsOnScreen, (Rect{10, 44, 50, 30}));
  EXPECT_TRUE(dump[1].clickable);
  EXPECT_EQ(dump[1].text, "ok");
}

// ------------------------------------------------------- accessibility
class RecordingService : public AccessibilityService {
 public:
  void onAccessibilityEvent(const AccessibilityEvent& event) override {
    events.push_back(event);
  }
  std::vector<AccessibilityEvent> events;
};

TEST(AccessibilityTest, EventCodesMatchAndroid) {
  EXPECT_EQ(eventCode(EventType::kWindowsChanged), 0x00400000u);
  EXPECT_EQ(eventCode(EventType::kViewClicked), 0x00000001u);
  EXPECT_EQ(eventCode(EventType::kWindowContentChanged), 0x00000800u);
  EXPECT_EQ(kAllEventTypes.size(), 23u);
  std::uint32_t mask = 0;
  for (EventType t : kAllEventTypes) mask |= eventCode(t);
  EXPECT_EQ(mask, kAllEventTypesMask);
}

TEST(AccessibilityTest, EventTypeNamesUnique) {
  std::vector<std::string_view> names;
  for (EventType t : kAllEventTypes) names.push_back(eventTypeName(t));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(AccessibilityTest, DeliversSubscribedEvents) {
  AndroidSystem sys;
  RecordingService service;
  service.setEventTypesMask(kAllEventTypesMask);
  sys.accessibility.connect(service);
  sys.windowManager.showAppWindow("com.app", makeScreenRoot(), false);
  sys.looper.runUntilIdle();
  ASSERT_EQ(service.events.size(), 2u);  // state changed + windows changed
  EXPECT_EQ(service.events[0].type, EventType::kWindowStateChanged);
  EXPECT_EQ(service.events[1].type, EventType::kWindowsChanged);
  EXPECT_EQ(service.events[0].packageName, "com.app");
}

TEST(AccessibilityTest, MaskFiltersEvents) {
  AndroidSystem sys;
  RecordingService service;
  service.setEventTypesMask(eventCode(EventType::kWindowContentChanged));
  sys.accessibility.connect(service);
  sys.windowManager.showAppWindow("com.app", makeScreenRoot(), false);
  sys.windowManager.notifyContentChanged(3);
  sys.looper.runUntilIdle();
  EXPECT_EQ(service.events.size(), 3u);
  for (const auto& e : service.events) {
    EXPECT_EQ(e.type, EventType::kWindowContentChanged);
  }
}

TEST(AccessibilityTest, NotificationTimeoutCoalesces) {
  AndroidSystem sys;
  RecordingService service;
  service.setNotificationTimeout(ms(200));
  sys.accessibility.connect(service);
  sys.windowManager.showAppWindow("com.app", makeScreenRoot(), false);
  sys.windowManager.notifyContentChanged(10);  // storm at t=0
  sys.looper.runUntilIdle();
  // 12 events emitted (2 window + 10 content) but only one delivery fires
  // within the first timeout window.
  EXPECT_EQ(service.events.size(), 1u);
  EXPECT_EQ(sys.accessibility.totalEmitted(), 12);
  EXPECT_EQ(sys.accessibility.totalDelivered(), 1);
  EXPECT_EQ(sys.accessibility.totalCoalesced(), 11);
}

TEST(AccessibilityTest, SpacedEventsAllDelivered) {
  AndroidSystem sys;
  RecordingService service;
  service.setNotificationTimeout(ms(200));
  sys.accessibility.connect(service);
  sys.windowManager.showAppWindow("com.app", makeScreenRoot(), false);
  sys.looper.runUntilIdle();
  service.events.clear();
  for (int i = 0; i < 5; ++i) {
    sys.looper.runFor(ms(300));
    sys.windowManager.notifyContentChanged(1);
  }
  sys.looper.runUntilIdle();
  EXPECT_EQ(service.events.size(), 5u);
}

TEST(AccessibilityTest, DisconnectStopsDelivery) {
  AndroidSystem sys;
  RecordingService service;
  sys.accessibility.connect(service);
  sys.accessibility.disconnect(service);
  EXPECT_FALSE(service.connected());
  sys.windowManager.showAppWindow("com.app", makeScreenRoot(), false);
  sys.looper.runUntilIdle();
  EXPECT_TRUE(service.events.empty());
}

TEST(AccessibilityTest, TakeScreenshotMatchesComposite) {
  AndroidSystem sys;
  RecordingService service;
  sys.accessibility.connect(service);
  sys.windowManager.showAppWindow("com.app", makeScreenRoot(colors::kBlue),
                                  false);
  const gfx::Bitmap shot = service.takeScreenshot();
  EXPECT_EQ(shot.size(), (Size{360, 720}));
  EXPECT_EQ(shot.at(180, 360), colors::kBlue);
}

TEST(AccessibilityTest, DispatchClickDrivesApp) {
  AndroidSystem sys;
  RecordingService service;
  sys.accessibility.connect(service);
  auto root = makeScreenRoot();
  auto* button = root->addChild(std::make_unique<Button>());
  button->setFrame({0, 0, 360, 100});
  int clicks = 0;
  button->setOnClick([&] { ++clicks; });
  sys.windowManager.showAppWindow("com.app", std::move(root), true);
  EXPECT_TRUE(service.dispatchClick({50, 50}));
  EXPECT_EQ(clicks, 1);
}

TEST(AccessibilityTest, ClickEmitsTouchAndClickEvents) {
  AndroidSystem sys;
  RecordingService service;
  sys.accessibility.connect(service);
  auto root = makeScreenRoot();
  root->setClickable(true);
  sys.windowManager.showAppWindow("com.app", std::move(root), true);
  sys.looper.runUntilIdle();
  service.events.clear();
  sys.windowManager.clickAt({100, 100});
  sys.looper.runUntilIdle();
  ASSERT_EQ(service.events.size(), 3u);
  EXPECT_EQ(service.events[0].type, EventType::kTouchInteractionStart);
  EXPECT_EQ(service.events[1].type, EventType::kViewClicked);
  EXPECT_EQ(service.events[2].type, EventType::kTouchInteractionEnd);
}

TEST(WindowManagerTest, ClickHandlerMayPopOwnWindow) {
  // A dialog whose confirm button dismisses the dialog: the handler pops
  // the window that owns the clicked view, so clickAt must not touch the
  // window after dispatching (regression: use-after-free on packageName).
  AndroidSystem sys;
  RecordingService service;
  sys.accessibility.connect(service);
  sys.windowManager.showAppWindow("com.app", makeScreenRoot(), true);
  auto dialog = makeScreenRoot();
  auto* button = dialog->addChild(std::make_unique<Button>());
  button->setFrame({0, 0, 360, 100});
  WindowManager* wm = &sys.windowManager;
  button->setOnClick([wm] { wm->popAppWindow(); });
  sys.windowManager.showAppWindow("com.app.dialog", std::move(dialog), true);
  sys.looper.runUntilIdle();
  service.events.clear();
  EXPECT_NE(sys.windowManager.clickAt({50, 50}), nullptr);
  sys.looper.runUntilIdle();
  // The pop interleaves window-transition events; the click event itself
  // must still carry the (now destroyed) dialog's package name.
  int clicked = 0;
  for (const AccessibilityEvent& event : service.events) {
    if (event.type != EventType::kViewClicked) continue;
    ++clicked;
    EXPECT_EQ(event.packageName, "com.app.dialog");
  }
  EXPECT_EQ(clicked, 1);
}

}  // namespace
}  // namespace darpa::android
