// Fleet-scale tests: the detection executor backends (canonical completion
// order, looper routing, batch composition), fleet-of-1 equivalence with the
// hand-wired harness, epoch-lockstep determinism across worker counts, and
// the Looper's lazy-deletion GC bounds.
#include <gtest/gtest.h>

#include <atomic>
#include <utility>
#include <vector>

#include "android/looper.h"
#include "android/system.h"
#include "apps/app_model.h"
#include "core/darpa_service.h"
#include "core/detection_executor.h"
#include "fleet/device_session.h"
#include "fleet/executors.h"
#include "fleet/fleet.h"

namespace darpa::fleet {
namespace {

/// Deterministic, thread-safe detector: every screen yields one confident
/// UPO (so the verdict/act stages run), at a fixed modeled cost.
class StubDetector : public cv::Detector {
 public:
  std::vector<cv::Detection> detect(const gfx::Bitmap&) const override {
    ++calls_;
    return {cv::Detection{{10, 50, 60, 24}, dataset::BoxLabel::kUpo, 0.9f}};
  }
  double costMacsPerImage() const override { return 1.0e6; }

  [[nodiscard]] std::int64_t calls() const { return calls_.load(); }

 private:
  mutable std::atomic<std::int64_t> calls_{0};
};

core::DetectionRequest makeRequest(
    const cv::Detector& detector, int sessionId, std::uint64_t seq,
    android::Looper* replyLooper,
    std::vector<std::pair<int, int>>* order,
    std::vector<int>* batchSizes = nullptr) {
  core::DetectionRequest request;
  auto frame = std::make_shared<core::ScreenFrame>(android::UiDump{}, "test");
  frame->attachPixels(gfx::Bitmap(4, 4));
  request.frame = std::move(frame);
  request.detector = &detector;
  request.replyLooper = replyLooper;
  request.sessionId = sessionId;
  request.seq = seq;
  request.onComplete = [=](std::vector<cv::Detection>, int batchSize,
                           const core::DetectionTiming&) {
    order->push_back({sessionId, static_cast<int>(seq)});
    if (batchSizes != nullptr) batchSizes->push_back(batchSize);
  };
  return request;
}

// ------------------------------------------------------------- executors

TEST(ExecutorTest, ThreadPoolPostsToOwningLooperInCanonicalOrder) {
  StubDetector detector;
  ThreadPoolExecutor pool(4);
  EXPECT_FALSE(pool.synchronous());

  SimClock clockA;
  android::Looper looperA(clockA);
  SimClock clockB;
  android::Looper looperB(clockB);

  // Submit in scrambled order: canonical (sessionId, seq) order must be
  // restored at flush regardless.
  std::vector<std::pair<int, int>> order;
  pool.submit(makeRequest(detector, 1, 1, &looperB, &order));
  pool.submit(makeRequest(detector, 0, 1, &looperA, &order));
  pool.submit(makeRequest(detector, 1, 0, &looperB, &order));
  pool.submit(makeRequest(detector, 0, 0, &looperA, &order));
  EXPECT_EQ(pool.pendingCount(), 4u);

  pool.flush();
  EXPECT_EQ(pool.pendingCount(), 0u);
  EXPECT_EQ(pool.completed(), 4);
  // Completions were posted to the sessions' loopers, not run yet.
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(looperA.pendingCount(), 2u);
  EXPECT_EQ(looperB.pendingCount(), 2u);

  looperA.runUntilIdle();
  looperB.runUntilIdle();
  const std::vector<std::pair<int, int>> expected = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  EXPECT_EQ(order, expected);
  EXPECT_EQ(detector.calls(), 4);
}

TEST(ExecutorTest, BatchingCoalescesUpToMaxBatchSize) {
  StubDetector detector;
  BatchingExecutor executor({.maxBatchSize = 2, .threads = 1});

  std::vector<std::pair<int, int>> order;
  std::vector<int> batchSizes;
  for (int seq = 4; seq >= 0; --seq) {  // reverse submit order
    executor.submit(makeRequest(detector, 0, static_cast<std::uint64_t>(seq),
                                nullptr, &order, &batchSizes));
  }
  EXPECT_EQ(executor.pendingCount(), 5u);

  executor.flush();
  EXPECT_EQ(executor.pendingCount(), 0u);
  // Canonical order 0..4, chunked as [2, 2, 1].
  const std::vector<std::pair<int, int>> expected = {
      {0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}};
  EXPECT_EQ(order, expected);
  const std::vector<int> expectedSizes = {2, 2, 2, 2, 1};
  EXPECT_EQ(batchSizes, expectedSizes);
  EXPECT_EQ(executor.batchesDispatched(), 3);
  EXPECT_EQ(executor.imagesBatched(), 5);
  EXPECT_EQ(executor.largestBatch(), 2);
  EXPECT_NEAR(executor.meanBatchSize(), 5.0 / 3.0, 1e-12);

  // flush() with nothing parked is a no-op.
  executor.flush();
  EXPECT_EQ(executor.batchesDispatched(), 3);
}

TEST(ExecutorTest, BatchingCutsBatchesAtDetectorBoundaries) {
  StubDetector detectorA;
  StubDetector detectorB;
  BatchingExecutor executor({.maxBatchSize = 64, .threads = 2});

  std::vector<std::pair<int, int>> order;
  std::vector<int> batchSizes;
  executor.submit(makeRequest(detectorA, 0, 0, nullptr, &order, &batchSizes));
  executor.submit(makeRequest(detectorA, 0, 1, nullptr, &order, &batchSizes));
  executor.submit(makeRequest(detectorB, 1, 0, nullptr, &order, &batchSizes));
  executor.submit(makeRequest(detectorB, 1, 1, nullptr, &order, &batchSizes));
  executor.flush();

  EXPECT_EQ(executor.batchesDispatched(), 2);
  EXPECT_EQ(executor.largestBatch(), 2);
  EXPECT_EQ(detectorA.calls(), 2);
  EXPECT_EQ(detectorB.calls(), 2);
  const std::vector<std::pair<int, int>> expected = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  EXPECT_EQ(order, expected);
}

TEST(ExecutorTest, InlineExecutorCompletesSynchronously) {
  StubDetector detector;
  core::InlineExecutor inline_;
  EXPECT_TRUE(inline_.synchronous());

  std::vector<std::pair<int, int>> order;
  std::vector<int> batchSizes;
  inline_.submit(makeRequest(detector, 7, 3, nullptr, &order, &batchSizes));
  const std::vector<std::pair<int, int>> expected = {{7, 3}};
  EXPECT_EQ(order, expected);
  const std::vector<int> expectedSizes = {1};
  EXPECT_EQ(batchSizes, expectedSizes);
  EXPECT_EQ(inline_.pendingCount(), 0u);
}

// ------------------------------------------------- fleet-of-1 equivalence

void expectStatsEq(const core::DarpaStats& a, const core::DarpaStats& b) {
  EXPECT_EQ(a.eventsReceived, b.eventsReceived);
  EXPECT_EQ(a.analysesRun, b.analysesRun);
  EXPECT_EQ(a.screenshotsTaken, b.screenshotsTaken);
  EXPECT_EQ(a.auisFlagged, b.auisFlagged);
  EXPECT_EQ(a.decorationsDrawn, b.decorationsDrawn);
  EXPECT_EQ(a.bypassClicks, b.bypassClicks);
  EXPECT_EQ(a.lintRuns, b.lintRuns);
  EXPECT_EQ(a.cvSkippedByLint, b.cvSkippedByLint);
  EXPECT_EQ(a.verdictCacheHits, b.verdictCacheHits);
  EXPECT_EQ(a.anchorMeasurements, b.anchorMeasurements);
}

TEST(FleetTest, DeviceSessionMatchesHandWiredHarness) {
  StubDetector detector;
  const core::DarpaConfig darpa;
  const Millis length = ms(15'000);
  Rng rng(123);
  const apps::AppProfile profile = apps::randomAppProfile("com.app.x", rng);
  const std::uint64_t appSeed = rng.next();
  const std::uint64_t monkeySeed = rng.next();

  // The pre-fleet hand-wired harness, verbatim.
  android::AndroidSystem system;
  core::DarpaService service(detector, darpa);
  system.accessibility.connect(service);
  apps::AppSession app(system, profile, appSeed);
  apps::MonkeyDriver monkey(system, monkeySeed);
  app.start(length);
  monkey.start(system.clock.now() + length, 1500, 4000);
  system.looper.runUntil(system.clock.now() + length);

  // The same device as a fleet-of-1 DeviceSession (default InlineExecutor).
  DeviceSession::Config config;
  config.darpa = darpa;
  config.profile = profile;
  config.appSeed = appSeed;
  config.monkeySeed = monkeySeed;
  config.duration = length;
  DeviceSession device(detector, std::move(config));
  device.runToCompletion();

  expectStatsEq(device.stats(), service.stats());
  EXPECT_EQ(device.ledger().analyses(), service.ledger().analyses());
  EXPECT_EQ(device.ledger().tally(core::Stage::kDetect).runs,
            service.ledger().tally(core::Stage::kDetect).runs);
  EXPECT_DOUBLE_EQ(device.ledger().totalCpuMs(),
                   service.ledger().totalCpuMs());
  EXPECT_EQ(device.eventsEmitted(), system.accessibility.totalEmitted());
  EXPECT_EQ(device.auiExposures(),
            static_cast<std::int64_t>(app.exposures().size()));
  EXPECT_GT(device.stats().analysesRun, 0);
}

// --------------------------------------------------- epoch determinism

struct FleetFingerprint {
  core::DarpaStats stats;
  std::int64_t analyses = 0;
  std::int64_t detectRuns = 0;
  double totalCpuMs = 0.0;
  std::int64_t eventsEmitted = 0;
  std::int64_t auiExposures = 0;
  std::int64_t auisCovered = 0;
};

void expectFingerprintEq(const FleetFingerprint& a, const FleetFingerprint& b) {
  expectStatsEq(a.stats, b.stats);
  EXPECT_EQ(a.analyses, b.analyses);
  EXPECT_EQ(a.detectRuns, b.detectRuns);
  EXPECT_DOUBLE_EQ(a.totalCpuMs, b.totalCpuMs);
  EXPECT_EQ(a.eventsEmitted, b.eventsEmitted);
  EXPECT_EQ(a.auiExposures, b.auiExposures);
  EXPECT_EQ(a.auisCovered, b.auisCovered);
}

FleetFingerprint runBatchedFleet(int sessions, int workers) {
  StubDetector detector;
  BatchingExecutor executor({.maxBatchSize = 16, .threads = 4});
  FleetConfig config;
  config.sessions = sessions;
  config.workers = workers;
  config.epoch = ms(500);
  config.duration = ms(3000);
  Fleet fleet(detector, executor, config);
  fleet.run();
  EXPECT_EQ(executor.pendingCount(), 0u)
      << "epoch drain must leave no parked requests";
  EXPECT_GT(executor.imagesBatched(), 0);
  if (sessions >= 16) {
    EXPECT_GE(executor.largestBatch(), 2)
        << "a whole-fleet epoch should coalesce screenshots";
  }
  const FleetSnapshot snap = fleet.snapshot();
  EXPECT_EQ(snap.sessions, sessions);
  EXPECT_EQ(snap.simTime, ms(3000));
  return {snap.stats,
          snap.ledger.analyses(),
          snap.ledger.tally(core::Stage::kDetect).runs,
          snap.ledger.totalCpuMs(),
          snap.eventsEmitted,
          snap.auiExposures,
          snap.auisCovered};
}

TEST(FleetTest, SixtyFourSessionsDeterministicAcrossWorkersAndRuns) {
  const FleetFingerprint serial = runBatchedFleet(64, 1);
  const FleetFingerprint fourWorkers = runBatchedFleet(64, 4);
  const FleetFingerprint repeat = runBatchedFleet(64, 4);
  EXPECT_GT(serial.analyses, 0);
  expectFingerprintEq(serial, fourWorkers);
  expectFingerprintEq(fourWorkers, repeat);
}

TEST(FleetTest, ThreadPoolFleetMatchesSerialShards) {
  auto runPoolFleet = [](int workers) {
    StubDetector detector;
    ThreadPoolExecutor executor(4);
    FleetConfig config;
    config.sessions = 8;
    config.workers = workers;
    config.epoch = ms(500);
    config.duration = ms(3000);
    Fleet fleet(detector, executor, config);
    fleet.run();
    EXPECT_EQ(executor.pendingCount(), 0u);
    const FleetSnapshot snap = fleet.snapshot();
    return FleetFingerprint{snap.stats,
                            snap.ledger.analyses(),
                            snap.ledger.tally(core::Stage::kDetect).runs,
                            snap.ledger.totalCpuMs(),
                            snap.eventsEmitted,
                            snap.auiExposures,
                            snap.auisCovered};
  };
  const FleetFingerprint serial = runPoolFleet(1);
  const FleetFingerprint sharded = runPoolFleet(4);
  EXPECT_GT(serial.analyses, 0);
  expectFingerprintEq(serial, sharded);
}

TEST(FleetTest, InlineFleetMatchesIndependentDeviceSessions) {
  // A fleet on the InlineExecutor is just N independent sessions; its merged
  // snapshot must equal the sum of running each session by hand.
  StubDetector detector;
  core::InlineExecutor inline_;
  FleetConfig config;
  config.sessions = 4;
  config.epoch = ms(1000);
  config.duration = ms(5000);
  Fleet fleet(detector, inline_, config);
  fleet.run();
  const FleetSnapshot snap = fleet.snapshot();

  core::DarpaStats manual;
  Rng rng(config.seed);
  for (int i = 0; i < config.sessions; ++i) {
    DeviceSession::Config session;
    session.id = i;
    session.profile =
        apps::randomAppProfile("com.fleet.app" + std::to_string(i), rng);
    session.appSeed = rng.next();
    session.monkeySeed = rng.next();
    session.duration = config.duration;
    DeviceSession device(detector, std::move(session));
    device.runToCompletion();
    manual.merge(device.stats().snapshot());
  }
  expectStatsEq(snap.stats, manual);
}

// ------------------------------------------------------------ looper GC

TEST(LooperGcTest, CancelHeavyRunStaysBounded) {
  SimClock clock;
  android::Looper looper(clock);
  std::int64_t executed = 0;

  // The fleet debounce pattern at its worst: every posted timer is cancelled
  // by the next event. Lazy-deletion markers must never accumulate.
  for (int round = 0; round < 200; ++round) {
    std::vector<android::TaskId> ids;
    for (int i = 0; i < 8; ++i) {
      ids.push_back(looper.postDelayed([&] { ++executed; }, ms(10'000 + i)));
    }
    for (const android::TaskId id : ids) looper.cancel(id);
    const android::Looper::GcStats gc = looper.gcStats();
    EXPECT_EQ(gc.queueDepth, gc.pendingCount + gc.cancelledCount);
    EXPECT_LE(gc.cancelledCount,
              std::max(android::Looper::kCompactionFloor, gc.queueDepth / 2));
  }

  const android::Looper::GcStats gc = looper.gcStats();
  EXPECT_EQ(gc.pendingCount, 0u);
  EXPECT_GT(gc.compactions, 0);
  EXPECT_GT(gc.purged, 0);
  EXPECT_LE(gc.queueDepth, android::Looper::kCompactionFloor);
  looper.runUntilIdle();
  EXPECT_EQ(executed, 0);
}

TEST(LooperGcTest, PoppedMarkersArePurgedEagerly) {
  SimClock clock;
  android::Looper looper(clock);
  std::int64_t executed = 0;
  const android::TaskId cancelled =
      looper.postDelayed([&] { ++executed; }, ms(10));
  looper.postDelayed([&] { ++executed; }, ms(20));
  looper.cancel(cancelled);

  looper.runUntilIdle();
  EXPECT_EQ(executed, 1);
  const android::Looper::GcStats gc = looper.gcStats();
  EXPECT_EQ(gc.queueDepth, 0u);
  EXPECT_EQ(gc.cancelledCount, 0u);
  EXPECT_EQ(gc.purged, 1);
}

}  // namespace
}  // namespace darpa::fleet
