// Tests for the simulated WebView and its virtual accessibility subtree:
// hybrid dump shape, the fingerprint's resource-id independence (property
// tests), iterative traversal over hostile page shapes, the FraudDroid
// id-coverage telemetry, lint's graceful degradation on virtual nodes, and
// decoration targeting through the hosting native view.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lint.h"
#include "android/system.h"
#include "android/webview.h"
#include "apps/screen_generator.h"
#include "baselines/frauddroid.h"
#include "core/darpa_service.h"
#include "core/pipeline.h"
#include "core/verdict_tier.h"
#include "dataset/dataset.h"

namespace darpa {
namespace {

using android::UiDump;
using android::UiNode;
using android::VirtualNode;
using android::VirtualRole;
using android::WebView;

VirtualNode vnode(VirtualRole role, std::string id, Rect bounds,
                  bool clickable = false, std::string text = {}) {
  VirtualNode node;
  node.role = role;
  node.virtualId = std::move(id);
  node.bounds = bounds;
  node.clickable = clickable;
  node.text = std::move(text);
  return node;
}

/// A white screen hosting one WebView at `webFrame` with `page` loaded.
std::unique_ptr<android::View> webScreen(Size frame, Rect webFrame,
                                         VirtualNode page,
                                         WebView** outWeb = nullptr) {
  auto root = std::make_unique<android::View>();
  root->setFrame({0, 0, frame.width, frame.height});
  root->setBackground(colors::kWhite);
  auto web = std::make_unique<WebView>();
  web->setFrame(webFrame);
  web->setPage(std::move(page));
  auto* webPtr =
      static_cast<WebView*>(root->addChild(std::move(web)));
  if (outWeb != nullptr) *outWeb = webPtr;
  return root;
}

/// Small ad-like page: full-page area, dim overlay, CTA button, close div.
VirtualNode interstitialPage(Size pageSize) {
  VirtualNode page = vnode(VirtualRole::kWebArea, "page",
                           {0, 0, pageSize.width, pageSize.height});
  VirtualNode overlay = vnode(VirtualRole::kGenericContainer, "gwd-overlay",
                              {0, 0, pageSize.width, pageSize.height});
  overlay.background = Color::rgba(0, 0, 0, 140);
  VirtualNode cta = vnode(VirtualRole::kButton, "gwd-cta",
                          {40, 120, 160, 48}, /*clickable=*/true, "INSTALL");
  cta.background = Color::rgb(30, 136, 80);
  VirtualNode close = vnode(VirtualRole::kGenericContainer, "gwd-close",
                            {pageSize.width - 26, 6, 20, 20},
                            /*clickable=*/true);
  close.crossGlyph = true;
  overlay.children.push_back(std::move(cta));
  overlay.children.push_back(std::move(close));
  page.children.push_back(std::move(overlay));
  return page;
}

const UiNode* findVirtualNode(const UiDump& dump, std::string_view id) {
  for (const UiNode& node : dump) {
    if (node.isVirtual && node.virtualId == id) return &node;
  }
  return nullptr;
}

int indexOfClass(const UiDump& dump, std::string_view className) {
  for (std::size_t i = 0; i < dump.size(); ++i) {
    if (dump[i].className == className) return static_cast<int>(i);
  }
  return -1;
}

// -------------------------------------------------- hybrid dump shape

TEST(WebViewTest, DumpContainsVirtualSubtreeWithoutResourceIds) {
  android::AndroidSystem system;
  const Rect frame = system.windowManager.appFrame(false);
  system.windowManager.showAppWindow(
      "com.web",
      webScreen({frame.width, frame.height}, {20, 40, 280, 400},
                interstitialPage({280, 400})),
      false);
  const UiDump dump = system.windowManager.dumpTopWindow();

  const int hostIdx = indexOfClass(dump, "android.webkit.WebView");
  ASSERT_GE(hostIdx, 0);
  const UiNode& host = dump[static_cast<std::size_t>(hostIdx)];
  EXPECT_FALSE(host.isVirtual);  // the host itself is a native view

  const UiNode* cta = findVirtualNode(dump, "gwd-cta");
  ASSERT_NE(cta, nullptr);
  EXPECT_TRUE(cta->isVirtual);
  EXPECT_TRUE(cta->resourceId.empty());  // virtual nodes never carry one
  EXPECT_EQ(cta->className, "android.widget.Button");
  EXPECT_TRUE(cta->clickable);
  EXPECT_EQ(cta->text, "INSTALL");
  // Page coords (40, 120) carried through the host's screen position.
  EXPECT_EQ(cta->boundsOnScreen,
            (Rect{host.boundsOnScreen.x + 40, host.boundsOnScreen.y + 120,
                  160, 48}));
  // Flattened depth continues below the host: page root is host + 1, the
  // overlay host + 2, the CTA host + 3.
  const UiNode* page = findVirtualNode(dump, "page");
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->depth, host.depth + 1);
  EXPECT_EQ(cta->depth, host.depth + 3);
  EXPECT_EQ(page->className, "android.webkit.WebView");

  // Every virtual node sits after its host in pre-order (paint order).
  for (std::size_t i = 0; i < dump.size(); ++i) {
    if (dump[i].isVirtual) EXPECT_GT(static_cast<int>(i), hostIdx);
  }
}

TEST(WebViewTest, EffAlphaChainsHostAlphaIntoPageOpacity) {
  android::AndroidSystem system;
  const Rect frame = system.windowManager.appFrame(false);
  VirtualNode page = vnode(VirtualRole::kWebArea, "page", {0, 0, 200, 200});
  VirtualNode faded =
      vnode(VirtualRole::kGenericContainer, "faded", {0, 0, 100, 100});
  faded.opacity = 0.5;
  VirtualNode inner =
      vnode(VirtualRole::kGenericContainer, "inner", {10, 10, 50, 50});
  inner.opacity = 0.5;
  faded.children.push_back(std::move(inner));
  page.children.push_back(std::move(faded));

  WebView* web = nullptr;
  auto root = webScreen({frame.width, frame.height}, {0, 0, 200, 200},
                        std::move(page), &web);
  web->setAlpha(0.5);
  system.windowManager.showAppWindow("com.web", std::move(root), false);
  const UiDump dump = system.windowManager.dumpTopWindow();

  const UiNode* inner2 = findVirtualNode(dump, "inner");
  ASSERT_NE(inner2, nullptr);
  // Host alpha 0.5 x faded 0.5 x inner 0.5.
  EXPECT_NEAR(inner2->effAlpha, 0.125, 1e-9);
}

TEST(WebViewTest, FindVirtualAndBoundsInRoot) {
  WebView web;
  web.setFrame({30, 50, 300, 400});
  VirtualNode page = interstitialPage({300, 400});
  // Duplicate id: pages reuse DOM ids freely; first pre-order match wins.
  page.children.push_back(
      vnode(VirtualRole::kGenericContainer, "gwd-cta", {0, 0, 10, 10}));
  web.setPage(std::move(page));

  ASSERT_NE(web.findVirtual("gwd-cta"), nullptr);
  EXPECT_EQ(web.findVirtual("gwd-cta")->bounds, (Rect{40, 120, 160, 48}));
  EXPECT_EQ(web.findVirtual(""), nullptr);  // empty id is non-identifying
  EXPECT_EQ(web.findVirtual("missing"), nullptr);
  EXPECT_EQ(web.virtualBoundsInRoot("gwd-cta"), (Rect{70, 170, 160, 48}));
  EXPECT_TRUE(web.virtualBoundsInRoot("missing").empty());
  EXPECT_EQ(web.virtualNodeCount(), 5);

  web.clearPage();
  EXPECT_FALSE(web.hasPage());
  EXPECT_EQ(web.virtualNodeCount(), 0);
}

TEST(WebViewTest, HitTestRoutesClickableVirtualNodesToHost) {
  auto root = std::make_unique<android::View>();
  root->setFrame({0, 0, 360, 720});
  auto web = std::make_unique<WebView>();
  web->setFrame({20, 40, 280, 400});
  web->setPage(interstitialPage({280, 400}));
  auto* webPtr = root->addChild(std::move(web));

  // Inside the clickable CTA (page 40,120 -> root 60,160): the WebView
  // consumes the click; virtual nodes have no native View identity.
  EXPECT_EQ(root->hitTest({70, 170}), webPtr);
  // Inside the page but only over the non-clickable overlay: no virtual
  // target and the WebView itself is not clickable.
  EXPECT_EQ(root->hitTest({30, 420}), nullptr);
  // Outside the WebView entirely.
  EXPECT_EQ(root->hitTest({350, 700}), nullptr);
}

TEST(WebViewTest, PaintsPageThroughSharedCanvasPrimitives) {
  android::AndroidSystem system;
  const Rect frame = system.windowManager.appFrame(false);
  VirtualNode page = vnode(VirtualRole::kWebArea, "page", {0, 0, 200, 200});
  VirtualNode plate =
      vnode(VirtualRole::kGenericContainer, "plate", {10, 10, 80, 80});
  plate.background = colors::kRed;
  page.children.push_back(std::move(plate));
  system.windowManager.showAppWindow(
      "com.web",
      webScreen({frame.width, frame.height}, {0, 0, 200, 200},
                std::move(page)),
      false);
  const gfx::Bitmap shot = system.windowManager.composite();
  // Plate at page (10,10) -> window (10,10) -> screen (+frame origin).
  EXPECT_EQ(shot.at(frame.x + 40, frame.y + 40), colors::kRed);
  EXPECT_EQ(shot.at(frame.x + 150, frame.y + 150), colors::kWhite);
}

// ------------------------------------- fingerprint property (satellite 1)

UiDump dumpOfWebScreen(VirtualNode page, Size pageSize = {300, 400}) {
  android::AndroidSystem system;
  const Rect frame = system.windowManager.appFrame(false);
  system.windowManager.showAppWindow(
      "com.web",
      webScreen({frame.width, frame.height},
                {10, 10, pageSize.width, pageSize.height}, std::move(page)),
      false);
  return system.windowManager.dumpTopWindow();
}

TEST(VirtualFingerprintPropertyTest, AllEmptyIdTreesDoNotCollapse) {
  // Two structurally distinct pages where EVERY id — resource and virtual
  // — is empty. A fingerprint leaning on resource ids would hash both to
  // the same value; the class/bounds/text mix must keep them apart.
  VirtualNode a = vnode(VirtualRole::kWebArea, "", {0, 0, 300, 400});
  a.children.push_back(
      vnode(VirtualRole::kGenericContainer, "", {0, 0, 300, 400}));
  a.children.back().children.push_back(
      vnode(VirtualRole::kButton, "", {40, 120, 160, 48}, true, "INSTALL"));

  VirtualNode b = vnode(VirtualRole::kWebArea, "", {0, 0, 300, 400});
  b.children.push_back(
      vnode(VirtualRole::kGenericContainer, "", {0, 0, 300, 400}));
  b.children.back().children.push_back(
      vnode(VirtualRole::kImage, "", {20, 60, 260, 200}, true));

  const UiDump dumpA = dumpOfWebScreen(a);
  const UiDump dumpB = dumpOfWebScreen(b);
  for (const UiNode& node : dumpA) EXPECT_TRUE(node.resourceId.empty());
  const std::uint64_t fpA = android::WindowManager::fingerprint(dumpA);
  const std::uint64_t fpB = android::WindowManager::fingerprint(dumpB);
  EXPECT_NE(fpA, fpB);
  EXPECT_NE(fpA, 0u);

  // Determinism: re-dumping the same screen reproduces the fingerprint.
  EXPECT_EQ(fpA, android::WindowManager::fingerprint(dumpOfWebScreen(a)));
}

TEST(VirtualFingerprintPropertyTest, VirtualIdAloneDistinguishesTrees) {
  // Identical geometry and classes, different page-global ids: the
  // fingerprint mixes virtualId, so the trees stay distinct even when
  // everything FraudDroid can see is identical (all resource ids empty).
  VirtualNode a = vnode(VirtualRole::kWebArea, "page", {0, 0, 300, 400});
  a.children.push_back(
      vnode(VirtualRole::kGenericContainer, "gwd-div-1", {0, 0, 100, 100}));
  VirtualNode b = vnode(VirtualRole::kWebArea, "page", {0, 0, 300, 400});
  b.children.push_back(
      vnode(VirtualRole::kGenericContainer, "gwd-div-2", {0, 0, 100, 100}));

  EXPECT_NE(android::WindowManager::fingerprint(dumpOfWebScreen(a)),
            android::WindowManager::fingerprint(dumpOfWebScreen(b)));
}

TEST(VirtualFingerprintPropertyTest, VerdictCacheNeverCrossServesWebScreens) {
  VirtualNode a = interstitialPage({300, 400});
  VirtualNode b = interstitialPage({300, 400});
  b.children[0].children[0].bounds = {42, 130, 150, 44};  // nudge the CTA
  const std::uint64_t fpA =
      android::WindowManager::fingerprint(dumpOfWebScreen(a));
  const std::uint64_t fpB =
      android::WindowManager::fingerprint(dumpOfWebScreen(b));
  ASSERT_NE(fpA, fpB);

  core::VerdictCache cache(8);
  cache.put(fpA, {/*isAui=*/true, {}});
  EXPECT_EQ(cache.find(fpB), nullptr);  // no cross-hit on the sibling page
  ASSERT_NE(cache.find(fpA), nullptr);
  EXPECT_TRUE(cache.find(fpA)->isAui);

  core::SharedVerdictTier tier({.shards = 2, .capacityPerShard = 8});
  EXPECT_TRUE(tier.publish(fpA, {/*isAui=*/true, {}},
                           core::SharedVerdictTier::Evidence::kCapture));
  EXPECT_FALSE(tier.find(fpB).has_value());
  ASSERT_TRUE(tier.find(fpA).has_value());
  EXPECT_TRUE(tier.find(fpA)->isAui);
}

// ------------------------------------ hostile page shapes (satellite 3)

VirtualNode deepChain(int levels) {
  VirtualNode node = vnode(VirtualRole::kStaticText, "leaf", {5, 5, 20, 10},
                           false, "bottom");
  for (int i = 0; i < levels; ++i) {
    VirtualNode parent =
        vnode(VirtualRole::kGenericContainer, "", {0, 0, 280, 380});
    parent.children.push_back(std::move(node));
    node = std::move(parent);
  }
  VirtualNode page = vnode(VirtualRole::kWebArea, "page", {0, 0, 280, 380});
  page.children.push_back(std::move(node));
  return page;
}

TEST(VirtualLintTraversalTest, DeepFlattenedChainDoesNotOverflow) {
  // Real pages nest hundreds of levels; the dump walk and every consumer
  // above it must survive a 300-deep chain (well past the 64 levels a
  // recursive visitor's stack frame budget gets nervous at).
  const UiDump dump = dumpOfWebScreen(deepChain(300));
  const UiNode* leaf = findVirtualNode(dump, "leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_GE(leaf->depth, 300);

  const analysis::LintEngine engine = analysis::LintEngine::withDefaultRules();
  const analysis::LintReport report = engine.run(dump, {360, 720});
  EXPECT_GE(report.nodesVisited, 300);
  EXPECT_NE(android::WindowManager::fingerprint(dump), 0u);
}

TEST(VirtualLintTraversalTest, WideFlattenedForestTraversesInDocumentOrder) {
  VirtualNode page = vnode(VirtualRole::kWebArea, "page", {0, 0, 300, 400});
  for (int i = 0; i < 3000; ++i) {
    page.children.push_back(vnode(VirtualRole::kStaticText,
                                  "n" + std::to_string(i),
                                  {i % 280, (i / 280) % 380, 4, 4}));
  }
  const UiDump dump = dumpOfWebScreen(page);

  // Document (pre-order) order is preserved across the whole fan-out.
  int last = -1;
  int seen = 0;
  for (const UiNode& node : dump) {
    if (!node.isVirtual || node.virtualId.size() < 2 ||
        node.virtualId[0] != 'n' || std::isdigit(node.virtualId[1]) == 0) {
      continue;
    }
    const int idx = std::stoi(node.virtualId.substr(1));
    EXPECT_EQ(idx, last + 1);
    last = idx;
    ++seen;
  }
  EXPECT_EQ(seen, 3000);

  const analysis::LintEngine engine = analysis::LintEngine::withDefaultRules();
  EXPECT_GE(engine.run(dump, {360, 720}).nodesVisited, 3000);
}

// ------------------------------------------- generator + dataset hybrid

TEST(WebAuiGeneratorTest, MakeWebAuiEmitsVirtualInterstitialWithTruth) {
  apps::ScreenGenerator::Params params;
  params.frame = {360, 648};
  apps::ScreenGenerator gen(params, /*seed=*/771);
  apps::AuiSpec spec;
  spec.type = apps::AuiType::kAdvertisement;
  spec.host = apps::AuiHost::kWebView;
  spec.hasAgoBox = true;
  apps::GeneratedScreen screen = gen.makeAui(spec);

  ASSERT_TRUE(screen.truth.isAui);
  EXPECT_EQ(screen.truth.spec->host, apps::AuiHost::kWebView);
  ASSERT_EQ(screen.truth.upoBoxes.size(), 1u);
  ASSERT_GE(screen.truth.agoBoxes.size(), 1u);

  // The screen hosts exactly one WebView with a loaded page, and the truth
  // boxes are inside the window.
  WebView* web = nullptr;
  for (const auto& child : screen.root->children()) {
    if (auto* w = dynamic_cast<WebView*>(child.get())) web = w;
  }
  ASSERT_NE(web, nullptr);
  EXPECT_TRUE(web->hasPage());
  EXPECT_GT(web->virtualNodeCount(), 3);
  const Rect window{0, 0, params.frame.width, params.frame.height};
  for (const Rect& box : screen.truth.upoBoxes) {
    EXPECT_EQ(box, box.intersect(window));
  }
}

TEST(WebAuiGeneratorTest, ZeroProbabilityNeverEmitsWebHosts) {
  apps::ScreenGenerator::Params params;  // webViewAuiProb defaults to 0
  apps::ScreenGenerator gen(params, 99);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(gen.randomSpec().host, apps::AuiHost::kWebView);
  }
  apps::ScreenGenerator::Params webParams;
  webParams.webViewAuiProb = 1.0;
  apps::ScreenGenerator webGen(webParams, 99);
  int webCount = 0;
  for (int i = 0; i < 200; ++i) {
    if (webGen.randomSpec().host == apps::AuiHost::kWebView) ++webCount;
  }
  EXPECT_GT(webCount, 0);  // every third-party ad flips to a WebView
}

TEST(WebAuiGeneratorTest, DatasetWebViewQuotaIsExactAndGuarded) {
  dataset::DatasetConfig config;
  config.totalScreenshots = 100;

  const auto countWeb = [](const dataset::AuiDataset& data) {
    int web = 0;
    for (const dataset::SampleSpec& spec : data.specs()) {
      if (spec.spec.host == apps::AuiHost::kWebView) ++web;
    }
    return web;
  };

  const dataset::AuiDataset plain = dataset::AuiDataset::build(config);
  EXPECT_EQ(countWeb(plain), 0);

  config.webViewFrac = 0.5;
  const dataset::AuiDataset hybrid = dataset::AuiDataset::build(config);
  const int web = countWeb(hybrid);
  EXPECT_GT(web, 0);
  for (const dataset::SampleSpec& spec : hybrid.specs()) {
    if (spec.spec.host == apps::AuiHost::kWebView) {
      EXPECT_EQ(spec.spec.type, apps::AuiType::kAdvertisement);
    }
  }

  // A WebView sample renders and keeps its annotations.
  for (std::size_t i = 0; i < hybrid.size(); ++i) {
    if (hybrid.specs()[i].spec.host != apps::AuiHost::kWebView) continue;
    const dataset::Sample sample = hybrid.materialize(i);
    EXPECT_FALSE(sample.annotations.empty());
    EXPECT_EQ(sample.image.width(), config.screenSize.width);
    break;
  }
}

// ----------------------------------------- FraudDroid id coverage (sat 2)

UiNode uiNode(std::string className, std::string resourceId, Rect bounds,
              bool clickable, int depth) {
  UiNode node;
  node.className = std::move(className);
  node.resourceId = std::move(resourceId);
  node.boundsOnScreen = bounds;
  node.clickable = clickable;
  node.depth = depth;
  return node;
}

TEST(FraudDroidCoverageTest, EmptyIdsNeverMatchAndCoverageIsCounted) {
  // The degenerate pre-fix behavior: an empty resource id substring-matched
  // every token. This screen is AUI-shaped but carries no ids at all.
  UiDump dump;
  dump.push_back(uiNode("FrameLayout", "", {0, 0, 360, 720}, false, 0));
  dump.push_back(uiNode("View", "", {330, 10, 20, 20}, true, 1));  // tiny
  dump.push_back(uiNode("Button", "", {30, 300, 300, 120}, true, 1));
  const baselines::FraudDroidDetector detector;
  const baselines::FraudDroidResult result = detector.analyze(dump, {360, 720});
  EXPECT_FALSE(result.isAui);
  EXPECT_TRUE(result.upoBoxes.empty());
  EXPECT_EQ(result.nodesSeen, 3);
  EXPECT_EQ(result.nodesWithId, 0);
  EXPECT_DOUBLE_EQ(result.idCoverage(), 0.0);
}

TEST(FraudDroidCoverageTest, DuplicateIdAndBoundsCollapseToOneBox) {
  UiDump dump;
  dump.push_back(uiNode("FrameLayout", "root", {0, 0, 360, 720}, false, 0));
  // A duplicated DOM-style id with identical bounds (web pages reuse ids):
  // must count once, not inflate the flagged set.
  dump.push_back(uiNode("View", "btn_close", {330, 10, 20, 20}, true, 1));
  dump.push_back(uiNode("View", "btn_close", {330, 10, 20, 20}, true, 1));
  dump.push_back(uiNode("Button", "cta_open", {30, 300, 300, 120}, true, 1));
  const baselines::FraudDroidDetector detector;
  const baselines::FraudDroidResult result = detector.analyze(dump, {360, 720});
  EXPECT_TRUE(result.isAui);
  EXPECT_EQ(result.upoBoxes.size(), 1u);
  EXPECT_EQ(result.nodesSeen, 4);
  EXPECT_EQ(result.nodesWithId, 4);
  EXPECT_DOUBLE_EQ(result.idCoverage(), 1.0);
}

// ------------------------------------------ lint degradation on virtual

TEST(IdTokenRuleVirtualTest, MatchesVirtualIdsAndLabelsAtReducedScale) {
  UiDump dump;
  dump.push_back(uiNode("FrameLayout", "root", {0, 0, 360, 720}, false, 0));
  UiNode close = uiNode("android.view.View", "", {330, 10, 20, 20}, true, 1);
  close.isVirtual = true;
  close.virtualId = "ad-close-x";  // dismiss vocabulary in the DOM id
  dump.push_back(close);
  UiNode cta = uiNode("android.widget.Button", "", {30, 300, 300, 120}, true, 1);
  cta.isVirtual = true;
  cta.text = "OPEN NOW";  // CTA vocabulary only in the visible label
  dump.push_back(cta);

  analysis::LintEngine engine;
  engine.addRule(std::make_unique<analysis::IdTokenRule>());
  const analysis::LintReport report = engine.run(dump, {360, 720});
  ASSERT_TRUE(report.has("aui-id-hint"));
  // Reduced confidence: virtual evidence is scaled below the native 0.4.
  EXPECT_LT(report.best("aui-id-hint")->score, 0.4);
  EXPECT_GE(report.findings.size(), 2u);

  // Graceful, not silent: disabling virtual matching reverts to the old
  // pass-over, without touching native behavior.
  analysis::IdTokenRule::Config offConfig;
  offConfig.matchVirtualNodes = false;
  analysis::LintEngine offEngine;
  offEngine.addRule(std::make_unique<analysis::IdTokenRule>(offConfig));
  EXPECT_FALSE(offEngine.run(dump, {360, 720}).has("aui-id-hint"));
}

// ----------------------------- decoration through the host (tentpole)

class StubDetector : public cv::Detector {
 public:
  std::vector<cv::Detection> detect(const gfx::Bitmap&) const override {
    return {};
  }
  double costMacsPerImage() const override { return 1.0; }
};

TEST(VirtualDecorationTest, DecorateVirtualNodeTargetsBoundsThroughHost) {
  android::AndroidSystem system;
  StubDetector detector;
  core::DarpaService service(detector);
  system.accessibility.connect(service);

  const Rect frame = system.windowManager.appFrame(false);
  system.windowManager.showAppWindow(
      "com.web",
      webScreen({frame.width, frame.height}, {20, 40, 280, 400},
                interstitialPage({280, 400})),
      false);
  system.looper.runUntilIdle();

  const UiDump dump = system.windowManager.dumpTopWindow();
  const std::uint64_t before = android::WindowManager::fingerprint(dump);
  const UiNode* close = findVirtualNode(dump, "gwd-close");
  ASSERT_NE(close, nullptr);

  EXPECT_FALSE(service.decorateVirtualNode("missing-id"));
  EXPECT_FALSE(service.decorateVirtualNode(""));
  ASSERT_TRUE(service.decorateVirtualNode("gwd-close"));

  // The ring lands around the virtual node's on-screen bounds, carried
  // through the hosting native view and the §IV-D window offset.
  const std::vector<Rect> rects = service.decorationRects();
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0],
            close->boundsOnScreen.inflated(
                service.darpaConfig().decorationThickness + 1));

  // Decoration immunity extends to hybrid dumps: the decorated screen
  // fingerprints identically, so caches keyed on it stay warm.
  EXPECT_EQ(android::WindowManager::fingerprint(
                system.windowManager.dumpTopWindow()),
            before);
}

}  // namespace
}  // namespace darpa
