// Unit tests for the layout system (LinearLayout / FrameLayout).
#include <gtest/gtest.h>

#include <memory>

#include "android/layout.h"

namespace darpa::android {
namespace {

std::unique_ptr<View> sized(int w, int h) {
  auto v = std::make_unique<View>();
  v->setFrame({0, 0, w, h});
  return v;
}

TEST(LinearLayoutTest, VerticalStackingWithSpacing) {
  LinearLayout column(LinearLayout::Orientation::kVertical);
  column.setFrame({0, 0, 100, 300});
  column.setSpacing(10);
  auto* a = column.addLayoutChild(sized(80, 40), {});
  auto* b = column.addLayoutChild(sized(60, 50), {});
  column.performLayout();
  EXPECT_EQ(a->frame(), (Rect{0, 0, 80, 40}));
  EXPECT_EQ(b->frame(), (Rect{0, 50, 60, 50}));  // 40 + 10 spacing
}

TEST(LinearLayoutTest, HorizontalStacking) {
  LinearLayout row(LinearLayout::Orientation::kHorizontal);
  row.setFrame({0, 0, 300, 60});
  auto* a = row.addLayoutChild(sized(50, 40), {});
  auto* b = row.addLayoutChild(sized(70, 40), {});
  row.performLayout();
  EXPECT_EQ(a->frame().x, 0);
  EXPECT_EQ(b->frame().x, 50);
}

TEST(LinearLayoutTest, MatchParentCrossAxis) {
  LinearLayout column;
  column.setFrame({0, 0, 200, 100});
  ChildLayout cl;
  cl.width = SizeSpec::matchParent();
  cl.height = SizeSpec::fixed(30);
  auto* a = column.addLayoutChild(sized(10, 10), cl);
  column.performLayout();
  EXPECT_EQ(a->frame(), (Rect{0, 0, 200, 30}));
}

TEST(LinearLayoutTest, PaddingAndMargins) {
  LinearLayout column;
  column.setFrame({0, 0, 100, 100});
  column.setPadding(8);
  ChildLayout cl;
  cl.margin = 4;
  cl.width = SizeSpec::fixed(20);
  cl.height = SizeSpec::fixed(20);
  auto* a = column.addLayoutChild(sized(0, 0), cl);
  column.performLayout();
  EXPECT_EQ(a->frame(), (Rect{12, 12, 20, 20}));  // padding + margin
}

TEST(LinearLayoutTest, GravityCentersOnCrossAxis) {
  LinearLayout column;
  column.setFrame({0, 0, 100, 100});
  ChildLayout cl;
  cl.width = SizeSpec::fixed(40);
  cl.height = SizeSpec::fixed(20);
  cl.gravity = Gravity::kCenter;
  auto* a = column.addLayoutChild(sized(0, 0), cl);
  cl.gravity = Gravity::kEnd;
  auto* b = column.addLayoutChild(sized(0, 0), cl);
  column.performLayout();
  EXPECT_EQ(a->frame().x, 30);  // (100-40)/2
  EXPECT_EQ(b->frame().x, 60);  // 100-40
}

TEST(LinearLayoutTest, WeightsShareLeftover) {
  LinearLayout column;
  column.setFrame({0, 0, 100, 300});
  ChildLayout fixedChild;
  fixedChild.height = SizeSpec::fixed(100);
  fixedChild.width = SizeSpec::matchParent();
  column.addLayoutChild(sized(0, 0), fixedChild);
  ChildLayout w1;
  w1.weight = 1.0;
  w1.width = SizeSpec::matchParent();
  auto* a = column.addLayoutChild(sized(0, 0), w1);
  ChildLayout w3 = w1;
  w3.weight = 3.0;
  auto* b = column.addLayoutChild(sized(0, 0), w3);
  column.performLayout();
  EXPECT_EQ(a->frame().height, 50);   // (300-100) * 1/4
  EXPECT_EQ(b->frame().height, 150);  // (300-100) * 3/4
}

TEST(FrameLayoutTest, GravityPlacesCorners) {
  FrameLayout frame;
  frame.setFrame({0, 0, 200, 100});
  ChildLayout tl;
  tl.width = SizeSpec::fixed(20);
  tl.height = SizeSpec::fixed(20);
  tl.gravity = Gravity::kStart;
  auto* a = frame.addLayoutChild(sized(0, 0), tl);
  ChildLayout br = tl;
  br.gravity = Gravity::kEnd;
  auto* b = frame.addLayoutChild(sized(0, 0), br);
  ChildLayout center = tl;
  center.gravity = Gravity::kCenter;
  auto* c = frame.addLayoutChild(sized(0, 0), center);
  frame.performLayout();
  EXPECT_EQ(a->frame(), (Rect{0, 0, 20, 20}));
  EXPECT_EQ(b->frame(), (Rect{180, 80, 20, 20}));
  EXPECT_EQ(c->frame(), (Rect{90, 40, 20, 20}));
}

TEST(FrameLayoutTest, MatchParentFillsContainer) {
  FrameLayout frame;
  frame.setFrame({0, 0, 120, 80});
  frame.setPadding(10);
  ChildLayout fill;
  fill.width = SizeSpec::matchParent();
  fill.height = SizeSpec::matchParent();
  auto* a = frame.addLayoutChild(sized(0, 0), fill);
  frame.performLayout();
  EXPECT_EQ(a->frame(), (Rect{10, 10, 100, 60}));
}

TEST(LayoutTest, NestedContainersLayoutRecursively) {
  LinearLayout outer;
  outer.setFrame({0, 0, 200, 200});
  ChildLayout rowSpec;
  rowSpec.width = SizeSpec::matchParent();
  rowSpec.height = SizeSpec::fixed(50);
  auto row = std::make_unique<LinearLayout>(
      LinearLayout::Orientation::kHorizontal);
  LinearLayout* rowPtr = row.get();
  outer.addLayoutChild(std::move(row), rowSpec);
  ChildLayout cell;
  cell.width = SizeSpec::fixed(40);
  cell.height = SizeSpec::matchParent();
  auto* inner = rowPtr->addLayoutChild(sized(0, 0), cell);
  outer.performLayout();
  EXPECT_EQ(rowPtr->frame(), (Rect{0, 0, 200, 50}));
  EXPECT_EQ(inner->frame(), (Rect{0, 0, 40, 50}));
}

TEST(LayoutTest, ClassNamesForDumps) {
  EXPECT_EQ(LinearLayout{}.className(), "LinearLayout");
  EXPECT_EQ(FrameLayout{}.className(), "FrameLayout");
}

TEST(LayoutTest, FixedClampedToAvailable) {
  LinearLayout column;
  column.setFrame({0, 0, 50, 50});
  ChildLayout huge;
  huge.width = SizeSpec::fixed(500);
  huge.height = SizeSpec::fixed(20);
  auto* a = column.addLayoutChild(sized(0, 0), huge);
  column.performLayout();
  EXPECT_LE(a->frame().width, 50);
}

}  // namespace
}  // namespace darpa::android
