// Unit tests for the staged analysis pipeline: the work ledger, the screen
// fingerprint, and the verdict cache (hits, invalidation, LRU bounds,
// trusted-package bypass, screenshot-failure accounting).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "android/system.h"
#include "core/darpa_service.h"
#include "core/decoration.h"
#include "core/pipeline.h"
#include "core/work_ledger.h"

namespace darpa::core {
namespace {

class FakeDetector : public cv::Detector {
 public:
  std::vector<cv::Detection> detections;
  mutable int calls = 0;

  std::vector<cv::Detection> detect(const gfx::Bitmap&) const override {
    ++calls;
    return detections;
  }
  double costMacsPerImage() const override { return 1.0e6; }
};

/// Deferred executor under manual control: parks every request until the
/// test calls flush(), which runs the model and delivers each completion
/// through the reply looper (the deferred-backend delivery path).
class ManualDeferredExecutor : public DetectionExecutor {
 public:
  void submit(DetectionRequest request) override {
    parked_.push_back(std::move(request));
  }
  void flush() override {
    std::vector<DetectionRequest> work;
    work.swap(parked_);
    for (DetectionRequest& request : work) {
      auto detections = request.detector->detect(request.frame->pixels());
      request.frame.reset();
      if (request.replyLooper != nullptr) {
        request.replyLooper->post(
            [cb = std::move(request.onComplete),
             dets = std::move(detections)]() mutable {
              cb(std::move(dets), 1, DetectionTiming{});
            });
      } else {
        request.onComplete(std::move(detections), 1, DetectionTiming{});
      }
    }
  }
  [[nodiscard]] std::size_t pendingCount() const override {
    return parked_.size();
  }
  [[nodiscard]] bool synchronous() const override { return false; }
  [[nodiscard]] const char* name() const override { return "manual"; }

 private:
  std::vector<DetectionRequest> parked_;
};

struct Harness {
  android::AndroidSystem system;
  FakeDetector detector;
  DarpaService service;

  explicit Harness(DarpaConfig config = {},
                   android::WindowManager::Config wmConfig = {})
      : system(wmConfig), service(detector, config) {
    system.accessibility.connect(service);
  }

  /// Replaces the top app window with `root` under `package` and lets the
  /// debounce timer fire.
  void showAndSettle(const std::string& package,
                     std::unique_ptr<android::View> root) {
    if (system.windowManager.appWindowCount() > 0) {
      system.windowManager.popAppWindow();
    }
    system.windowManager.showAppWindow(package, std::move(root), false);
    system.looper.runUntilIdle();
  }
};

cv::Detection upoAt(Rect box) {
  return cv::Detection{box, dataset::BoxLabel::kUpo, 0.9f};
}

/// A deterministic screen; different variants differ in child geometry.
std::unique_ptr<android::View> makeScreen(int variant) {
  auto root = std::make_unique<android::View>();
  root->setBackground(colors::kWhite);
  auto button = std::make_unique<android::Button>();
  button->setFrame({10 + 10 * variant, 50, 60, 24});
  root->addChild(std::move(button));
  return root;
}

// ------------------------------------------------------------ WorkLedger

TEST(WorkLedgerTest, TalliesRunsSkipsAndCpu) {
  WorkLedger ledger;
  ledger.recordEvent(ms(10));
  ledger.beginAnalysis(ms(200), ms(190));
  ledger.recordRun(Stage::kScreenshot, 2.2);
  ledger.recordRun(Stage::kDetect, 11.0);
  ledger.recordSkip(Stage::kLint);
  ledger.recordDecoration();
  ledger.recordBypass();
  ledger.endAnalysis();
  EXPECT_EQ(ledger.tally(Stage::kEvent).runs, 1);
  EXPECT_EQ(ledger.tally(Stage::kScreenshot).runs, 1);
  EXPECT_EQ(ledger.tally(Stage::kLint).skips, 1);
  EXPECT_EQ(ledger.tally(Stage::kAct).runs, 2);  // decoration + bypass
  EXPECT_EQ(ledger.decorations(), 1);
  EXPECT_EQ(ledger.bypassClicks(), 1);
  EXPECT_EQ(ledger.analyses(), 1);
  EXPECT_EQ(ledger.totalDebounceLatency().count, 190);
  EXPECT_DOUBLE_EQ(ledger.analysisCpuMs(),
                   ledger.totalCpuMs() - ledger.tally(Stage::kEvent).cpuMs);
  // The pass's modeled latency covers exactly its in-analysis stages.
  EXPECT_DOUBLE_EQ(ledger.lastAnalysisCpuMs(), ledger.analysisCpuMs());
}

TEST(WorkLedgerTest, MergeAccumulatesCounters) {
  WorkLedger a;
  a.recordRuns(Stage::kDetect, 3, 10.0);
  a.recordCacheHit();
  WorkLedger b;
  b.recordRuns(Stage::kDetect, 2, 10.0);
  b.recordCacheMiss();
  a += b;
  EXPECT_EQ(a.tally(Stage::kDetect).runs, 5);
  EXPECT_DOUBLE_EQ(a.tally(Stage::kDetect).cpuMs, 50.0);
  EXPECT_EQ(a.cacheHits(), 1);
  EXPECT_EQ(a.cacheMisses(), 1);
}

TEST(WorkLedgerTest, ChromeTraceIsWellFormedAndBounded) {
  WorkLedger ledger;
  ledger.setTraceEnabled(true, /*maxEvents=*/3);
  ledger.beginAnalysis(ms(1000));
  ledger.recordRun(Stage::kScreenshot, 2.0);
  ledger.recordRun(Stage::kDetect, 10.0);
  ledger.recordRun(Stage::kVerdict, 0.02);
  ledger.recordRun(Stage::kAct, 45.0);  // beyond capacity: dropped
  ledger.endAnalysis();
  EXPECT_EQ(ledger.traceEventCount(), 3u);
  EXPECT_EQ(ledger.tally(Stage::kAct).runs, 1);  // counters unaffected
  std::ostringstream out;
  ledger.writeChromeTrace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"screenshot\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"detect\""), std::string::npos);
  EXPECT_EQ(json.find("\"name\": \"act\""), std::string::npos);
  // The two stages are laid back-to-back: detect starts where screenshot
  // ends (1,000,000 us + 2,000 us).
  EXPECT_NE(json.find("\"ts\": 1002000.000"), std::string::npos);
}

// ---------------------------------------------------------- VerdictCache

TEST(VerdictCacheTest, LruEvictsOldestAndRefreshesOnFind) {
  VerdictCache cache(2);
  cache.put(1, {true, {}});
  cache.put(2, {false, {}});
  EXPECT_NE(cache.find(1), nullptr);  // refresh 1: now 2 is the LRU entry
  cache.put(3, {true, {}});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.find(2), nullptr);  // 2 was evicted
  ASSERT_NE(cache.find(1), nullptr);
  EXPECT_TRUE(cache.find(1)->isAui);
  ASSERT_NE(cache.find(3), nullptr);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(1), nullptr);
}

TEST(VerdictCacheTest, ZeroCapacityStoresNothing) {
  VerdictCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.put(1, {true, {}});
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(1), nullptr);
  // A disabled cache never counts phantom evictions either.
  EXPECT_EQ(cache.evictions(), 0);
  cache.clear();  // clearing an empty disabled cache is a no-op, not a fault
  EXPECT_EQ(cache.size(), 0u);
}

TEST(VerdictCacheTest, CapacityOneHoldsExactlyTheLastKey) {
  VerdictCache cache(1);
  EXPECT_TRUE(cache.enabled());
  cache.put(1, {true, {upoAt({1, 2, 3, 4})}});
  ASSERT_NE(cache.find(1), nullptr);
  cache.put(2, {false, {}});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.find(1), nullptr);
  ASSERT_NE(cache.find(2), nullptr);
  EXPECT_FALSE(cache.find(2)->isAui);
  // Re-putting the resident key refreshes in place: no eviction churn.
  cache.put(2, {true, {upoAt({5, 6, 7, 8})}});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 1);
  ASSERT_NE(cache.find(2), nullptr);
  EXPECT_TRUE(cache.find(2)->isAui);
}

TEST(VerdictCacheTest, RepeatedFindPutOfSameKeyKeepsLruOrderHonest) {
  VerdictCache cache(2);
  cache.put(1, {true, {}});
  cache.put(2, {false, {}});
  // Hammer key 2 with finds and re-puts: it must stay ONE entry, and the
  // churn must not perturb key 1's slot or fabricate evictions.
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(cache.find(2), nullptr);
    cache.put(2, {i % 2 == 0, {}});
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0);
  // After the churn, 1 is the least recently used: the next insert evicts
  // it and only it.
  cache.put(3, {true, {}});
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.find(1), nullptr);
  ASSERT_NE(cache.find(2), nullptr);
  EXPECT_FALSE(cache.find(2)->isAui);  // the last re-put (i=7) won
  EXPECT_NE(cache.find(3), nullptr);
}

// ----------------------------------------------------------- fingerprint

TEST(FingerprintTest, StableForIdenticalScreensAcrossWindows) {
  android::WindowManager wm;
  wm.showAppWindow("com.app", makeScreen(1), false);
  const std::uint64_t first = wm.topWindowFingerprint();
  wm.popAppWindow();
  wm.showAppWindow("com.app", makeScreen(1), false);
  EXPECT_EQ(wm.topWindowFingerprint(), first);
  wm.popAppWindow();
  wm.showAppWindow("com.app", makeScreen(2), false);
  EXPECT_NE(wm.topWindowFingerprint(), first);
}

TEST(FingerprintTest, IgnoresOverlaysAndDecorationNodes) {
  android::WindowManager wm;
  wm.showAppWindow("com.app", makeScreen(3), false);
  const std::uint64_t clean = wm.topWindowFingerprint();
  // Overlay views (DARPA's decorations live there) are not part of the app
  // window dump, so they cannot shift the fingerprint.
  wm.addOverlay(std::make_unique<DecorationView>(colors::kGreen, 3),
                {20, 20, 40, 40});
  EXPECT_EQ(wm.topWindowFingerprint(), clean);
  // Defense in depth: even a decoration node spliced into the dump itself
  // is skipped by the hash.
  android::UiDump dump = wm.dumpTopWindow();
  android::UiNode decoration;
  decoration.className = "DarpaDecorationView";
  decoration.boundsOnScreen = {20, 20, 40, 40};
  dump.push_back(decoration);
  EXPECT_EQ(android::WindowManager::fingerprint(dump), clean);
}

// -------------------------------------------------- pipeline + cache

TEST(PipelineCacheTest, RepeatScreenServedFromCache) {
  Harness h;
  h.detector.detections = {upoAt({30, 60, 20, 20})};
  h.showAndSettle("com.app", makeScreen(0));
  EXPECT_EQ(h.detector.calls, 1);
  EXPECT_EQ(h.service.stats().screenshotsTaken, 1);
  EXPECT_TRUE(h.service.lastWasAui());

  // Same screen re-stabilizes: the verdict comes from the cache, without
  // lint, screenshot, or CV work — but with identical detections.
  h.system.windowManager.notifyContentChanged();
  h.system.looper.runUntilIdle();
  EXPECT_EQ(h.service.stats().analysesRun, 2);
  EXPECT_EQ(h.service.stats().verdictCacheHits, 1);
  EXPECT_EQ(h.detector.calls, 1);
  EXPECT_EQ(h.service.stats().screenshotsTaken, 1);
  EXPECT_TRUE(h.service.lastWasAui());
  ASSERT_EQ(h.service.lastDetections().size(), 1u);
  EXPECT_EQ(h.service.lastDetections()[0].box, Rect({30, 60, 20, 20}));
  // The ledger shows the skip routing.
  EXPECT_GE(h.service.ledger().tally(Stage::kScreenshot).skips, 1);
  EXPECT_GE(h.service.ledger().tally(Stage::kDetect).skips, 1);
  EXPECT_EQ(h.service.ledger().cacheHits(), 1);
}

TEST(PipelineCacheTest, RealScreenChangeInvalidates) {
  Harness h;
  h.showAndSettle("com.app", makeScreen(0));
  EXPECT_EQ(h.detector.calls, 1);
  // A structurally different screen must re-run the full pipeline.
  h.showAndSettle("com.app", makeScreen(1));
  EXPECT_EQ(h.detector.calls, 2);
  EXPECT_EQ(h.service.stats().verdictCacheHits, 0);
  EXPECT_EQ(h.service.stats().screenshotsTaken, 2);
}

TEST(PipelineCacheTest, OwnDecorationsDoNotPoisonCache) {
  Harness h;
  h.detector.detections = {upoAt({30, 60, 20, 20})};
  h.showAndSettle("com.app", makeScreen(0));
  EXPECT_EQ(h.system.windowManager.overlayCount(), 1u);  // decorated
  // The decorated screen re-stabilizes. If DARPA's own overlay entered the
  // fingerprint, this would miss the cache (decorations are cleared before
  // each pass) and CV would re-run. It must hit.
  h.system.windowManager.notifyContentChanged();
  h.system.looper.runUntilIdle();
  EXPECT_EQ(h.service.stats().verdictCacheHits, 1);
  EXPECT_EQ(h.detector.calls, 1);
  // The cached AUI verdict redraws the decoration (it was cleared).
  EXPECT_EQ(h.system.windowManager.overlayCount(), 1u);
}

TEST(PipelineCacheTest, LruEvictionStaysBounded) {
  DarpaConfig config;
  config.verdictCacheCapacity = 2;
  Harness h(config);
  for (int round = 0; round < 2; ++round) {
    for (int variant = 0; variant < 3; ++variant) {
      h.showAndSettle("com.app", makeScreen(variant));
      EXPECT_LE(h.service.pipeline().cache().size(), 2u);
    }
  }
  EXPECT_EQ(h.service.pipeline().cache().capacity(), 2u);
  EXPECT_GT(h.service.pipeline().cache().evictions(), 0);
  // Three screens cycling through a 2-entry cache: every revisit was
  // already evicted, so the detector ran every time.
  EXPECT_EQ(h.detector.calls, 6);
  EXPECT_EQ(h.service.stats().verdictCacheHits, 0);
}

TEST(PipelineCacheTest, TrustedPackageNeverTouchesCacheOrPipeline) {
  DarpaConfig config;
  config.trustedPackages = {"com.trusted"};
  Harness h(config);
  h.showAndSettle("com.untrusted", makeScreen(0));
  const auto analysesBefore = h.service.stats().analysesRun;
  EXPECT_GE(analysesBefore, 1);
  const std::size_t cacheBefore = h.service.pipeline().cache().size();

  // A trusted app reaches the foreground. Its events are filtered at
  // delivery, and even a directly forced analysis must bail before the
  // cache: trusted screens are neither probed nor seeded.
  h.showAndSettle("com.trusted", makeScreen(1));
  h.service.analyzeNow();
  EXPECT_EQ(h.service.stats().analysesRun, analysesBefore);
  EXPECT_EQ(h.service.pipeline().cache().size(), cacheBefore);
  EXPECT_EQ(h.service.stats().verdictCacheHits, 0);
}

TEST(PipelineCacheTest, FailedScreenshotIsNotCountedOrCached) {
  // A 0x0 display: takeScreenshot() yields an empty bitmap, the §IV-B
  // capture failure. The analysis runs but takes no screenshot, bills no
  // screenshot work, runs no CV, and must not seed the cache with the
  // evidence-free verdict.
  Harness h({}, android::WindowManager::Config{{0, 0}, 0, 0});
  h.service.analyzeNow();
  EXPECT_EQ(h.service.stats().analysesRun, 1);
  EXPECT_EQ(h.service.stats().screenshotsTaken, 0);
  EXPECT_EQ(h.detector.calls, 0);
  EXPECT_EQ(h.service.ledger().tally(Stage::kScreenshot).runs, 0);
  EXPECT_EQ(h.service.pipeline().cache().size(), 0u);
  h.service.analyzeNow();
  EXPECT_EQ(h.service.stats().verdictCacheHits, 0);
}

TEST(PipelineCacheTest, ClearDuringInFlightCoalescedDetectStaysCoherent) {
  // Two passes of the same fingerprint through a deferred backend: the
  // second parks behind the first's in-flight detect. clear()ing the cache
  // while the detect is out must not strand the parked pass or leave the
  // cache stale — the completion reseeds the fresh verdict and the
  // replayed follower resolves against it, still without a second model
  // run.
  ManualDeferredExecutor executor;
  DarpaConfig config;
  config.executor = &executor;
  Harness h(config);
  h.detector.detections = {upoAt({30, 60, 20, 20})};

  h.showAndSettle("com.app", makeScreen(0));  // submits, detect parked
  EXPECT_EQ(executor.pendingCount(), 1u);
  h.system.windowManager.notifyContentChanged();
  h.system.looper.runUntilIdle();  // same fingerprint: coalesces in-flight
  EXPECT_EQ(executor.pendingCount(), 1u);
  EXPECT_EQ(h.detector.calls, 0);

  h.service.pipeline().cache().clear();  // mid-flight invalidation
  EXPECT_EQ(h.service.pipeline().cache().size(), 0u);

  executor.flush();
  h.system.looper.runUntilIdle();  // deliver completion + replay follower

  // One model run served both passes, and the cleared cache holds exactly
  // the reseeded verdict (the follower's replay was its cache hit).
  EXPECT_EQ(h.detector.calls, 1);
  EXPECT_EQ(h.service.stats().analysesRun, 2);
  EXPECT_EQ(h.service.stats().verdictCacheHits, 1);
  EXPECT_EQ(h.service.pipeline().cache().size(), 1u);
  EXPECT_TRUE(h.service.lastWasAui());
  ASSERT_EQ(h.service.lastDetections().size(), 1u);
  EXPECT_EQ(h.service.lastDetections()[0].box, Rect({30, 60, 20, 20}));
}

// ------------------------------------------- anchor-overlay measurement

TEST(ActPathTest, DecorationPathMeasuresAnchorOnce) {
  Harness h;
  h.detector.detections = {upoAt({30, 60, 20, 20})};
  h.showAndSettle("com.app", makeScreen(0));
  EXPECT_EQ(h.service.stats().anchorMeasurements, 1);
}

TEST(ActPathTest, AutoBypassSkipsAnchorMeasurement) {
  DarpaConfig config;
  config.autoBypass = true;
  Harness h(config);
  h.detector.detections = {upoAt({30, 60, 20, 20})};
  h.showAndSettle("com.app", makeScreen(0));
  EXPECT_GT(h.service.stats().auisFlagged, 0);
  EXPECT_EQ(h.service.stats().anchorMeasurements, 0);
}

TEST(ActPathTest, FlaggingWithoutDecorationSkipsAnchor) {
  DarpaConfig config;
  config.decorate = false;
  Harness h(config);
  h.detector.detections = {upoAt({30, 60, 20, 20})};
  h.showAndSettle("com.app", makeScreen(0));
  EXPECT_GT(h.service.stats().auisFlagged, 0);
  EXPECT_EQ(h.service.stats().anchorMeasurements, 0);
}

}  // namespace
}  // namespace darpa::core
