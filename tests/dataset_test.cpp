// Unit tests for the dataset builder: Table I/II quotas, split sizes,
// deterministic materialization, text masking, benign negatives.
#include <gtest/gtest.h>

#include <map>

#include "dataset/dataset.h"

namespace darpa::dataset {
namespace {

DatasetConfig smallConfig(int total = 200, std::uint64_t seed = 5) {
  DatasetConfig config;
  config.totalScreenshots = total;
  config.seed = seed;
  return config;
}

TEST(DatasetTest, PaperScaleQuotasMatchTableI) {
  const AuiDataset data = AuiDataset::build(smallConfig(1072, 2023));
  std::map<apps::AuiType, int> counts;
  for (const SampleSpec& spec : data.specs()) ++counts[spec.spec.type];
  for (apps::AuiType type : apps::kAllAuiTypes) {
    EXPECT_EQ(counts[type], apps::auiTypePaperCount(type))
        << apps::auiTypeName(type);
  }
}

TEST(DatasetTest, PaperScaleSplitMatchesTableII) {
  const AuiDataset data = AuiDataset::build(smallConfig(1072, 2023));
  EXPECT_EQ(data.trainIndices().size(), 642u);
  EXPECT_EQ(data.valIndices().size(), 215u);
  EXPECT_EQ(data.testIndices().size(), 215u);
  // Box cardinalities: 744 AGO / 1,103 UPO over the whole dataset.
  std::vector<std::size_t> all;
  for (std::size_t i = 0; i < data.size(); ++i) all.push_back(i);
  const auto counts = data.countBoxes(all);
  EXPECT_EQ(counts.screenshots, 1072);
  EXPECT_EQ(counts.ago, 744);
  EXPECT_EQ(counts.upo, 1103);
}

TEST(DatasetTest, SplitsPartitionTheDataset) {
  const AuiDataset data = AuiDataset::build(smallConfig());
  std::vector<bool> seen(data.size(), false);
  for (const auto& indices :
       {data.trainIndices(), data.valIndices(), data.testIndices()}) {
    for (std::size_t idx : indices) {
      EXPECT_FALSE(seen[idx]) << "index in two splits";
      seen[idx] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(DatasetTest, LayoutQuotasScale) {
  const AuiDataset data = AuiDataset::build(smallConfig(500, 9));
  int central = 0, corner = 0;
  for (const SampleSpec& spec : data.specs()) {
    central += spec.spec.agoCentral;
    corner += spec.spec.upoCorner;
  }
  EXPECT_NEAR(central / 500.0, 0.946, 0.01);
  EXPECT_NEAR(corner / 500.0, 0.731, 0.01);
}

TEST(DatasetTest, AdsAreThirdPartyOthersFirstParty) {
  const AuiDataset data = AuiDataset::build(smallConfig());
  for (const SampleSpec& spec : data.specs()) {
    if (spec.spec.type == apps::AuiType::kAdvertisement) {
      EXPECT_EQ(spec.spec.host, apps::AuiHost::kThirdParty);
    } else {
      EXPECT_EQ(spec.spec.host, apps::AuiHost::kFirstParty);
      EXPECT_TRUE(spec.spec.hasAgoBox);  // only ads may lack an AGO box
    }
  }
}

TEST(DatasetTest, MaterializeIsDeterministic) {
  const AuiDataset data = AuiDataset::build(smallConfig());
  const Sample a = data.materialize(7);
  const Sample b = data.materialize(7);
  EXPECT_EQ(a.image, b.image);
  ASSERT_EQ(a.annotations.size(), b.annotations.size());
  for (std::size_t i = 0; i < a.annotations.size(); ++i) {
    EXPECT_EQ(a.annotations[i].box, b.annotations[i].box);
    EXPECT_EQ(a.annotations[i].label, b.annotations[i].label);
  }
}

TEST(DatasetTest, DifferentSamplesDiffer) {
  const AuiDataset data = AuiDataset::build(smallConfig());
  EXPECT_NE(data.materialize(0).image, data.materialize(1).image);
}

TEST(DatasetTest, AnnotationsInsideScreen) {
  const AuiDataset data = AuiDataset::build(smallConfig(60, 21));
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Sample sample = data.materialize(i);
    const Rect screen = sample.image.bounds();
    for (const Annotation& a : sample.annotations) {
      EXPECT_FALSE(a.box.empty());
      EXPECT_TRUE(screen.contains(a.box))
          << "sample " << i << " box " << a.box;
    }
  }
}

TEST(DatasetTest, AnnotationCountsMatchSpec) {
  const AuiDataset data = AuiDataset::build(smallConfig(80, 31));
  for (std::size_t i = 0; i < data.size(); ++i) {
    const Sample sample = data.materialize(i);
    int ago = 0, upo = 0;
    for (const Annotation& a : sample.annotations) {
      (a.label == BoxLabel::kAgo ? ago : upo)++;
    }
    EXPECT_EQ(ago, sample.spec.hasAgoBox ? 1 : 0);
    EXPECT_EQ(upo, sample.spec.numUpos);
  }
}

TEST(DatasetTest, TextMaskingChangesPixelsKeepsAnnotations) {
  const AuiDataset data = AuiDataset::build(smallConfig());
  const Sample plain = data.materialize(3, false);
  const Sample masked = data.materialize(3, true);
  EXPECT_NE(plain.image, masked.image);
  ASSERT_EQ(plain.annotations.size(), masked.annotations.size());
  for (std::size_t i = 0; i < plain.annotations.size(); ++i) {
    EXPECT_EQ(plain.annotations[i].box, masked.annotations[i].box);
  }
}

TEST(DatasetTest, BenignSamplesHaveNoAnnotations) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Sample benign = materializeBenign(seed, {360, 720}, false);
    EXPECT_TRUE(benign.annotations.empty());
    EXPECT_FALSE(benign.image.empty());
    const Sample hard = materializeBenign(seed, {360, 720}, true);
    EXPECT_TRUE(hard.annotations.empty());
  }
}

TEST(DatasetTest, GhostQuotaApproximate) {
  const AuiDataset data = AuiDataset::build(smallConfig(400, 13));
  int ghosts = 0;
  for (const SampleSpec& spec : data.specs()) ghosts += spec.spec.ghostUpo;
  EXPECT_NEAR(ghosts / 400.0, data.config().ghostUpoProb, 0.01);
}

TEST(DatasetTest, CollectTextRectsFindsTextViews) {
  android::View root;
  root.setFrame({0, 0, 100, 100});
  auto text = std::make_unique<android::TextView>();
  text->setFrame({10, 10, 50, 20});
  root.addChild(std::move(text));
  auto plain = std::make_unique<android::View>();
  plain->setFrame({10, 50, 50, 20});
  root.addChild(std::move(plain));
  const std::vector<Rect> rects = collectTextRects(root, {0, 24});
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], (Rect{10, 34, 50, 20}));
}

}  // namespace
}  // namespace darpa::dataset
