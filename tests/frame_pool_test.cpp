// Tests for the zero-copy perception data plane: FramePool recycling,
// quota/cap backpressure, ScreenFrame immutability against later screen
// mutations, fingerprint stability across pooled reuse, and thread safety
// of concurrent acquire/release (exercised under TSan by scripts/ci.sh).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "android/view.h"
#include "android/window_manager.h"
#include "core/screen_frame.h"
#include "gfx/frame_pool.h"

namespace darpa::gfx {
namespace {

TEST(FramePoolTest, ReusesSlabAfterRelease) {
  FramePool pool;
  {
    const Bitmap first = pool.acquire(8, 8, colors::kRed);
    EXPECT_EQ(first.source(), SlabSource::kPoolFresh);
    EXPECT_EQ(first.at(7, 7), colors::kRed);
  }  // slab parks
  const Bitmap second = pool.acquire(8, 8, colors::kBlue);
  EXPECT_EQ(second.source(), SlabSource::kPoolReused);
  // A recycled slab is refilled: contents are identical to a fresh buffer.
  EXPECT_EQ(second.at(0, 0), colors::kBlue);
  EXPECT_EQ(second.at(7, 7), colors::kBlue);

  const FramePool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2);
  EXPECT_EQ(stats.poolMisses, 1);
  EXPECT_EQ(stats.poolHits, 1);
  EXPECT_EQ(stats.backpressured, 0);
  EXPECT_EQ(stats.releases, 1);
  EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
}

TEST(FramePoolTest, SizeClassesShareSlabsAcrossNearbySizes) {
  FramePool pool;
  { const Bitmap a = pool.acquire(60, 60); }  // 3600 px -> 4096 class
  // 4000 px rounds to the same class, so the parked slab serves it.
  const Bitmap b = pool.acquire(50, 80);
  EXPECT_EQ(b.source(), SlabSource::kPoolReused);
  EXPECT_EQ(b.pixelCount(), 4000u);
  EXPECT_EQ(b.at(49, 79), colors::kBlack);
}

TEST(FramePoolTest, SessionQuotaFallsBackToHeapAndRecovers) {
  // One 64x64 slab (4096 px * 4 B) exactly fills the per-session quota.
  FramePool pool({/*maxBytes=*/0, /*sessionQuotaBytes=*/4096 * sizeof(Color)});
  Bitmap held = pool.acquire(64, 64, colors::kBlack, /*sessionTag=*/7);
  EXPECT_EQ(held.source(), SlabSource::kPoolFresh);

  // Same session over quota: plain heap, never blocking.
  const Bitmap overflow = pool.acquire(64, 64, colors::kRed, /*sessionTag=*/7);
  EXPECT_EQ(overflow.source(), SlabSource::kHeap);
  EXPECT_EQ(overflow.at(0, 0), colors::kRed);  // contents unaffected
  EXPECT_EQ(pool.stats().backpressured, 1);

  // Quotas are per session: another tag still gets pooled slabs.
  const Bitmap other = pool.acquire(64, 64, colors::kBlack, /*sessionTag=*/8);
  EXPECT_EQ(other.source(), SlabSource::kPoolFresh);

  // Releasing the held slab frees the quota; the session pools again.
  held = Bitmap{};
  const Bitmap after = pool.acquire(64, 64, colors::kBlack, /*sessionTag=*/7);
  EXPECT_EQ(after.source(), SlabSource::kPoolReused);
  EXPECT_EQ(pool.stats().backpressured, 1);  // no new fallback
}

TEST(FramePoolTest, MaxBytesCapsFootprintButParkedSlabsStillServe) {
  // Cap fits exactly one 64x64 slab.
  FramePool pool({/*maxBytes=*/4096 * sizeof(Color), /*sessionQuotaBytes=*/0});
  Bitmap held = pool.acquire(64, 64);
  EXPECT_EQ(held.source(), SlabSource::kPoolFresh);

  const Bitmap overflow = pool.acquire(64, 64);
  EXPECT_EQ(overflow.source(), SlabSource::kHeap);
  EXPECT_EQ(pool.stats().backpressured, 1);

  // A parked slab is already inside the footprint, so reusing it never
  // counts against the cap.
  held = Bitmap{};
  const Bitmap reused = pool.acquire(64, 64);
  EXPECT_EQ(reused.source(), SlabSource::kPoolReused);

  const FramePool::Stats stats = pool.stats();
  EXPECT_LE(stats.highWaterBytes, pool.options().maxBytes);
}

TEST(FramePoolTest, StatsTrackFootprintGauges) {
  FramePool pool;
  const std::size_t slabBytes = 4096 * sizeof(Color);
  {
    const Bitmap a = pool.acquire(64, 64);
    EXPECT_EQ(pool.stats().outstandingBytes, slabBytes);
    EXPECT_EQ(pool.stats().parkedBytes, 0u);
  }
  EXPECT_EQ(pool.stats().outstandingBytes, 0u);
  EXPECT_EQ(pool.stats().parkedBytes, slabBytes);
  EXPECT_EQ(pool.stats().highWaterBytes, slabBytes);
  const Bitmap b = pool.acquire(64, 64);
  EXPECT_EQ(pool.stats().reusedBytes,
            static_cast<std::int64_t>(b.pixelBytes()));
}

// A held ScreenFrame must not see screen mutations that happen after its
// capture — in particular DARPA's own decoration overlays, which are drawn
// while the frame may still be parked in a deferred detect batch.
TEST(FramePoolTest, FrameIsImmutableWhileDecorationIsDrawn) {
  FramePool pool;
  android::WindowManager wm;
  wm.setFramePool(&pool, /*sessionTag=*/0);
  auto content = std::make_unique<android::View>();
  content->setBackground(colors::kWhite);
  wm.showAppWindow("com.test.app", std::move(content), /*fullscreen=*/true);

  auto frame = std::make_shared<core::ScreenFrame>(wm.dumpTopWindow(),
                                                   "com.test.app");
  frame->attachPixels(wm.composite());
  const Color center = frame->pixels().at(180, 360);
  EXPECT_EQ(center, colors::kWhite);

  // Decorate the screen: a loud overlay across the middle.
  auto overlay = std::make_unique<android::View>();
  overlay->setBackground(colors::kGreen);
  android::LayoutParams params;
  params.x = 100;
  params.y = 300;
  params.width = 160;
  params.height = 120;
  wm.addOverlay(std::move(overlay), params);

  const Bitmap decorated = wm.composite();
  EXPECT_EQ(decorated.at(180, 360), colors::kGreen);
  // The held frame still shows the clean capture: the decorated composite
  // went into a different slab, not the frame's.
  EXPECT_EQ(frame->pixels().at(180, 360), colors::kWhite);
  EXPECT_NE(decorated, frame->pixels());
}

// Property: recycling buffers through the pool must never perturb what a
// pass perceives. N rounds of capture -> frame -> release produce the same
// fingerprint and the same pixels every round, even though every round
// after the first runs on a recycled slab.
TEST(FramePoolTest, FingerprintsStableAcrossPooledReuse) {
  FramePool pool;
  android::WindowManager wm;
  wm.setFramePool(&pool, /*sessionTag=*/0);
  auto content = std::make_unique<android::View>();
  content->setBackground(colors::kLightGray);
  wm.showAppWindow("com.test.app", std::move(content), /*fullscreen=*/false);

  std::uint64_t firstFp = 0;
  Bitmap firstPixels;
  constexpr int kRounds = 16;
  for (int round = 0; round < kRounds; ++round) {
    auto frame = std::make_shared<core::ScreenFrame>(wm.dumpTopWindow(),
                                                     "com.test.app");
    frame->attachPixels(wm.composite());
    if (round == 0) {
      firstFp = frame->fingerprint();
      firstPixels = frame->pixels().clone();
      EXPECT_EQ(frame->pixels().source(), SlabSource::kPoolFresh);
    } else {
      EXPECT_EQ(frame->fingerprint(), firstFp);
      EXPECT_EQ(frame->pixels(), firstPixels);
      EXPECT_EQ(frame->pixels().source(), SlabSource::kPoolReused);
    }
  }
  const FramePool::Stats stats = pool.stats();
  EXPECT_EQ(stats.poolMisses, 1);
  EXPECT_EQ(stats.poolHits, kRounds - 1);
  // Steady state: one slab, recycled — the high water is the (size-class
  // rounded) footprint of a single frame, not kRounds frames.
  EXPECT_GE(stats.highWaterBytes, firstPixels.pixelBytes());
  EXPECT_LE(stats.highWaterBytes, 2 * firstPixels.pixelBytes());
}

// The §IV-E scrub happens on last release: dropping the final FramePtr
// returns the slab to the pool (no leak, no dangling bytes held).
TEST(FramePoolTest, FrameReleaseReturnsSlabToPool) {
  FramePool pool;
  {
    auto frame =
        std::make_shared<core::ScreenFrame>(android::UiDump{}, "test");
    auto second = frame;  // two holders, one buffer
    frame->attachPixels(pool.acquire(32, 32, colors::kRed));
    frame.reset();
    EXPECT_EQ(pool.stats().releases, 0);  // `second` still holds the frame
    second.reset();
  }
  EXPECT_EQ(pool.stats().releases, 1);
  EXPECT_EQ(pool.stats().outstandingBytes, 0u);
}

// Fleet worker threads acquire and release concurrently; TSan runs this in
// the sanitizer lane. Correctness claim: counters reconcile and nothing
// leaks once every bitmap is dropped.
TEST(FramePoolTest, ConcurrentAcquireReleaseIsSafe) {
  FramePool pool({/*maxBytes=*/64 * 4096 * sizeof(Color),
                  /*sessionQuotaBytes=*/8 * 4096 * sizeof(Color)});
  constexpr int kThreads = 4;
  constexpr int kIterations = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int i = 0; i < kIterations; ++i) {
        const int side = 16 + (i % 48);
        const Bitmap bmp = pool.acquire(side, side, colors::kBlack, t);
        ASSERT_EQ(bmp.at(side - 1, side - 1), colors::kBlack);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const FramePool::Stats stats = pool.stats();
  EXPECT_EQ(stats.acquires, kThreads * kIterations);
  EXPECT_EQ(stats.acquires,
            stats.poolHits + stats.poolMisses + stats.backpressured);
  EXPECT_EQ(stats.outstandingBytes, 0u);
  EXPECT_EQ(stats.releases, stats.poolHits + stats.poolMisses);
}

}  // namespace
}  // namespace darpa::gfx
