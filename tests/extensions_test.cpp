// Tests for the extension features: COCO export, decoration styles,
// selective (trusted-package) monitoring, and the adversarial patch attack.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "android/system.h"
#include "core/darpa_service.h"
#include "cv/adversarial.h"
#include "dataset/export.h"

namespace darpa {
namespace {

// ---------------------------------------------------------------- export
TEST(ExportTest, JsonEscape) {
  EXPECT_EQ(dataset::jsonEscape("plain"), "plain");
  EXPECT_EQ(dataset::jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(dataset::jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(dataset::jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(dataset::jsonEscape(std::string_view("a\x01" "b", 3)), "a\\u0001b");
}

TEST(ExportTest, WritesCocoLayout) {
  dataset::DatasetConfig config;
  config.totalScreenshots = 30;
  config.seed = 3;
  const dataset::AuiDataset data = dataset::AuiDataset::build(config);
  const std::string dir = "/tmp/darpa_export_test";
  std::filesystem::remove_all(dir);
  dataset::ExportOptions options;
  options.maxSamples = 6;
  const auto summary = dataset::exportCocoDataset(data, dir, options);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->images, 6);
  EXPECT_GT(summary->annotations, 5);

  std::ifstream in(summary->annotationsPath);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"categories\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"AGO\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"UPO\""), std::string::npos);
  EXPECT_NE(json.find("\"bbox\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // Image files exist.
  EXPECT_TRUE(std::filesystem::exists(
      std::filesystem::path(dir) / "images" /
      (std::to_string(data.specs()[0].id) + ".ppm")));
  std::filesystem::remove_all(dir);
}

TEST(ExportTest, AnnotationsOnlyMode) {
  dataset::DatasetConfig config;
  config.totalScreenshots = 20;
  config.seed = 5;
  const dataset::AuiDataset data = dataset::AuiDataset::build(config);
  const std::string dir = "/tmp/darpa_export_test2";
  std::filesystem::remove_all(dir);
  dataset::ExportOptions options;
  options.writeImages = false;
  options.maxSamples = 4;
  const auto summary = dataset::exportCocoDataset(data, dir, options);
  ASSERT_TRUE(summary.has_value());
  EXPECT_FALSE(std::filesystem::exists(
      std::filesystem::path(dir) / "images" /
      (std::to_string(data.specs()[0].id) + ".ppm")));
  std::filesystem::remove_all(dir);
}

// ------------------------------------------------------- decoration styles
TEST(DecorationStyleTest, AllStylesPaintInk) {
  for (core::DecorationStyle style :
       {core::DecorationStyle::kRect, core::DecorationStyle::kRounded,
        core::DecorationStyle::kCircle, core::DecorationStyle::kCorners}) {
    gfx::Bitmap bmp(60, 60, colors::kWhite);
    gfx::Canvas canvas(bmp);
    core::DecorationView view(colors::kGreen, 3, style);
    view.setFrame({10, 10, 40, 40});
    view.draw(canvas, {0, 0});
    int inked = 0;
    for (int y = 0; y < 60; ++y) {
      for (int x = 0; x < 60; ++x) {
        if (!(bmp.at(x, y) == colors::kWhite)) ++inked;
      }
    }
    EXPECT_GT(inked, 30) << "style " << static_cast<int>(style);
    // The very center stays unobstructed for every style.
    EXPECT_EQ(bmp.at(30, 30), colors::kWhite)
        << "style " << static_cast<int>(style);
  }
}

TEST(DecorationStyleTest, CornersOnlyInkNearCorners) {
  gfx::Bitmap bmp(60, 60, colors::kWhite);
  gfx::Canvas canvas(bmp);
  core::DecorationView view(colors::kRed, 2, core::DecorationStyle::kCorners);
  view.setFrame({10, 10, 40, 40});
  view.draw(canvas, {0, 0});
  // Mid-edge is clear (the bracket arms stop before it).
  EXPECT_EQ(bmp.at(30, 10), colors::kWhite);
  EXPECT_EQ(bmp.at(30, 49), colors::kWhite);
  // Corners inked.
  EXPECT_EQ(bmp.at(11, 11), colors::kRed);
  EXPECT_EQ(bmp.at(48, 48), colors::kRed);
}

// --------------------------------------------------- selective monitoring
class CountingDetector : public cv::Detector {
 public:
  mutable int calls = 0;
  std::vector<cv::Detection> detect(const gfx::Bitmap&) const override {
    ++calls;
    return {};
  }
  double costMacsPerImage() const override { return 1.0; }
};

TEST(SelectiveMonitoringTest, TrustedPackagesIgnored) {
  android::AndroidSystem system;
  CountingDetector detector;
  core::DarpaConfig config;
  config.trustedPackages = {"com.trusted.bank"};
  core::DarpaService service(detector, config);
  system.accessibility.connect(service);

  system.windowManager.showAppWindow("com.trusted.bank",
                                     std::make_unique<android::View>(), false);
  system.windowManager.notifyContentChanged(4);
  system.looper.runUntilIdle();
  EXPECT_EQ(service.stats().eventsReceived, 0);
  EXPECT_EQ(service.stats().analysesRun, 0);
  EXPECT_EQ(detector.calls, 0);

  // An untrusted app on top re-enables the pipeline.
  system.windowManager.showAppWindow("com.shady.ads",
                                     std::make_unique<android::View>(), false);
  system.looper.runUntilIdle();
  EXPECT_GT(service.stats().eventsReceived, 0);
  EXPECT_GE(service.stats().analysesRun, 1);
}

TEST(SelectiveMonitoringTest, EmptyTrustListMonitorsEverything) {
  android::AndroidSystem system;
  CountingDetector detector;
  core::DarpaService service(detector, core::DarpaConfig{});
  system.accessibility.connect(service);
  system.windowManager.showAppWindow("com.any.app",
                                     std::make_unique<android::View>(), false);
  system.looper.runUntilIdle();
  EXPECT_GT(service.stats().eventsReceived, 0);
}

// ------------------------------------------------------------ adversarial
/// Deterministic detector: reports a UPO wherever the image region around
/// `target` still looks like the original (mean color unchanged).
class FragileDetector : public cv::Detector {
 public:
  Rect target;
  Color expectedRing;

  std::vector<cv::Detection> detect(const gfx::Bitmap& image) const override {
    // "Detects" the UPO only if the ring region kept its original look —
    // crude, but mimics a context-sensitive model an attacker can trip.
    const Color ring = image.meanColor(target.inflated(24));
    const int dist = std::abs(ring.r - expectedRing.r) +
                     std::abs(ring.g - expectedRing.g) +
                     std::abs(ring.b - expectedRing.b);
    if (dist > 8) return {};
    return {cv::Detection{target, dataset::BoxLabel::kUpo, 0.9f}};
  }
  double costMacsPerImage() const override { return 1.0; }
};

TEST(AdversarialTest, PatchEvadesFragileDetector) {
  gfx::Bitmap image(200, 200, colors::kWhite);
  const Rect upo{90, 90, 20, 20};
  image.fillRect(upo, Color::rgb(200, 200, 205));
  FragileDetector detector;
  detector.target = upo;
  detector.expectedRing = image.meanColor(upo.inflated(24));

  ASSERT_EQ(detector.detect(image).size(), 1u);  // detected pre-attack
  const cv::PatchAttackResult result = cv::attackUpo(detector, image, upo);
  EXPECT_TRUE(result.evaded);
  EXPECT_GT(result.trialsUsed, 0);
  // The patch must not cover the UPO itself (the option stays usable).
  EXPECT_TRUE(result.patchRect.intersect(upo).empty());
  // The returned screenshot indeed fools the detector.
  EXPECT_TRUE(detector.detect(result.patched).empty());
}

TEST(AdversarialTest, AlreadyMissedCountsAsEvadedWithZeroTrials) {
  gfx::Bitmap image(100, 100, colors::kWhite);
  FragileDetector detector;
  detector.target = {40, 40, 20, 20};
  detector.expectedRing = colors::kBlack;  // never matches -> never detects
  const cv::PatchAttackResult result =
      cv::attackUpo(detector, image, detector.target);
  EXPECT_TRUE(result.evaded);
  EXPECT_EQ(result.trialsUsed, 0);
}

}  // namespace
}  // namespace darpa
