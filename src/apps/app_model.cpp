#include "apps/app_model.h"

#include <algorithm>

namespace darpa::apps {

AppProfile randomAppProfile(std::string package, Rng& rng) {
  AppProfile profile;
  profile.package = std::move(package);
  profile.screenChangeMeanMs = rng.uniformInt(2200, 5200);
  profile.minBurst = rng.uniformInt(2, 4);
  profile.maxBurst = profile.minBurst + rng.uniformInt(3, 7);
  profile.idleEventMeanMs = rng.uniformInt(500, 1600);
  profile.auisPerMinute = rng.uniform(0.4, 2.4);
  profile.auiMinVisibleMs = rng.uniformInt(700, 1400);
  profile.auiMaxVisibleMs = profile.auiMinVisibleMs + rng.uniformInt(2500, 7000);
  profile.animatedAuiProb = rng.uniform(0.15, 0.45);
  return profile;
}

AppSession::AppSession(android::AndroidSystem& system, AppProfile profile,
                       std::uint64_t seed)
    : system_(&system),
      profile_(std::move(profile)),
      rng_(seed),
      generator_(
          [&] {
            ScreenGenerator::Params params;
            const Rect frame = system.windowManager.appFrame(false);
            params.frame = {frame.width, frame.height};
            params.webViewAuiProb = profile_.webViewAuiProb;
            return params;
          }(),
          rng_.next()) {}

void AppSession::start(Millis duration) {
  endTime_ = system_->clock.now() + duration;
  showBenignScreen();
  scheduleNextScreenChange();
  scheduleIdleEvents();
  scheduleAuiPopups(duration);
}

const AuiExposure* AppSession::exposureAt(Millis t) const {
  for (const AuiExposure& e : exposures_) {
    if (t >= e.shownAt && t < e.hiddenAt) return &e;
  }
  return nullptr;
}

void AppSession::showBenignScreen() {
  GeneratedScreen screen = generator_.makeBenign();
  android::WindowManager& wm = system_->windowManager;
  // Replace the current screen (keep the activity stack flat).
  if (wm.topAppWindow() != nullptr &&
      wm.topAppWindow()->packageName() == profile_.package) {
    wm.popAppWindow();
  }
  wm.showAppWindow(profile_.package, std::move(screen.root), false);
  ++screensShown_;
  // Content-changed storm following the navigation.
  const int burst = rng_.uniformInt(profile_.minBurst, profile_.maxBurst);
  for (int i = 0; i < burst; ++i) {
    system_->looper.postDelayed(
        [this] {
          if (!sessionOver()) system_->windowManager.notifyContentChanged();
        },
        ms(rng_.uniformInt(16, 420)));
  }
}

void AppSession::scheduleNextScreenChange() {
  const int gap = std::max(
      400, static_cast<int>(rng_.normal(profile_.screenChangeMeanMs,
                                        profile_.screenChangeMeanMs / 3.0)));
  system_->looper.postDelayed(
      [this] {
        if (sessionOver()) return;
        // Don't tear the screen down underneath a visible AUI popup.
        if (!auiShowing_) showBenignScreen();
        scheduleNextScreenChange();
      },
      ms(gap));
}

void AppSession::scheduleIdleEvents() {
  const int gap = std::max(
      120, static_cast<int>(rng_.normal(profile_.idleEventMeanMs,
                                        profile_.idleEventMeanMs / 2.5)));
  system_->looper.postDelayed(
      [this] {
        if (sessionOver()) return;
        // In-place updates (tickers, progress bars) outside AUI popups.
        if (!auiShowing_) system_->windowManager.notifyContentChanged();
        scheduleIdleEvents();
      },
      ms(gap));
}

void AppSession::scheduleAuiPopups(Millis duration) {
  // Poisson-ish arrivals: expected auisPerMinute over the session.
  const double expected =
      profile_.auisPerMinute * static_cast<double>(duration.count) / 60000.0;
  int count = 0;
  double acc = expected;
  while (acc >= 1.0) {
    ++count;
    acc -= 1.0;
  }
  if (rng_.chance(acc)) ++count;
  for (int i = 0; i < count; ++i) {
    const auto at = static_cast<std::int64_t>(
        rng_.uniform(0.05, 0.9) * static_cast<double>(duration.count));
    system_->looper.postDelayed(
        [this] {
          if (!sessionOver() && !auiShowing_) showAui();
        },
        ms(at));
  }
}

void AppSession::showAui() {
  const AuiSpec spec = generator_.randomSpec();
  GeneratedScreen screen = generator_.makeAui(spec);
  android::WindowManager& wm = system_->windowManager;
  const Rect frame = wm.appFrame(false);

  AuiExposure exposure;
  exposure.shownAt = system_->clock.now();
  exposure.spec = spec;
  exposure.animated = rng_.chance(profile_.animatedAuiProb);
  for (const Rect& box : screen.truth.agoBoxes) {
    exposure.agoScreenBoxes.push_back(box.translated(frame.x, frame.y));
  }
  for (const Rect& box : screen.truth.upoBoxes) {
    exposure.upoScreenBoxes.push_back(box.translated(frame.x, frame.y));
  }

  wm.showAppWindow(profile_.package, std::move(screen.root), false);
  auiShowing_ = true;

  const int visibleMs =
      rng_.uniformInt(profile_.auiMinVisibleMs, profile_.auiMaxVisibleMs);
  exposure.hiddenAt = exposure.shownAt + ms(visibleMs);
  exposures_.push_back(exposure);

  // Animated AUIs keep firing UI updates while visible — these reset
  // DARPA's ct timer and are what large cut-off values trip over (Fig. 8).
  if (exposure.animated) {
    const Millis hideAt = exposure.hiddenAt;
    std::int64_t t = rng_.uniformInt(profile_.animMinGapMs, profile_.animMaxGapMs);
    while (t < visibleMs) {
      system_->looper.postDelayed(
          [this, hideAt] {
            if (!sessionOver() && system_->clock.now() < hideAt) {
              system_->windowManager.notifyContentChanged();
            }
          },
          ms(t));
      t += rng_.uniformInt(profile_.animMinGapMs, profile_.animMaxGapMs);
    }
  }

  // Auto-dismiss after the visibility window.
  system_->looper.postDelayed(
      [this] {
        if (auiShowing_) {
          system_->windowManager.popAppWindow();
          auiShowing_ = false;
        }
      },
      ms(visibleMs));
}

void MonkeyDriver::start(Millis until, int minGapMs, int maxGapMs) {
  scheduleNext(until, minGapMs, maxGapMs);
}

void MonkeyDriver::scheduleNext(Millis until, int minGapMs, int maxGapMs) {
  const int gap = rng_.uniformInt(minGapMs, maxGapMs);
  system_->looper.postDelayed(
      [this, until, minGapMs, maxGapMs] {
        if (system_->clock.now() >= until) return;
        const Size screen = system_->windowManager.config().screenSize;
        system_->windowManager.clickAt(
            {rng_.uniformInt(0, screen.width - 1),
             rng_.uniformInt(0, screen.height - 1)});
        ++taps_;
        scheduleNext(until, minGapMs, maxGapMs);
      },
      ms(gap));
}

}  // namespace darpa::apps
