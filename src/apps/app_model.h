// Runtime app population — the D_app substitute for the end-to-end
// experiments (Tables VI-VIII, Fig. 8).
//
// An AppSession drives the simulated device the way a real app under Monkey
// does: benign screens replace each other every few seconds, each change
// raising a storm of WINDOW_CONTENT_CHANGED events (the paper measured ~32
// events/minute in Taobao); AUI popups appear, persist for a while, and
// disappear; a fraction of AUIs are *animated* (they keep emitting UI
// updates while visible), which is exactly what makes large ct values miss
// them in Fig. 8. The session records every AUI exposure with screen-space
// ground truth so harnesses can score DARPA's and FraudDroid's verdicts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "android/system.h"
#include "apps/screen_generator.h"
#include "util/clock.h"
#include "util/rng.h"

namespace darpa::apps {

struct AppProfile {
  std::string package = "com.example.app";
  /// Mean gap between benign screen changes (ms).
  int screenChangeMeanMs = 3500;
  /// Content-update events per screen change (storm size).
  int minBurst = 2;
  int maxBurst = 9;
  /// Mean gap between ongoing in-screen updates (animations, timers).
  int idleEventMeanMs = 900;
  /// Expected number of AUI popups per minute of use.
  double auisPerMinute = 1.2;
  /// AUI visibility duration range (ms).
  int auiMinVisibleMs = 900;
  int auiMaxVisibleMs = 8000;
  /// Fraction of AUIs that keep animating (emitting events) while visible.
  double animatedAuiProb = 0.3;
  /// Gap between animation events of an animated AUI (ms).
  int animMinGapMs = 150;
  int animMaxGapMs = 450;
  /// Probability a third-party AUI is WebView-delivered (virtual nodes, no
  /// resource ids — §VI-C). Defaults to 0 so existing populations, and
  /// every fleet digest over them, are untouched; hybrid workloads opt in
  /// per profile (ScreenGenerator::Params::webViewAuiProb).
  double webViewAuiProb = 0.0;
};

/// One AUI popup shown during a session, with screen-space ground truth.
struct AuiExposure {
  Millis shownAt;
  Millis hiddenAt;
  AuiSpec spec;
  std::vector<Rect> agoScreenBoxes;
  std::vector<Rect> upoScreenBoxes;
  bool animated = false;
};

/// Draws a randomized profile for one synthetic app (category flavor).
[[nodiscard]] AppProfile randomAppProfile(std::string package, Rng& rng);

class AppSession {
 public:
  /// Borrows the Android system; it must outlive the session.
  AppSession(android::AndroidSystem& system, AppProfile profile,
             std::uint64_t seed);

  /// Schedules the session's behaviour on the looper; run the looper for
  /// `duration` afterwards to play it out.
  void start(Millis duration);

  [[nodiscard]] const AppProfile& profile() const { return profile_; }
  [[nodiscard]] const std::vector<AuiExposure>& exposures() const {
    return exposures_;
  }
  /// The exposure visible at instant `t`, or nullptr.
  [[nodiscard]] const AuiExposure* exposureAt(Millis t) const;
  [[nodiscard]] std::int64_t screensShown() const { return screensShown_; }

 private:
  void showBenignScreen();
  void scheduleNextScreenChange();
  void scheduleIdleEvents();
  void scheduleAuiPopups(Millis duration);
  void showAui();
  [[nodiscard]] bool sessionOver() const {
    return system_->clock.now() >= endTime_;
  }

  android::AndroidSystem* system_;
  AppProfile profile_;
  Rng rng_;
  ScreenGenerator generator_;
  Millis endTime_{0};
  bool auiShowing_ = false;
  std::vector<AuiExposure> exposures_;
  std::int64_t screensShown_ = 0;
};

/// A Monkey-style random clicker: taps a random point on screen at random
/// intervals for the whole session (the paper runs each app 1 minute under
/// Monkey to collect screenshots).
class MonkeyDriver {
 public:
  MonkeyDriver(android::AndroidSystem& system, std::uint64_t seed)
      : system_(&system), rng_(seed) {}

  /// Schedules taps until `until` (simulated time).
  void start(Millis until, int minGapMs = 500, int maxGapMs = 1500);

  [[nodiscard]] std::int64_t taps() const { return taps_; }

 private:
  void scheduleNext(Millis until, int minGapMs, int maxGapMs);

  android::AndroidSystem* system_;
  Rng rng_;
  std::int64_t taps_ = 0;
};

}  // namespace darpa::apps
