// AUI taxonomy from the paper's measurement study (§III-A, Table I).
#pragma once

#include <array>
#include <string_view>

namespace darpa::apps {

/// Subjects of Asymmetric dark UIs, in Table I order.
enum class AuiType {
  kAdvertisement = 0,
  kSalesPromotion,
  kLuckyMoney,
  kAppUpgrade,
  kOperationGuide,
  kFeedbackRequest,
  kPermissionRequest,
};

inline constexpr std::array<AuiType, 7> kAllAuiTypes = {
    AuiType::kAdvertisement,   AuiType::kSalesPromotion,
    AuiType::kLuckyMoney,      AuiType::kAppUpgrade,
    AuiType::kOperationGuide,  AuiType::kFeedbackRequest,
    AuiType::kPermissionRequest,
};

[[nodiscard]] constexpr std::string_view auiTypeName(AuiType t) {
  switch (t) {
    case AuiType::kAdvertisement: return "Advertisement";
    case AuiType::kSalesPromotion: return "Sales promotion";
    case AuiType::kLuckyMoney: return "Lucky money (Red packet)";
    case AuiType::kAppUpgrade: return "App upgrade";
    case AuiType::kOperationGuide: return "Operation guide";
    case AuiType::kFeedbackRequest: return "Feedback request";
    case AuiType::kPermissionRequest: return "Sensitive permission request";
  }
  return "Unknown";
}

/// Table I shares (percent of the 1,072-sample dataset).
[[nodiscard]] constexpr double auiTypePaperShare(AuiType t) {
  switch (t) {
    case AuiType::kAdvertisement: return 64.9;
    case AuiType::kSalesPromotion: return 16.7;
    case AuiType::kLuckyMoney: return 12.2;
    case AuiType::kAppUpgrade: return 4.0;
    case AuiType::kOperationGuide: return 1.5;
    case AuiType::kFeedbackRequest: return 0.4;
    case AuiType::kPermissionRequest: return 0.3;
  }
  return 0.0;
}

/// Table I instance counts (sum = 1,072).
[[nodiscard]] constexpr int auiTypePaperCount(AuiType t) {
  switch (t) {
    case AuiType::kAdvertisement: return 696;
    case AuiType::kSalesPromotion: return 179;
    case AuiType::kLuckyMoney: return 131;
    case AuiType::kAppUpgrade: return 43;
    case AuiType::kOperationGuide: return 16;
    case AuiType::kFeedbackRequest: return 4;
    case AuiType::kPermissionRequest: return 3;
  }
  return 0;
}

/// Who authored the AUI: the app itself, an integrated third party
/// (§III-A "Hosts of AUI": 35.1 % first-party, 64.9 % third-party ads), or
/// a third party delivering through a WebView — the §VI-C worst case where
/// the whole AUI surface is a virtual accessibility subtree with no
/// Android resource ids at all.
enum class AuiHost { kFirstParty, kThirdParty, kWebView };

[[nodiscard]] constexpr std::string_view auiHostName(AuiHost h) {
  switch (h) {
    case AuiHost::kFirstParty: return "first-party";
    case AuiHost::kThirdParty: return "third-party";
    case AuiHost::kWebView: return "webview";
  }
  return "unknown";
}

}  // namespace darpa::apps
