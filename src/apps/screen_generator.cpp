#include "apps/screen_generator.h"

#include "android/layout.h"
#include "android/webview.h"

#include <algorithm>
#include <array>
#include <utility>

namespace darpa::apps {

using android::Button;
using android::IconGlyph;
using android::IconView;
using android::ImageView;
using android::TextView;
using android::View;

namespace {

/// Saturated accent colors used for app-guided options (high contrast).
constexpr std::array<Color, 6> kAccentColors = {
    Color::rgb(230, 60, 50),   Color::rgb(250, 150, 30),
    Color::rgb(245, 200, 30),  Color::rgb(40, 170, 90),
    Color::rgb(40, 110, 230),  Color::rgb(160, 60, 220),
};

constexpr std::array<const char*, 6> kAgoTexts = {
    "GET NOW", "OPEN", "BUY 1", "CLAIM", "GO GO", "FREE"};
constexpr std::array<const char*, 4> kUpoTexts = {"skip", "later", "close",
                                                  "no"};

std::unique_ptr<TextView> makeText(std::string text, Color color, int cell,
                                   const Rect& frame) {
  auto tv = std::make_unique<TextView>();
  tv->setText(std::move(text));
  tv->setTextColor(color);
  tv->setTextCell(cell);
  tv->setFrame(frame);
  return tv;
}

}  // namespace

AuiSpec ScreenGenerator::randomSpec() {
  AuiSpec spec;
  std::array<double, kAllAuiTypes.size()> weights{};
  for (std::size_t i = 0; i < kAllAuiTypes.size(); ++i) {
    weights[i] = auiTypePaperShare(kAllAuiTypes[i]);
  }
  spec.type = kAllAuiTypes[rng_.pickWeighted(weights)];
  // §III-A: all advertisements are third-party; everything else first-party.
  spec.host = spec.type == AuiType::kAdvertisement ? AuiHost::kThirdParty
                                                   : AuiHost::kFirstParty;
  // Some third-party ads deliver through a WebView (§VI-C). The prob>0
  // guard is load-bearing: at the default of zero no RNG draw happens, so
  // the draw sequence — and every downstream fleet digest — stays
  // bit-identical to the generator without this feature.
  if (params_.webViewAuiProb > 0 && spec.host == AuiHost::kThirdParty &&
      rng_.chance(params_.webViewAuiProb)) {
    spec.host = AuiHost::kWebView;
  }
  // Table II: 744 AGO boxes over 1,072 screenshots. All 376 non-ads have an
  // AGO box; the remaining 368 boxes fall on the 696 ads (the other ads are
  // whole-creative-clickable with no separately annotatable AGO).
  spec.hasAgoBox = spec.type != AuiType::kAdvertisement ||
                   rng_.chance(368.0 / 696.0);
  spec.numUpos = rng_.chance(31.0 / 1072.0) ? 2 : 1;
  spec.agoCentral = rng_.chance(0.946);
  spec.upoCorner = rng_.chance(0.731);
  spec.ghostUpo = rng_.chance(0.08);
  return spec;
}

std::unique_ptr<View> ScreenGenerator::makeRoot(Color background) {
  auto root = std::make_unique<View>();
  root->setFrame({0, 0, params_.frame.width, params_.frame.height});
  root->setBackground(background);
  return root;
}

void ScreenGenerator::addBenignBackdrop(View& root) {
  const int w = params_.frame.width;
  const int rowH = rng_.uniformInt(56, 76);
  int y = rng_.uniformInt(4, 20);
  const Color rowColor =
      Color::rgb(static_cast<std::uint8_t>(rng_.uniformInt(225, 245)),
                 static_cast<std::uint8_t>(rng_.uniformInt(225, 245)),
                 static_cast<std::uint8_t>(rng_.uniformInt(225, 245)));
  while (y + rowH < params_.frame.height) {
    auto* row = root.addChild(std::make_unique<View>());
    row->setFrame({8, y, w - 16, rowH - 8});
    row->setBackground(rowColor);
    row->setCornerRadius(6);
    // Avatar disc.
    auto avatar = std::make_unique<IconView>();
    avatar->setGlyph(IconGlyph::kCircle);
    avatar->setGlyphColor(Color::rgb(
        static_cast<std::uint8_t>(rng_.uniformInt(120, 200)),
        static_cast<std::uint8_t>(rng_.uniformInt(120, 200)),
        static_cast<std::uint8_t>(rng_.uniformInt(120, 200))));
    avatar->setFrame({8, 8, rowH - 24, rowH - 24});
    row->addChild(std::move(avatar));
    // Two text lines.
    row->addChild(makeText("lorem ipsum dolor", Color::rgb(60, 60, 60), 2,
                           {rowH - 4, 8, w - rowH - 30, 12}));
    row->addChild(makeText("sit amet conse", Color::rgb(150, 150, 150), 1,
                           {rowH - 4, 26, w - rowH - 60, 8}));
    y += rowH;
  }
}

void ScreenGenerator::addScrim(View& root, double alpha) {
  auto* scrim = root.addChild(std::make_unique<View>());
  scrim->setFrame({0, 0, params_.frame.width, params_.frame.height});
  scrim->setBackground(colors::kBlack);
  scrim->setAlpha(alpha);
}

ScreenGenerator::PanelLayout ScreenGenerator::addPanel(View& root,
                                                       Size panelSize,
                                                       Color color,
                                                       bool centered) {
  const int w = params_.frame.width;
  const int h = params_.frame.height;
  const int px = (w - panelSize.width) / 2 + rng_.uniformInt(-8, 8);
  int py;
  if (centered) {
    py = (h - panelSize.height) / 2 + rng_.uniformInt(-24, 24);
  } else {
    // Off-center AUIs hug the top or bottom of the screen.
    py = rng_.chance(0.5) ? rng_.uniformInt(30, 70)
                          : h - panelSize.height - rng_.uniformInt(30, 70);
  }
  PanelLayout layout;
  layout.panelFrame = {std::clamp(px, 2, w - panelSize.width - 2),
                       std::clamp(py, 26, h - panelSize.height - 2),
                       panelSize.width, panelSize.height};
  auto* panel = root.addChild(std::make_unique<View>());
  panel->setFrame(layout.panelFrame);
  panel->setBackground(color);
  panel->setCornerRadius(10);
  layout.panel = panel;
  layout.panelColor = color;
  return layout;
}

std::string ScreenGenerator::resourceIdFor(std::string_view realName,
                                           AuiHost host) {
  // WebView hosts obfuscate like any third party — this only governs the
  // host app's own container ids; the page content has no resource ids.
  const double pObf = host == AuiHost::kFirstParty
                          ? params_.obfuscateFirstParty
                          : params_.obfuscateThirdParty;
  if (!rng_.chance(pObf)) return std::string(realName);
  // Half of the obfuscated ids are dynamically generated (empty in dumps),
  // half are minified junk like "a1" / "jx9".
  if (rng_.chance(0.5)) return {};
  std::string junk;
  const int len = rng_.uniformInt(2, 3);
  for (int i = 0; i < len; ++i) {
    junk.push_back(static_cast<char>('a' + rng_.uniformInt(0, 25)));
  }
  return junk;
}

Rect ScreenGenerator::addAgo(const PanelLayout& panel, View& root,
                             const AuiSpec& spec) {
  const Rect& pf = panel.panelFrame;
  const Color accent = kAccentColors[static_cast<std::size_t>(
      rng_.uniformInt(0, static_cast<int>(kAccentColors.size()) - 1))];

  // Size/style per AUI type.
  int bw = 0, bh = 0;
  int cornerRadius = 8;
  switch (spec.type) {
    case AuiType::kAdvertisement:
      bw = std::min(pf.width - 50, rng_.uniformInt(180, 230));
      bh = rng_.uniformInt(44, 60);
      break;
    case AuiType::kSalesPromotion:
    case AuiType::kLuckyMoney: {
      const int d = rng_.uniformInt(110, 150);  // eye-catching round button
      bw = d;
      bh = d;
      cornerRadius = d / 2;
      break;
    }
    case AuiType::kAppUpgrade:
    case AuiType::kFeedbackRequest:
    case AuiType::kPermissionRequest:
      bw = std::min(pf.width - 60, rng_.uniformInt(190, 240));
      bh = rng_.uniformInt(42, 54);
      break;
    case AuiType::kOperationGuide:
      bw = rng_.uniformInt(130, 170);
      bh = rng_.uniformInt(40, 50);
      break;
  }

  // Position: centered in the panel, or hugging its top/bottom edge.
  const int bx = pf.x + (pf.width - bw) / 2 + rng_.uniformInt(-6, 6);
  int by;
  switch (spec.type) {
    case AuiType::kAdvertisement:
      // CTA strip near the bottom of the creative.
      by = pf.bottom() - bh - rng_.uniformInt(14, 28);
      break;
    case AuiType::kOperationGuide:
      by = pf.y + pf.height * 2 / 3 + rng_.uniformInt(-10, 10);
      break;
    default:
      by = pf.y + (pf.height - bh) / 2 + rng_.uniformInt(8, 30);
      break;
  }
  const Rect frame{std::clamp(bx, pf.x + 4, pf.right() - bw - 4),
                   std::clamp(by, pf.y + 4, pf.bottom() - bh - 4), bw, bh};

  auto button = std::make_unique<Button>();
  button->setFrame(frame);
  button->setBackground(
      spec.type == AuiType::kLuckyMoney ? Color::rgb(250, 205, 60) : accent);
  button->setCornerRadius(cornerRadius);
  // Some CTAs are rendered with a two-tone gradient: visually louder, and a
  // natural source of AGO localization error for pixel-snapping detectors.
  if (rng_.chance(0.18)) {
    auto topHalf = std::make_unique<View>();
    topHalf->setFrame({0, 0, bw, bh / 2});
    topHalf->setBackground(lerp(button->background(), colors::kWhite, 0.35));
    topHalf->setCornerRadius(cornerRadius);
    button->addChild(std::move(topHalf));
  }
  button->setText(kAgoTexts[static_cast<std::size_t>(
      rng_.uniformInt(0, static_cast<int>(kAgoTexts.size()) - 1))]);
  button->setTextColor(highContrastAgainst(button->background()));
  button->setTextCell(3);
  button->setResourceId(resourceIdFor("btn_cta", spec.host));
  root.addChild(std::move(button));
  return frame;
}

Rect ScreenGenerator::addUpo(const PanelLayout& panel, View& root,
                             const AuiSpec& spec, int upoIndex,
                             Color scrimBackdrop) {
  const Rect& pf = panel.panelFrame;
  const int s = rng_.uniformInt(14, 26);

  // Corner placement (top-right heavy, like real close buttons), possibly
  // floating just above the panel; otherwise centered below the panel or
  // along its bottom edge.
  Rect frame;
  const bool corner = spec.upoCorner != (upoIndex > 0);  // 2nd UPO differs
  if (corner) {
    const double cornerWeights[] = {0.6, 0.2, 0.1, 0.1};  // TR TL BR BL
    const std::size_t which = rng_.pickWeighted(cornerWeights);
    const int inset = rng_.uniformInt(-s / 2, 6);  // may float outside
    const int cx = (which == 0 || which == 2) ? pf.right() - s - inset
                                              : pf.x + inset;
    const int cy = (which <= 1) ? pf.y + inset : pf.bottom() - s - inset;
    frame = {cx, cy, s, s};
  } else {
    const int cx = pf.x + (pf.width - s * 3) / 2 + rng_.uniformInt(-10, 10);
    const int cy = rng_.chance(0.6) ? pf.bottom() + rng_.uniformInt(8, 26)
                                    : pf.bottom() - s - rng_.uniformInt(4, 10);
    frame = {cx, cy, s * 3, s};  // tiny text strip
  }
  // Clamp inside the window.
  frame.x = std::clamp(frame.x, 0, params_.frame.width - frame.width);
  frame.y = std::clamp(frame.y, 0, params_.frame.height - frame.height);

  // Low-contrast plate covering the whole frame, so the rendered ink extent
  // equals the annotation box.
  // The plate sits either on the panel or floats over the dimmed backdrop;
  // its color is chosen low-contrast relative to the *composited* local
  // background (the scrim is translucent, so "over the scrim" is mid-gray,
  // not black).
  const bool floating = frame.y < pf.y + 2 || frame.x < pf.x + 2 ||
                        frame.right() > pf.right() - 2 ||
                        frame.bottom() > pf.bottom() - 2;
  const Color backdrop = floating ? scrimBackdrop : panel.panelColor;
  const Color awayFromBackdrop =
      luma(backdrop) > 128 ? colors::kBlack : colors::kWhite;
  const Color plate =
      lerp(backdrop, awayFromBackdrop, rng_.uniform(0.18, 0.38));
  const Color glyphColor = lerp(plate, awayFromBackdrop, rng_.uniform(0.35, 0.6));

  std::unique_ptr<View> upo;
  if (corner) {
    auto icon = std::make_unique<IconView>();
    icon->setGlyph(IconGlyph::kCross);
    icon->setGlyphColor(glyphColor);
    icon->setThickness(1);
    icon->setBackground(plate);
    icon->setCornerRadius(s / 2);
    upo = std::move(icon);
  } else {
    auto text = std::make_unique<TextView>();
    text->setText(kUpoTexts[static_cast<std::size_t>(
        rng_.uniformInt(0, static_cast<int>(kUpoTexts.size()) - 1))]);
    text->setTextColor(glyphColor);
    text->setTextCell(1);
    text->setBackground(plate);
    text->setCornerRadius(4);
    upo = std::move(text);
  }
  upo->setFrame(frame);
  upo->setClickable(true);
  upo->setResourceId(
      resourceIdFor(upoIndex == 0 ? "btn_close" : "tv_skip", spec.host));
  if (spec.ghostUpo && upoIndex == 0) {
    upo->setAlpha(rng_.uniform(0.16, 0.32));  // nearly invisible
  }
  root.addChild(std::move(upo));
  return frame;
}

void ScreenGenerator::addDistractors(const PanelLayout& panel, View& root) {
  const Rect& pf = panel.panelFrame;
  // Headline + body text on the panel.
  root.addChild(makeText("limited offer", Color::rgb(70, 40, 40), 3,
                         {pf.x + 20, pf.y + 16, pf.width - 40, 18}));
  root.addChild(makeText("only today for you", Color::rgb(120, 110, 110), 2,
                         {pf.x + 24, pf.y + 42, pf.width - 48, 12}));
  // Tiny "AD" indicator, barely visible (regulation-mandated, §III-A).
  if (rng_.chance(0.7)) {
    root.addChild(makeText("AD",
                           lerp(panel.panelColor, colors::kBlack, 0.18), 1,
                           {pf.x + 4, pf.bottom() - 10, 10, 6}));
  }
  // Occasionally a second, medium "learn more" button styled like a CTA —
  // an AGO lookalike (the paper's false positives are exactly such
  // prominent-but-unannotated options).
  if (rng_.chance(0.18)) {
    auto extra = std::make_unique<Button>();
    const int ew = rng_.uniformInt(120, 170);
    const int eh = rng_.uniformInt(34, 44);
    extra->setFrame({pf.x + (pf.width - ew) / 2 + rng_.uniformInt(-12, 12),
                     pf.y + rng_.uniformInt(54, 90), ew, eh});
    extra->setBackground(kAccentColors[static_cast<std::size_t>(
        rng_.uniformInt(0, static_cast<int>(kAccentColors.size()) - 1))]);
    extra->setText("MORE");
    extra->setTextColor(highContrastAgainst(extra->background()));
    extra->setTextCell(2);
    extra->setResourceId(resourceIdFor("btn_more", AuiHost::kFirstParty));
    root.addChild(std::move(extra));
  }
  // Occasionally a bright badge dot near a corner — a UPO lookalike that
  // keeps the detector honest.
  if (rng_.chance(0.25)) {
    const int d = rng_.uniformInt(8, 13);
    auto dot = std::make_unique<IconView>();
    dot->setGlyph(IconGlyph::kCircle);
    dot->setGlyphColor(Color::rgb(240, 80, 70));
    dot->setFrame({pf.x + rng_.uniformInt(6, 20), pf.y + rng_.uniformInt(6, 20),
                   d, d});
    root.addChild(std::move(dot));
  }
}

GeneratedScreen ScreenGenerator::makeAui(const AuiSpec& spec) {
  if (spec.host == AuiHost::kWebView) return makeWebAui(spec);
  GeneratedScreen out;
  auto root = makeRoot(Color::rgb(245, 245, 248));
  addBenignBackdrop(*root);

  const bool guide = spec.type == AuiType::kOperationGuide;
  const double scrimAlpha =
      guide ? rng_.uniform(0.68, 0.8) : rng_.uniform(0.45, 0.62);
  addScrim(*root, scrimAlpha);
  // Effective color of the dimmed backdrop behind the scrim (the backdrop
  // is near-white, so the composite is a mid gray).
  const Color scrimBackdrop =
      lerp(Color::rgb(238, 238, 240), colors::kBlack, scrimAlpha);

  PanelLayout panel;
  if (guide) {
    // Operation guides paint straight onto the scrim: the "panel" is the
    // whole window, with a highlight ring around a fake target element.
    panel.panel = root.get();
    panel.panelFrame = {20, 40, params_.frame.width - 40,
                        params_.frame.height - 80};
    panel.panelColor = Color::rgb(40, 40, 46);
    auto ring = std::make_unique<IconView>();
    ring->setGlyph(IconGlyph::kRing);
    ring->setGlyphColor(colors::kWhite);
    ring->setThickness(2);
    const int d = rng_.uniformInt(50, 80);
    ring->setFrame({rng_.uniformInt(40, params_.frame.width - d - 40),
                    rng_.uniformInt(80, 200), d, d});
    root->addChild(std::move(ring));
  } else {
    Size panelSize;
    Color panelColor = colors::kWhite;
    switch (spec.type) {
      case AuiType::kAdvertisement:
        panelSize = {rng_.uniformInt(280, 320), rng_.uniformInt(360, 430)};
        break;
      case AuiType::kSalesPromotion:
        panelSize = {rng_.uniformInt(260, 300), rng_.uniformInt(300, 380)};
        panelColor = Color::rgb(255, 240, 235);
        break;
      case AuiType::kLuckyMoney:
        panelSize = {rng_.uniformInt(240, 280), rng_.uniformInt(280, 340)};
        panelColor = Color::rgb(205, 50, 45);  // red packet
        break;
      case AuiType::kAppUpgrade:
        panelSize = {rng_.uniformInt(280, 310), rng_.uniformInt(170, 220)};
        break;
      case AuiType::kFeedbackRequest:
        panelSize = {rng_.uniformInt(280, 310), rng_.uniformInt(200, 260)};
        break;
      case AuiType::kPermissionRequest:
        panelSize = {rng_.uniformInt(280, 310), rng_.uniformInt(180, 230)};
        break;
      case AuiType::kOperationGuide:
        break;  // handled above
    }
    panel = addPanel(*root, panelSize, panelColor, spec.agoCentral);

    if (spec.type == AuiType::kAdvertisement) {
      // The ad creative fills the panel (clickable; the AGO when no separate
      // CTA is annotated).
      auto creative = std::make_unique<ImageView>();
      const Rect inner = panel.panelFrame.inflated(-10);
      creative->setFrame(inner);
      creative->setPatternSeed(rng_.next());
      creative->setClickable(true);
      creative->setResourceId(resourceIdFor("iv_ad_creative", spec.host));
      root->addChild(std::move(creative));
      // When spec.hasAgoBox is false the creative itself is the app-guided
      // surface and no AGO box is annotated (Table II has fewer AGO boxes
      // than screenshots).
    } else if (spec.type == AuiType::kFeedbackRequest) {
      // A row of stars above the rate button.
      const int starSize = 22;
      const int total = 5 * (starSize + 6) - 6;
      int sx = panel.panelFrame.x + (panel.panelFrame.width - total) / 2;
      const int sy = panel.panelFrame.y + 60;
      for (int i = 0; i < 5; ++i) {
        auto star = std::make_unique<IconView>();
        star->setGlyph(IconGlyph::kStar);
        star->setGlyphColor(Color::rgb(245, 190, 40));
        star->setFrame({sx, sy, starSize, starSize});
        root->addChild(std::move(star));
        sx += starSize + 6;
      }
    }
    addDistractors(panel, *root);
  }

  if (spec.hasAgoBox) {
    out.truth.agoBoxes.push_back(addAgo(panel, *root, spec));
  }
  for (int i = 0; i < spec.numUpos; ++i) {
    out.truth.upoBoxes.push_back(
        addUpo(panel, *root, spec, i, scrimBackdrop));
  }

  out.truth.isAui = true;
  out.truth.spec = spec;
  out.root = std::move(root);
  return out;
}

std::string ScreenGenerator::webIdFor(std::string_view realName) {
  // Real pages: roughly a third of interesting nodes have no id at all,
  // ad frameworks ship semantic ids, and bundler minification leaves
  // one-to-three-letter junk. None of these are Android resource ids.
  const double roll = rng_.uniform();
  if (roll < 0.3) return {};
  if (roll < 0.65) return std::string(realName);
  std::string junk;
  const int len = rng_.uniformInt(1, 3);
  for (int i = 0; i < len; ++i) {
    junk.push_back(static_cast<char>('a' + rng_.uniformInt(0, 25)));
  }
  return junk;
}

GeneratedScreen ScreenGenerator::makeWebAui(const AuiSpec& spec) {
  using android::VirtualNode;
  using android::VirtualRole;
  using android::WebView;
  GeneratedScreen out;
  const int w = params_.frame.width;
  const int h = params_.frame.height;
  auto root = makeRoot(Color::rgb(245, 245, 248));
  addBenignBackdrop(*root);

  // One native view hosts the whole interstitial. Its container id belongs
  // to the embedding app and obfuscates like any third-party surface.
  auto webOwned = std::make_unique<WebView>();
  webOwned->setFrame({0, 0, w, h});
  webOwned->setResourceId(resourceIdFor("webview_overlay", spec.host));
  auto* web = static_cast<WebView*>(root->addChild(std::move(webOwned)));

  VirtualNode page;
  page.role = VirtualRole::kWebArea;
  page.virtualId = "page";
  page.bounds = {0, 0, w, h};

  // Real pages reuse DOM ids freely; model it so duplicate ids are an
  // exercised, not hypothetical, case for every consumer downstream.
  const bool duplicateIds = rng_.chance(0.3);

  // Dim overlay: a div with an rgba background — the opacity lives in the
  // color, not in a view alpha, so native scrim heuristics (opaque
  // background at fractional view alpha) see nothing modal here. Pixels
  // composite the same either way.
  VirtualNode overlay;
  overlay.role = VirtualRole::kGenericContainer;
  overlay.virtualId = duplicateIds ? "gwd-div" : webIdFor("modal-overlay");
  overlay.bounds = page.bounds;
  overlay.background = Color::rgba(
      0, 0, 0, static_cast<std::uint8_t>(rng_.uniformInt(115, 160)));
  page.children.push_back(overlay);
  const Color scrimBackdrop =
      lerp(Color::rgb(238, 238, 240), colors::kBlack,
           overlay.background.a / 255.0);

  // Panel ("ad frame" div). Flattened tree: the frame, the creative, the
  // texts and the options are all *siblings* of the overlay — document
  // order carries z-order, exactly like Chromium's flattened export.
  const int pw = rng_.uniformInt(280, std::min(320, w - 8));
  const int ph = rng_.uniformInt(360, std::min(430, h - 40));
  const int px = std::clamp((w - pw) / 2 + rng_.uniformInt(-8, 8), 2, w - pw - 2);
  int py;
  if (spec.agoCentral) {
    py = (h - ph) / 2 + rng_.uniformInt(-24, 24);
  } else {
    py = rng_.chance(0.5) ? rng_.uniformInt(30, 70)
                          : h - ph - rng_.uniformInt(30, 70);
  }
  const Rect pf{px, std::clamp(py, 26, h - ph - 2), pw, ph};
  VirtualNode frameDiv;
  frameDiv.role = VirtualRole::kGenericContainer;
  frameDiv.virtualId = duplicateIds ? "gwd-div" : webIdFor("ad-frame");
  frameDiv.bounds = pf;
  frameDiv.background = colors::kWhite;
  frameDiv.cornerRadius = 10;
  page.children.push_back(frameDiv);

  // Creative image filling the frame, clickable (the app-guided surface
  // when no separate CTA is annotated).
  VirtualNode creative;
  creative.role = VirtualRole::kImage;
  creative.virtualId = webIdFor("creative");
  creative.bounds = pf.inflated(-10);
  creative.clickable = true;
  creative.patternSeed = rng_.next();
  page.children.push_back(creative);

  // Headline + the regulation-mandated near-invisible "AD" marker.
  VirtualNode headline;
  headline.role = VirtualRole::kStaticText;
  headline.virtualId = webIdFor("headline");
  headline.text = "limited offer";
  headline.contentColor = Color::rgb(70, 40, 40);
  headline.bounds = {pf.x + 20, pf.y + 16, pf.width - 40, 18};
  page.children.push_back(headline);
  if (rng_.chance(0.7)) {
    VirtualNode marker;
    marker.role = VirtualRole::kStaticText;
    marker.text = "AD";
    marker.contentColor = lerp(colors::kWhite, colors::kBlack, 0.18);
    marker.bounds = {pf.x + 4, pf.bottom() - 10, 10, 6};
    page.children.push_back(marker);
  }

  if (spec.hasAgoBox) {
    const Color accent = kAccentColors[static_cast<std::size_t>(
        rng_.uniformInt(0, static_cast<int>(kAccentColors.size()) - 1))];
    const int bw = std::min(pf.width - 50, rng_.uniformInt(180, 230));
    const int bh = rng_.uniformInt(44, 60);
    VirtualNode cta;
    cta.role = rng_.chance(0.5) ? VirtualRole::kButton : VirtualRole::kLink;
    cta.virtualId = webIdFor("cta");
    cta.bounds = {
        std::clamp(pf.x + (pf.width - bw) / 2 + rng_.uniformInt(-6, 6),
                   pf.x + 4, pf.right() - bw - 4),
        pf.bottom() - bh - rng_.uniformInt(14, 28), bw, bh};
    cta.clickable = true;
    cta.text = kAgoTexts[static_cast<std::size_t>(
        rng_.uniformInt(0, static_cast<int>(kAgoTexts.size()) - 1))];
    cta.background = accent;
    cta.contentColor = highContrastAgainst(accent);
    cta.cornerRadius = 8;
    out.truth.agoBoxes.push_back(cta.bounds);
    page.children.push_back(cta);
  }

  for (int i = 0; i < spec.numUpos; ++i) {
    const int s = rng_.uniformInt(14, 26);
    Rect frame;
    const bool corner = spec.upoCorner != (i > 0);
    if (corner) {
      const double cornerWeights[] = {0.6, 0.2, 0.1, 0.1};  // TR TL BR BL
      const std::size_t which = rng_.pickWeighted(cornerWeights);
      const int inset = rng_.uniformInt(-s / 2, 6);
      const int cx = (which == 0 || which == 2) ? pf.right() - s - inset
                                                : pf.x + inset;
      const int cy = (which <= 1) ? pf.y + inset : pf.bottom() - s - inset;
      frame = {cx, cy, s, s};
    } else {
      const int cx = pf.x + (pf.width - s * 3) / 2 + rng_.uniformInt(-10, 10);
      const int cy = rng_.chance(0.6)
                         ? pf.bottom() + rng_.uniformInt(8, 26)
                         : pf.bottom() - s - rng_.uniformInt(4, 10);
      frame = {cx, cy, s * 3, s};
    }
    frame.x = std::clamp(frame.x, 0, w - frame.width);
    frame.y = std::clamp(frame.y, 0, h - frame.height);

    const bool floating = frame.y < pf.y + 2 || frame.x < pf.x + 2 ||
                          frame.right() > pf.right() - 2 ||
                          frame.bottom() > pf.bottom() - 2;
    const Color backdrop = floating ? scrimBackdrop : colors::kWhite;
    const Color awayFromBackdrop =
        luma(backdrop) > 128 ? colors::kBlack : colors::kWhite;
    const Color plate =
        lerp(backdrop, awayFromBackdrop, rng_.uniform(0.18, 0.38));

    VirtualNode upo;
    upo.role = VirtualRole::kButton;
    upo.virtualId = webIdFor(i == 0 ? "dismiss" : "skip");
    upo.bounds = frame;
    upo.clickable = true;
    upo.background = plate;
    upo.cornerRadius = s / 2;
    upo.contentColor = lerp(plate, awayFromBackdrop, rng_.uniform(0.35, 0.6));
    if (corner) {
      upo.crossGlyph = true;
    } else {
      upo.text = kUpoTexts[static_cast<std::size_t>(
          rng_.uniformInt(0, static_cast<int>(kUpoTexts.size()) - 1))];
    }
    if (spec.ghostUpo && i == 0) {
      upo.opacity = rng_.uniform(0.16, 0.32);  // nearly invisible
    }
    out.truth.upoBoxes.push_back(frame);
    page.children.push_back(upo);
  }

  web->setPage(std::move(page));
  out.truth.isAui = true;
  out.truth.spec = spec;
  out.root = std::move(root);
  return out;
}

GeneratedScreen ScreenGenerator::makeBenign() {
  GeneratedScreen out;
  auto root = makeRoot(Color::rgb(248, 248, 250));
  switch (rng_.uniformInt(0, 6)) {
    case 0: addFeedScreen(*root); break;
    case 1: addSettingsScreen(*root); break;
    case 2: addFormScreen(*root); break;
    case 3: addPlayerScreen(*root); break;
    case 4: addChatScreen(*root); break;
    case 5: addArticleScreen(*root); break;
    default: addCheckoutScreen(*root); break;
  }
  out.truth.isAui = false;
  out.root = std::move(root);
  return out;
}

GeneratedScreen ScreenGenerator::makeHardNegative() {
  GeneratedScreen out;
  auto root = makeRoot(Color::rgb(248, 248, 250));
  addBenignBackdrop(*root);
  addScrim(*root, rng_.uniform(0.3, 0.45));
  // A symmetric dialog: two equally prominent options — by the paper's
  // footnote 4 this is NOT an AUI even though it has a small close button.
  const PanelLayout panel =
      addPanel(*root, {rng_.uniformInt(280, 310), rng_.uniformInt(150, 190)},
               colors::kWhite, true);
  const Rect& pf = panel.panelFrame;
  root->addChild(makeText("delete this item?", Color::rgb(60, 60, 60), 2,
                          {pf.x + 20, pf.y + 24, pf.width - 40, 14}));
  const int bw = (pf.width - 3 * 14) / 2;
  const int bh = 40;
  const int by = pf.bottom() - bh - 16;
  const std::array<const char*, 2> labels = {"cancel", "ok"};
  for (int i = 0; i < 2; ++i) {
    auto button = std::make_unique<Button>();
    button->setFrame({pf.x + 14 + i * (bw + 14), by, bw, bh});
    button->setBackground(i == 0 ? Color::rgb(235, 235, 238)
                                 : Color::rgb(70, 120, 230));
    button->setText(labels[static_cast<std::size_t>(i)]);
    button->setTextColor(i == 0 ? Color::rgb(60, 60, 60) : colors::kWhite);
    button->setTextCell(2);
    button->setResourceId(i == 0 ? "btn_cancel" : "btn_ok");
    root->addChild(std::move(button));
  }
  // The small close button that must not, alone, make this an AUI.
  const int s = rng_.uniformInt(16, 22);
  auto close = std::make_unique<IconView>();
  close->setGlyph(IconGlyph::kCross);
  close->setGlyphColor(Color::rgb(120, 120, 120));
  close->setThickness(1);
  close->setBackground(lerp(colors::kWhite, colors::kGray, 0.2));
  close->setCornerRadius(s / 2);
  close->setFrame({pf.right() - s - 6, pf.y + 6, s, s});
  close->setClickable(true);
  close->setResourceId("btn_close");
  root->addChild(std::move(close));

  out.truth.isAui = false;
  out.truth.hardNegative = true;
  out.root = std::move(root);
  return out;
}

void ScreenGenerator::addFeedScreen(View& root) {
  addBenignBackdrop(root);
  // Occasionally a legitimate, closable banner ad at the bottom. It is NOT
  // an AUI (small, symmetric, honest close button), but its resource ids
  // ("ad", "close") are exactly what trips string-matching detectors.
  if (rng_.chance(params_.benignDecorations)) {
    const int w = params_.frame.width;
    const int bannerH = rng_.uniformInt(46, 60);
    auto banner = std::make_unique<ImageView>();
    banner->setPatternSeed(rng_.next());
    banner->setFrame({8, params_.frame.height - bannerH - 8, w - 16, bannerH});
    banner->setClickable(true);
    banner->setResourceId("iv_ad_banner");
    auto close = std::make_unique<IconView>();
    close->setGlyph(IconGlyph::kCross);
    close->setGlyphColor(colors::kWhite);
    close->setThickness(1);
    close->setBackground(Color::rgba(40, 40, 40, 190));
    const int s = 14;
    close->setFrame({w - 16 - s - 2, 2, s, s});
    close->setClickable(true);
    close->setResourceId("btn_close");
    banner->addChild(std::move(close));
    root.addChild(std::move(banner));
  }
}

void ScreenGenerator::addSettingsScreen(View& root) {
  const int w = params_.frame.width;
  int y = 12;
  for (int i = 0; i < 9 && y + 52 < params_.frame.height; ++i) {
    auto* row = root.addChild(std::make_unique<View>());
    row->setFrame({0, y, w, 48});
    row->setBackground(colors::kWhite);
    row->addChild(makeText("setting item", Color::rgb(50, 50, 50), 2,
                           {16, 16, 160, 14}));
    // Toggle pill.
    auto toggle = std::make_unique<View>();
    toggle->setFrame({w - 60, 14, 40, 20});
    toggle->setBackground(rng_.chance(0.5) ? Color::rgb(80, 180, 120)
                                           : Color::rgb(200, 200, 205));
    toggle->setCornerRadius(10);
    toggle->setClickable(true);
    row->addChild(std::move(toggle));
    y += 52;
  }
}

void ScreenGenerator::addFormScreen(View& root) {
  const int w = params_.frame.width;
  int y = 40;
  for (int i = 0; i < 4; ++i) {
    auto* field = root.addChild(std::make_unique<View>());
    field->setFrame({24, y, w - 48, 40});
    field->setBackground(Color::rgb(238, 238, 242));
    field->setCornerRadius(6);
    field->addChild(makeText("input", Color::rgb(160, 160, 165), 2,
                             {10, 13, 80, 12}));
    y += 56;
  }
  auto submit = std::make_unique<Button>();
  submit->setFrame({(w - 160) / 2, y + 20, 160, 44});
  submit->setBackground(Color::rgb(70, 120, 230));
  submit->setText("submit");
  submit->setTextColor(colors::kWhite);
  submit->setTextCell(2);
  submit->setResourceId("btn_submit");
  root.addChild(std::move(submit));
}

void ScreenGenerator::addPlayerScreen(View& root) {
  root.setBackground(Color::rgb(18, 18, 22));
  const int w = params_.frame.width;
  const int h = params_.frame.height;
  auto* video = root.addChild(std::make_unique<ImageView>());
  video->setFrame({0, h / 4, w, h / 3});
  static_cast<ImageView*>(video)->setPatternSeed(rng_.next());
  auto play = std::make_unique<IconView>();
  play->setGlyph(IconGlyph::kRing);
  play->setGlyphColor(colors::kWhite);
  play->setThickness(3);
  play->setFrame({w / 2 - 24, h / 4 + h / 6 - 24, 48, 48});
  play->setClickable(true);
  play->setResourceId("btn_play");
  root.addChild(std::move(play));
  // Seek bar.
  auto* bar = root.addChild(std::make_unique<View>());
  bar->setFrame({16, h / 4 + h / 3 + 12, w - 32, 4});
  bar->setBackground(Color::rgb(90, 90, 95));
}

void ScreenGenerator::addChatScreen(View& root) {
  using android::ChildLayout;
  using android::Gravity;
  using android::LinearLayout;
  using android::SizeSpec;
  auto column = std::make_unique<LinearLayout>();
  column->setFrame({0, 0, params_.frame.width, params_.frame.height});
  column->setPadding(8);
  column->setSpacing(8);
  LinearLayout* columnPtr = column.get();
  const int bubbles = rng_.uniformInt(5, 9);
  for (int i = 0; i < bubbles; ++i) {
    const bool mine = i % 2 == 0;
    auto bubble = std::make_unique<TextView>();
    bubble->setText(mine ? "hello there" : "hi how are you");
    bubble->setTextCell(2);
    bubble->setTextColor(mine ? colors::kWhite : Color::rgb(50, 50, 50));
    bubble->setBackground(mine ? Color::rgb(60, 140, 90)
                               : Color::rgb(232, 232, 236));
    bubble->setCornerRadius(10);
    ChildLayout cl;
    cl.width = SizeSpec::fixed(rng_.uniformInt(140, 220));
    cl.height = SizeSpec::fixed(rng_.uniformInt(34, 56));
    cl.gravity = mine ? Gravity::kEnd : Gravity::kStart;
    columnPtr->addLayoutChild(std::move(bubble), cl);
  }
  // Input bar pinned by a weighted spacer.
  ChildLayout spacer;
  spacer.weight = 1.0;
  columnPtr->addLayoutChild(std::make_unique<View>(), spacer);
  auto input = std::make_unique<View>();
  input->setBackground(colors::kWhite);
  input->setCornerRadius(8);
  ChildLayout inputSpec;
  inputSpec.width = SizeSpec::matchParent();
  inputSpec.height = SizeSpec::fixed(44);
  auto* inputPtr = columnPtr->addLayoutChild(std::move(input), inputSpec);
  inputPtr->setResourceId("et_message");
  columnPtr->performLayout();
  root.addChild(std::move(column));
}

void ScreenGenerator::addArticleScreen(View& root) {
  using android::ChildLayout;
  using android::LinearLayout;
  using android::SizeSpec;
  auto column = std::make_unique<LinearLayout>();
  column->setFrame({0, 0, params_.frame.width, params_.frame.height});
  column->setPadding(14);
  column->setSpacing(10);
  LinearLayout* columnPtr = column.get();

  auto headline = std::make_unique<TextView>();
  headline->setText("breaking news today");
  headline->setTextCell(3);
  headline->setTextColor(Color::rgb(30, 30, 35));
  ChildLayout hSpec;
  hSpec.width = SizeSpec::matchParent();
  hSpec.height = SizeSpec::fixed(26);
  columnPtr->addLayoutChild(std::move(headline), hSpec);

  auto hero = std::make_unique<ImageView>();
  hero->setPatternSeed(rng_.next());
  ChildLayout imgSpec;
  imgSpec.width = SizeSpec::matchParent();
  imgSpec.height = SizeSpec::fixed(rng_.uniformInt(140, 190));
  columnPtr->addLayoutChild(std::move(hero), imgSpec);

  const int paragraphs = rng_.uniformInt(6, 10);
  for (int i = 0; i < paragraphs; ++i) {
    auto line = std::make_unique<TextView>();
    line->setText("lorem ipsum dolor sit amet consetetur");
    line->setTextCell(1);
    line->setTextColor(Color::rgb(70, 70, 75));
    ChildLayout lSpec;
    lSpec.width = SizeSpec::matchParent();
    lSpec.height = SizeSpec::fixed(12);
    columnPtr->addLayoutChild(std::move(line), lSpec);
  }
  columnPtr->performLayout();
  root.addChild(std::move(column));
}

void ScreenGenerator::addCheckoutScreen(View& root) {
  addBenignBackdrop(root);
  const int w = params_.frame.width;
  const int h = params_.frame.height;
  auto* bottomBar = root.addChild(std::make_unique<View>());
  bottomBar->setFrame({0, h - 56, w, 56});
  bottomBar->setBackground(colors::kWhite);
  bottomBar->addChild(makeText("$ 12.99", Color::rgb(210, 60, 40), 3,
                               {16, 18, 100, 18}));
  auto pay = std::make_unique<Button>();
  pay->setFrame({w - 136, 8, 120, 40});
  pay->setBackground(Color::rgb(240, 120, 30));
  pay->setText("pay now");
  pay->setTextColor(colors::kWhite);
  pay->setTextCell(2);
  pay->setResourceId("btn_pay");
  bottomBar->addChild(std::move(pay));
}

}  // namespace darpa::apps
