// Synthetic app-screen generator.
//
// Substitutes for the 632 real apps + huaban.com screenshots the paper
// collected. Builds live View trees (not just images) so the same screens
// can be (a) composited into screenshots for the CV dataset, (b) dumped as
// ADB-style metadata for the FraudDroid baseline, and (c) clicked through by
// the Monkey driver at runtime.
//
// The AUI screens follow the paper's measured layout statistics (§III-A):
// 94.6 % of AGOs are central, 73.1 % of UPOs sit in a corner; third-party
// AUIs (advertisements) obfuscate their resource ids far more often than
// first-party ones, which is what starves the string-feature baseline in
// Table VI. A configurable fraction of UPOs are "ghosts" — tiny and nearly
// transparent — reproducing the false-negative cause the paper reports
// ("small in size ... of a transparent background", §VI-B).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "android/view.h"
#include "apps/aui_types.h"
#include "util/geometry.h"
#include "util/rng.h"

namespace darpa::apps {

/// Per-screenshot generation directives. The dataset builder enumerates
/// specs with exact Table I/II quotas; callers that don't care use
/// ScreenGenerator::randomSpec().
struct AuiSpec {
  AuiType type = AuiType::kAdvertisement;
  AuiHost host = AuiHost::kThirdParty;
  bool hasAgoBox = true;   ///< Some ads are whole-creative-clickable: no
                           ///< separately annotatable AGO box (Table II has
                           ///< 744 AGO boxes over 1,072 screenshots).
  int numUpos = 1;         ///< A few AUIs expose two escape options.
  bool agoCentral = true;  ///< 94.6 % in the paper.
  bool upoCorner = true;   ///< 73.1 % in the paper.
  bool ghostUpo = false;   ///< Nearly transparent UPO (FN driver).
};

/// Ground truth attached to a generated screen (boxes in window coords).
struct ScreenTruth {
  bool isAui = false;
  std::optional<AuiSpec> spec;     ///< Present when isAui.
  std::vector<Rect> agoBoxes;
  std::vector<Rect> upoBoxes;
  bool hardNegative = false;       ///< Benign screen with a small close
                                   ///< button (footnote-4 non-AUI case).
};

struct GeneratedScreen {
  std::unique_ptr<android::View> root;
  ScreenTruth truth;
};

class ScreenGenerator {
 public:
  struct Params {
    Size frame{360, 648};  ///< Window frame the screen is laid out for.
    /// Probability that a third-/first-party AUI's option resource ids are
    /// obfuscated or dynamically generated (defeats string baselines).
    double obfuscateThirdParty = 0.92;
    double obfuscateFirstParty = 0.55;
    /// Probability a benign screen carries UPO-lookalike decorations.
    double benignDecorations = 0.35;
    /// Probability a *third-party* AUI is delivered through a WebView: the
    /// whole interstitial becomes a virtual accessibility subtree behind
    /// one native view — no resource ids anywhere (§VI-C). 0 (the
    /// default) keeps the generator's draw sequence and output
    /// bit-identical to the pre-WebView generator: the knob is never even
    /// rolled when it is zero.
    double webViewAuiProb = 0.0;
  };

  ScreenGenerator(Params params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  [[nodiscard]] const Params& params() const { return params_; }

  /// Draws a spec from the paper's distributions (Table I shares, layout
  /// stats, ~8 % ghosts, ~3 % double UPOs, ~69 % AGO-box rate).
  [[nodiscard]] AuiSpec randomSpec();

  /// Builds one AUI screen per the spec.
  [[nodiscard]] GeneratedScreen makeAui(const AuiSpec& spec);

  /// Benign app screen (feed, settings, form, player, checkout...).
  [[nodiscard]] GeneratedScreen makeBenign();

  /// Benign screen with a small corner close button but *symmetric* options
  /// — the paper's footnote-4 case that must NOT be flagged as AUI.
  [[nodiscard]] GeneratedScreen makeHardNegative();

 private:
  struct PanelLayout {
    android::View* panel = nullptr;  ///< The modal panel view.
    Rect panelFrame;                 ///< Panel frame in window coords.
    Color panelColor;
  };

  // Screen scaffolding.
  std::unique_ptr<android::View> makeRoot(Color background);
  void addBenignBackdrop(android::View& root);
  void addScrim(android::View& root, double alpha);
  PanelLayout addPanel(android::View& root, Size panelSize, Color color,
                       bool centered);

  // Option construction. Both record their frame (window coords) into
  // `truth`. Options carry a filled plate covering the whole frame so the
  // rendered ink extent equals the annotation box.
  Rect addAgo(const PanelLayout& panel, android::View& root,
              const AuiSpec& spec);
  Rect addUpo(const PanelLayout& panel, android::View& root,
              const AuiSpec& spec, int upoIndex, Color scrimBackdrop);

  // Decorations that make the task realistically hard.
  void addDistractors(const PanelLayout& panel, android::View& root);

  // Resource-id helper: real name or obfuscated junk per host probability.
  [[nodiscard]] std::string resourceIdFor(std::string_view realName,
                                          AuiHost host);

  // WebView-hosted interstitial: the AUI lives entirely in a virtual
  // accessibility tree (flattened depth, page-global ids, zero resource
  // ids) but composites into the same kind of pixels as a native one.
  [[nodiscard]] GeneratedScreen makeWebAui(const AuiSpec& spec);
  // Page-global DOM id: absent, semantic, or minified junk. Never an
  // Android resource id.
  [[nodiscard]] std::string webIdFor(std::string_view realName);

  // Benign content blocks.
  void addFeedScreen(android::View& root);
  void addSettingsScreen(android::View& root);
  void addFormScreen(android::View& root);
  void addPlayerScreen(android::View& root);
  void addCheckoutScreen(android::View& root);
  // Layout-engine-based templates (exercise LinearLayout/FrameLayout so
  // hierarchy dumps show realistic container structure).
  void addChatScreen(android::View& root);
  void addArticleScreen(android::View& root);

  Params params_;
  Rng rng_;
};

}  // namespace darpa::apps
