// FraudDroid-like AUI detector — the string/placement baseline of §VI-C.
//
// FraudDroid (Dong et al., FSE'18) identifies ad views from UI metadata:
// resource-id string features plus size/placement heuristics. The paper
// reimplements it (AdViewDetector is closed source), extends the id list to
// the AUI vocabulary, and shows it collapses on real apps because ids are
// obfuscated or generated dynamically. This module consumes the ADB-style
// UiDump of the window manager — exactly the metadata a FraudDroid-like
// tool would get — and applies the same two feature families.
#pragma once

#include <string_view>
#include <vector>

#include "android/window_manager.h"
#include "util/geometry.h"

namespace darpa::baselines {

struct FraudDroidResult {
  bool isAui = false;
  std::vector<Rect> upoBoxes;  ///< Screen coords of flagged user options.
  std::vector<Rect> agoBoxes;
  /// Id-coverage telemetry: how much of the screen's metadata the
  /// string features could even see. WebView-hosted screens (virtual
  /// accessibility nodes, no resource ids at all) drive coverage toward
  /// zero — the collapse Table VI's hybrid row quantifies.
  int nodesSeen = 0;    ///< Nodes with non-empty bounds inspected.
  int nodesWithId = 0;  ///< ...of which carried a non-empty resource id.
  [[nodiscard]] double idCoverage() const {
    return nodesSeen == 0
               ? 0.0
               : static_cast<double>(nodesWithId) / static_cast<double>(nodesSeen);
  }
};

class FraudDroidDetector {
 public:
  struct Config {
    /// Resource-id substrings marking a user-preferred (dismiss) option.
    std::vector<std::string> upoIdTokens = {"close",  "skip", "cancel",
                                            "later",  "dismiss", "deny",
                                            "no_thanks"};
    /// Resource-id substrings marking an app-guided option.
    std::vector<std::string> agoIdTokens = {"cta",    "ad",    "creative",
                                            "open",   "buy",   "promo",
                                            "upgrade", "allow", "rate",
                                            "claim",  "pay"};
    /// Placement heuristics: a UPO is small...
    int maxUpoSide = 90;
    /// ...and an AGO is large relative to the screen.
    double minAgoAreaFrac = 0.01;
  };

  FraudDroidDetector() = default;
  explicit FraudDroidDetector(Config config) : config_(std::move(config)) {}

  /// Analyzes one UI dump. A screen is flagged as AUI when an id-matched
  /// small UPO co-occurs with an id-matched prominent AGO (or a dominant
  /// clickable surface). Empty ids never match, and nodes sharing both a
  /// duplicated id and identical bounds (web pages reuse DOM ids freely)
  /// collapse to one flagged box instead of inflating the result.
  [[nodiscard]] FraudDroidResult analyze(const android::UiDump& dump,
                                         Size screenSize) const;

  /// Substring match of a resource id against a token vocabulary. Public so
  /// other metadata analyzers (the static lint's id-hint rule) share exactly
  /// the FraudDroid matching semantics.
  [[nodiscard]] static bool idMatchesAny(std::string_view resourceId,
                                         const std::vector<std::string>& tokens);

 private:
  Config config_{};
};

}  // namespace darpa::baselines
