#include "baselines/frauddroid.h"

#include <algorithm>

namespace darpa::baselines {

bool FraudDroidDetector::idMatchesAny(std::string_view resourceId,
                                      const std::vector<std::string>& tokens) {
  if (resourceId.empty()) return false;
  return std::any_of(tokens.begin(), tokens.end(), [&](const std::string& t) {
    return resourceId.find(t) != std::string_view::npos;
  });
}

namespace {

/// Appends `b` unless an identical box is already flagged. Duplicate page
/// ids on co-located nodes (a real-web pattern the virtual dumps model)
/// would otherwise multiply one element into several matches.
void pushUniqueBox(std::vector<Rect>& boxes, const Rect& b) {
  if (std::find(boxes.begin(), boxes.end(), b) == boxes.end()) {
    boxes.push_back(b);
  }
}

}  // namespace

FraudDroidResult FraudDroidDetector::analyze(const android::UiDump& dump,
                                             Size screenSize) const {
  FraudDroidResult result;
  const double screenArea = static_cast<double>(screenSize.area());
  bool dominantClickable = false;

  for (const android::UiNode& node : dump) {
    const Rect& b = node.boundsOnScreen;
    if (b.empty()) continue;
    ++result.nodesSeen;
    if (!node.resourceId.empty()) ++result.nodesWithId;

    // UPO: id token match + small-size placement feature.
    if (node.clickable && idMatchesAny(node.resourceId, config_.upoIdTokens) &&
        b.width <= config_.maxUpoSide && b.height <= config_.maxUpoSide) {
      pushUniqueBox(result.upoBoxes, b);
    }
    // AGO: id token match + prominent size.
    if (idMatchesAny(node.resourceId, config_.agoIdTokens) &&
        static_cast<double>(b.area()) >= config_.minAgoAreaFrac * screenArea) {
      pushUniqueBox(result.agoBoxes, b);
    }
    // Fallback placement feature: any clickable surface dominating the
    // screen (full-screen ad creatives) counts as app-guided.
    if (node.clickable && static_cast<double>(b.area()) >= 0.3 * screenArea) {
      dominantClickable = true;
    }
  }

  result.isAui =
      !result.upoBoxes.empty() && (!result.agoBoxes.empty() || dominantClickable);
  return result;
}

}  // namespace darpa::baselines
