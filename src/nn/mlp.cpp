#include "nn/mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace darpa::nn {

Mlp::Mlp(std::vector<int> layerSizes, Rng& rng)
    : layerSizes_(std::move(layerSizes)) {
  assert(layerSizes_.size() >= 2);
  layers_.reserve(layerSizes_.size() - 1);
  for (std::size_t i = 0; i + 1 < layerSizes_.size(); ++i) {
    DenseLayer layer;
    layer.inSize = layerSizes_[i];
    layer.outSize = layerSizes_[i + 1];
    const std::size_t n =
        static_cast<std::size_t>(layer.inSize) * layer.outSize;
    layer.weights.resize(n);
    // He initialization: suited to the ReLU hidden activations.
    const float stddev = std::sqrt(2.0f / static_cast<float>(layer.inSize));
    for (float& w : layer.weights) {
      w = static_cast<float>(rng.normal(0.0, stddev));
    }
    layer.bias.assign(layer.outSize, 0.0f);
    layer.gradWeights.assign(n, 0.0f);
    layer.gradBias.assign(layer.outSize, 0.0f);
    layer.mWeights.assign(n, 0.0f);
    layer.vWeights.assign(n, 0.0f);
    layer.mBias.assign(layer.outSize, 0.0f);
    layer.vBias.assign(layer.outSize, 0.0f);
    layers_.push_back(std::move(layer));
  }
}

std::size_t Mlp::parameterCount() const {
  std::size_t n = 0;
  for (const DenseLayer& layer : layers_) {
    n += layer.weights.size() + layer.bias.size();
  }
  return n;
}

namespace {

// Batched dense layer: out[n][j] = act(bias[j] + sum_i W[j][i] * in[n][i]).
// Each tile of input rows is transposed into column-major `tile` (tile[i][n])
// so the inner loop advances kRowTile INDEPENDENT accumulators per weight
// element instead of one serial dependency chain per sample — that is where
// the batched speedup comes from: the chains interleave (ILP) and the loop
// over n vectorizes. The per-(n, j) accumulation — bias first, then
// ascending i — is exactly the scalar order; transposing moves data, never
// reorders a sum, so every output is bit-identical to the unbatched path.
constexpr int kRowTile = 64;

/// One transposed tile of the batched dense layer. NT is the tile's row
/// count as a compile-time constant for full tiles (fixed-trip inner loops
/// vectorize without runtime prologues) and 0 for the runtime-sized
/// remainder tile. Both instantiations evaluate the identical expressions.
template <int NT>
void denseForwardTile(const DenseLayer& layer, const float* in, int n0,
                      int ntRuntime, float* out, bool relu, float* tile) {
  const int nt = NT > 0 ? NT : ntRuntime;
  for (int n = 0; n < nt; ++n) {
    const float* x = in + static_cast<std::size_t>(n0 + n) * layer.inSize;
    for (int i = 0; i < layer.inSize; ++i) {
      tile[static_cast<std::size_t>(i) * nt + n] = x[i];
    }
  }
  float acc[kRowTile];
  for (int j = 0; j < layer.outSize; ++j) {
    const float* row =
        layer.weights.data() + static_cast<std::size_t>(j) * layer.inSize;
    const float bias = layer.bias[static_cast<std::size_t>(j)];
    for (int n = 0; n < nt; ++n) acc[n] = bias;
    for (int i = 0; i < layer.inSize; ++i) {
      const float w = row[i];
      const float* col = tile + static_cast<std::size_t>(i) * nt;
      for (int n = 0; n < nt; ++n) acc[n] += w * col[n];
    }
    for (int n = 0; n < nt; ++n) {
      const float sum = acc[n];
      out[static_cast<std::size_t>(n0 + n) * layer.outSize + j] =
          relu && sum < 0.0f ? 0.0f : sum;
    }
  }
}

void denseForwardBatch(const DenseLayer& layer, const float* in, int batch,
                       float* out, bool relu, float* tile) {
  for (int n0 = 0; n0 < batch; n0 += kRowTile) {
    const int nt = std::min(batch, n0 + kRowTile) - n0;
    if (nt == kRowTile) {
      denseForwardTile<kRowTile>(layer, in, n0, nt, out, relu, tile);
    } else if (nt == 1) {
      // Single-row calls (forward / forwardCachedInto in the training inner
      // loop) collapse to a plain dot product; the runtime-stride remainder
      // path would pay an address multiply and a loop branch per element.
      denseForwardTile<1>(layer, in, n0, nt, out, relu, tile);
    } else {
      denseForwardTile<0>(layer, in, n0, nt, out, relu, tile);
    }
  }
}

ForwardScratch& threadScratch() {
  thread_local ForwardScratch scratch;
  return scratch;
}

}  // namespace

float* ForwardScratch::ensureFloats(bool second, std::size_t n) {
  std::vector<float>& v = second ? b_ : a_;
  const std::size_t before = v.capacity();
  if (n > before) {
    v.reserve(n);
    ++growths_;
    grownBytes_ +=
        static_cast<std::int64_t>((v.capacity() - before) * sizeof(float));
  }
  if (v.size() < n) v.resize(n);
  return v.data();
}

float* ForwardScratch::ensureTile(std::size_t n) {
  const std::size_t before = t_.capacity();
  if (n > before) {
    t_.reserve(n);
    ++growths_;
    grownBytes_ +=
        static_cast<std::int64_t>((t_.capacity() - before) * sizeof(float));
  }
  if (t_.size() < n) t_.resize(n);
  return t_.data();
}

std::int8_t* ForwardScratch::ensureInt8(std::size_t n) {
  const std::size_t before = q_.capacity();
  if (n > before) {
    q_.reserve(n);
    ++growths_;
    grownBytes_ += static_cast<std::int64_t>(q_.capacity() - before);
  }
  if (q_.size() < n) q_.resize(n);
  return q_.data();
}

void Mlp::forwardBatch(std::span<const float> inputs, int batch,
                       std::span<float> outputs,
                       ForwardScratch& scratch) const {
  assert(inputs.size() ==
         static_cast<std::size_t>(batch) * static_cast<std::size_t>(inputSize()));
  assert(outputs.size() ==
         static_cast<std::size_t>(batch) * static_cast<std::size_t>(outputSize()));
  if (batch <= 0) return;
  const float* cur = inputs.data();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const bool hidden = l + 1 < layers_.size();
    float* dst =
        hidden ? scratch.ensureFloats(l % 2 != 0,
                                      static_cast<std::size_t>(batch) *
                                          layers_[l].outSize)
               : outputs.data();
    float* tile = scratch.ensureTile(static_cast<std::size_t>(kRowTile) *
                                     layers_[l].inSize);
    denseForwardBatch(layers_[l], cur, batch, dst, hidden, tile);
    cur = dst;
  }
}

void Mlp::forwardInto(std::span<const float> x, std::span<float> out,
                      ForwardScratch& scratch) const {
  forwardBatch(x, 1, out, scratch);
}

std::vector<float> Mlp::forward(std::span<const float> x) const {
  assert(static_cast<int>(x.size()) == inputSize());
  std::vector<float> out(static_cast<std::size_t>(outputSize()));
  forwardInto(x, out, threadScratch());
  return out;
}

void Mlp::forwardCachedInto(std::span<const float> x, Cache& cache) const {
  assert(static_cast<int>(x.size()) == inputSize());
  // Resize without releasing capacity: a hoisted Cache stops allocating
  // after its first use.
  if (cache.activations.size() != layers_.size() + 1) {
    cache.activations.resize(layers_.size() + 1);
  }
  cache.activations[0].assign(x.begin(), x.end());
  ForwardScratch& scratch = threadScratch();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const bool hidden = l + 1 < layers_.size();
    std::vector<float>& out = cache.activations[l + 1];
    out.resize(static_cast<std::size_t>(layers_[l].outSize));
    float* tile =
        scratch.ensureTile(static_cast<std::size_t>(layers_[l].inSize));
    denseForwardBatch(layers_[l], cache.activations[l].data(), 1, out.data(),
                      hidden, tile);
  }
}

std::vector<float> Mlp::forwardCached(std::span<const float> x,
                                      Cache& cache) const {
  forwardCachedInto(x, cache);
  return cache.activations.back();
}

void Mlp::accumulateGradient(const Cache& cache, std::span<const float> dOut) {
  assert(cache.activations.size() == layers_.size() + 1);
  // Backprop work buffers: thread-local so per-example calls in the training
  // inner loops stop churning the heap. assign/resize reuse capacity.
  thread_local std::vector<float> delta;
  thread_local std::vector<float> prevDelta;
  delta.assign(dOut.begin(), dOut.end());
  for (std::size_t l = layers_.size(); l-- > 0;) {
    DenseLayer& layer = layers_[l];
    const std::vector<float>& input = cache.activations[l];
    const std::vector<float>& output = cache.activations[l + 1];
    const bool hidden = l + 1 < layers_.size();
    // ReLU gradient gate on hidden layers (output layer is linear).
    if (hidden) {
      for (int j = 0; j < layer.outSize; ++j) {
        if (output[static_cast<std::size_t>(j)] <= 0.0f) {
          delta[static_cast<std::size_t>(j)] = 0.0f;
        }
      }
    }
    for (int j = 0; j < layer.outSize; ++j) {
      const float d = delta[static_cast<std::size_t>(j)];
      if (d == 0.0f) continue;
      float* gRow = layer.gradWeights.data() +
                    static_cast<std::size_t>(j) * layer.inSize;
      for (int i = 0; i < layer.inSize; ++i) {
        gRow[i] += d * input[static_cast<std::size_t>(i)];
      }
      layer.gradBias[static_cast<std::size_t>(j)] += d;
    }
    if (l == 0) break;  // No need to propagate into the raw input.
    prevDelta.assign(static_cast<std::size_t>(layer.inSize), 0.0f);
    for (int j = 0; j < layer.outSize; ++j) {
      const float d = delta[static_cast<std::size_t>(j)];
      if (d == 0.0f) continue;
      const float* row =
          layer.weights.data() + static_cast<std::size_t>(j) * layer.inSize;
      for (int i = 0; i < layer.inSize; ++i) {
        prevDelta[static_cast<std::size_t>(i)] += d * row[i];
      }
    }
    delta.swap(prevDelta);
  }
}

void Mlp::applyAdam(const AdamConfig& config, int batchSize) {
  if (batchSize <= 0) batchSize = 1;
  ++adamStep_;
  const float t = static_cast<float>(adamStep_);
  const float correction1 = 1.0f - std::pow(config.beta1, t);
  const float correction2 = 1.0f - std::pow(config.beta2, t);
  const float invBatch = 1.0f / static_cast<float>(batchSize);
  auto update = [&](std::vector<float>& params, std::vector<float>& grads,
                    std::vector<float>& m, std::vector<float>& v) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      const float g = grads[i] * invBatch;
      m[i] = config.beta1 * m[i] + (1.0f - config.beta1) * g;
      v[i] = config.beta2 * v[i] + (1.0f - config.beta2) * g * g;
      const float mHat = m[i] / correction1;
      const float vHat = v[i] / correction2;
      params[i] -=
          config.learningRate * mHat / (std::sqrt(vHat) + config.epsilon);
      grads[i] = 0.0f;
    }
  };
  for (DenseLayer& layer : layers_) {
    update(layer.weights, layer.gradWeights, layer.mWeights, layer.vWeights);
    update(layer.bias, layer.gradBias, layer.mBias, layer.vBias);
  }
}

namespace {
constexpr std::uint32_t kMagic = 0x44415250;  // "DARP"

template <typename T>
void writePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}
template <typename T>
bool readPod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}
}  // namespace

void Mlp::save(std::ostream& out) const {
  writePod(out, kMagic);
  writePod(out, static_cast<std::uint32_t>(layerSizes_.size()));
  for (int s : layerSizes_) writePod(out, static_cast<std::int32_t>(s));
  for (const DenseLayer& layer : layers_) {
    out.write(reinterpret_cast<const char*>(layer.weights.data()),
              static_cast<std::streamsize>(layer.weights.size() * sizeof(float)));
    out.write(reinterpret_cast<const char*>(layer.bias.data()),
              static_cast<std::streamsize>(layer.bias.size() * sizeof(float)));
  }
}

std::optional<Mlp> Mlp::load(std::istream& in) {
  std::uint32_t magic = 0;
  if (!readPod(in, magic) || magic != kMagic) return std::nullopt;
  std::uint32_t layerCount = 0;
  if (!readPod(in, layerCount) || layerCount < 2 || layerCount > 64) {
    return std::nullopt;
  }
  std::vector<int> sizes;
  for (std::uint32_t i = 0; i < layerCount; ++i) {
    std::int32_t s = 0;
    if (!readPod(in, s) || s <= 0 || s > 1 << 20) return std::nullopt;
    sizes.push_back(s);
  }
  Rng rng(0);  // weights are overwritten below
  Mlp model(sizes, rng);
  for (DenseLayer& layer : model.layers_) {
    in.read(reinterpret_cast<char*>(layer.weights.data()),
            static_cast<std::streamsize>(layer.weights.size() * sizeof(float)));
    in.read(reinterpret_cast<char*>(layer.bias.data()),
            static_cast<std::streamsize>(layer.bias.size() * sizeof(float)));
    if (!in) return std::nullopt;
  }
  return model;
}

void Mlp::clearGradients() {
  for (DenseLayer& layer : layers_) {
    std::fill(layer.gradWeights.begin(), layer.gradWeights.end(), 0.0f);
    std::fill(layer.gradBias.begin(), layer.gradBias.end(), 0.0f);
  }
}

}  // namespace darpa::nn
