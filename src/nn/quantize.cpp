#include "nn/quantize.h"

#include <algorithm>
#include <cmath>

namespace darpa::nn {

namespace {
std::int8_t quantizeValue(float x, float scale) {
  const float q = std::round(x / scale);
  return static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
}
}  // namespace

QuantizedMlp QuantizedMlp::fromMlp(
    const Mlp& model, std::span<const std::vector<float>> calibrationInputs) {
  const auto layers = model.layers();

  // Calibration: track the max |input| seen at each layer while replaying
  // the float forward pass over the calibration set.
  std::vector<float> inputMax(layers.size(), 0.0f);
  for (const std::vector<float>& sample : calibrationInputs) {
    std::vector<float> current = sample;
    for (std::size_t l = 0; l < layers.size(); ++l) {
      for (float v : current) {
        inputMax[l] = std::max(inputMax[l], std::fabs(v));
      }
      // Float forward through layer l (ReLU on hidden layers).
      const DenseLayer& layer = layers[l];
      std::vector<float> next(static_cast<std::size_t>(layer.outSize), 0.0f);
      for (int j = 0; j < layer.outSize; ++j) {
        const float* row =
            layer.weights.data() + static_cast<std::size_t>(j) * layer.inSize;
        float sum = layer.bias[static_cast<std::size_t>(j)];
        for (int i = 0; i < layer.inSize; ++i) {
          sum += row[i] * current[static_cast<std::size_t>(i)];
        }
        const bool hidden = l + 1 < layers.size();
        next[static_cast<std::size_t>(j)] =
            hidden && sum < 0.0f ? 0.0f : sum;
      }
      current.swap(next);
    }
  }

  QuantizedMlp out;
  out.layers_.reserve(layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const DenseLayer& layer = layers[l];
    QuantizedLayer q;
    q.inSize = layer.inSize;
    q.outSize = layer.outSize;
    float weightMax = 0.0f;
    for (float w : layer.weights) weightMax = std::max(weightMax, std::fabs(w));
    const float weightScale = weightMax > 0.0f ? weightMax / 127.0f : 1.0f;
    q.weights.resize(layer.weights.size());
    for (std::size_t i = 0; i < layer.weights.size(); ++i) {
      q.weights[i] = quantizeValue(layer.weights[i], weightScale);
    }
    q.bias = layer.bias;
    q.inputScale = inputMax[l] > 0.0f ? inputMax[l] / 127.0f : 1.0f;
    // Constant folding: one multiplier per layer instead of two.
    q.dequantScale = weightScale * q.inputScale;
    out.layers_.push_back(std::move(q));
  }
  return out;
}

namespace {

// Batched int8 dense layer, row-tiled and tile-transposed like the fp32
// GEMM (see mlp.cpp): the activations are quantized straight into the
// column-major tile so the inner loop runs kRowTile independent int32
// accumulators per weight element. The per-(n, j) int32 accumulation is
// exact, so any ordering would be bit-equal anyway.
constexpr int kRowTile = 64;

/// One transposed tile; NT = compile-time row count for full tiles, 0 for
/// the runtime-sized remainder (see mlp.cpp — same shape, int32 math).
template <int NT>
void quantizedForwardTile(const QuantizedLayer& layer, const float* in,
                          int n0, int ntRuntime, float* out, bool relu,
                          std::int8_t* tile) {
  const int nt = NT > 0 ? NT : ntRuntime;
  for (int n = 0; n < nt; ++n) {
    const float* x = in + static_cast<std::size_t>(n0 + n) * layer.inSize;
    for (int i = 0; i < layer.inSize; ++i) {
      tile[static_cast<std::size_t>(i) * nt + n] =
          quantizeValue(x[i], layer.inputScale);
    }
  }
  std::int32_t acc[kRowTile];
  for (int j = 0; j < layer.outSize; ++j) {
    const std::int8_t* row =
        layer.weights.data() + static_cast<std::size_t>(j) * layer.inSize;
    const float bias = layer.bias[static_cast<std::size_t>(j)];
    for (int n = 0; n < nt; ++n) acc[n] = 0;
    for (int i = 0; i < layer.inSize; ++i) {
      const std::int32_t w = row[i];
      const std::int8_t* col = tile + static_cast<std::size_t>(i) * nt;
      for (int n = 0; n < nt; ++n) {
        acc[n] += w * static_cast<std::int32_t>(col[n]);
      }
    }
    for (int n = 0; n < nt; ++n) {
      const float sum = static_cast<float>(acc[n]) * layer.dequantScale + bias;
      out[static_cast<std::size_t>(n0 + n) * layer.outSize + j] =
          relu && sum < 0.0f ? 0.0f : sum;
    }
  }
}

void quantizedForwardBatch(const QuantizedLayer& layer, const float* in,
                           int batch, float* out, bool relu,
                           std::int8_t* tile) {
  for (int n0 = 0; n0 < batch; n0 += kRowTile) {
    const int nt = std::min(batch, n0 + kRowTile) - n0;
    if (nt == kRowTile) {
      quantizedForwardTile<kRowTile>(layer, in, n0, nt, out, relu, tile);
    } else if (nt == 1) {
      // Single-row calls collapse to a plain int8 dot product (see mlp.cpp).
      quantizedForwardTile<1>(layer, in, n0, nt, out, relu, tile);
    } else {
      quantizedForwardTile<0>(layer, in, n0, nt, out, relu, tile);
    }
  }
}

}  // namespace

void QuantizedMlp::forwardBatch(std::span<const float> inputs, int batch,
                                std::span<float> outputs,
                                ForwardScratch& scratch) const {
  if (batch <= 0 || layers_.empty()) return;
  const float* cur = inputs.data();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const QuantizedLayer& layer = layers_[l];
    std::int8_t* tile = scratch.ensureInt8(
        static_cast<std::size_t>(kRowTile) * layer.inSize);
    const bool hidden = l + 1 < layers_.size();
    float* dst = hidden ? scratch.ensureFloats(
                              l % 2 != 0, static_cast<std::size_t>(batch) *
                                              layer.outSize)
                        : outputs.data();
    quantizedForwardBatch(layer, cur, batch, dst, hidden, tile);
    cur = dst;
  }
}

void QuantizedMlp::forwardInto(std::span<const float> x, std::span<float> out,
                               ForwardScratch& scratch) const {
  forwardBatch(x, 1, out, scratch);
}

std::vector<float> QuantizedMlp::forward(std::span<const float> x) const {
  std::vector<float> out(static_cast<std::size_t>(outputSize()));
  thread_local ForwardScratch scratch;
  forwardInto(x, out, scratch);
  return out;
}

std::size_t QuantizedMlp::modelBytes() const {
  std::size_t bytes = 0;
  for (const QuantizedLayer& layer : layers_) {
    bytes += layer.weights.size() * sizeof(std::int8_t);
    bytes += layer.bias.size() * sizeof(float);
    bytes += 2 * sizeof(float);  // inputScale + dequantScale
  }
  return bytes;
}

}  // namespace darpa::nn
