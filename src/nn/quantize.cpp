#include "nn/quantize.h"

#include <algorithm>
#include <cmath>

namespace darpa::nn {

namespace {
std::int8_t quantizeValue(float x, float scale) {
  const float q = std::round(x / scale);
  return static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
}
}  // namespace

QuantizedMlp QuantizedMlp::fromMlp(
    const Mlp& model, std::span<const std::vector<float>> calibrationInputs) {
  const auto layers = model.layers();

  // Calibration: track the max |input| seen at each layer while replaying
  // the float forward pass over the calibration set.
  std::vector<float> inputMax(layers.size(), 0.0f);
  for (const std::vector<float>& sample : calibrationInputs) {
    std::vector<float> current = sample;
    for (std::size_t l = 0; l < layers.size(); ++l) {
      for (float v : current) {
        inputMax[l] = std::max(inputMax[l], std::fabs(v));
      }
      // Float forward through layer l (ReLU on hidden layers).
      const DenseLayer& layer = layers[l];
      std::vector<float> next(static_cast<std::size_t>(layer.outSize), 0.0f);
      for (int j = 0; j < layer.outSize; ++j) {
        const float* row =
            layer.weights.data() + static_cast<std::size_t>(j) * layer.inSize;
        float sum = layer.bias[static_cast<std::size_t>(j)];
        for (int i = 0; i < layer.inSize; ++i) {
          sum += row[i] * current[static_cast<std::size_t>(i)];
        }
        const bool hidden = l + 1 < layers.size();
        next[static_cast<std::size_t>(j)] =
            hidden && sum < 0.0f ? 0.0f : sum;
      }
      current.swap(next);
    }
  }

  QuantizedMlp out;
  out.layers_.reserve(layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const DenseLayer& layer = layers[l];
    QuantizedLayer q;
    q.inSize = layer.inSize;
    q.outSize = layer.outSize;
    float weightMax = 0.0f;
    for (float w : layer.weights) weightMax = std::max(weightMax, std::fabs(w));
    const float weightScale = weightMax > 0.0f ? weightMax / 127.0f : 1.0f;
    q.weights.resize(layer.weights.size());
    for (std::size_t i = 0; i < layer.weights.size(); ++i) {
      q.weights[i] = quantizeValue(layer.weights[i], weightScale);
    }
    q.bias = layer.bias;
    q.inputScale = inputMax[l] > 0.0f ? inputMax[l] / 127.0f : 1.0f;
    // Constant folding: one multiplier per layer instead of two.
    q.dequantScale = weightScale * q.inputScale;
    out.layers_.push_back(std::move(q));
  }
  return out;
}

std::vector<float> QuantizedMlp::forward(std::span<const float> x) const {
  std::vector<float> current(x.begin(), x.end());
  std::vector<std::int8_t> quantized;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const QuantizedLayer& layer = layers_[l];
    quantized.resize(current.size());
    for (std::size_t i = 0; i < current.size(); ++i) {
      quantized[i] = quantizeValue(current[i], layer.inputScale);
    }
    std::vector<float> next(static_cast<std::size_t>(layer.outSize), 0.0f);
    const bool hidden = l + 1 < layers_.size();
    for (int j = 0; j < layer.outSize; ++j) {
      const std::int8_t* row =
          layer.weights.data() + static_cast<std::size_t>(j) * layer.inSize;
      std::int32_t acc = 0;
      for (int i = 0; i < layer.inSize; ++i) {
        acc += static_cast<std::int32_t>(row[i]) * quantized[static_cast<std::size_t>(i)];
      }
      const float sum = static_cast<float>(acc) * layer.dequantScale +
                        layer.bias[static_cast<std::size_t>(j)];
      next[static_cast<std::size_t>(j)] = hidden && sum < 0.0f ? 0.0f : sum;
    }
    current.swap(next);
  }
  return current;
}

std::size_t QuantizedMlp::modelBytes() const {
  std::size_t bytes = 0;
  for (const QuantizedLayer& layer : layers_) {
    bytes += layer.weights.size() * sizeof(std::int8_t);
    bytes += layer.bias.size() * sizeof(float);
    bytes += 2 * sizeof(float);  // inputScale + dequantScale
  }
  return bytes;
}

}  // namespace darpa::nn
