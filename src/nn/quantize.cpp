#include "nn/quantize.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels/int8_kernels.h"

namespace darpa::nn {

namespace {
std::int8_t quantizeValue(float x, float scale) {
  return kernels::quantizeOne(x, scale);
}
}  // namespace

QuantizedMlp QuantizedMlp::fromMlp(
    const Mlp& model, std::span<const std::vector<float>> calibrationInputs) {
  const auto layers = model.layers();

  // Calibration: track the max |input| seen at each layer while replaying
  // the float forward pass over the calibration set.
  std::vector<float> inputMax(layers.size(), 0.0f);
  for (const std::vector<float>& sample : calibrationInputs) {
    std::vector<float> current = sample;
    for (std::size_t l = 0; l < layers.size(); ++l) {
      for (float v : current) {
        inputMax[l] = std::max(inputMax[l], std::fabs(v));
      }
      // Float forward through layer l (ReLU on hidden layers).
      const DenseLayer& layer = layers[l];
      std::vector<float> next(static_cast<std::size_t>(layer.outSize), 0.0f);
      for (int j = 0; j < layer.outSize; ++j) {
        const float* row =
            layer.weights.data() + static_cast<std::size_t>(j) * layer.inSize;
        float sum = layer.bias[static_cast<std::size_t>(j)];
        for (int i = 0; i < layer.inSize; ++i) {
          sum += row[i] * current[static_cast<std::size_t>(i)];
        }
        const bool hidden = l + 1 < layers.size();
        next[static_cast<std::size_t>(j)] =
            hidden && sum < 0.0f ? 0.0f : sum;
      }
      current.swap(next);
    }
  }

  QuantizedMlp out;
  out.layers_.reserve(layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    const DenseLayer& layer = layers[l];
    QuantizedLayer q;
    q.inSize = layer.inSize;
    q.outSize = layer.outSize;
    float weightMax = 0.0f;
    for (float w : layer.weights) weightMax = std::max(weightMax, std::fabs(w));
    const float weightScale = weightMax > 0.0f ? weightMax / 127.0f : 1.0f;
    q.weights.resize(layer.weights.size());
    for (std::size_t i = 0; i < layer.weights.size(); ++i) {
      q.weights[i] = quantizeValue(layer.weights[i], weightScale);
    }
    q.bias = layer.bias;
    q.inputScale = inputMax[l] > 0.0f ? inputMax[l] / 127.0f : 1.0f;
    // Constant folding: one multiplier per layer instead of two.
    q.dequantScale = weightScale * q.inputScale;
    // Pre-pack for the SIMD microkernels: pad each weight row to the
    // kernel stride with zeros once at conversion time, so every lane
    // runs full-width vector loops over arbitrary inSize.
    q.paddedInSize = kernels::padInt8RowSize(layer.inSize);
    q.packedWeights.assign(
        static_cast<std::size_t>(layer.outSize) * q.paddedInSize, 0);
    for (int j = 0; j < layer.outSize; ++j) {
      std::copy_n(
          q.weights.begin() + static_cast<std::size_t>(j) * layer.inSize,
          layer.inSize,
          q.packedWeights.begin() +
              static_cast<std::size_t>(j) * q.paddedInSize);
    }
    out.layers_.push_back(std::move(q));
  }
  return out;
}

// The batched int8 layer walk. PR 5's in-place tile-transposed kernel
// moved to src/nn/kernels/ as the scalar reference lane; this body is now
// just layout staging (quantize the whole batch into a padded row-major
// int8 matrix) around the dispatched microkernel. Exact int32
// accumulation makes every lane — and the old tile kernel — bit-equal.
void QuantizedMlp::forwardBatchWithKernel(
    std::span<const float> inputs, int batch, std::span<float> outputs,
    ForwardScratch& scratch, const kernels::Int8Kernel& kernel) const {
  if (batch <= 0 || layers_.empty()) return;
  const float* cur = inputs.data();
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const QuantizedLayer& layer = layers_[l];
    std::int8_t* qact = scratch.ensureInt8(static_cast<std::size_t>(batch) *
                                           layer.paddedInSize);
    kernel.quantizeRows(cur, batch, layer.inSize, layer.paddedInSize,
                        layer.inputScale, qact);
    const bool hidden = l + 1 < layers_.size();
    float* dst = hidden ? scratch.ensureFloats(
                              l % 2 != 0, static_cast<std::size_t>(batch) *
                                              layer.outSize)
                        : outputs.data();
    kernel.gemm(qact, layer.packedWeights.data(), layer.bias.data(),
                layer.dequantScale, batch, layer.paddedInSize, layer.outSize,
                hidden, dst);
    cur = dst;
  }
}

void QuantizedMlp::forwardBatch(std::span<const float> inputs, int batch,
                                std::span<float> outputs,
                                ForwardScratch& scratch) const {
  forwardBatchWithKernel(inputs, batch, outputs, scratch,
                         kernels::activeInt8Kernel());
}

void QuantizedMlp::forwardInto(std::span<const float> x, std::span<float> out,
                               ForwardScratch& scratch) const {
  forwardBatch(x, 1, out, scratch);
}

std::vector<float> QuantizedMlp::forward(std::span<const float> x) const {
  std::vector<float> out(static_cast<std::size_t>(outputSize()));
  thread_local ForwardScratch scratch;
  forwardInto(x, out, scratch);
  return out;
}

std::size_t QuantizedMlp::modelBytes() const {
  std::size_t bytes = 0;
  for (const QuantizedLayer& layer : layers_) {
    bytes += layer.weights.size() * sizeof(std::int8_t);
    bytes += layer.bias.size() * sizeof(float);
    bytes += 2 * sizeof(float);  // inputScale + dequantScale
  }
  return bytes;
}

}  // namespace darpa::nn
