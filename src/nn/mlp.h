// A small from-scratch neural-network substrate.
//
// The paper trains YOLOv5 in PyTorch on a GPU server. Our reproduction's
// detectors are grid/region detectors whose prediction heads are multi-layer
// perceptrons trained with this module: dense layers, ReLU hidden
// activations, a linear output layer (losses apply their own sigmoid),
// backprop, and Adam. It is deliberately minimal — exactly what dense
// prediction heads over engineered visual features need — but it is a real
// trainable network, not a lookup table: weights are initialized from a
// seeded RNG and fitted by gradient descent on the generated dataset.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <vector>

#include "util/rng.h"

namespace darpa::nn {

/// One fully-connected layer, out = W x + b, with Adam state.
struct DenseLayer {
  int inSize = 0;
  int outSize = 0;
  std::vector<float> weights;  ///< Row-major (outSize x inSize).
  std::vector<float> bias;     ///< outSize.

  // Accumulated gradients (averaged at step time) and Adam moments.
  std::vector<float> gradWeights;
  std::vector<float> gradBias;
  std::vector<float> mWeights, vWeights;
  std::vector<float> mBias, vBias;
};

/// Hyperparameters for Adam.
struct AdamConfig {
  float learningRate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
};

/// MLP with ReLU hidden activations and a linear output layer.
class Mlp {
 public:
  /// `layerSizes` = {in, hidden..., out}; requires >= 2 entries. Weights are
  /// He-initialized from `rng`.
  Mlp(std::vector<int> layerSizes, Rng& rng);

  [[nodiscard]] int inputSize() const { return layerSizes_.front(); }
  [[nodiscard]] int outputSize() const { return layerSizes_.back(); }
  [[nodiscard]] std::size_t parameterCount() const;
  [[nodiscard]] std::span<const DenseLayer> layers() const { return layers_; }

  /// Inference-only forward pass.
  [[nodiscard]] std::vector<float> forward(std::span<const float> x) const;

  /// Per-example activation cache for backprop.
  struct Cache {
    std::vector<std::vector<float>> activations;  ///< Input + each layer out.
  };

  /// Forward pass that records activations; returns the output.
  std::vector<float> forwardCached(std::span<const float> x, Cache& cache) const;

  /// Accumulates parameter gradients for one example given dLoss/dOutput.
  void accumulateGradient(const Cache& cache, std::span<const float> dOut);

  /// Applies one Adam step using gradients averaged over `batchSize`
  /// accumulated examples, then clears the accumulators.
  void applyAdam(const AdamConfig& config, int batchSize);

  /// Zeroes accumulated gradients (applyAdam does this automatically).
  void clearGradients();

  /// Binary serialization of the trained parameters (layer sizes, weights,
  /// biases; optimizer state is not persisted). Lets benches cache trained
  /// models on disk instead of retraining per binary.
  void save(std::ostream& out) const;
  [[nodiscard]] static std::optional<Mlp> load(std::istream& in);

 private:
  std::vector<int> layerSizes_;
  std::vector<DenseLayer> layers_;
  std::int64_t adamStep_ = 0;
};

}  // namespace darpa::nn
