// A small from-scratch neural-network substrate.
//
// The paper trains YOLOv5 in PyTorch on a GPU server. Our reproduction's
// detectors are grid/region detectors whose prediction heads are multi-layer
// perceptrons trained with this module: dense layers, ReLU hidden
// activations, a linear output layer (losses apply their own sigmoid),
// backprop, and Adam. It is deliberately minimal — exactly what dense
// prediction heads over engineered visual features need — but it is a real
// trainable network, not a lookup table: weights are initialized from a
// seeded RNG and fitted by gradient descent on the generated dataset.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>
#include <ostream>
#include <span>
#include <vector>

#include "util/rng.h"

namespace darpa::nn {

/// One fully-connected layer, out = W x + b, with Adam state.
struct DenseLayer {
  int inSize = 0;
  int outSize = 0;
  std::vector<float> weights;  ///< Row-major (outSize x inSize).
  std::vector<float> bias;     ///< outSize.

  // Accumulated gradients (averaged at step time) and Adam moments.
  std::vector<float> gradWeights;
  std::vector<float> gradBias;
  std::vector<float> mWeights, vWeights;
  std::vector<float> mBias, vBias;
};

/// Hyperparameters for Adam.
struct AdamConfig {
  float learningRate = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
};

/// Caller-owned scratch arena for the forward paths. Holds the intermediate
/// activation matrices (and the int8 staging buffer for QuantizedMlp) so
/// that repeated forward/forwardBatch calls reuse capacity instead of
/// heap-allocating: after the first call at a given batch size every later
/// call is allocation-free. Not thread-safe — keep one per thread (the
/// detectors keep a thread_local one).
class ForwardScratch {
 public:
  /// Number of buffer growths (i.e. heap allocations) since the last
  /// resetStats(). Stops increasing once the arena is warmed up; the
  /// hot-path bench's zero-steady-state-allocation contract reads this.
  [[nodiscard]] std::int64_t growths() const { return growths_; }
  /// Capacity bytes added by those growths.
  [[nodiscard]] std::int64_t grownBytes() const { return grownBytes_; }
  void resetStats() {
    growths_ = 0;
    grownBytes_ = 0;
  }

 private:
  friend class Mlp;
  friend class QuantizedMlp;

  float* ensureFloats(bool second, std::size_t n);
  float* ensureTile(std::size_t n);
  std::int8_t* ensureInt8(std::size_t n);

  std::vector<float> a_, b_;     ///< Ping-pong activation matrices.
  std::vector<float> t_;         ///< Transposed row tile (column-major).
  std::vector<std::int8_t> q_;   ///< Quantized-activation staging.
  std::int64_t growths_ = 0;
  std::int64_t grownBytes_ = 0;
};

/// MLP with ReLU hidden activations and a linear output layer.
class Mlp {
 public:
  /// `layerSizes` = {in, hidden..., out}; requires >= 2 entries. Weights are
  /// He-initialized from `rng`.
  Mlp(std::vector<int> layerSizes, Rng& rng);

  [[nodiscard]] int inputSize() const { return layerSizes_.front(); }
  [[nodiscard]] int outputSize() const { return layerSizes_.back(); }
  [[nodiscard]] std::size_t parameterCount() const;
  [[nodiscard]] std::span<const DenseLayer> layers() const { return layers_; }

  /// Inference-only forward pass.
  [[nodiscard]] std::vector<float> forward(std::span<const float> x) const;

  /// Single-input forward into a caller-provided output span (outputSize()
  /// floats), using `scratch` for intermediates — the allocation-free core
  /// of forward(). Bit-equal to forward().
  void forwardInto(std::span<const float> x, std::span<float> out,
                   ForwardScratch& scratch) const;

  /// Scores `batch` inputs at once. `inputs` is row-major (batch x
  /// inputSize()); `outputs` receives row-major (batch x outputSize()).
  /// Each dense layer runs as a cache-blocked GEMM, but the per-(row, unit)
  /// accumulation order — bias first, then ascending input index — is
  /// exactly the scalar forward() order, so every output is bit-identical
  /// to calling forward() per row. Allocation-free once `scratch` is warm.
  void forwardBatch(std::span<const float> inputs, int batch,
                    std::span<float> outputs, ForwardScratch& scratch) const;

  /// Per-example activation cache for backprop.
  struct Cache {
    std::vector<std::vector<float>> activations;  ///< Input + each layer out.

    /// The last layer's output (valid after forwardCached/forwardCachedInto).
    [[nodiscard]] std::span<const float> output() const {
      return activations.empty() ? std::span<const float>{}
                                 : std::span<const float>(activations.back());
    }
  };

  /// Forward pass that records activations; returns the output.
  std::vector<float> forwardCached(std::span<const float> x, Cache& cache) const;

  /// forwardCached without materializing a copy of the output — read it via
  /// cache.output(). Reuses the cache's buffer capacity across calls, so a
  /// hoisted Cache makes training epochs allocation-free.
  void forwardCachedInto(std::span<const float> x, Cache& cache) const;

  /// Accumulates parameter gradients for one example given dLoss/dOutput.
  void accumulateGradient(const Cache& cache, std::span<const float> dOut);

  /// Applies one Adam step using gradients averaged over `batchSize`
  /// accumulated examples, then clears the accumulators.
  void applyAdam(const AdamConfig& config, int batchSize);

  /// Zeroes accumulated gradients (applyAdam does this automatically).
  void clearGradients();

  /// Binary serialization of the trained parameters (layer sizes, weights,
  /// biases; optimizer state is not persisted). Lets benches cache trained
  /// models on disk instead of retraining per binary.
  void save(std::ostream& out) const;
  [[nodiscard]] static std::optional<Mlp> load(std::istream& in);

 private:
  std::vector<int> layerSizes_;
  std::vector<DenseLayer> layers_;
  std::int64_t adamStep_ = 0;
};

}  // namespace darpa::nn
