// Loss functions used by the detection heads.
//
// All classification outputs are trained as logits with a numerically stable
// sigmoid + binary cross-entropy; box regression uses smooth-L1 (Huber),
// the standard choice in one- and two-stage detectors.
#pragma once

#include <cmath>

namespace darpa::nn {

/// Numerically stable sigmoid.
[[nodiscard]] inline float sigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

/// Binary cross-entropy with logits. `target` in {0, 1} (soft targets OK).
[[nodiscard]] inline float bceWithLogits(float logit, float target) {
  // max(x,0) - x*t + log(1 + exp(-|x|)) — the standard stable form.
  const float maxPart = logit > 0.0f ? logit : 0.0f;
  return maxPart - logit * target + std::log1p(std::exp(-std::fabs(logit)));
}

/// d(BCE)/d(logit) = sigmoid(logit) - target.
[[nodiscard]] inline float bceWithLogitsGrad(float logit, float target) {
  return sigmoid(logit) - target;
}

/// Smooth-L1 (Huber with delta = 1).
[[nodiscard]] inline float smoothL1(float pred, float target) {
  const float d = pred - target;
  const float a = std::fabs(d);
  return a < 1.0f ? 0.5f * d * d : a - 0.5f;
}

/// d(smoothL1)/d(pred).
[[nodiscard]] inline float smoothL1Grad(float pred, float target) {
  const float d = pred - target;
  if (d > 1.0f) return 1.0f;
  if (d < -1.0f) return -1.0f;
  return d;
}

}  // namespace darpa::nn
