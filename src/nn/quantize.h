// Post-training int8 quantization — the "ncnn port" of the reproduction.
//
// The paper converts the trained YOLOv5 model PyTorch → ONNX → ncnn,
// replacing redundant calculations with constants, to run on an ARM phone.
// This module performs the analogous transformation on our Mlp heads:
//
//  * weights: per-layer symmetric int8 (scale = max|w| / 127);
//  * activations: per-layer dynamic-range int8, scales calibrated by running
//    the float model over a calibration set and recording per-layer input
//    maxima;
//  * constant folding: the weight scale and input scale of a layer are
//    folded into a single per-layer dequantization multiplier at conversion
//    time, so the inference inner loop is pure int8*int8→int32 accumulation
//    followed by one multiply-add per output.
//
// The observable effect matches Table IV: a model ~4x smaller with a small
// (~1-2 %) F1 loss relative to the fp32 "server" model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/kernels/int8_kernels.h"
#include "nn/mlp.h"

namespace darpa::nn {

struct QuantizedLayer {
  int inSize = 0;
  int outSize = 0;
  std::vector<std::int8_t> weights;  ///< Row-major (outSize x inSize).
  std::vector<float> bias;           ///< Kept fp32 (as ncnn does).
  float inputScale = 1.0f;           ///< Activation quantization step.
  float dequantScale = 1.0f;         ///< Folded weightScale * inputScale.
  /// inSize rounded up to kernels::kInt8KernelPad — the row stride of
  /// packedWeights and of the quantized-activation scratch matrix.
  int paddedInSize = 0;
  /// Kernel-ready weights: outSize rows of paddedInSize int8, the tail of
  /// each row zero-filled. Zeros add exactly zero to the int32 dot
  /// product, so ragged inSize costs no in-kernel edge handling.
  std::vector<std::int8_t> packedWeights;
};

class QuantizedMlp {
 public:
  /// Converts a trained float model. `calibrationInputs` should be a
  /// representative sample of real inputs; activation scales are taken from
  /// the maxima observed while running them through the float model. An
  /// empty calibration set falls back to scale 1 (poor accuracy — tests
  /// cover this contrast deliberately).
  static QuantizedMlp fromMlp(
      const Mlp& model,
      std::span<const std::vector<float>> calibrationInputs);

  [[nodiscard]] int inputSize() const {
    return layers_.empty() ? 0 : layers_.front().inSize;
  }
  [[nodiscard]] int outputSize() const {
    return layers_.empty() ? 0 : layers_.back().outSize;
  }

  /// Int8 inference; same output contract as Mlp::forward.
  [[nodiscard]] std::vector<float> forward(std::span<const float> x) const;

  /// Single-input forward into a caller-provided span; allocation-free once
  /// `scratch` is warm. Bit-equal to forward().
  void forwardInto(std::span<const float> x, std::span<float> out,
                   ForwardScratch& scratch) const;

  /// Batched int8 inference, same layout contract as Mlp::forwardBatch.
  /// Routes through the process-wide kernel table
  /// (kernels::activeInt8Kernel()): scalar, SSE4.1, or AVX2 picked once
  /// from CPUID / DARPA_KERNEL. Int32 accumulation is exact, so every
  /// lane — and any batch size — is bit-equal to per-row forward().
  void forwardBatch(std::span<const float> inputs, int batch,
                    std::span<float> outputs, ForwardScratch& scratch) const;

  /// forwardBatch through an explicitly chosen kernel, bypassing the
  /// dispatcher — the hook the lane-parity tests and the per-lane
  /// roofline bench stand on. Same contract and results as forwardBatch.
  void forwardBatchWithKernel(std::span<const float> inputs, int batch,
                              std::span<float> outputs,
                              ForwardScratch& scratch,
                              const kernels::Int8Kernel& kernel) const;

  /// Serialized parameter footprint in bytes (int8 weights + fp32 biases +
  /// two scales per layer) — compare with 4 bytes/weight for the fp32 model.
  [[nodiscard]] std::size_t modelBytes() const;

  [[nodiscard]] std::span<const QuantizedLayer> layers() const {
    return layers_;
  }

 private:
  std::vector<QuantizedLayer> layers_;
};

}  // namespace darpa::nn
