// SSE4.1 lane: 16 int8 MACs per pmaddubsw, widened exactly through
// pmaddwd — the same |a| x sign(w, a) construction as the AVX2 lane at
// half the width (see int8_avx2.cpp for the overflow/exactness argument).
// target("sse4.1") pulls in SSSE3 (pabsb/psignb/pmaddubsw) and roundps;
// the dispatcher gates on both CPUID bits anyway. This lane exists for
// pre-AVX2 x86 hosts and as a second, differently-shaped witness that
// lane choice cannot change results.
#include "nn/kernels/int8_lanes.h"

#if DARPA_INT8_X86_LANES

#include <immintrin.h>

#include <cstring>

namespace darpa::nn::kernels::detail {
namespace {

#define DARPA_SSE4 __attribute__((target("sse4.1")))

/// Exact std::round for 4 floats — same construction as the AVX2 lane.
DARPA_SSE4 inline __m128 roundHalfAway4(__m128 q) {
  const __m128 signMask = _mm_set1_ps(-0.0f);
  const __m128 t = _mm_round_ps(q, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
  const __m128 diff = _mm_sub_ps(q, t);
  const __m128 absDiff = _mm_andnot_ps(signMask, diff);
  const __m128 needStep = _mm_cmpge_ps(absDiff, _mm_set1_ps(0.5f));
  const __m128 one = _mm_and_ps(needStep, _mm_set1_ps(1.0f));
  const __m128 step = _mm_or_ps(one, _mm_and_ps(q, signMask));
  return _mm_add_ps(t, step);
}

DARPA_SSE4 inline std::int32_t hsum4(__m128i acc) {
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(1, 0, 3, 2)));
  acc = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(acc);
}

/// One weight row's contribution for 16 activation bytes.
DARPA_SSE4 inline __m128i dot16(__m128i absA, __m128i a, const std::int8_t* w,
                                __m128i acc, __m128i ones16) {
  const __m128i wv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w));
  const __m128i signedW = _mm_sign_epi8(wv, a);
  const __m128i pairs = _mm_maddubs_epi16(absA, signedW);
  return _mm_add_epi32(acc, _mm_madd_epi16(pairs, ones16));
}

}  // namespace

DARPA_SSE4 void quantizeRowsSse4(const float* in, int rows, int inSize,
                                 int rowStride, float scale,
                                 std::int8_t* out) {
  const __m128 vScale = _mm_set1_ps(scale);
  const __m128 vLo = _mm_set1_ps(-127.0f);
  const __m128 vHi = _mm_set1_ps(127.0f);
  for (int n = 0; n < rows; ++n) {
    const float* x = in + static_cast<std::size_t>(n) * inSize;
    std::int8_t* q = out + static_cast<std::size_t>(n) * rowStride;
    int i = 0;
    for (; i + 4 <= inSize; i += 4) {
      const __m128 v = _mm_div_ps(_mm_loadu_ps(x + i), vScale);
      __m128 r = roundHalfAway4(v);
      r = _mm_min_ps(_mm_max_ps(r, vLo), vHi);
      const __m128i qi = _mm_cvttps_epi32(r);
      const __m128i packed8 =
          _mm_packs_epi16(_mm_packs_epi32(qi, qi), _mm_setzero_si128());
      const int quad = _mm_cvtsi128_si32(packed8);
      std::memcpy(q + i, &quad, 4);
    }
    for (; i < inSize; ++i) q[i] = quantizeOne(x[i], scale);
    if (i < rowStride) {
      std::memset(q + i, 0, static_cast<std::size_t>(rowStride - i));
    }
  }
}

DARPA_SSE4 void gemmSse4(const std::int8_t* act, const std::int8_t* weights,
                         const float* bias, float dequantScale, int rows,
                         int rowStride, int outSize, bool relu, float* out) {
  const __m128i ones16 = _mm_set1_epi16(1);
  const __m128 vDequant = _mm_set1_ps(dequantScale);
  const __m128 vZero = _mm_setzero_ps();
  for (int n = 0; n < rows; ++n) {
    const std::int8_t* a = act + static_cast<std::size_t>(n) * rowStride;
    float* o = out + static_cast<std::size_t>(n) * outSize;
    int j = 0;
    for (; j + 4 <= outSize; j += 4) {
      const std::int8_t* w0 =
          weights + static_cast<std::size_t>(j) * rowStride;
      const std::int8_t* w1 = w0 + rowStride;
      const std::int8_t* w2 = w1 + rowStride;
      const std::int8_t* w3 = w2 + rowStride;
      __m128i acc0 = _mm_setzero_si128();
      __m128i acc1 = _mm_setzero_si128();
      __m128i acc2 = _mm_setzero_si128();
      __m128i acc3 = _mm_setzero_si128();
      for (int i = 0; i < rowStride; i += 16) {
        const __m128i av =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
        const __m128i absA = _mm_abs_epi8(av);
        acc0 = dot16(absA, av, w0 + i, acc0, ones16);
        acc1 = dot16(absA, av, w1 + i, acc1, ones16);
        acc2 = dot16(absA, av, w2 + i, acc2, ones16);
        acc3 = dot16(absA, av, w3 + i, acc3, ones16);
      }
      // hadd pairs: [sum(acc0), sum(acc1), sum(acc2), sum(acc3)].
      const __m128i sums = _mm_hadd_epi32(_mm_hadd_epi32(acc0, acc1),
                                          _mm_hadd_epi32(acc2, acc3));
      __m128 f = _mm_cvtepi32_ps(sums);
      f = _mm_add_ps(_mm_mul_ps(f, vDequant), _mm_loadu_ps(bias + j));
      if (relu) f = _mm_andnot_ps(_mm_cmplt_ps(f, vZero), f);
      _mm_storeu_ps(o + j, f);
    }
    for (; j < outSize; ++j) {
      const std::int8_t* w =
          weights + static_cast<std::size_t>(j) * rowStride;
      __m128i acc = _mm_setzero_si128();
      for (int i = 0; i < rowStride; i += 16) {
        const __m128i av =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
        acc = dot16(_mm_abs_epi8(av), av, w + i, acc, ones16);
      }
      o[j] = int8Epilogue(hsum4(acc), dequantScale, bias[j], relu);
    }
  }
}

#undef DARPA_SSE4

}  // namespace darpa::nn::kernels::detail

#endif  // DARPA_INT8_X86_LANES
