// Runtime per-arch dispatch for the int8 GEMM lanes.
//
// Resolution happens exactly once per process (std::once_flag): CPUID
// picks the widest compiled-in lane the host supports, and the
// DARPA_KERNEL env var (scalar|sse4|avx2) can pin a specific lane for
// benchmarking, parity testing, and sanitizer runs. An unknown name, or a
// lane the host cannot run, aborts immediately — a typo that silently
// fell back to dispatch would produce perf numbers attributed to the
// wrong kernel.
//
// Determinism: reading the environment and CPUID inside digest-affecting
// code is normally banned (ambient host state), but this read is
// digest-safe by construction — it happens once, before any forward, and
// every lane it can select is bit-equal to every other (exact int32
// accumulation; see int8_kernels.h). The lane choice can change how fast
// a digest is produced, never its bytes. detlint's
// env-config-in-digest-path rule audits exactly this pattern; the allow
// region below is its documented instance.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "nn/kernels/int8_lanes.h"

namespace darpa::nn::kernels {

namespace {

const Int8Kernel kScalarKernel = {Int8Lane::kScalar, "scalar",
                                  /*vectorWidth=*/1,
                                  /*macsPerInstruction=*/1,
                                  detail::quantizeRowsScalar,
                                  detail::gemmScalar};

#if DARPA_INT8_X86_LANES
const Int8Kernel kSse4Kernel = {Int8Lane::kSse4, "sse4",
                                /*vectorWidth=*/16,
                                /*macsPerInstruction=*/16,
                                detail::quantizeRowsSse4, detail::gemmSse4};
const Int8Kernel kAvx2Kernel = {Int8Lane::kAvx2, "avx2",
                                /*vectorWidth=*/32,
                                /*macsPerInstruction=*/32,
                                detail::quantizeRowsAvx2, detail::gemmAvx2};
#endif

[[noreturn]] void abortUnusableLane(const char* requested,
                                    const char* reason) {
  std::fprintf(stderr,
               "DARPA_KERNEL=%s: %s (known lanes: scalar, sse4, avx2; "
               "supported on this host:%s%s%s)\n",
               requested, reason,
               laneSupported(Int8Lane::kScalar) ? " scalar" : "",
               laneSupported(Int8Lane::kSse4) ? " sse4" : "",
               laneSupported(Int8Lane::kAvx2) ? " avx2" : "");
  std::abort();
}

}  // namespace

const char* laneName(Int8Lane lane) {
  switch (lane) {
    case Int8Lane::kScalar:
      return "scalar";
    case Int8Lane::kSse4:
      return "sse4";
    case Int8Lane::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool laneCompiled(Int8Lane lane) {
#if DARPA_INT8_X86_LANES
  (void)lane;
  return true;
#else
  return lane == Int8Lane::kScalar;
#endif
}

// detlint: begin-allow(env-config-in-digest-path) one-time kernel-lane
// resolution; every selectable lane is bit-equal (exact int32 GEMM), so
// this ambient read can change digest latency, never digest bytes.
bool laneSupported(Int8Lane lane) {
  if (!laneCompiled(lane)) return false;
#if DARPA_INT8_X86_LANES
  switch (lane) {
    case Int8Lane::kScalar:
      return true;
    case Int8Lane::kSse4:
      return __builtin_cpu_supports("ssse3") &&
             __builtin_cpu_supports("sse4.1");
    case Int8Lane::kAvx2:
      return __builtin_cpu_supports("avx2");
  }
  return false;
#else
  return lane == Int8Lane::kScalar;
#endif
}

const Int8Kernel& kernelForLane(Int8Lane lane) {
#if DARPA_INT8_X86_LANES
  if (lane == Int8Lane::kAvx2) return kAvx2Kernel;
  if (lane == Int8Lane::kSse4) return kSse4Kernel;
#endif
  return kScalarKernel;
}

const Int8Kernel& resolveInt8Kernel(const char* envOverride) {
  if (envOverride != nullptr && envOverride[0] != '\0') {
    Int8Lane forced = Int8Lane::kScalar;
    if (std::strcmp(envOverride, "scalar") == 0) {
      forced = Int8Lane::kScalar;
    } else if (std::strcmp(envOverride, "sse4") == 0) {
      forced = Int8Lane::kSse4;
    } else if (std::strcmp(envOverride, "avx2") == 0) {
      forced = Int8Lane::kAvx2;
    } else {
      abortUnusableLane(envOverride, "unknown kernel lane");
    }
    if (!laneSupported(forced)) {
      abortUnusableLane(envOverride,
                        "lane not compiled in or not supported by this CPU");
    }
    return kernelForLane(forced);
  }
  if (laneSupported(Int8Lane::kAvx2)) return kernelForLane(Int8Lane::kAvx2);
  if (laneSupported(Int8Lane::kSse4)) return kernelForLane(Int8Lane::kSse4);
  return kScalarKernel;
}

const Int8Kernel& activeInt8Kernel() {
  static std::once_flag flag;
  static const Int8Kernel* chosen = nullptr;
  std::call_once(flag,
                 [] { chosen = &resolveInt8Kernel(std::getenv("DARPA_KERNEL")); });
  return *chosen;
}
// detlint: end-allow(env-config-in-digest-path)

Int8Lane activeInt8Lane() { return activeInt8Kernel().lane; }

}  // namespace darpa::nn::kernels
