// AVX2 lane: 32 int8 MACs per vpmaddubsw, widened exactly through
// vpmaddwd into int32 accumulators. Compiled with a per-function
// target("avx2") attribute so this TU builds — and the default binary
// ships it — without any global -mavx2/-march flag; the dispatcher only
// calls in after __builtin_cpu_supports("avx2").
//
// Signed x signed int8 through an unsigned x signed instruction: vpmaddubsw
// computes u8*s8 pairs. We feed |a| (fits u8: activations are clamped to
// +-127) against sign(w, a) so each product is exactly a*w, and the i16
// pair sums max out at 127*127*2 = 32258 < 32767 — no saturation, every
// intermediate exact, hence bit-equality with the scalar lane for free.
#include "nn/kernels/int8_lanes.h"

#if DARPA_INT8_X86_LANES

#include <immintrin.h>

#include <cstring>

namespace darpa::nn::kernels::detail {
namespace {

#define DARPA_AVX2 __attribute__((target("avx2")))

/// Exact std::round (half away from zero) for 8 floats. roundps only
/// offers nearest-even, so: t = trunc(q); step where |q - t| >= 0.5 by
/// +-1 with q's sign. q - trunc(q) is exact (Sterbenz for |q| >= 1,
/// trivially for |q| < 1), so the comparison is exact too.
DARPA_AVX2 inline __m256 roundHalfAway(__m256 q) {
  const __m256 signMask = _mm256_set1_ps(-0.0f);
  const __m256 t =
      _mm256_round_ps(q, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
  const __m256 diff = _mm256_sub_ps(q, t);
  const __m256 absDiff = _mm256_andnot_ps(signMask, diff);
  const __m256 needStep =
      _mm256_cmp_ps(absDiff, _mm256_set1_ps(0.5f), _CMP_GE_OQ);
  const __m256 one = _mm256_and_ps(needStep, _mm256_set1_ps(1.0f));
  const __m256 step = _mm256_or_ps(one, _mm256_and_ps(q, signMask));
  return _mm256_add_ps(t, step);
}

/// Horizontal-sums four int32 accumulators into one __m128i lane each:
/// [sum(acc0), sum(acc1), sum(acc2), sum(acc3)].
DARPA_AVX2 inline __m128i hsum4x8(__m256i acc0, __m256i acc1, __m256i acc2,
                                  __m256i acc3) {
  const __m256i h01 = _mm256_hadd_epi32(acc0, acc1);
  const __m256i h23 = _mm256_hadd_epi32(acc2, acc3);
  const __m256i h = _mm256_hadd_epi32(h01, h23);
  return _mm_add_epi32(_mm256_castsi256_si128(h),
                       _mm256_extracti128_si256(h, 1));
}

DARPA_AVX2 inline std::int32_t hsum8(__m256i acc) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

/// One weight row's contribution for 32 activation bytes.
DARPA_AVX2 inline __m256i dot32(__m256i absA, __m256i a, const std::int8_t* w,
                                __m256i acc, __m256i ones16) {
  const __m256i wv =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  const __m256i signedW = _mm256_sign_epi8(wv, a);
  const __m256i pairs = _mm256_maddubs_epi16(absA, signedW);
  return _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones16));
}

}  // namespace

DARPA_AVX2 void quantizeRowsAvx2(const float* in, int rows, int inSize,
                                 int rowStride, float scale,
                                 std::int8_t* out) {
  const __m256 vScale = _mm256_set1_ps(scale);
  const __m256 vLo = _mm256_set1_ps(-127.0f);
  const __m256 vHi = _mm256_set1_ps(127.0f);
  for (int n = 0; n < rows; ++n) {
    const float* x = in + static_cast<std::size_t>(n) * inSize;
    std::int8_t* q = out + static_cast<std::size_t>(n) * rowStride;
    int i = 0;
    for (; i + 8 <= inSize; i += 8) {
      const __m256 v = _mm256_div_ps(_mm256_loadu_ps(x + i), vScale);
      __m256 r = roundHalfAway(v);
      r = _mm256_min_ps(_mm256_max_ps(r, vLo), vHi);
      const __m256i qi = _mm256_cvttps_epi32(r);
      const __m128i packed16 = _mm_packs_epi32(
          _mm256_castsi256_si128(qi), _mm256_extracti128_si256(qi, 1));
      const __m128i packed8 = _mm_packs_epi16(packed16, packed16);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(q + i), packed8);
    }
    for (; i < inSize; ++i) q[i] = quantizeOne(x[i], scale);
    if (i < rowStride) {
      std::memset(q + i, 0, static_cast<std::size_t>(rowStride - i));
    }
  }
}

DARPA_AVX2 void gemmAvx2(const std::int8_t* act, const std::int8_t* weights,
                         const float* bias, float dequantScale, int rows,
                         int rowStride, int outSize, bool relu, float* out) {
  const __m256i ones16 = _mm256_set1_epi16(1);
  const __m128 vDequant = _mm_set1_ps(dequantScale);
  const __m128 vZero = _mm_setzero_ps();
  for (int n = 0; n < rows; ++n) {
    const std::int8_t* a = act + static_cast<std::size_t>(n) * rowStride;
    float* o = out + static_cast<std::size_t>(n) * outSize;
    int j = 0;
    for (; j + 4 <= outSize; j += 4) {
      const std::int8_t* w0 =
          weights + static_cast<std::size_t>(j) * rowStride;
      const std::int8_t* w1 = w0 + rowStride;
      const std::int8_t* w2 = w1 + rowStride;
      const std::int8_t* w3 = w2 + rowStride;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (int i = 0; i < rowStride; i += 32) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i absA = _mm256_abs_epi8(av);
        acc0 = dot32(absA, av, w0 + i, acc0, ones16);
        acc1 = dot32(absA, av, w1 + i, acc1, ones16);
        acc2 = dot32(absA, av, w2 + i, acc2, ones16);
        acc3 = dot32(absA, av, w3 + i, acc3, ones16);
      }
      // Dequant epilogue, 4 outputs wide: cvt, mul, add — exactly the
      // scalar int8Epilogue sequence — then the sign-exact ReLU blend
      // (andnot keeps a -0.0 sum as -0.0, where maxps would not).
      __m128 f = _mm_cvtepi32_ps(hsum4x8(acc0, acc1, acc2, acc3));
      f = _mm_add_ps(_mm_mul_ps(f, vDequant), _mm_loadu_ps(bias + j));
      if (relu) f = _mm_andnot_ps(_mm_cmplt_ps(f, vZero), f);
      _mm_storeu_ps(o + j, f);
    }
    for (; j < outSize; ++j) {
      const std::int8_t* w =
          weights + static_cast<std::size_t>(j) * rowStride;
      __m256i acc = _mm256_setzero_si256();
      for (int i = 0; i < rowStride; i += 32) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        acc = dot32(_mm256_abs_epi8(av), av, w + i, acc, ones16);
      }
      o[j] = int8Epilogue(hsum8(acc), dequantScale, bias[j], relu);
    }
  }
}

#undef DARPA_AVX2

}  // namespace darpa::nn::kernels::detail

#endif  // DARPA_INT8_X86_LANES
