// Hand-vectorized int8 GEMM microkernels with runtime per-arch dispatch.
//
// The paper ships its YOLOv5 detector through ncnn's int8 conversion
// because on-device inference lives or dies on the quantized inner loop.
// This directory is the analogous move for our QuantizedMlp: explicit
// SIMD dot-product kernels (SSE4.1 pmaddubsw, AVX2 vpmaddubsw/vpmaddwd)
// next to an always-available scalar reference lane, selected ONCE at
// runtime from CPUID — not at configure time — so one default (non
// -march=native) binary runs the best kernel any host offers.
//
// Bit-equality contract. The int8 path accumulates dot products in exact
// int32 arithmetic, so every lane computes the same accumulator no matter
// how the multiplies are grouped — unlike fp32, reassociation is free.
// The float stages around the core are kept bit-equal by construction:
//
//  * activation quantize: round(x / scale) uses an exact SIMD emulation
//    of std::round's half-away-from-zero (trunc + |frac| >= 0.5 step;
//    x - trunc(x) is exact in IEEE floats), the same divps as the scalar
//    division, and the same +-127 clamp;
//  * dequant epilogue: float(acc) * dequantScale + bias evaluates the
//    identical mul-then-add sequence (no FMA in any lane), and ReLU is a
//    sign-exact `sum < 0 ? 0 : sum` blend, not max(sum, 0) — maxps would
//    flip the sign of a -0.0 sum.
//
// Every lane therefore produces byte-identical outputs, which is what
// lets the fleet digests stay stable while different hosts run different
// kernels. tests/nn_test.cpp MlpBatchTest.* enforces this per lane.
//
// Layout contract. Activations are quantized into a row-major int8
// matrix whose rows are padded to kInt8KernelPad bytes with zeros, and
// QuantizedLayer pre-packs its weights the same way. Zero padding
// contributes exactly zero to every int32 dot product, so ragged inSize
// (1, width-1, width+1, anything) is handled inside the kernel with
// full-width vector loops — no wholesale fallback to scalar. Ragged
// outSize takes a narrow epilogue; ragged batch is just the row loop.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace darpa::nn::kernels {

/// Row padding (bytes) for quantized activations and packed weights.
/// 32 = one AVX2 register; also a whole number of SSE registers, and the
/// scalar lane is indifferent. Padding bytes are zero, contributing
/// nothing to the exact int32 accumulation.
inline constexpr int kInt8KernelPad = 32;

/// Rounds `n` up to the kernel row padding.
[[nodiscard]] inline int padInt8RowSize(int n) {
  return (n + kInt8KernelPad - 1) / kInt8KernelPad * kInt8KernelPad;
}

/// The shared scalar quantizer — the definition of correctness for every
/// lane's vectorized equivalent (and the tail path inside SIMD lanes).
[[nodiscard]] inline std::int8_t quantizeOne(float x, float scale) {
  const float q = std::round(x / scale);
  return static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
}

enum class Int8Lane : int { kScalar = 0, kSse4 = 1, kAvx2 = 2 };
inline constexpr int kInt8LaneCount = 3;

/// Quantizes `rows` rows of `inSize` floats (contiguous, stride inSize)
/// into row-major int8 with row stride `rowStride` (>= inSize, a multiple
/// of kInt8KernelPad); bytes [inSize, rowStride) of each row are zeroed.
using Int8QuantizeRowsFn = void (*)(const float* in, int rows, int inSize,
                                    int rowStride, float scale,
                                    std::int8_t* out);

/// out[n][j] = relu?(float(sum_i act[n][i] * weights[j][i]) * dequantScale
///             + bias[j]) over `rowStride`-wide zero-padded int8 rows.
/// `out` is row-major rows x outSize (unpadded).
using Int8GemmFn = void (*)(const std::int8_t* act,
                            const std::int8_t* weights, const float* bias,
                            float dequantScale, int rows, int rowStride,
                            int outSize, bool relu, float* out);

struct Int8Kernel {
  Int8Lane lane = Int8Lane::kScalar;
  const char* name = "scalar";
  /// int8 elements touched per vector op (1 / 16 / 32) — roofline metadata.
  int vectorWidth = 1;
  /// int8 MACs retired per multiply-accumulate instruction in the inner
  /// loop (1 scalar, 16 pmaddubsw, 32 vpmaddubsw) — roofline metadata.
  int macsPerInstruction = 1;
  Int8QuantizeRowsFn quantizeRows = nullptr;
  Int8GemmFn gemm = nullptr;
};

/// Lane name for logs/JSON ("scalar", "sse4", "avx2").
[[nodiscard]] const char* laneName(Int8Lane lane);

/// True when the lane's kernel was compiled into this binary (x86 builds
/// compile all three via per-function target attributes; other arches
/// compile only the scalar lane).
[[nodiscard]] bool laneCompiled(Int8Lane lane);

/// True when the lane is compiled AND the host CPU reports the ISA.
[[nodiscard]] bool laneSupported(Int8Lane lane);

/// Kernel table entry for an explicitly chosen lane (tests, benches).
/// Pre: laneSupported(lane).
[[nodiscard]] const Int8Kernel& kernelForLane(Int8Lane lane);

/// Resolution logic behind activeInt8Kernel(), exposed for tests:
/// `envOverride` plays the role of getenv("DARPA_KERNEL"). nullptr or ""
/// picks the best supported lane; a known, supported lane name forces
/// that lane; anything else — unknown name or a lane this host cannot
/// run — aborts with a diagnostic (a typo'd DARPA_KERNEL silently
/// falling back would make every perf number it was set to pin down
/// unattributable).
[[nodiscard]] const Int8Kernel& resolveInt8Kernel(const char* envOverride);

/// The process-wide kernel: resolved exactly once (std::once_flag) from
/// CPUID + the DARPA_KERNEL env override, then immutable. All QuantizedMlp
/// forwards route through this table.
[[nodiscard]] const Int8Kernel& activeInt8Kernel();

/// Lane of activeInt8Kernel() — for logs, benches, and BENCH JSON.
[[nodiscard]] Int8Lane activeInt8Lane();

}  // namespace darpa::nn::kernels
