// Scalar reference lane — the semantic ground truth the SIMD lanes are
// bit-equal to, and the kernel every host (any arch, DARPA_KERNEL=scalar,
// sanitizer lanes) can always run. This is the PR 5 cache-blocked kernel
// reshaped onto the padded row-major layout: the int32 accumulation is
// exact, so the loop order change is invisible in the results; four
// independent accumulator chains per activation row keep the ILP the old
// batch-transposed tile bought, without the transpose.
#include "nn/kernels/int8_lanes.h"

namespace darpa::nn::kernels::detail {

void quantizeRowsScalar(const float* in, int rows, int inSize, int rowStride,
                        float scale, std::int8_t* out) {
  for (int n = 0; n < rows; ++n) {
    const float* x = in + static_cast<std::size_t>(n) * inSize;
    std::int8_t* q = out + static_cast<std::size_t>(n) * rowStride;
    for (int i = 0; i < inSize; ++i) q[i] = quantizeOne(x[i], scale);
    for (int i = inSize; i < rowStride; ++i) q[i] = 0;
  }
}

void gemmScalar(const std::int8_t* act, const std::int8_t* weights,
                const float* bias, float dequantScale, int rows, int rowStride,
                int outSize, bool relu, float* out) {
  for (int n = 0; n < rows; ++n) {
    const std::int8_t* a = act + static_cast<std::size_t>(n) * rowStride;
    float* o = out + static_cast<std::size_t>(n) * outSize;
    int j = 0;
    for (; j + 4 <= outSize; j += 4) {
      const std::int8_t* w0 =
          weights + static_cast<std::size_t>(j) * rowStride;
      const std::int8_t* w1 = w0 + rowStride;
      const std::int8_t* w2 = w1 + rowStride;
      const std::int8_t* w3 = w2 + rowStride;
      std::int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
      for (int i = 0; i < rowStride; ++i) {
        const std::int32_t ai = a[i];
        acc0 += ai * w0[i];
        acc1 += ai * w1[i];
        acc2 += ai * w2[i];
        acc3 += ai * w3[i];
      }
      o[j] = int8Epilogue(acc0, dequantScale, bias[j], relu);
      o[j + 1] = int8Epilogue(acc1, dequantScale, bias[j + 1], relu);
      o[j + 2] = int8Epilogue(acc2, dequantScale, bias[j + 2], relu);
      o[j + 3] = int8Epilogue(acc3, dequantScale, bias[j + 3], relu);
    }
    for (; j < outSize; ++j) {
      const std::int8_t* w =
          weights + static_cast<std::size_t>(j) * rowStride;
      std::int32_t acc = 0;
      for (int i = 0; i < rowStride; ++i) {
        acc += static_cast<std::int32_t>(a[i]) * w[i];
      }
      o[j] = int8Epilogue(acc, dequantScale, bias[j], relu);
    }
  }
}

}  // namespace darpa::nn::kernels::detail
