// Internal declarations shared between the lane translation units and the
// dispatcher. Each lane lives in its own TU so its functions can carry
// per-function __attribute__((target(...))) markers and still build into
// the default (non -march=native) binary.
#pragma once

#include <cstdint>

#include "nn/kernels/int8_kernels.h"

// x86 lanes exist on x86 builds only; elsewhere the dispatcher registers
// just the scalar lane. GCC and Clang both provide the target attribute
// and __builtin_cpu_supports on x86.
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define DARPA_INT8_X86_LANES 1
#else
#define DARPA_INT8_X86_LANES 0
#endif

namespace darpa::nn::kernels::detail {

void quantizeRowsScalar(const float* in, int rows, int inSize, int rowStride,
                        float scale, std::int8_t* out);
void gemmScalar(const std::int8_t* act, const std::int8_t* weights,
                const float* bias, float dequantScale, int rows, int rowStride,
                int outSize, bool relu, float* out);

#if DARPA_INT8_X86_LANES
void quantizeRowsSse4(const float* in, int rows, int inSize, int rowStride,
                      float scale, std::int8_t* out);
void gemmSse4(const std::int8_t* act, const std::int8_t* weights,
              const float* bias, float dequantScale, int rows, int rowStride,
              int outSize, bool relu, float* out);

void quantizeRowsAvx2(const float* in, int rows, int inSize, int rowStride,
                      float scale, std::int8_t* out);
void gemmAvx2(const std::int8_t* act, const std::int8_t* weights,
              const float* bias, float dequantScale, int rows, int rowStride,
              int outSize, bool relu, float* out);
#endif

/// The exact dequant+activation epilogue every lane must evaluate: cast,
/// multiply, add (never fused), then a sign-exact ReLU compare. Baseline
/// ISA, so target()-attributed callers can still inline it.
[[nodiscard]] inline float int8Epilogue(std::int32_t acc, float dequantScale,
                                        float bias, bool relu) {
  const float sum = static_cast<float>(acc) * dequantScale + bias;
  return relu && sum < 0.0f ? 0.0f : sum;
}

}  // namespace darpa::nn::kernels::detail
