// Simulated device performance model — the Redmi 10 + SoloPi substitute.
//
// The paper measures CPU %, memory, frame rate, and power with SoloPi while
// replaying recorded Monkey sessions with and without DARPA. We cannot
// measure a phone, so we *account*: every unit of DARPA work is priced into
// the service's WorkLedger (per-stage CPU-milliseconds, through the shared
// core::StageCosts table) as it happens, and this model folds the ledger
// into a calibrated device whose baseline matches Table VII's first row
// (55.22 % CPU, 4,291.96 MB, 81 fps, 443.85 mW). Frame rate degrades as CPU
// saturates; power follows CPU load plus a screenshot-I/O term. The *shape*
// of the overhead decomposition — detection dominating, monitoring and
// decoration nearly free — emerges from the same accounting the paper
// measures.
#pragma once

#include <iosfwd>

#include "core/work_ledger.h"
#include "util/clock.h"

namespace darpa::perf {

/// SoloPi-style metric sample.
struct PerfMetrics {
  double cpuPercent = 0.0;
  double memoryMb = 0.0;
  double frameRate = 0.0;
  double powerMw = 0.0;
};

std::ostream& operator<<(std::ostream& os, const PerfMetrics& m);

class DeviceModel {
 public:
  struct Config {
    // Baseline (Table VII row 1): the phone running the app workload alone.
    double baseCpuPercent = 55.22;
    double baseMemoryMb = 4291.96;
    double baseFrameRate = 81.0;
    double basePowerMw = 443.85;

    /// Per-operation CPU costs — the same core::StageCosts table the
    /// pipeline prices work with while recording into the ledger. Kept here
    /// so harnesses that synthesize ledgers (the ablation bench, the unit
    /// tests) read their constants from the device model they target.
    core::StageCosts costs;

    // Memory: the resident CV model + buffers (the paper attributes most of
    // the +121.84 MB to hosting the model), plus small per-component costs.
    double monitoringMemMb = 58.0;
    double detectionMemMb = 55.0;
    double decorationMemMb = 6.0;

    // Power: active-CPU energy plus a per-screenshot I/O term.
    double powerPerCpuPercent = 10.5;  // mW per CPU percentage point
    double screenshotPowerMw = 0.02;   // mW per screenshot over a minute

    // Frame pacing: CPU stolen from the UI thread costs frames; screenshot
    // capture stalls the render thread per capture; a visible decoration
    // overlay adds a fixed recomposition cost (the paper's decoration step
    // costs 4 fps on its own, Table VII).
    double fpsPerCpuPercent = 0.55;
    double screenshotFpsPerPerSec = 1.0;
    double decorationFpsCost = 4.0;
  };

  DeviceModel() : DeviceModel(Config{}) {}
  explicit DeviceModel(Config config) : config_(config) {}

  [[nodiscard]] const Config& config() const { return config_; }

  /// Baseline metrics (no DARPA components active).
  [[nodiscard]] PerfMetrics baseline() const;

  /// Metrics with the ledger's recorded work performed over `window`.
  /// Component flags allow the incremental rows of Table VII (monitoring
  /// only, +detection, +decoration): monitoring covers the event, lint,
  /// screenshot, and verdict/cache stages; detection the CV stage; and
  /// decoration the act stage.
  [[nodiscard]] PerfMetrics withWork(const core::WorkLedger& ledger,
                                     Millis window, bool monitoring,
                                     bool detection, bool decoration) const;

  /// Full-DARPA convenience overload.
  [[nodiscard]] PerfMetrics withWork(const core::WorkLedger& ledger,
                                     Millis window) const {
    return withWork(ledger, window, true, true, true);
  }

 private:
  Config config_;
};

}  // namespace darpa::perf
