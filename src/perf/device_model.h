// Simulated device performance model — the Redmi 10 + SoloPi substitute.
//
// The paper measures CPU %, memory, frame rate, and power with SoloPi while
// replaying recorded Monkey sessions with and without DARPA. We cannot
// measure a phone, so we *account*: every unit of DARPA work (event
// handling, screenshot, detection, decoration) is metered by the
// DarpaService work listener, converted to CPU-milliseconds through
// per-operation costs, and folded into a calibrated device model whose
// baseline matches Table VII's first row (55.22 % CPU, 4,291.96 MB, 81 fps,
// 443.85 mW). Frame rate degrades as CPU saturates; power follows CPU load
// plus a screenshot-I/O term. The *shape* of the overhead decomposition —
// detection dominating, monitoring and decoration nearly free — emerges
// from the same accounting the paper measures.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "core/darpa_service.h"
#include "util/clock.h"

namespace darpa::perf {

/// Counts of DARPA work performed during a measured window.
struct WorkCounts {
  std::int64_t events = 0;
  std::int64_t screenshots = 0;
  std::int64_t detections = 0;
  std::int64_t decorations = 0;
  std::int64_t lints = 0;  ///< Static pre-filter passes (no screenshot).

  WorkCounts& operator+=(const WorkCounts& o) {
    events += o.events;
    screenshots += o.screenshots;
    detections += o.detections;
    decorations += o.decorations;
    lints += o.lints;
    return *this;
  }

  /// Convenience adapter for DarpaService::setWorkListener.
  void record(core::WorkKind kind) {
    switch (kind) {
      case core::WorkKind::kEventHandling: ++events; break;
      case core::WorkKind::kScreenshot: ++screenshots; break;
      case core::WorkKind::kDetection: ++detections; break;
      case core::WorkKind::kDecoration: ++decorations; break;
      case core::WorkKind::kLint: ++lints; break;
    }
  }
};

/// SoloPi-style metric sample.
struct PerfMetrics {
  double cpuPercent = 0.0;
  double memoryMb = 0.0;
  double frameRate = 0.0;
  double powerMw = 0.0;
};

std::ostream& operator<<(std::ostream& os, const PerfMetrics& m);

class DeviceModel {
 public:
  struct Config {
    // Baseline (Table VII row 1): the phone running the app workload alone.
    double baseCpuPercent = 55.22;
    double baseMemoryMb = 4291.96;
    double baseFrameRate = 81.0;
    double basePowerMw = 443.85;

    // Per-operation CPU costs in milliseconds on the device's big core.
    double eventCpuMs = 0.35;
    double screenshotCpuMs = 2.2;
    /// addView/removeView force full window relayout + recomposition.
    double decorationCpuMs = 45.0;
    /// Detection cost derives from the detector's MAC count (int8 NEON-ish
    /// throughput).
    double macsPerCpuMs = 1.8e6;
    /// A static lint pass walks the view hierarchy once: pointer-chasing
    /// over a few dozen nodes, no pixels touched.
    double lintCpuMs = 0.18;

    // Memory: the resident CV model + buffers (the paper attributes most of
    // the +121.84 MB to hosting the model), plus small per-component costs.
    double monitoringMemMb = 58.0;
    double detectionMemMb = 55.0;
    double decorationMemMb = 6.0;

    // Power: active-CPU energy plus a per-screenshot I/O term.
    double powerPerCpuPercent = 10.5;  // mW per CPU percentage point
    double screenshotPowerMw = 0.02;   // mW per screenshot over a minute

    // Frame pacing: CPU stolen from the UI thread costs frames; screenshot
    // capture stalls the render thread per capture; a visible decoration
    // overlay adds a fixed recomposition cost (the paper's decoration step
    // costs 4 fps on its own, Table VII).
    double fpsPerCpuPercent = 0.55;
    double screenshotFpsPerPerSec = 1.0;
    double decorationFpsCost = 4.0;
  };

  DeviceModel() : DeviceModel(Config{}) {}
  explicit DeviceModel(Config config) : config_(config) {}

  [[nodiscard]] const Config& config() const { return config_; }

  /// Baseline metrics (no DARPA components active).
  [[nodiscard]] PerfMetrics baseline() const;

  /// Metrics with the given DARPA work performed over `window`, for a
  /// detector costing `detectorMacs` per analyzed screenshot. Component
  /// flags allow the incremental rows of Table VII (monitoring only,
  /// +detection, +decoration).
  [[nodiscard]] PerfMetrics withWork(const WorkCounts& work, Millis window,
                                     double detectorMacs, bool monitoring,
                                     bool detection, bool decoration) const;

  /// Full-DARPA convenience overload.
  [[nodiscard]] PerfMetrics withWork(const WorkCounts& work, Millis window,
                                     double detectorMacs) const {
    return withWork(work, window, detectorMacs, true, true, true);
  }

 private:
  Config config_;
};

}  // namespace darpa::perf
