#include "perf/device_model.h"

#include <algorithm>
#include <ostream>

namespace darpa::perf {

std::ostream& operator<<(std::ostream& os, const PerfMetrics& m) {
  return os << "cpu=" << m.cpuPercent << "% mem=" << m.memoryMb
            << "MB fps=" << m.frameRate << " power=" << m.powerMw << "mW";
}

PerfMetrics DeviceModel::baseline() const {
  return PerfMetrics{config_.baseCpuPercent, config_.baseMemoryMb,
                     config_.baseFrameRate, config_.basePowerMw};
}

PerfMetrics DeviceModel::withWork(const core::WorkLedger& ledger,
                                  Millis window, bool monitoring,
                                  bool detection, bool decoration) const {
  using core::Stage;
  const double windowMs =
      std::max<double>(static_cast<double>(window.count), 1.0);

  double cpuMs = 0.0;
  double memMb = 0.0;
  double powerExtra = 0.0;
  double fpsExtra = 0.0;

  if (monitoring) {
    cpuMs += ledger.tally(Stage::kEvent).cpuMs;
    cpuMs += ledger.tally(Stage::kLint).cpuMs;
    cpuMs += ledger.tally(Stage::kScreenshot).cpuMs;
    cpuMs += ledger.tally(Stage::kVerdict).cpuMs;  // merge + cache lookups
    memMb += config_.monitoringMemMb;
    // Working set of the perception data plane: one screen frame held at a
    // time per session (§IV-E). The ledger reports the peak single-frame
    // footprint, which is a property of the screen geometry — identical
    // with pooling on or off, so the Table VII memory row never depends on
    // the allocator strategy.
    memMb += static_cast<double>(ledger.peakFrameBytes()) / (1024.0 * 1024.0);
    const auto screenshots =
        static_cast<double>(ledger.tally(Stage::kScreenshot).runs);
    powerExtra +=
        screenshots * config_.screenshotPowerMw * (60000.0 / windowMs);
    // Screenshot capture stalls the render thread for a frame or two.
    fpsExtra +=
        (1000.0 * screenshots / windowMs) * config_.screenshotFpsPerPerSec;
  }
  if (detection) {
    cpuMs += ledger.tally(Stage::kDetect).cpuMs;
    memMb += config_.detectionMemMb;
  }
  if (decoration) {
    cpuMs += ledger.tally(Stage::kAct).cpuMs;
    memMb += config_.decorationMemMb;
    if (ledger.decorations() > 0) fpsExtra += config_.decorationFpsCost;
  }

  const double extraCpuPercent = 100.0 * cpuMs / windowMs;
  PerfMetrics metrics = baseline();
  metrics.cpuPercent =
      std::min(metrics.cpuPercent + extraCpuPercent, 100.0 * 8.0);  // 8 cores
  metrics.memoryMb += memMb;
  // UI-thread contention: extra CPU steals frame-deadline headroom, plus
  // the fixed capture/composition costs above.
  metrics.frameRate = std::max(
      metrics.frameRate - extraCpuPercent * config_.fpsPerCpuPercent -
          fpsExtra,
      15.0);
  metrics.powerMw +=
      extraCpuPercent * config_.powerPerCpuPercent + powerExtra;
  return metrics;
}

}  // namespace darpa::perf
