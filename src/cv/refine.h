// Box refinement: snap a coarse detector box to the rendered extent of the
// UI option underneath it.
//
// The paper's evaluation demands IoU >= 0.9 — far tighter than anchor
// regression alone delivers for 16-px close buttons. Real UI options are
// solid plates (buttons, icon discs) on locally uniform surroundings, so a
// color flood fill from the box center recovers their exact pixel extent.
// The refinement degrades *naturally* on exactly the inputs the paper
// reports as failure cases: ghost (near-transparent) options make the fill
// leak into the panel (-> detection dropped or mislocated -> FN), and CTA
// buttons whose color blends into a busy ad creative make it overshoot
// (-> IoU < 0.9 -> the AGO error modes of Table III).
#pragma once

#include <optional>

#include "gfx/bitmap.h"
#include "util/geometry.h"

namespace darpa::cv {

struct RefineConfig {
  /// L1 RGB distance below which a pixel belongs to the seed region.
  int colorTolerance = 60;
  /// Search window inflation relative to the coarse box (fraction of the
  /// smaller side), plus a fixed margin.
  double windowInflate = 0.6;
  int windowMargin = 6;
  /// Reject refinements whose region is a sliver (< minAreaFrac of the
  /// coarse box) or a runaway fill (> maxWindowFrac of the search window).
  double minAreaFrac = 0.2;
  double maxWindowFrac = 0.95;
};

/// Snaps `coarse` to the connected same-color region under its center.
/// Returns std::nullopt when the fill fails (sliver or runaway), in which
/// case the caller should keep the coarse box or drop the detection.
[[nodiscard]] std::optional<Rect> snapToRegion(const gfx::Bitmap& image,
                                               const Rect& coarse,
                                               const RefineConfig& config = {});

}  // namespace darpa::cv
