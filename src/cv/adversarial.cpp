#include "cv/adversarial.h"

#include <algorithm>

#include "gfx/canvas.h"

namespace darpa::cv {

namespace {

/// True when the detector still reports a UPO overlapping the target.
bool upoStillDetected(const Detector& detector, const gfx::Bitmap& image,
                      const Rect& target, double successIou) {
  for (const Detection& det : detector.detect(image)) {
    if (det.label == dataset::BoxLabel::kUpo &&
        iou(det.box, target) >= successIou) {
      return true;
    }
  }
  return false;
}

/// Paints one randomized decoy patch: either high-frequency noise (attacks
/// the edge/contrast channels) or a flat plate colored like the local
/// background (attacks the flood-fill refinement's leak detector).
void paintPatch(gfx::Bitmap& image, const Rect& rect, Rng& rng) {
  gfx::Canvas canvas(image);
  if (rng.chance(0.5)) {
    for (int y = rect.top(); y < rect.bottom(); ++y) {
      for (int x = rect.left(); x < rect.right(); ++x) {
        image.blendPixel(
            x, y,
            Color::rgb(static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                       static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                       static_cast<std::uint8_t>(rng.uniformInt(0, 255))));
      }
    }
  } else {
    const Color base = image.meanColor(rect.inflated(rect.width));
    canvas.fillRoundedRect(
        rect, lerp(base, rng.chance(0.5) ? colors::kWhite : colors::kBlack,
                   rng.uniform(0.2, 0.6)),
        rect.width / 4);
  }
}

}  // namespace

PatchAttackResult attackUpo(const Detector& detector,
                            const gfx::Bitmap& screenshot, const Rect& upoBox,
                            const PatchAttackConfig& config) {
  PatchAttackResult result;
  result.patched = screenshot.clone();
  Rng rng(config.seed);

  if (!upoStillDetected(detector, screenshot, upoBox, config.successIou)) {
    // Nothing to evade: the detector already misses this UPO.
    result.evaded = true;
    return result;
  }

  for (int trial = 0; trial < config.trials; ++trial) {
    ++result.trialsUsed;
    // Place the patch adjacent to the target: one of 8 neighbor offsets,
    // jittered, clipped to the screen, never covering the UPO itself.
    const int s = config.patchSize;
    const int dx = rng.uniformInt(-1, 1);
    const int dy = rng.uniformInt(-1, 1);
    if (dx == 0 && dy == 0) continue;
    Rect patch{upoBox.x + dx * (upoBox.width + rng.uniformInt(1, 5)),
               upoBox.y + dy * (upoBox.height + rng.uniformInt(1, 5)), s, s};
    patch.x = std::clamp(patch.x, 0, screenshot.width() - s);
    patch.y = std::clamp(patch.y, 0, screenshot.height() - s);
    if (!patch.intersect(upoBox).empty()) continue;

    gfx::Bitmap candidate = screenshot.clone();
    paintPatch(candidate, patch, rng);
    if (!upoStillDetected(detector, candidate, upoBox, config.successIou)) {
      result.evaded = true;
      result.patchRect = patch;
      result.patched = std::move(candidate);
      return result;
    }
  }
  return result;
}

}  // namespace darpa::cv
