// Adversarial patch attack against the AUI detector — the §VII limitation,
// made concrete.
//
// The paper concedes that "determined attackers can freely test the adopted
// CV-model to develop targeted attacks, such as adversarial patch attacks"
// and that DARPA currently cannot defend against them. This module
// implements that attacker: a black-box random-search patch optimizer that
// pastes a small decoy patch near the user-preferred option and keeps the
// candidate that most suppresses the detector's UPO output. The bench built
// on top measures evasion rates, quantifying the limitation instead of
// merely stating it.
#pragma once

#include <optional>

#include "cv/detector.h"
#include "util/rng.h"

namespace darpa::cv {

struct PatchAttackConfig {
  int patchSize = 22;     ///< Square decoy patch side (px).
  int trials = 48;        ///< Random-search budget.
  double successIou = 0.5;  ///< UPO suppressed if no detection overlaps the
                            ///< target above this IoU.
  std::uint64_t seed = 1337;
};

struct PatchAttackResult {
  bool evaded = false;   ///< Detector no longer finds the target UPO.
  Rect patchRect;        ///< Where the winning patch was pasted.
  int trialsUsed = 0;
  gfx::Bitmap patched;   ///< The attacked screenshot (winning candidate).
};

/// Runs the black-box patch search against `detector` on `screenshot`,
/// trying to suppress the UPO at `upoBox`. Patches are placed adjacent to
/// (never on top of) the target, so the option stays usable — the attack
/// defeats the *detector*, not the user.
[[nodiscard]] PatchAttackResult attackUpo(const Detector& detector,
                                          const gfx::Bitmap& screenshot,
                                          const Rect& upoBox,
                                          const PatchAttackConfig& config = {});

}  // namespace darpa::cv
