#include "cv/features.h"

#include <algorithm>
#include <cmath>

namespace darpa::cv {

int ChannelSet::count() const {
  int n = 0;
  for (int i = 0; i < kChannelCount; ++i) n += (mask >> i) & 1;
  return n;
}

namespace {

// Integer luma 299r + 587g + 114b: exact in int32 (max 255'000), so window
// sums over it are associative and the separable sliding-window contrast
// pass is bit-identical to the naive 25-tap reference. The float channel
// value divides by 255'000, matching luma()/255 up to the scale.
inline std::int32_t intLuma(Color c) {
  return 299 * c.r + 587 * c.g + 114 * c.b;
}
constexpr double kIntLumaScale = 255'000.0;

// Per-thread arena for the fused feature pass: plane buffers reused across
// FeatureMap constructions, growth-counted for the zero-steady-state-
// allocation contract.
struct FeatureScratch {
  std::vector<float> lumaF;         ///< Float luma plane (Sobel input).
  std::vector<std::int32_t> lumaI;  ///< Integer luma plane (contrast input).
  std::vector<std::int32_t> hsum;   ///< Horizontal 5-tap sums, full plane.
  std::vector<std::int32_t> vsum;   ///< Vertical sliding sums, one row.
  /// Retired integral-plane buffers, recycled by the next FeatureMap on
  /// this thread (bounded; see ~FeatureMap).
  std::vector<std::vector<double>> planePool;
  FeatureScratchStats stats;

  template <typename T>
  T* ensure(std::vector<T>& v, std::size_t n) {
    const std::size_t before = v.capacity();
    if (n > before) {
      v.reserve(n);
      ++stats.growths;
      stats.grownBytes +=
          static_cast<std::int64_t>((v.capacity() - before) * sizeof(T));
    }
    if (v.size() < n) v.resize(n);
    return v.data();
  }
};

FeatureScratch& featureScratch() {
  thread_local FeatureScratch scratch;
  return scratch;
}

}  // namespace

const FeatureScratchStats& featureScratchStats() {
  return featureScratch().stats;
}

void resetFeatureScratchStats() { featureScratch().stats = {}; }

FeatureMap::FeatureMap(const gfx::Bitmap& screenshot, ChannelSet channels,
                       int scale)
    : scale_(std::max(scale, 1)),
      fullSize_(screenshot.size()),
      channels_(channels) {
  const gfx::Bitmap small = screenshot.downscale(
      std::max(screenshot.width() / scale_, 1),
      std::max(screenshot.height() / scale_, 1));
  width_ = small.width();
  height_ = small.height();
  planeStride_ = static_cast<std::size_t>(width_ + 1) * (height_ + 1);

  const bool wantLuma = channels_.enabled(Channel::kLuma);
  const bool wantEdge = channels_.enabled(Channel::kEdge);
  const bool wantContrast = channels_.enabled(Channel::kContrast);
  const bool wantSat = channels_.enabled(Channel::kSaturation);
  const bool wantSal = channels_.enabled(Channel::kSaliency);

  FeatureScratch& s = featureScratch();
  ++s.stats.frames;

  // Integral planes: recycle a retired buffer when one is pooled, and zero
  // only what the fused pass will not overwrite — row 0 and column 0 of
  // enabled planes (the integral borders), whole planes of disabled
  // channels. A cold buffer is a counted growth like any other arena.
  if (!s.planePool.empty()) {
    integrals_ = std::move(s.planePool.back());
    s.planePool.pop_back();
  }
  const std::size_t need = kChannelCount * planeStride_;
  const std::size_t beforeCap = integrals_.capacity();
  if (need > beforeCap) {
    integrals_.reserve(need);
    ++s.stats.growths;
    s.stats.grownBytes += static_cast<std::int64_t>(
        (integrals_.capacity() - beforeCap) * sizeof(double));
  }
  integrals_.resize(need);
  for (int c = 0; c < kChannelCount; ++c) {
    double* plane = integrals_.data() + static_cast<std::size_t>(c) * planeStride_;
    if (channels_.enabled(static_cast<Channel>(c))) {
      std::fill(plane, plane + width_ + 1, 0.0);  // row 0
      for (int y = 1; y <= height_; ++y) {        // column 0
        plane[static_cast<std::size_t>(y) * (width_ + 1)] = 0.0;
      }
    } else {
      std::fill(plane, plane + planeStride_, 0.0);
    }
  }

  const std::size_t n = static_cast<std::size_t>(width_) * height_;
  // The luma planes always exist: edge and contrast derive from luma even
  // when the luma channel itself is disabled (only its integral is zeroed).
  float* lumaF = s.ensure(s.lumaF, n);
  std::int32_t* lumaI = s.ensure(s.lumaI, n);

  double* lumaInt = integrals_.data();
  double* edgeInt = integrals_.data() + 1 * planeStride_;
  double* contrastInt = integrals_.data() + 2 * planeStride_;
  double* satInt = integrals_.data() + 3 * planeStride_;
  double* salInt = integrals_.data() + 4 * planeStride_;
  const std::size_t stride = static_cast<std::size_t>(width_) + 1;

  // Global mean color for the saliency channel.
  const Color meanColor = small.meanColor(small.bounds());

  // Pass 1 — everything with no neighborhood dependence, fused into one
  // traversal: both luma planes, saturation, saliency, and their integral
  // rows (disabled channels skip the work; their integrals stay zero).
  for (int y = 0; y < height_; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width_;
    const std::size_t iUp = static_cast<std::size_t>(y) * stride;
    const std::size_t iDn = static_cast<std::size_t>(y + 1) * stride;
    double rowLuma = 0.0, rowSat = 0.0, rowSal = 0.0;
    for (int x = 0; x < width_; ++x) {
      const Color c = small.at(x, y);
      const float lf = static_cast<float>(luma(c) / 255.0);
      lumaF[row + x] = lf;
      lumaI[row + x] = intLuma(c);
      if (wantLuma) {
        rowLuma += lf;
        lumaInt[iDn + x + 1] = lumaInt[iUp + x + 1] + rowLuma;
      }
      if (wantSat) {
        const int mx = std::max({c.r, c.g, c.b});
        const int mn = std::min({c.r, c.g, c.b});
        rowSat += static_cast<float>(mx - mn) / 255.0f;
        satInt[iDn + x + 1] = satInt[iUp + x + 1] + rowSat;
      }
      if (wantSal) {
        const float dr = static_cast<float>(c.r - meanColor.r);
        const float dg = static_cast<float>(c.g - meanColor.g);
        const float db = static_cast<float>(c.b - meanColor.b);
        rowSal += std::sqrt(dr * dr + dg * dg + db * db) / 442.0f;
        salInt[iDn + x + 1] = salInt[iUp + x + 1] + rowSal;
      }
    }
  }

  if (wantEdge || wantContrast) {
  // Contrast pre-pass: horizontal 5-tap sliding sums of integer luma per
  // row (clamped columns), then a vertical sliding sum over those rows.
  // Integer sums are exact, so the incremental updates are bit-identical
  // to re-summing the clamped 5x5 window from scratch at every pixel.
  std::int32_t* hsum = nullptr;
  std::int32_t* vsum = nullptr;
  if (wantContrast) {
    hsum = s.ensure(s.hsum, n);
    for (int y = 0; y < height_; ++y) {
      const std::int32_t* L = lumaI + static_cast<std::size_t>(y) * width_;
      std::int32_t* H = hsum + static_cast<std::size_t>(y) * width_;
      auto at = [&](int x) { return L[std::clamp(x, 0, width_ - 1)]; };
      std::int32_t window = at(-2) + at(-1) + at(0) + at(1) + at(2);
      H[0] = window;
      for (int x = 1; x < width_; ++x) {
        window += at(x + 2) - at(x - 3);
        H[x] = window;
      }
    }
    vsum = s.ensure(s.vsum, static_cast<std::size_t>(width_));
    for (int x = 0; x < width_; ++x) {
      std::int32_t v = 0;
      for (int dy = -2; dy <= 2; ++dy) {
        const int yy = std::clamp(dy, 0, height_ - 1);
        v += hsum[static_cast<std::size_t>(yy) * width_ + x];
      }
      vsum[x] = v;
    }
  }

  // Pass 2 — edge (Sobel over float luma; clamped row pointers + clamped
  // columns reproduce the reference lumaAt() lambda's values exactly) and
  // contrast, with their integral rows, in one traversal.
  for (int y = 0; y < height_; ++y) {
    const std::size_t row = static_cast<std::size_t>(y) * width_;
    const std::size_t iUp = static_cast<std::size_t>(y) * stride;
    const std::size_t iDn = static_cast<std::size_t>(y + 1) * stride;
    const float* rowUp =
        lumaF + static_cast<std::size_t>(std::max(y - 1, 0)) * width_;
    const float* rowMid = lumaF + row;
    const float* rowDn =
        lumaF + static_cast<std::size_t>(std::min(y + 1, height_ - 1)) * width_;
    double rowEdge = 0.0, rowContrast = 0.0;
    for (int x = 0; x < width_; ++x) {
      if (wantEdge) {
        const int xl = std::max(x - 1, 0);
        const int xr = std::min(x + 1, width_ - 1);
        const float gx = (rowUp[xr] + 2 * rowMid[xr] + rowDn[xr]) -
                         (rowUp[xl] + 2 * rowMid[xl] + rowDn[xl]);
        const float gy = (rowDn[xl] + 2 * rowDn[x] + rowDn[xr]) -
                         (rowUp[xl] + 2 * rowUp[x] + rowUp[xr]);
        rowEdge += std::min(std::sqrt(gx * gx + gy * gy) / 4.0f, 1.0f);
        edgeInt[iDn + x + 1] = edgeInt[iUp + x + 1] + rowEdge;
      }
      if (wantContrast) {
        // |luma - mean(5x5)| = |25*luma - windowSum| / (25 * lumaScale),
        // exact integers until the final division.
        const std::int64_t diff =
            25LL * lumaI[row + x] - static_cast<std::int64_t>(vsum[x]);
        rowContrast += static_cast<float>(
            static_cast<double>(diff < 0 ? -diff : diff) /
            (25.0 * kIntLumaScale));
        contrastInt[iDn + x + 1] = contrastInt[iUp + x + 1] + rowContrast;
      }
    }
    // Slide the vertical window down one row: add the row entering the
    // window, drop the row leaving it (both clamped).
    if (wantContrast && y + 1 < height_) {
      const std::int32_t* add =
          hsum + static_cast<std::size_t>(std::clamp(y + 3, 0, height_ - 1)) *
                     width_;
      const std::int32_t* drop =
          hsum + static_cast<std::size_t>(std::clamp(y - 2, 0, height_ - 1)) *
                     width_;
      for (int x = 0; x < width_; ++x) vsum[x] += add[x] - drop[x];
    }
  }
  }

  // Map-constant context cues, cached once: per-channel global means and the
  // center-vs-surround luma difference. These are the exact values the
  // on-demand computations produced (same integral lookups and arithmetic);
  // the candidate descriptor reads them per grid position.
  const Rect all{0, 0, width_ * scale_, height_ * scale_};
  for (int c = 0; c < kChannelCount; ++c) {
    globalMeans_[static_cast<std::size_t>(c)] =
        boxMean(static_cast<Channel>(c), all);
  }
  const int fw = width_ * scale_;
  const int fh = height_ * scale_;
  const Rect center{fw / 4, fh / 4, fw / 2, fh / 2};
  const float centerMean = boxMean(Channel::kLuma, center);
  const float globalMeanL = globalMeans_[static_cast<int>(Channel::kLuma)];
  // global = (center*A_c + surround*A_s) / A; recover the surround mean.
  const double areaC = 0.25, areaS = 0.75;
  const double surround = (globalMeanL - centerMean * areaC) / areaS;
  centerSurround_ = static_cast<float>(centerMean - surround);
}

FeatureMap::~FeatureMap() {
  if (integrals_.capacity() == 0) return;
  FeatureScratch& s = featureScratch();
  constexpr std::size_t kMaxPooled = 8;
  if (s.planePool.size() < kMaxPooled) {
    s.planePool.push_back(std::move(integrals_));
  }
}

Rect FeatureMap::toCells(const Rect& fullResRect) const {
  const int x0 = std::clamp(fullResRect.x / scale_, 0, width_);
  const int y0 = std::clamp(fullResRect.y / scale_, 0, height_);
  const int x1 = std::clamp((fullResRect.right() + scale_ - 1) / scale_, 0, width_);
  const int y1 =
      std::clamp((fullResRect.bottom() + scale_ - 1) / scale_, 0, height_);
  return {x0, y0, std::max(x1 - x0, 0), std::max(y1 - y0, 0)};
}

double FeatureMap::integralSum(int channel, const Rect& cells) const {
  if (cells.empty()) return 0.0;
  const double* integral =
      integrals_.data() + static_cast<std::size_t>(channel) * planeStride_;
  const int stride = width_ + 1;
  const double a =
      integral[static_cast<std::size_t>(cells.y) * stride + cells.x];
  const double b =
      integral[static_cast<std::size_t>(cells.y) * stride + cells.right()];
  const double c =
      integral[static_cast<std::size_t>(cells.bottom()) * stride + cells.x];
  const double d = integral[static_cast<std::size_t>(cells.bottom()) * stride +
                            cells.right()];
  return d - b - c + a;
}

float FeatureMap::boxMean(Channel c, const Rect& fullResRect) const {
  const Rect cells = toCells(fullResRect);
  if (cells.empty()) return 0.0f;
  return static_cast<float>(integralSum(static_cast<int>(c), cells) /
                            static_cast<double>(cells.area()));
}

float FeatureMap::ringContrast(Channel c, const Rect& fullResRect) const {
  const int margin =
      std::max(std::min(fullResRect.width, fullResRect.height) / 2, 2) + 2;
  const Rect outer = fullResRect.inflated(margin);
  const Rect innerCells = toCells(fullResRect);
  const Rect outerCells = toCells(outer);
  if (innerCells.empty() || outerCells.empty()) return 0.0f;
  const double innerSum = integralSum(static_cast<int>(c), innerCells);
  const double outerSum = integralSum(static_cast<int>(c), outerCells);
  const double ringArea =
      static_cast<double>(outerCells.area()) - innerCells.area();
  if (ringArea <= 0.0) return 0.0f;
  const double innerMean = innerSum / static_cast<double>(innerCells.area());
  const double ringMean = (outerSum - innerSum) / ringArea;
  return static_cast<float>(innerMean - ringMean);
}

float FeatureMap::globalMean(Channel c) const {
  return globalMeans_[static_cast<std::size_t>(c)];
}

float FeatureMap::centerSurroundLuma() const { return centerSurround_; }

void candidateGeometryInto(Size fullSize, const Rect& box,
                           std::span<float> out) {
  float* f = out.data();
  int k = 0;
  const float W = static_cast<float>(fullSize.width);
  const float H = static_cast<float>(fullSize.height);
  const float w = static_cast<float>(box.width);
  const float h = static_cast<float>(box.height);
  const float cx = static_cast<float>(box.x) + w / 2;
  const float cy = static_cast<float>(box.y) + h / 2;
  f[k++] = w / W;
  f[k++] = h / H;
  f[k++] = (w * h) / (W * H);
  f[k++] = std::clamp(std::log(w / std::max(h, 1.0f)), -2.0f, 2.0f);
  f[k++] = cx / W;
  f[k++] = cy / H;
  // Distance to the nearest screen corner, normalized by the half-diagonal.
  const float dCorner = std::min(
      {std::hypot(cx, cy), std::hypot(W - cx, cy), std::hypot(cx, H - cy),
       std::hypot(W - cx, H - cy)});
  const float halfDiag = std::hypot(W, H) / 2.0f;
  f[k++] = dCorner / halfDiag;
  // Distance to the screen center.
  f[k++] = std::hypot(cx - W / 2, cy - H / 2) / halfDiag;
}

namespace {

/// Shared descriptor fill. The channel block sums each (channel, rect) pair
/// once — boxMean and ringContrast both need the inner sum, and the ring's
/// outer rect is channel-independent — with arithmetic identical to the
/// public accessors'. The geometric block is copied from `plannedGeometry`
/// when the caller precomputed it (the batched grid plan), else computed in
/// place.
void fillCandidateFeatures(const FeatureMap& map, const Rect& box,
                           const float* plannedGeometry, std::span<float> out) {
  float* f = out.data();
  int k = 0;
  const Rect innerCells = map.toCells(box);
  const double innerArea = static_cast<double>(innerCells.area());
  const int ringMargin =
      std::max(std::min(box.width, box.height) / 2, 2) + 2;
  const Rect outerCells = map.toCells(box.inflated(ringMargin));
  const double ringArea =
      static_cast<double>(outerCells.area()) - innerCells.area();
  for (int c = 0; c < kChannelCount; ++c) {
    double innerSum = 0.0;
    if (!innerCells.empty()) {
      innerSum = map.integralSum(c, innerCells);
      f[k++] = static_cast<float>(innerSum / innerArea);
    } else {
      f[k++] = 0.0f;
    }
    if (!innerCells.empty() && !outerCells.empty() && ringArea > 0.0) {
      const double outerSum = map.integralSum(c, outerCells);
      const double innerMean = innerSum / innerArea;
      const double ringMean = (outerSum - innerSum) / ringArea;
      f[k++] = static_cast<float>(innerMean - ringMean);
    } else {
      f[k++] = 0.0f;
    }
  }
  if (plannedGeometry != nullptr) {
    for (int g = 0; g < kCandidateGeometryDim; ++g) f[k++] = plannedGeometry[g];
  } else {
    candidateGeometryInto(map.fullSize(), box,
                          {f + k, static_cast<std::size_t>(
                                      kCandidateGeometryDim)});
    k += kCandidateGeometryDim;
  }
  // Global context: overall darkness (scrim cue), edge business, and the
  // center-vs-surround luma difference (modal panel cue).
  f[k++] = map.globalMean(Channel::kLuma);
  f[k++] = map.globalMean(Channel::kEdge);
  f[k++] = map.centerSurroundLuma();
  // Border edge density: edges concentrated on the candidate's perimeter.
  const Rect border = box.inflated(2);
  f[k++] = map.boxMean(Channel::kEdge, border) -
           map.boxMean(Channel::kEdge,
                       box.inflated(-std::max(
                           2, std::min(box.width, box.height) / 4)));
  // Edge continuation: an isolated option has quiet neighbors on both sides
  // of each axis, while a panel border continues across them. min() over the
  // opposite pair is high only when the structure runs through.
  const Rect leftN = box.translated(-box.width, 0);
  const Rect rightN = box.translated(box.width, 0);
  const Rect upN = box.translated(0, -box.height);
  const Rect downN = box.translated(0, box.height);
  f[k++] = std::min(map.boxMean(Channel::kContrast, leftN),
                    map.boxMean(Channel::kContrast, rightN));
  f[k++] = std::min(map.boxMean(Channel::kContrast, upN),
                    map.boxMean(Channel::kContrast, downN));
}

}  // namespace

void candidateFeaturesInto(const FeatureMap& map, const Rect& box,
                           std::span<float> out) {
  fillCandidateFeatures(map, box, nullptr, out);
}

void candidateFeaturesPlannedInto(const FeatureMap& map, const Rect& box,
                                  std::span<const float> geometry,
                                  std::span<float> out) {
  fillCandidateFeatures(map, box, geometry.data(), out);
}

std::vector<float> candidateFeatures(const FeatureMap& map, const Rect& box) {
  std::vector<float> f(kCandidateFeatureDim);
  candidateFeaturesInto(map, box, f);
  return f;
}

}  // namespace darpa::cv
