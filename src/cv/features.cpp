#include "cv/features.h"

#include <algorithm>
#include <cmath>

namespace darpa::cv {

int ChannelSet::count() const {
  int n = 0;
  for (int i = 0; i < kChannelCount; ++i) n += (mask >> i) & 1;
  return n;
}

FeatureMap::FeatureMap(const gfx::Bitmap& screenshot, ChannelSet channels,
                       int scale)
    : scale_(std::max(scale, 1)),
      fullSize_(screenshot.size()),
      channels_(channels) {
  const gfx::Bitmap small = screenshot.downscale(
      std::max(screenshot.width() / scale_, 1),
      std::max(screenshot.height() / scale_, 1));
  width_ = small.width();
  height_ = small.height();

  // Raw planes in [0, 1].
  std::array<std::vector<float>, kChannelCount> planes;
  const std::size_t n = static_cast<std::size_t>(width_) * height_;
  for (auto& plane : planes) plane.assign(n, 0.0f);

  // Global mean color for the saliency channel.
  const Color meanColor = small.meanColor(small.bounds());

  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * width_ + x;
      const Color c = small.at(x, y);
      planes[0][i] = static_cast<float>(luma(c) / 255.0);
      const int mx = std::max({c.r, c.g, c.b});
      const int mn = std::min({c.r, c.g, c.b});
      planes[3][i] = static_cast<float>(mx - mn) / 255.0f;
      const float dr = static_cast<float>(c.r - meanColor.r);
      const float dg = static_cast<float>(c.g - meanColor.g);
      const float db = static_cast<float>(c.b - meanColor.b);
      planes[4][i] = std::sqrt(dr * dr + dg * dg + db * db) / 442.0f;
    }
  }

  // Edge: Sobel magnitude over the luma plane.
  auto lumaAt = [&](int x, int y) {
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return planes[0][static_cast<std::size_t>(y) * width_ + x];
  };
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const float gx = (lumaAt(x + 1, y - 1) + 2 * lumaAt(x + 1, y) +
                        lumaAt(x + 1, y + 1)) -
                       (lumaAt(x - 1, y - 1) + 2 * lumaAt(x - 1, y) +
                        lumaAt(x - 1, y + 1));
      const float gy = (lumaAt(x - 1, y + 1) + 2 * lumaAt(x, y + 1) +
                        lumaAt(x + 1, y + 1)) -
                       (lumaAt(x - 1, y - 1) + 2 * lumaAt(x, y - 1) +
                        lumaAt(x + 1, y - 1));
      planes[1][static_cast<std::size_t>(y) * width_ + x] =
          std::min(std::sqrt(gx * gx + gy * gy) / 4.0f, 1.0f);
    }
  }

  // Local contrast: |luma - 5x5 box mean|.
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      float sum = 0.0f;
      for (int dy = -2; dy <= 2; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) sum += lumaAt(x + dx, y + dy);
      }
      planes[2][static_cast<std::size_t>(y) * width_ + x] =
          std::fabs(lumaAt(x, y) - sum / 25.0f);
    }
  }

  // Zero out disabled channels, then build integral images.
  for (int c = 0; c < kChannelCount; ++c) {
    if (!channels_.enabled(static_cast<Channel>(c))) {
      std::fill(planes[static_cast<std::size_t>(c)].begin(),
                planes[static_cast<std::size_t>(c)].end(), 0.0f);
    }
    auto& integral = integrals_[static_cast<std::size_t>(c)];
    integral.assign(static_cast<std::size_t>(width_ + 1) * (height_ + 1), 0.0);
    for (int y = 0; y < height_; ++y) {
      double rowSum = 0.0;
      for (int x = 0; x < width_; ++x) {
        rowSum += planes[static_cast<std::size_t>(c)]
                        [static_cast<std::size_t>(y) * width_ + x];
        integral[static_cast<std::size_t>(y + 1) * (width_ + 1) + (x + 1)] =
            integral[static_cast<std::size_t>(y) * (width_ + 1) + (x + 1)] +
            rowSum;
      }
    }
  }
}

Rect FeatureMap::toCells(const Rect& fullResRect) const {
  const int x0 = std::clamp(fullResRect.x / scale_, 0, width_);
  const int y0 = std::clamp(fullResRect.y / scale_, 0, height_);
  const int x1 = std::clamp((fullResRect.right() + scale_ - 1) / scale_, 0, width_);
  const int y1 =
      std::clamp((fullResRect.bottom() + scale_ - 1) / scale_, 0, height_);
  return {x0, y0, std::max(x1 - x0, 0), std::max(y1 - y0, 0)};
}

double FeatureMap::integralSum(int channel, const Rect& cells) const {
  if (cells.empty()) return 0.0;
  const auto& integral = integrals_[static_cast<std::size_t>(channel)];
  const int stride = width_ + 1;
  const double a =
      integral[static_cast<std::size_t>(cells.y) * stride + cells.x];
  const double b =
      integral[static_cast<std::size_t>(cells.y) * stride + cells.right()];
  const double c =
      integral[static_cast<std::size_t>(cells.bottom()) * stride + cells.x];
  const double d = integral[static_cast<std::size_t>(cells.bottom()) * stride +
                            cells.right()];
  return d - b - c + a;
}

float FeatureMap::boxMean(Channel c, const Rect& fullResRect) const {
  const Rect cells = toCells(fullResRect);
  if (cells.empty()) return 0.0f;
  return static_cast<float>(integralSum(static_cast<int>(c), cells) /
                            static_cast<double>(cells.area()));
}

float FeatureMap::ringContrast(Channel c, const Rect& fullResRect) const {
  const int margin =
      std::max(std::min(fullResRect.width, fullResRect.height) / 2, 2) + 2;
  const Rect outer = fullResRect.inflated(margin);
  const Rect innerCells = toCells(fullResRect);
  const Rect outerCells = toCells(outer);
  if (innerCells.empty() || outerCells.empty()) return 0.0f;
  const double innerSum = integralSum(static_cast<int>(c), innerCells);
  const double outerSum = integralSum(static_cast<int>(c), outerCells);
  const double ringArea =
      static_cast<double>(outerCells.area()) - innerCells.area();
  if (ringArea <= 0.0) return 0.0f;
  const double innerMean = innerSum / static_cast<double>(innerCells.area());
  const double ringMean = (outerSum - innerSum) / ringArea;
  return static_cast<float>(innerMean - ringMean);
}

float FeatureMap::globalMean(Channel c) const {
  const Rect all{0, 0, width_ * scale_, height_ * scale_};
  return boxMean(c, all);
}

float FeatureMap::centerSurroundLuma() const {
  const int w = width_ * scale_;
  const int h = height_ * scale_;
  const Rect center{w / 4, h / 4, w / 2, h / 2};
  const float centerMean = boxMean(Channel::kLuma, center);
  const float globalMeanL = globalMean(Channel::kLuma);
  // global = (center*A_c + surround*A_s) / A; recover the surround mean.
  const double areaC = 0.25, areaS = 0.75;
  const double surround = (globalMeanL - centerMean * areaC) / areaS;
  return static_cast<float>(centerMean - surround);
}

std::vector<float> candidateFeatures(const FeatureMap& map, const Rect& box) {
  std::vector<float> f;
  f.reserve(kCandidateFeatureDim);
  for (int c = 0; c < kChannelCount; ++c) {
    f.push_back(map.boxMean(static_cast<Channel>(c), box));
    f.push_back(map.ringContrast(static_cast<Channel>(c), box));
  }
  const float W = static_cast<float>(map.fullSize().width);
  const float H = static_cast<float>(map.fullSize().height);
  const float w = static_cast<float>(box.width);
  const float h = static_cast<float>(box.height);
  const float cx = static_cast<float>(box.x) + w / 2;
  const float cy = static_cast<float>(box.y) + h / 2;
  f.push_back(w / W);
  f.push_back(h / H);
  f.push_back((w * h) / (W * H));
  f.push_back(std::clamp(std::log(w / std::max(h, 1.0f)), -2.0f, 2.0f));
  f.push_back(cx / W);
  f.push_back(cy / H);
  // Distance to the nearest screen corner, normalized by the half-diagonal.
  const float dCorner = std::min(
      {std::hypot(cx, cy), std::hypot(W - cx, cy), std::hypot(cx, H - cy),
       std::hypot(W - cx, H - cy)});
  const float halfDiag = std::hypot(W, H) / 2.0f;
  f.push_back(dCorner / halfDiag);
  // Distance to the screen center.
  f.push_back(std::hypot(cx - W / 2, cy - H / 2) / halfDiag);
  // Global context: overall darkness (scrim cue), edge business, and the
  // center-vs-surround luma difference (modal panel cue).
  f.push_back(map.globalMean(Channel::kLuma));
  f.push_back(map.globalMean(Channel::kEdge));
  f.push_back(map.centerSurroundLuma());
  // Border edge density: edges concentrated on the candidate's perimeter.
  const Rect border = box.inflated(2);
  f.push_back(map.boxMean(Channel::kEdge, border) -
              map.boxMean(Channel::kEdge, box.inflated(-std::max(
                                              2, std::min(box.width, box.height) / 4))));
  // Edge continuation: an isolated option has quiet neighbors on both sides
  // of each axis, while a panel border continues across them. min() over the
  // opposite pair is high only when the structure runs through.
  const Rect leftN = box.translated(-box.width, 0);
  const Rect rightN = box.translated(box.width, 0);
  const Rect upN = box.translated(0, -box.height);
  const Rect downN = box.translated(0, box.height);
  f.push_back(std::min(map.boxMean(Channel::kContrast, leftN),
                       map.boxMean(Channel::kContrast, rightN)));
  f.push_back(std::min(map.boxMean(Channel::kContrast, upN),
                       map.boxMean(Channel::kContrast, downN)));
  return f;
}

}  // namespace darpa::cv
