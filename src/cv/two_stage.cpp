#include "cv/two_stage.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "nn/losses.h"
#include "util/log.h"
#include "util/rng.h"

namespace darpa::cv {

std::string twoStageModelName(HeadKind head, Backbone backbone) {
  std::string name =
      head == HeadKind::kFaster ? "Faster RCNN-like" : "Mask RCNN-like";
  name += backbone == Backbone::kV ? "+V16" : "+R50";
  return name;
}

ChannelSet TwoStageDetector::backboneChannels() const {
  if (config_.backbone == Backbone::kV) {
    const Channel channels[] = {Channel::kLuma, Channel::kEdge};
    return ChannelSet::only(channels);
  }
  return ChannelSet::all();
}

int TwoStageDetector::regionFeatureDim(const FeatureMap& map) const {
  return kCandidateFeatureDim +
         config_.roiGrid * config_.roiGrid * map.channels().count();
}

void TwoStageDetector::regionFeaturesInto(const FeatureMap& map,
                                          const Rect& box,
                                          std::span<float> out) const {
  // Shared descriptor + RoI-pooled NxN channel means.
  candidateFeaturesInto(map, box, out.first(kCandidateFeatureDim));
  std::size_t k = kCandidateFeatureDim;
  const int n = config_.roiGrid;
  for (int c = 0; c < kChannelCount; ++c) {
    if (!map.channels().enabled(static_cast<Channel>(c))) continue;
    for (int gy = 0; gy < n; ++gy) {
      for (int gx = 0; gx < n; ++gx) {
        const Rect cell{box.x + gx * box.width / n,
                        box.y + gy * box.height / n,
                        std::max(box.width / n, 1),
                        std::max(box.height / n, 1)};
        out[k++] = map.boxMean(static_cast<Channel>(c), cell);
      }
    }
  }
}

std::vector<float> TwoStageDetector::regionFeatures(const FeatureMap& map,
                                                    const Rect& box) const {
  std::vector<float> f(static_cast<std::size_t>(regionFeatureDim(map)));
  regionFeaturesInto(map, box, f);
  return f;
}

std::vector<Rect> TwoStageDetector::proposals(
    const gfx::Bitmap& screenshot) const {
  const FeatureMap map(screenshot, backboneChannels(), config_.featureScale);
  return proposalsFromMap(map, screenshot.size());
}

std::vector<Rect> TwoStageDetector::proposalsFromMap(const FeatureMap& map,
                                                     Size size) const {
  struct Scored {
    Rect box;
    float score;
  };
  std::vector<Scored> windows;
  for (const Anchor& shape : config_.windowShapes) {
    const int stride = shape.stride();
    for (int cy = stride / 2; cy < size.height; cy += stride) {
      for (int cx = stride / 2; cx < size.width; cx += stride) {
        const Rect box{cx - shape.width / 2, cy - shape.height / 2,
                       shape.width, shape.height};
        // Class-agnostic objectness: pop-out of the region vs its ring.
        const float score =
            std::fabs(map.ringContrast(Channel::kContrast, box)) +
            std::fabs(map.ringContrast(Channel::kEdge, box)) +
            std::fabs(map.ringContrast(Channel::kLuma, box));
        windows.push_back(Scored{box, score});
      }
    }
  }
  std::sort(windows.begin(), windows.end(),
            [](const Scored& a, const Scored& b) { return a.score > b.score; });
  // Loose NMS then top-K.
  std::vector<Rect> kept;
  for (const Scored& w : windows) {
    if (static_cast<int>(kept.size()) >= config_.maxProposals) break;
    const bool dup = std::any_of(kept.begin(), kept.end(), [&](const Rect& k) {
      return iou(k, w.box) > config_.proposalNmsIou;
    });
    if (!dup) kept.push_back(w.box);
  }
  return kept;
}

TwoStageDetector TwoStageDetector::train(
    const dataset::AuiDataset& data, const TwoStageConfig& config,
    const TwoStageTrainConfig& trainConfig) {
  TwoStageDetector detector(config);
  Rng rng(trainConfig.seed);

  struct Example {
    std::vector<float> features;
    int classTarget = -1;
    float dx = 0, dy = 0, dw = 0, dh = 0;
  };
  std::vector<std::vector<Example>> perImage;

  auto collect = [&](const dataset::Sample& sample) {
    const FeatureMap map(sample.image, detector.backboneChannels(),
                         config.featureScale);
    std::vector<Example> examples;
    std::vector<Example> negativesPool;
    for (const Rect& prop :
         detector.proposalsFromMap(map, sample.image.size())) {
      double bestIou = 0.0;
      const dataset::Annotation* bestGt = nullptr;
      for (const dataset::Annotation& gt : sample.annotations) {
        const double overlap = iou(prop, gt.box);
        if (overlap > bestIou) {
          bestIou = overlap;
          bestGt = &gt;
        }
      }
      if (bestGt != nullptr && bestIou >= 0.5) {
        Example ex;
        ex.features = detector.regionFeatures(map, prop);
        ex.classTarget = bestGt->label == dataset::BoxLabel::kAgo ? 0 : 1;
        const Point gtCenter = bestGt->box.center();
        const Point pCenter = prop.center();
        ex.dx = static_cast<float>(gtCenter.x - pCenter.x) / prop.width;
        ex.dy = static_cast<float>(gtCenter.y - pCenter.y) / prop.height;
        ex.dw = std::log(static_cast<float>(bestGt->box.width) / prop.width);
        ex.dh = std::log(static_cast<float>(bestGt->box.height) / prop.height);
        examples.push_back(std::move(ex));
      } else if (bestIou < 0.3) {
        Example ex;
        ex.features = detector.regionFeatures(map, prop);
        negativesPool.push_back(std::move(ex));
      }
    }
    rng.shuffle(negativesPool);
    const std::size_t keep = std::min<std::size_t>(
        negativesPool.size(),
        static_cast<std::size_t>(trainConfig.negativesPerImage));
    for (std::size_t i = 0; i < keep; ++i) {
      examples.push_back(std::move(negativesPool[i]));
    }
    perImage.push_back(std::move(examples));
  };

  for (std::size_t idx : data.trainIndices()) {
    collect(data.materialize(idx));
  }
  for (int i = 0; i < trainConfig.benignImages; ++i) {
    collect(dataset::materializeBenign(rng.next(), data.config().screenSize,
                                       i % 3 == 0));
  }

  // Head MLP: the R backbone is "deeper" (an extra hidden layer), like
  // ResNet50 vs VGG16.
  int featureDim = kCandidateFeatureDim;
  for (const auto& examples : perImage) {
    if (!examples.empty()) {
      featureDim = static_cast<int>(examples.front().features.size());
      break;
    }
  }
  std::vector<int> layerSizes{featureDim};
  if (config.backbone == Backbone::kR) {
    layerSizes.insert(layerSizes.end(), {64, 32, 16});
  } else {
    layerSizes.insert(layerSizes.end(), {48, 24});
  }
  layerSizes.push_back(6);
  detector.head_ = std::make_unique<nn::Mlp>(layerSizes, rng);

  std::vector<std::size_t> order(perImage.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  nn::AdamConfig adam;
  adam.learningRate = trainConfig.learningRate;
  // Hoisted backprop buffers (see one_stage.cpp): no per-example heap churn.
  nn::Mlp::Cache cache;
  std::array<float, 6> dOut{};
  for (int epoch = 0; epoch < trainConfig.epochs; ++epoch) {
    if (trainConfig.lrDecayEvery > 0 && epoch > 0 &&
        epoch % trainConfig.lrDecayEvery == 0) {
      adam.learningRate *= 0.5f;
    }
    rng.shuffle(order);
    for (std::size_t i : order) {
      const std::vector<Example>& examples = perImage[i];
      if (examples.empty()) continue;
      int count = 0;
      for (const Example& ex : examples) {
        const int repeat =
            ex.classTarget >= 0 ? std::max(trainConfig.positiveRepeat, 1) : 1;
        for (int rep = 0; rep < repeat; ++rep) {
          detector.head_->forwardCachedInto(ex.features, cache);
          const std::span<const float> out = cache.output();
          dOut.fill(0.0f);
          dOut[0] = nn::bceWithLogitsGrad(out[0], ex.classTarget == 0 ? 1.f : 0.f);
          dOut[1] = nn::bceWithLogitsGrad(out[1], ex.classTarget == 1 ? 1.f : 0.f);
          if (ex.classTarget >= 0) {
            const float w = trainConfig.boxLossWeight;
            dOut[2] = w * nn::smoothL1Grad(out[2], ex.dx);
            dOut[3] = w * nn::smoothL1Grad(out[3], ex.dy);
            dOut[4] = w * nn::smoothL1Grad(out[4], ex.dw);
            dOut[5] = w * nn::smoothL1Grad(out[5], ex.dh);
          }
          detector.head_->accumulateGradient(cache, dOut);
          ++count;
        }
      }
      detector.head_->applyAdam(adam, count);
    }
  }
  return detector;
}

std::vector<Detection> TwoStageDetector::detect(
    const gfx::Bitmap& screenshot) const {
  // One FeatureMap feeds both the proposal scan and the per-region head
  // (previously each built its own identical map), and all kept proposals
  // are scored in a single batched head call.
  const FeatureMap map(screenshot, backboneChannels(), config_.featureScale);
  const std::vector<Rect> props = proposalsFromMap(map, screenshot.size());
  std::vector<Detection> raw;
  if (!props.empty()) {
    const std::size_t dim = static_cast<std::size_t>(regionFeatureDim(map));
    thread_local std::vector<float> feats;
    thread_local std::vector<float> logits;
    thread_local nn::ForwardScratch scratch;
    if (feats.size() < props.size() * dim) feats.resize(props.size() * dim);
    if (logits.size() < props.size() * 6) logits.resize(props.size() * 6);
    for (std::size_t i = 0; i < props.size(); ++i) {
      regionFeaturesInto(map, props[i], {feats.data() + i * dim, dim});
    }
    head_->forwardBatch({feats.data(), props.size() * dim},
                        static_cast<int>(props.size()),
                        {logits.data(), props.size() * 6}, scratch);
    for (std::size_t i = 0; i < props.size(); ++i) {
      const Rect& prop = props[i];
      const float* out = logits.data() + i * 6;
      const float confAgo = nn::sigmoid(out[0]);
      const float confUpo = nn::sigmoid(out[1]);
      const float best = std::max(confAgo, confUpo);
      if (best < config_.confidenceThreshold) continue;
      const float dx = std::clamp(out[2], -2.0f, 2.0f);
      const float dy = std::clamp(out[3], -2.0f, 2.0f);
      const float dw = std::clamp(out[4], -1.5f, 1.5f);
      const float dh = std::clamp(out[5], -1.5f, 1.5f);
      const float w = static_cast<float>(prop.width) * std::exp(dw);
      const float h = static_cast<float>(prop.height) * std::exp(dh);
      const float cx = static_cast<float>(prop.center().x) +
                       dx * static_cast<float>(prop.width);
      const float cy = static_cast<float>(prop.center().y) +
                       dy * static_cast<float>(prop.height);
      Detection det;
      det.box = RectF{cx - w / 2, cy - h / 2, w, h}.toRect();
      det.label = confAgo >= confUpo ? dataset::BoxLabel::kAgo
                                     : dataset::BoxLabel::kUpo;
      det.confidence = best;
      raw.push_back(det);
    }
  }
  std::vector<Detection> kept =
      nonMaxSuppression(std::move(raw), config_.nmsIou);
  if (config_.head == HeadKind::kFaster) {
    // The Faster head's RoI refinement snaps boxes to the underlying
    // surface but has no mask pass to VERIFY them: failed snaps keep the
    // coarse regressed box (often missing the IoU 0.9 bar) and spurious
    // detections are never filtered. That verification gap is what
    // separates it from the Mask variants here, as in the paper.
    for (Detection& det : kept) {
      if (const auto snapped =
              snapToRegion(screenshot, det.box, config_.refine)) {
        det.box = *snapped;
      }
    }
    kept = nonMaxSuppression(std::move(kept), 0.8);
  }
  if (config_.head == HeadKind::kMask) {
    // The "mask branch": pixel-accurate snap, dropped when the mask fails.
    std::vector<Detection> refined;
    for (Detection& det : kept) {
      if (const auto snapped =
              snapToRegion(screenshot, det.box, config_.refine)) {
        det.box = *snapped;
        refined.push_back(det);
      }
    }
    kept = nonMaxSuppression(std::move(refined), 0.8);
  }
  return kept;
}

double TwoStageDetector::costMacsPerImage() const {
  const Size size{360, 720};
  // Dense proposal scan (3 ring contrasts x ~12 integral reads each)...
  double windowCount = 0;
  for (const Anchor& shape : config_.windowShapes) {
    const int stride = shape.stride();
    windowCount += (static_cast<double>(size.width) / stride) *
                   (static_cast<double>(size.height) / stride);
  }
  const double proposalMacs = windowCount * 36.0;
  // ...plus the per-region head over the kept proposals.
  const double headMacs =
      head_ ? static_cast<double>(head_->parameterCount()) : 0.0;
  const double regionMacs = static_cast<double>(config_.maxProposals) *
                            (headMacs + config_.roiGrid * config_.roiGrid *
                                            kChannelCount * 4.0);
  const double featureMacs =
      static_cast<double>(size.width) * size.height * 3.0;
  return proposalMacs + regionMacs + featureMacs;
}

}  // namespace darpa::cv
