#include "cv/one_stage.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <limits>

#include "nn/losses.h"
#include "util/log.h"

namespace darpa::cv {

namespace {

/// Shape-only IoU (YOLO anchor matching): boxes concentric, compare sizes.
double shapeIou(const Anchor& anchor, const Rect& gt) {
  const double interW = std::min(anchor.width, gt.width);
  const double interH = std::min(anchor.height, gt.height);
  const double inter = interW * interH;
  const double uni = static_cast<double>(anchor.width) * anchor.height +
                     static_cast<double>(gt.width) * gt.height - inter;
  return uni <= 0.0 ? 0.0 : inter / uni;
}

/// A grid candidate: anchor index + grid center position.
struct GridPos {
  int anchorIdx = 0;
  int cx = 0;
  int cy = 0;

  [[nodiscard]] Rect box(const std::vector<Anchor>& anchors) const {
    const Anchor& a = anchors[static_cast<std::size_t>(anchorIdx)];
    return {cx - a.width / 2, cy - a.height / 2, a.width, a.height};
  }
};

/// Enumerates all grid positions for an image size into a reused buffer.
void enumerateGridInto(const OneStageConfig& config, Size size,
                       std::vector<GridPos>& grid) {
  grid.clear();
  for (std::size_t a = 0; a < config.anchors.size(); ++a) {
    const int stride = config.anchors[a].stride();
    for (int cy = stride / 2; cy < size.height; cy += stride) {
      for (int cx = stride / 2; cx < size.width; cx += stride) {
        grid.push_back(GridPos{static_cast<int>(a), cx, cy});
      }
    }
  }
}

std::vector<GridPos> enumerateGrid(const OneStageConfig& config, Size size) {
  std::vector<GridPos> grid;
  enumerateGridInto(config, size, grid);
  return grid;
}

/// Per-thread arena for the batched detect path: the anchor grid (cached
/// across same-sized frames), the descriptor matrix, the logit matrix, and
/// the MLP forward scratch. Buffer growths are counted so the executors and
/// the hot-path bench can assert the steady state allocates nothing.
struct DetectScratch {
  std::vector<GridPos> grid;
  Size gridSize{-1, -1};
  std::vector<Anchor> gridAnchors;
  /// Per-grid-entry geometric descriptor blocks (kCandidateGeometryDim
  /// floats each), regenerated with the grid: geometry depends only on
  /// (frame size, anchor box), so the batched fill replays these across
  /// every frame of the cached size instead of recomputing hypot/log per
  /// candidate.
  std::vector<float> geometry;
  std::vector<float> features;
  std::vector<float> logits;
  nn::ForwardScratch forward;
  std::int64_t growths = 0;
  std::int64_t grownBytes = 0;

  float* ensure(std::vector<float>& v, std::size_t n) {
    const std::size_t before = v.capacity();
    if (n > before) {
      v.reserve(n);
      ++growths;
      grownBytes +=
          static_cast<std::int64_t>((v.capacity() - before) * sizeof(float));
    }
    if (v.size() < n) v.resize(n);
    return v.data();
  }

  const std::vector<GridPos>& gridFor(const OneStageConfig& config,
                                      Size size) {
    if (size.width != gridSize.width || size.height != gridSize.height ||
        gridAnchors != config.anchors) {
      const std::size_t before = grid.capacity();
      enumerateGridInto(config, size, grid);
      if (grid.capacity() > before) {
        ++growths;
        grownBytes += static_cast<std::int64_t>(
            (grid.capacity() - before) * sizeof(GridPos));
      }
      float* geo = ensure(geometry, grid.size() * kCandidateGeometryDim);
      for (std::size_t r = 0; r < grid.size(); ++r) {
        candidateGeometryInto(
            size, grid[r].box(config.anchors),
            {geo + r * kCandidateGeometryDim,
             static_cast<std::size_t>(kCandidateGeometryDim)});
      }
      gridSize = size;
      gridAnchors = config.anchors;
    }
    return grid;
  }
};

DetectScratch& detectScratch() {
  thread_local DetectScratch scratch;
  return scratch;
}

/// Thresholds + decodes one candidate's head output into `raw` — the exact
/// scalar-path logic, shared by the batched and scalar detect loops.
void decodeCandidate(const OneStageConfig& config, const GridPos& pos,
                     const float* out, std::vector<Detection>& raw) {
  const Anchor& anchor = config.anchors[static_cast<std::size_t>(pos.anchorIdx)];
  const float confAgo = nn::sigmoid(out[0]);
  const float confUpo = nn::sigmoid(out[1]);
  const bool agoFires = confAgo >= config.confidenceThresholdAgo;
  const bool upoFires = confUpo >= config.confidenceThresholdUpo;
  if (!agoFires && !upoFires) return;
  const float best =
      std::max(agoFires ? confAgo : 0.0f, upoFires ? confUpo : 0.0f);
  const int stride = anchor.stride();
  const float dx = std::clamp(out[2], -2.0f, 2.0f);
  const float dy = std::clamp(out[3], -2.0f, 2.0f);
  const float dw = std::clamp(out[4], -2.0f, 2.0f);
  const float dh = std::clamp(out[5], -2.0f, 2.0f);
  const float w = static_cast<float>(anchor.width) * std::exp(dw);
  const float h = static_cast<float>(anchor.height) * std::exp(dh);
  const float bx = static_cast<float>(pos.cx) + dx * stride - w / 2;
  const float by = static_cast<float>(pos.cy) + dy * stride - h / 2;
  Detection det;
  det.box = RectF{bx, by, w, h}.toRect();
  det.label = (agoFires && (!upoFires || confAgo >= confUpo))
                  ? dataset::BoxLabel::kAgo
                  : dataset::BoxLabel::kUpo;
  det.confidence = best;
  raw.push_back(det);
}

/// A selected training example: cached descriptor + targets.
struct TrainExample {
  std::vector<float> features;
  int classTarget = -1;  ///< -1 negative, 0 AGO, 1 UPO.
  float dx = 0, dy = 0, dw = 0, dh = 0;
};

/// Matching result for one grid position.
struct MatchInfo {
  int classTarget = -1;
  bool ignore = false;
  float dx = 0, dy = 0, dw = 0, dh = 0;
};

MatchInfo matchCandidate(const OneStageConfig& config, const GridPos& pos,
                         std::span<const dataset::Annotation> annotations) {
  MatchInfo info;
  const Anchor& anchor = config.anchors[static_cast<std::size_t>(pos.anchorIdx)];
  const int stride = anchor.stride();
  const Rect box = pos.box(config.anchors);
  double bestPosIou = 0.0;
  for (const dataset::Annotation& gt : annotations) {
    bestPosIou = std::max(bestPosIou, iou(box, gt.box));
    const Point center = gt.box.center();
    // This grid position owns the GT if it is the nearest position of this
    // anchor's grid to the GT center.
    const bool owns = std::abs(center.x - pos.cx) <= stride / 2 &&
                      std::abs(center.y - pos.cy) <= stride / 2;
    if (!owns) continue;
    double bestShape = 0.0;
    std::size_t bestAnchor = 0;
    for (std::size_t b = 0; b < config.anchors.size(); ++b) {
      const double s = shapeIou(config.anchors[b], gt.box);
      if (s > bestShape) {
        bestShape = s;
        bestAnchor = b;
      }
    }
    const double myShape = shapeIou(anchor, gt.box);
    if (bestAnchor == static_cast<std::size_t>(pos.anchorIdx) ||
        myShape >= config.extraPositiveShapeIou) {
      info.classTarget = gt.label == dataset::BoxLabel::kAgo ? 0 : 1;
      info.dx = static_cast<float>(center.x - pos.cx) / stride;
      info.dy = static_cast<float>(center.y - pos.cy) / stride;
      info.dw = std::log(static_cast<float>(gt.box.width) /
                         static_cast<float>(anchor.width));
      info.dh = std::log(static_cast<float>(gt.box.height) /
                         static_cast<float>(anchor.height));
    }
  }
  if (info.classTarget < 0 && bestPosIou >= config.negativeIou) {
    info.ignore = true;
  }
  return info;
}

}  // namespace

std::vector<Rect> OneStageDetector::candidateBoxes(Size size) const {
  std::vector<Rect> boxes;
  for (const GridPos& pos : enumerateGrid(config_, size)) {
    boxes.push_back(pos.box(config_.anchors));
  }
  return boxes;
}

OneStageDetector OneStageDetector::train(const dataset::AuiDataset& data,
                                         const OneStageConfig& config,
                                         const TrainConfig& trainConfig) {
  OneStageDetector detector(config);
  Rng rng(trainConfig.seed);

  // The training corpus: AUI split + benign negative-only images, described
  // by a closure that can re-render any of them on demand (screenshots are
  // NOT kept in memory; mining rounds re-render).
  struct ImageRef {
    bool benign = false;
    std::size_t datasetIdx = 0;
    std::uint64_t benignSeed = 0;
    bool benignHard = false;
  };
  std::vector<ImageRef> refs;
  for (std::size_t idx : data.trainIndices()) {
    refs.push_back(ImageRef{false, idx, 0, false});
  }
  for (int i = 0; i < trainConfig.benignImages; ++i) {
    refs.push_back(ImageRef{true, 0, rng.next(), i % 3 == 0});
  }
  auto render = [&](const ImageRef& ref) {
    return ref.benign
               ? dataset::materializeBenign(ref.benignSeed,
                                            data.config().screenSize,
                                            ref.benignHard)
               : data.materialize(ref.datasetIdx, trainConfig.maskText);
  };

  // Head.
  std::vector<int> layerSizes;
  layerSizes.push_back(kCandidateFeatureDim);
  for (int h : config.hiddenLayers) layerSizes.push_back(h);
  layerSizes.push_back(6);
  detector.head_ = std::make_unique<nn::Mlp>(layerSizes, rng);

  // Per-image selected example caches, refreshed at mining rounds.
  std::vector<std::vector<TrainExample>> selections(refs.size());

  auto mineImage = [&](std::size_t r) {
    const dataset::Sample sample = render(refs[r]);
    const FeatureMap map(sample.image, config.channels, config.featureScale);
    const std::vector<GridPos> grid =
        enumerateGrid(config, sample.image.size());

    std::vector<TrainExample> selected;
    struct ScoredNegative {
      float score;
      const GridPos* pos;
    };
    // First sweep: select positives, collect negative candidates.
    std::vector<const GridPos*> negPos;
    for (const GridPos& pos : grid) {
      const MatchInfo info = matchCandidate(config, pos, sample.annotations);
      if (info.classTarget >= 0) {
        TrainExample ex;
        ex.features = candidateFeatures(map, pos.box(config.anchors));
        ex.classTarget = info.classTarget;
        ex.dx = info.dx;
        ex.dy = info.dy;
        ex.dw = info.dw;
        ex.dh = info.dh;
        selected.push_back(std::move(ex));
      } else if (!info.ignore) {
        negPos.push_back(&pos);
      }
    }
    // Hard-negative scoring in one batched head call (bit-equal to the old
    // per-candidate forward loop, so mining picks the same negatives).
    std::vector<ScoredNegative> negatives;
    if (!negPos.empty()) {
      DetectScratch& s = detectScratch();
      const std::size_t rows = negPos.size();
      const std::size_t dim = kCandidateFeatureDim;
      float* feats = s.ensure(s.features, rows * dim);
      for (std::size_t i = 0; i < rows; ++i) {
        candidateFeaturesInto(map, negPos[i]->box(config.anchors),
                              {feats + i * dim, dim});
      }
      float* logits = s.ensure(s.logits, rows * 6);
      detector.head_->forwardBatch({feats, rows * dim},
                                   static_cast<int>(rows), {logits, rows * 6},
                                   s.forward);
      negatives.reserve(rows);
      for (std::size_t i = 0; i < rows; ++i) {
        negatives.push_back(ScoredNegative{
            std::max(logits[i * 6 + 0], logits[i * 6 + 1]), negPos[i]});
      }
    }
    std::sort(negatives.begin(), negatives.end(),
              [](const ScoredNegative& a, const ScoredNegative& b) {
                return a.score > b.score;
              });
    const std::size_t hardCount = std::min<std::size_t>(
        negatives.size(),
        static_cast<std::size_t>(trainConfig.hardNegativesPerImage));
    for (std::size_t i = 0; i < hardCount; ++i) {
      TrainExample ex;
      ex.features =
          candidateFeatures(map, negatives[i].pos->box(config.anchors));
      selected.push_back(std::move(ex));
    }
    for (int i = 0;
         i < trainConfig.randomNegativesPerImage && !negatives.empty(); ++i) {
      const std::size_t pick = rng.next() % negatives.size();
      TrainExample ex;
      ex.features =
          candidateFeatures(map, negatives[pick].pos->box(config.anchors));
      selected.push_back(std::move(ex));
    }
    selections[r] = std::move(selected);
  };

  std::vector<std::size_t> order(refs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  nn::AdamConfig adam;
  adam.learningRate = trainConfig.learningRate;
  const int miningEvery = std::max(trainConfig.miningEvery, 1);
  // Hoisted backprop buffers: one Cache for the whole training run instead
  // of one per example, so epochs stop churning the heap.
  nn::Mlp::Cache cache;
  std::array<float, 6> dOut{};
  for (int epoch = 0; epoch < trainConfig.epochs; ++epoch) {
    if (trainConfig.lrDecayEvery > 0 && epoch > 0 &&
        epoch % trainConfig.lrDecayEvery == 0) {
      adam.learningRate *= 0.5f;
    }
    if (epoch % miningEvery == 0) {
      for (std::size_t r = 0; r < refs.size(); ++r) mineImage(r);
    }
    rng.shuffle(order);
    double epochLoss = 0.0;
    for (std::size_t r : order) {
      const std::vector<TrainExample>& selected = selections[r];
      if (selected.empty()) continue;
      int count = 0;
      for (const TrainExample& ex : selected) {
        const int repeat =
            ex.classTarget >= 0 ? std::max(trainConfig.positiveRepeat, 1) : 1;
        for (int rep = 0; rep < repeat; ++rep) {
          detector.head_->forwardCachedInto(ex.features, cache);
          const std::span<const float> out = cache.output();
          dOut.fill(0.0f);
          const float agoTarget = ex.classTarget == 0 ? 1.0f : 0.0f;
          const float upoTarget = ex.classTarget == 1 ? 1.0f : 0.0f;
          dOut[0] = nn::bceWithLogitsGrad(out[0], agoTarget);
          dOut[1] = nn::bceWithLogitsGrad(out[1], upoTarget);
          epochLoss += nn::bceWithLogits(out[0], agoTarget) +
                       nn::bceWithLogits(out[1], upoTarget);
          if (ex.classTarget >= 0) {
            const float w = trainConfig.boxLossWeight;
            dOut[2] = w * nn::smoothL1Grad(out[2], ex.dx);
            dOut[3] = w * nn::smoothL1Grad(out[3], ex.dy);
            dOut[4] = w * nn::smoothL1Grad(out[4], ex.dw);
            dOut[5] = w * nn::smoothL1Grad(out[5], ex.dh);
            epochLoss +=
                w * (nn::smoothL1(out[2], ex.dx) + nn::smoothL1(out[3], ex.dy) +
                     nn::smoothL1(out[4], ex.dw) + nn::smoothL1(out[5], ex.dh));
          }
          detector.head_->accumulateGradient(cache, dOut);
          ++count;
        }
      }
      detector.head_->applyAdam(adam, count);
    }
    logDebug("one-stage epoch ", epoch, " loss ", epochLoss);
  }
  return detector;
}

std::vector<float> OneStageDetector::runHead(
    std::span<const float> features) const {
  if (useQuantized_ && quantizedHead_) return quantizedHead_->forward(features);
  return head_->forward(features);
}

void OneStageDetector::runHeadBatch(std::span<const float> features, int rows,
                                    std::span<float> logits,
                                    nn::ForwardScratch& scratch) const {
  if (useQuantized_ && quantizedHead_) {
    quantizedHead_->forwardBatch(features, rows, logits, scratch);
  } else {
    head_->forwardBatch(features, rows, logits, scratch);
  }
}

std::vector<Detection> OneStageDetector::postprocess(
    std::vector<Detection> raw, const gfx::Bitmap& screenshot) const {
  std::vector<Detection> kept =
      nonMaxSuppression(std::move(raw), config_.nmsIou);
  // Flood-fill refinement to the rendered option extent; failures are
  // either kept coarse or dropped per config.
  std::vector<Detection> refined;
  for (Detection& det : kept) {
    if (const auto snapped =
            snapToRegion(screenshot, det.box, config_.refine)) {
      det.box = *snapped;
      refined.push_back(det);
    } else if (!config_.dropUnrefined) {
      refined.push_back(det);
    }
  }
  // Refined boxes may have collapsed onto each other; merge duplicates.
  return nonMaxSuppression(std::move(refined), 0.8);
}

std::vector<Detection> OneStageDetector::detect(
    const gfx::Bitmap& screenshot) const {
  const FeatureMap map(screenshot, config_.channels, config_.featureScale);
  std::vector<Detection> raw;
  if (config_.batchedHead) {
    // Batched path: fill the descriptor matrix for the whole anchor grid,
    // score it in one GEMM, decode in grid order (identical to the scalar
    // loop's order, so the Detection stream is bit-equal).
    DetectScratch& s = detectScratch();
    const std::vector<GridPos>& grid = s.gridFor(config_, screenshot.size());
    const int rows = static_cast<int>(grid.size());
    const std::size_t dim = kCandidateFeatureDim;
    float* feats = s.ensure(s.features, static_cast<std::size_t>(rows) * dim);
    for (int r = 0; r < rows; ++r) {
      candidateFeaturesPlannedInto(
          map, grid[static_cast<std::size_t>(r)].box(config_.anchors),
          {s.geometry.data() +
               static_cast<std::size_t>(r) * kCandidateGeometryDim,
           static_cast<std::size_t>(kCandidateGeometryDim)},
          {feats + static_cast<std::size_t>(r) * dim, dim});
    }
    float* logits = s.ensure(s.logits, static_cast<std::size_t>(rows) * 6);
    runHeadBatch({feats, static_cast<std::size_t>(rows) * dim}, rows,
                 {logits, static_cast<std::size_t>(rows) * 6}, s.forward);
    for (int r = 0; r < rows; ++r) {
      decodeCandidate(config_, grid[static_cast<std::size_t>(r)],
                      logits + static_cast<std::size_t>(r) * 6, raw);
    }
  } else {
    for (const GridPos& pos : enumerateGrid(config_, screenshot.size())) {
      const std::vector<float> features =
          candidateFeatures(map, pos.box(config_.anchors));
      const std::vector<float> out = runHead(features);
      decodeCandidate(config_, pos, out.data(), raw);
    }
  }
  return postprocess(std::move(raw), screenshot);
}

double OneStageDetector::costMacsPerImage() const {
  // Head cost over all grid candidates plus the feature-extraction sweep.
  const Size size{360, 720};
  const double candidates =
      static_cast<double>(enumerateGrid(config_, size).size());
  const double headMacs =
      head_ ? static_cast<double>(head_->parameterCount()) : 0.0;
  const double featureMacs =
      static_cast<double>(size.width) * size.height * 3.0;  // channel sweeps
  return candidates * headMacs + featureMacs;
}

std::vector<std::vector<Detection>> OneStageDetector::detectBatch(
    std::span<const gfx::Bitmap* const> batch) const {
  // Results must be byte-identical to lone detect() calls so batching can
  // never change a session's verdict — guaranteed because each descriptor
  // row's score is independent of what else shares its GEMM. What batching
  // buys physically is descriptor packing across images: one head call per
  // pack keeps the weights hot instead of re-streaming them per image
  // (costMacsPerBatch() models exactly that amortization).
  std::vector<std::vector<Detection>> out(batch.size());
  if (!config_.batchedHead) {
    for (std::size_t i = 0; i < batch.size(); ++i) out[i] = detect(*batch[i]);
    return out;
  }
  // Cap pack size so the descriptor matrix stays cache/memory-friendly; the
  // grid cache keys on frame size, so a pack also breaks where sizes change.
  constexpr std::size_t kMaxPackRows = 1 << 16;
  DetectScratch& s = detectScratch();
  const std::size_t dim = kCandidateFeatureDim;
  std::size_t b = 0;
  while (b < batch.size()) {
    const Size size = batch[b]->size();
    const std::vector<GridPos>& grid = s.gridFor(config_, size);
    const std::size_t rowsPerImage = grid.size();
    std::size_t e = b + 1;
    while (e < batch.size() && batch[e]->size().width == size.width &&
           batch[e]->size().height == size.height &&
           (e - b + 1) * rowsPerImage <= kMaxPackRows) {
      ++e;
    }
    const std::size_t images = e - b;
    const std::size_t rows = images * rowsPerImage;
    float* feats = s.ensure(s.features, rows * dim);
    for (std::size_t i = 0; i < images; ++i) {
      // The FeatureMap lives only while its rows are filled: the pack never
      // holds more than one image's planes at a time.
      const FeatureMap map(*batch[b + i], config_.channels,
                           config_.featureScale);
      float* imageRows = feats + i * rowsPerImage * dim;
      for (std::size_t r = 0; r < rowsPerImage; ++r) {
        candidateFeaturesPlannedInto(
            map, grid[r].box(config_.anchors),
            {s.geometry.data() + r * kCandidateGeometryDim,
             static_cast<std::size_t>(kCandidateGeometryDim)},
            {imageRows + r * dim, dim});
      }
    }
    float* logits = s.ensure(s.logits, rows * 6);
    runHeadBatch({feats, rows * dim}, static_cast<int>(rows),
                 {logits, rows * 6}, s.forward);
    for (std::size_t i = 0; i < images; ++i) {
      std::vector<Detection> raw;
      const float* imageLogits = logits + i * rowsPerImage * 6;
      for (std::size_t r = 0; r < rowsPerImage; ++r) {
        decodeCandidate(config_, grid[r], imageLogits + r * 6, raw);
      }
      out[b + i] = postprocess(std::move(raw), *batch[b + i]);
    }
    b = e;
  }
  return out;
}

double OneStageDetector::costMacsPerBatch(int batchSize) const {
  // The macsPerCpuMs constant is calibrated for batch-1 inference, where
  // every image re-streams the head weights, rebuilds the anchor-grid
  // sweep plan, and reloads the int8 scale tables. Those are
  // batch-invariant: in a coalesced detectBatch they are paid once, so in
  // effective (throughput-normalized) MACs an n-image batch costs the
  // setup share once plus the image-unique share n times. The 0.6 share
  // reflects that at this model size the candidate loop is memory-bound on
  // weight traffic rather than compute-bound.
  constexpr double kBatchInvariantShare = 0.6;
  if (batchSize <= 1) return costMacsPerImage();
  const double perImage = costMacsPerImage();
  return perImage *
         (kBatchInvariantShare + (1.0 - kBatchInvariantShare) * batchSize);
}

void OneStageDetector::enableQuantized(
    std::span<const gfx::Bitmap> calibrationImages) {
  std::vector<std::vector<float>> calibration;
  for (const gfx::Bitmap& image : calibrationImages) {
    const FeatureMap map(image, config_.channels, config_.featureScale);
    // Subsample the grid for calibration: every 7th candidate is plenty to
    // estimate activation ranges.
    const std::vector<GridPos> grid = enumerateGrid(config_, image.size());
    for (std::size_t i = 0; i < grid.size(); i += 7) {
      calibration.push_back(
          candidateFeatures(map, grid[i].box(config_.anchors)));
    }
  }
  quantizedHead_ = nn::QuantizedMlp::fromMlp(*head_, calibration);
  useQuantized_ = true;
  // Surface the dispatched lane once: when a perf trend moves, the first
  // question is whether the kernel changed under us.
  logDebug("one-stage quantized head enabled; int8 kernel lane ",
           quantizedKernelLane());
}

const char* OneStageDetector::quantizedKernelLane() {
  return nn::kernels::laneName(nn::kernels::activeInt8Lane());
}

std::size_t OneStageDetector::modelBytes() const {
  if (useQuantized_ && quantizedHead_) return quantizedHead_->modelBytes();
  return head_ ? head_->parameterCount() * sizeof(float) : 0;
}

bool OneStageDetector::saveModel(const std::string& path) const {
  if (head_ == nullptr) return false;
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  head_->save(out);
  return static_cast<bool>(out);
}

std::optional<OneStageDetector> OneStageDetector::loadModel(
    const std::string& path, const OneStageConfig& config) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  auto head = nn::Mlp::load(in);
  if (!head) return std::nullopt;
  OneStageDetector detector(config);
  detector.head_ = std::make_unique<nn::Mlp>(std::move(*head));
  if (detector.head_->inputSize() != kCandidateFeatureDim ||
      detector.head_->outputSize() != 6) {
    return std::nullopt;
  }
  return detector;
}

DetectScratchStats hotpathScratchStats() {
  const DetectScratch& s = detectScratch();
  const FeatureScratchStats& f = featureScratchStats();
  return {s.growths + s.forward.growths() + f.growths,
          s.grownBytes + s.forward.grownBytes() + f.grownBytes};
}

ModelMetrics evaluateDetector(const Detector& detector,
                              const dataset::AuiDataset& data,
                              const std::vector<std::size_t>& indices,
                              bool maskText, double iouThreshold) {
  ModelMetrics metrics;
  for (std::size_t idx : indices) {
    const dataset::Sample sample = data.materialize(idx, maskText);
    const std::vector<Detection> detections = detector.detect(sample.image);
    metrics.ago += evaluateImage(detections, sample.annotations, iouThreshold,
                                 dataset::BoxLabel::kAgo);
    metrics.upo += evaluateImage(detections, sample.annotations, iouThreshold,
                                 dataset::BoxLabel::kUpo);
  }
  return metrics;
}

}  // namespace darpa::cv
