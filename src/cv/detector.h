// Abstract detector interface shared by the one-stage model, the two-stage
// baselines, and DARPA's runtime (which only needs "screenshot in, labeled
// boxes out").
#pragma once

#include <span>
#include <vector>

#include "cv/detection.h"
#include "gfx/bitmap.h"

namespace darpa::cv {

class Detector {
 public:
  virtual ~Detector() = default;

  /// Detects AGO/UPO options in a screenshot.
  [[nodiscard]] virtual std::vector<Detection> detect(
      const gfx::Bitmap& screenshot) const = 0;

  /// Batched detection over screenshots coalesced from many device
  /// sessions (the fleet's BatchingExecutor). Results are positional:
  /// out[i] are the detections for batch[i], identical to what a lone
  /// detect(*batch[i]) would return — batching must never change verdicts.
  /// The default implementation just loops; backends with batch-amortizable
  /// setup override costMacsPerBatch() to expose the cheaper cost model.
  [[nodiscard]] virtual std::vector<std::vector<Detection>> detectBatch(
      std::span<const gfx::Bitmap* const> batch) const {
    std::vector<std::vector<Detection>> out;
    out.reserve(batch.size());
    for (const gfx::Bitmap* screenshot : batch) out.push_back(detect(*screenshot));
    return out;
  }

  /// Rough compute cost of one detect() call in multiply-accumulates —
  /// consumed by the simulated device's performance model.
  [[nodiscard]] virtual double costMacsPerImage() const = 0;

  /// Modeled cost of one detectBatch() over `batchSize` images, in
  /// *effective* MACs (MACs normalized to the single-image achieved
  /// throughput the macsPerCpuMs constant was calibrated against). The
  /// default has no amortization: a batch costs exactly its images.
  /// Backends whose per-image cost includes batch-invariant setup (weight
  /// streaming, plan building) override this; for batchSize == 1 every
  /// override must equal costMacsPerImage().
  [[nodiscard]] virtual double costMacsPerBatch(int batchSize) const {
    return batchSize * costMacsPerImage();
  }
};

}  // namespace darpa::cv
