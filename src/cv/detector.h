// Abstract detector interface shared by the one-stage model, the two-stage
// baselines, and DARPA's runtime (which only needs "screenshot in, labeled
// boxes out").
#pragma once

#include <vector>

#include "cv/detection.h"
#include "gfx/bitmap.h"

namespace darpa::cv {

class Detector {
 public:
  virtual ~Detector() = default;

  /// Detects AGO/UPO options in a screenshot.
  [[nodiscard]] virtual std::vector<Detection> detect(
      const gfx::Bitmap& screenshot) const = 0;

  /// Rough compute cost of one detect() call in multiply-accumulates —
  /// consumed by the simulated device's performance model.
  [[nodiscard]] virtual double costMacsPerImage() const = 0;
};

}  // namespace darpa::cv
