#include "cv/detection.h"

#include <algorithm>

namespace darpa::cv {

std::vector<Detection> nonMaxSuppression(std::vector<Detection> detections,
                                         double iouThreshold) {
  std::sort(detections.begin(), detections.end(),
            [](const Detection& a, const Detection& b) {
              return a.confidence > b.confidence;
            });
  std::vector<Detection> kept;
  for (const Detection& candidate : detections) {
    const bool suppressed = std::any_of(
        kept.begin(), kept.end(), [&](const Detection& k) {
          return k.label == candidate.label &&
                 iou(k.box, candidate.box) > iouThreshold;
        });
    if (!suppressed) kept.push_back(candidate);
  }
  return kept;
}

EvalCounts evaluateImage(std::span<const Detection> detections,
                         std::span<const dataset::Annotation> groundTruth,
                         double iouThreshold,
                         std::optional<dataset::BoxLabel> labelFilter) {
  std::vector<const Detection*> dets;
  for (const Detection& d : detections) {
    if (!labelFilter || d.label == *labelFilter) dets.push_back(&d);
  }
  std::sort(dets.begin(), dets.end(), [](const Detection* a, const Detection* b) {
    return a->confidence > b->confidence;
  });

  std::vector<const dataset::Annotation*> gts;
  for (const dataset::Annotation& a : groundTruth) {
    if (!labelFilter || a.label == *labelFilter) gts.push_back(&a);
  }
  std::vector<bool> matched(gts.size(), false);

  EvalCounts counts;
  for (const Detection* d : dets) {
    double bestIou = 0.0;
    std::size_t bestIdx = gts.size();
    for (std::size_t g = 0; g < gts.size(); ++g) {
      if (matched[g] || gts[g]->label != d->label) continue;
      const double overlap = iou(d->box, gts[g]->box);
      if (overlap > bestIou) {
        bestIou = overlap;
        bestIdx = g;
      }
    }
    if (bestIdx < gts.size() && bestIou >= iouThreshold) {
      matched[bestIdx] = true;
      ++counts.tp;
    } else {
      ++counts.fp;
    }
  }
  for (bool m : matched) {
    if (!m) ++counts.fn;
  }
  return counts;
}

}  // namespace darpa::cv
