// Two-stage detector baselines — the Faster/Mask R-CNN comparison set of
// Table V.
//
// Architecture mirrors the classic two-stage recipe:
//   1. Region proposals: dense multi-scale sliding windows scored by a cheap
//      class-agnostic objectness (ring contrast + saliency pop-out); the
//      top-K survive a loose NMS.
//   2. Per-region head: RoI-pooled features (an NxN grid of channel means
//      per proposal — the integral-image analogue of RoIPool) concatenated
//      with the shared candidate descriptor, classified and box-regressed by
//      an MLP.
//
// Two backbones and two heads combine into the paper's four baselines:
//   * V backbone ("VGG16-lite"): luma + edge channels only, 3x3 RoI grid.
//   * R backbone ("ResNet50-lite"): all five channels, deeper MLP.
//   * F head ("Faster R-CNN"): classification + one box regression pass.
//   * M head ("Mask R-CNN"): adds a mask pass — the flood-fill snap of
//     src/cv/refine.h — which is what lets it localize tiny options at the
//     paper's IoU 0.9 bar.
//
// Expected behaviour (and what Table V's bench verifies): accuracy ordering
// M+R > M+V > F+R ~ F+V, all below the one-stage detector, and every
// variant noticeably slower per image because of the dense proposal scan
// and the per-region pooled features.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cv/detector.h"
#include "cv/features.h"
#include "cv/one_stage.h"
#include "cv/refine.h"
#include "dataset/dataset.h"
#include "nn/mlp.h"

namespace darpa::cv {

enum class Backbone { kV, kR };
enum class HeadKind { kFaster, kMask };

[[nodiscard]] std::string twoStageModelName(HeadKind head, Backbone backbone);

struct TwoStageConfig {
  Backbone backbone = Backbone::kR;
  HeadKind head = HeadKind::kMask;
  /// Window shapes reused from the one-stage anchor family plus scale
  /// variants; strides follow Anchor::stride().
  std::vector<Anchor> windowShapes = {{16, 16}, {24, 24}, {48, 16},
                                      {72, 24}, {180, 44}, {230, 56},
                                      {110, 110}, {150, 150}};
  int featureScale = 2;
  /// Proposals kept after objectness ranking.
  int maxProposals = 1500;
  double proposalNmsIou = 0.7;
  int roiGrid = 4;  ///< RoI pooling grid (NxN per enabled channel).
  float confidenceThreshold = 0.8f;
  double nmsIou = 0.45;
  RefineConfig refine;
};

struct TwoStageTrainConfig {
  int epochs = 20;
  float learningRate = 2e-3f;
  int lrDecayEvery = 8;
  int negativesPerImage = 24;
  int positiveRepeat = 4;
  float boxLossWeight = 2.0f;
  int benignImages = 100;
  std::uint64_t seed = 11;
};

class TwoStageDetector : public Detector {
 public:
  static TwoStageDetector train(const dataset::AuiDataset& data,
                                const TwoStageConfig& config,
                                const TwoStageTrainConfig& trainConfig);

  [[nodiscard]] std::vector<Detection> detect(
      const gfx::Bitmap& screenshot) const override;
  [[nodiscard]] double costMacsPerImage() const override;

  [[nodiscard]] const TwoStageConfig& config() const { return config_; }
  [[nodiscard]] std::string name() const {
    return twoStageModelName(config_.head, config_.backbone);
  }

  /// Proposal boxes for one image — exposed for tests.
  [[nodiscard]] std::vector<Rect> proposals(const gfx::Bitmap& screenshot) const;

 private:
  explicit TwoStageDetector(TwoStageConfig config) : config_(std::move(config)) {}

  [[nodiscard]] ChannelSet backboneChannels() const;
  /// Proposals over an already-built FeatureMap — detect() and the training
  /// collect loop share one map instead of each building a second identical
  /// one just for the proposal scan.
  [[nodiscard]] std::vector<Rect> proposalsFromMap(const FeatureMap& map,
                                                   Size size) const;
  /// Length of the per-region descriptor for this map's enabled channels.
  [[nodiscard]] int regionFeatureDim(const FeatureMap& map) const;
  void regionFeaturesInto(const FeatureMap& map, const Rect& box,
                          std::span<float> out) const;
  [[nodiscard]] std::vector<float> regionFeatures(const FeatureMap& map,
                                                  const Rect& box) const;

  TwoStageConfig config_;
  std::unique_ptr<nn::Mlp> head_;
};

}  // namespace darpa::cv
