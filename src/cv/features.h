// Visual feature extraction for AUI detection.
//
// The paper's YOLOv5 learns its own convolutional features; our from-scratch
// reproduction computes an engineered multi-channel feature map (luma, edge
// energy, local contrast, saturation, color saliency) at 1/4 resolution with
// integral images for O(1) box statistics, and the detector heads are
// trained MLPs over per-candidate descriptors built from those channels.
// This captures exactly the signal the paper argues AUIs expose — *visual*
// asymmetry in size, position and contrast — while staying fast enough to
// "run on the phone" (the simulated device's CPU budget).
//
// Channels can be disabled individually; the ablation bench uses this to
// show which visual signal carries the detection.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "gfx/bitmap.h"
#include "util/geometry.h"

namespace darpa::cv {

enum class Channel : std::uint8_t {
  kLuma = 0,       ///< Brightness.
  kEdge,           ///< Sobel gradient magnitude.
  kContrast,       ///< |luma - local 5x5 mean| (pop-out), over integer luma.
  kSaturation,     ///< max(rgb) - min(rgb).
  kSaliency,       ///< Color distance from the global mean color.
};
inline constexpr int kChannelCount = 5;

[[nodiscard]] constexpr std::string_view channelName(Channel c) {
  switch (c) {
    case Channel::kLuma: return "luma";
    case Channel::kEdge: return "edge";
    case Channel::kContrast: return "contrast";
    case Channel::kSaturation: return "saturation";
    case Channel::kSaliency: return "saliency";
  }
  return "?";
}

/// Bitmask of enabled channels; default all.
struct ChannelSet {
  std::uint8_t mask = 0x1f;

  [[nodiscard]] bool enabled(Channel c) const {
    return (mask >> static_cast<int>(c)) & 1;
  }
  [[nodiscard]] static ChannelSet all() { return {0x1f}; }
  [[nodiscard]] static ChannelSet only(std::span<const Channel> channels) {
    ChannelSet set{0};
    for (Channel c : channels) set.mask |= static_cast<std::uint8_t>(1u << static_cast<int>(c));
    return set;
  }
  [[nodiscard]] ChannelSet without(Channel c) const {
    return {static_cast<std::uint8_t>(mask & ~(1u << static_cast<int>(c)))};
  }
  [[nodiscard]] int count() const;
};

/// Per-thread statistics for the fused feature pass's scratch arena. The
/// plane buffers (luma, sliding-window sums) live in a thread_local arena
/// reused across FeatureMap constructions; `growths` counts the heap
/// allocations that arena performed and stops increasing once frames of the
/// working size have been seen. The hot-path bench's zero-steady-state-
/// allocation contract reads these counters.
struct FeatureScratchStats {
  std::int64_t frames = 0;      ///< FeatureMaps built on this thread.
  std::int64_t growths = 0;     ///< Scratch buffer growths (heap allocs).
  std::int64_t grownBytes = 0;  ///< Capacity bytes added by those growths.
};

/// This thread's scratch statistics (thread_local; see FeatureScratchStats).
[[nodiscard]] const FeatureScratchStats& featureScratchStats();
void resetFeatureScratchStats();

/// Downscaled multi-channel feature planes with integral images.
class FeatureMap {
 public:
  /// Extracts features from a full-resolution screenshot in one fused
  /// traversal (all enabled channels + their integral images; the 5x5
  /// contrast window runs as a two-pass separable integer sliding window,
  /// O(1) per pixel and exactly equal to the naive 25-tap sum). `scale` is
  /// the downscale factor (default 4). Disabled channels read as all-zero.
  FeatureMap(const gfx::Bitmap& screenshot, ChannelSet channels = ChannelSet::all(),
             int scale = 4);

  /// Returns the integral-plane buffer to the thread-local pool so the next
  /// FeatureMap on this thread skips the multi-megabyte allocation (and
  /// zeroes only the integral borders instead of whole planes).
  ~FeatureMap();
  FeatureMap(const FeatureMap&) = delete;
  FeatureMap& operator=(const FeatureMap&) = delete;

  [[nodiscard]] int width() const { return width_; }    ///< Downscaled.
  [[nodiscard]] int height() const { return height_; }  ///< Downscaled.
  [[nodiscard]] int scale() const { return scale_; }
  [[nodiscard]] Size fullSize() const { return fullSize_; }
  [[nodiscard]] ChannelSet channels() const { return channels_; }

  /// Mean of a channel over a full-resolution rect (clipped; empty -> 0).
  [[nodiscard]] float boxMean(Channel c, const Rect& fullResRect) const;

  /// Contrast between a box and its surrounding ring (inflated by half the
  /// box's smaller side + 2 px): mean(inner) - mean(ring \ inner).
  [[nodiscard]] float ringContrast(Channel c, const Rect& fullResRect) const;

  /// Global mean of a channel.
  [[nodiscard]] float globalMean(Channel c) const;

  /// Mean over the central half of the screen minus mean over the border —
  /// a "modal panel / scrim" context cue.
  [[nodiscard]] float centerSurroundLuma() const;

  /// Full-res rect -> downscaled integral-grid cells (clipped).
  [[nodiscard]] Rect toCells(const Rect& fullResRect) const;

  /// Raw channel sum over integral-grid cells (see toCells). The descriptor
  /// fill uses this directly so each (channel, rect) pair is summed once.
  [[nodiscard]] double integralSum(int channel, const Rect& cells) const;

 private:
  int width_ = 0;
  int height_ = 0;
  int scale_ = 4;
  Size fullSize_;
  ChannelSet channels_;
  // kChannelCount concatenated integral planes of (width_+1)*(height_+1)
  // doubles each (plane c starts at c * planeStride_) — one allocation per
  // map instead of five.
  std::vector<double> integrals_;
  std::size_t planeStride_ = 0;
  // Map-constant context cues, computed once at construction (the candidate
  // descriptor reads them per grid position — thousands of times per frame).
  std::array<float, kChannelCount> globalMeans_{};
  float centerSurround_ = 0.0f;
};

/// Dimension of the per-candidate descriptor built by candidateFeatures().
inline constexpr int kCandidateFeatureDim = 2 * kChannelCount + 14;

/// Builds the descriptor for a candidate box (full-res coords):
/// per-channel [box mean, ring contrast], geometric priors (size, aspect,
/// position, corner/center distances), global context cues, and two
/// edge-continuation cues (does the local structure continue past the box —
/// separates isolated blobs from panel-border segments).
[[nodiscard]] std::vector<float> candidateFeatures(const FeatureMap& map,
                                                   const Rect& box);

/// candidateFeatures() into a caller-provided buffer of exactly
/// kCandidateFeatureDim floats — the allocation-free form the batched
/// detector path uses to fill descriptor matrix rows.
void candidateFeaturesInto(const FeatureMap& map, const Rect& box,
                           std::span<float> out);

/// The descriptor's geometric-prior block: kCandidateGeometryDim floats at
/// offset kCandidateGeometryOffset, a pure function of (frame size, box).
/// The batched detector precomputes one block per anchor-grid entry and
/// replays it across every frame of that size (bit-equal by construction —
/// this very function produced the cached values).
inline constexpr int kCandidateGeometryDim = 8;
inline constexpr int kCandidateGeometryOffset = 2 * kChannelCount;
void candidateGeometryInto(Size fullSize, const Rect& box,
                           std::span<float> out);

/// candidateFeaturesInto with the geometric block copied from `geometry`
/// (a kCandidateGeometryDim block from candidateGeometryInto) instead of
/// recomputed per candidate.
void candidateFeaturesPlannedInto(const FeatureMap& map, const Rect& box,
                                  std::span<const float> geometry,
                                  std::span<float> out);

}  // namespace darpa::cv
