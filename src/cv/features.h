// Visual feature extraction for AUI detection.
//
// The paper's YOLOv5 learns its own convolutional features; our from-scratch
// reproduction computes an engineered multi-channel feature map (luma, edge
// energy, local contrast, saturation, color saliency) at 1/4 resolution with
// integral images for O(1) box statistics, and the detector heads are
// trained MLPs over per-candidate descriptors built from those channels.
// This captures exactly the signal the paper argues AUIs expose — *visual*
// asymmetry in size, position and contrast — while staying fast enough to
// "run on the phone" (the simulated device's CPU budget).
//
// Channels can be disabled individually; the ablation bench uses this to
// show which visual signal carries the detection.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "gfx/bitmap.h"
#include "util/geometry.h"

namespace darpa::cv {

enum class Channel : std::uint8_t {
  kLuma = 0,       ///< Brightness.
  kEdge,           ///< Sobel gradient magnitude.
  kContrast,       ///< |luma - local 5x5 mean| (pop-out).
  kSaturation,     ///< max(rgb) - min(rgb).
  kSaliency,       ///< Color distance from the global mean color.
};
inline constexpr int kChannelCount = 5;

[[nodiscard]] constexpr std::string_view channelName(Channel c) {
  switch (c) {
    case Channel::kLuma: return "luma";
    case Channel::kEdge: return "edge";
    case Channel::kContrast: return "contrast";
    case Channel::kSaturation: return "saturation";
    case Channel::kSaliency: return "saliency";
  }
  return "?";
}

/// Bitmask of enabled channels; default all.
struct ChannelSet {
  std::uint8_t mask = 0x1f;

  [[nodiscard]] bool enabled(Channel c) const {
    return (mask >> static_cast<int>(c)) & 1;
  }
  [[nodiscard]] static ChannelSet all() { return {0x1f}; }
  [[nodiscard]] static ChannelSet only(std::span<const Channel> channels) {
    ChannelSet set{0};
    for (Channel c : channels) set.mask |= static_cast<std::uint8_t>(1u << static_cast<int>(c));
    return set;
  }
  [[nodiscard]] ChannelSet without(Channel c) const {
    return {static_cast<std::uint8_t>(mask & ~(1u << static_cast<int>(c)))};
  }
  [[nodiscard]] int count() const;
};

/// Downscaled multi-channel feature planes with integral images.
class FeatureMap {
 public:
  /// Extracts features from a full-resolution screenshot. `scale` is the
  /// downscale factor (default 4). Disabled channels read as all-zero.
  FeatureMap(const gfx::Bitmap& screenshot, ChannelSet channels = ChannelSet::all(),
             int scale = 4);

  [[nodiscard]] int width() const { return width_; }    ///< Downscaled.
  [[nodiscard]] int height() const { return height_; }  ///< Downscaled.
  [[nodiscard]] int scale() const { return scale_; }
  [[nodiscard]] Size fullSize() const { return fullSize_; }
  [[nodiscard]] ChannelSet channels() const { return channels_; }

  /// Mean of a channel over a full-resolution rect (clipped; empty -> 0).
  [[nodiscard]] float boxMean(Channel c, const Rect& fullResRect) const;

  /// Contrast between a box and its surrounding ring (inflated by half the
  /// box's smaller side + 2 px): mean(inner) - mean(ring \ inner).
  [[nodiscard]] float ringContrast(Channel c, const Rect& fullResRect) const;

  /// Global mean of a channel.
  [[nodiscard]] float globalMean(Channel c) const;

  /// Mean over the central half of the screen minus mean over the border —
  /// a "modal panel / scrim" context cue.
  [[nodiscard]] float centerSurroundLuma() const;

 private:
  [[nodiscard]] double integralSum(int channel, const Rect& cells) const;
  [[nodiscard]] Rect toCells(const Rect& fullResRect) const;

  int width_ = 0;
  int height_ = 0;
  int scale_ = 4;
  Size fullSize_;
  ChannelSet channels_;
  // integrals_[c] has (width_+1)*(height_+1) entries, row-major.
  std::array<std::vector<double>, kChannelCount> integrals_;
};

/// Dimension of the per-candidate descriptor built by candidateFeatures().
inline constexpr int kCandidateFeatureDim = 2 * kChannelCount + 14;

/// Builds the descriptor for a candidate box (full-res coords):
/// per-channel [box mean, ring contrast], geometric priors (size, aspect,
/// position, corner/center distances), global context cues, and two
/// edge-continuation cues (does the local structure continue past the box —
/// separates isolated blobs from panel-border segments).
[[nodiscard]] std::vector<float> candidateFeatures(const FeatureMap& map,
                                                   const Rect& box);

}  // namespace darpa::cv
