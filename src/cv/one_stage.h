// The one-stage grid detector — this reproduction's YOLOv5.
//
// Dense prediction over per-anchor grids: every anchor shape is slid over
// the image at a stride proportional to its size (fine grid for 20-px close
// icons, coarse grid for 200-px CTA buttons), every candidate box gets a
// descriptor from the FeatureMap (src/cv/features.h), and a shared MLP head
// predicts [AGO logit, UPO logit, dx, dy, dw, dh]. Training matches each
// ground-truth box to the best-shape anchor at the nearest grid position
// (YOLO-style), with periodic hard-negative mining rounds; inference
// decodes, NMS-filters, and flood-fill-refines boxes (src/cv/refine.h) to
// survive the paper's IoU >= 0.9 scoring.
//
// The head can run in fp32 ("server", Table IV top) or through the int8
// QuantizedMlp ("ncnn port on the phone", Table III) — enableQuantized()
// flips the mode after calibration.
#pragma once

#include <memory>
#include <string>
#include <optional>
#include <vector>

#include "cv/detector.h"
#include "cv/features.h"
#include "cv/refine.h"
#include "dataset/dataset.h"
#include "nn/mlp.h"
#include "nn/quantize.h"

namespace darpa::cv {

/// Anchor shape (full-res pixels) and the grid stride it is slid at.
struct Anchor {
  int width = 0;
  int height = 0;

  friend bool operator==(const Anchor&, const Anchor&) = default;

  /// Stride proportional to the anchor's smaller side, clamped to [8, 32]:
  /// small objects need dense coverage, large ones don't.
  [[nodiscard]] int stride() const {
    const int s = std::min(width, height) / 2;
    return s < 8 ? 8 : (s > 32 ? 32 : s);
  }
};

struct OneStageConfig {
  /// Anchor shapes tuned to the option-size families of the AUI taxonomy:
  /// tiny close icons, short text strips, wide CTA buttons, large round
  /// promo buttons.
  std::vector<Anchor> anchors = {{20, 20}, {56, 18}, {210, 48}, {130, 130}};
  ChannelSet channels = ChannelSet::all();
  int featureScale = 2;
  std::vector<int> hiddenLayers = {48, 24};
  /// Per-class confidence thresholds. The UPO threshold is lower because the
  /// flood-fill verification stage (dropUnrefined) already removes most
  /// low-confidence false alarms, so recall is cheap for tiny options.
  float confidenceThresholdAgo = 0.7f;
  float confidenceThresholdUpo = 0.17f;
  double nmsIou = 0.45;
  RefineConfig refine;
  /// Shape-IoU above which an extra anchor at the target position is also
  /// positive.
  double extraPositiveShapeIou = 0.6;
  /// Position-IoU below which a candidate is a clean negative.
  double negativeIou = 0.3;
  /// Drop detections whose flood-fill refinement fails: a detection that
  /// does not correspond to a solid rendered plate is almost always a panel
  /// border or texture, and a ghost option that cannot be snapped would
  /// miss the IoU 0.9 bar anyway.
  bool dropUnrefined = true;
  /// Score the whole anchor grid in one Mlp::forwardBatch GEMM instead of
  /// one forward() per candidate. Bit-equal by construction (the batched
  /// kernel keeps the scalar per-row accumulation order), so this is purely
  /// a throughput switch; off exists for the equality tests and the bench's
  /// scalar baseline.
  bool batchedHead = true;
};

struct TrainConfig {
  int epochs = 36;
  float learningRate = 2e-3f;
  /// Halve the learning rate every this many epochs (0 = never).
  int lrDecayEvery = 14;
  /// Re-run hard-negative mining (full candidate sweep) every N epochs;
  /// between rounds the per-image example selection is reused.
  int miningEvery = 2;
  int hardNegativesPerImage = 48;
  int randomNegativesPerImage = 24;
  /// Each positive example is repeated this many times per step to offset
  /// the heavy negative imbalance (tiny UPOs drown otherwise).
  int positiveRepeat = 4;
  float boxLossWeight = 2.0f;
  /// Benign screenshots mixed in as negative-only images; keeps the head
  /// calibrated on non-AUI context at runtime (Table VI precision).
  int benignImages = 150;
  /// Train on text-masked screenshots (the paper's Fig.-7 experiment
  /// re-trains a second model on masked data).
  bool maskText = false;
  std::uint64_t seed = 7;
};

class OneStageDetector : public Detector {
 public:
  /// Trains a head on the dataset's train split.
  static OneStageDetector train(const dataset::AuiDataset& data,
                                const OneStageConfig& config,
                                const TrainConfig& trainConfig);

  // Detector interface.
  [[nodiscard]] std::vector<Detection> detect(
      const gfx::Bitmap& screenshot) const override;
  [[nodiscard]] double costMacsPerImage() const override;

  /// Batched inference for the fleet's BatchingExecutor. Verdict-identical
  /// to per-image detect(); what batching buys is the cost model below.
  [[nodiscard]] std::vector<std::vector<Detection>> detectBatch(
      std::span<const gfx::Bitmap* const> batch) const override;
  /// Amortized batch cost: the batch-invariant share of a single inference
  /// (head-weight streaming into cache, anchor-grid plan, int8 scale
  /// tables) is paid once per detectBatch instead of once per image.
  [[nodiscard]] double costMacsPerBatch(int batchSize) const override;

  /// Converts the head to int8 using `calibrationImages` (typically the
  /// validation split) and switches inference to the quantized path.
  void enableQuantized(std::span<const gfx::Bitmap> calibrationImages);
  void disableQuantized() { useQuantized_ = false; }
  [[nodiscard]] bool quantized() const { return useQuantized_; }
  /// Name of the int8 GEMM kernel lane the quantized head dispatches to
  /// ("scalar", "sse4", "avx2"): resolved once per process from CPUID /
  /// DARPA_KERNEL. Surfaced so perf trends are attributable to lane
  /// changes; every lane is bit-equal, so verdicts never depend on it.
  [[nodiscard]] static const char* quantizedKernelLane();
  /// Parameter footprint of the active model in bytes.
  [[nodiscard]] std::size_t modelBytes() const;

  [[nodiscard]] const OneStageConfig& config() const { return config_; }
  [[nodiscard]] const nn::Mlp& head() const { return *head_; }

  /// All candidate boxes for an image of `size` — exposed for tests.
  [[nodiscard]] std::vector<Rect> candidateBoxes(Size size) const;

  /// Persists / restores the trained head (fp32). The config is NOT stored;
  /// the loader must pass the same OneStageConfig used at training time.
  bool saveModel(const std::string& path) const;
  [[nodiscard]] static std::optional<OneStageDetector> loadModel(
      const std::string& path, const OneStageConfig& config);

 private:
  explicit OneStageDetector(OneStageConfig config) : config_(std::move(config)) {}

  [[nodiscard]] std::vector<float> runHead(std::span<const float> features) const;
  /// Scores `rows` descriptors (row-major) in one batched head call through
  /// whichever head (fp32/int8) is active.
  void runHeadBatch(std::span<const float> features, int rows,
                    std::span<float> logits, nn::ForwardScratch& scratch) const;
  /// Shared tail of detect()/detectBatch(): NMS, flood-fill refinement,
  /// duplicate merge.
  [[nodiscard]] std::vector<Detection> postprocess(
      std::vector<Detection> raw, const gfx::Bitmap& screenshot) const;

  OneStageConfig config_;
  std::unique_ptr<nn::Mlp> head_;
  std::optional<nn::QuantizedMlp> quantizedHead_;
  bool useQuantized_ = false;
};

/// Per-thread scratch statistics for the detector hot path: the batched
/// detect path's arenas (grid cache, descriptor matrix, logits, MLP forward
/// scratch) plus the fused feature pass's arena. Growths stop once the
/// working sizes have been seen; the executors diff this around detect
/// calls and the hot-path bench asserts zero steady-state growth.
struct DetectScratchStats {
  std::int64_t growths = 0;
  std::int64_t grownBytes = 0;
};
[[nodiscard]] DetectScratchStats hotpathScratchStats();

/// Per-class and overall metrics of a detector over a set of dataset
/// samples — the exact quantities of Tables III/IV/V.
struct ModelMetrics {
  EvalCounts upo;
  EvalCounts ago;
  [[nodiscard]] EvalCounts all() const {
    EvalCounts total = upo;
    total += ago;
    return total;
  }
};

/// Runs `detector` over the given dataset indices at the paper's IoU 0.9.
[[nodiscard]] ModelMetrics evaluateDetector(
    const Detector& detector, const dataset::AuiDataset& data,
    const std::vector<std::size_t>& indices, bool maskText = false,
    double iouThreshold = 0.9);

}  // namespace darpa::cv
