#include "cv/refine.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <limits>
#include <vector>

namespace darpa::cv {

namespace {
int colorDistance(Color a, Color b) {
  return std::abs(a.r - b.r) + std::abs(a.g - b.g) + std::abs(a.b - b.b);
}

/// 12-bit quantization key (4 bits per channel) for the mode-color vote.
std::uint32_t quantKey(Color c) {
  return (static_cast<std::uint32_t>(c.r >> 4) << 8) |
         (static_cast<std::uint32_t>(c.g >> 4) << 4) |
         (static_cast<std::uint32_t>(c.b >> 4));
}

constexpr std::size_t kBuckets = 1 << 12;

/// Per-thread arena for snapToRegion. The key space is only 12 bits, so the
/// mode-color vote runs over flat direct-indexed histograms instead of hash
/// maps — one increment per pixel, no hashing, no rehash allocations. The
/// histograms are cleaned via the `touched` key list after each call, so a
/// call pays for the colors it saw, not for the whole table; the per-pixel
/// keys, flood-fill state, and stack are likewise reused across calls. The
/// histogram counts, mode scores, seed color, and fill set are exactly the
/// ones the hash-map formulation produced.
struct RefineScratch {
  std::array<int, kBuckets> histogram{};
  std::array<int, kBuckets> ringHistogram{};
  std::vector<std::uint32_t> touched;      ///< Keys with a nonzero count.
  std::vector<std::uint16_t> qkeys;        ///< Per-window-pixel quantKey.
  std::vector<char> match;    ///< 0 untested, 1 seed-color match, 2 not.
  std::vector<char> visited;  ///< Per-window-pixel flood-fill state.
  std::vector<Point> stack;
};

RefineScratch& refineScratch() {
  thread_local RefineScratch scratch;
  return scratch;
}

}  // namespace

std::optional<Rect> snapToRegion(const gfx::Bitmap& image, const Rect& coarse,
                                 const RefineConfig& config) {
  if (coarse.empty() || image.empty()) return std::nullopt;
  const int inflate = static_cast<int>(
      std::min(coarse.width, coarse.height) * config.windowInflate) +
      config.windowMargin;
  const Rect window = coarse.inflated(inflate).intersect(image.bounds());
  const Rect inner = coarse.intersect(image.bounds());
  if (window.empty() || inner.empty()) return std::nullopt;

  // Seed color = the quantized color that is frequent INSIDE the coarse box
  // but rare in the surrounding ring. A plain in-box mode can be won by the
  // background when the box straddles a panel edge; discounting each
  // bucket by its (area-normalized) ring frequency singles out the
  // foreground plate. Glyph strokes and text are minority pixels either way.
  //
  // One fused traversal of the window fills both histograms (rows are split
  // into ring/inner/ring segments, so there is no per-pixel containment
  // test) and records every pixel's key for the later bucket-mean pass.
  RefineScratch& s = refineScratch();
  const std::size_t windowCells =
      static_cast<std::size_t>(window.width) * window.height;
  if (s.qkeys.size() < windowCells) s.qkeys.resize(windowCells);
  s.touched.clear();
  auto index = [&](int x, int y) {
    return static_cast<std::size_t>(y - window.y) * window.width +
           (x - window.x);
  };
  for (int y = window.top(); y < window.bottom(); ++y) {
    const bool innerRow = y >= inner.top() && y < inner.bottom();
    const int il = innerRow ? inner.left() : window.left();
    const int ir = innerRow ? inner.right() : window.left();
    auto scan = [&](int x0, int x1, std::array<int, kBuckets>& hist) {
      for (int x = x0; x < x1; ++x) {
        const std::uint32_t key = quantKey(image.at(x, y));
        s.qkeys[index(x, y)] = static_cast<std::uint16_t>(key);
        if (s.histogram[key] == 0 && s.ringHistogram[key] == 0) {
          s.touched.push_back(key);
        }
        ++hist[key];
      }
    };
    scan(window.left(), il, s.ringHistogram);
    scan(il, ir, s.histogram);
    scan(ir, window.right(), s.ringHistogram);
  }
  const std::int64_t ringArea =
      static_cast<std::int64_t>(window.area()) - inner.area();
  const double ringScale =
      ringArea > 0
          ? static_cast<double>(inner.area()) / static_cast<double>(ringArea)
          : 0.0;
  std::uint32_t modeKey = 0;
  double modeScore = -std::numeric_limits<double>::infinity();
  for (const std::uint32_t key : s.touched) {
    const int count = s.histogram[key];
    if (count == 0) continue;
    const double score = count - s.ringHistogram[key] * ringScale;
    if (score > modeScore) {
      modeScore = score;
      modeKey = key;
    }
  }
  // The histograms are no longer needed; zero the touched entries now so
  // every early return below leaves the arena clean.
  for (const std::uint32_t key : s.touched) {
    s.histogram[key] = 0;
    s.ringHistogram[key] = 0;
  }
  if (modeScore <= 0.0) return std::nullopt;  // box is all background
  // Mean color of the mode bucket.
  long sumR = 0, sumG = 0, sumB = 0;
  int bucketCount = 0;
  for (int y = inner.top(); y < inner.bottom(); ++y) {
    for (int x = inner.left(); x < inner.right(); ++x) {
      if (s.qkeys[index(x, y)] != modeKey) continue;
      const Color c = image.at(x, y);
      sumR += c.r;
      sumG += c.g;
      sumB += c.b;
      ++bucketCount;
    }
  }
  if (bucketCount == 0) return std::nullopt;
  const Color seedColor{static_cast<std::uint8_t>(sumR / bucketCount),
                        static_cast<std::uint8_t>(sumG / bucketCount),
                        static_cast<std::uint8_t>(sumB / bucketCount), 255};

  // Flood fill (4-connected) within the window, seeded from every coarse-box
  // pixel that matches the seed color. The color test is memoized per pixel
  // (tri-state), so only probed pixels pay for it — a fill that stays small
  // never scans the whole window.
  //
  // The moment any filled pixel lands on the window border, the final
  // border-leak check below is guaranteed to reject the call, so the fill
  // aborts right there. False-positive coarse boxes over background are the
  // common case (the fill leaks across the whole window before being
  // rejected), and this turns each of them from a full-window fill into a
  // short walk to the nearest border.
  if (s.match.size() < windowCells) s.match.resize(windowCells);
  if (s.visited.size() < windowCells) s.visited.resize(windowCells);
  std::memset(s.match.data(), 0, windowCells);
  std::memset(s.visited.data(), 0, windowCells);
  auto isMatch = [&](int x, int y) {
    char& m = s.match[index(x, y)];
    if (m == 0) {
      m = colorDistance(image.at(x, y), seedColor) < config.colorTolerance
              ? 1
              : 2;
    }
    return m == 1;
  };
  auto onBorder = [&](int x, int y) {
    return x == window.left() || x == window.right() - 1 ||
           y == window.top() || y == window.bottom() - 1;
  };
  std::vector<Point>& stack = s.stack;
  stack.clear();
  for (int y = inner.top(); y < inner.bottom(); ++y) {
    for (int x = inner.left(); x < inner.right(); ++x) {
      if (isMatch(x, y) && !s.visited[index(x, y)]) {
        if (onBorder(x, y)) return std::nullopt;
        s.visited[index(x, y)] = 1;
        stack.push_back(Point{x, y});
      }
    }
  }
  if (stack.empty()) return std::nullopt;

  int minX = stack.front().x, maxX = stack.front().x;
  int minY = stack.front().y, maxY = stack.front().y;
  std::int64_t filled = 0;
  while (!stack.empty()) {
    const Point p = stack.back();
    stack.pop_back();
    ++filled;
    minX = std::min(minX, p.x);
    maxX = std::max(maxX, p.x);
    minY = std::min(minY, p.y);
    maxY = std::max(maxY, p.y);
    const std::array<Point, 4> neighbors = {Point{p.x + 1, p.y},
                                            Point{p.x - 1, p.y},
                                            Point{p.x, p.y + 1},
                                            Point{p.x, p.y - 1}};
    for (const Point& q : neighbors) {
      if (!window.contains(q) || s.visited[index(q.x, q.y)]) continue;
      if (!isMatch(q.x, q.y)) continue;
      if (onBorder(q.x, q.y)) return std::nullopt;
      s.visited[index(q.x, q.y)] = 1;
      stack.push_back(q);
    }
  }

  const Rect region{minX, minY, maxX - minX + 1, maxY - minY + 1};
  const double areaFrac =
      static_cast<double>(region.area()) / static_cast<double>(coarse.area());
  const double windowFrac =
      static_cast<double>(filled) / static_cast<double>(window.area());
  if (areaFrac < config.minAreaFrac || windowFrac > config.maxWindowFrac) {
    return std::nullopt;
  }
  // A fill that hit the window border likely leaked into the surroundings.
  if (region.x == window.x || region.y == window.y ||
      region.right() == window.right() || region.bottom() == window.bottom()) {
    return std::nullopt;
  }
  return region;
}

}  // namespace darpa::cv
