#include "cv/refine.h"

#include <algorithm>
#include <limits>
#include <array>
#include <unordered_map>
#include <vector>

namespace darpa::cv {

namespace {
int colorDistance(Color a, Color b) {
  return std::abs(a.r - b.r) + std::abs(a.g - b.g) + std::abs(a.b - b.b);
}

/// 12-bit quantization key (4 bits per channel) for the mode-color vote.
std::uint32_t quantKey(Color c) {
  return (static_cast<std::uint32_t>(c.r >> 4) << 8) |
         (static_cast<std::uint32_t>(c.g >> 4) << 4) |
         (static_cast<std::uint32_t>(c.b >> 4));
}
}  // namespace

std::optional<Rect> snapToRegion(const gfx::Bitmap& image, const Rect& coarse,
                                 const RefineConfig& config) {
  if (coarse.empty() || image.empty()) return std::nullopt;
  const int inflate = static_cast<int>(
      std::min(coarse.width, coarse.height) * config.windowInflate) +
      config.windowMargin;
  const Rect window = coarse.inflated(inflate).intersect(image.bounds());
  const Rect inner = coarse.intersect(image.bounds());
  if (window.empty() || inner.empty()) return std::nullopt;

  // Seed color = the quantized color that is frequent INSIDE the coarse box
  // but rare in the surrounding ring. A plain in-box mode can be won by the
  // background when the box straddles a panel edge; discounting each
  // bucket by its (area-normalized) ring frequency singles out the
  // foreground plate. Glyph strokes and text are minority pixels either way.
  std::unordered_map<std::uint32_t, int> histogram;
  for (int y = inner.top(); y < inner.bottom(); ++y) {
    for (int x = inner.left(); x < inner.right(); ++x) {
      ++histogram[quantKey(image.at(x, y))];
    }
  }
  std::unordered_map<std::uint32_t, int> ringHistogram;
  std::int64_t ringArea = 0;
  for (int y = window.top(); y < window.bottom(); ++y) {
    for (int x = window.left(); x < window.right(); ++x) {
      if (inner.contains(Point{x, y})) continue;
      ++ringHistogram[quantKey(image.at(x, y))];
      ++ringArea;
    }
  }
  const double ringScale =
      ringArea > 0
          ? static_cast<double>(inner.area()) / static_cast<double>(ringArea)
          : 0.0;
  std::uint32_t modeKey = 0;
  double modeScore = -std::numeric_limits<double>::infinity();
  for (const auto& [key, count] : histogram) {
    const auto ringIt = ringHistogram.find(key);
    const double ringCount =
        ringIt == ringHistogram.end() ? 0.0 : ringIt->second;
    const double score = count - ringCount * ringScale;
    if (score > modeScore) {
      modeScore = score;
      modeKey = key;
    }
  }
  if (modeScore <= 0.0) return std::nullopt;  // box is all background
  // Mean color of the mode bucket.
  long sumR = 0, sumG = 0, sumB = 0;
  int bucketCount = 0;
  for (int y = inner.top(); y < inner.bottom(); ++y) {
    for (int x = inner.left(); x < inner.right(); ++x) {
      const Color c = image.at(x, y);
      if (quantKey(c) != modeKey) continue;
      sumR += c.r;
      sumG += c.g;
      sumB += c.b;
      ++bucketCount;
    }
  }
  if (bucketCount == 0) return std::nullopt;
  const Color seedColor{static_cast<std::uint8_t>(sumR / bucketCount),
                        static_cast<std::uint8_t>(sumG / bucketCount),
                        static_cast<std::uint8_t>(sumB / bucketCount), 255};

  // Flood fill (4-connected) within the window, seeded from every coarse-box
  // pixel that matches the seed color.
  std::vector<char> visited(
      static_cast<std::size_t>(window.width) * window.height, 0);
  auto index = [&](int x, int y) {
    return static_cast<std::size_t>(y - window.y) * window.width +
           (x - window.x);
  };
  std::vector<Point> stack;
  for (int y = inner.top(); y < inner.bottom(); ++y) {
    for (int x = inner.left(); x < inner.right(); ++x) {
      if (colorDistance(image.at(x, y), seedColor) < config.colorTolerance &&
          !visited[index(x, y)]) {
        visited[index(x, y)] = 1;
        stack.push_back(Point{x, y});
      }
    }
  }
  if (stack.empty()) return std::nullopt;

  int minX = stack.front().x, maxX = stack.front().x;
  int minY = stack.front().y, maxY = stack.front().y;
  std::int64_t filled = 0;
  while (!stack.empty()) {
    const Point p = stack.back();
    stack.pop_back();
    ++filled;
    minX = std::min(minX, p.x);
    maxX = std::max(maxX, p.x);
    minY = std::min(minY, p.y);
    maxY = std::max(maxY, p.y);
    const std::array<Point, 4> neighbors = {Point{p.x + 1, p.y},
                                            Point{p.x - 1, p.y},
                                            Point{p.x, p.y + 1},
                                            Point{p.x, p.y - 1}};
    for (const Point& q : neighbors) {
      if (!window.contains(q) || visited[index(q.x, q.y)]) continue;
      if (colorDistance(image.at(q.x, q.y), seedColor) >=
          config.colorTolerance) {
        continue;
      }
      visited[index(q.x, q.y)] = 1;
      stack.push_back(q);
    }
  }

  const Rect region{minX, minY, maxX - minX + 1, maxY - minY + 1};
  const double areaFrac =
      static_cast<double>(region.area()) / static_cast<double>(coarse.area());
  const double windowFrac =
      static_cast<double>(filled) / static_cast<double>(window.area());
  if (areaFrac < config.minAreaFrac || windowFrac > config.maxWindowFrac) {
    return std::nullopt;
  }
  // A fill that hit the window border likely leaked into the surroundings.
  if (region.x == window.x || region.y == window.y ||
      region.right() == window.right() || region.bottom() == window.bottom()) {
    return std::nullopt;
  }
  return region;
}

}  // namespace darpa::cv
