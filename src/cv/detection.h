// Detection output types, non-maximum suppression, and the IoU-matched
// precision/recall/F1 evaluator used by every accuracy experiment.
//
// The paper scores detections at an unusually strict IoU threshold of 0.9
// (§VI-B) because the end-to-end system must place decoration views exactly
// over the options; the evaluator here defaults to the same threshold.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "dataset/dataset.h"
#include "util/geometry.h"

namespace darpa::cv {

struct Detection {
  Rect box;
  dataset::BoxLabel label = dataset::BoxLabel::kUpo;
  float confidence = 0.0f;
};

/// Greedy per-class non-maximum suppression; detections sorted by descending
/// confidence, suppressing same-class boxes with IoU > `iouThreshold`.
[[nodiscard]] std::vector<Detection> nonMaxSuppression(
    std::vector<Detection> detections, double iouThreshold = 0.5);

/// Counts from greedy confidence-ordered matching of detections to ground
/// truth (same label, IoU >= threshold, each GT matched at most once).
struct EvalCounts {
  int tp = 0;
  int fp = 0;
  int fn = 0;

  [[nodiscard]] double precision() const {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  }
  [[nodiscard]] double recall() const {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  }
  [[nodiscard]] double f1() const {
    const int denom = 2 * tp + fp + fn;
    return denom == 0 ? 0.0 : 2.0 * tp / denom;
  }

  EvalCounts& operator+=(const EvalCounts& o) {
    tp += o.tp;
    fp += o.fp;
    fn += o.fn;
    return *this;
  }
};

/// Evaluates detections of one image against its annotations. When
/// `labelFilter` is set, only that class's detections/annotations count.
[[nodiscard]] EvalCounts evaluateImage(
    std::span<const Detection> detections,
    std::span<const dataset::Annotation> groundTruth, double iouThreshold = 0.9,
    std::optional<dataset::BoxLabel> labelFilter = std::nullopt);

}  // namespace darpa::cv
