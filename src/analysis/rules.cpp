// The built-in lint rules. Each inspects the shared LintContext and appends
// structured findings; thresholds live in the per-rule Config structs so a
// deployment can tighten or relax any rule independently.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <string>

#include "analysis/lint.h"

namespace darpa::analysis {

namespace {

Severity capSeverity(Severity s, Severity cap) { return s < cap ? s : cap; }

LintFinding makeFinding(const LintContext& ctx, const LintRule& rule, int node,
                        Severity severity, double score, std::string message) {
  LintFinding finding;
  finding.ruleId = std::string(rule.id());
  finding.severity = severity;
  finding.score = std::clamp(score, 0.0, 1.0);
  finding.message = std::move(message);
  finding.nodeIndex = node;
  finding.viewPath = ctx.path(node);
  finding.box = ctx.dump()[node].boundsOnScreen;
  return finding;
}

std::string describeBox(const Rect& b) {
  return std::to_string(b.width) + "x" + std::to_string(b.height);
}

/// Perceived contrast of a node's declared ink: the stronger of glyph/text
/// against its plate and plate against the composited surround, faded by the
/// effective alpha (an option at alpha 0.2 reads at a fifth of its nominal
/// contrast).
double perceivedContrast(const LintContext& ctx, int node) {
  const android::UiNode& n = ctx.dump()[node];
  const Color surround = ctx.effectiveBackdrop(node);
  const Color plate =
      n.background.a > 0 ? blend(surround, n.background) : surround;
  double contrast = contrastRatio(plate, surround);
  if (n.hasContentColor) {
    contrast = std::max(contrast, contrastRatio(n.contentColor, plate));
  }
  return 1.0 + (contrast - 1.0) * n.effAlpha;
}

}  // namespace

// Default constructors live here so each Config's default member
// initializers are instantiated with the class complete (cf. WindowManager).
SizeAsymmetryRule::SizeAsymmetryRule() : SizeAsymmetryRule(Config{}) {}
CornerPlacementRule::CornerPlacementRule() : CornerPlacementRule(Config{}) {}
ContrastAsymmetryRule::ContrastAsymmetryRule()
    : ContrastAsymmetryRule(Config{}) {}
TouchTargetRule::TouchTargetRule() : TouchTargetRule(Config{}) {}
HiddenClickableRule::HiddenClickableRule() : HiddenClickableRule(Config{}) {}
IdTokenRule::IdTokenRule() : IdTokenRule(Config{}) {}

void SizeAsymmetryRule::run(const LintContext& ctx,
                            std::vector<LintFinding>& out) const {
  if (!config_.enabled) return;
  const int dominant = ctx.dominantClickable(config_.minDominantAreaFrac);
  if (dominant < 0) return;
  const android::UiNode& big = ctx.dump()[dominant];
  const double dominantFrac =
      static_cast<double>(big.boundsOnScreen.area()) /
      static_cast<double>(std::max<std::int64_t>(1, ctx.windowRect().area()));

  for (int i : ctx.dismissCandidates(config_.maxDismissArea,
                                     config_.maxDismissMinSide)) {
    if (i == dominant) continue;
    const Rect& small = ctx.dump()[i].boundsOnScreen;
    const double ratio =
        static_cast<double>(big.boundsOnScreen.area()) /
        static_cast<double>(std::max<std::int64_t>(1, small.area()));
    if (ratio < config_.minAreaRatio) continue;

    double score = std::min(1.0, ratio / config_.saturationRatio);
    Severity severity = ratio >= 2.5 * config_.minAreaRatio
                            ? Severity::kError
                            : Severity::kWarning;
    if (ctx.symmetricPair()) {
      // The screen also offers two comparable options: the tiny control is
      // an ordinary close button on a symmetric dialog, not the only exit.
      severity = Severity::kInfo;
      score *= 0.25;
    } else if (!ctx.modal() && dominantFrac < 0.2) {
      // Outside a modal and without a screen-dominating surface this is a
      // banner-with-close shape, suspicious but not popup-shaped.
      severity = Severity::kWarning;
      score *= 0.5;
    }
    out.push_back(makeFinding(
        ctx, *this, i, capSeverity(severity, config_.maxSeverity), score,
        "clickable " + describeBox(small) + " is " +
            std::to_string(static_cast<int>(ratio)) +
            "x smaller than the dominant option (" +
            describeBox(big.boundsOnScreen) + ")"));
  }
}

void CornerPlacementRule::run(const LintContext& ctx,
                              std::vector<LintFinding>& out) const {
  if (!config_.enabled) return;
  if (ctx.dominantClickable(config_.minDominantAreaFrac) < 0) return;
  const Rect& panel = ctx.panelRect();
  const int margin = config_.cornerMargin;

  for (int i : ctx.dismissCandidates(config_.maxDismissArea,
                                     config_.maxDismissMinSide)) {
    const Rect& b = ctx.dump()[i].boundsOnScreen;
    const bool nearX = std::min(std::abs(b.left() - panel.left()),
                                std::abs(b.right() - panel.right())) <= margin;
    const bool nearY = std::min(std::abs(b.top() - panel.top()),
                                std::abs(b.bottom() - panel.bottom())) <= margin;
    // UPOs also float centered just below the panel (§III-A layouts).
    const bool belowPanel = b.top() >= panel.bottom() &&
                            b.top() - panel.bottom() <= 2 * margin;
    double score = 0.0;
    const char* placement = nullptr;
    if (nearX && nearY) {
      score = 1.0;
      placement = "corner";
    } else if (nearX || nearY || belowPanel) {
      score = 0.65;
      placement = "edge";
    } else {
      continue;
    }
    if (!ctx.modal()) score *= 0.6;
    Severity severity = nearX && nearY && ctx.modal() ? Severity::kError
                                                      : Severity::kWarning;
    if (ctx.symmetricPair()) {
      severity = Severity::kInfo;
      score *= 0.4;
    }
    out.push_back(makeFinding(
        ctx, *this, i, capSeverity(severity, config_.maxSeverity), score,
        std::string("small dismiss option pinned to the ") + placement +
            " of the " + (ctx.panelIndex() >= 0 ? "dialog panel" : "window") +
            " while a dominant option sits inside"));
  }
}

void ContrastAsymmetryRule::run(const LintContext& ctx,
                                std::vector<LintFinding>& out) const {
  if (!config_.enabled) return;
  // The loud side: the most prominent declared styling among large
  // clickables (the dominant surface itself may be an image with no declared
  // colors — a CTA button next to it still sets the loudness bar).
  const double minArea = config_.minDominantAreaFrac *
                         static_cast<double>(ctx.windowRect().area());
  double loudest = 0.0;
  bool haveLoud = false;
  for (int i : ctx.clickables()) {
    const android::UiNode& n = ctx.dump()[i];
    if (static_cast<double>(n.boundsOnScreen.area()) < minArea) continue;
    if (n.background.a == 0 && !n.hasContentColor) continue;
    loudest = std::max(loudest, perceivedContrast(ctx, i));
    haveLoud = true;
  }

  for (int i : ctx.dismissCandidates(config_.maxDismissArea,
                                     config_.maxDismissMinSide)) {
    const android::UiNode& n = ctx.dump()[i];
    if (n.effAlpha < config_.ghostAlpha) {
      out.push_back(makeFinding(
          ctx, *this, i, capSeverity(Severity::kError, config_.maxSeverity),
          1.0,
          "ghost dismiss option: effective alpha " +
              std::to_string(n.effAlpha).substr(0, 4) +
              " renders it nearly invisible"));
      continue;
    }
    if (!haveLoud) continue;
    const double muted = std::max(1.0, perceivedContrast(ctx, i));
    const double ratio = loudest / muted;
    if (ratio < config_.minProminenceRatio) continue;
    double score = std::min(1.0, ratio / config_.saturationRatio);
    if (ctx.symmetricPair()) score *= 0.5;
    const Severity severity = ratio >= 2.0 ? Severity::kError
                                           : Severity::kWarning;
    out.push_back(makeFinding(
        ctx, *this, i, capSeverity(severity, config_.maxSeverity), score,
        "declared contrast asymmetry: dismiss option reads at " +
            std::to_string(muted).substr(0, 4) + ":1 vs " +
            std::to_string(loudest).substr(0, 4) +
            ":1 for the app-guided option"));
  }
}

void TouchTargetRule::run(const LintContext& ctx,
                          std::vector<LintFinding>& out) const {
  if (!config_.enabled) return;
  for (int i : ctx.clickables()) {
    const Rect& b = ctx.dump()[i].boundsOnScreen;
    const int minSide = std::min(b.width, b.height);
    if (minSide >= config_.minSidePx) continue;
    const double range =
        std::max(1, config_.minSidePx - config_.criticalSidePx);
    const double score =
        std::clamp((config_.minSidePx - minSide) / range, 0.0, 1.0);
    const Severity severity = minSide < config_.criticalSidePx
                                  ? config_.maxSeverity
                                  : capSeverity(Severity::kWarning,
                                                config_.maxSeverity);
    out.push_back(makeFinding(
        ctx, *this, i, severity, score,
        "touch target " + describeBox(b) + " is below the 48dp minimum"));
  }
}

void HiddenClickableRule::run(const LintContext& ctx,
                              std::vector<LintFinding>& out) const {
  if (!config_.enabled) return;
  const Rect screen{0, 0, ctx.screenSize().width, ctx.screenSize().height};
  const android::UiDump& dump = ctx.dump();
  for (int i : ctx.clickables()) {
    const Rect& b = dump[i].boundsOnScreen;
    const double visibleFrac =
        static_cast<double>(b.intersect(screen).area()) /
        static_cast<double>(std::max<std::int64_t>(1, b.area()));
    if (1.0 - visibleFrac >= config_.minOffscreenFrac) {
      out.push_back(makeFinding(
          ctx, *this, i,
          capSeverity(visibleFrac <= 0.0 ? Severity::kError
                                         : Severity::kWarning,
                      config_.maxSeverity),
          1.0 - visibleFrac,
          "clickable view is " +
              std::to_string(static_cast<int>((1.0 - visibleFrac) * 100)) +
              "% off-screen"));
      continue;
    }
    // Occlusion: any node painted after this view's subtree that covers it
    // with an opaque surface makes it unreachable (pre-order = paint order).
    for (int j = ctx.subtreeEnd(i); j < static_cast<int>(dump.size()); ++j) {
      const android::UiNode& over = dump[j];
      if (over.background.a != 255 ||
          over.effAlpha < config_.minOccluderAlpha) {
        continue;
      }
      if (!over.boundsOnScreen.contains(b)) continue;
      out.push_back(makeFinding(
          ctx, *this, i, capSeverity(Severity::kError, config_.maxSeverity),
          1.0, "clickable view is fully occluded by " + ctx.path(j)));
      break;
    }
  }
}

void IdTokenRule::run(const LintContext& ctx,
                      std::vector<LintFinding>& out) const {
  if (!config_.enabled) return;
  using baselines::FraudDroidDetector;
  const double minAgoArea = config_.minAgoAreaFrac *
                            static_cast<double>(ctx.windowRect().area());
  const android::UiDump& dump = ctx.dump();
  for (int i = 0; i < static_cast<int>(dump.size()); ++i) {
    const android::UiNode& node = dump[i];
    const Rect& b = node.boundsOnScreen;
    if (b.empty()) continue;
    if (!node.isVirtual) {
      if (node.resourceId.empty()) continue;
      if (node.clickable && b.area() <= config_.maxDismissArea &&
          FraudDroidDetector::idMatchesAny(node.resourceId,
                                           config_.upoTokens)) {
        out.push_back(makeFinding(
            ctx, *this, i, config_.maxSeverity, 0.4,
            "dismiss-vocabulary resource id '" + node.resourceId + "'"));
      }
      if (static_cast<double>(b.area()) >= minAgoArea &&
          FraudDroidDetector::idMatchesAny(node.resourceId,
                                           config_.agoTokens)) {
        // "CTA" prefix is load-bearing: the verdict merge sorts these boxes
        // into the AGO set by it.
        out.push_back(makeFinding(
            ctx, *this, i, config_.maxSeverity, 0.3,
            "CTA-vocabulary resource id '" + node.resourceId + "'"));
      }
      continue;
    }
    // Virtual (WebView) node: no resource id to match, ever. Degrade
    // gracefully to the page-global virtual id plus the visible label
    // (lowercased — web CTAs shout) at reduced confidence, instead of the
    // old behavior of silently passing over the whole subtree.
    if (!config_.matchVirtualNodes) continue;
    std::string label = node.text;
    std::transform(label.begin(), label.end(), label.begin(), [](char c) {
      return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    });
    const bool upoEvidence =
        FraudDroidDetector::idMatchesAny(node.virtualId, config_.upoTokens) ||
        FraudDroidDetector::idMatchesAny(label, config_.upoTokens);
    const bool agoEvidence =
        FraudDroidDetector::idMatchesAny(node.virtualId, config_.agoTokens) ||
        FraudDroidDetector::idMatchesAny(label, config_.agoTokens);
    if (node.clickable && b.area() <= config_.maxDismissArea && upoEvidence) {
      out.push_back(makeFinding(
          ctx, *this, i, config_.maxSeverity,
          0.4 * config_.virtualEvidenceScale,
          "dismiss-vocabulary virtual node '" +
              (node.virtualId.empty() ? label : node.virtualId) + "'"));
    }
    if (static_cast<double>(b.area()) >= minAgoArea && agoEvidence) {
      out.push_back(makeFinding(
          ctx, *this, i, config_.maxSeverity,
          0.3 * config_.virtualEvidenceScale,
          "CTA-vocabulary virtual node '" +
              (node.virtualId.empty() ? label : node.virtualId) + "'"));
    }
  }
}

}  // namespace darpa::analysis
