// Static AUI lint — rule-based analysis of layout trees, no pixels.
//
// The paper's run-time pipeline (§IV) only catches an asymmetric dark UI
// after a screenshot reaches the CV model. Owl Eyes and Nighthawk show that
// many UI defects are visible from structure alone; the same is true of the
// paper's AUI definition (§III): a user-preferred option that is tiny,
// corner-pinned, and low-contrast next to a dominant app-guided option is an
// *asymmetry of declared geometry and style*, all of which is present in the
// ADB-style hierarchy dump. This module walks a UiDump and emits structured
// diagnostics (rule id, severity, view path, bounding box), then merges them
// into an AUI verdict comparable to baselines::FraudDroidResult.
//
// Two consumers:
//  * DarpaService uses the verdict as an optional pre-filter: screens the
//    lint clears or flags *confidently* skip the screenshot + CV stage
//    entirely (a lint pass costs microseconds of modeled work; a CV pass
//    costs tens of CPU-milliseconds).
//  * examples/static_scan.cpp runs it as an offline market-scan mode over
//    app populations with no detector in the loop at all.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "android/window_manager.h"
#include "baselines/frauddroid.h"
#include "util/color.h"
#include "util/geometry.h"

namespace darpa::analysis {

/// Diagnostic severity; each rule's severity ceiling is configurable.
enum class Severity { kInfo = 0, kWarning = 1, kError = 2 };

[[nodiscard]] std::string_view severityName(Severity s);

/// One structured diagnostic emitted by a rule.
struct LintFinding {
  std::string ruleId;
  Severity severity = Severity::kInfo;
  std::string message;
  std::string viewPath;  ///< "View/View[2]/IconView"-style path to the node.
  int nodeIndex = -1;    ///< Index into the analyzed dump.
  Rect box;              ///< Screen coordinates of the offending view.
  double score = 0.0;    ///< Rule confidence in [0, 1].
};

/// Merged screen-level verdict, shaped like baselines::FraudDroidResult so
/// harnesses can score the two metadata detectors side by side.
struct LintVerdict {
  bool isAui = false;
  double score = 0.0;     ///< Merged AUI confidence in [0, 1].
  bool confident = false; ///< Score clear of the configured margins; the
                          ///< runtime may short-circuit CV on this.
  std::vector<Rect> upoBoxes;  ///< Screen coords of suspected user options.
  std::vector<Rect> agoBoxes;  ///< Screen coords of suspected app options.
};

struct LintReport {
  std::vector<LintFinding> findings;
  LintVerdict verdict;
  int nodesVisited = 0;

  [[nodiscard]] bool has(std::string_view ruleId) const;
  /// Highest-scoring finding of a rule; nullptr when the rule didn't fire.
  [[nodiscard]] const LintFinding* best(std::string_view ruleId) const;
};

/// Pre-computed screen structure shared by every rule: hierarchy ranges
/// reconstructed from the pre-order dump, the modal scaffolding (scrim and
/// panel), and the clickable-option inventory the asymmetry rules compare.
class LintContext {
 public:
  LintContext(const android::UiDump& dump, Size screenSize);
  /// The context borrows the dump; a temporary would dangle immediately.
  LintContext(android::UiDump&& dump, Size screenSize) = delete;

  [[nodiscard]] const android::UiDump& dump() const { return *dump_; }
  [[nodiscard]] Size screenSize() const { return screenSize_; }
  /// Bounds of the window root (falls back to the screen when empty).
  [[nodiscard]] const Rect& windowRect() const { return windowRect_; }
  [[nodiscard]] const std::string& path(int i) const { return paths_[i]; }
  [[nodiscard]] int parent(int i) const { return parents_[i]; }
  /// Exclusive end of node i's pre-order subtree range.
  [[nodiscard]] int subtreeEnd(int i) const { return subtreeEnd_[i]; }
  [[nodiscard]] bool isDescendant(int node, int ancestor) const {
    return node > ancestor && node < subtreeEnd_[ancestor];
  }

  /// Modal scaffolding: a translucent full-window scrim and the opaque
  /// dialog panel above it. -1 when absent.
  [[nodiscard]] int scrimIndex() const { return scrimIndex_; }
  [[nodiscard]] int panelIndex() const { return panelIndex_; }
  /// Panel bounds; the window rect when no panel was identified.
  [[nodiscard]] const Rect& panelRect() const { return panelRect_; }
  [[nodiscard]] bool modal() const { return scrimIndex_ >= 0; }

  /// Indices of clickable nodes with non-empty bounds, in paint order.
  [[nodiscard]] const std::vector<int>& clickables() const {
    return clickables_;
  }
  /// Largest-area clickable covering >= minDominantAreaFrac of the window;
  /// -1 when none qualifies.
  [[nodiscard]] int dominantClickable(double minAreaFrac) const;
  /// Small clickables sized like dismiss affordances (close crosses, "skip"
  /// strips): area <= maxArea and min side <= maxMinSide.
  [[nodiscard]] std::vector<int> dismissCandidates(std::int64_t maxArea,
                                                   int maxMinSide) const;
  /// Whether the screen offers two comparably prominent clickable options —
  /// the paper's footnote-4 symmetric dialog that must NOT count as AUI.
  [[nodiscard]] bool symmetricPair() const { return symmetricPair_; }

  /// Declared background color composited down the ancestor chain at node i
  /// (each ancestor's background source-over blended, weighted by alpha).
  [[nodiscard]] Color effectiveBackdrop(int i) const;

 private:
  const android::UiDump* dump_;
  Size screenSize_;
  Rect windowRect_;
  std::vector<int> parents_;
  std::vector<int> subtreeEnd_;
  std::vector<std::string> paths_;
  std::vector<int> clickables_;
  int scrimIndex_ = -1;
  int panelIndex_ = -1;
  Rect panelRect_;
  bool symmetricPair_ = false;
};

/// A lint rule: inspects the context and appends findings. Rules are
/// independent; each has an enable flag and its own thresholds, and the
/// engine owns the merge into a verdict.
class LintRule {
 public:
  virtual ~LintRule() = default;
  [[nodiscard]] virtual std::string_view id() const = 0;
  virtual void run(const LintContext& ctx,
                   std::vector<LintFinding>& out) const = 0;
};

// --------------------------------------------------------------- rules

/// "aui-size-asymmetry": a tiny dismiss-sized clickable coexists with a
/// dominant clickable surface (the dominant CTA / whole-creative ad).
class SizeAsymmetryRule : public LintRule {
 public:
  struct Config {
    bool enabled = true;
    Severity maxSeverity = Severity::kError;
    /// Dominant-to-dismiss area ratio that starts a finding.
    double minAreaRatio = 10.0;
    /// Ratio at which the finding saturates to score 1.
    double saturationRatio = 40.0;
    /// A clickable is "dominant" from this fraction of the window area.
    double minDominantAreaFrac = 0.02;
    /// Dismiss-candidate geometry.
    std::int64_t maxDismissArea = 2600;
    int maxDismissMinSide = 28;
  };
  // Defined out of line: Config's default member initializers are not
  // available inside the still-incomplete class (cf. WindowManager).
  SizeAsymmetryRule();
  explicit SizeAsymmetryRule(Config config) : config_(config) {}
  [[nodiscard]] std::string_view id() const override {
    return "aui-size-asymmetry";
  }
  void run(const LintContext& ctx,
           std::vector<LintFinding>& out) const override;

 private:
  Config config_;
};

/// "aui-corner-upo": the suspected user-preferred option hugs a corner or
/// edge of the modal panel while a dominant option sits centrally (§III-A:
/// 73.1 % of UPOs are corner-pinned, 94.6 % of AGOs central).
class CornerPlacementRule : public LintRule {
 public:
  struct Config {
    bool enabled = true;
    Severity maxSeverity = Severity::kError;
    /// How close (px) to a panel corner/edge counts as pinned.
    int cornerMargin = 14;
    double minDominantAreaFrac = 0.02;
    std::int64_t maxDismissArea = 2600;
    int maxDismissMinSide = 28;
  };
  // Defined out of line: Config's default member initializers are not
  // available inside the still-incomplete class (cf. WindowManager).
  CornerPlacementRule();
  explicit CornerPlacementRule(Config config) : config_(config) {}
  [[nodiscard]] std::string_view id() const override {
    return "aui-corner-upo";
  }
  void run(const LintContext& ctx,
           std::vector<LintFinding>& out) const override;

 private:
  Config config_;
};

/// "aui-contrast-asymmetry": from declared colors alone, the app-guided
/// option is visually loud (high contrast against its surround) while the
/// dismiss option is muted or nearly transparent (ghost UPOs, §VI-B).
class ContrastAsymmetryRule : public LintRule {
 public:
  struct Config {
    bool enabled = true;
    Severity maxSeverity = Severity::kError;
    /// AGO-to-UPO perceived-contrast ratio that starts a finding.
    double minProminenceRatio = 1.35;
    /// Ratio at which the score saturates.
    double saturationRatio = 3.5;
    /// Effective alpha below which a clickable is a "ghost" on its own.
    double ghostAlpha = 0.45;
    double minDominantAreaFrac = 0.02;
    std::int64_t maxDismissArea = 2600;
    int maxDismissMinSide = 28;
  };
  // Defined out of line: Config's default member initializers are not
  // available inside the still-incomplete class (cf. WindowManager).
  ContrastAsymmetryRule();
  explicit ContrastAsymmetryRule(Config config) : config_(config) {}
  [[nodiscard]] std::string_view id() const override {
    return "aui-contrast-asymmetry";
  }
  void run(const LintContext& ctx,
           std::vector<LintFinding>& out) const override;

 private:
  Config config_;
};

/// "touch-target": clickable view smaller than the Android accessibility
/// minimum (48 dp equivalent). A hygiene rule on its own, and the sub-48dp
/// escape option is one of the paper's recurring AUI traits.
class TouchTargetRule : public LintRule {
 public:
  struct Config {
    bool enabled = true;
    Severity maxSeverity = Severity::kWarning;
    int minSidePx = 48;       ///< Warning below this...
    int criticalSidePx = 24;  ///< ...max severity below this.
  };
  // Defined out of line: Config's default member initializers are not
  // available inside the still-incomplete class (cf. WindowManager).
  TouchTargetRule();
  explicit TouchTargetRule(Config config) : config_(config) {}
  [[nodiscard]] std::string_view id() const override { return "touch-target"; }
  void run(const LintContext& ctx,
           std::vector<LintFinding>& out) const override;

 private:
  Config config_;
};

/// "hidden-clickable": a clickable view rendered off-screen or fully
/// occluded by a later-painted opaque sibling — Nighthawk-style display
/// issues that make an escape option unusable while still technically
/// present in the hierarchy.
class HiddenClickableRule : public LintRule {
 public:
  struct Config {
    bool enabled = true;
    Severity maxSeverity = Severity::kError;
    /// Fraction of the view's area that must be off-screen to report.
    double minOffscreenFrac = 0.5;
    /// Occluders below this effective alpha don't hide what's beneath.
    double minOccluderAlpha = 0.95;
  };
  // Defined out of line: Config's default member initializers are not
  // available inside the still-incomplete class (cf. WindowManager).
  HiddenClickableRule();
  explicit HiddenClickableRule(Config config) : config_(config) {}
  [[nodiscard]] std::string_view id() const override {
    return "hidden-clickable";
  }
  void run(const LintContext& ctx,
           std::vector<LintFinding>& out) const override;

 private:
  Config config_;
};

/// "aui-id-hint": FraudDroid-compatible resource-id vocabulary hints (small
/// clickable with a dismiss token, prominent view with a CTA token). Info
/// severity by default: obfuscation starves it (§VI-C), so it corroborates
/// the structural rules rather than deciding on its own.
class IdTokenRule : public LintRule {
 public:
  struct Config {
    bool enabled = true;
    Severity maxSeverity = Severity::kInfo;
    std::vector<std::string> upoTokens =
        baselines::FraudDroidDetector::Config{}.upoIdTokens;
    std::vector<std::string> agoTokens =
        baselines::FraudDroidDetector::Config{}.agoIdTokens;
    std::int64_t maxDismissArea = 8100;  ///< FraudDroid's 90x90 UPO cap.
    double minAgoAreaFrac = 0.01;
    /// Virtual (WebView) nodes never carry resource ids (§VI-C), so the
    /// rule would otherwise silently pass over the whole subtree. Instead
    /// it degrades gracefully: page-global virtual ids and visible labels
    /// are matched against the same vocabularies, scaled down because web
    /// ids are weaker evidence (minified, duplicated, page-controlled).
    bool matchVirtualNodes = true;
    double virtualEvidenceScale = 0.6;
  };
  // Defined out of line: Config's default member initializers are not
  // available inside the still-incomplete class (cf. WindowManager).
  IdTokenRule();
  explicit IdTokenRule(Config config) : config_(std::move(config)) {}
  [[nodiscard]] std::string_view id() const override { return "aui-id-hint"; }
  void run(const LintContext& ctx,
           std::vector<LintFinding>& out) const override;

 private:
  Config config_;
};

// -------------------------------------------------------------- engine

class LintEngine {
 public:
  struct Config {
    /// Verdict: merged score at/above this flags the screen as AUI...
    double auiThreshold = 0.45;
    /// ...and the verdict is `confident` outside these margins.
    double confidentAuiScore = 0.60;
    double confidentCleanScore = 0.15;
    /// Per-rule weights in the merged score (max finding score per rule).
    double sizeAsymmetryWeight = 0.35;
    double cornerUpoWeight = 0.25;
    double contrastAsymmetryWeight = 0.25;
    double idHintWeight = 0.10;
    double touchTargetWeight = 0.05;
    double hiddenClickableWeight = 0.05;
    /// Screen-structure adjustments: modal scaffolding is AUI-shaped,
    /// a symmetric option pair is the footnote-4 benign dialog.
    double modalBonus = 0.15;
    double symmetricPairPenalty = 0.25;
  };

  LintEngine();  // Config default initializers need the complete class.
  explicit LintEngine(Config config) : config_(config) {}

  /// Registers a rule; run() applies them in registration order.
  void addRule(std::unique_ptr<LintRule> rule);
  [[nodiscard]] std::size_t ruleCount() const { return rules_.size(); }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Runs every rule over one dump and merges findings into a verdict.
  [[nodiscard]] LintReport run(const android::UiDump& dump,
                               Size screenSize) const;

  /// Engine with the full default rule set registered.
  [[nodiscard]] static LintEngine withDefaultRules();
  [[nodiscard]] static LintEngine withDefaultRules(Config config);

 private:
  [[nodiscard]] LintVerdict merge(const LintContext& ctx,
                                  const std::vector<LintFinding>& findings) const;

  Config config_;
  std::vector<std::unique_ptr<LintRule>> rules_;
};

}  // namespace darpa::analysis
