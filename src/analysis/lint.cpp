// Lint context construction and the engine's verdict merge. The individual
// rules live in rules.cpp.
#include "analysis/lint.h"

#include <algorithm>
#include <cmath>

namespace darpa::analysis {

namespace {

/// Fraction of `window` covered by `r`.
double coverage(const Rect& r, const Rect& window) {
  if (window.empty()) return 0.0;
  return static_cast<double>(r.intersect(window).area()) /
         static_cast<double>(window.area());
}

}  // namespace

std::string_view severityName(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

bool LintReport::has(std::string_view ruleId) const {
  return best(ruleId) != nullptr;
}

const LintFinding* LintReport::best(std::string_view ruleId) const {
  const LintFinding* result = nullptr;
  for (const LintFinding& f : findings) {
    if (f.ruleId != ruleId) continue;
    if (result == nullptr || f.score > result->score) result = &f;
  }
  return result;
}

LintContext::LintContext(const android::UiDump& dump, Size screenSize)
    : dump_(&dump), screenSize_(screenSize) {
  const int n = static_cast<int>(dump.size());
  windowRect_ = n > 0 && !dump[0].boundsOnScreen.empty()
                    ? dump[0].boundsOnScreen
                    : Rect{0, 0, screenSize.width, screenSize.height};
  panelRect_ = windowRect_;

  // Parents, subtree ranges, and paths from the pre-order depth sequence.
  parents_.assign(n, -1);
  subtreeEnd_.assign(n, n);
  paths_.resize(n);
  std::vector<int> stack;  // indices of open ancestors
  std::vector<int> childCount(n, 0);
  for (int i = 0; i < n; ++i) {
    while (!stack.empty() && dump[stack.back()].depth >= dump[i].depth) {
      subtreeEnd_[stack.back()] = i;
      stack.pop_back();
    }
    if (!stack.empty()) {
      const int parent = stack.back();
      parents_[i] = parent;
      const int sibling = childCount[parent]++;
      paths_[i] = paths_[parent] + "/" + dump[i].className;
      if (sibling > 0) paths_[i] += "[" + std::to_string(sibling) + "]";
    } else {
      paths_[i] = dump[i].className;
    }
    stack.push_back(i);
  }

  for (int i = 0; i < n; ++i) {
    if (dump[i].clickable && !dump[i].boundsOnScreen.empty()) {
      clickables_.push_back(i);
    }
  }

  // Modal scaffolding. The scrim is a translucent, non-clickable veil
  // covering (nearly) the whole window; the topmost one wins. The panel is
  // the first opaque, non-clickable mid-sized surface painted above it.
  for (int i = 1; i < n; ++i) {
    const android::UiNode& node = dump[i];
    if (node.clickable || node.background.a != 255) continue;
    if (coverage(node.boundsOnScreen, windowRect_) < 0.9) continue;
    if (node.effAlpha < 0.08 || node.effAlpha > 0.92) continue;
    scrimIndex_ = i;
  }
  if (scrimIndex_ >= 0) {
    const double windowArea = static_cast<double>(windowRect_.area());
    for (int i = scrimIndex_ + 1; i < n; ++i) {
      const android::UiNode& node = dump[i];
      if (node.clickable || node.background.a != 255) continue;
      if (node.effAlpha < 0.92) continue;
      const double frac =
          static_cast<double>(node.boundsOnScreen.area()) / windowArea;
      if (frac < 0.08 || frac > 0.85) continue;
      panelIndex_ = i;
      panelRect_ = node.boundsOnScreen;
      break;
    }
  }

  // Symmetric prominent pair (footnote 4): the two largest tappable options
  // are comparable in size, both finger-sized, and disjoint.
  std::vector<int> prominent;
  for (int i : clickables_) {
    const Rect& b = dump[i].boundsOnScreen;
    if (b.area() >= 1800 && std::min(b.width, b.height) >= 32) {
      prominent.push_back(i);
    }
  }
  std::sort(prominent.begin(), prominent.end(), [&](int a, int b) {
    return dump[a].boundsOnScreen.area() > dump[b].boundsOnScreen.area();
  });
  if (prominent.size() >= 2) {
    const Rect& first = dump[prominent[0]].boundsOnScreen;
    const Rect& second = dump[prominent[1]].boundsOnScreen;
    const double ratio = static_cast<double>(first.area()) /
                         static_cast<double>(std::max<std::int64_t>(
                             1, second.area()));
    symmetricPair_ = ratio <= 1.6 && first.intersect(second).empty();
  }
}

int LintContext::dominantClickable(double minAreaFrac) const {
  const double minArea = minAreaFrac * static_cast<double>(windowRect_.area());
  int best = -1;
  std::int64_t bestArea = 0;
  for (int i : clickables_) {
    const std::int64_t area = (*dump_)[i].boundsOnScreen.area();
    if (static_cast<double>(area) >= minArea && area > bestArea) {
      bestArea = area;
      best = i;
    }
  }
  return best;
}

std::vector<int> LintContext::dismissCandidates(std::int64_t maxArea,
                                                int maxMinSide) const {
  std::vector<int> result;
  for (int i : clickables_) {
    const Rect& b = (*dump_)[i].boundsOnScreen;
    if (b.area() <= maxArea && std::min(b.width, b.height) <= maxMinSide) {
      result.push_back(i);
    }
  }
  return result;
}

Color LintContext::effectiveBackdrop(int i) const {
  // Pre-order index order is paint order for backgrounds: every node with a
  // smaller index that contains this node's center is painted beneath it.
  const Point center = (*dump_)[i].boundsOnScreen.center();
  Color color = colors::kWhite;
  for (int j = 0; j < i; ++j) {
    const android::UiNode& node = (*dump_)[j];
    if (node.background.a == 0) continue;
    if (!node.boundsOnScreen.contains(center)) continue;
    const auto alpha = static_cast<std::uint8_t>(
        std::lround(node.background.a * node.effAlpha));
    color = blend(color, node.background.withAlpha(alpha));
  }
  return color;
}

LintEngine::LintEngine() : LintEngine(Config{}) {}

void LintEngine::addRule(std::unique_ptr<LintRule> rule) {
  rules_.push_back(std::move(rule));
}

LintEngine LintEngine::withDefaultRules() {
  return withDefaultRules(Config{});
}

LintEngine LintEngine::withDefaultRules(Config config) {
  LintEngine engine(config);
  engine.addRule(std::make_unique<SizeAsymmetryRule>());
  engine.addRule(std::make_unique<CornerPlacementRule>());
  engine.addRule(std::make_unique<ContrastAsymmetryRule>());
  engine.addRule(std::make_unique<TouchTargetRule>());
  engine.addRule(std::make_unique<HiddenClickableRule>());
  engine.addRule(std::make_unique<IdTokenRule>());
  return engine;
}

LintReport LintEngine::run(const android::UiDump& dump,
                           Size screenSize) const {
  LintReport report;
  report.nodesVisited = static_cast<int>(dump.size());
  const LintContext ctx(dump, screenSize);
  for (const auto& rule : rules_) {
    rule->run(ctx, report.findings);
  }
  report.verdict = merge(ctx, report.findings);
  return report;
}

LintVerdict LintEngine::merge(const LintContext& ctx,
                              const std::vector<LintFinding>& findings) const {
  // Aggregate one score per rule: the best finding, except the id-hint rule
  // whose UPO/AGO hits corroborate each other and therefore sum (capped).
  auto ruleScore = [&](std::string_view ruleId, bool sum) {
    double aggregated = 0.0;
    for (const LintFinding& f : findings) {
      if (f.ruleId != ruleId) continue;
      aggregated = sum ? aggregated + f.score : std::max(aggregated, f.score);
    }
    return std::min(1.0, aggregated);
  };
  // The structural asymmetry rules must carry the verdict: hygiene findings
  // (touch targets, id vocabulary) alone never flag a screen.
  auto structuralAt = [&](Severity atLeast) {
    for (const LintFinding& f : findings) {
      if (f.severity < atLeast) continue;
      if (f.ruleId == "aui-size-asymmetry" || f.ruleId == "aui-corner-upo" ||
          f.ruleId == "aui-contrast-asymmetry") {
        return true;
      }
    }
    return false;
  };

  LintVerdict verdict;
  double score =
      config_.sizeAsymmetryWeight * ruleScore("aui-size-asymmetry", false) +
      config_.cornerUpoWeight * ruleScore("aui-corner-upo", false) +
      config_.contrastAsymmetryWeight *
          ruleScore("aui-contrast-asymmetry", false) +
      config_.idHintWeight * ruleScore("aui-id-hint", true) +
      config_.touchTargetWeight * ruleScore("touch-target", false) +
      config_.hiddenClickableWeight * ruleScore("hidden-clickable", false);
  if (ctx.modal()) score += config_.modalBonus;
  if (ctx.symmetricPair()) score -= config_.symmetricPairPenalty;
  verdict.score = std::clamp(score, 0.0, 1.0);
  verdict.isAui =
      verdict.score >= config_.auiThreshold && structuralAt(Severity::kWarning);
  verdict.confident =
      verdict.isAui ? verdict.score >= config_.confidentAuiScore
                    : verdict.score <= config_.confidentCleanScore;

  // Suspected option boxes, FraudDroidResult-shaped: dismiss-flavored
  // findings become UPO boxes; the dominant option and CTA-id hits AGO
  // boxes. Near-duplicates (IoU > 0.5) collapse to the first seen.
  auto pushUnique = [](std::vector<Rect>& boxes, const Rect& box) {
    if (box.empty()) return;
    for (const Rect& seen : boxes) {
      if (iou(seen, box) > 0.5) return;
    }
    boxes.push_back(box);
  };
  for (const LintFinding& f : findings) {
    if (f.ruleId == "aui-size-asymmetry" || f.ruleId == "aui-corner-upo" ||
        f.ruleId == "aui-contrast-asymmetry") {
      pushUnique(verdict.upoBoxes, f.box);
    } else if (f.ruleId == "aui-id-hint") {
      // The id rule tags its AGO hits by message prefix (see rules.cpp).
      if (f.message.rfind("CTA", 0) == 0) {
        pushUnique(verdict.agoBoxes, f.box);
      } else {
        pushUnique(verdict.upoBoxes, f.box);
      }
    }
  }
  if (const int dominant = ctx.dominantClickable(0.02); dominant >= 0) {
    pushUnique(verdict.agoBoxes, ctx.dump()[dominant].boundsOnScreen);
  }
  return verdict;
}

}  // namespace darpa::analysis
