#include "android/window_manager.h"

#include <algorithm>

#include "android/webview.h"

namespace darpa::android {

namespace {

/// Inlines a WebView's virtual accessibility tree into the dump, directly
/// below the host's own node. Depth continues past the host, bounds are
/// carried into screen space through the host's position, the host's
/// effective alpha multiplies into every node's opacity chain, and
/// resourceId stays empty throughout — virtual nodes only ever have a
/// page-global virtualId. The walk itself is iterative (forEachVirtual),
/// so hostile page depth cannot overflow the dumping service's stack.
void appendVirtualNodes(const WebView& web, const Rect& hostAbs,
                        int hostDepth, double hostEffAlpha, UiDump& out) {
  web.forEachVirtual([&](const VirtualNode& vn, int depth, double effOpacity) {
    UiNode node;
    node.className = std::string(virtualRoleClassName(vn.role));
    node.boundsOnScreen = vn.bounds.translated(hostAbs.x, hostAbs.y);
    node.clickable = vn.clickable;
    node.text = vn.text;
    node.depth = hostDepth + 1 + depth;
    node.background = vn.background;
    if (!vn.text.empty() || vn.crossGlyph) {
      node.contentColor = vn.contentColor;
      node.hasContentColor = true;
    }
    node.effAlpha = hostEffAlpha * effOpacity;
    node.isVirtual = true;
    node.virtualId = vn.virtualId;
    out.push_back(std::move(node));
  });
}

}  // namespace

WindowManager::WindowManager() : WindowManager(Config{}) {}
WindowManager::WindowManager(Config config) : config_(config) {}

Rect WindowManager::appFrame(bool fullscreen) const {
  if (fullscreen) return screenBounds();
  return {0, config_.statusBarHeight, config_.screenSize.width,
          config_.screenSize.height - config_.statusBarHeight -
              config_.navBarHeight};
}

Window* WindowManager::showAppWindow(std::string packageName,
                                     std::unique_ptr<View> content,
                                     bool fullscreen) {
  const Rect frame = appFrame(fullscreen);
  content->setFrame({0, 0, frame.width, frame.height});
  appStack_.push_back(std::make_unique<Window>(
      nextWindowId_++, std::move(packageName), std::move(content), fullscreen));
  Window* w = appStack_.back().get();
  emit(EventType::kWindowStateChanged, w->packageName());
  emit(EventType::kWindowsChanged, w->packageName());
  return w;
}

void WindowManager::popAppWindow() {
  if (appStack_.empty()) return;
  const std::string package = appStack_.back()->packageName();
  appStack_.pop_back();
  emit(EventType::kWindowsChanged, package);
  if (!appStack_.empty()) {
    emit(EventType::kWindowStateChanged, appStack_.back()->packageName());
  }
}

Window* WindowManager::topAppWindow() {
  return appStack_.empty() ? nullptr : appStack_.back().get();
}

const Window* WindowManager::topAppWindow() const {
  return appStack_.empty() ? nullptr : appStack_.back().get();
}

void WindowManager::notifyContentChanged(int burst) {
  const Window* top = topAppWindow();
  const std::string package = top ? top->packageName() : std::string{};
  for (int i = 0; i < burst; ++i) {
    emit(EventType::kWindowContentChanged, package);
  }
}

void WindowManager::emitEvent(EventType type) {
  const Window* top = topAppWindow();
  emit(type, top ? top->packageName() : std::string{});
}

int WindowManager::addOverlay(std::unique_ptr<View> view,
                              const LayoutParams& params) {
  const Window* top = topAppWindow();
  const Rect frame = top ? appFrame(top->fullscreen()) : screenBounds();
  const Rect screenRect{frame.x + params.x, frame.y + params.y, params.width,
                        params.height};
  view->setFrame(screenRect);
  overlays_.push_back(
      Overlay{nextOverlayId_++, std::move(view), screenRect});
  return overlays_.back().id;
}

std::optional<Point> WindowManager::overlayLocationOnScreen(
    int overlayId) const {
  if (auto r = overlayBoundsOnScreen(overlayId)) return Point{r->x, r->y};
  return std::nullopt;
}

std::optional<Rect> WindowManager::overlayBoundsOnScreen(int overlayId) const {
  for (const Overlay& o : overlays_) {
    if (o.id == overlayId) return o.screenRect;
  }
  return std::nullopt;
}

bool WindowManager::removeOverlay(int overlayId) {
  const auto it =
      std::find_if(overlays_.begin(), overlays_.end(),
                   [&](const Overlay& o) { return o.id == overlayId; });
  if (it == overlays_.end()) return false;
  overlays_.erase(it);
  return true;
}

void WindowManager::removeAllOverlays() { overlays_.clear(); }

gfx::Bitmap WindowManager::composite() const {
  // Pool-backed when a FramePool is installed: the per-capture screen
  // buffer is the fleet's dominant allocation, and a recycled slab is
  // re-filled to the identical initial state a fresh one would have.
  gfx::Bitmap screen =
      framePool_ != nullptr
          ? framePool_->acquire(config_.screenSize.width,
                                config_.screenSize.height, colors::kBlack,
                                poolSessionTag_)
          : gfx::Bitmap(config_.screenSize.width, config_.screenSize.height,
                        colors::kBlack);
  gfx::Canvas canvas(screen);

  // Application windows, bottom-up. Each window paints inside its frame.
  for (const auto& window : appStack_) {
    const Rect frame = appFrame(window->fullscreen());
    window->content().draw(canvas, {frame.x, frame.y});
  }

  // System bars, unless the foreground window claimed the whole screen.
  const Window* top = topAppWindow();
  const bool barsVisible = top == nullptr || !top->fullscreen();
  if (barsVisible) {
    const Color barColor = Color::rgb(20, 20, 28);
    canvas.fillRect({0, 0, config_.screenSize.width, config_.statusBarHeight},
                    barColor);
    // Clock and signal glyphs so the status bar has realistic texture.
    canvas.drawPseudoText({6, 7}, "12:00", colors::kWhite, 2);
    canvas.fillCircle({config_.screenSize.width - 14, 12}, 4, colors::kWhite);
    canvas.fillRect({config_.screenSize.width - 30, 8, 8, 8},
                    colors::kLightGray);
    canvas.fillRect({0, config_.screenSize.height - config_.navBarHeight,
                     config_.screenSize.width, config_.navBarHeight},
                    barColor);
    const int navY = config_.screenSize.height - config_.navBarHeight / 2;
    const int cx = config_.screenSize.width / 2;
    canvas.strokeCircle({cx, navY}, 8, colors::kWhite, 2);
    canvas.fillRect({cx - 70, navY - 7, 14, 14}, colors::kWhite);
    canvas.drawLine({cx + 56, navY - 8}, {cx + 70, navY},
                    colors::kWhite);
    canvas.drawLine({cx + 70, navY}, {cx + 56, navY + 8}, colors::kWhite);
  }

  // Overlays (accessibility decorations) on top of everything.
  for (const Overlay& o : overlays_) {
    o.view->draw(canvas, {0, 0});
  }
  return screen;
}

void WindowManager::dumpViewRecursive(const View& view, Point origin,
                                      int depth, double parentAlpha,
                                      UiDump& out) const {
  if (!view.visible()) return;
  const Rect abs{origin.x + view.frame().x, origin.y + view.frame().y,
                 view.frame().width, view.frame().height};
  const double effAlpha = parentAlpha * view.alpha();
  UiNode node;
  node.className = std::string(view.className());
  node.resourceId = view.resourceId();
  node.boundsOnScreen = abs;
  node.clickable = view.clickable();
  node.depth = depth;
  node.background = view.background();
  node.effAlpha = effAlpha;
  if (const auto* text = dynamic_cast<const TextView*>(&view)) {
    node.text = text->text();
    node.contentColor = text->textColor();
    node.hasContentColor = true;
  } else if (const auto* icon = dynamic_cast<const IconView*>(&view)) {
    node.contentColor = icon->glyphColor();
    node.hasContentColor = true;
  }
  out.push_back(std::move(node));
  if (const auto* web = dynamic_cast<const WebView*>(&view);
      web != nullptr && web->hasPage()) {
    appendVirtualNodes(*web, abs, depth, effAlpha, out);
  }
  for (const auto& child : view.children()) {
    dumpViewRecursive(*child, {abs.x, abs.y}, depth + 1, effAlpha, out);
  }
}

namespace {

/// FNV-1a 64-bit, with a finalizing mix borrowed from splitmix64 so nearby
/// integer inputs (bounds off by one pixel) diverge across the whole word.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void hashBytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void hashString(std::uint64_t& h, const std::string& s) {
  hashBytes(h, s.data(), s.size());
  hashBytes(h, "\x1f", 1);  // field separator: ("ab","c") != ("a","bc")
}

void hashInt(std::uint64_t& h, std::int64_t v) { hashBytes(h, &v, sizeof(v)); }

std::uint64_t finalize(std::uint64_t h) {
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace

std::uint64_t WindowManager::fingerprint(const UiDump& dump) {
  std::uint64_t h = kFnvOffset;
  std::int64_t hashedNodes = 0;
  for (const UiNode& node : dump) {
    // Never hash DARPA's own decoration views: the fingerprint must be
    // identical before and after the service decorates a screen, or every
    // decorated screen would invalidate its own cache entry.
    if (node.className == "DarpaDecorationView") continue;
    ++hashedNodes;
    hashString(h, node.className);
    hashString(h, node.resourceId);
    hashString(h, node.text);
    hashInt(h, node.boundsOnScreen.x);
    hashInt(h, node.boundsOnScreen.y);
    hashInt(h, node.boundsOnScreen.width);
    hashInt(h, node.boundsOnScreen.height);
    hashInt(h, node.depth);
    hashInt(h, node.clickable ? 1 : 0);
    hashInt(h, node.background.toArgb());
    hashInt(h, node.hasContentColor
                   ? static_cast<std::int64_t>(node.contentColor.toArgb())
                   : std::int64_t{-1});
    // Alpha is a double; quantize to 1/1024 so float noise cannot split
    // visually identical screens into distinct fingerprints.
    hashInt(h, static_cast<std::int64_t>(node.effAlpha * 1024.0));
    // Virtual (WebView) nodes have no resource id to mix, so their
    // page-global id enters the stream instead, plus a marker that keeps a
    // virtual node from colliding with a native one that happens to share
    // class/bounds/text. Native nodes hash exactly as before: the
    // fingerprint of an all-native dump is bit-identical across versions.
    if (node.isVirtual) {
      hashString(h, node.virtualId);
      hashInt(h, 1);
    }
  }
  hashInt(h, hashedNodes);
  return finalize(h);
}

std::uint64_t WindowManager::topWindowFingerprint() const {
  const UiDump dump = dumpTopWindow();
  return fingerprint(dump);
}

UiDump WindowManager::dumpTopWindow() const {
  UiDump dump;
  const Window* top = topAppWindow();
  if (top == nullptr) return dump;
  const Rect frame = appFrame(top->fullscreen());
  dumpViewRecursive(top->content(), {frame.x, frame.y}, 0, 1.0, dump);
  return dump;
}

View* WindowManager::clickAt(Point screen) {
  emit(EventType::kTouchInteractionStart,
       topAppWindow() ? topAppWindow()->packageName() : std::string{});
  // Overlays, topmost first.
  for (auto it = overlays_.rbegin(); it != overlays_.rend(); ++it) {
    const Point local{screen.x - it->screenRect.x,
                      screen.y - it->screenRect.y};
    if (View* hit = it->view->hitTest(local)) {
      hit->performClick();
      emit(EventType::kViewClicked, std::string{});
      emit(EventType::kTouchInteractionEnd, std::string{});
      return hit;
    }
  }
  // Top app window.
  View* consumed = nullptr;
  if (Window* top = topAppWindow()) {
    const Rect frame = appFrame(top->fullscreen());
    if (frame.contains(screen)) {
      const Point local{screen.x - frame.x, screen.y - frame.y};
      if (View* hit = top->content().hitTest(local)) {
        // The click handler may pop this very window (a dialog dismissing
        // itself), destroying `top` and its view tree — copy the package
        // name out before dispatching.
        const std::string package = top->packageName();
        hit->performClick();
        emit(EventType::kViewClicked, package);
        consumed = hit;
      }
    }
  }
  emit(EventType::kTouchInteractionEnd,
       topAppWindow() ? topAppWindow()->packageName() : std::string{});
  return consumed;
}

void WindowManager::emit(EventType type, const std::string& package) {
  if (sink_ == nullptr) return;
  AccessibilityEvent event;
  event.type = type;
  event.time = now();
  event.windowId = topAppWindow() ? topAppWindow()->id() : 0;
  event.packageName = package;
  sink_->onUiEvent(event);
}

}  // namespace darpa::android
