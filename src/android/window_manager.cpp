#include "android/window_manager.h"

#include <algorithm>

namespace darpa::android {

WindowManager::WindowManager() : WindowManager(Config{}) {}
WindowManager::WindowManager(Config config) : config_(config) {}

Rect WindowManager::appFrame(bool fullscreen) const {
  if (fullscreen) return screenBounds();
  return {0, config_.statusBarHeight, config_.screenSize.width,
          config_.screenSize.height - config_.statusBarHeight -
              config_.navBarHeight};
}

Window* WindowManager::showAppWindow(std::string packageName,
                                     std::unique_ptr<View> content,
                                     bool fullscreen) {
  const Rect frame = appFrame(fullscreen);
  content->setFrame({0, 0, frame.width, frame.height});
  appStack_.push_back(std::make_unique<Window>(
      nextWindowId_++, std::move(packageName), std::move(content), fullscreen));
  Window* w = appStack_.back().get();
  emit(EventType::kWindowStateChanged, w->packageName());
  emit(EventType::kWindowsChanged, w->packageName());
  return w;
}

void WindowManager::popAppWindow() {
  if (appStack_.empty()) return;
  const std::string package = appStack_.back()->packageName();
  appStack_.pop_back();
  emit(EventType::kWindowsChanged, package);
  if (!appStack_.empty()) {
    emit(EventType::kWindowStateChanged, appStack_.back()->packageName());
  }
}

Window* WindowManager::topAppWindow() {
  return appStack_.empty() ? nullptr : appStack_.back().get();
}

const Window* WindowManager::topAppWindow() const {
  return appStack_.empty() ? nullptr : appStack_.back().get();
}

void WindowManager::notifyContentChanged(int burst) {
  const Window* top = topAppWindow();
  const std::string package = top ? top->packageName() : std::string{};
  for (int i = 0; i < burst; ++i) {
    emit(EventType::kWindowContentChanged, package);
  }
}

void WindowManager::emitEvent(EventType type) {
  const Window* top = topAppWindow();
  emit(type, top ? top->packageName() : std::string{});
}

int WindowManager::addOverlay(std::unique_ptr<View> view,
                              const LayoutParams& params) {
  const Window* top = topAppWindow();
  const Rect frame = top ? appFrame(top->fullscreen()) : screenBounds();
  const Rect screenRect{frame.x + params.x, frame.y + params.y, params.width,
                        params.height};
  view->setFrame(screenRect);
  overlays_.push_back(
      Overlay{nextOverlayId_++, std::move(view), screenRect});
  return overlays_.back().id;
}

std::optional<Point> WindowManager::overlayLocationOnScreen(
    int overlayId) const {
  if (auto r = overlayBoundsOnScreen(overlayId)) return Point{r->x, r->y};
  return std::nullopt;
}

std::optional<Rect> WindowManager::overlayBoundsOnScreen(int overlayId) const {
  for (const Overlay& o : overlays_) {
    if (o.id == overlayId) return o.screenRect;
  }
  return std::nullopt;
}

bool WindowManager::removeOverlay(int overlayId) {
  const auto it =
      std::find_if(overlays_.begin(), overlays_.end(),
                   [&](const Overlay& o) { return o.id == overlayId; });
  if (it == overlays_.end()) return false;
  overlays_.erase(it);
  return true;
}

void WindowManager::removeAllOverlays() { overlays_.clear(); }

gfx::Bitmap WindowManager::composite() const {
  gfx::Bitmap screen(config_.screenSize.width, config_.screenSize.height,
                     colors::kBlack);
  gfx::Canvas canvas(screen);

  // Application windows, bottom-up. Each window paints inside its frame.
  for (const auto& window : appStack_) {
    const Rect frame = appFrame(window->fullscreen());
    window->content().draw(canvas, {frame.x, frame.y});
  }

  // System bars, unless the foreground window claimed the whole screen.
  const Window* top = topAppWindow();
  const bool barsVisible = top == nullptr || !top->fullscreen();
  if (barsVisible) {
    const Color barColor = Color::rgb(20, 20, 28);
    canvas.fillRect({0, 0, config_.screenSize.width, config_.statusBarHeight},
                    barColor);
    // Clock and signal glyphs so the status bar has realistic texture.
    canvas.drawPseudoText({6, 7}, "12:00", colors::kWhite, 2);
    canvas.fillCircle({config_.screenSize.width - 14, 12}, 4, colors::kWhite);
    canvas.fillRect({config_.screenSize.width - 30, 8, 8, 8},
                    colors::kLightGray);
    canvas.fillRect({0, config_.screenSize.height - config_.navBarHeight,
                     config_.screenSize.width, config_.navBarHeight},
                    barColor);
    const int navY = config_.screenSize.height - config_.navBarHeight / 2;
    const int cx = config_.screenSize.width / 2;
    canvas.strokeCircle({cx, navY}, 8, colors::kWhite, 2);
    canvas.fillRect({cx - 70, navY - 7, 14, 14}, colors::kWhite);
    canvas.drawLine({cx + 56, navY - 8}, {cx + 70, navY},
                    colors::kWhite);
    canvas.drawLine({cx + 70, navY}, {cx + 56, navY + 8}, colors::kWhite);
  }

  // Overlays (accessibility decorations) on top of everything.
  for (const Overlay& o : overlays_) {
    o.view->draw(canvas, {0, 0});
  }
  return screen;
}

void WindowManager::dumpViewRecursive(const View& view, Point origin,
                                      int depth, double parentAlpha,
                                      UiDump& out) const {
  if (!view.visible()) return;
  const Rect abs{origin.x + view.frame().x, origin.y + view.frame().y,
                 view.frame().width, view.frame().height};
  const double effAlpha = parentAlpha * view.alpha();
  UiNode node;
  node.className = std::string(view.className());
  node.resourceId = view.resourceId();
  node.boundsOnScreen = abs;
  node.clickable = view.clickable();
  node.depth = depth;
  node.background = view.background();
  node.effAlpha = effAlpha;
  if (const auto* text = dynamic_cast<const TextView*>(&view)) {
    node.text = text->text();
    node.contentColor = text->textColor();
    node.hasContentColor = true;
  } else if (const auto* icon = dynamic_cast<const IconView*>(&view)) {
    node.contentColor = icon->glyphColor();
    node.hasContentColor = true;
  }
  out.push_back(std::move(node));
  for (const auto& child : view.children()) {
    dumpViewRecursive(*child, {abs.x, abs.y}, depth + 1, effAlpha, out);
  }
}

UiDump WindowManager::dumpTopWindow() const {
  UiDump dump;
  const Window* top = topAppWindow();
  if (top == nullptr) return dump;
  const Rect frame = appFrame(top->fullscreen());
  dumpViewRecursive(top->content(), {frame.x, frame.y}, 0, 1.0, dump);
  return dump;
}

View* WindowManager::clickAt(Point screen) {
  emit(EventType::kTouchInteractionStart,
       topAppWindow() ? topAppWindow()->packageName() : std::string{});
  // Overlays, topmost first.
  for (auto it = overlays_.rbegin(); it != overlays_.rend(); ++it) {
    const Point local{screen.x - it->screenRect.x,
                      screen.y - it->screenRect.y};
    if (View* hit = it->view->hitTest(local)) {
      hit->performClick();
      emit(EventType::kViewClicked, std::string{});
      emit(EventType::kTouchInteractionEnd, std::string{});
      return hit;
    }
  }
  // Top app window.
  View* consumed = nullptr;
  if (Window* top = topAppWindow()) {
    const Rect frame = appFrame(top->fullscreen());
    if (frame.contains(screen)) {
      const Point local{screen.x - frame.x, screen.y - frame.y};
      if (View* hit = top->content().hitTest(local)) {
        hit->performClick();
        emit(EventType::kViewClicked, top->packageName());
        consumed = hit;
      }
    }
  }
  emit(EventType::kTouchInteractionEnd,
       topAppWindow() ? topAppWindow()->packageName() : std::string{});
  return consumed;
}

void WindowManager::emit(EventType type, const std::string& package) {
  if (sink_ == nullptr) return;
  AccessibilityEvent event;
  event.type = type;
  event.time = now();
  event.windowId = topAppWindow() ? topAppWindow()->id() : 0;
  event.packageName = package;
  sink_->onUiEvent(event);
}

}  // namespace darpa::android
