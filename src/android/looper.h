// A deterministic single-threaded message loop on simulated time.
//
// Plays the role of android.os.Looper/Handler for the whole substrate: the
// accessibility manager delivers events through it, DARPA's ct-debounce
// timer lives in it, and app screen transitions are scheduled on it. Because
// it advances a SimClock instead of sleeping, every timing-sensitive
// experiment (the 200 ms debounce, the ct sweep of Table VIII/Fig. 8) is
// exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/clock.h"
#include "util/thread_annotations.h"

namespace darpa::android {

using TaskId = std::uint64_t;

class Looper {
 public:
  /// The looper borrows the clock; the clock must outlive the looper.
  explicit Looper(SimClock& clock) : clock_(&clock) {}

  [[nodiscard]] SimClock& clock() { return *clock_; }
  [[nodiscard]] Millis now() const { return clock_->now(); }

  /// Schedules `fn` to run immediately (at the current simulated instant, in
  /// FIFO order with other due tasks).
  TaskId post(std::function<void()> fn) { return postDelayed(std::move(fn), ms(0)); }

  /// Schedules `fn` to run `delay` from now. Negative delays clamp to zero.
  TaskId postDelayed(std::function<void()> fn, Millis delay);

  /// Cancels a pending task; returns whether it was still pending.
  bool cancel(TaskId id);

  /// Runs tasks due up to and including `deadline`, advancing the clock task
  /// by task, then advances the clock to `deadline`.
  void runUntil(Millis deadline);

  /// Runs for `duration` of simulated time.
  void runFor(Millis duration) { runUntil(now() + duration); }

  /// Drains every pending task (tasks may schedule more tasks); the clock
  /// ends at the last task's due time.
  void runUntilIdle();

  [[nodiscard]] std::size_t pendingCount() const { return pending_.size(); }
  [[nodiscard]] bool idle() const { return pendingCount() == 0; }

  /// Lazy-deletion bookkeeping, for tests asserting the queue can never
  /// grow unboundedly across a long fleet run. Invariants:
  ///   queueDepth == pendingCount + cancelledCount   (always)
  ///   cancelledCount <= max(kCompactionFloor, queueDepth / 2)
  /// The second holds because cancel() compacts the heap (dropping every
  /// cancelled task) whenever markers reach half the queue; popped markers
  /// are purged eagerly besides.
  struct GcStats {
    std::size_t queueDepth = 0;      ///< Tasks physically in the heap.
    std::size_t pendingCount = 0;    ///< Live (schedulable) tasks.
    std::size_t cancelledCount = 0;  ///< Lazy-deletion markers outstanding.
    std::int64_t purged = 0;         ///< Cancelled tasks physically removed.
    std::int64_t compactions = 0;    ///< Heap rebuilds under marker pressure.
  };
  [[nodiscard]] GcStats gcStats() const {
    return {queue_.size(), pending_.size(), cancelled_.size(), purged_,
            compactions_};
  }

  /// Below this many markers, compaction is never worth the rebuild.
  static constexpr std::size_t kCompactionFloor = 16;

 private:
  struct Task {
    Millis due;
    TaskId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Task& a, const Task& b) const {
      // Min-heap on (due, id): FIFO among tasks due at the same instant.
      return a.due > b.due || (a.due == b.due && a.id > b.id);
    }
  };

  /// Pops and runs the next task if due by `deadline`; returns false if the
  /// queue has no runnable task within the deadline.
  bool runNext(Millis deadline);

  /// Rebuilds the heap without the cancelled tasks once markers reach half
  /// the queue — bounds both sets for arbitrarily long cancel-heavy runs
  /// (every debounced event is a cancel in a fleet session).
  void maybeCompact();

  // Session-confined (no lock by design): a Looper belongs to exactly one
  // DeviceSession and is only touched by the thread currently advancing
  // that session; deferred executors reach it only via post() calls made
  // from the single-threaded flush at the epoch barrier. The fleet's phase
  // join is the happens-before edge (see core/work_ledger.h).
  SimClock* clock_ CONFINED_TO("owning session");
  std::priority_queue<Task, std::vector<Task>, Later> queue_
      CONFINED_TO("owning session");
  // pending_/cancelled_ are membership sets only (insert/erase/count) —
  // nothing ever iterates them, so their unordered order cannot leak into
  // task execution order (detlint's unordered-iteration rule guards this).
  std::unordered_set<TaskId> pending_
      CONFINED_TO("owning session");  // ids still queued and not cancelled
  std::unordered_set<TaskId> cancelled_
      CONFINED_TO("owning session");  // lazy-deletion markers
  TaskId nextId_ CONFINED_TO("owning session") = 1;
  std::int64_t purged_ CONFINED_TO("owning session") = 0;
  std::int64_t compactions_ CONFINED_TO("owning session") = 0;
};

}  // namespace darpa::android
