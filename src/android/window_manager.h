// Window manager: windows, system bars, compositing, input, UI dumps.
//
// Models the parts of Android's WindowManagerService that DARPA's design
// hinges on:
//
//  * An activity back-stack of application windows. Windows are either
//    full-screen or inset by the status/navigation bars — the latter is what
//    creates the screen-vs-window coordinate mismatch that §IV-D's anchor
//    view calibration solves (Fig. 4).
//  * Overlay views (WindowManager.addView) whose LayoutParams coordinates
//    are interpreted relative to the *current application window frame*, not
//    the screen. getLocationOnScreen() is only available for a caller's own
//    overlay views — app windows' view objects live in another process and
//    are not reachable, exactly the restriction the paper works around.
//  * Compositing all of the above (plus the system bars) into a Bitmap —
//    the "screenshot" the Accessibility Service hands to the CV model.
//  * An ADB-style UI hierarchy dump (resource ids + bounds + classes) that
//    the FraudDroid-like baseline consumes.
//  * Click dispatch with accessibility-event emission.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "android/accessibility_event.h"
#include "android/view.h"
#include "gfx/bitmap.h"
#include "gfx/frame_pool.h"

namespace darpa::android {

/// Receives UI events from the window manager; implemented by the
/// AccessibilityManager (kept as an interface to break the dependency cycle).
class UiEventSink {
 public:
  virtual ~UiEventSink() = default;
  virtual void onUiEvent(const AccessibilityEvent& event) = 0;
};

/// Subset of android.view.WindowManager.LayoutParams used by overlays.
struct LayoutParams {
  enum class Type { kApplicationOverlay, kAccessibilityOverlay };
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;
  Type type = Type::kAccessibilityOverlay;
};

/// One application window (activity) on the back stack.
class Window {
 public:
  Window(int id, std::string packageName, std::unique_ptr<View> content,
         bool fullscreen)
      : id_(id),
        packageName_(std::move(packageName)),
        content_(std::move(content)),
        fullscreen_(fullscreen) {}

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] const std::string& packageName() const { return packageName_; }
  [[nodiscard]] View& content() { return *content_; }
  [[nodiscard]] const View& content() const { return *content_; }
  [[nodiscard]] bool fullscreen() const { return fullscreen_; }

 private:
  int id_;
  std::string packageName_;
  std::unique_ptr<View> content_;
  bool fullscreen_;
};

/// One node of the ADB-style hierarchy dump. Besides the classic
/// uiautomator fields (class, resource id, bounds, clickable, text) the dump
/// carries the *declared* style attributes a static analyzer can read from a
/// layout file without rendering: background color, content (text/glyph)
/// color, and the effective alpha inherited down the tree. Nodes appear in
/// pre-order, so `depth` reconstructs the hierarchy and z-order (later
/// siblings draw on top).
///
/// Hybrid dumps: a WebView's virtual accessibility tree (webview.h) is
/// inlined below its host node with `isVirtual` set, `depth` continuing
/// past the host, and `resourceId` always empty — virtual nodes carry a
/// page-global `virtualId` instead, exactly the asymmetry §VI-C exploits.
struct UiNode {
  std::string className;
  std::string resourceId;  ///< Empty when obfuscated / dynamic / virtual.
  Rect boundsOnScreen;
  bool clickable = false;
  std::string text;  ///< TextView content, if any.
  int depth = 0;     ///< 0 for the window root; children are parent + 1.
  Color background = colors::kTransparent;  ///< Declared background color.
  Color contentColor = colors::kTransparent;  ///< Text/glyph color.
  bool hasContentColor = false;  ///< True for TextView/IconView nodes.
  double effAlpha = 1.0;  ///< View alpha multiplied through its ancestors.
  bool isVirtual = false;  ///< Node of a WebView's virtual subtree.
  std::string virtualId;   ///< Page-global DOM id; may be empty/duplicated.
};

using UiDump = std::vector<UiNode>;

class WindowManager {
 public:
  struct Config {
    Size screenSize{360, 720};
    int statusBarHeight = 24;
    int navBarHeight = 48;
  };

  // Defined out of line: Config's default member initializers are not
  // available for a default argument inside the still-incomplete class.
  WindowManager();
  explicit WindowManager(Config config);

  /// Event sink for accessibility-event emission (may be null). The sink
  /// must outlive the window manager.
  void setEventSink(UiEventSink* sink) { sink_ = sink; }
  /// Clock used to stamp events (may be null → time 0). Must outlive us.
  void setClock(const SimClock* clock) { clock_ = clock; }

  /// Slab pool composite() allocates its screen buffers from (null = plain
  /// heap allocation per capture). `sessionTag` scopes the pool's
  /// per-session quota — fleets pass the session id. The pool is borrowed
  /// and must outlive every bitmap composited through it.
  void setFramePool(gfx::FramePool* pool, int sessionTag = 0) {
    framePool_ = pool;
    poolSessionTag_ = sessionTag;
  }
  [[nodiscard]] gfx::FramePool* framePool() const { return framePool_; }

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] Rect screenBounds() const {
    return {0, 0, config_.screenSize.width, config_.screenSize.height};
  }
  /// The frame an app window occupies given its full-screen flag.
  [[nodiscard]] Rect appFrame(bool fullscreen) const;

  // --- application windows (activity stack) -------------------------------
  /// Pushes a new app window on the stack; emits WINDOW_STATE_CHANGED and
  /// WINDOWS_CHANGED. Returns a non-owning pointer valid until the window is
  /// popped.
  Window* showAppWindow(std::string packageName, std::unique_ptr<View> content,
                        bool fullscreen);
  /// Pops the top window (back navigation); emits window events. No-op when
  /// the stack is empty.
  void popAppWindow();
  [[nodiscard]] Window* topAppWindow();
  [[nodiscard]] const Window* topAppWindow() const;
  [[nodiscard]] std::size_t appWindowCount() const { return appStack_.size(); }

  /// Apps call this after mutating their view tree; emits `burst`
  /// WINDOW_CONTENT_CHANGED events (real apps generate storms of them).
  void notifyContentChanged(int burst = 1);

  /// Emits an arbitrary event from the top window's package (scroll, focus,
  /// click... — used by the Monkey driver to model real event traffic).
  void emitEvent(EventType type);

  // --- overlay views (DARPA's decorations & anchor) ------------------------
  /// Adds an overlay view. LayoutParams (x, y) are relative to the current
  /// app window frame (Android positions TYPE_ACCESSIBILITY_OVERLAY views in
  /// window coordinates); the view is sized to (width, height). Returns an
  /// overlay id. Overlays added while no app window exists are positioned
  /// relative to the screen.
  int addOverlay(std::unique_ptr<View> view, const LayoutParams& params);
  /// Screen-space origin of one of *your own* overlay views — the only
  /// getLocationOnScreen the platform offers a third-party service, and the
  /// basis of the paper's anchor-view calibration trick.
  [[nodiscard]] std::optional<Point> overlayLocationOnScreen(int overlayId) const;
  [[nodiscard]] std::optional<Rect> overlayBoundsOnScreen(int overlayId) const;
  bool removeOverlay(int overlayId);
  void removeAllOverlays();
  [[nodiscard]] std::size_t overlayCount() const { return overlays_.size(); }

  // --- compositing ----------------------------------------------------------
  /// Renders the full screen: app windows bottom-up, system bars (unless the
  /// top window is full-screen), then overlays.
  [[nodiscard]] gfx::Bitmap composite() const;

  // --- introspection ---------------------------------------------------------
  /// ADB-style dump of the top app window's hierarchy (screen coordinates).
  [[nodiscard]] UiDump dumpTopWindow() const;

  /// Stable 64-bit fingerprint of a UI dump: a hash over every node's
  /// geometry, class, text, and declared style. Two dumps hash equal iff
  /// the screens are structurally identical, so a re-stabilized unchanged
  /// screen (app switch back, dialog re-show) is recognizable without
  /// pixels. DARPA's own overlay views never poison the fingerprint: the
  /// dump only covers the top *app* window, and decoration nodes are
  /// skipped defensively besides.
  ///
  /// The hash never leans on resource ids alone — class, bounds, text,
  /// depth and style all mix in, and virtual (WebView) nodes additionally
  /// mix their page-global virtualId — so all-empty-`resourceId` virtual
  /// subtrees still fingerprint apart when structurally distinct. Native
  /// nodes hash byte-for-byte as they always did: the virtual fields only
  /// enter the stream for nodes with `isVirtual` set.
  [[nodiscard]] static std::uint64_t fingerprint(const UiDump& dump);
  /// dumpTopWindow() + fingerprint() in one call.
  [[nodiscard]] std::uint64_t topWindowFingerprint() const;

  // --- input ------------------------------------------------------------------
  /// Dispatches a tap at screen coordinates: overlays first (topmost wins),
  /// then the top app window. Emits TOUCH_INTERACTION and VIEW_CLICKED
  /// events. Returns the view that consumed the click, or nullptr.
  View* clickAt(Point screen);

 private:
  struct Overlay {
    int id;
    std::unique_ptr<View> view;
    Rect screenRect;  ///< Resolved at add time.
  };

  void emit(EventType type, const std::string& package);
  [[nodiscard]] Millis now() const { return clock_ ? clock_->now() : Millis{}; }
  void dumpViewRecursive(const View& view, Point origin, int depth,
                         double parentAlpha, UiDump& out) const;

  Config config_;
  UiEventSink* sink_ = nullptr;
  const SimClock* clock_ = nullptr;
  gfx::FramePool* framePool_ = nullptr;
  int poolSessionTag_ = 0;
  std::vector<std::unique_ptr<Window>> appStack_;
  std::vector<Overlay> overlays_;
  int nextWindowId_ = 1;
  int nextOverlayId_ = 1;
};

}  // namespace darpa::android
