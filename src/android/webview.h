// A simulated android.webkit.WebView hosting a *virtual* accessibility
// node tree — the §VI-C worst case for string-based AUI detection.
//
// Real WebViews expose their page to accessibility services as virtual
// nodes behind one native view: Chromium flattens the DOM into a shallow
// forest of AccessibilityNodeInfo records whose ids are page-global DOM
// strings (often minified, duplicated, or absent) and whose classNames are
// a coarse role mapping ("android.view.View", "android.widget.Button"...).
// Crucially there are *no Android resource ids anywhere* in the subtree,
// which is what collapses FraudDroid-style id matching and forces the
// structural lint + CV layers to carry detection.
//
// The virtual tree here mirrors that shape:
//  * VirtualNode bounds are stored in *page coordinates* (relative to the
//    WebView's origin), already flattened — a node's bounds are absolute
//    within the page, not relative to its parent. Only opacity cascades.
//  * virtualId is a page-global string that may be empty or duplicated
//    across nodes (web pages reuse ids all the time, standards be damned).
//  * Rendering goes through the same gfx::Canvas primitives as native
//    views, so a web interstitial composites into pixels a CV model cannot
//    tell from a native one.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "android/view.h"

namespace darpa::android {

/// Coarse accessibility role of a virtual node, mirroring the Chromium
/// role → Android-class mapping.
enum class VirtualRole {
  kWebArea,           ///< Page root; exposed with the host's class name.
  kGenericContainer,  ///< div/section → "android.view.View".
  kImage,             ///< img/canvas  → "android.widget.Image".
  kStaticText,        ///< text runs   → "android.view.View" with text.
  kButton,            ///< button      → "android.widget.Button".
  kLink,              ///< a[href]     → "android.view.View" (clickable).
};

/// Android class name a virtual role is exposed as in the hierarchy dump.
[[nodiscard]] std::string_view virtualRoleClassName(VirtualRole role);

/// One node of a WebView's virtual accessibility tree. Plain aggregate:
/// pages are built by value and handed to WebView::setPage.
struct VirtualNode {
  VirtualRole role = VirtualRole::kGenericContainer;
  /// Page-global DOM id. May be empty (most nodes) or duplicated (real
  /// pages reuse ids); never an Android resource id.
  std::string virtualId;
  /// Bounds in page coordinates — relative to the WebView origin, NOT to
  /// the parent node (the tree arrives pre-flattened, like Chromium's).
  Rect bounds;
  bool clickable = false;
  std::string text;  ///< Visible text for kStaticText/kButton/kLink.
  /// CSS background-color; web dim-overlays carry their opacity in the
  /// alpha channel (rgba), unlike native scrims which use view alpha.
  Color background = colors::kTransparent;
  Color contentColor = colors::kBlack;  ///< Text / glyph color.
  /// CSS opacity in [0, 1]; multiplies into descendants.
  double opacity = 1.0;
  int cornerRadius = 0;
  bool crossGlyph = false;       ///< Paint an x glyph (close affordances).
  std::uint64_t patternSeed = 0;  ///< kImage procedural creative seed.
  std::vector<VirtualNode> children;
};

/// Simulated android.webkit.WebView. A native leaf view from the Android
/// toolkit's perspective whose accessibility payload is the virtual tree.
class WebView : public View {
 public:
  [[nodiscard]] std::string_view className() const override {
    return "android.webkit.WebView";
  }

  /// Installs the page's virtual tree (replacing any previous page).
  void setPage(VirtualNode root) {
    page_ = std::move(root);
    hasPage_ = true;
  }
  void clearPage() { hasPage_ = false; }
  [[nodiscard]] bool hasPage() const { return hasPage_; }
  /// Page root; nullptr when no page is loaded.
  [[nodiscard]] const VirtualNode* page() const {
    return hasPage_ ? &page_ : nullptr;
  }

  /// Iterative pre-order visit of the virtual tree. `depth` is 0 for the
  /// page root; `effOpacity` is the node's opacity multiplied through its
  /// virtual ancestors (the native alpha chain is NOT included — callers
  /// fold in the host view's effective alpha themselves). Uses an explicit
  /// stack, never recursion: real pages nest hundreds of levels deep and a
  /// hostile page must not be able to overflow the service's stack.
  void forEachVirtual(
      const std::function<void(const VirtualNode&, int depth,
                               double effOpacity)>& fn) const;

  /// First virtual node (pre-order) whose virtualId equals `id`; nullptr
  /// when absent or `id` is empty (empty ids are non-identifying — a page
  /// has many of them, so "find the empty id" is never meaningful).
  [[nodiscard]] const VirtualNode* findVirtual(std::string_view id) const;

  /// Bounds of findVirtual(id) translated into this view tree's root
  /// coordinates (the node's page bounds carried through the host view's
  /// position). Empty rect when the id does not resolve.
  [[nodiscard]] Rect virtualBoundsInRoot(std::string_view id) const;

  /// Number of nodes in the virtual tree (0 when no page).
  [[nodiscard]] int virtualNodeCount() const;

  /// Routes hits to the page: if a visible clickable virtual node contains
  /// the point, the WebView consumes the click (the native toolkit sees
  /// the WebView itself as the target — virtual nodes have no native
  /// identity). Falls back to plain View behavior otherwise.
  [[nodiscard]] View* hitTest(Point p) override;

 protected:
  /// Paints the page with the same primitives native views use, so web
  /// and native screens are indistinguishable at the pixel level.
  void paintContent(gfx::Canvas& canvas, const Rect& absRect,
                    double effAlpha) const override;

 private:
  VirtualNode page_;
  bool hasPage_ = false;
};

}  // namespace darpa::android
