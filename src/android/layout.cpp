#include "android/layout.h"

#include <algorithm>

namespace darpa::android {

View* LayoutContainer::addLayoutChild(std::unique_ptr<View> child,
                                      const ChildLayout& layout) {
  layouts_.push_back(layout);
  return addChild(std::move(child));
}

void LayoutContainer::layoutNested(View& child) {
  if (auto* container = dynamic_cast<LayoutContainer*>(&child)) {
    container->performLayout();
  }
}

namespace {
int resolveSize(const SizeSpec& spec, int available, int natural) {
  switch (spec.mode) {
    case SizeSpec::Mode::kFixed: return std::min(spec.value, available);
    case SizeSpec::Mode::kMatchParent: return available;
    case SizeSpec::Mode::kWrapContent: return std::min(natural, available);
  }
  return natural;
}

int gravityOffset(Gravity gravity, int leftover) {
  switch (gravity) {
    case Gravity::kStart: return 0;
    case Gravity::kCenter: return leftover / 2;
    case Gravity::kEnd: return leftover;
  }
  return 0;
}
}  // namespace

void LinearLayout::performLayout() {
  const bool vertical = orientation_ == Orientation::kVertical;
  const int innerW = frame().width - 2 * padding();
  const int innerH = frame().height - 2 * padding();
  const int mainAvail = vertical ? innerH : innerW;
  const auto children = this->children();
  const auto& layouts = childLayouts();

  // First pass: fixed/wrap/match sizes along the main axis; collect weights.
  std::vector<int> mainSizes(children.size(), 0);
  double totalWeight = 0.0;
  int used = 0;
  for (std::size_t i = 0; i < children.size(); ++i) {
    const ChildLayout& cl = layouts[i];
    const Size natural = naturalSize(*children[i]);
    const SizeSpec& mainSpec = vertical ? cl.height : cl.width;
    if (cl.weight > 0.0) {
      totalWeight += cl.weight;
    } else {
      mainSizes[i] = resolveSize(mainSpec, mainAvail,
                                 vertical ? natural.height : natural.width);
    }
    used += mainSizes[i] + 2 * cl.margin;
  }
  used += spacing_ * std::max(static_cast<int>(children.size()) - 1, 0);

  // Second pass: distribute leftover to weighted children.
  const int leftover = std::max(mainAvail - used, 0);
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (layouts[i].weight > 0.0 && totalWeight > 0.0) {
      mainSizes[i] =
          static_cast<int>(leftover * layouts[i].weight / totalWeight);
    }
  }

  // Placement.
  int cursor = padding();
  for (std::size_t i = 0; i < children.size(); ++i) {
    View& child = *children[i];
    const ChildLayout& cl = layouts[i];
    const Size natural = naturalSize(child);
    const int crossAvail = (vertical ? innerW : innerH) - 2 * cl.margin;
    const int crossSize =
        resolveSize(vertical ? cl.width : cl.height, crossAvail,
                    vertical ? natural.width : natural.height);
    const int crossOffset =
        padding() + cl.margin +
        gravityOffset(cl.gravity, std::max(crossAvail - crossSize, 0));
    cursor += cl.margin;
    if (vertical) {
      child.setFrame({crossOffset, cursor, crossSize, mainSizes[i]});
    } else {
      child.setFrame({cursor, crossOffset, mainSizes[i], crossSize});
    }
    cursor += mainSizes[i] + cl.margin + spacing_;
    layoutNested(child);
  }
}

void FrameLayout::performLayout() {
  const int innerW = frame().width - 2 * padding();
  const int innerH = frame().height - 2 * padding();
  const auto children = this->children();
  const auto& layouts = childLayouts();
  for (std::size_t i = 0; i < children.size(); ++i) {
    View& child = *children[i];
    const ChildLayout& cl = layouts[i];
    const Size natural = naturalSize(child);
    const int availW = innerW - 2 * cl.margin;
    const int availH = innerH - 2 * cl.margin;
    const int w = resolveSize(cl.width, availW, natural.width);
    const int h = resolveSize(cl.height, availH, natural.height);
    const int x = padding() + cl.margin +
                  gravityOffset(cl.gravity, std::max(availW - w, 0));
    const int y = padding() + cl.margin +
                  gravityOffset(cl.gravity, std::max(availH - h, 0));
    child.setFrame({x, y, w, h});
    layoutNested(child);
  }
}

}  // namespace darpa::android
