#include "android/view.h"

#include <algorithm>

#include "util/rng.h"

namespace darpa::android {

bool View::performClick() {
  if (!onClick_) return false;
  onClick_();
  return true;
}

View* View::addChild(std::unique_ptr<View> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

View* View::findViewById(int id) {
  if (id_ == id) return this;
  for (const auto& child : children_) {
    if (View* found = child->findViewById(id)) return found;
  }
  return nullptr;
}

View* View::findViewByResourceId(std::string_view rid) {
  if (!resourceId_.empty() && resourceId_ == rid) return this;
  for (const auto& child : children_) {
    if (View* found = child->findViewByResourceId(rid)) return found;
  }
  return nullptr;
}

Point View::positionInRoot() const {
  Point p{frame_.x, frame_.y};
  for (const View* v = parent_; v != nullptr; v = v->parent_) {
    p.x += v->frame_.x;
    p.y += v->frame_.y;
  }
  return p;
}

View* View::hitTest(Point p) {
  if (!visible_) return nullptr;
  const Rect local{0, 0, frame_.width, frame_.height};
  if (!local.contains(p)) return nullptr;
  // Later children are on top: test in reverse order.
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    View* child = it->get();
    const Point childLocal{p.x - child->frame_.x, p.y - child->frame_.y};
    if (View* hit = child->hitTest(childLocal)) return hit;
  }
  return clickable_ ? this : nullptr;
}

int View::subtreeSize() const {
  int n = 1;
  for (const auto& child : children_) n += child->subtreeSize();
  return n;
}

Color View::withEffAlpha(Color c, double effAlpha) {
  return c.withAlpha(static_cast<std::uint8_t>(
      std::clamp(c.a * effAlpha, 0.0, 255.0)));
}

void View::draw(gfx::Canvas& canvas, Point origin, double parentAlpha) const {
  if (!visible_) return;
  const double effAlpha = parentAlpha * alpha_;
  if (effAlpha <= 0.0) return;
  const Rect absRect{origin.x + frame_.x, origin.y + frame_.y, frame_.width,
                     frame_.height};
  if (background_.a > 0) {
    const Color bg = withEffAlpha(background_, effAlpha);
    if (cornerRadius_ > 0) {
      canvas.fillRoundedRect(absRect, bg, cornerRadius_);
    } else {
      canvas.fillRect(absRect, bg);
    }
  }
  paintContent(canvas, absRect, effAlpha);
  for (const auto& child : children_) {
    child->draw(canvas, {absRect.x, absRect.y}, effAlpha);
  }
}

void View::paintContent(gfx::Canvas&, const Rect&, double) const {}

void TextView::paintContent(gfx::Canvas& canvas, const Rect& absRect,
                            double effAlpha) const {
  if (text_.empty()) return;
  const int textW = gfx::Canvas::pseudoTextWidth(text_, textCell_);
  const int textH = gfx::Canvas::pseudoTextHeight(textCell_);
  const Point origin{absRect.x + std::max((absRect.width - textW) / 2, 1),
                     absRect.y + std::max((absRect.height - textH) / 2, 1)};
  canvas.drawPseudoText(origin, text_, withEffAlpha(textColor_, effAlpha),
                        textCell_);
}

void ImageView::paintContent(gfx::Canvas& canvas, const Rect& absRect,
                             double effAlpha) const {
  Rng rng(patternSeed_);
  // Gradient backdrop in a hue pair derived from the seed.
  const Color top = Color::rgb(static_cast<std::uint8_t>(rng.uniformInt(40, 220)),
                               static_cast<std::uint8_t>(rng.uniformInt(40, 220)),
                               static_cast<std::uint8_t>(rng.uniformInt(40, 220)));
  const Color bottom =
      Color::rgb(static_cast<std::uint8_t>(rng.uniformInt(40, 220)),
                 static_cast<std::uint8_t>(rng.uniformInt(40, 220)),
                 static_cast<std::uint8_t>(rng.uniformInt(40, 220)));
  canvas.fillVerticalGradient(absRect, withEffAlpha(top, effAlpha),
                              withEffAlpha(bottom, effAlpha));
  // Scatter a few shapes for ad-creative-like texture.
  const int shapes = rng.uniformInt(2, 6);
  for (int i = 0; i < shapes; ++i) {
    const Color c = withEffAlpha(
        Color::rgba(static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                    static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                    static_cast<std::uint8_t>(rng.uniformInt(0, 255)), 200),
        effAlpha);
    const int w = rng.uniformInt(absRect.width / 8 + 1, absRect.width / 3 + 2);
    const int h =
        rng.uniformInt(absRect.height / 8 + 1, absRect.height / 3 + 2);
    const int x = absRect.x + rng.uniformInt(0, std::max(absRect.width - w, 1));
    const int y =
        absRect.y + rng.uniformInt(0, std::max(absRect.height - h, 1));
    if (rng.chance(0.5)) {
      canvas.fillRoundedRect({x, y, w, h}, c, std::min(w, h) / 4);
    } else {
      canvas.fillCircle({x + w / 2, y + h / 2}, std::min(w, h) / 2, c);
    }
  }
}

void IconView::paintContent(gfx::Canvas& canvas, const Rect& absRect,
                            double effAlpha) const {
  const Color c = withEffAlpha(glyphColor_, effAlpha);
  const Point center = absRect.center();
  const int r = std::max(std::min(absRect.width, absRect.height) / 2 - 1, 1);
  switch (glyph_) {
    case IconGlyph::kCross:
      canvas.drawCross(absRect, c, thickness_);
      break;
    case IconGlyph::kCircle:
      canvas.fillCircle(center, r, c);
      break;
    case IconGlyph::kRing:
      canvas.strokeCircle(center, r, c, thickness_);
      break;
    case IconGlyph::kArrow: {
      canvas.drawLine({absRect.x + 2, center.y},
                      {absRect.right() - 3, center.y}, c);
      canvas.drawLine({absRect.right() - 3, center.y},
                      {center.x, absRect.y + 2}, c);
      canvas.drawLine({absRect.right() - 3, center.y},
                      {center.x, absRect.bottom() - 3}, c);
      break;
    }
    case IconGlyph::kChevron: {
      canvas.drawLine({absRect.x + 2, absRect.y + 2},
                      {absRect.right() - 3, center.y}, c);
      canvas.drawLine({absRect.right() - 3, center.y},
                      {absRect.x + 2, absRect.bottom() - 3}, c);
      break;
    }
    case IconGlyph::kStar: {
      canvas.fillCircle(center, r / 2, c);
      canvas.drawLine({center.x, absRect.y + 1},
                      {center.x, absRect.bottom() - 2}, c);
      canvas.drawLine({absRect.x + 1, center.y},
                      {absRect.right() - 2, center.y}, c);
      break;
    }
  }
}

}  // namespace darpa::android
