#include "android/looper.h"

#include <limits>

namespace darpa::android {

TaskId Looper::postDelayed(std::function<void()> fn, Millis delay) {
  if (delay.count < 0) delay = ms(0);
  const TaskId id = nextId_++;
  queue_.emplace(now() + delay, id, std::move(fn));
  pending_.insert(id);
  return id;
}

bool Looper::cancel(TaskId id) {
  // Only tasks still in the queue may be cancelled; ids of tasks that have
  // already run are rejected, which keeps the lazy-deletion set bounded.
  if (pending_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

bool Looper::runNext(Millis deadline) {
  while (!queue_.empty()) {
    const Task& top = queue_.top();
    if (cancelled_.erase(top.id) > 0) {
      queue_.pop();
      continue;
    }
    if (top.due > deadline) return false;
    // Move the callable out before popping so self-rescheduling tasks work.
    std::function<void()> fn = std::move(const_cast<Task&>(top).fn);
    const Millis due = top.due;
    pending_.erase(top.id);
    queue_.pop();
    clock_->advanceTo(due);
    fn();
    return true;
  }
  return false;
}

void Looper::runUntil(Millis deadline) {
  while (runNext(deadline)) {
  }
  clock_->advanceTo(deadline);
}

void Looper::runUntilIdle() {
  while (runNext(Millis{std::numeric_limits<std::int64_t>::max()})) {
  }
}

}  // namespace darpa::android
