#include "android/looper.h"

#include <limits>

namespace darpa::android {

TaskId Looper::postDelayed(std::function<void()> fn, Millis delay) {
  if (delay.count < 0) delay = ms(0);
  const TaskId id = nextId_++;
  queue_.emplace(now() + delay, id, std::move(fn));
  pending_.insert(id);
  return id;
}

bool Looper::cancel(TaskId id) {
  // Only tasks still in the queue may be cancelled; ids of tasks that have
  // already run are rejected, which keeps the lazy-deletion set bounded.
  if (pending_.erase(id) == 0) return false;
  cancelled_.insert(id);
  maybeCompact();
  return true;
}

void Looper::maybeCompact() {
  if (cancelled_.size() < kCompactionFloor ||
      cancelled_.size() * 2 < queue_.size()) {
    return;
  }
  // Markers reached half the heap: rebuild it live-tasks-only. Amortized
  // O(1) per cancel — each compaction halves (at least) the heap, and the
  // dropped tasks each paid for themselves when cancelled.
  std::vector<Task> live;
  live.reserve(queue_.size() - cancelled_.size());
  while (!queue_.empty()) {
    Task task = std::move(const_cast<Task&>(queue_.top()));
    queue_.pop();
    if (cancelled_.erase(task.id) > 0) {
      ++purged_;
    } else {
      live.push_back(std::move(task));
    }
  }
  for (Task& task : live) queue_.push(std::move(task));
  ++compactions_;
}

bool Looper::runNext(Millis deadline) {
  while (!queue_.empty()) {
    const Task& top = queue_.top();
    if (cancelled_.erase(top.id) > 0) {
      // Purge the marker with its task — the pair leaves together, so the
      // marker set can never outgrow the heap.
      ++purged_;
      queue_.pop();
      continue;
    }
    if (top.due > deadline) return false;
    // Move the callable out before popping so self-rescheduling tasks work.
    std::function<void()> fn = std::move(const_cast<Task&>(top).fn);
    const Millis due = top.due;
    pending_.erase(top.id);
    queue_.pop();
    clock_->advanceTo(due);
    fn();
    return true;
  }
  return false;
}

void Looper::runUntil(Millis deadline) {
  while (runNext(deadline)) {
  }
  clock_->advanceTo(deadline);
}

void Looper::runUntilIdle() {
  while (runNext(Millis{std::numeric_limits<std::int64_t>::max()})) {
  }
}

}  // namespace darpa::android
