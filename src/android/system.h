// Convenience bundle wiring the whole simulated Android device together.
//
// Owns the clock, the looper, the window manager, and the accessibility
// manager with the right lifetimes and cross-references. Tests, examples,
// and benches construct one AndroidSystem and get a ready-to-use "device".
#pragma once

#include "android/accessibility.h"
#include "android/looper.h"
#include "android/window_manager.h"
#include "util/clock.h"

namespace darpa::android {

struct AndroidSystem {
  explicit AndroidSystem(WindowManager::Config config = {})
      : windowManager(config) {}

  SimClock clock;
  Looper looper{clock};
  WindowManager windowManager;
  AccessibilityManager accessibility{looper, windowManager};
};

}  // namespace darpa::android
