// Accessibility Service framework.
//
// Models the Android Accessibility stack the way DARPA consumes it:
//
//  * AccessibilityService — base class a client derives from; it declares an
//    event-type mask and a notification timeout, receives events through
//    onAccessibilityEvent(), and gets the privileged capabilities DARPA
//    needs: takeScreenshot() (API 30+, the feature that makes the paper's
//    design possible on Android 11+) and dispatchClick() (gesture
//    dispatch, used by the auto-bypass option).
//  * AccessibilityManager — routes window-manager UI events to connected
//    services, honoring each service's mask and coalescing events within the
//    notification timeout exactly like the real framework batches them
//    (the paper's "200 ms delay for event notification", §V).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "android/accessibility_event.h"
#include "android/looper.h"
#include "android/window_manager.h"
#include "gfx/bitmap.h"

namespace darpa::android {

class AccessibilityManager;

class AccessibilityService {
 public:
  virtual ~AccessibilityService() = default;

  /// Bitmask of EventType codes this service subscribes to.
  [[nodiscard]] std::uint32_t eventTypesMask() const { return mask_; }
  void setEventTypesMask(std::uint32_t mask) { mask_ = mask; }

  /// Minimum period between event deliveries; events arriving faster are
  /// coalesced to the latest one (android:notificationTimeout).
  [[nodiscard]] Millis notificationTimeout() const { return timeout_; }
  void setNotificationTimeout(Millis t) { timeout_ = t; }

  /// Event callback, invoked on the looper.
  virtual void onAccessibilityEvent(const AccessibilityEvent& event) = 0;

  /// Called when the service is connected and capabilities become available.
  virtual void onServiceConnected() {}

  // --- capabilities (valid only while connected) ---------------------------
  [[nodiscard]] bool connected() const { return manager_ != nullptr; }
  /// AccessibilityService.takeScreenshot(): composites the current screen.
  [[nodiscard]] gfx::Bitmap takeScreenshot() const;
  /// Dispatches a tap gesture at screen coordinates; returns whether any
  /// view consumed it.
  bool dispatchClick(Point screen) const;
  /// Access to WindowManager.addView & friends for overlay decorations.
  [[nodiscard]] WindowManager* windowManager() const;
  [[nodiscard]] Looper* looper() const;

 private:
  friend class AccessibilityManager;
  std::uint32_t mask_ = kAllEventTypesMask;
  Millis timeout_{0};
  AccessibilityManager* manager_ = nullptr;
};

class AccessibilityManager : public UiEventSink {
 public:
  /// Borrows the looper and window manager; both must outlive the manager.
  /// Registers itself as the window manager's event sink.
  AccessibilityManager(Looper& looper, WindowManager& wm);
  ~AccessibilityManager() override;

  AccessibilityManager(const AccessibilityManager&) = delete;
  AccessibilityManager& operator=(const AccessibilityManager&) = delete;

  /// Connects a service (the user enabling it in Settings). The service must
  /// outlive the manager or disconnect first.
  void connect(AccessibilityService& service);
  void disconnect(AccessibilityService& service);

  void onUiEvent(const AccessibilityEvent& event) override;

  // --- statistics (used by the ct-sweep experiments) ------------------------
  [[nodiscard]] std::int64_t totalEmitted() const { return totalEmitted_; }
  [[nodiscard]] std::int64_t totalDelivered() const { return totalDelivered_; }
  [[nodiscard]] std::int64_t totalCoalesced() const { return totalCoalesced_; }
  void resetStats();

  [[nodiscard]] Looper& looper() { return *looper_; }
  [[nodiscard]] WindowManager& windowManager() { return *wm_; }

 private:
  struct Connection {
    AccessibilityService* service;
    Millis lastDelivery{-1'000'000};
    TaskId pendingTask = 0;
    std::optional<AccessibilityEvent> pendingEvent;
  };

  void deliver(Connection& conn);

  Looper* looper_;
  WindowManager* wm_;
  std::vector<Connection> connections_;
  std::int64_t totalEmitted_ = 0;
  std::int64_t totalDelivered_ = 0;
  std::int64_t totalCoalesced_ = 0;
};

}  // namespace darpa::android
