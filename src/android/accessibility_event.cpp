#include "android/accessibility_event.h"

namespace darpa::android {

std::string_view eventTypeName(EventType t) {
  switch (t) {
    case EventType::kViewClicked: return "TYPE_VIEW_CLICKED";
    case EventType::kViewLongClicked: return "TYPE_VIEW_LONG_CLICKED";
    case EventType::kViewSelected: return "TYPE_VIEW_SELECTED";
    case EventType::kViewFocused: return "TYPE_VIEW_FOCUSED";
    case EventType::kViewTextChanged: return "TYPE_VIEW_TEXT_CHANGED";
    case EventType::kWindowStateChanged: return "TYPE_WINDOW_STATE_CHANGED";
    case EventType::kNotificationStateChanged:
      return "TYPE_NOTIFICATION_STATE_CHANGED";
    case EventType::kViewHoverEnter: return "TYPE_VIEW_HOVER_ENTER";
    case EventType::kViewHoverExit: return "TYPE_VIEW_HOVER_EXIT";
    case EventType::kTouchExplorationGestureStart:
      return "TYPE_TOUCH_EXPLORATION_GESTURE_START";
    case EventType::kTouchExplorationGestureEnd:
      return "TYPE_TOUCH_EXPLORATION_GESTURE_END";
    case EventType::kWindowContentChanged:
      return "TYPE_WINDOW_CONTENT_CHANGED";
    case EventType::kViewScrolled: return "TYPE_VIEW_SCROLLED";
    case EventType::kViewTextSelectionChanged:
      return "TYPE_VIEW_TEXT_SELECTION_CHANGED";
    case EventType::kAnnouncement: return "TYPE_ANNOUNCEMENT";
    case EventType::kViewAccessibilityFocused:
      return "TYPE_VIEW_ACCESSIBILITY_FOCUSED";
    case EventType::kViewAccessibilityFocusCleared:
      return "TYPE_VIEW_ACCESSIBILITY_FOCUS_CLEARED";
    case EventType::kViewTextTraversedAtMovementGranularity:
      return "TYPE_VIEW_TEXT_TRAVERSED_AT_MOVEMENT_GRANULARITY";
    case EventType::kGestureDetectionStart:
      return "TYPE_GESTURE_DETECTION_START";
    case EventType::kGestureDetectionEnd: return "TYPE_GESTURE_DETECTION_END";
    case EventType::kTouchInteractionStart:
      return "TYPE_TOUCH_INTERACTION_START";
    case EventType::kTouchInteractionEnd: return "TYPE_TOUCH_INTERACTION_END";
    case EventType::kWindowsChanged: return "TYPE_WINDOWS_CHANGED";
  }
  return "TYPE_UNKNOWN";
}

}  // namespace darpa::android
