#include "android/accessibility.h"

#include <algorithm>

namespace darpa::android {

gfx::Bitmap AccessibilityService::takeScreenshot() const {
  if (manager_ == nullptr) return {};
  return manager_->windowManager().composite();
}

bool AccessibilityService::dispatchClick(Point screen) const {
  if (manager_ == nullptr) return false;
  return manager_->windowManager().clickAt(screen) != nullptr;
}

WindowManager* AccessibilityService::windowManager() const {
  return manager_ ? &manager_->windowManager() : nullptr;
}

Looper* AccessibilityService::looper() const {
  return manager_ ? &manager_->looper() : nullptr;
}

AccessibilityManager::AccessibilityManager(Looper& looper, WindowManager& wm)
    : looper_(&looper), wm_(&wm) {
  wm_->setEventSink(this);
  wm_->setClock(&looper.clock());
}

AccessibilityManager::~AccessibilityManager() { wm_->setEventSink(nullptr); }

void AccessibilityManager::connect(AccessibilityService& service) {
  const bool already =
      std::any_of(connections_.begin(), connections_.end(),
                  [&](const Connection& c) { return c.service == &service; });
  if (already) return;
  connections_.push_back(Connection{&service, Millis{-1'000'000}, 0, {}});
  service.manager_ = this;
  service.onServiceConnected();
}

void AccessibilityManager::disconnect(AccessibilityService& service) {
  const auto it =
      std::find_if(connections_.begin(), connections_.end(),
                   [&](const Connection& c) { return c.service == &service; });
  if (it == connections_.end()) return;
  if (it->pendingTask != 0) looper_->cancel(it->pendingTask);
  connections_.erase(it);
  service.manager_ = nullptr;
}

void AccessibilityManager::onUiEvent(const AccessibilityEvent& event) {
  ++totalEmitted_;
  for (Connection& conn : connections_) {
    if ((conn.service->eventTypesMask() & eventCode(event.type)) == 0) continue;
    const Millis timeout = conn.service->notificationTimeout();
    if (timeout.count <= 0) {
      // Immediate delivery path.
      AccessibilityService* service = conn.service;
      const AccessibilityEvent copy = event;
      looper_->post([service, copy] { service->onAccessibilityEvent(copy); });
      conn.lastDelivery = looper_->now();
      ++totalDelivered_;
      continue;
    }
    if (conn.pendingTask != 0) {
      // A delivery is already scheduled: coalesce to the newest event,
      // exactly like the framework batches events within the timeout.
      conn.pendingEvent = event;
      ++totalCoalesced_;
      continue;
    }
    conn.pendingEvent = event;
    const Millis earliest = conn.lastDelivery + timeout;
    const Millis delay = earliest > looper_->now()
                             ? earliest - looper_->now()
                             : Millis{0};
    AccessibilityService* service = conn.service;
    conn.pendingTask = looper_->postDelayed(
        [this, service] {
          const auto it = std::find_if(
              connections_.begin(), connections_.end(),
              [&](const Connection& c) { return c.service == service; });
          if (it == connections_.end()) return;
          deliver(*it);
        },
        delay);
  }
}

void AccessibilityManager::deliver(Connection& conn) {
  conn.pendingTask = 0;
  if (!conn.pendingEvent) return;
  const AccessibilityEvent event = *conn.pendingEvent;
  conn.pendingEvent.reset();
  conn.lastDelivery = looper_->now();
  ++totalDelivered_;
  conn.service->onAccessibilityEvent(event);
}

void AccessibilityManager::resetStats() {
  totalEmitted_ = 0;
  totalDelivered_ = 0;
  totalCoalesced_ = 0;
}

}  // namespace darpa::android
