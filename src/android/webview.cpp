#include "android/webview.h"

#include <algorithm>

#include "util/rng.h"

namespace darpa::android {

std::string_view virtualRoleClassName(VirtualRole role) {
  switch (role) {
    case VirtualRole::kWebArea:
      return "android.webkit.WebView";
    case VirtualRole::kGenericContainer:
      return "android.view.View";
    case VirtualRole::kImage:
      return "android.widget.Image";
    case VirtualRole::kStaticText:
      return "android.view.View";
    case VirtualRole::kButton:
      return "android.widget.Button";
    case VirtualRole::kLink:
      return "android.view.View";
  }
  return "android.view.View";
}

void WebView::forEachVirtual(
    const std::function<void(const VirtualNode&, int depth, double effOpacity)>&
        fn) const {
  if (!hasPage_) return;
  struct Frame {
    const VirtualNode* node;
    int depth;
    double parentOpacity;
  };
  // Explicit stack: pages nest arbitrarily deep, and the walk must not be
  // bounded by the C++ call stack. Children are pushed in reverse so they
  // pop in document order (pre-order == paint order == dump order).
  std::vector<Frame> stack;
  stack.push_back({&page_, 0, 1.0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const double effOpacity = f.parentOpacity * f.node->opacity;
    fn(*f.node, f.depth, effOpacity);
    for (auto it = f.node->children.rbegin(); it != f.node->children.rend();
         ++it) {
      stack.push_back({&*it, f.depth + 1, effOpacity});
    }
  }
}

const VirtualNode* WebView::findVirtual(std::string_view id) const {
  if (id.empty()) return nullptr;
  const VirtualNode* found = nullptr;
  forEachVirtual([&](const VirtualNode& node, int, double) {
    if (found == nullptr && node.virtualId == id) found = &node;
  });
  return found;
}

Rect WebView::virtualBoundsInRoot(std::string_view id) const {
  const VirtualNode* node = findVirtual(id);
  if (node == nullptr) return {};
  const Point origin = positionInRoot();
  return node->bounds.translated(origin.x, origin.y);
}

int WebView::virtualNodeCount() const {
  int n = 0;
  forEachVirtual([&](const VirtualNode&, int, double) { ++n; });
  return n;
}

View* WebView::hitTest(Point p) {
  if (!visible()) return nullptr;
  const Rect local{0, 0, frame().width, frame().height};
  if (!local.contains(p)) return nullptr;
  // The topmost clickable virtual node wins: pre-order is paint order, so
  // the *last* hit in the walk is the one drawn on top.
  const VirtualNode* hit = nullptr;
  forEachVirtual([&](const VirtualNode& node, int, double effOpacity) {
    if (node.clickable && effOpacity > 0.0 && node.bounds.contains(p)) {
      hit = &node;
    }
  });
  // Virtual nodes have no native View identity — the host WebView consumes
  // the click on their behalf, exactly like the platform does.
  if (hit != nullptr) return this;
  return View::hitTest(p);
}

namespace {

/// Procedural "creative" texture identical in spirit to ImageView's: a
/// seeded gradient plus scattered shapes, so web ad imagery composites the
/// same way native ad imagery does.
void paintCreative(gfx::Canvas& canvas, const Rect& r, std::uint64_t seed,
                   double effAlpha) {
  Rng rng(seed);
  const auto channel = [&] {
    return static_cast<std::uint8_t>(rng.uniformInt(40, 220));
  };
  const Color top = Color::rgb(channel(), channel(), channel());
  const Color bottom = Color::rgb(channel(), channel(), channel());
  const auto fade = [&](Color c) {
    return c.withAlpha(static_cast<std::uint8_t>(
        std::clamp(c.a * effAlpha, 0.0, 255.0)));
  };
  canvas.fillVerticalGradient(r, fade(top), fade(bottom));
  const int shapes = rng.uniformInt(2, 6);
  for (int i = 0; i < shapes; ++i) {
    const Color c = fade(
        Color::rgba(static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                    static_cast<std::uint8_t>(rng.uniformInt(0, 255)),
                    static_cast<std::uint8_t>(rng.uniformInt(0, 255)), 200));
    const int w = rng.uniformInt(r.width / 8 + 1, r.width / 3 + 2);
    const int h = rng.uniformInt(r.height / 8 + 1, r.height / 3 + 2);
    const int x = r.x + rng.uniformInt(0, std::max(r.width - w, 1));
    const int y = r.y + rng.uniformInt(0, std::max(r.height - h, 1));
    if (rng.chance(0.5)) {
      canvas.fillRoundedRect({x, y, w, h}, c, std::min(w, h) / 4);
    } else {
      canvas.fillCircle({x + w / 2, y + h / 2}, std::min(w, h) / 2, c);
    }
  }
}

}  // namespace

void WebView::paintContent(gfx::Canvas& canvas, const Rect& absRect,
                           double effAlpha) const {
  if (!hasPage_) return;
  forEachVirtual([&](const VirtualNode& node, int, double effOpacity) {
    const double a = effAlpha * effOpacity;
    if (a <= 0.0) return;
    const Rect r = node.bounds.translated(absRect.x, absRect.y);
    if (r.empty()) return;
    if (node.background.a > 0) {
      const Color bg = withEffAlpha(node.background, a);
      if (node.cornerRadius > 0) {
        canvas.fillRoundedRect(r, bg, node.cornerRadius);
      } else {
        canvas.fillRect(r, bg);
      }
    }
    if (node.role == VirtualRole::kImage) {
      paintCreative(canvas, r, node.patternSeed, a);
    }
    if (!node.text.empty()) {
      const int cell = 2;
      const int textW = gfx::Canvas::pseudoTextWidth(node.text, cell);
      const int textH = gfx::Canvas::pseudoTextHeight(cell);
      const Point origin{r.x + std::max((r.width - textW) / 2, 1),
                         r.y + std::max((r.height - textH) / 2, 1)};
      canvas.drawPseudoText(origin, node.text,
                            withEffAlpha(node.contentColor, a), cell);
    }
    if (node.crossGlyph) {
      canvas.drawCross(r, withEffAlpha(node.contentColor, a), 2);
    }
  });
}

}  // namespace darpa::android
