// AccessibilityEvent — the 23 UI-update event types of the Android SDK.
//
// DARPA's life-cycle (paper Fig. 5) starts by registering all 23 event
// types; the event codes below are the real android.view.accessibility
// .AccessibilityEvent constants so that e.g. TYPE_WINDOWS_CHANGED carries
// code 0x00400000 exactly as quoted in §V ("Event delivery").
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/clock.h"

namespace darpa::android {

enum class EventType : std::uint32_t {
  kViewClicked = 0x00000001,
  kViewLongClicked = 0x00000002,
  kViewSelected = 0x00000004,
  kViewFocused = 0x00000008,
  kViewTextChanged = 0x00000010,
  kWindowStateChanged = 0x00000020,
  kNotificationStateChanged = 0x00000040,
  kViewHoverEnter = 0x00000080,
  kViewHoverExit = 0x00000100,
  kTouchExplorationGestureStart = 0x00000200,
  kTouchExplorationGestureEnd = 0x00000400,
  kWindowContentChanged = 0x00000800,
  kViewScrolled = 0x00001000,
  kViewTextSelectionChanged = 0x00002000,
  kAnnouncement = 0x00004000,
  kViewAccessibilityFocused = 0x00008000,
  kViewAccessibilityFocusCleared = 0x00010000,
  kViewTextTraversedAtMovementGranularity = 0x00020000,
  kGestureDetectionStart = 0x00040000,
  kGestureDetectionEnd = 0x00080000,
  kTouchInteractionStart = 0x00100000,
  kTouchInteractionEnd = 0x00200000,
  kWindowsChanged = 0x00400000,
};

/// All 23 event types, in code order.
inline constexpr std::array<EventType, 23> kAllEventTypes = {
    EventType::kViewClicked,
    EventType::kViewLongClicked,
    EventType::kViewSelected,
    EventType::kViewFocused,
    EventType::kViewTextChanged,
    EventType::kWindowStateChanged,
    EventType::kNotificationStateChanged,
    EventType::kViewHoverEnter,
    EventType::kViewHoverExit,
    EventType::kTouchExplorationGestureStart,
    EventType::kTouchExplorationGestureEnd,
    EventType::kWindowContentChanged,
    EventType::kViewScrolled,
    EventType::kViewTextSelectionChanged,
    EventType::kAnnouncement,
    EventType::kViewAccessibilityFocused,
    EventType::kViewAccessibilityFocusCleared,
    EventType::kViewTextTraversedAtMovementGranularity,
    EventType::kGestureDetectionStart,
    EventType::kGestureDetectionEnd,
    EventType::kTouchInteractionStart,
    EventType::kTouchInteractionEnd,
    EventType::kWindowsChanged,
};

/// Bitmask covering every event type (TYPES_ALL_MASK).
inline constexpr std::uint32_t kAllEventTypesMask = 0x007fffff;

[[nodiscard]] constexpr std::uint32_t eventCode(EventType t) {
  return static_cast<std::uint32_t>(t);
}

/// Human-readable SDK-style name (e.g. "TYPE_WINDOW_CONTENT_CHANGED").
[[nodiscard]] std::string_view eventTypeName(EventType t);

/// One UI-update notification delivered to accessibility services.
struct AccessibilityEvent {
  EventType type = EventType::kWindowContentChanged;
  Millis time;              ///< Simulated instant the event was emitted.
  int windowId = 0;         ///< Source window.
  std::string packageName;  ///< Package of the app that caused the event.
};

}  // namespace darpa::android
