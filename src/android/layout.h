// A small layout system: LinearLayout and FrameLayout.
//
// Android apps rarely position views at absolute coordinates; they nest
// layout containers that measure and place children. This module gives the
// simulated substrate the same vocabulary: per-child layout specs
// (match-parent / wrap-content / fixed, margins, gravity, weight) and
// containers that resolve them into concrete frames in one layout pass.
// The screen generator's structured screens (settings, forms, dialogs) are
// built on these, so the ADB-style dumps the FraudDroid baseline sees have
// realistic container/child structure.
#pragma once

#include <memory>

#include "android/view.h"

namespace darpa::android {

/// Size request for one dimension.
struct SizeSpec {
  enum class Mode { kFixed, kMatchParent, kWrapContent };
  Mode mode = Mode::kWrapContent;
  int value = 0;  ///< Used when kFixed.

  [[nodiscard]] static SizeSpec fixed(int px) {
    return {Mode::kFixed, px};
  }
  [[nodiscard]] static SizeSpec matchParent() {
    return {Mode::kMatchParent, 0};
  }
  [[nodiscard]] static SizeSpec wrapContent() {
    return {Mode::kWrapContent, 0};
  }
};

/// Placement of a child inside leftover space.
enum class Gravity { kStart, kCenter, kEnd };

/// Per-child layout parameters consumed by the containers.
struct ChildLayout {
  SizeSpec width;
  SizeSpec height;
  int margin = 0;          ///< Uniform margin on all sides.
  Gravity gravity = Gravity::kStart;  ///< Cross-axis (Linear) / both (Frame).
  double weight = 0.0;     ///< Linear only: share of leftover main axis.
};

/// Base for layout containers: owns per-child ChildLayout records and
/// resolves them into child frames when performLayout() runs.
class LayoutContainer : public View {
 public:
  /// Adds a child with layout parameters; returns the non-owning pointer.
  View* addLayoutChild(std::unique_ptr<View> child, const ChildLayout& layout);

  /// Recomputes every child frame from the container's current frame.
  /// Nested containers are laid out recursively.
  virtual void performLayout() = 0;

  [[nodiscard]] int padding() const { return padding_; }
  void setPadding(int p) { padding_ = p; }

 protected:
  /// Default (wrap-content) size of a child, before layout resolution:
  /// its current frame size.
  [[nodiscard]] static Size naturalSize(const View& child) {
    return {child.frame().width, child.frame().height};
  }
  [[nodiscard]] const std::vector<ChildLayout>& childLayouts() const {
    return layouts_;
  }
  /// Lays out nested containers after their frame was assigned.
  static void layoutNested(View& child);

 private:
  std::vector<ChildLayout> layouts_;
  int padding_ = 0;
};

/// Stacks children along one axis; cross-axis per-child gravity; weights
/// distribute the leftover main-axis space.
class LinearLayout : public LayoutContainer {
 public:
  enum class Orientation { kVertical, kHorizontal };

  [[nodiscard]] std::string_view className() const override {
    return "LinearLayout";
  }

  explicit LinearLayout(Orientation orientation = Orientation::kVertical)
      : orientation_(orientation) {}

  [[nodiscard]] Orientation orientation() const { return orientation_; }
  [[nodiscard]] int spacing() const { return spacing_; }
  void setSpacing(int s) { spacing_ = s; }

  void performLayout() override;

 private:
  Orientation orientation_;
  int spacing_ = 0;
};

/// Overlays children; each positioned independently by gravity + margin.
class FrameLayout : public LayoutContainer {
 public:
  [[nodiscard]] std::string_view className() const override {
    return "FrameLayout";
  }

  void performLayout() override;
};

}  // namespace darpa::android
