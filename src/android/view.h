// A simulated Android view system.
//
// Mirrors the subset of android.view.* that DARPA interacts with: a View
// tree with per-view bounds, background, alpha, visibility, clickability and
// resource ids; TextView/Button/ImageView/IconView concrete classes; and
// software drawing into a gfx::Canvas. Resource ids matter because the
// FraudDroid-like baseline (src/baselines) keys off them, and the app
// generator obfuscates them exactly the way real apps defeat string-based
// detection (§VI-C of the paper).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "gfx/canvas.h"
#include "util/color.h"
#include "util/geometry.h"

namespace darpa::android {

/// Glyph shapes an IconView can render.
enum class IconGlyph { kCross, kCircle, kRing, kArrow, kChevron, kStar };

class View {
 public:
  View() = default;
  virtual ~View() = default;
  View(const View&) = delete;
  View& operator=(const View&) = delete;

  // --- identity -----------------------------------------------------------
  /// SDK-style class name, used by the UI-hierarchy dump (ADB-like metadata
  /// consumed by the FraudDroid baseline).
  [[nodiscard]] virtual std::string_view className() const { return "View"; }
  [[nodiscard]] int id() const { return id_; }
  void setId(int id) { id_ = id; }
  /// Android-style resource entry name, e.g. "btn_close". Empty when the app
  /// obfuscated or dynamically generated it.
  [[nodiscard]] const std::string& resourceId() const { return resourceId_; }
  void setResourceId(std::string rid) { resourceId_ = std::move(rid); }

  // --- geometry -----------------------------------------------------------
  /// Frame relative to the parent view (or the window for the root).
  [[nodiscard]] const Rect& frame() const { return frame_; }
  void setFrame(const Rect& f) { frame_ = f; }

  // --- appearance ---------------------------------------------------------
  [[nodiscard]] Color background() const { return background_; }
  void setBackground(Color c) { background_ = c; }
  [[nodiscard]] int cornerRadius() const { return cornerRadius_; }
  void setCornerRadius(int r) { cornerRadius_ = r; }
  /// View alpha in [0, 1]; multiplies into children (Android semantics).
  [[nodiscard]] double alpha() const { return alpha_; }
  void setAlpha(double a) { alpha_ = a < 0 ? 0 : (a > 1 ? 1 : a); }
  [[nodiscard]] bool visible() const { return visible_; }
  void setVisible(bool v) { visible_ = v; }

  // --- interaction --------------------------------------------------------
  [[nodiscard]] bool clickable() const { return clickable_; }
  void setClickable(bool c) { clickable_ = c; }
  void setOnClick(std::function<void()> handler) {
    onClick_ = std::move(handler);
    clickable_ = true;
  }
  /// Invokes the click handler if any; returns whether one ran.
  bool performClick();

  // --- tree ---------------------------------------------------------------
  /// Appends a child and returns a non-owning pointer to it.
  View* addChild(std::unique_ptr<View> child);
  [[nodiscard]] std::span<const std::unique_ptr<View>> children() const {
    return children_;
  }
  [[nodiscard]] View* parent() const { return parent_; }
  void removeAllChildren() { children_.clear(); }

  /// Depth-first search by view id; nullptr when absent.
  [[nodiscard]] View* findViewById(int id);
  /// Depth-first search by resource id; nullptr when absent.
  [[nodiscard]] View* findViewByResourceId(std::string_view rid);

  /// Frame origin relative to the root of this view tree.
  [[nodiscard]] Point positionInRoot() const;

  /// Deepest visible clickable descendant containing `p` (coordinates
  /// relative to this view's frame origin); nullptr when none. Later
  /// siblings are on top (Android child z-order). Virtual so views hosting
  /// non-View content (WebView's virtual accessibility tree) can consume
  /// hits on that content's behalf.
  [[nodiscard]] virtual View* hitTest(Point p);

  /// Number of views in this subtree, including this one.
  [[nodiscard]] int subtreeSize() const;

  /// Paints this view and its children. `origin` is the absolute position of
  /// this view's frame; `parentAlpha` in [0,1] multiplies this view's alpha.
  void draw(gfx::Canvas& canvas, Point origin, double parentAlpha = 1.0) const;

 protected:
  /// Subclass content painting, after background and before children.
  /// `absRect` is the view's absolute rect; `effAlpha` the effective alpha.
  virtual void paintContent(gfx::Canvas& canvas, const Rect& absRect,
                            double effAlpha) const;

  /// Applies effective alpha to a color.
  [[nodiscard]] static Color withEffAlpha(Color c, double effAlpha);

 private:
  int id_ = 0;
  std::string resourceId_;
  Rect frame_;
  Color background_ = colors::kTransparent;
  int cornerRadius_ = 0;
  double alpha_ = 1.0;
  bool visible_ = true;
  bool clickable_ = false;
  std::function<void()> onClick_;
  View* parent_ = nullptr;
  std::vector<std::unique_ptr<View>> children_;
};

/// A view that renders pseudo-text (see gfx::Canvas::drawPseudoText).
class TextView : public View {
 public:
  [[nodiscard]] std::string_view className() const override {
    return "TextView";
  }
  [[nodiscard]] const std::string& text() const { return text_; }
  void setText(std::string t) { text_ = std::move(t); }
  [[nodiscard]] Color textColor() const { return textColor_; }
  void setTextColor(Color c) { textColor_ = c; }
  /// Dot cell size in pixels; glyphs are 3x5 cells.
  [[nodiscard]] int textCell() const { return textCell_; }
  void setTextCell(int cell) { textCell_ = cell > 0 ? cell : 1; }

 protected:
  void paintContent(gfx::Canvas& canvas, const Rect& absRect,
                    double effAlpha) const override;

 private:
  std::string text_;
  Color textColor_ = colors::kBlack;
  int textCell_ = 2;
};

/// A TextView with button chrome (rounded filled background by default).
class Button : public TextView {
 public:
  [[nodiscard]] std::string_view className() const override { return "Button"; }
  Button() {
    setClickable(true);
    setCornerRadius(6);
  }
};

/// A view that renders procedural "imagery" (gradient + shapes), standing in
/// for ad creatives and promo art. The pattern is derived from a seed so two
/// ImageViews with the same seed render identically.
class ImageView : public View {
 public:
  [[nodiscard]] std::string_view className() const override {
    return "ImageView";
  }
  [[nodiscard]] std::uint64_t patternSeed() const { return patternSeed_; }
  void setPatternSeed(std::uint64_t seed) { patternSeed_ = seed; }

 protected:
  void paintContent(gfx::Canvas& canvas, const Rect& absRect,
                    double effAlpha) const override;

 private:
  std::uint64_t patternSeed_ = 0;
};

/// A small glyph view (close crosses, chevrons, stars...).
class IconView : public View {
 public:
  [[nodiscard]] std::string_view className() const override {
    return "IconView";
  }
  [[nodiscard]] IconGlyph glyph() const { return glyph_; }
  void setGlyph(IconGlyph g) { glyph_ = g; }
  [[nodiscard]] Color glyphColor() const { return glyphColor_; }
  void setGlyphColor(Color c) { glyphColor_ = c; }
  [[nodiscard]] int thickness() const { return thickness_; }
  void setThickness(int t) { thickness_ = t > 0 ? t : 1; }

 protected:
  void paintContent(gfx::Canvas& canvas, const Rect& absRect,
                    double effAlpha) const override;

 private:
  IconGlyph glyph_ = IconGlyph::kCross;
  Color glyphColor_ = colors::kBlack;
  int thickness_ = 2;
};

}  // namespace darpa::android
