// The D_aui dataset builder.
//
// Reproduces the paper's ground-truth dataset (§III-A, Table I, Table II):
// 1,072 AUI screenshots with COCO-style AGO/UPO box annotations, split
// 6:2:2 into train/validation/test. Exact-quota assignment reproduces the
// Table I type counts (696/179/131/43/16/4/3), the 744-AGO / 1,103-UPO box
// cardinalities of Table II, and the §III-A layout statistics (94.6 %
// central AGOs, 73.1 % corner UPOs).
//
// Samples are stored as *descriptors* (a seed plus an AuiSpec); the actual
// screenshot is re-rendered deterministically on demand by materialize().
// This keeps a 1,072-sample dataset at a few hundred KB instead of a
// gigabyte of pixels, at the cost of re-rendering — exactly the right trade
// for a simulator whose renderer is deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/screen_generator.h"
#include "gfx/bitmap.h"
#include "util/geometry.h"

namespace darpa::dataset {

enum class BoxLabel { kAgo = 0, kUpo = 1 };

[[nodiscard]] constexpr std::string_view boxLabelName(BoxLabel label) {
  return label == BoxLabel::kAgo ? "AGO" : "UPO";
}

/// One annotated box, COCO-style: label + axis-aligned box in screen pixels.
struct Annotation {
  Rect box;
  BoxLabel label = BoxLabel::kUpo;
};

/// A materialized sample: the rendered screenshot plus its annotations.
struct Sample {
  int id = 0;
  gfx::Bitmap image;
  std::vector<Annotation> annotations;
  apps::AuiSpec spec;
  bool fullscreen = false;
};

/// Deterministic descriptor from which a Sample can be re-rendered.
struct SampleSpec {
  int id = 0;
  std::uint64_t seed = 0;
  apps::AuiSpec spec;
  bool fullscreen = false;
};

struct DatasetConfig {
  int totalScreenshots = 1072;
  std::uint64_t seed = 2023;
  Size screenSize{360, 720};
  /// Fraction of AUIs shown full-screen (splash ads etc.).
  double fullscreenProb = 0.4;
  double ghostUpoProb = 0.08;
  /// Fraction of *advertisement* samples delivered through a WebView
  /// (AuiHost::kWebView: virtual accessibility nodes, no resource ids).
  /// 0 keeps the build's RNG draw sequence — and thus every sample seed —
  /// bit-identical to the pre-WebView builder.
  double webViewFrac = 0.0;
};

class AuiDataset {
 public:
  /// Builds descriptors with exact Table I/II quotas and a 6:2:2 split.
  static AuiDataset build(const DatasetConfig& config);

  [[nodiscard]] const DatasetConfig& config() const { return config_; }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }
  [[nodiscard]] const std::vector<SampleSpec>& specs() const { return specs_; }
  [[nodiscard]] const std::vector<std::size_t>& trainIndices() const {
    return train_;
  }
  [[nodiscard]] const std::vector<std::size_t>& valIndices() const {
    return val_;
  }
  [[nodiscard]] const std::vector<std::size_t>& testIndices() const {
    return test_;
  }

  /// Re-renders sample `idx`. With `maskText` the Fig.-7 transform is
  /// applied: every text region on the screenshot is blurred beyond
  /// recognition before the sample is returned.
  [[nodiscard]] Sample materialize(std::size_t idx, bool maskText = false) const;

  /// Box-count statistics for a set of sample indices (Table II rows).
  struct BoxCounts {
    int screenshots = 0;
    int ago = 0;
    int upo = 0;
  };
  [[nodiscard]] BoxCounts countBoxes(const std::vector<std::size_t>& indices) const;

 private:
  DatasetConfig config_;
  std::vector<SampleSpec> specs_;
  std::vector<std::size_t> train_, val_, test_;
};

/// Renders a benign (non-AUI) screen as a negative sample; `hardNegative`
/// yields the footnote-4 symmetric dialog with a small close button.
[[nodiscard]] Sample materializeBenign(std::uint64_t seed, Size screenSize,
                                       bool hardNegative);

/// Collects the screen-space rects of all text-bearing views (TextView,
/// Button) in a window for the text-masking transform.
[[nodiscard]] std::vector<Rect> collectTextRects(const android::View& root,
                                                 Point windowOrigin);

}  // namespace darpa::dataset
