#include "dataset/dataset.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "android/window_manager.h"
#include "util/rng.h"

namespace darpa::dataset {

namespace {

/// Scales the Table I quota of each AUI type to `total` screenshots, fixing
/// rounding drift on the largest class so the counts sum exactly.
std::vector<int> typeQuotas(int total) {
  std::vector<int> quotas;
  int assigned = 0;
  for (apps::AuiType type : apps::kAllAuiTypes) {
    const int q = static_cast<int>(std::lround(
        static_cast<double>(apps::auiTypePaperCount(type)) * total / 1072.0));
    quotas.push_back(q);
    assigned += q;
  }
  quotas[0] += total - assigned;  // advertisements absorb rounding drift
  return quotas;
}

/// Marks exactly `count` random positions of a bool vector true.
void markQuota(std::vector<char>& flags, int count, Rng& rng) {
  std::vector<std::size_t> order(flags.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  count = std::clamp(count, 0, static_cast<int>(flags.size()));
  for (int i = 0; i < count; ++i) flags[order[static_cast<std::size_t>(i)]] = 1;
}

Sample renderScreen(apps::GeneratedScreen screen, int id, bool fullscreen,
                    Size screenSize, bool maskText) {
  android::WindowManager::Config wmConfig;
  wmConfig.screenSize = screenSize;
  android::WindowManager wm(wmConfig);
  const Rect frame = wm.appFrame(fullscreen);

  Sample sample;
  sample.id = id;
  sample.spec = screen.truth.spec.value_or(apps::AuiSpec{});
  sample.fullscreen = fullscreen;
  for (const Rect& box : screen.truth.agoBoxes) {
    sample.annotations.push_back(
        Annotation{box.translated(frame.x, frame.y), BoxLabel::kAgo});
  }
  for (const Rect& box : screen.truth.upoBoxes) {
    sample.annotations.push_back(
        Annotation{box.translated(frame.x, frame.y), BoxLabel::kUpo});
  }

  const android::View& root = *screen.root;
  wm.showAppWindow("com.dataset.sample", std::move(screen.root), fullscreen);
  sample.image = wm.composite();

  if (maskText) {
    for (const Rect& r : collectTextRects(root, {frame.x, frame.y})) {
      // Blur the glyph area, keeping the widget border crisp (paper Fig. 7
      // blurs the texts). The blur is local (radius 3), so text views that
      // are occluded by other surfaces only smear within themselves instead
      // of bleeding the occluder's color across the layout.
      const Rect inner = r.inflated(-2).intersect(sample.image.bounds());
      if (inner.empty()) continue;
      sample.image.boxBlur(inner, 3);
    }
  }
  return sample;
}

}  // namespace

AuiDataset AuiDataset::build(const DatasetConfig& config) {
  AuiDataset dataset;
  dataset.config_ = config;
  Rng rng(config.seed);

  const int total = config.totalScreenshots;
  const std::vector<int> quotas = typeQuotas(total);

  // Exact-quota attribute vectors (the paper's measured marginals).
  std::vector<char> agoCentral(static_cast<std::size_t>(total), 0);
  std::vector<char> upoCorner(static_cast<std::size_t>(total), 0);
  std::vector<char> doubleUpo(static_cast<std::size_t>(total), 0);
  std::vector<char> ghost(static_cast<std::size_t>(total), 0);
  std::vector<char> fullscreen(static_cast<std::size_t>(total), 0);
  markQuota(agoCentral, static_cast<int>(std::lround(total * 0.946)), rng);
  markQuota(upoCorner, static_cast<int>(std::lround(total * 0.731)), rng);
  markQuota(doubleUpo, static_cast<int>(std::lround(total * 31.0 / 1072.0)),
            rng);
  markQuota(ghost, static_cast<int>(std::lround(total * config.ghostUpoProb)),
            rng);
  markQuota(fullscreen,
            static_cast<int>(std::lround(total * config.fullscreenProb)), rng);

  // AGO-box quota: all non-ads have one; ads share the remainder so the
  // total matches Table II's 744 boxes (scaled).
  const int adQuota = quotas[0];
  const int agoBoxTotal =
      static_cast<int>(std::lround(total * 744.0 / 1072.0));
  const int adsWithAgo = std::clamp(agoBoxTotal - (total - adQuota), 0, adQuota);
  std::vector<char> adAgo(static_cast<std::size_t>(adQuota), 0);
  markQuota(adAgo, adsWithAgo, rng);

  // WebView-hosted ad quota. Guarded: markQuota shuffles (draws RNG), so
  // at the default of zero no draw happens and the seed stream — hence
  // every sample — stays bit-identical to builds without this feature.
  std::vector<char> webHosted(static_cast<std::size_t>(adQuota), 0);
  if (config.webViewFrac > 0) {
    markQuota(webHosted,
              static_cast<int>(std::lround(adQuota * config.webViewFrac)),
              rng);
  }

  int adIndex = 0;
  int sampleId = 0;
  for (std::size_t t = 0; t < apps::kAllAuiTypes.size(); ++t) {
    for (int i = 0; i < quotas[t]; ++i) {
      SampleSpec spec;
      spec.id = sampleId;
      spec.seed = rng.next();
      spec.spec.type = apps::kAllAuiTypes[t];
      if (spec.spec.type == apps::AuiType::kAdvertisement) {
        const auto ai = static_cast<std::size_t>(adIndex++);
        spec.spec.host = webHosted[ai] != 0 ? apps::AuiHost::kWebView
                                            : apps::AuiHost::kThirdParty;
        spec.spec.hasAgoBox = adAgo[ai] != 0;
      } else {
        spec.spec.host = apps::AuiHost::kFirstParty;
        spec.spec.hasAgoBox = true;
      }
      const auto idx = static_cast<std::size_t>(sampleId);
      spec.spec.numUpos = doubleUpo[idx] ? 2 : 1;
      spec.spec.agoCentral = agoCentral[idx] != 0;
      spec.spec.upoCorner = upoCorner[idx] != 0;
      spec.spec.ghostUpo = ghost[idx] != 0;
      spec.fullscreen = fullscreen[idx] != 0;
      dataset.specs_.push_back(spec);
      ++sampleId;
    }
  }
  rng.shuffle(dataset.specs_);

  // 6:2:2 split, paper-style rounding: val/test get ceil(0.2 * total) each
  // and train the remainder (1072 -> 642/215/215).
  const int evalSize = (total + 4) / 5;
  const int trainSize = total - 2 * evalSize;
  for (int i = 0; i < total; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (i < trainSize) {
      dataset.train_.push_back(idx);
    } else if (i < trainSize + evalSize) {
      dataset.val_.push_back(idx);
    } else {
      dataset.test_.push_back(idx);
    }
  }
  return dataset;
}

Sample AuiDataset::materialize(std::size_t idx, bool maskText) const {
  const SampleSpec& spec = specs_.at(idx);
  android::WindowManager::Config wmConfig;
  wmConfig.screenSize = config_.screenSize;
  const android::WindowManager wmProbe(wmConfig);
  const Rect frame = wmProbe.appFrame(spec.fullscreen);

  apps::ScreenGenerator::Params genParams;
  genParams.frame = {frame.width, frame.height};
  apps::ScreenGenerator generator(genParams, spec.seed);
  return renderScreen(generator.makeAui(spec.spec), spec.id, spec.fullscreen,
                      config_.screenSize, maskText);
}

AuiDataset::BoxCounts AuiDataset::countBoxes(
    const std::vector<std::size_t>& indices) const {
  BoxCounts counts;
  for (std::size_t idx : indices) {
    const SampleSpec& spec = specs_.at(idx);
    ++counts.screenshots;
    counts.ago += spec.spec.hasAgoBox ? 1 : 0;
    counts.upo += spec.spec.numUpos;
  }
  return counts;
}

Sample materializeBenign(std::uint64_t seed, Size screenSize,
                         bool hardNegative) {
  android::WindowManager::Config wmConfig;
  wmConfig.screenSize = screenSize;
  const android::WindowManager wmProbe(wmConfig);
  Rng rng(seed);
  const bool fullscreen = rng.chance(0.2);
  const Rect frame = wmProbe.appFrame(fullscreen);

  apps::ScreenGenerator::Params genParams;
  genParams.frame = {frame.width, frame.height};
  apps::ScreenGenerator generator(genParams, rng.next());
  apps::GeneratedScreen screen =
      hardNegative ? generator.makeHardNegative() : generator.makeBenign();
  return renderScreen(std::move(screen), -1, fullscreen, screenSize, false);
}

std::vector<Rect> collectTextRects(const android::View& root,
                                   Point windowOrigin) {
  std::vector<Rect> rects;
  struct Walker {
    std::vector<Rect>* out;
    void walk(const android::View& view, Point origin) {
      if (!view.visible()) return;
      const Rect abs{origin.x + view.frame().x, origin.y + view.frame().y,
                     view.frame().width, view.frame().height};
      const std::string_view cls = view.className();
      if (cls == "TextView" || cls == "Button") {
        out->push_back(abs);
      }
      for (const auto& child : view.children()) {
        walk(*child, {abs.x, abs.y});
      }
    }
  };
  Walker walker{&rects};
  walker.walk(root, windowOrigin);
  return rects;
}

}  // namespace darpa::dataset
