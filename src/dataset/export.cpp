#include "dataset/export.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace darpa::dataset {

std::string jsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::optional<ExportSummary> exportCocoDataset(const AuiDataset& data,
                                               const std::string& directory,
                                               const ExportOptions& options) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(fs::path(directory) / "images", ec);
  if (ec) return std::nullopt;

  ExportSummary summary;
  std::ostringstream images;
  std::ostringstream annotations;
  int annotationId = 1;

  const std::size_t limit =
      options.maxSamples > 0
          ? std::min<std::size_t>(data.size(),
                                  static_cast<std::size_t>(options.maxSamples))
          : data.size();
  for (std::size_t i = 0; i < limit; ++i) {
    const Sample sample = data.materialize(i, options.maskText);
    const std::string fileName = "images/" + std::to_string(sample.id) + ".ppm";
    if (options.writeImages &&
        !sample.image.writePpm((fs::path(directory) / fileName).string())) {
      return std::nullopt;
    }
    if (summary.images > 0) images << ",";
    images << "\n    {\"id\": " << sample.id << ", \"file_name\": \""
           << jsonEscape(fileName) << "\", \"width\": " << sample.image.width()
           << ", \"height\": " << sample.image.height()
           << ", \"aui_type\": \""
           << jsonEscape(apps::auiTypeName(sample.spec.type)) << "\", \"host\": \""
           << jsonEscape(apps::auiHostName(sample.spec.host)) << "\"}";
    ++summary.images;
    for (const Annotation& a : sample.annotations) {
      if (summary.annotations > 0) annotations << ",";
      annotations << "\n    {\"id\": " << annotationId++
                  << ", \"image_id\": " << sample.id << ", \"category_id\": "
                  << (a.label == BoxLabel::kAgo ? 1 : 2) << ", \"bbox\": ["
                  << a.box.x << ", " << a.box.y << ", " << a.box.width << ", "
                  << a.box.height << "], \"area\": " << a.box.area()
                  << ", \"iscrowd\": 0}";
      ++summary.annotations;
    }
  }

  const fs::path annotationsPath = fs::path(directory) / "annotations.json";
  std::ofstream out(annotationsPath);
  if (!out) return std::nullopt;
  out << "{\n  \"info\": {\"description\": \"D_aui - asymmetric dark UI "
         "dataset (synthetic reproduction)\", \"version\": \"1.0\"},\n"
      << "  \"categories\": [\n"
      << "    {\"id\": 1, \"name\": \"AGO\", \"supercategory\": \"option\"},\n"
      << "    {\"id\": 2, \"name\": \"UPO\", \"supercategory\": \"option\"}\n"
      << "  ],\n"
      << "  \"images\": [" << images.str() << "\n  ],\n"
      << "  \"annotations\": [" << annotations.str() << "\n  ]\n}\n";
  if (!out) return std::nullopt;
  summary.annotationsPath = annotationsPath.string();
  return summary;
}

}  // namespace darpa::dataset
