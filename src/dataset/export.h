// Dataset export — the paper releases D_aui publicly; this module writes
// the generated dataset in a COCO-style layout so downstream tools (or a
// real YOLOv5 training run) can consume it:
//
//   <dir>/annotations.json   COCO-style: images, annotations, categories
//   <dir>/images/<id>.ppm    screenshots (PPM: dependency-free)
//
// The JSON writer is a minimal from-scratch emitter (no third-party JSON
// library in this offline build).
#pragma once

#include <string>

#include "dataset/dataset.h"

namespace darpa::dataset {

struct ExportOptions {
  /// Write the screenshot PPMs (can be large); annotations always written.
  bool writeImages = true;
  /// Cap on exported samples (0 = all) — handy for smoke tests.
  int maxSamples = 0;
  /// Apply the Fig.-7 text masking before export.
  bool maskText = false;
};

struct ExportSummary {
  int images = 0;
  int annotations = 0;
  std::string annotationsPath;
};

/// Exports the dataset under `directory` (created if missing). Returns
/// std::nullopt on I/O failure.
[[nodiscard]] std::optional<ExportSummary> exportCocoDataset(
    const AuiDataset& data, const std::string& directory,
    const ExportOptions& options = {});

/// Escapes a string for embedding in a JSON document.
[[nodiscard]] std::string jsonEscape(std::string_view raw);

}  // namespace darpa::dataset
