// Minimal leveled logger.
//
// The simulation is mostly silent by default (benches print their own
// tables); logging exists for debugging and for the examples, which narrate
// the DARPA life-cycle. No global mutable formatting state; thread safety is
// irrelevant because the simulation core is single-threaded by design.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace darpa {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level. Defaults to Warn so tests stay quiet.
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail {
void logLine(LogLevel level, std::string_view message);

template <typename... Args>
void logFmt(LogLevel level, Args&&... args) {
  if (level < logLevel()) return;
  std::ostringstream os;
  (os << ... << args);
  logLine(level, os.str());
}
}  // namespace detail

template <typename... Args>
void logDebug(Args&&... args) {
  detail::logFmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void logInfo(Args&&... args) {
  detail::logFmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void logWarn(Args&&... args) {
  detail::logFmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void logError(Args&&... args) {
  detail::logFmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace darpa
