// Lock ranks — a global acquisition-order contract for every mutex in the
// runtime, validated at runtime.
//
// The epoch-lockstep fleet holds at most one lock at a time today, so it
// cannot deadlock. The ROADMAP's next refactors (work-stealing run queues,
// sharded stat merging, a striped fleet-wide verdict cache) will nest
// locks, and nested locking deadlocks silently the first time two threads
// acquire the same pair in opposite orders. This module makes the ordering
// a checked contract instead of a convention:
//
//  * LockRank is the global rank table. A thread may only acquire a mutex
//    whose rank is STRICTLY GREATER than every rank it already holds —
//    acquisition order follows rank order, so a cycle (the deadlock
//    precondition) is impossible by construction. Ranks are spaced so
//    future tiers slot between existing ones without renumbering.
//  * RankedMutex wraps std::mutex with a rank + a name, registers itself
//    in the process-wide LockRankRegistry, and (when rank checking is
//    compiled in) asserts the strictly-increasing rule on every lock().
//    It carries Clang thread-safety CAPABILITY annotations, so GUARDED_BY
//    fields and the -Wthread-safety lane work through it unchanged.
//  * LockGuard is the RAII holder (SCOPED_CAPABILITY); use it instead of
//    std::lock_guard so the static analysis sees the acquire/release pair
//    on every toolchain (libstdc++'s lock_guard is not annotated).
//
// Rank checking defaults ON in every build (DARPA_LOCK_RANK_CHECKS=1): the
// validator is two thread-local vector operations per lock/unlock on locks
// that sit at screenshot/epoch frequency, never inside the detector's hot
// loops. A violation aborts with a "lock-rank" diagnostic naming both
// mutexes (death-tested in tests/lock_rank_test.cpp). Define
// DARPA_LOCK_RANK_CHECKS=0 to compile the wrapper down to a bare
// std::mutex.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/thread_annotations.h"

#ifndef DARPA_LOCK_RANK_CHECKS
#define DARPA_LOCK_RANK_CHECKS 1
#endif

namespace darpa::util {

/// The global lock-rank table, lowest rank acquired first. Gaps are
/// deliberate: future lock tiers (per-shard run queues, verdict-cache
/// stripes) slot between existing ranks without renumbering. DESIGN.md §12
/// documents who holds what while acquiring what.
enum class LockRank : int {
  /// Fleet-level orchestration: the work-stealing scheduler's global state
  /// (cursor counts, pending flush groups, active-session count, idle cv).
  /// The lockstep reference driver needs no lock.
  kFleetControl = 100,
  /// Work-stealing group-flush serialization: held while a worker replays
  /// a closed flush group into the shared detection backend and calls its
  /// flush(). Below kExecutorQueue because the backend's queue lock is
  /// taken inside submit()/flush() under this one.
  kFleetFlush = 150,
  /// Per-shard session run queues (work-stealing scheduler). All shards
  /// share this rank, so a thread may never hold two shard locks at once —
  /// the steal protocol releases its own shard before probing a sibling.
  kSessionQueue = 200,
  /// Deferred-executor parked-request queues (ThreadPoolExecutor /
  /// BatchingExecutor submit/flush swap).
  kExecutorQueue = 300,
  /// Fleet-wide shared verdict tier stripes (core::SharedVerdictTier).
  /// All shards share this rank (at most one shard lock held at a time;
  /// nothing is called out to under it). Above kExecutorQueue/kFleetFlush
  /// because pipeline completions probe/publish the tier while a
  /// work-stealing flush may still hold those; below kStatMerge and the
  /// frame-pool ranks so a tier operation can never be entangled with a
  /// retirement fold or a slab release.
  kVerdictTier = 400,
  /// Sharded stat-merge locks (core::StatMergeShards): sessions fold their
  /// stats/ledger at retirement, snapshots read shards one at a time.
  kStatMerge = 500,
  /// gfx::FramePool per-shard free lists. Near-leaf: slab release runs
  /// from arbitrary call depth (any last FramePtr drop, on any thread,
  /// possibly while an executor or scheduler lock is held), so the pool
  /// locks must be acquirable under everything else. All shards share this
  /// rank; a thread holds at most one shard lock at a time.
  kFramePool = 600,
  /// gfx::FramePool global spill list — the overflow tier behind the
  /// per-shard free lists. Strictly above kFramePool because the spill is
  /// probed while the caller's shard lock is held.
  kFramePoolSpill = 650,
};

[[nodiscard]] const char* lockRankName(LockRank rank);

/// Process-wide registry of every live RankedMutex, keyed by rank. Lets
/// tests (and postmortems) assert the runtime's lock population carries
/// the ranks DESIGN.md documents, and catches two unrelated locks sharing
/// a rank by accident.
class LockRankRegistry {
 public:
  struct Entry {
    LockRank rank;
    const char* name;  ///< The mutex's debug name (static string).
    int live = 0;      ///< RankedMutexes currently constructed.
  };

  /// The singleton. Construction order safe: function-local static.
  [[nodiscard]] static LockRankRegistry& instance();

  /// Snapshot of the registered ranks, sorted ascending by rank then name.
  [[nodiscard]] std::vector<Entry> snapshot() const;

  /// Live mutexes registered under `rank` (0 when none).
  [[nodiscard]] int liveCount(LockRank rank) const;

 private:
  friend class RankedMutex;
  void add(LockRank rank, const char* name);
  void remove(LockRank rank, const char* name);

  // The registry's own lock is internal bookkeeping, not part of the
  // ranked world: it is only ever held across a vector scan in
  // add/remove/snapshot and never while any ranked lock is acquired.
  mutable std::mutex mutex_;  // detlint: allow(mutex-missing-guarded-by) — registry internals, see above
  std::vector<Entry> entries_;
};

/// Per-thread validator for the strictly-increasing acquisition rule.
/// RankedMutex calls these; tests may query the introspection helpers.
class RankValidator {
 public:
  /// Aborts with a "lock-rank" diagnostic when `rank` is not strictly
  /// greater than every rank the calling thread already holds.
  static void onAcquire(LockRank rank, const char* name);
  /// Removes the (topmost matching) held entry; aborts if not held.
  static void onRelease(LockRank rank, const char* name);

  /// Ranks currently held by the calling thread (introspection).
  [[nodiscard]] static int heldCount();
  /// Highest rank held, or -1 when none.
  [[nodiscard]] static int topRank();
};

/// std::mutex + rank + name. Lock/unlock validate rank order (when
/// DARPA_LOCK_RANK_CHECKS) and carry the thread-safety annotations that
/// make GUARDED_BY(mutex_) fields checkable by -Wthread-safety.
class CAPABILITY("mutex") RankedMutex {
 public:
  RankedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {
#if DARPA_LOCK_RANK_CHECKS
    LockRankRegistry::instance().add(rank_, name_);
#endif
  }
  ~RankedMutex() {
#if DARPA_LOCK_RANK_CHECKS
    LockRankRegistry::instance().remove(rank_, name_);
#endif
  }
  RankedMutex(const RankedMutex&) = delete;
  RankedMutex& operator=(const RankedMutex&) = delete;

  void lock() ACQUIRE() {
#if DARPA_LOCK_RANK_CHECKS
    RankValidator::onAcquire(rank_, name_);
#endif
    impl_.lock();
  }

  void unlock() RELEASE() {
    impl_.unlock();
#if DARPA_LOCK_RANK_CHECKS
    RankValidator::onRelease(rank_, name_);
#endif
  }

  [[nodiscard]] LockRank rank() const { return rank_; }
  [[nodiscard]] const char* name() const { return name_; }

 private:
  LockRank rank_;
  const char* name_;
  std::mutex impl_;  // detlint: allow(mutex-missing-guarded-by) — the wrapper IS the guard
};

/// RAII lock holder for RankedMutex, visible to the thread-safety analysis
/// on every toolchain. Use this (not std::lock_guard) for ranked locks.
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(RankedMutex& mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~LockGuard() RELEASE() { mutex_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  RankedMutex& mutex_;
};

/// Condition variable usable with RankedMutex. condition_variable_any takes
/// the mutex as its Lockable, so the unlock/relock inside wait() goes
/// through RankedMutex::lock()/unlock() and the rank validator's held-stack
/// stays correct across the block.
///
/// Contract: the waiting thread must hold `mutex` as its HIGHEST-ranked
/// lock (typically its only one). wait() releases it mid-wait; if a
/// higher-ranked lock were still held, the re-acquisition after wakeup
/// would violate the strictly-increasing rule and abort. Spurious wakeups
/// happen — always wait in a predicate loop.
class RankedConditionVariable {
 public:
  void wait(RankedMutex& mutex) REQUIRES(mutex) { cv_.wait(mutex); }
  void notifyOne() { cv_.notify_one(); }
  void notifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace darpa::util
