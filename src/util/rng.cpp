#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace darpa {

double Rng::normal() {
  // Box-Muller; reject u1 == 0 to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::pickWeighted(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  assert(total > 0.0);
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // Floating-point tail: return the last entry.
}

}  // namespace darpa
