// Simulated monotonic clock.
//
// The whole Android substrate runs on simulated time: the Looper advances a
// SimClock as it drains timer callbacks, which makes the 200 ms debounce
// logic, the event-storm statistics, and the ct-sweep experiments fully
// deterministic (no wall-clock flakiness in tests).
#pragma once

#include <chrono>
#include <cstdint>

namespace darpa {

/// A duration/instant in simulated milliseconds. Plain integer wrapper kept
/// implicit-free so millisecond and microsecond quantities cannot be mixed.
struct Millis {
  std::int64_t count = 0;

  friend constexpr auto operator<=>(const Millis&, const Millis&) = default;
  friend constexpr Millis operator+(Millis a, Millis b) {
    return {a.count + b.count};
  }
  friend constexpr Millis operator-(Millis a, Millis b) {
    return {a.count - b.count};
  }
};

constexpr Millis ms(std::int64_t v) { return {v}; }

class SimClock {
 public:
  [[nodiscard]] Millis now() const { return now_; }

  /// Advances time; duration must be non-negative.
  void advance(Millis d) {
    if (d.count > 0) now_ = now_ + d;
  }

  /// Jumps to an absolute instant; never moves backwards.
  void advanceTo(Millis t) {
    if (t > now_) now_ = t;
  }

 private:
  Millis now_{0};
};

/// Real host time in microseconds (steady_clock), for the WorkLedger's
/// wall-clock observability axis. Never feeds simulated time, the modeled
/// cost tables, or any digest-stable quantity — the determinism story above
/// depends on that separation. This is the ONE sanctioned wall-clock entry
/// point in src/; detlint bans std::chrono everywhere else on digest paths,
/// so new timing code must route through here (and carry its own audited
/// allow at the call site).
// detlint: begin-allow(wall-clock-in-digest-path) the sanctioned wall-clock entry point
[[nodiscard]] inline double wallMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
// detlint: end-allow(wall-clock-in-digest-path)

}  // namespace darpa
