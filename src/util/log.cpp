#include "util/log.h"

namespace darpa {

namespace {
LogLevel& levelStorage() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

std::string_view levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

LogLevel logLevel() { return levelStorage(); }
void setLogLevel(LogLevel level) { levelStorage() = level; }

namespace detail {
void logLine(LogLevel level, std::string_view message) {
  std::ostream& os = level >= LogLevel::kWarn ? std::cerr : std::cout;
  os << "[" << levelName(level) << "] " << message << "\n";
}
}  // namespace detail

}  // namespace darpa
