// Deterministic random number generation.
//
// Every stochastic component in the simulation (app population, dataset
// generator, detectors' weight init, user-study personas, Monkey driver)
// takes an explicit seed and derives its own Rng, so whole-system runs are
// reproducible bit-for-bit regardless of module evaluation order.
//
// The engine is SplitMix64 feeding a PCG-style output; it is tiny, fast, and
// has no global state.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace darpa {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value (SplitMix64).
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Derives an independent child stream; use to hand sub-components their
  /// own generator without coupling their draw sequences.
  [[nodiscard]] Rng fork() { return Rng(next()); }

  /// Uniform double in [0, 1).
  double uniform() { return (next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniformInt(int lo, int hi) {
    assert(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi) - lo + 1;
    return lo + static_cast<int>(next() % range);
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (one value per call; no caching so the
  /// draw count stays predictable for reproducibility).
  double normal() ;

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t pickWeighted(std::span<const double> weights);

  /// Uniformly picks one element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    assert(!items.empty());
    return items[next() % items.size()];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[next() % i]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace darpa
