// RGBA color with the perceptual helpers the AUI analysis needs:
// relative luminance and WCAG contrast ratio. AUIs work by giving the
// app-guided option high contrast against the background and the
// user-preferred option low contrast, so contrast math is a first-class
// citizen of this codebase.
#pragma once

#include <cstdint>
#include <ostream>

namespace darpa {

struct Color {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;
  std::uint8_t a = 255;

  friend bool operator==(const Color&, const Color&) = default;

  [[nodiscard]] static constexpr Color rgb(std::uint8_t r, std::uint8_t g,
                                           std::uint8_t b) {
    return {r, g, b, 255};
  }
  [[nodiscard]] static constexpr Color rgba(std::uint8_t r, std::uint8_t g,
                                            std::uint8_t b, std::uint8_t a) {
    return {r, g, b, a};
  }

  /// Color with the same RGB and a replaced alpha.
  [[nodiscard]] constexpr Color withAlpha(std::uint8_t alpha) const {
    return {r, g, b, alpha};
  }

  /// Packs to 0xAARRGGBB (the Android int-color convention).
  [[nodiscard]] constexpr std::uint32_t toArgb() const {
    return (static_cast<std::uint32_t>(a) << 24) |
           (static_cast<std::uint32_t>(r) << 16) |
           (static_cast<std::uint32_t>(g) << 8) | b;
  }
  [[nodiscard]] static constexpr Color fromArgb(std::uint32_t argb) {
    return {static_cast<std::uint8_t>((argb >> 16) & 0xff),
            static_cast<std::uint8_t>((argb >> 8) & 0xff),
            static_cast<std::uint8_t>(argb & 0xff),
            static_cast<std::uint8_t>((argb >> 24) & 0xff)};
  }
};

std::ostream& operator<<(std::ostream& os, const Color& c);

namespace colors {
inline constexpr Color kBlack = Color::rgb(0, 0, 0);
inline constexpr Color kWhite = Color::rgb(255, 255, 255);
inline constexpr Color kRed = Color::rgb(220, 30, 30);
inline constexpr Color kGreen = Color::rgb(30, 180, 60);
inline constexpr Color kBlue = Color::rgb(40, 90, 220);
inline constexpr Color kYellow = Color::rgb(250, 210, 40);
inline constexpr Color kOrange = Color::rgb(250, 140, 30);
inline constexpr Color kGray = Color::rgb(128, 128, 128);
inline constexpr Color kLightGray = Color::rgb(200, 200, 200);
inline constexpr Color kTransparent = Color::rgba(0, 0, 0, 0);
}  // namespace colors

/// Source-over alpha blend of `src` onto opaque-ish `dst`.
[[nodiscard]] Color blend(Color dst, Color src);

/// Relative luminance per WCAG (sRGB linearization), in [0, 1].
[[nodiscard]] double relativeLuminance(Color c);

/// WCAG contrast ratio between two colors, in [1, 21].
[[nodiscard]] double contrastRatio(Color a, Color b);

/// Linear interpolation between two colors, t in [0, 1].
[[nodiscard]] Color lerp(Color a, Color b, double t);

/// Perceptual grayscale value (ITU-R BT.601 luma) in [0, 255].
[[nodiscard]] double luma(Color c);

/// A color with maximal contrast against `background` (black or white, or a
/// saturated accent when both are mid-gray). Used by the decoration module to
/// pick a highlight color that stands out from the AUI it decorates.
[[nodiscard]] Color highContrastAgainst(Color background);

}  // namespace darpa
