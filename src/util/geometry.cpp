#include "util/geometry.h"

namespace darpa {

Rect Rect::intersect(const Rect& o) const {
  const int l = std::max(x, o.x);
  const int t = std::max(y, o.y);
  const int r = std::min(right(), o.right());
  const int b = std::min(bottom(), o.bottom());
  if (r <= l || b <= t) return {l, t, 0, 0};
  return {l, t, r - l, b - t};
}

Rect Rect::unite(const Rect& o) const {
  if (empty()) return o;
  if (o.empty()) return *this;
  const int l = std::min(x, o.x);
  const int t = std::min(y, o.y);
  const int r = std::max(right(), o.right());
  const int b = std::max(bottom(), o.bottom());
  return {l, t, r - l, b - t};
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "Rect{" << r.x << "," << r.y << " " << r.width << "x"
            << r.height << "}";
}

Rect RectF::toRect() const {
  return {static_cast<int>(std::lround(x)), static_cast<int>(std::lround(y)),
          static_cast<int>(std::lround(width)),
          static_cast<int>(std::lround(height))};
}

std::ostream& operator<<(std::ostream& os, const RectF& r) {
  return os << "RectF{" << r.x << "," << r.y << " " << r.width << "x"
            << r.height << "}";
}

double iou(const Rect& a, const Rect& b) {
  const Rect i = a.intersect(b);
  if (i.empty()) return 0.0;
  const double inter = static_cast<double>(i.area());
  const double uni = static_cast<double>(a.area()) + b.area() - inter;
  return uni <= 0.0 ? 0.0 : inter / uni;
}

double iou(const RectF& a, const RectF& b) {
  const float l = std::max(a.left(), b.left());
  const float t = std::max(a.top(), b.top());
  const float r = std::min(a.right(), b.right());
  const float btm = std::min(a.bottom(), b.bottom());
  if (r <= l || btm <= t) return 0.0;
  const double inter = static_cast<double>(r - l) * (btm - t);
  const double uni = static_cast<double>(a.area()) + b.area() - inter;
  return uni <= 0.0 ? 0.0 : inter / uni;
}

double distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace darpa
