// Clang Thread Safety Analysis annotations for the fleet runtime.
//
// The fleet's determinism contract is enforced on two axes: TSan catches
// races in the interleavings the tests happen to run, and these
// annotations let Clang's -Wthread-safety pass prove at COMPILE TIME that
// every access to a mutex-protected structure holds the right lock — in
// every interleaving, including the ones no test exercises. The ROADMAP's
// next steps (work-stealing scheduler, fleet-wide shared verdict tier)
// replace the epoch-lockstep barrier with fine-grained locking, which is
// exactly where TSan-only checking stops being enough.
//
// Usage conventions (see DESIGN.md §12):
//  * Every mutex member is a util::RankedMutex (util/lock_rank.h) — a
//    CAPABILITY-annotated std::mutex wrapper that also validates lock-rank
//    ordering at runtime.
//  * Every field a mutex protects carries GUARDED_BY(mutex_). detlint
//    (tools/detlint) rejects a std::mutex/RankedMutex member whose file has
//    no GUARDED_BY referencing it.
//  * Functions that assume the lock is already held carry REQUIRES(mutex_)
//    (and are conventionally named ...Locked()).
//  * Structures with NO mutex by design — session-confined state merged
//    only at epoch barriers — mark their members CONFINED_TO("owner") so
//    the confinement rule is greppable where the data lives, not only in a
//    header comment.
//
// All macros expand to nothing on non-Clang compilers (the container's GCC
// lane compiles them away); the dedicated CI lane builds with clang++ and
// -DDARPA_THREAD_SAFETY=ON, which adds -Wthread-safety -Werror=thread-safety.
#pragma once

#if defined(__clang__)
#define DARPA_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define DARPA_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability (mutexes, mutex wrappers).
#define CAPABILITY(x) DARPA_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY DARPA_THREAD_ANNOTATION__(scoped_lockable)

/// Field is protected by the given mutex: every read/write must hold it.
#define GUARDED_BY(x) DARPA_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field whose *pointee* is protected by the given mutex.
#define PT_GUARDED_BY(x) DARPA_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Declares lock-ordering edges checkable by the static analysis (the
/// runtime lock-rank validator enforces the same ordering dynamically).
#define ACQUIRED_BEFORE(...) DARPA_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) DARPA_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// Function requires the given capabilities to be held on entry (and does
/// not release them).
#define REQUIRES(...) DARPA_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  DARPA_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the given capabilities.
#define ACQUIRE(...) DARPA_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  DARPA_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) DARPA_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  DARPA_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; first arg is the success return value.
#define TRY_ACQUIRE(...) \
  DARPA_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called with the given capabilities held (guards
/// against self-deadlock on non-reentrant mutexes).
#define EXCLUDES(...) DARPA_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function asserts (at runtime) that the capability is held.
#define ASSERT_CAPABILITY(x) DARPA_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) DARPA_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: function is deliberately outside the analysis.
#define NO_THREAD_SAFETY_ANALYSIS \
  DARPA_THREAD_ANNOTATION__(no_thread_safety_analysis)

/// Documentation-only marker (expands to nothing on every compiler) for
/// state that is protected by OWNERSHIP rather than a lock: session-confined
/// counters merged at epoch barriers (WorkLedger, DarpaStats), the Looper's
/// single-threaded queues, flush-confined executor statistics. The string
/// names the confining owner / phase. Greppable contract, zero codegen.
#define CONFINED_TO(owner)
