#include "util/lock_rank.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace darpa::util {

const char* lockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kFleetControl:
      return "fleet-control";
    case LockRank::kFleetFlush:
      return "fleet-flush";
    case LockRank::kSessionQueue:
      return "session-queue";
    case LockRank::kExecutorQueue:
      return "executor-queue";
    case LockRank::kVerdictTier:
      return "verdict-tier";
    case LockRank::kStatMerge:
      return "stat-merge";
    case LockRank::kFramePool:
      return "frame-pool";
    case LockRank::kFramePoolSpill:
      return "frame-pool-spill";
  }
  return "unknown";
}

// ---------------------------------------------------------------- registry

LockRankRegistry& LockRankRegistry::instance() {
  static LockRankRegistry registry;
  return registry;
}

void LockRankRegistry::add(LockRank rank, const char* name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    if (entry.rank == rank && std::strcmp(entry.name, name) == 0) {
      ++entry.live;
      return;
    }
  }
  entries_.push_back({rank, name, 1});
}

void LockRankRegistry::remove(LockRank rank, const char* name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    if (entry.rank == rank && std::strcmp(entry.name, name) == 0) {
      --entry.live;
      return;
    }
  }
}

std::vector<LockRankRegistry::Entry> LockRankRegistry::snapshot() const {
  std::vector<Entry> copy;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    copy = entries_;
  }
  std::sort(copy.begin(), copy.end(), [](const Entry& a, const Entry& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    return std::strcmp(a.name, b.name) < 0;
  });
  return copy;
}

int LockRankRegistry::liveCount(LockRank rank) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  int live = 0;
  for (const Entry& entry : entries_) {
    if (entry.rank == rank) live += entry.live;
  }
  return live;
}

// --------------------------------------------------------------- validator

namespace {

struct HeldLock {
  int rank;
  const char* name;
};

/// The calling thread's acquisition stack, innermost (highest rank) last.
/// Plain function-local thread_local: constructed on first lock, destroyed
/// at thread exit (by which point the thread holds nothing).
std::vector<HeldLock>& heldStack() {
  thread_local std::vector<HeldLock> held;
  return held;
}

[[noreturn]] void rankViolation(const char* what, LockRank rank,
                                const char* name, const HeldLock* top) {
  if (top != nullptr) {
    std::fprintf(stderr,
                 "lock-rank violation: %s \"%s\" (rank %d, %s) while holding "
                 "\"%s\" (rank %d) — acquisition order must be strictly "
                 "increasing (see util/lock_rank.h)\n",
                 what, name, static_cast<int>(rank), lockRankName(rank),
                 top->name, top->rank);
  } else {
    std::fprintf(stderr, "lock-rank violation: %s \"%s\" (rank %d, %s)\n",
                 what, name, static_cast<int>(rank), lockRankName(rank));
  }
  std::abort();
}

}  // namespace

void RankValidator::onAcquire(LockRank rank, const char* name) {
  std::vector<HeldLock>& held = heldStack();
  if (!held.empty() && static_cast<int>(rank) <= held.back().rank) {
    rankViolation("acquiring", rank, name, &held.back());
  }
  held.push_back({static_cast<int>(rank), name});
}

void RankValidator::onRelease(LockRank rank, const char* name) {
  std::vector<HeldLock>& held = heldStack();
  // Normal case: LIFO release (LockGuard unwinding). Out-of-order release
  // of a held lock is legal for a mutex, so scan from the top for the
  // matching entry rather than insisting on stack discipline.
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->rank == static_cast<int>(rank) &&
        std::strcmp(it->name, name) == 0) {
      held.erase(std::next(it).base());
      return;
    }
  }
  rankViolation("releasing un-held", rank, name, nullptr);
}

int RankValidator::heldCount() {
  return static_cast<int>(heldStack().size());
}

int RankValidator::topRank() {
  const std::vector<HeldLock>& held = heldStack();
  return held.empty() ? -1 : held.back().rank;
}

}  // namespace darpa::util
