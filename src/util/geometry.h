// Geometry primitives shared across the whole system.
//
// Pixel-space types are integer-based (Android view coordinates are integer
// pixels); detection-space boxes are float-based because the detectors emit
// sub-pixel regressed coordinates. Both are small value types with no
// invariants beyond "width/height may be zero or positive" (an empty rect).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace darpa {

/// A 2-D integer point (pixel coordinates, origin at top-left).
struct Point {
  int x = 0;
  int y = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// A 2-D integer size.
struct Size {
  int width = 0;
  int height = 0;

  [[nodiscard]] constexpr std::int64_t area() const {
    return static_cast<std::int64_t>(width) * height;
  }
  [[nodiscard]] constexpr bool empty() const { return width <= 0 || height <= 0; }

  friend bool operator==(const Size&, const Size&) = default;
};

/// Axis-aligned integer rectangle: [x, x+width) x [y, y+height).
struct Rect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;

  [[nodiscard]] constexpr int left() const { return x; }
  [[nodiscard]] constexpr int top() const { return y; }
  [[nodiscard]] constexpr int right() const { return x + width; }
  [[nodiscard]] constexpr int bottom() const { return y + height; }
  [[nodiscard]] constexpr std::int64_t area() const {
    return static_cast<std::int64_t>(width) * height;
  }
  [[nodiscard]] constexpr bool empty() const { return width <= 0 || height <= 0; }
  [[nodiscard]] constexpr Point center() const {
    return {x + width / 2, y + height / 2};
  }
  [[nodiscard]] constexpr bool contains(Point p) const {
    return p.x >= x && p.x < right() && p.y >= y && p.y < bottom();
  }
  [[nodiscard]] constexpr bool contains(const Rect& r) const {
    return !r.empty() && r.x >= x && r.y >= y && r.right() <= right() &&
           r.bottom() <= bottom();
  }

  /// Rect translated by (dx, dy).
  [[nodiscard]] constexpr Rect translated(int dx, int dy) const {
    return {x + dx, y + dy, width, height};
  }

  /// Rect grown by `margin` on every side (negative margin shrinks).
  [[nodiscard]] constexpr Rect inflated(int margin) const {
    return {x - margin, y - margin, width + 2 * margin, height + 2 * margin};
  }

  /// Intersection; empty rect (w=h=0 at the clamped origin) when disjoint.
  [[nodiscard]] Rect intersect(const Rect& o) const;

  /// Smallest rect containing both. An empty operand is ignored.
  [[nodiscard]] Rect unite(const Rect& o) const;

  friend bool operator==(const Rect&, const Rect&) = default;
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

/// Axis-aligned float rectangle used by detectors (sub-pixel box regression).
struct RectF {
  float x = 0.f;
  float y = 0.f;
  float width = 0.f;
  float height = 0.f;

  [[nodiscard]] constexpr float left() const { return x; }
  [[nodiscard]] constexpr float top() const { return y; }
  [[nodiscard]] constexpr float right() const { return x + width; }
  [[nodiscard]] constexpr float bottom() const { return y + height; }
  [[nodiscard]] constexpr float area() const { return width * height; }
  [[nodiscard]] constexpr bool empty() const {
    return width <= 0.f || height <= 0.f;
  }
  [[nodiscard]] constexpr float centerX() const { return x + width / 2.f; }
  [[nodiscard]] constexpr float centerY() const { return y + height / 2.f; }

  [[nodiscard]] static RectF fromRect(const Rect& r) {
    return {static_cast<float>(r.x), static_cast<float>(r.y),
            static_cast<float>(r.width), static_cast<float>(r.height)};
  }
  /// Rounds to the nearest integer pixel rect.
  [[nodiscard]] Rect toRect() const;

  friend bool operator==(const RectF&, const RectF&) = default;
};

std::ostream& operator<<(std::ostream& os, const RectF& r);

/// Intersection-over-Union of two integer rects, in [0, 1].
[[nodiscard]] double iou(const Rect& a, const Rect& b);

/// Intersection-over-Union of two float rects, in [0, 1].
[[nodiscard]] double iou(const RectF& a, const RectF& b);

/// Euclidean distance between two points.
[[nodiscard]] double distance(Point a, Point b);

}  // namespace darpa
