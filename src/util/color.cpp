#include "util/color.h"

#include <algorithm>
#include <cmath>

namespace darpa {

std::ostream& operator<<(std::ostream& os, const Color& c) {
  return os << "Color{" << int{c.r} << "," << int{c.g} << "," << int{c.b}
            << "," << int{c.a} << "}";
}

Color blend(Color dst, Color src) {
  if (src.a == 255) return src;
  if (src.a == 0) return dst;
  const int sa = src.a;
  const int da = dst.a;
  const int outA = sa + da * (255 - sa) / 255;
  if (outA == 0) return colors::kTransparent;
  auto channel = [&](int s, int d) {
    const int num = s * sa * 255 + d * da * (255 - sa);
    return static_cast<std::uint8_t>(
        std::clamp(num / (outA * 255), 0, 255));
  };
  return {channel(src.r, dst.r), channel(src.g, dst.g), channel(src.b, dst.b),
          static_cast<std::uint8_t>(outA)};
}

namespace {
double linearize(std::uint8_t channel) {
  const double c = channel / 255.0;
  return c <= 0.04045 ? c / 12.92 : std::pow((c + 0.055) / 1.055, 2.4);
}
}  // namespace

double relativeLuminance(Color c) {
  return 0.2126 * linearize(c.r) + 0.7152 * linearize(c.g) +
         0.0722 * linearize(c.b);
}

double contrastRatio(Color a, Color b) {
  const double la = relativeLuminance(a);
  const double lb = relativeLuminance(b);
  const double lighter = std::max(la, lb);
  const double darker = std::min(la, lb);
  return (lighter + 0.05) / (darker + 0.05);
}

Color lerp(Color a, Color b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  auto mix = [t](std::uint8_t x, std::uint8_t y) {
    return static_cast<std::uint8_t>(std::lround(x + (y - x) * t));
  };
  return {mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b), mix(a.a, b.a)};
}

double luma(Color c) { return 0.299 * c.r + 0.587 * c.g + 0.114 * c.b; }

Color highContrastAgainst(Color background) {
  const double cWhite = contrastRatio(background, colors::kWhite);
  const double cBlack = contrastRatio(background, colors::kBlack);
  // Mid-gray backgrounds contrast poorly with both extremes; a saturated
  // accent reads better there than either black or white.
  if (std::max(cWhite, cBlack) < 5.0) return colors::kRed;
  return cWhite >= cBlack ? colors::kWhite : colors::kBlack;
}

}  // namespace darpa
