#include "gfx/bitmap.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace darpa::gfx {

const char* slabSourceName(SlabSource source) {
  switch (source) {
    case SlabSource::kNone: return "none";
    case SlabSource::kHeap: return "heap";
    case SlabSource::kPoolFresh: return "pool-fresh";
    case SlabSource::kPoolReused: return "pool-reused";
  }
  return "?";
}

Bitmap::Bitmap(int width, int height, Color fill)
    : width_(std::max(width, 0)), height_(std::max(height, 0)) {
  if (width_ > 0 && height_ > 0) {
    slab_ = std::make_shared<PixelSlab>();
    slab_->pixels.assign(pixelCount(), fill);
    slab_->source = SlabSource::kHeap;
    data_ = slab_->pixels.data();
  }
}

Bitmap::Bitmap(int width, int height, SlabPtr slab)
    : width_(width), height_(height), slab_(std::move(slab)) {
  data_ = slab_ ? slab_->pixels.data() : nullptr;
}

Bitmap::Bitmap(Bitmap&& other) noexcept
    : width_(other.width_),
      height_(other.height_),
      slab_(std::move(other.slab_)),
      data_(other.data_) {
  // The moved-from bitmap must be a valid empty bitmap: at()/set() on it
  // would otherwise dereference a slab it no longer owns.
  other.width_ = 0;
  other.height_ = 0;
  other.data_ = nullptr;
}

Bitmap& Bitmap::operator=(Bitmap&& other) noexcept {
  if (this != &other) {
    width_ = other.width_;
    height_ = other.height_;
    slab_ = std::move(other.slab_);
    data_ = other.data_;
    other.width_ = 0;
    other.height_ = 0;
    other.data_ = nullptr;
  }
  return *this;
}

Bitmap Bitmap::clone() const {
  Bitmap out(width_, height_);
  if (!empty()) {
    std::memcpy(out.data_, data_, pixelBytes());
  }
  return out;
}

bool operator==(const Bitmap& a, const Bitmap& b) {
  if (a.width_ != b.width_ || a.height_ != b.height_) return false;
  if (a.empty()) return true;
  if (a.data_ == b.data_) return true;
  return std::memcmp(a.data_, b.data_, a.pixelBytes()) == 0;
}

#if DARPA_BOUNDS_CHECKS
void Bitmap::boundsFailure(int x, int y) const {
  std::fprintf(stderr,
               "Bitmap bounds violation: (%d, %d) outside %dx%d\n", x, y,
               width_, height_);
  std::abort();
}
#endif

Color Bitmap::atClamped(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) {
    return colors::kTransparent;
  }
  return at(x, y);
}

void Bitmap::blendPixel(int x, int y, Color c) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return;
  set(x, y, blend(at(x, y), c));
}

void Bitmap::fill(Color c) {
  if (empty()) return;
  std::fill(data_, data_ + pixelCount(), c);
}

void Bitmap::fillRect(const Rect& r, Color c) {
  const Rect clipped = r.intersect(bounds());
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    for (int x = clipped.left(); x < clipped.right(); ++x) set(x, y, c);
  }
}

Bitmap Bitmap::crop(const Rect& r) const {
  const Rect clipped = r.intersect(bounds());
  Bitmap out(clipped.width, clipped.height);
  for (int y = 0; y < clipped.height; ++y) {
    for (int x = 0; x < clipped.width; ++x) {
      out.set(x, y, at(clipped.x + x, clipped.y + y));
    }
  }
  return out;
}

Bitmap Bitmap::downscale(int newWidth, int newHeight) const {
  newWidth = std::max(newWidth, 1);
  newHeight = std::max(newHeight, 1);
  Bitmap out(newWidth, newHeight);
  if (empty()) return out;
  if (width_ == 2 * newWidth && height_ == 2 * newHeight) {
    // Exact 2x decimation (the detector's featureScale=2 case): every output
    // pixel averages a full 2x2 block, so the general path's bounds
    // arithmetic and per-pixel divides collapse to a shift. The sums and the
    // truncating division by 4 are the very ones the general path computes.
    for (int oy = 0; oy < newHeight; ++oy) {
      const int y0 = 2 * oy;
      for (int ox = 0; ox < newWidth; ++ox) {
        const int x0 = 2 * ox;
        const Color c00 = at(x0, y0), c01 = at(x0 + 1, y0);
        const Color c10 = at(x0, y0 + 1), c11 = at(x0 + 1, y0 + 1);
        const std::uint32_t r = static_cast<std::uint32_t>(c00.r) + c01.r +
                                c10.r + c11.r;
        const std::uint32_t g = static_cast<std::uint32_t>(c00.g) + c01.g +
                                c10.g + c11.g;
        const std::uint32_t b = static_cast<std::uint32_t>(c00.b) + c01.b +
                                c10.b + c11.b;
        const std::uint32_t a = static_cast<std::uint32_t>(c00.a) + c01.a +
                                c10.a + c11.a;
        out.set(ox, oy,
                {static_cast<std::uint8_t>(r >> 2),
                 static_cast<std::uint8_t>(g >> 2),
                 static_cast<std::uint8_t>(b >> 2),
                 static_cast<std::uint8_t>(a >> 2)});
      }
    }
    return out;
  }
  for (int oy = 0; oy < newHeight; ++oy) {
    const int y0 = oy * height_ / newHeight;
    const int y1 = std::max((oy + 1) * height_ / newHeight, y0 + 1);
    for (int ox = 0; ox < newWidth; ++ox) {
      const int x0 = ox * width_ / newWidth;
      const int x1 = std::max((ox + 1) * width_ / newWidth, x0 + 1);
      std::uint64_t r = 0, g = 0, b = 0, a = 0;
      for (int y = y0; y < std::min(y1, height_); ++y) {
        for (int x = x0; x < std::min(x1, width_); ++x) {
          const Color c = at(x, y);
          r += c.r;
          g += c.g;
          b += c.b;
          a += c.a;
        }
      }
      const std::uint64_t n =
          static_cast<std::uint64_t>(std::min(y1, height_) - y0) *
          (std::min(x1, width_) - x0);
      out.set(ox, oy,
              {static_cast<std::uint8_t>(r / n),
               static_cast<std::uint8_t>(g / n),
               static_cast<std::uint8_t>(b / n),
               static_cast<std::uint8_t>(a / n)});
    }
  }
  return out;
}

void Bitmap::boxBlur(const Rect& region, int radius) {
  const Rect clipped = region.intersect(bounds());
  if (clipped.empty() || radius < 1) return;
  // Horizontal then vertical pass over a working copy of the region.
  Bitmap work = crop(clipped);
  Bitmap tmp = work.clone();
  const int w = work.width();
  const int h = work.height();
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int r = 0, g = 0, b = 0, n = 0;
      for (int dx = -radius; dx <= radius; ++dx) {
        const int sx = std::clamp(x + dx, 0, w - 1);
        const Color c = work.at(sx, y);
        r += c.r;
        g += c.g;
        b += c.b;
        ++n;
      }
      tmp.set(x, y,
              {static_cast<std::uint8_t>(r / n),
               static_cast<std::uint8_t>(g / n),
               static_cast<std::uint8_t>(b / n), work.at(x, y).a});
    }
  }
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int r = 0, g = 0, b = 0, n = 0;
      for (int dy = -radius; dy <= radius; ++dy) {
        const int sy = std::clamp(y + dy, 0, h - 1);
        const Color c = tmp.at(x, sy);
        r += c.r;
        g += c.g;
        b += c.b;
        ++n;
      }
      set(clipped.x + x, clipped.y + y,
          {static_cast<std::uint8_t>(r / n), static_cast<std::uint8_t>(g / n),
           static_cast<std::uint8_t>(b / n), tmp.at(x, y).a});
    }
  }
}

Color Bitmap::meanColor(const Rect& r) const {
  const Rect clipped = r.intersect(bounds());
  if (clipped.empty()) return colors::kWhite;
  std::uint64_t rr = 0, gg = 0, bb = 0;
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    for (int x = clipped.left(); x < clipped.right(); ++x) {
      const Color c = at(x, y);
      rr += c.r;
      gg += c.g;
      bb += c.b;
    }
  }
  const std::uint64_t n = static_cast<std::uint64_t>(clipped.area());
  return Color::rgb(static_cast<std::uint8_t>(rr / n),
                    static_cast<std::uint8_t>(gg / n),
                    static_cast<std::uint8_t>(bb / n));
}

double Bitmap::meanLuma(const Rect& r) const {
  const Rect clipped = r.intersect(bounds());
  if (clipped.empty()) return 0.0;
  double sum = 0.0;
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    for (int x = clipped.left(); x < clipped.right(); ++x) {
      sum += luma(at(x, y));
    }
  }
  return sum / static_cast<double>(clipped.area());
}

double Bitmap::lumaStddev(const Rect& r) const {
  const Rect clipped = r.intersect(bounds());
  if (clipped.empty()) return 0.0;
  double sum = 0.0;
  double sumSq = 0.0;
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    for (int x = clipped.left(); x < clipped.right(); ++x) {
      const double l = luma(at(x, y));
      sum += l;
      sumSq += l * l;
    }
  }
  const double n = static_cast<double>(clipped.area());
  const double mean = sum / n;
  const double var = std::max(sumSq / n - mean * mean, 0.0);
  return std::sqrt(var);
}

bool Bitmap::writePpm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  for (std::size_t i = 0; i < pixelCount(); ++i) {
    const Color c = data_[i];
    out.put(static_cast<char>(c.r));
    out.put(static_cast<char>(c.g));
    out.put(static_cast<char>(c.b));
  }
  return static_cast<bool>(out);
}

}  // namespace darpa::gfx
