#include "gfx/bitmap.h"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace darpa::gfx {

Bitmap::Bitmap(int width, int height, Color fill)
    : width_(std::max(width, 0)),
      height_(std::max(height, 0)),
      pixels_(static_cast<std::size_t>(width_) * height_, fill) {}

Color Bitmap::atClamped(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) {
    return colors::kTransparent;
  }
  return at(x, y);
}

void Bitmap::blendPixel(int x, int y, Color c) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return;
  set(x, y, blend(at(x, y), c));
}

void Bitmap::fill(Color c) { std::fill(pixels_.begin(), pixels_.end(), c); }

void Bitmap::fillRect(const Rect& r, Color c) {
  const Rect clipped = r.intersect(bounds());
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    for (int x = clipped.left(); x < clipped.right(); ++x) set(x, y, c);
  }
}

Bitmap Bitmap::crop(const Rect& r) const {
  const Rect clipped = r.intersect(bounds());
  Bitmap out(clipped.width, clipped.height);
  for (int y = 0; y < clipped.height; ++y) {
    for (int x = 0; x < clipped.width; ++x) {
      out.set(x, y, at(clipped.x + x, clipped.y + y));
    }
  }
  return out;
}

Bitmap Bitmap::downscale(int newWidth, int newHeight) const {
  newWidth = std::max(newWidth, 1);
  newHeight = std::max(newHeight, 1);
  Bitmap out(newWidth, newHeight);
  if (empty()) return out;
  for (int oy = 0; oy < newHeight; ++oy) {
    const int y0 = oy * height_ / newHeight;
    const int y1 = std::max((oy + 1) * height_ / newHeight, y0 + 1);
    for (int ox = 0; ox < newWidth; ++ox) {
      const int x0 = ox * width_ / newWidth;
      const int x1 = std::max((ox + 1) * width_ / newWidth, x0 + 1);
      std::uint64_t r = 0, g = 0, b = 0, a = 0;
      for (int y = y0; y < std::min(y1, height_); ++y) {
        for (int x = x0; x < std::min(x1, width_); ++x) {
          const Color c = at(x, y);
          r += c.r;
          g += c.g;
          b += c.b;
          a += c.a;
        }
      }
      const std::uint64_t n =
          static_cast<std::uint64_t>(std::min(y1, height_) - y0) *
          (std::min(x1, width_) - x0);
      out.set(ox, oy,
              {static_cast<std::uint8_t>(r / n),
               static_cast<std::uint8_t>(g / n),
               static_cast<std::uint8_t>(b / n),
               static_cast<std::uint8_t>(a / n)});
    }
  }
  return out;
}

void Bitmap::boxBlur(const Rect& region, int radius) {
  const Rect clipped = region.intersect(bounds());
  if (clipped.empty() || radius < 1) return;
  // Horizontal then vertical pass over a working copy of the region.
  Bitmap work = crop(clipped);
  Bitmap tmp = work;
  const int w = work.width();
  const int h = work.height();
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int r = 0, g = 0, b = 0, n = 0;
      for (int dx = -radius; dx <= radius; ++dx) {
        const int sx = std::clamp(x + dx, 0, w - 1);
        const Color c = work.at(sx, y);
        r += c.r;
        g += c.g;
        b += c.b;
        ++n;
      }
      tmp.set(x, y,
              {static_cast<std::uint8_t>(r / n),
               static_cast<std::uint8_t>(g / n),
               static_cast<std::uint8_t>(b / n), work.at(x, y).a});
    }
  }
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int r = 0, g = 0, b = 0, n = 0;
      for (int dy = -radius; dy <= radius; ++dy) {
        const int sy = std::clamp(y + dy, 0, h - 1);
        const Color c = tmp.at(x, sy);
        r += c.r;
        g += c.g;
        b += c.b;
        ++n;
      }
      set(clipped.x + x, clipped.y + y,
          {static_cast<std::uint8_t>(r / n), static_cast<std::uint8_t>(g / n),
           static_cast<std::uint8_t>(b / n), tmp.at(x, y).a});
    }
  }
}

Color Bitmap::meanColor(const Rect& r) const {
  const Rect clipped = r.intersect(bounds());
  if (clipped.empty()) return colors::kWhite;
  std::uint64_t rr = 0, gg = 0, bb = 0;
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    for (int x = clipped.left(); x < clipped.right(); ++x) {
      const Color c = at(x, y);
      rr += c.r;
      gg += c.g;
      bb += c.b;
    }
  }
  const std::uint64_t n = static_cast<std::uint64_t>(clipped.area());
  return Color::rgb(static_cast<std::uint8_t>(rr / n),
                    static_cast<std::uint8_t>(gg / n),
                    static_cast<std::uint8_t>(bb / n));
}

double Bitmap::meanLuma(const Rect& r) const {
  const Rect clipped = r.intersect(bounds());
  if (clipped.empty()) return 0.0;
  double sum = 0.0;
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    for (int x = clipped.left(); x < clipped.right(); ++x) {
      sum += luma(at(x, y));
    }
  }
  return sum / static_cast<double>(clipped.area());
}

double Bitmap::lumaStddev(const Rect& r) const {
  const Rect clipped = r.intersect(bounds());
  if (clipped.empty()) return 0.0;
  double sum = 0.0;
  double sumSq = 0.0;
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    for (int x = clipped.left(); x < clipped.right(); ++x) {
      const double l = luma(at(x, y));
      sum += l;
      sumSq += l * l;
    }
  }
  const double n = static_cast<double>(clipped.area());
  const double mean = sum / n;
  const double var = std::max(sumSq / n - mean * mean, 0.0);
  return std::sqrt(var);
}

bool Bitmap::writePpm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << "P6\n" << width_ << " " << height_ << "\n255\n";
  for (const Color& c : pixels_) {
    out.put(static_cast<char>(c.r));
    out.put(static_cast<char>(c.g));
    out.put(static_cast<char>(c.b));
  }
  return static_cast<bool>(out);
}

}  // namespace darpa::gfx
