// Canvas: drawing operations over a Bitmap.
//
// Implements exactly the vocabulary the simulated Android view system needs
// to paint realistic app screens — filled/stroked/rounded rectangles,
// circles, gradients, an "X" close glyph, and pseudo-text. Pseudo-text
// renders each character as a deterministic 3x5 dot-matrix pattern derived
// from the character code: it produces text-like high-frequency texture
// without a font engine, which is all the CV pipeline (and the paper's
// text-masking experiment, Fig. 7) needs.
#pragma once

#include <string_view>

#include "gfx/bitmap.h"

namespace darpa::gfx {

class Canvas {
 public:
  /// The canvas borrows the bitmap; the bitmap must outlive the canvas.
  explicit Canvas(Bitmap& target) : target_(&target) {}

  [[nodiscard]] Bitmap& bitmap() { return *target_; }
  [[nodiscard]] const Bitmap& bitmap() const { return *target_; }

  /// Fills a rect, alpha-blending if the color is translucent.
  void fillRect(const Rect& r, Color c);

  /// Strokes a rect border of the given thickness (drawn inside the rect).
  void strokeRect(const Rect& r, Color c, int thickness = 2);

  /// Filled rounded rect; radius clamped to half the shorter side.
  void fillRoundedRect(const Rect& r, Color c, int radius);

  /// Rounded-rect outline ring of the given thickness (inside the rect).
  void strokeRoundedRect(const Rect& r, Color c, int radius, int thickness = 2);

  /// Filled circle.
  void fillCircle(Point center, int radius, Color c);

  /// Ring (circle outline) of given thickness.
  void strokeCircle(Point center, int radius, Color c, int thickness = 2);

  /// Vertical linear gradient from `top` to `bottom` color.
  void fillVerticalGradient(const Rect& r, Color top, Color bottom);

  /// 1-px line (Bresenham), alpha-blended.
  void drawLine(Point a, Point b, Color c);

  /// An "X" glyph inside the rect — the canonical close-button mark.
  void drawCross(const Rect& r, Color c, int thickness = 2);

  /// Pseudo-text: dot-matrix glyphs at the given cell size. `cell` is the
  /// pixel size of one dot; a glyph is 3x5 dots plus 1 dot spacing. Returns
  /// the bounding rect actually painted.
  Rect drawPseudoText(Point origin, std::string_view text, Color c, int cell);

  /// Width in pixels that drawPseudoText would occupy for `text` at `cell`.
  [[nodiscard]] static int pseudoTextWidth(std::string_view text, int cell);
  [[nodiscard]] static int pseudoTextHeight(int cell) { return 5 * cell; }

  /// Composites another bitmap at `origin`, honoring per-pixel alpha and a
  /// whole-layer alpha multiplier (0..255).
  void drawBitmap(const Bitmap& src, Point origin, std::uint8_t layerAlpha = 255);

 private:
  Bitmap* target_;
};

}  // namespace darpa::gfx
