// A from-scratch RGBA bitmap — the substrate for "screenshots".
//
// In the paper, DARPA's CV model consumes real screenshots taken through the
// Accessibility Service. In this reproduction the WindowManager composites
// live windows into a Bitmap, so the detector consumes actual pixel data and
// the visual asymmetry of an AUI (size, position, contrast, transparency) is
// genuinely present in the input rather than faked through metadata.
//
// Storage is a refcounted pixel slab so a frame captured once can be shared
// zero-copy across the analysis pipeline, the detection executors, and the
// fleet (core/screen_frame.h), and so slabs can be recycled through a
// FramePool (gfx/frame_pool.h) instead of re-allocated per capture. Because
// a stray `Bitmap b = other;` used to silently deep-copy ~1 MB of pixels,
// the copy constructor is deleted: copies must be spelled clone().
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/color.h"
#include "util/geometry.h"

// Bounds checking for Bitmap::at/set. On by default in debug builds (NDEBUG
// unset); the sanitizer CI lanes force it on explicitly (-DDARPA_BOUNDS_CHECKS=1)
// so the release-optimized default build keeps the accessors branch-free.
#ifndef DARPA_BOUNDS_CHECKS
#ifdef NDEBUG
#define DARPA_BOUNDS_CHECKS 0
#else
#define DARPA_BOUNDS_CHECKS 1
#endif
#endif

namespace darpa::gfx {

class FramePool;

/// Where a bitmap's pixel slab came from — the provenance the WorkLedger's
/// allocation axis is recorded from (heap alloc vs. pooled reuse).
enum class SlabSource : std::uint8_t {
  kNone,        ///< Empty bitmap, no slab.
  kHeap,        ///< Plain heap allocation (no pool involved).
  kPoolFresh,   ///< A FramePool slab that had to be newly allocated.
  kPoolReused,  ///< A recycled FramePool slab — no heap traffic.
};

[[nodiscard]] const char* slabSourceName(SlabSource source);

/// The shared flat pixel buffer behind a Bitmap. Pool-recycled slabs keep
/// their vector capacity across reuses, so acquire() after release() costs
/// an assign() (pixel overwrite), not an allocation.
struct PixelSlab {
  std::vector<Color> pixels;
  SlabSource source = SlabSource::kHeap;
};

class Bitmap {
 public:
  Bitmap() = default;
  Bitmap(int width, int height, Color fill = colors::kWhite);

  // Pixels are a shared slab; an implicit copy would either alias mutable
  // state or silently deep-copy a full screen. Copies are therefore
  // explicit (clone()); moves transfer the slab and leave the source empty.
  Bitmap(const Bitmap&) = delete;
  Bitmap& operator=(const Bitmap&) = delete;
  Bitmap(Bitmap&& other) noexcept;
  Bitmap& operator=(Bitmap&& other) noexcept;
  ~Bitmap() = default;

  /// Deep copy into a fresh heap slab (provenance kHeap).
  [[nodiscard]] Bitmap clone() const;

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] Size size() const { return {width_, height_}; }
  [[nodiscard]] Rect bounds() const { return {0, 0, width_, height_}; }
  [[nodiscard]] bool empty() const { return width_ <= 0 || height_ <= 0; }
  [[nodiscard]] std::size_t pixelCount() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }
  /// Bytes of pixel payload — the unit of the ledger's allocation axis.
  [[nodiscard]] std::size_t pixelBytes() const {
    return pixelCount() * sizeof(Color);
  }
  /// Provenance of the pixel slab (kNone for an empty bitmap).
  [[nodiscard]] SlabSource source() const {
    return slab_ ? slab_->source : SlabSource::kNone;
  }

  /// Pixel access; caller guarantees (x, y) is in bounds. Debug and
  /// sanitizer builds assert the contract (DARPA_BOUNDS_CHECKS).
  [[nodiscard]] Color at(int x, int y) const {
#if DARPA_BOUNDS_CHECKS
    checkBounds(x, y);
#endif
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  void set(int x, int y, Color c) {
#if DARPA_BOUNDS_CHECKS
    checkBounds(x, y);
#endif
    data_[static_cast<std::size_t>(y) * width_ + x] = c;
  }

  /// Bounds-checked read; out-of-range returns transparent.
  [[nodiscard]] Color atClamped(int x, int y) const;

  /// Alpha-blends `c` onto the pixel if in bounds, else no-op.
  void blendPixel(int x, int y, Color c);

  void fill(Color c);
  void fillRect(const Rect& r, Color c);

  /// Copy of the sub-region clipped to bounds.
  [[nodiscard]] Bitmap crop(const Rect& r) const;

  /// Box-filter downscale to the given size (both dims >= 1).
  [[nodiscard]] Bitmap downscale(int newWidth, int newHeight) const;

  /// Separable box blur with the given radius (>= 1), clipped to `region`.
  void boxBlur(const Rect& region, int radius);

  /// Mean color over a region (clipped to bounds); white if region is empty.
  [[nodiscard]] Color meanColor(const Rect& r) const;

  /// Mean luma (0..255) over a region clipped to bounds.
  [[nodiscard]] double meanLuma(const Rect& r) const;

  /// Luma standard deviation over a region — a cheap texture measure.
  [[nodiscard]] double lumaStddev(const Rect& r) const;

  /// Writes a binary PPM (P6) file; returns false on I/O failure. Alpha is
  /// dropped (screenshots are opaque after compositing).
  bool writePpm(const std::string& path) const;

  /// Value equality: same dimensions and same pixel contents (slab identity
  /// and provenance are irrelevant — a pooled and a heap bitmap compare
  /// equal when they render the same picture).
  friend bool operator==(const Bitmap& a, const Bitmap& b);

 private:
  friend class FramePool;
  using SlabPtr = std::shared_ptr<PixelSlab>;

  /// Adopts an externally prepared slab (FramePool::acquire). The slab's
  /// pixel vector must already hold width*height pixels.
  Bitmap(int width, int height, SlabPtr slab);

#if DARPA_BOUNDS_CHECKS
  void checkBounds(int x, int y) const {
    if (x < 0 || y < 0 || x >= width_ || y >= height_) {
      boundsFailure(x, y);
    }
  }
  [[noreturn]] void boundsFailure(int x, int y) const;
#endif

  int width_ = 0;
  int height_ = 0;
  SlabPtr slab_;
  Color* data_ = nullptr;  ///< Cached slab_->pixels.data().
};

}  // namespace darpa::gfx
