// A from-scratch RGBA bitmap — the substrate for "screenshots".
//
// In the paper, DARPA's CV model consumes real screenshots taken through the
// Accessibility Service. In this reproduction the WindowManager composites
// live windows into a Bitmap, so the detector consumes actual pixel data and
// the visual asymmetry of an AUI (size, position, contrast, transparency) is
// genuinely present in the input rather than faked through metadata.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/color.h"
#include "util/geometry.h"

namespace darpa::gfx {

class Bitmap {
 public:
  Bitmap() = default;
  Bitmap(int width, int height, Color fill = colors::kWhite);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] Size size() const { return {width_, height_}; }
  [[nodiscard]] Rect bounds() const { return {0, 0, width_, height_}; }
  [[nodiscard]] bool empty() const { return width_ <= 0 || height_ <= 0; }
  [[nodiscard]] std::size_t pixelCount() const { return pixels_.size(); }

  /// Unchecked pixel access; caller guarantees (x, y) is in bounds.
  [[nodiscard]] Color at(int x, int y) const {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  void set(int x, int y, Color c) {
    pixels_[static_cast<std::size_t>(y) * width_ + x] = c;
  }

  /// Bounds-checked read; out-of-range returns transparent.
  [[nodiscard]] Color atClamped(int x, int y) const;

  /// Alpha-blends `c` onto the pixel if in bounds, else no-op.
  void blendPixel(int x, int y, Color c);

  void fill(Color c);
  void fillRect(const Rect& r, Color c);

  /// Copy of the sub-region clipped to bounds.
  [[nodiscard]] Bitmap crop(const Rect& r) const;

  /// Box-filter downscale to the given size (both dims >= 1).
  [[nodiscard]] Bitmap downscale(int newWidth, int newHeight) const;

  /// Separable box blur with the given radius (>= 1), clipped to `region`.
  void boxBlur(const Rect& region, int radius);

  /// Mean color over a region (clipped to bounds); white if region is empty.
  [[nodiscard]] Color meanColor(const Rect& r) const;

  /// Mean luma (0..255) over a region clipped to bounds.
  [[nodiscard]] double meanLuma(const Rect& r) const;

  /// Luma standard deviation over a region — a cheap texture measure.
  [[nodiscard]] double lumaStddev(const Rect& r) const;

  /// Writes a binary PPM (P6) file; returns false on I/O failure. Alpha is
  /// dropped (screenshots are opaque after compositing).
  bool writePpm(const std::string& path) const;

  friend bool operator==(const Bitmap&, const Bitmap&) = default;

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Color> pixels_;
};

}  // namespace darpa::gfx
