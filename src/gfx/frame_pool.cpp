#include "gfx/frame_pool.h"

#include <algorithm>
#include <utility>

namespace darpa::gfx {

std::size_t FramePool::sizeClass(std::size_t pixelCount) {
  std::size_t cls = 4096;
  while (cls < pixelCount) cls <<= 1;
  return cls;
}

void FramePool::noteFootprintLocked() {
  stats_.highWaterBytes = std::max(
      stats_.highWaterBytes, stats_.outstandingBytes + stats_.parkedBytes);
}

Bitmap FramePool::acquire(int width, int height, Color fill, int sessionTag) {
  width = std::max(width, 0);
  height = std::max(height, 0);
  if (width == 0 || height == 0) return {};

  const std::size_t count =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  const std::size_t cls = sizeClass(count);
  const std::size_t clsBytes = cls * sizeof(Color);

  std::unique_ptr<PixelSlab> slab;
  {
    const util::LockGuard lock(mutex_);
    ++stats_.acquires;

    // Quota / cap checks against the slab's *class* footprint (that is
    // what the free lists retain). A denied acquire is not an error: the
    // caller gets a plain heap bitmap, exactly the un-pooled cost.
    const std::size_t sessionOutstanding = sessionBytes_[sessionTag];
    const bool overSessionQuota =
        options_.sessionQuotaBytes != 0 &&
        sessionOutstanding + clsBytes > options_.sessionQuotaBytes;
    const bool overPoolCap =
        options_.maxBytes != 0 &&
        stats_.outstandingBytes + stats_.parkedBytes + clsBytes >
            options_.maxBytes;
    // A parked slab of the right class is already inside the pool cap, so
    // only the per-session quota can refuse it.
    auto it = free_.find(cls);
    const bool haveParked = it != free_.end() && !it->second.empty();
    if (overSessionQuota || (overPoolCap && !haveParked)) {
      ++stats_.backpressured;
      return Bitmap(width, height, fill);
    }

    if (haveParked) {
      slab = std::move(it->second.back());
      it->second.pop_back();
      ++stats_.poolHits;
      stats_.parkedBytes -= clsBytes;
      stats_.reusedBytes += static_cast<std::int64_t>(clsBytes);
    } else {
      ++stats_.poolMisses;
    }
    stats_.outstandingBytes += clsBytes;
    sessionBytes_[sessionTag] = sessionOutstanding + clsBytes;
    noteFootprintLocked();
  }

  const bool reused = slab != nullptr;
  if (!reused) {
    slab = std::make_unique<PixelSlab>();
    slab->pixels.reserve(cls);  // full class capacity: reuse never reallocs
  }
  // assign() overwrites within retained capacity — pixel contents after a
  // reuse are byte-identical to a fresh allocation with the same fill.
  slab->pixels.assign(count, fill);
  slab->source = reused ? SlabSource::kPoolReused : SlabSource::kPoolFresh;

  Bitmap::SlabPtr shared(slab.release(), SlabReturner{this, cls, sessionTag});
  return Bitmap(width, height, std::move(shared));
}

void FramePool::release(std::unique_ptr<PixelSlab> slab,
                        std::size_t classPixels, int sessionTag) {
  const std::size_t clsBytes = classPixels * sizeof(Color);
  const util::LockGuard lock(mutex_);
  ++stats_.releases;
  stats_.outstandingBytes -= std::min(stats_.outstandingBytes, clsBytes);
  auto session = sessionBytes_.find(sessionTag);
  if (session != sessionBytes_.end()) {
    session->second -= std::min(session->second, clsBytes);
  }
  // Park for reuse unless that would push the pool past its cap — then the
  // slab simply dies (unique_ptr frees it) and the footprint shrinks.
  const bool overCap =
      options_.maxBytes != 0 &&
      stats_.outstandingBytes + stats_.parkedBytes + clsBytes >
          options_.maxBytes;
  if (!overCap) {
    stats_.parkedBytes += clsBytes;
    free_[classPixels].push_back(std::move(slab));
    noteFootprintLocked();
  }
}

FramePool::Stats FramePool::stats() const {
  const util::LockGuard lock(mutex_);
  return stats_;
}

}  // namespace darpa::gfx
