#include "gfx/frame_pool.h"

#include <algorithm>
#include <utility>

namespace darpa::gfx {

FramePool::FramePool(Options options) : options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  shards_.reserve(static_cast<std::size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shardParkCap_ =
      options_.maxBytes == 0
          ? 0
          : options_.maxBytes / static_cast<std::size_t>(options_.shards);
}

std::size_t FramePool::sizeClass(std::size_t pixelCount) {
  std::size_t cls = 4096;
  while (cls < pixelCount) cls <<= 1;
  return cls;
}

Bitmap FramePool::acquire(int width, int height, Color fill, int sessionTag) {
  width = std::max(width, 0);
  height = std::max(height, 0);
  if (width == 0 || height == 0) return {};

  const std::size_t count =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  const std::size_t cls = sizeClass(count);
  const std::size_t clsBytes = cls * sizeof(Color);

  std::unique_ptr<PixelSlab> slab;
  Shard& shard = shardFor(sessionTag);
  {
    const util::LockGuard lock(shard.mutex);
    ++shard.stats.acquires;

    // Quota check against the slab's *class* footprint (that is what the
    // free lists retain). A denied acquire is not an error: the caller
    // gets a plain heap bitmap, exactly the un-pooled cost.
    const std::size_t sessionOutstanding = shard.sessionBytes[sessionTag];
    if (options_.sessionQuotaBytes != 0 &&
        sessionOutstanding + clsBytes > options_.sessionQuotaBytes) {
      ++shard.stats.backpressured;
      return Bitmap(width, height, fill);
    }

    // Local free list first: a parked slab is already inside the pool cap,
    // so taking it needs no cap check (parked -> outstanding, net zero).
    auto it = shard.free.find(cls);
    if (it != shard.free.end() && !it->second.empty()) {
      slab = std::move(it->second.back());
      it->second.pop_back();
      ++shard.stats.poolHits;
      shard.stats.parkedBytes -= clsBytes;
      shard.stats.reusedBytes += static_cast<std::int64_t>(clsBytes);
    } else {
      // Dry shard: refill from the global spill (also already inside the
      // cap) before considering the heap. Legal nesting: kFramePool (held)
      // -> kFramePoolSpill.
      {
        const util::LockGuard spillLock(spill_.mutex);
        auto spillIt = spill_.free.find(cls);
        if (spillIt != spill_.free.end() && !spillIt->second.empty()) {
          slab = std::move(spillIt->second.back());
          spillIt->second.pop_back();
          spill_.parkedBytes -= clsBytes;
          ++spill_.out;
        }
      }
      if (slab != nullptr) {
        ++shard.stats.poolHits;
        shard.stats.reusedBytes += static_cast<std::int64_t>(clsBytes);
      } else {
        // Heap it is — unless that would push the pool past its byte cap.
        if (options_.maxBytes != 0 &&
            totalBytes_.load(std::memory_order_relaxed) + clsBytes >
                options_.maxBytes) {
          ++shard.stats.backpressured;
          return Bitmap(width, height, fill);
        }
        ++shard.stats.poolMisses;
        totalBytes_.fetch_add(clsBytes, std::memory_order_relaxed);
      }
    }
    shard.stats.outstandingBytes += clsBytes;
    shard.sessionBytes[sessionTag] = sessionOutstanding + clsBytes;
    shard.noteFootprintLocked();
  }

  const bool reused = slab != nullptr;
  if (!reused) {
    slab = std::make_unique<PixelSlab>();
    slab->pixels.reserve(cls);  // full class capacity: reuse never reallocs
  }
  // assign() overwrites within retained capacity — pixel contents after a
  // reuse are byte-identical to a fresh allocation with the same fill.
  slab->pixels.assign(count, fill);
  slab->source = reused ? SlabSource::kPoolReused : SlabSource::kPoolFresh;

  Bitmap::SlabPtr shared(slab.release(), SlabReturner{this, cls, sessionTag});
  return Bitmap(width, height, std::move(shared));
}

void FramePool::release(std::unique_ptr<PixelSlab> slab,
                        std::size_t classPixels, int sessionTag) {
  const std::size_t clsBytes = classPixels * sizeof(Color);
  Shard& shard = shardFor(sessionTag);
  const util::LockGuard lock(shard.mutex);
  ++shard.stats.releases;
  shard.stats.outstandingBytes -=
      std::min(shard.stats.outstandingBytes, clsBytes);
  auto session = shard.sessionBytes.find(sessionTag);
  if (session != shard.sessionBytes.end()) {
    session->second -= std::min(session->second, clsBytes);
  }
  // Every pooled slab added exactly clsBytes at acquire (fresh) or kept it
  // (reuse), so the unconditional subtract cannot underflow.
  totalBytes_.fetch_sub(clsBytes, std::memory_order_relaxed);

  // Park for reuse unless that would push the pool past its cap — then the
  // slab simply dies (unique_ptr frees it) and the footprint shrinks.
  if (options_.maxBytes != 0 &&
      totalBytes_.load(std::memory_order_relaxed) + clsBytes >
          options_.maxBytes) {
    return;
  }
  totalBytes_.fetch_add(clsBytes, std::memory_order_relaxed);

  // Full shard under a cap: overflow spills globally so a dry shard can
  // refill it later instead of hitting the heap. (Unreachable at
  // shards == 1: local parked bytes can never exceed maxBytes when the
  // global cap above held.)
  if (shards_.size() > 1 && shardParkCap_ != 0 &&
      shard.stats.parkedBytes + clsBytes > shardParkCap_) {
    const util::LockGuard spillLock(spill_.mutex);
    spill_.parkedBytes += clsBytes;
    spill_.highWaterBytes = std::max(spill_.highWaterBytes, spill_.parkedBytes);
    ++spill_.in;
    spill_.free[classPixels].push_back(std::move(slab));
    return;
  }

  shard.stats.parkedBytes += clsBytes;
  shard.free[classPixels].push_back(std::move(slab));
  shard.noteFootprintLocked();
}

FramePool::Stats FramePool::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    const util::LockGuard lock(shard->mutex);
    const Stats& s = shard->stats;
    total.acquires += s.acquires;
    total.poolHits += s.poolHits;
    total.poolMisses += s.poolMisses;
    total.backpressured += s.backpressured;
    total.releases += s.releases;
    total.outstandingBytes += s.outstandingBytes;
    total.parkedBytes += s.parkedBytes;
    total.highWaterBytes += s.highWaterBytes;
    total.reusedBytes += s.reusedBytes;
  }
  {
    const util::LockGuard lock(spill_.mutex);
    total.parkedBytes += spill_.parkedBytes;
    total.highWaterBytes += spill_.highWaterBytes;
    total.spillIn = spill_.in;
    total.spillOut = spill_.out;
    total.spillParkedBytes = spill_.parkedBytes;
  }
  return total;
}

}  // namespace darpa::gfx
