#include "gfx/canvas.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>

namespace darpa::gfx {

void Canvas::fillRect(const Rect& r, Color c) {
  const Rect clipped = r.intersect(target_->bounds());
  if (c.a == 255) {
    target_->fillRect(clipped, c);
    return;
  }
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    for (int x = clipped.left(); x < clipped.right(); ++x) {
      target_->blendPixel(x, y, c);
    }
  }
}

void Canvas::strokeRect(const Rect& r, Color c, int thickness) {
  thickness = std::clamp(thickness, 1, std::max(1, std::min(r.width, r.height) / 2));
  fillRect({r.x, r.y, r.width, thickness}, c);                              // top
  fillRect({r.x, r.bottom() - thickness, r.width, thickness}, c);           // bottom
  fillRect({r.x, r.y + thickness, thickness, r.height - 2 * thickness}, c); // left
  fillRect({r.right() - thickness, r.y + thickness, thickness,
            r.height - 2 * thickness},
           c);                                                              // right
}

void Canvas::fillRoundedRect(const Rect& r, Color c, int radius) {
  radius = std::clamp(radius, 0, std::min(r.width, r.height) / 2);
  if (radius == 0) {
    fillRect(r, c);
    return;
  }
  const Rect clipped = r.intersect(target_->bounds());
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    for (int x = clipped.left(); x < clipped.right(); ++x) {
      // Distance to the nearest corner disc center; outside the disc in a
      // corner square means outside the rounded rect.
      const int cx = std::clamp(x, r.x + radius, r.right() - 1 - radius);
      const int cy = std::clamp(y, r.y + radius, r.bottom() - 1 - radius);
      const int dx = x - cx;
      const int dy = y - cy;
      if (dx * dx + dy * dy <= radius * radius) target_->blendPixel(x, y, c);
    }
  }
}

namespace {
/// Whether (x, y) lies inside the rounded rect (r, radius).
bool insideRounded(const Rect& r, int radius, int x, int y) {
  if (!r.contains(Point{x, y})) return false;
  const int cx = std::clamp(x, r.x + radius, r.right() - 1 - radius);
  const int cy = std::clamp(y, r.y + radius, r.bottom() - 1 - radius);
  const int dx = x - cx;
  const int dy = y - cy;
  return dx * dx + dy * dy <= radius * radius;
}
}  // namespace

void Canvas::strokeRoundedRect(const Rect& r, Color c, int radius,
                               int thickness) {
  radius = std::clamp(radius, 0, std::min(r.width, r.height) / 2);
  thickness = std::max(thickness, 1);
  const Rect inner = r.inflated(-thickness);
  const int innerRadius = std::max(radius - thickness, 0);
  const Rect clipped = r.intersect(target_->bounds());
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    for (int x = clipped.left(); x < clipped.right(); ++x) {
      if (insideRounded(r, radius, x, y) &&
          !(inner.width > 0 && inner.height > 0 &&
            insideRounded(inner, innerRadius, x, y))) {
        target_->blendPixel(x, y, c);
      }
    }
  }
}

void Canvas::fillCircle(Point center, int radius, Color c) {
  const Rect box{center.x - radius, center.y - radius, 2 * radius + 1,
                 2 * radius + 1};
  const Rect clipped = box.intersect(target_->bounds());
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    for (int x = clipped.left(); x < clipped.right(); ++x) {
      const int dx = x - center.x;
      const int dy = y - center.y;
      if (dx * dx + dy * dy <= radius * radius) target_->blendPixel(x, y, c);
    }
  }
}

void Canvas::strokeCircle(Point center, int radius, Color c, int thickness) {
  const int inner = std::max(radius - thickness, 0);
  const Rect box{center.x - radius, center.y - radius, 2 * radius + 1,
                 2 * radius + 1};
  const Rect clipped = box.intersect(target_->bounds());
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    for (int x = clipped.left(); x < clipped.right(); ++x) {
      const int dx = x - center.x;
      const int dy = y - center.y;
      const int d2 = dx * dx + dy * dy;
      if (d2 <= radius * radius && d2 >= inner * inner) {
        target_->blendPixel(x, y, c);
      }
    }
  }
}

void Canvas::fillVerticalGradient(const Rect& r, Color top, Color bottom) {
  const Rect clipped = r.intersect(target_->bounds());
  for (int y = clipped.top(); y < clipped.bottom(); ++y) {
    const double t =
        r.height <= 1 ? 0.0 : static_cast<double>(y - r.y) / (r.height - 1);
    const Color row = lerp(top, bottom, t);
    for (int x = clipped.left(); x < clipped.right(); ++x) {
      target_->blendPixel(x, y, row);
    }
  }
}

void Canvas::drawLine(Point a, Point b, Color c) {
  int x0 = a.x, y0 = a.y;
  const int dx = std::abs(b.x - x0), sx = x0 < b.x ? 1 : -1;
  const int dy = -std::abs(b.y - y0), sy = y0 < b.y ? 1 : -1;
  int err = dx + dy;
  while (true) {
    target_->blendPixel(x0, y0, c);
    if (x0 == b.x && y0 == b.y) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void Canvas::drawCross(const Rect& r, Color c, int thickness) {
  const int inset = std::max(std::min(r.width, r.height) / 5, 1);
  const Point tl{r.x + inset, r.y + inset};
  const Point br{r.right() - 1 - inset, r.bottom() - 1 - inset};
  const Point tr{r.right() - 1 - inset, r.y + inset};
  const Point bl{r.x + inset, r.bottom() - 1 - inset};
  for (int t = 0; t < thickness; ++t) {
    drawLine({tl.x + t, tl.y}, {br.x, br.y - t}, c);
    drawLine({tl.x, tl.y + t}, {br.x - t, br.y}, c);
    drawLine({tr.x - t, tr.y}, {bl.x, bl.y - t}, c);
    drawLine({tr.x, tr.y + t}, {bl.x + t, bl.y}, c);
  }
}

namespace {
// Deterministic 3x5 dot pattern per character. Mixing the char code through
// an integer hash yields a stable 15-bit mask; we force a minimum number of
// set dots so every glyph has visible ink.
std::uint16_t glyphMask(char ch) {
  std::uint32_t h = static_cast<std::uint32_t>(static_cast<unsigned char>(ch));
  h ^= h << 13;
  h *= 0x9e3779b1u;
  h ^= h >> 15;
  std::uint16_t mask = static_cast<std::uint16_t>(h & 0x7fff);
  if (std::popcount(static_cast<unsigned>(mask)) < 5) mask |= 0x2955;
  return mask;
}
}  // namespace

Rect Canvas::drawPseudoText(Point origin, std::string_view text, Color c,
                            int cell) {
  cell = std::max(cell, 1);
  int x = origin.x;
  for (char ch : text) {
    if (ch == ' ') {
      x += 3 * cell;
      continue;
    }
    const std::uint16_t mask = glyphMask(ch);
    for (int row = 0; row < 5; ++row) {
      for (int col = 0; col < 3; ++col) {
        if (mask & (1u << (row * 3 + col))) {
          fillRect({x + col * cell, origin.y + row * cell, cell, cell}, c);
        }
      }
    }
    x += 4 * cell;
  }
  return {origin.x, origin.y, x - origin.x, 5 * cell};
}

int Canvas::pseudoTextWidth(std::string_view text, int cell) {
  cell = std::max(cell, 1);
  int w = 0;
  for (char ch : text) w += (ch == ' ' ? 3 : 4) * cell;
  return w;
}

void Canvas::drawBitmap(const Bitmap& src, Point origin,
                        std::uint8_t layerAlpha) {
  if (layerAlpha == 0) return;
  for (int y = 0; y < src.height(); ++y) {
    for (int x = 0; x < src.width(); ++x) {
      Color c = src.at(x, y);
      if (layerAlpha != 255) {
        c.a = static_cast<std::uint8_t>(c.a * layerAlpha / 255);
      }
      if (c.a == 0) continue;
      target_->blendPixel(origin.x + x, origin.y + y, c);
    }
  }
}

}  // namespace darpa::gfx
