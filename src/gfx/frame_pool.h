// FramePool — slab recycling for screenshot-sized pixel buffers.
//
// The fleet's perception path allocates one full-screen bitmap per
// stabilized screen per session; at 64+ sessions that is megabytes of heap
// churn per simulated second for buffers with identical size and a
// lifetime of exactly one analysis pass. The pool turns that steady state
// allocation-free: released slabs park in size-class free lists (vector
// capacity retained), and acquire() re-fills a recycled slab instead of
// touching the heap.
//
// Sharding (work-stealing fleet scale): with one global free list, every
// capture and every slab release in the fleet funnels through a single
// mutex. The pool therefore shards by session: sessionTag % shards picks a
// shard with its own RankedMutex (kFramePool), free lists, and per-session
// quota table, so sessions on different shards never contend. A global
// SPILL list (kFramePoolSpill, acquired under a shard lock) rebalances
// under byte caps: a shard whose local lists are full parks overflow slabs
// in the spill instead of freeing them, and a shard whose lists are empty
// refills from the spill before touching the heap. shards = 1 (the
// default) reproduces the single-lock pool decision-for-decision.
//
// Policy knobs:
//  * maxBytes — fleet-level cap on bytes the pool manages (outstanding +
//    parked + spilled). 0 = unlimited. With S shards, each shard parks at
//    most maxBytes/S locally; overflow goes to the spill, still under the
//    global cap.
//  * sessionQuotaBytes — per-session cap on outstanding pooled bytes,
//    keyed by the sessionTag passed to acquire(). 0 = unlimited.
//  * shards — free-list shard count (sessionTag % shards). <= 1 (or 0,
//    "driver default") = the unsharded pool.
//
// Backpressure NEVER blocks: when a cap is hit, acquire() falls back to a
// plain heap bitmap (provenance kHeap) and counts the event. Blocking
// would make frame capture depend on cross-session timing and break the
// fleet's W=1 == W=4 determinism; a fallback allocation only costs what
// the un-pooled code path always paid. Pixel contents are identical either
// way (every acquire fills the buffer), which is what keeps fig8/Table
// III/Table VII outputs byte-identical with pooling on or off — and with
// any shard count. (With shards > 1 the maxBytes cap check reads a relaxed
// atomic total, so WHICH acquire gets backpressured can vary run to run;
// that only moves bytes between provenances, never results.)
//
// Thread safety: acquire() and slab release may run concurrently from
// fleet worker threads; each shard's state is guarded by its RankedMutex
// at LockRank::kFramePool — near-leaf, because slab release runs from
// arbitrary call depth (any last FramePtr drop) and must stay acquirable
// under every other runtime lock. The spill sits one rank above
// (kFramePoolSpill) so it is probed while the shard lock is held. The
// GUARDED_BY annotations below are enforced by the -Wthread-safety CI
// lane. The pool must outlive every bitmap it produced (the Fleet declares
// its pool before its sessions so destruction order guarantees this).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "gfx/bitmap.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace darpa::gfx {

class FramePool {
 public:
  struct Options {
    std::size_t maxBytes = 0;          ///< Pool-wide byte cap (0 = unlimited).
    std::size_t sessionQuotaBytes = 0; ///< Per-sessionTag cap (0 = unlimited).
    int shards = 1;                    ///< Free-list shards (<= 1: unsharded;
                                       ///< 0 lets the fleet pick its worker
                                       ///< count).
  };

  /// Counters, all monotonic except the gauges, summed across shards.
  /// outstandingBytes + parkedBytes is the pool's live footprint;
  /// highWaterBytes is its maximum over the pool's lifetime (the
  /// steady-state working set the DESIGN.md sizing rule is calibrated
  /// from; with shards > 1 it is the sum of per-shard high waters, an
  /// upper bound on the true global peak).
  struct Stats {
    std::int64_t acquires = 0;       ///< All acquire() calls.
    std::int64_t poolHits = 0;       ///< Served from a free list (or spill).
    std::int64_t poolMisses = 0;     ///< Pool had to heap-allocate a slab.
    std::int64_t backpressured = 0;  ///< Cap hit -> plain heap fallback.
    std::int64_t releases = 0;       ///< Slabs returned to the free lists.
    std::size_t outstandingBytes = 0;///< Bytes in live pooled bitmaps.
    std::size_t parkedBytes = 0;     ///< Bytes parked (shard lists + spill).
    std::size_t highWaterBytes = 0;  ///< Max outstanding + parked.
    std::int64_t reusedBytes = 0;    ///< Cumulative bytes served from lists.
    std::int64_t spillIn = 0;        ///< Slabs a full shard parked globally.
    std::int64_t spillOut = 0;       ///< Slabs a dry shard refilled from it.
    std::size_t spillParkedBytes = 0;///< Bytes currently in the spill.

    [[nodiscard]] double hitRate() const {
      const std::int64_t pooled = poolHits + poolMisses;
      return pooled == 0 ? 0.0
                         : static_cast<double>(poolHits) /
                               static_cast<double>(pooled);
    }
  };

  FramePool() : FramePool(Options{}) {}
  explicit FramePool(Options options);
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;
  ~FramePool() = default;

  /// A width x height bitmap filled with `fill`, backed by a recycled slab
  /// when one is available (provenance kPoolReused), a fresh pool slab
  /// otherwise (kPoolFresh), or a plain heap buffer under backpressure
  /// (kHeap). `sessionTag` scopes the per-session quota and selects the
  /// shard. Thread-safe.
  [[nodiscard]] Bitmap acquire(int width, int height,
                               Color fill = colors::kBlack,
                               int sessionTag = 0);

  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] int shardCount() const {
    return static_cast<int>(shards_.size());
  }
  /// Counters summed across shards + spill, each locked one at a time.
  /// Thread-safe; a consistent total only when the pool is quiescent.
  [[nodiscard]] Stats stats() const;

 private:
  /// Free lists are keyed by slab capacity class: pixel counts rounded up
  /// to the next power of two (min 4096) so near-same-size screens share a
  /// list instead of fragmenting into one list per exact size.
  [[nodiscard]] static std::size_t sizeClass(std::size_t pixelCount);

  using FreeLists =
      std::map<std::size_t, std::vector<std::unique_ptr<PixelSlab>>>;

  /// One shard: the sessions with sessionTag % shards == index.
  struct Shard {
    mutable util::RankedMutex mutex{util::LockRank::kFramePool,
                                    "gfx.FramePool.shard"};
    /// classPixels -> parked slabs of that capacity class.
    FreeLists free GUARDED_BY(mutex);
    /// Outstanding pooled bytes per sessionTag (quota accounting; a tag
    /// always maps to this one shard, so the quota is exact).
    std::map<int, std::size_t> sessionBytes GUARDED_BY(mutex);
    Stats stats GUARDED_BY(mutex);

    void noteFootprintLocked() REQUIRES(mutex) {
      if (stats.outstandingBytes + stats.parkedBytes > stats.highWaterBytes) {
        stats.highWaterBytes = stats.outstandingBytes + stats.parkedBytes;
      }
    }
  };

  /// The global overflow tier. Rank kFramePoolSpill: probed while the
  /// caller's shard lock (kFramePool) is held.
  struct Spill {
    mutable util::RankedMutex mutex{util::LockRank::kFramePoolSpill,
                                    "gfx.FramePool.spill"};
    FreeLists free GUARDED_BY(mutex);
    std::size_t parkedBytes GUARDED_BY(mutex) = 0;
    std::size_t highWaterBytes GUARDED_BY(mutex) = 0;
    std::int64_t in GUARDED_BY(mutex) = 0;
    std::int64_t out GUARDED_BY(mutex) = 0;
  };

  [[nodiscard]] Shard& shardFor(int sessionTag) {
    const std::size_t tag = static_cast<std::size_t>(
        sessionTag < 0 ? -(sessionTag + 1) : sessionTag);
    return *shards_[tag % shards_.size()];
  }

  /// Deleter hook: the last Bitmap/ScreenFrame reference dropped; park the
  /// slab for reuse (or free it when over cap).
  void release(std::unique_ptr<PixelSlab> slab, std::size_t classPixels,
               int sessionTag);

  /// shared_ptr deleter carrying the routing info release() needs.
  struct SlabReturner {
    FramePool* pool;
    std::size_t classPixels;
    int sessionTag;
    void operator()(PixelSlab* slab) const {
      pool->release(std::unique_ptr<PixelSlab>(slab), classPixels,
                    sessionTag);
    }
  };

  Options options_;  ///< Immutable after construction; read without locks.
  /// Per-shard cap on LOCALLY parked bytes (maxBytes / shards; 0 when
  /// uncapped). Overflow beyond it spills globally.
  std::size_t shardParkCap_ = 0;
  /// outstanding + parked + spilled, pool-wide. Mutated only under some
  /// shard (or spill) lock, but read for the maxBytes check under a
  /// DIFFERENT shard's lock, hence atomic. With shards == 1 every access
  /// is under the single shard lock, so cap decisions are exact — the
  /// unsharded pool's behavior, decision for decision.
  std::atomic<std::size_t> totalBytes_{0};
  /// Fixed after construction; Shard is immovable (RankedMutex).
  std::vector<std::unique_ptr<Shard>> shards_;
  Spill spill_;
};

}  // namespace darpa::gfx
