// FramePool — slab recycling for screenshot-sized pixel buffers.
//
// The fleet's perception path allocates one full-screen bitmap per
// stabilized screen per session; at 64+ sessions that is megabytes of heap
// churn per simulated second for buffers with identical size and a
// lifetime of exactly one analysis pass. The pool turns that steady state
// allocation-free: released slabs park in size-class free lists (vector
// capacity retained), and acquire() re-fills a recycled slab instead of
// touching the heap.
//
// Policy knobs:
//  * maxBytes — fleet-level cap on bytes the pool manages (outstanding +
//    parked). 0 = unlimited.
//  * sessionQuotaBytes — per-session cap on outstanding pooled bytes,
//    keyed by the sessionTag passed to acquire(). 0 = unlimited.
//
// Backpressure NEVER blocks: when a cap is hit, acquire() falls back to a
// plain heap bitmap (provenance kHeap) and counts the event. Blocking
// would make frame capture depend on cross-session timing and break the
// fleet's W=1 == W=4 determinism; a fallback allocation only costs what
// the un-pooled code path always paid. Pixel contents are identical either
// way (every acquire fills the buffer), which is what keeps fig8/Table
// III/Table VII outputs byte-identical with pooling on or off.
//
// Thread safety: acquire() and slab release may run concurrently from
// fleet worker threads; all state is guarded by one RankedMutex at
// LockRank::kFramePool — the leaf rank, because slab release runs from
// arbitrary call depth (any last FramePtr drop) and must stay acquirable
// under every other runtime lock. The GUARDED_BY annotations below are
// enforced by the -Wthread-safety CI lane. The pool must outlive every
// bitmap it produced (the Fleet declares its pool before its sessions so
// destruction order guarantees this).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "gfx/bitmap.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace darpa::gfx {

class FramePool {
 public:
  struct Options {
    std::size_t maxBytes = 0;          ///< Pool-wide byte cap (0 = unlimited).
    std::size_t sessionQuotaBytes = 0; ///< Per-sessionTag cap (0 = unlimited).
  };

  /// Counters, all monotonic except the gauges. outstandingBytes +
  /// parkedBytes is the pool's live footprint; highWaterBytes is its
  /// maximum over the pool's lifetime (the steady-state working set the
  /// DESIGN.md sizing rule is calibrated from).
  struct Stats {
    std::int64_t acquires = 0;       ///< All acquire() calls.
    std::int64_t poolHits = 0;       ///< Served from a free list.
    std::int64_t poolMisses = 0;     ///< Pool had to heap-allocate a slab.
    std::int64_t backpressured = 0;  ///< Cap hit -> plain heap fallback.
    std::int64_t releases = 0;       ///< Slabs returned to the free lists.
    std::size_t outstandingBytes = 0;///< Bytes in live pooled bitmaps.
    std::size_t parkedBytes = 0;     ///< Bytes parked in free lists.
    std::size_t highWaterBytes = 0;  ///< Max outstanding + parked.
    std::int64_t reusedBytes = 0;    ///< Cumulative bytes served from lists.

    [[nodiscard]] double hitRate() const {
      const std::int64_t pooled = poolHits + poolMisses;
      return pooled == 0 ? 0.0
                         : static_cast<double>(poolHits) /
                               static_cast<double>(pooled);
    }
  };

  FramePool() = default;
  explicit FramePool(Options options) : options_(options) {}
  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;
  ~FramePool() = default;

  /// A width x height bitmap filled with `fill`, backed by a recycled slab
  /// when one is available (provenance kPoolReused), a fresh pool slab
  /// otherwise (kPoolFresh), or a plain heap buffer under backpressure
  /// (kHeap). `sessionTag` scopes the per-session quota. Thread-safe.
  [[nodiscard]] Bitmap acquire(int width, int height,
                               Color fill = colors::kBlack,
                               int sessionTag = 0);

  [[nodiscard]] const Options& options() const { return options_; }
  /// Consistent copy of the counters. Thread-safe.
  [[nodiscard]] Stats stats() const;

 private:
  /// Free lists are keyed by slab capacity class: pixel counts rounded up
  /// to the next power of two (min 4096) so near-same-size screens share a
  /// list instead of fragmenting into one list per exact size.
  [[nodiscard]] static std::size_t sizeClass(std::size_t pixelCount);

  /// Deleter hook: the last Bitmap/ScreenFrame reference dropped; park the
  /// slab for reuse (or free it when over cap).
  void release(std::unique_ptr<PixelSlab> slab, std::size_t classPixels,
               int sessionTag);

  /// shared_ptr deleter carrying the routing info release() needs.
  struct SlabReturner {
    FramePool* pool;
    std::size_t classPixels;
    int sessionTag;
    void operator()(PixelSlab* slab) const {
      pool->release(std::unique_ptr<PixelSlab>(slab), classPixels,
                    sessionTag);
    }
  };

  void noteFootprintLocked() REQUIRES(mutex_);

  Options options_;  ///< Immutable after construction; read without the lock.
  mutable util::RankedMutex mutex_{util::LockRank::kFramePool,
                                   "gfx.FramePool"};
  /// classPixels -> parked slabs of that capacity class.
  std::map<std::size_t, std::vector<std::unique_ptr<PixelSlab>>> free_
      GUARDED_BY(mutex_);
  /// Outstanding pooled bytes per sessionTag (quota accounting).
  std::map<int, std::size_t> sessionBytes_ GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace darpa::gfx
