// WorkStealingScheduler — the fleet's barrier-free session driver.
//
// The lockstep driver advances every session to the epoch target, joins,
// flushes the detection backend, joins again — so one straggler session
// stalls its whole shard, and the whole fleet idles at every barrier. Here
// sessions become resumable TASKS instead: each carries a cursor (the next
// slice of simulated time to run), lives in a per-shard run queue keyed by
// its next-wake simulated time, and is re-enqueued the moment whatever it
// was waiting for resolves. Workers pop the most-behind session from their
// own shard and STEAL the furthest-ahead session from a sibling's queue
// when theirs is dry — no phase, no join, no global drain.
//
// The determinism contract (the reason this is a refactor, not a rewrite):
// merged fig8/Table III/Table VII digests are byte-identical to the
// lockstep driver, for any worker count, any steal interleaving, any rerun.
// Slice j of a session covers exactly what the lockstep driver's phases ran
// for it in epoch j — [drain completions due at target(j-1); advance to
// target(j) = min(duration, j*epoch)] — so the requests a session submits
// during slice j are exactly its lockstep epoch-j submissions. What happens
// to them depends on the backend:
//
//  * Coalescing backends (BatchingExecutor): per-image modeled cost depends
//    on batch composition, so flush group G_j collects every session's
//    slice-j submissions and flushes only when no live session can still
//    add to it (every cursor has passed j — tracked as a multiset of
//    cursors under the control lock). The group's request set equals the
//    lockstep epoch-j flush set, the backend's canonical (sessionId, seq)
//    sort and chunking are unchanged, so batch composition — and every
//    modeled cost derived from it — is identical. Sessions that submitted
//    into G_j park until the flush (their completions are what slice j+1
//    drains); sessions that submitted nothing NEVER wait — the straggler
//    decoupling the lockstep barrier could not offer.
//  * Non-coalescing backends (ThreadPoolExecutor): cost is per-image, so
//    each session's requests are flushed right at its slice end, with no
//    cross-session wait at all. Completions are posted to the session's
//    quiescent looper due at target(j), the same simulated delivery instant
//    as the lockstep barrier.
//  * Synchronous backends (InlineExecutor): detects ran inside the slice;
//    there is nothing to park and nothing to wait for.
//
// For asynchronous backends each session's DarpaConfig executor is a
// SessionInbox — a session-confined capture proxy — so a request NEVER
// reaches the shared backend while its session is mid-slice; the scheduler
// replays inboxes into the backend under LockRank::kFleetFlush, which
// serializes backend flush epochs (the executors' flush-confined statistics
// contract).
//
// After its final slice a session RETIRES: the worker folds its
// stats/ledger/coverage into core::StatMergeShards (LockRank::kStatMerge)
// and drops it from the accounting. There is no quiescent scan; the shard
// merge replays folded sessions in id order, bit-equal to one.
//
// Lock order (see util/lock_rank.h): control (100) -> shard queue (200)
// while enqueuing; flush (150) -> executor queue (300) -> frame pool
// (600/650) while flushing — and a directly-invoked completion under the
// flush lock may probe/publish a SharedVerdictTier stripe (400), still in
// rank order; stat merge (500) alone while folding. Shard
// locks share a rank — a thread never holds two (stealing probes siblings
// only after releasing its own shard).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "core/detection_executor.h"
#include "core/stat_merge.h"
#include "fleet/device_session.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace darpa::fleet {

/// Per-session capture proxy installed as the session's DetectionExecutor
/// when the work-stealing driver fronts an asynchronous backend. The
/// pipeline parks detect requests here; only the worker currently advancing
/// the owning session touches it (session-confined, like the Looper). The
/// scheduler take()s the requests at slice end and replays them into the
/// shared backend. flush() is a no-op on purpose: WHEN the backend flushes
/// is the scheduler's decision, not the pipeline's.
class SessionInbox final : public core::DetectionExecutor {
 public:
  void submit(core::DetectionRequest request) override {
    parked_.push_back(std::move(request));
  }
  void flush() override {}
  [[nodiscard]] std::size_t pendingCount() const override {
    return parked_.size();
  }
  [[nodiscard]] bool synchronous() const override { return false; }
  [[nodiscard]] const char* name() const override { return "ws-inbox"; }

  /// Drains the parked requests (scheduler-side, at slice end).
  [[nodiscard]] std::vector<core::DetectionRequest> take() {
    std::vector<core::DetectionRequest> out;
    out.swap(parked_);
    return out;
  }

 private:
  std::vector<core::DetectionRequest> parked_ CONFINED_TO("advancing worker");
};

/// Wall-clock / scheduling observability for one run. NONE of it feeds a
/// digest — steals, flush counts, and finish times all vary with thread
/// timing by design; the digest-stable outputs live in the sessions'
/// stats/ledgers, which are scheduling-independent.
struct SchedulerMetrics {
  std::int64_t slicesRun = 0;
  std::int64_t localPops = 0;       ///< Sessions taken from the home shard.
  std::int64_t steals = 0;          ///< Sessions taken from a sibling shard.
  std::int64_t groupFlushes = 0;    ///< Closed-group backend flushes.
  std::int64_t sessionFlushes = 0;  ///< Per-session (non-coalescing) flushes.
  /// Wall-clock ms from run() start to each session's retirement, indexed
  /// by session id. The straggler-tail metrics (p99 session lag) in
  /// bench_fleet_throughput derive from this.
  std::vector<double> finishWallMs;
};

class WorkStealingScheduler {
 public:
  struct Config {
    Millis epoch{1000};      ///< Slice quantum (the lockstep epoch length).
    Millis duration{60'000}; ///< Simulated time every session covers.
    int workers = 1;         ///< Worker threads == run-queue shards.
  };

  /// All references are borrowed and must outlive the scheduler. `inboxes`
  /// is empty for synchronous backends (sessions detect inline), otherwise
  /// one per session, already installed as each session's executor.
  /// `statMerge` receives every session's totals at retirement.
  WorkStealingScheduler(std::vector<std::unique_ptr<DeviceSession>>& sessions,
                        const std::vector<std::unique_ptr<SessionInbox>>& inboxes,
                        core::DetectionExecutor& backend,
                        core::StatMergeShards& statMerge, Config config);
  WorkStealingScheduler(const WorkStealingScheduler&) = delete;
  WorkStealingScheduler& operator=(const WorkStealingScheduler&) = delete;

  /// Drives every session from 0 to duration (sessions must already be
  /// start()ed) and blocks until all have retired. Call once.
  void run();

  /// Valid after run().
  [[nodiscard]] const SchedulerMetrics& metrics() const { return metrics_; }

 private:
  /// One resumable session task. Fields are owned by whichever worker is
  /// currently running or retiring the session (hand-offs go through the
  /// shard queues and the control lock, whose acquire/release pairs are the
  /// happens-before edges), or read under control_ for a parked waiter.
  struct Task {
    DeviceSession* session = nullptr;
    SessionInbox* inbox = nullptr;  ///< Null for synchronous backends.
    /// Next slice to run; slice j advances to target(j).
    int cursor CONFINED_TO("owning worker") = 1;
  };

  /// One run-queue shard (home of sessions with id % workers == index).
  struct Shard {
    util::RankedMutex mutex{util::LockRank::kSessionQueue,
                            "fleet.WorkStealingScheduler.shard"};
    /// Ordered by (next-wake simulated ms, session id): begin() is the
    /// most-behind session (the home pop), rbegin() the furthest-ahead
    /// (what a thief takes, leaving the urgent work local).
    std::set<std::pair<std::int64_t, int>> queue GUARDED_BY(mutex);
  };

  /// A closed-over epoch group: slice-j submissions awaiting group flush.
  struct Group {
    std::vector<core::DetectionRequest> requests;
    std::vector<int> waiters;  ///< Sessions parked until this group flushes.
  };

  /// A group claimed for flushing (moved out under control_).
  struct ClaimedGroup {
    int index = -1;
    std::vector<core::DetectionRequest> requests;
    std::vector<int> waiters;
  };

  struct WorkerStats {
    std::int64_t slices = 0;
    std::int64_t localPops = 0;
    std::int64_t steals = 0;
  };

  [[nodiscard]] Millis target(int slice) const {
    const std::int64_t t =
        static_cast<std::int64_t>(slice) * config_.epoch.count;
    return t >= config_.duration.count ? config_.duration : Millis{t};
  }

  void workerLoop(int worker);
  /// Pops the front (back when stealing) of one shard's queue; -1 if empty.
  [[nodiscard]] int popFrom(int shardIndex, bool stealBack);
  /// Own-shard pop, then steal sweep over the siblings; -1 when no work.
  [[nodiscard]] int findWork(int worker, WorkerStats& ws);
  /// Blocks until work may exist. False when the fleet has fully retired.
  [[nodiscard]] bool idleWait();

  /// Runs one slice of one session and files the outcome (block on a
  /// group, re-enqueue, or retire).
  void runSlice(int id, WorkerStats& ws);
  void retire(int id);

  /// Claims the lowest pending group if no live cursor can still add to it
  /// (and no flush is already running); flushes and releases its waiters.
  [[nodiscard]] ClaimedGroup claimClosableGroup();
  void drainClosableGroups();
  [[nodiscard]] bool closableGroupPendingLocked() const REQUIRES(control_);

  void enqueueLocked(int id) REQUIRES(control_);
  void incCursorLocked(int cursor) REQUIRES(control_);
  void decCursorLocked(int cursor) REQUIRES(control_);

  std::vector<std::unique_ptr<DeviceSession>>* sessions_;
  core::DetectionExecutor* backend_;
  core::StatMergeShards* statMerge_;
  Config config_;
  bool coalescing_ = false;

  std::vector<Task> tasks_;  ///< Fixed after construction; index = id.
  std::vector<std::unique_ptr<Shard>> shards_;  ///< Fixed; one per worker.

  /// Global scheduler state: cursor census, pending groups, liveness.
  mutable util::RankedMutex control_{util::LockRank::kFleetControl,
                                     "fleet.WorkStealingScheduler.control"};
  util::RankedConditionVariable idleCv_;
  /// cursor value -> live sessions currently AT that cursor (blocked
  /// sessions included — they re-run their cursor's slice after release,
  /// so they hold their next group open). Sessions leave at retirement.
  /// begin() is the fleet-wide minimum: group g may flush iff min > g.
  /// Maintained only for coalescing backends.
  std::map<int, int> cursorCounts_ GUARDED_BY(control_);
  /// group index -> submissions + parked sessions, created on first
  /// submission. begin() is the next group eligible to close.
  std::map<int, Group> groups_ GUARDED_BY(control_);
  int active_ GUARDED_BY(control_) = 0;  ///< Sessions not yet retired.
  bool flushInProgress_ GUARDED_BY(control_) = false;
  std::int64_t groupFlushes_ GUARDED_BY(control_) = 0;

  /// Serializes backend flush epochs: held across "replay requests into
  /// the backend + backend->flush()", so each flush sees exactly one
  /// group's (or one session's) request set.
  util::RankedMutex flushMutex_{util::LockRank::kFleetFlush,
                                "fleet.WorkStealingScheduler.flush"};
  std::int64_t sessionFlushes_ GUARDED_BY(flushMutex_) = 0;

  /// Fast runnable signal for idle workers: queue inserts increment,
  /// pops decrement. A stale read only costs one extra probe loop.
  std::atomic<int> runnableHint_{0};

  double runStartWall_ = 0.0;
  SchedulerMetrics metrics_;  ///< Merged under control_ at worker exit.
};

}  // namespace darpa::fleet
