#include "fleet/scheduler.h"

#include <thread>
#include <utility>

#include "util/clock.h"

namespace darpa::fleet {

WorkStealingScheduler::WorkStealingScheduler(
    std::vector<std::unique_ptr<DeviceSession>>& sessions,
    const std::vector<std::unique_ptr<SessionInbox>>& inboxes,
    core::DetectionExecutor& backend, core::StatMergeShards& statMerge,
    Config config)
    : sessions_(&sessions),
      backend_(&backend),
      statMerge_(&statMerge),
      config_(config),
      coalescing_(backend.coalescing()) {
  if (config_.workers < 1) config_.workers = 1;
  if (config_.epoch.count < 1) config_.epoch = ms(1);

  tasks_.resize(sessions.size());
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    tasks_[i].session = sessions[i].get();
    tasks_[i].inbox = i < inboxes.size() ? inboxes[i].get() : nullptr;
  }
  shards_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void WorkStealingScheduler::run() {
  const int n = static_cast<int>(tasks_.size());
  // Finish times are wall-clock observability (straggler tail), never a
  // digest axis.
  // detlint: begin-allow(wall-clock-in-digest-path) observability axis only
  runStartWall_ = wallMicros();
  // detlint: end-allow(wall-clock-in-digest-path)
  metrics_.finishWallMs.assign(static_cast<std::size_t>(n), 0.0);

  if (config_.duration.count <= 0) {
    // The lockstep driver runs no phase at duration 0; match it exactly —
    // no slices, but sessions still fold their (zero-activity) totals so
    // snapshot() sees every session either way.
    for (int id = 0; id < n; ++id) retire(id);
    return;
  }

  {
    const util::LockGuard lock(control_);
    active_ = n;
    if (coalescing_ && n > 0) cursorCounts_[1] = n;
    for (int id = 0; id < n; ++id) enqueueLocked(id);
  }

  if (config_.workers == 1) {
    workerLoop(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(config_.workers));
    for (int w = 0; w < config_.workers; ++w) {
      workers.emplace_back([this, w] { workerLoop(w); });
    }
    for (std::thread& worker : workers) worker.join();
  }

  {
    const util::LockGuard lock(control_);
    metrics_.groupFlushes = groupFlushes_;
  }
  {
    const util::LockGuard lock(flushMutex_);
    metrics_.sessionFlushes = sessionFlushes_;
  }
}

void WorkStealingScheduler::workerLoop(int worker) {
  WorkerStats ws;
  for (;;) {
    drainClosableGroups();
    const int id = findWork(worker, ws);
    if (id >= 0) {
      ++ws.slices;
      runSlice(id, ws);
      continue;
    }
    if (!idleWait()) break;
  }
  const util::LockGuard lock(control_);
  metrics_.slicesRun += ws.slices;
  metrics_.localPops += ws.localPops;
  metrics_.steals += ws.steals;
}

int WorkStealingScheduler::popFrom(int shardIndex, bool stealBack) {
  Shard& shard = *shards_[static_cast<std::size_t>(shardIndex)];
  const util::LockGuard lock(shard.mutex);
  if (shard.queue.empty()) return -1;
  const auto it = stealBack ? std::prev(shard.queue.end()) : shard.queue.begin();
  const int id = it->second;
  shard.queue.erase(it);
  runnableHint_.fetch_sub(1, std::memory_order_release);
  return id;
}

int WorkStealingScheduler::findWork(int worker, WorkerStats& ws) {
  // Own shard first: the most-behind session (front of the wake order).
  int id = popFrom(worker, /*stealBack=*/false);
  if (id >= 0) {
    ++ws.localPops;
    return id;
  }
  // Steal sweep: take the furthest-ahead session from a sibling's back so
  // its urgent work stays local. One shard lock at a time (shared rank).
  const int count = static_cast<int>(shards_.size());
  for (int step = 1; step < count; ++step) {
    id = popFrom((worker + step) % count, /*stealBack=*/true);
    if (id >= 0) {
      ++ws.steals;
      return id;
    }
  }
  return -1;
}

bool WorkStealingScheduler::idleWait() {
  const util::LockGuard lock(control_);
  for (;;) {
    if (active_ == 0) return false;
    if (runnableHint_.load(std::memory_order_acquire) > 0) return true;
    if (!flushInProgress_ && closableGroupPendingLocked()) return true;
    idleCv_.wait(control_);
  }
}

void WorkStealingScheduler::runSlice(int id, WorkerStats& ws) {
  (void)ws;
  Task& task = tasks_[static_cast<std::size_t>(id)];
  const int slice = task.cursor;

  // One slice == one lockstep epoch for this session: the Looper first
  // runs everything due at or before target(slice) — which includes the
  // detect completions posted due target(slice - 1) — then the session
  // advances to target(slice). A single advanceTo covers both because the
  // Looper executes strictly in (due, id) order.
  task.session->advanceTo(target(slice));

  std::vector<core::DetectionRequest> requests;
  if (task.inbox != nullptr) requests = task.inbox->take();
  const bool submitted = !requests.empty();

  if (submitted && !coalescing_) {
    // Non-coalescing backend: per-image pricing, so no cross-session batch
    // composition to preserve. Flush this session's requests immediately —
    // the backend queue is empty between kFleetFlush sections, so the
    // flush-confined executor statistics see one session at a time.
    const util::LockGuard lock(flushMutex_);
    for (core::DetectionRequest& request : requests) {
      backend_->submit(std::move(request));
    }
    backend_->flush();
    ++sessionFlushes_;
    requests.clear();
  }

  const bool lastSlice = target(slice) == config_.duration;
  bool retired = false;
  {
    const util::LockGuard lock(control_);
    decCursorLocked(slice);
    task.cursor = slice + 1;
    if (coalescing_ && submitted) {
      // Park until group `slice` flushes. The session's NEXT cursor still
      // counts in the census — it holds group slice+1 open, because the
      // completions it drains next slice can trigger new submissions there.
      Group& group = groups_[slice];
      for (core::DetectionRequest& request : requests) {
        group.requests.push_back(std::move(request));
      }
      group.waiters.push_back(id);
      incCursorLocked(task.cursor);
    } else if (!submitted && lastSlice) {
      // Covered the full duration and the last slice went quiet: done.
      // (A session that still submitted keeps running settle slices — its
      // completions may spawn follow-up work — until one comes up empty.)
      retired = true;
    } else {
      incCursorLocked(task.cursor);
      enqueueLocked(id);
    }
    idleCv_.notifyAll();
  }
  if (retired) retire(id);
}

void WorkStealingScheduler::retire(int id) {
  Task& task = tasks_[static_cast<std::size_t>(id)];
  DeviceSession& session = *task.session;

  core::StatMergeShards::SessionTotals totals;
  totals.stats = session.stats().snapshot();
  totals.ledger = session.ledger().snapshot();
  totals.eventsEmitted = session.eventsEmitted();
  totals.auiExposures = session.auiExposures();
  totals.auisCovered = session.auisCovered();
  statMerge_->fold(id, std::move(totals));

  // Per-slot write, each id retired exactly once; read only after join.
  // detlint: begin-allow(wall-clock-in-digest-path) observability axis only
  metrics_.finishWallMs[static_cast<std::size_t>(id)] =
      (wallMicros() - runStartWall_) / 1000.0;
  // detlint: end-allow(wall-clock-in-digest-path)

  // Decrement active_ only AFTER the fold so run() cannot return (and the
  // fleet cannot snapshot) before this session's totals are in the shards.
  const util::LockGuard lock(control_);
  --active_;
  idleCv_.notifyAll();
}

bool WorkStealingScheduler::closableGroupPendingLocked() const {
  if (groups_.empty()) return false;
  // Groups are created on first submission, so begin() is both the lowest
  // and a non-empty one. It closes when every live cursor has passed it;
  // parked waiters count at cursor g+1 and retired sessions count nowhere,
  // so neither can reopen it.
  const int lowest = groups_.begin()->first;
  return cursorCounts_.empty() || cursorCounts_.begin()->first > lowest;
}

WorkStealingScheduler::ClaimedGroup WorkStealingScheduler::claimClosableGroup() {
  ClaimedGroup claimed;
  const util::LockGuard lock(control_);
  if (flushInProgress_ || !closableGroupPendingLocked()) return claimed;
  const auto it = groups_.begin();
  claimed.index = it->first;
  claimed.requests = std::move(it->second.requests);
  claimed.waiters = std::move(it->second.waiters);
  groups_.erase(it);
  // Claim the flush token: groups must reach the backend in index order
  // (the flush epoch sequence lockstep produced), so only one closed group
  // is in flight at a time.
  flushInProgress_ = true;
  return claimed;
}

void WorkStealingScheduler::drainClosableGroups() {
  for (;;) {
    ClaimedGroup claimed = claimClosableGroup();
    if (claimed.index < 0) return;
    {
      // Replay the group into the backend. No pre-sort needed: the
      // backend's flush orders its queue canonically by (sessionId, seq)
      // itself, and the request SET is the lockstep epoch set.
      const util::LockGuard lock(flushMutex_);
      for (core::DetectionRequest& request : claimed.requests) {
        backend_->submit(std::move(request));
      }
      backend_->flush();
    }
    {
      const util::LockGuard lock(control_);
      flushInProgress_ = false;
      ++groupFlushes_;
      // The waiters' completions are now queued in their Loopers; they are
      // runnable again at their (already-incremented) cursors.
      for (const int id : claimed.waiters) enqueueLocked(id);
      idleCv_.notifyAll();
    }
  }
}

void WorkStealingScheduler::enqueueLocked(int id) {
  const std::int64_t wake = target(tasks_[static_cast<std::size_t>(id)].cursor).count;
  Shard& shard = *shards_[static_cast<std::size_t>(id) % shards_.size()];
  {
    // Legal nesting: control (kFleetControl) -> shard (kSessionQueue).
    const util::LockGuard lock(shard.mutex);
    shard.queue.insert({wake, id});
  }
  runnableHint_.fetch_add(1, std::memory_order_release);
}

void WorkStealingScheduler::incCursorLocked(int cursor) {
  if (!coalescing_) return;
  ++cursorCounts_[cursor];
}

void WorkStealingScheduler::decCursorLocked(int cursor) {
  if (!coalescing_) return;
  const auto it = cursorCounts_.find(cursor);
  if (it != cursorCounts_.end() && --it->second == 0) cursorCounts_.erase(it);
}

}  // namespace darpa::fleet
