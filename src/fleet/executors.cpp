#include "fleet/executors.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>
#include <utility>

#include "android/looper.h"
#include "cv/one_stage.h"
#include "util/clock.h"

namespace darpa::fleet {

namespace {

/// Canonical order: completions and batch composition must not depend on
/// which fleet worker submitted first.
void sortCanonical(std::vector<core::DetectionRequest>& requests) {
  std::sort(requests.begin(), requests.end(),
            [](const core::DetectionRequest& a,
               const core::DetectionRequest& b) {
              return a.sessionId != b.sessionId ? a.sessionId < b.sessionId
                                                : a.seq < b.seq;
            });
}

/// Runs fn(i) for i in [0, count) across up to `threads` worker threads.
/// Work items must be independent; the join is the happens-before edge back
/// to the flushing thread.
void parallelFor(int threads, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

/// Cross-session single-flight partition of one canonically-sorted flush:
/// returns leaderOf, where leaderOf[i] == i marks a leader (it runs the
/// model) and leaderOf[i] == j < i marks a follower of leader j (same
/// non-zero coalesceKey and detector — it is delivered a copy of j's
/// detections with batchSize 0 and never reaches the model). Requests with
/// coalesceKey 0 always lead, so an untagged (tier-less) flush partitions
/// into all-leaders and the downstream code degenerates to the historical
/// path byte-for-byte. Follower frames are released here: no model will
/// read them, and §IV-E scrub-on-last-release must not wait for delivery.
/// The key map is accessed by key only (find/assign), never iterated.
std::vector<std::size_t> assignLeaders(
    std::vector<core::DetectionRequest>& work) {
  std::vector<std::size_t> leaderOf(work.size());
  std::unordered_map<std::uint64_t, std::size_t> firstByKey;
  for (std::size_t i = 0; i < work.size(); ++i) {
    leaderOf[i] = i;
    if (work[i].coalesceKey == 0) continue;
    const auto it = firstByKey.find(work[i].coalesceKey);
    if (it != firstByKey.end() &&
        work[it->second].detector == work[i].detector) {
      leaderOf[i] = it->second;
      work[i].frame.reset();
    } else {
      // First sighting of this key (or a different detector under the same
      // key — it leads its own flight and takes over the key slot; the
      // canonical order makes the takeover deterministic).
      firstByKey[work[i].coalesceKey] = i;
    }
  }
  return leaderOf;
}

/// Leaders that have at least one follower in this flush (their results
/// must be copied out to the followers, so delivery cannot move them).
std::vector<char> leadersWithFollowers(
    const std::vector<std::size_t>& leaderOf) {
  std::vector<char> shared(leaderOf.size(), 0);
  for (std::size_t i = 0; i < leaderOf.size(); ++i) {
    if (leaderOf[i] != i) shared[leaderOf[i]] = 1;
  }
  return shared;
}

/// Delivers one completion: posted to the owning session's Looper when the
/// request names one (the session drains it at the barrier), invoked
/// directly otherwise. Called in canonical order from the flushing thread.
void deliver(core::DetectionRequest& request,
             std::vector<cv::Detection> detections, int batchSize,
             const core::DetectionTiming& timing) {
  if (!request.onComplete) return;
  if (request.replyLooper != nullptr) {
    request.replyLooper->post(
        [cb = std::move(request.onComplete), dets = std::move(detections),
         batchSize, timing]() mutable { cb(std::move(dets), batchSize, timing); });
    return;
  }
  request.onComplete(std::move(detections), batchSize, timing);
}

}  // namespace

// ------------------------------------------------------ ThreadPoolExecutor

void ThreadPoolExecutor::submit(core::DetectionRequest request) {
  const util::LockGuard lock(mutex_);
  parked_.push_back(std::move(request));
}

std::size_t ThreadPoolExecutor::pendingCount() const {
  const util::LockGuard lock(mutex_);
  return parked_.size();
}

void ThreadPoolExecutor::flush() {
  std::vector<core::DetectionRequest> work;
  {
    const util::LockGuard lock(mutex_);
    work.swap(parked_);
  }
  if (work.empty()) return;
  sortCanonical(work);
  const std::vector<std::size_t> leaderOf = assignLeaders(work);
  const std::vector<char> shared = leadersWithFollowers(leaderOf);

  std::vector<std::vector<cv::Detection>> results(work.size());
  std::vector<core::DetectionTiming> timings(work.size());
  parallelFor(threads_, work.size(), [&](std::size_t i) {
    if (leaderOf[i] != i) return;  // Single-flight follower: no model run.
    core::DetectionRequest& request = work[i];
    // Scratch stats are thread-local, so the before/after delta on this
    // worker thread is exactly this call's warm-up growth.
    const cv::DetectScratchStats before = cv::hotpathScratchStats();
    // Audited: feeds only DetectionTiming::actualMicros (observability).
    // detlint: begin-allow(wall-clock-in-digest-path) observability axis only
    const double startUs = wallMicros();
    results[i] = request.detector->detect(request.frame->pixels());
    timings[i].actualMicros = wallMicros() - startUs;
    // detlint: end-allow(wall-clock-in-digest-path)
    const cv::DetectScratchStats after = cv::hotpathScratchStats();
    timings[i].scratchGrowths = after.growths - before.growths;
    timings[i].scratchGrownBytes = after.grownBytes - before.grownBytes;
    // §IV-E: drop our reference the moment the model ran; the frame
    // scrubs its pixels on last release.
    request.frame.reset();
  });

  // Delivery stays in canonical order over ALL requests, leaders and
  // followers interleaved; a leader precedes its followers by
  // construction, so a shared result is copied out until its last
  // follower and moved never (copies are the price of sharing).
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (leaderOf[i] == i) {
      auto detections =
          shared[i] != 0 ? results[i] : std::move(results[i]);
      deliver(work[i], std::move(detections), /*batchSize=*/1, timings[i]);
    } else {
      deliver(work[i], results[leaderOf[i]], /*batchSize=*/0,
              core::DetectionTiming{});
    }
    ++completed_;
  }
}

// ------------------------------------------------------- BatchingExecutor

BatchingExecutor::BatchingExecutor(Options options) : options_(options) {
  if (options_.maxBatchSize < 1) options_.maxBatchSize = 1;
  if (options_.threads < 1) options_.threads = 1;
}

void BatchingExecutor::submit(core::DetectionRequest request) {
  const util::LockGuard lock(mutex_);
  parked_.push_back(std::move(request));
}

std::size_t BatchingExecutor::pendingCount() const {
  const util::LockGuard lock(mutex_);
  return parked_.size();
}

void BatchingExecutor::flush() {
  std::vector<core::DetectionRequest> work;
  {
    const util::LockGuard lock(mutex_);
    work.swap(parked_);
  }
  if (work.empty()) return;
  sortCanonical(work);
  // Single-flight first: only leaders enter batch composition, so a
  // coalesced flush also composes SMALLER batches — the suppressed
  // followers neither occupy batch slots nor dilute the amortized cost.
  // An untagged flush is all-leaders and batches exactly as before.
  const std::vector<std::size_t> leaderOf = assignLeaders(work);
  const std::vector<char> shared = leadersWithFollowers(leaderOf);
  std::vector<std::size_t> leaders;
  leaders.reserve(work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    if (leaderOf[i] == i) leaders.push_back(i);
  }

  // Chunk the canonical leader order into batches: contiguous runs sharing
  // a detector (fleets normally share one), cut at maxBatchSize. The chunk
  // boundaries are a pure function of the sorted leader set, so batch
  // composition is identical for any worker count.
  struct Batch {
    std::size_t begin = 0;
    std::size_t end = 0;  ///< Exclusive, indices into `leaders`.
  };
  std::vector<Batch> batches;
  std::size_t runStart = 0;
  for (std::size_t k = 1; k <= leaders.size(); ++k) {
    const bool cut = k == leaders.size() ||
                     work[leaders[k]].detector !=
                         work[leaders[runStart]].detector ||
                     k - runStart >=
                         static_cast<std::size_t>(options_.maxBatchSize);
    if (cut) {
      batches.push_back({runStart, k});
      runStart = k;
    }
  }
  // Where each leader's result lives: its batch and offset within it.
  std::vector<std::size_t> batchOf(work.size(), 0);
  std::vector<std::size_t> offsetOf(work.size(), 0);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    for (std::size_t k = batches[b].begin; k < batches[b].end; ++k) {
      batchOf[leaders[k]] = b;
      offsetOf[leaders[k]] = k - batches[b].begin;
    }
  }

  std::vector<std::vector<std::vector<cv::Detection>>> results(batches.size());
  std::vector<core::DetectionTiming> batchTimings(batches.size());
  parallelFor(options_.threads, batches.size(), [&](std::size_t b) {
    const Batch& batch = batches[b];
    std::vector<const gfx::Bitmap*> images;
    images.reserve(batch.end - batch.begin);
    for (std::size_t k = batch.begin; k < batch.end; ++k) {
      images.push_back(&work[leaders[k]].frame->pixels());
    }
    const cv::DetectScratchStats before = cv::hotpathScratchStats();
    // Audited: feeds only DetectionTiming::actualMicros (observability).
    // detlint: begin-allow(wall-clock-in-digest-path) observability axis only
    const double startUs = wallMicros();
    results[b] = work[leaders[batch.begin]].detector->detectBatch(images);
    batchTimings[b].actualMicros = wallMicros() - startUs;
    // detlint: end-allow(wall-clock-in-digest-path)
    const cv::DetectScratchStats after = cv::hotpathScratchStats();
    batchTimings[b].scratchGrowths = after.growths - before.growths;
    batchTimings[b].scratchGrownBytes = after.grownBytes - before.grownBytes;
    for (std::size_t k = batch.begin; k < batch.end; ++k) {
      work[leaders[k]].frame.reset();  // §IV-E: scrub-on-last-release.
    }
  });

  for (std::size_t b = 0; b < batches.size(); ++b) {
    const int batchSize = static_cast<int>(batches[b].end - batches[b].begin);
    ++batches_;
    images_ += batchSize;
    largestBatch_ = std::max(largestBatch_, batchSize);
  }

  // Delivery stays in canonical order over ALL requests, leaders and
  // followers interleaved; a leader precedes its followers by
  // construction, so shared results are copied out, unshared ones moved.
  for (std::size_t i = 0; i < work.size(); ++i) {
    const std::size_t leader = leaderOf[i];
    const std::size_t b = batchOf[leader];
    std::vector<cv::Detection>& result = results[b][offsetOf[leader]];
    if (leader != i) {
      deliver(work[i], result, /*batchSize=*/0, core::DetectionTiming{});
      continue;
    }
    const int batchSize = static_cast<int>(batches[b].end - batches[b].begin);
    // Per-image share of the batch's wall clock; the batch's scratch
    // warm-up (if any) is attributed to its first request so the fleet
    // roll-up counts each growth exactly once.
    core::DetectionTiming timing;
    timing.actualMicros =
        batchTimings[b].actualMicros / static_cast<double>(batchSize);
    if (offsetOf[i] == 0) {
      timing.scratchGrowths = batchTimings[b].scratchGrowths;
      timing.scratchGrownBytes = batchTimings[b].scratchGrownBytes;
    }
    auto detections = shared[i] != 0 ? result : std::move(result);
    deliver(work[i], std::move(detections), batchSize, timing);
  }
}

}  // namespace darpa::fleet
