#include "fleet/executors.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "android/looper.h"
#include "cv/one_stage.h"
#include "util/clock.h"

namespace darpa::fleet {

namespace {

/// Canonical order: completions and batch composition must not depend on
/// which fleet worker submitted first.
void sortCanonical(std::vector<core::DetectionRequest>& requests) {
  std::sort(requests.begin(), requests.end(),
            [](const core::DetectionRequest& a,
               const core::DetectionRequest& b) {
              return a.sessionId != b.sessionId ? a.sessionId < b.sessionId
                                                : a.seq < b.seq;
            });
}

/// Runs fn(i) for i in [0, count) across up to `threads` worker threads.
/// Work items must be independent; the join is the happens-before edge back
/// to the flushing thread.
void parallelFor(int threads, std::size_t count,
                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

/// Delivers one completion: posted to the owning session's Looper when the
/// request names one (the session drains it at the barrier), invoked
/// directly otherwise. Called in canonical order from the flushing thread.
void deliver(core::DetectionRequest& request,
             std::vector<cv::Detection> detections, int batchSize,
             const core::DetectionTiming& timing) {
  if (!request.onComplete) return;
  if (request.replyLooper != nullptr) {
    request.replyLooper->post(
        [cb = std::move(request.onComplete), dets = std::move(detections),
         batchSize, timing]() mutable { cb(std::move(dets), batchSize, timing); });
    return;
  }
  request.onComplete(std::move(detections), batchSize, timing);
}

}  // namespace

// ------------------------------------------------------ ThreadPoolExecutor

void ThreadPoolExecutor::submit(core::DetectionRequest request) {
  const util::LockGuard lock(mutex_);
  parked_.push_back(std::move(request));
}

std::size_t ThreadPoolExecutor::pendingCount() const {
  const util::LockGuard lock(mutex_);
  return parked_.size();
}

void ThreadPoolExecutor::flush() {
  std::vector<core::DetectionRequest> work;
  {
    const util::LockGuard lock(mutex_);
    work.swap(parked_);
  }
  if (work.empty()) return;
  sortCanonical(work);

  std::vector<std::vector<cv::Detection>> results(work.size());
  std::vector<core::DetectionTiming> timings(work.size());
  parallelFor(threads_, work.size(), [&](std::size_t i) {
    core::DetectionRequest& request = work[i];
    // Scratch stats are thread-local, so the before/after delta on this
    // worker thread is exactly this call's warm-up growth.
    const cv::DetectScratchStats before = cv::hotpathScratchStats();
    // Audited: feeds only DetectionTiming::actualMicros (observability).
    // detlint: begin-allow(wall-clock-in-digest-path) observability axis only
    const double startUs = wallMicros();
    results[i] = request.detector->detect(request.frame->pixels());
    timings[i].actualMicros = wallMicros() - startUs;
    // detlint: end-allow(wall-clock-in-digest-path)
    const cv::DetectScratchStats after = cv::hotpathScratchStats();
    timings[i].scratchGrowths = after.growths - before.growths;
    timings[i].scratchGrownBytes = after.grownBytes - before.grownBytes;
    // §IV-E: drop our reference the moment the model ran; the frame
    // scrubs its pixels on last release.
    request.frame.reset();
  });

  for (std::size_t i = 0; i < work.size(); ++i) {
    deliver(work[i], std::move(results[i]), /*batchSize=*/1, timings[i]);
    ++completed_;
  }
}

// ------------------------------------------------------- BatchingExecutor

BatchingExecutor::BatchingExecutor(Options options) : options_(options) {
  if (options_.maxBatchSize < 1) options_.maxBatchSize = 1;
  if (options_.threads < 1) options_.threads = 1;
}

void BatchingExecutor::submit(core::DetectionRequest request) {
  const util::LockGuard lock(mutex_);
  parked_.push_back(std::move(request));
}

std::size_t BatchingExecutor::pendingCount() const {
  const util::LockGuard lock(mutex_);
  return parked_.size();
}

void BatchingExecutor::flush() {
  std::vector<core::DetectionRequest> work;
  {
    const util::LockGuard lock(mutex_);
    work.swap(parked_);
  }
  if (work.empty()) return;
  sortCanonical(work);

  // Chunk the canonical order into batches: contiguous runs sharing a
  // detector (fleets normally share one), cut at maxBatchSize. The chunk
  // boundaries are a pure function of the sorted order, so batch
  // composition is identical for any worker count.
  struct Batch {
    std::size_t begin = 0;
    std::size_t end = 0;  ///< Exclusive.
  };
  std::vector<Batch> batches;
  std::size_t runStart = 0;
  for (std::size_t i = 1; i <= work.size(); ++i) {
    const bool cut = i == work.size() ||
                     work[i].detector != work[runStart].detector ||
                     i - runStart >=
                         static_cast<std::size_t>(options_.maxBatchSize);
    if (cut) {
      batches.push_back({runStart, i});
      runStart = i;
    }
  }

  std::vector<std::vector<std::vector<cv::Detection>>> results(batches.size());
  std::vector<core::DetectionTiming> batchTimings(batches.size());
  parallelFor(options_.threads, batches.size(), [&](std::size_t b) {
    const Batch& batch = batches[b];
    std::vector<const gfx::Bitmap*> images;
    images.reserve(batch.end - batch.begin);
    for (std::size_t i = batch.begin; i < batch.end; ++i) {
      images.push_back(&work[i].frame->pixels());
    }
    const cv::DetectScratchStats before = cv::hotpathScratchStats();
    // Audited: feeds only DetectionTiming::actualMicros (observability).
    // detlint: begin-allow(wall-clock-in-digest-path) observability axis only
    const double startUs = wallMicros();
    results[b] = work[batch.begin].detector->detectBatch(images);
    batchTimings[b].actualMicros = wallMicros() - startUs;
    // detlint: end-allow(wall-clock-in-digest-path)
    const cv::DetectScratchStats after = cv::hotpathScratchStats();
    batchTimings[b].scratchGrowths = after.growths - before.growths;
    batchTimings[b].scratchGrownBytes = after.grownBytes - before.grownBytes;
    for (std::size_t i = batch.begin; i < batch.end; ++i) {
      work[i].frame.reset();  // §IV-E: scrub-on-last-release.
    }
  });

  for (std::size_t b = 0; b < batches.size(); ++b) {
    const Batch& batch = batches[b];
    const int batchSize = static_cast<int>(batch.end - batch.begin);
    ++batches_;
    images_ += batchSize;
    largestBatch_ = std::max(largestBatch_, batchSize);
    for (std::size_t i = batch.begin; i < batch.end; ++i) {
      // Per-image share of the batch's wall clock; the batch's scratch
      // warm-up (if any) is attributed to its first request so the fleet
      // roll-up counts each growth exactly once.
      core::DetectionTiming timing;
      timing.actualMicros =
          batchTimings[b].actualMicros / static_cast<double>(batchSize);
      if (i == batch.begin) {
        timing.scratchGrowths = batchTimings[b].scratchGrowths;
        timing.scratchGrownBytes = batchTimings[b].scratchGrownBytes;
      }
      deliver(work[i], std::move(results[b][i - batch.begin]), batchSize,
              timing);
    }
  }
}

}  // namespace darpa::fleet
