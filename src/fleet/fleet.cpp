#include "fleet/fleet.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "apps/app_model.h"
#include "util/rng.h"

namespace darpa::fleet {

Fleet::Fleet(const cv::Detector& detector, core::DetectionExecutor& executor,
             FleetConfig config)
    : detector_(&detector), executor_(&executor), config_(std::move(config)) {
  if (config_.sessions < 1) config_.sessions = 1;
  if (config_.workers < 1) config_.workers = 1;
  if (config_.epoch <= Millis{0}) config_.epoch = Millis{1000};
  if (config_.framePool.shards == 0) config_.framePool.shards = config_.workers;

  if (config_.pooledFrames) {
    pool_ = std::make_unique<gfx::FramePool>(config_.framePool);
  }
  if (config_.sharedVerdictTier) {
    if (config_.verdictTier.shards < 1) {
      config_.verdictTier.shards = config_.workers;
    }
    tier_ = std::make_unique<core::SharedVerdictTier>(config_.verdictTier);
  }

  const bool workStealing = config_.driver == FleetDriver::kWorkStealing;
  // With an asynchronous backend the work-stealing driver must not let a
  // mid-slice session submit into the shared queue (another worker's flush
  // would sweep the request up — and deliver its completion — while the
  // session is still running). Each session gets a SessionInbox instead;
  // the scheduler replays inboxes into the backend at slice boundaries.
  const bool useInboxes = workStealing && !executor_->synchronous();

  // Session seeding mirrors bench_runtime.h's per-app draw order (profile,
  // then app seed, then monkey seed) so a fleet of size 1 replays the
  // single-device benches exactly.
  Rng rng(config_.seed);
  sessions_.reserve(static_cast<std::size_t>(config_.sessions));
  if (useInboxes) inboxes_.reserve(static_cast<std::size_t>(config_.sessions));
  for (int i = 0; i < config_.sessions; ++i) {
    DeviceSession::Config session;
    session.id = i;
    session.darpa = config_.darpa;
    session.window = config_.window;
    session.profile =
        apps::randomAppProfile(config_.packagePrefix + std::to_string(i), rng);
    session.appSeed = rng.next();
    session.monkeySeed = rng.next();
    session.duration = config_.duration;
    session.monkey = config_.monkey;
    if (config_.sessionTweak) config_.sessionTweak(i, session);
    // Fleet-owned wiring, re-asserted after the tweak: the identity and
    // plumbing fields are not the hook's to change.
    session.id = i;
    session.framePool = pool_.get();
    session.darpa.verdictTier = tier_.get();
    if (useInboxes) {
      inboxes_.push_back(std::make_unique<SessionInbox>());
      session.darpa.executor = inboxes_.back().get();
    } else {
      session.darpa.executor = executor_;
    }
    sessions_.push_back(
        std::make_unique<DeviceSession>(*detector_, std::move(session)));
  }

  if (workStealing) {
    statMerge_ = std::make_unique<core::StatMergeShards>(config_.workers);
    WorkStealingScheduler::Config sched;
    sched.epoch = config_.epoch;
    sched.duration = config_.duration;
    sched.workers = config_.workers;
    scheduler_ = std::make_unique<WorkStealingScheduler>(
        sessions_, inboxes_, *executor_, *statMerge_, sched);
  }
}

// Sessions may hold DetectionRequests parked in the shared executor at
// destruction only if run() was aborted mid-epoch; drain them so no
// completion can fire into a dead session. (Inbox-parked requests need no
// drain: an inbox dies with its fleet and delivers nothing by itself.)
Fleet::~Fleet() {
  if (executor_->pendingCount() > 0) executor_->flush();
}

void Fleet::checkSessionIndex(int i) const {
  if (i >= 0 && i < static_cast<int>(sessions_.size())) return;
  std::fprintf(stderr, "Fleet::session(%d): index out of range [0, %d)\n", i,
               static_cast<int>(sessions_.size()));
  std::abort();
}

void Fleet::phase(const std::function<void(DeviceSession&)>& fn) {
  const int workers =
      std::min(config_.workers, static_cast<int>(sessions_.size()));
  if (workers <= 1) {
    for (auto& session : sessions_) fn(*session);
    return;
  }
  // Static shard: session i belongs to worker i % W for the whole phase, so
  // each session is touched by exactly one thread; the joins below are the
  // happens-before edge back to the control thread (the barrier).
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([this, fn, w, workers] {
      for (std::size_t i = static_cast<std::size_t>(w); i < sessions_.size();
           i += static_cast<std::size_t>(workers)) {
        fn(*sessions_[i]);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

void Fleet::run() {
  if (started_) {
    std::fprintf(stderr,
                 "Fleet::run() called twice; a fleet run is single-use\n");
    std::abort();
  }
  started_ = true;
  for (auto& session : sessions_) session->start();

  if (scheduler_ != nullptr) {
    scheduler_->run();
    now_ = config_.duration;
    return;
  }
  runLockstep();
}

void Fleet::runLockstep() {
  const Millis end = now_ + config_.duration;
  while (now_ < end) {
    const Millis target = std::min(end, now_ + config_.epoch);
    // Phase 1: every session plays forward to the epoch target; detect
    // stages park requests in the shared executor and suspend their pass.
    phase([target](DeviceSession& session) { session.advanceTo(target); });
    // Barrier: the control thread resolves all parked detections. The
    // executor posts each completion to its session's looper, due "now".
    executor_->flush();
    // Phase 2: drain the posted completions (verdict/act stages, service
    // epilogue). A completion may replay coalesced follower passes whose
    // screen moved on, submitting fresh detects — those park until the next
    // epoch's flush.
    phase([target](DeviceSession& session) { session.advanceTo(target); });
    now_ = target;
  }
  // Settle: resolve detects submitted by follower replays during the final
  // drain. Each round can only re-submit for a shrinking follower chain, so
  // this terminates, and afterwards no request is parked in the executor.
  while (executor_->pendingCount() > 0) {
    executor_->flush();
    phase([this](DeviceSession& session) { session.advanceTo(now_); });
  }
}

FleetSnapshot Fleet::snapshot() const {
  FleetSnapshot snap;
  snap.sessions = static_cast<int>(sessions_.size());
  snap.simTime = started_ ? now_ : Millis{0};
  if (statMerge_ != nullptr && started_) {
    // Work-stealing run: every session folded its totals at retirement;
    // merged() replays them in session-id order, bit-equal to the scan
    // below.
    const core::StatMergeShards::Merged merged = statMerge_->merged();
    snap.stats = merged.stats;
    snap.ledger = merged.ledger;
    snap.eventsEmitted = merged.eventsEmitted;
    snap.auiExposures = merged.auiExposures;
    snap.auisCovered = merged.auisCovered;
  } else {
    for (const auto& session : sessions_) {
      snap.stats.merge(session->stats().snapshot());
      snap.ledger.merge(session->ledger().snapshot());
      snap.eventsEmitted += session->eventsEmitted();
      snap.auiExposures += session->auiExposures();
      snap.auisCovered += session->auisCovered();
    }
  }
  if (pool_ != nullptr) snap.framePool = pool_->stats();
  if (tier_ != nullptr) snap.verdictTier = tier_->stats();
  return snap;
}

}  // namespace darpa::fleet
