#include "fleet/fleet.h"

#include <algorithm>
#include <string>
#include <thread>

#include "apps/app_model.h"
#include "util/rng.h"

namespace darpa::fleet {

Fleet::Fleet(const cv::Detector& detector, core::DetectionExecutor& executor,
             FleetConfig config)
    : detector_(&detector), executor_(&executor), config_(std::move(config)) {
  if (config_.sessions < 1) config_.sessions = 1;
  if (config_.workers < 1) config_.workers = 1;
  if (config_.epoch <= Millis{0}) config_.epoch = Millis{1000};

  if (config_.pooledFrames) {
    pool_ = std::make_unique<gfx::FramePool>(config_.framePool);
  }

  // Session seeding mirrors bench_runtime.h's per-app draw order (profile,
  // then app seed, then monkey seed) so a fleet of size 1 replays the
  // single-device benches exactly.
  Rng rng(config_.seed);
  sessions_.reserve(static_cast<std::size_t>(config_.sessions));
  for (int i = 0; i < config_.sessions; ++i) {
    DeviceSession::Config session;
    session.id = i;
    session.darpa = config_.darpa;
    session.darpa.executor = executor_;
    session.window = config_.window;
    session.profile =
        apps::randomAppProfile(config_.packagePrefix + std::to_string(i), rng);
    session.appSeed = rng.next();
    session.monkeySeed = rng.next();
    session.duration = config_.duration;
    session.monkey = config_.monkey;
    session.framePool = pool_.get();
    sessions_.push_back(
        std::make_unique<DeviceSession>(*detector_, std::move(session)));
  }
}

// Sessions may hold DetectionRequests parked in the shared executor at
// destruction only if run() was aborted mid-epoch; drain them so no
// completion can fire into a dead session.
Fleet::~Fleet() {
  if (executor_->pendingCount() > 0) executor_->flush();
}

void Fleet::phase(const std::function<void(DeviceSession&)>& fn) {
  const int workers =
      std::min(config_.workers, static_cast<int>(sessions_.size()));
  if (workers <= 1) {
    for (auto& session : sessions_) fn(*session);
    return;
  }
  // Static shard: session i belongs to worker i % W for the whole phase, so
  // each session is touched by exactly one thread; the joins below are the
  // happens-before edge back to the control thread (the barrier).
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([this, fn, w, workers] {
      for (std::size_t i = static_cast<std::size_t>(w); i < sessions_.size();
           i += static_cast<std::size_t>(workers)) {
        fn(*sessions_[i]);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

void Fleet::run() {
  if (!started_) {
    started_ = true;
    for (auto& session : sessions_) session->start();
  }
  const Millis end = now_ + config_.duration;
  while (now_ < end) {
    const Millis target = std::min(end, now_ + config_.epoch);
    // Phase 1: every session plays forward to the epoch target; detect
    // stages park requests in the shared executor and suspend their pass.
    phase([target](DeviceSession& session) { session.advanceTo(target); });
    // Barrier: the control thread resolves all parked detections. The
    // executor posts each completion to its session's looper, due "now".
    executor_->flush();
    // Phase 2: drain the posted completions (verdict/act stages, service
    // epilogue). A completion may replay coalesced follower passes whose
    // screen moved on, submitting fresh detects — those park until the next
    // epoch's flush.
    phase([target](DeviceSession& session) { session.advanceTo(target); });
    now_ = target;
  }
  // Settle: resolve detects submitted by follower replays during the final
  // drain. Each round can only re-submit for a shrinking follower chain, so
  // this terminates, and afterwards no request is parked in the executor.
  while (executor_->pendingCount() > 0) {
    executor_->flush();
    phase([this](DeviceSession& session) { session.advanceTo(now_); });
  }
}

FleetSnapshot Fleet::snapshot() const {
  FleetSnapshot snap;
  snap.sessions = static_cast<int>(sessions_.size());
  snap.simTime = started_ ? now_ : Millis{0};
  for (const auto& session : sessions_) {
    snap.stats.merge(session->stats().snapshot());
    snap.ledger.merge(session->ledger().snapshot());
    snap.eventsEmitted += session->eventsEmitted();
    snap.auiExposures += session->auiExposures();
    snap.auisCovered += session->auisCovered();
  }
  if (pool_ != nullptr) snap.framePool = pool_->stats();
  return snap;
}

}  // namespace darpa::fleet
