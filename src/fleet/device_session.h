// DeviceSession — one simulated phone, bundled behind a single handle.
//
// The per-device world the paper's runtime assumes — SimClock, Looper,
// WindowManager, AccessibilityManager, the DarpaService with its WorkLedger
// and ScreenshotVault, plus the synthetic app population (AppSession) and a
// Monkey driver — used to be hand-wired by every bench and example. The
// fleet architecture needs that world to be a value you can make N of, so
// DeviceSession owns the whole stack with the right lifetimes:
// construction wires it, start() schedules the workload, advanceTo() plays
// simulated time forward, and the scoring that bench_runtime.h used to do
// inline (positive-analysis timeline -> AUI exposure coverage) is built in.
//
// Thread ownership: a session is confined to whichever fleet worker thread
// is currently advancing it; the Fleet's epoch barriers are the only
// hand-off points (see the ownership rule in core/work_ledger.h). A
// standalone DeviceSession on one thread is a fleet of size 1 — with the
// default InlineExecutor it is byte-identical to the pre-fleet hand-wired
// harness.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "android/system.h"
#include "apps/app_model.h"
#include "core/darpa_service.h"
#include "util/clock.h"

namespace darpa::fleet {

class DeviceSession {
 public:
  struct Config {
    int id = 0;  ///< Fleet-unique; becomes DarpaConfig::sessionId.
    core::DarpaConfig darpa;
    android::WindowManager::Config window;
    apps::AppProfile profile;
    std::uint64_t appSeed = 1;
    std::uint64_t monkeySeed = 2;
    Millis duration{60'000};  ///< Workload length from start().
    bool monkey = true;
    /// Human-paced exploration (a tap every 1.5-4 s by default): each tap
    /// resets the ct timer, so an aggressive monkey would just multiply
    /// the analyzed-screenshot count.
    int monkeyMinGapMs = 1500;
    int monkeyMaxGapMs = 4000;
    /// Slab pool the window manager composites screen captures from
    /// (null = plain heap allocation). Borrowed; must outlive the session.
    /// The session id tags acquisitions for the pool's per-session quota.
    gfx::FramePool* framePool = nullptr;
  };

  /// The detector is borrowed and must outlive the session (fleets share
  /// one across every session).
  DeviceSession(const cv::Detector& detector, Config config);
  ~DeviceSession();

  DeviceSession(const DeviceSession&) = delete;
  DeviceSession& operator=(const DeviceSession&) = delete;

  /// Schedules the app session (and monkey) on the looper; nothing runs
  /// until time is advanced.
  void start();

  /// Runs every task due up to `deadline` and advances the clock there —
  /// one fleet phase. Also drains completions the executor posted to this
  /// session's looper at a barrier (they are due immediately).
  void advanceTo(Millis deadline);

  /// Convenience for standalone use: start() + advanceTo(duration).
  void runToCompletion();

  // --- access ---------------------------------------------------------------
  [[nodiscard]] int id() const { return config_.id; }
  [[nodiscard]] android::AndroidSystem& system() { return system_; }
  [[nodiscard]] core::DarpaService& service() { return service_; }
  [[nodiscard]] const core::DarpaService& service() const { return service_; }
  [[nodiscard]] apps::AppSession& app() { return app_; }
  [[nodiscard]] Millis now() const { return system_.clock.now(); }
  [[nodiscard]] const core::DarpaStats& stats() const {
    return service_.stats();
  }
  [[nodiscard]] const core::WorkLedger& ledger() const {
    return service_.ledger();
  }

  /// Forwarded analysis listener (the session keeps its own scoring
  /// listener installed on the service; this one is called after it).
  void setAnalysisListener(
      std::function<void(bool isAui, const std::vector<cv::Detection>&)>
          listener) {
    userListener_ = std::move(listener);
  }

  // --- built-in scoring -----------------------------------------------------
  /// Simulated instants of every AUI-positive analysis verdict.
  [[nodiscard]] const std::vector<Millis>& positiveAnalyses() const {
    return positiveAnalyses_;
  }
  /// Accessibility events the simulated apps emitted so far.
  [[nodiscard]] std::int64_t eventsEmitted() const {
    return system_.accessibility.totalEmitted();
  }
  [[nodiscard]] std::int64_t auiExposures() const {
    return static_cast<std::int64_t>(app_.exposures().size());
  }
  /// Exposures with >= 1 positive verdict while visible (Fig.-8 coverage).
  [[nodiscard]] std::int64_t auisCovered() const;

 private:
  Config config_;
  android::AndroidSystem system_;
  core::DarpaService service_;
  apps::AppSession app_;
  apps::MonkeyDriver monkey_;
  std::vector<Millis> positiveAnalyses_;
  std::function<void(bool, const std::vector<cv::Detection>&)> userListener_;
};

}  // namespace darpa::fleet
