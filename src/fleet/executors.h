// Deferred detection backends for the fleet (core/detection_executor.h is
// the seam; this is where the threads live).
//
// Both backends follow the same determinism recipe: submit() only parks the
// request under a mutex (sessions running on different fleet workers may
// submit concurrently, so arrival order is racy); flush() — serialized by
// the driver: the lockstep fleet calls it from the control thread at the
// epoch barrier, the work-stealing fleet from whichever worker holds
// LockRank::kFleetFlush — restores canonical order by sorting on
// (sessionId, seq), executes the work with however many threads it
// likes (results are pure functions of the screenshots), and delivers the
// completions in that canonical order. Batch composition, completion order,
// and every downstream ledger record are therefore identical for any
// worker count, which is what makes W=1 and W=4 fleet runs bit-equal.
//
//  * ThreadPoolExecutor — one detect() per request, fanned across worker
//    threads; the modeled cost stays the single-image cost, the win is
//    wall-clock.
//  * BatchingExecutor — requests are coalesced into detectBatch() calls of
//    up to maxBatchSize images (grouped by detector); the win is the
//    amortized per-batch cost model (Detector::costMacsPerBatch) on top of
//    the wall-clock fan-out.
#pragma once

#include <cstdint>
#include <vector>

#include "core/detection_executor.h"
#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace darpa::fleet {

/// detect() fanned across `threads` worker threads at each flush.
class ThreadPoolExecutor : public core::DetectionExecutor {
 public:
  explicit ThreadPoolExecutor(int threads) : threads_(threads < 1 ? 1 : threads) {}

  void submit(core::DetectionRequest request) override;
  void flush() override;
  [[nodiscard]] std::size_t pendingCount() const override;
  [[nodiscard]] bool synchronous() const override { return false; }
  [[nodiscard]] const char* name() const override { return "threadpool"; }

  [[nodiscard]] int threads() const { return threads_; }
  /// Requests completed across all flushes so far.
  [[nodiscard]] std::int64_t completed() const { return completed_; }

 private:
  int threads_;
  mutable util::RankedMutex mutex_{util::LockRank::kExecutorQueue,
                                   "fleet.ThreadPoolExecutor"};
  std::vector<core::DetectionRequest> parked_ GUARDED_BY(mutex_);
  /// Touched only inside flush(), which both fleet drivers serialize (the
  /// lockstep barrier, or kFleetFlush) — flush-confined, not lock-protected.
  std::int64_t completed_ CONFINED_TO("flush serialization") = 0;
};

/// Screenshots from many sessions coalesced into detectBatch() calls.
class BatchingExecutor : public core::DetectionExecutor {
 public:
  struct Options {
    int maxBatchSize = 64;  ///< Hard ceiling per detectBatch call.
    int threads = 1;        ///< Batches computed concurrently at flush.
  };

  BatchingExecutor() : BatchingExecutor(Options{}) {}
  explicit BatchingExecutor(Options options);

  void submit(core::DetectionRequest request) override;
  void flush() override;
  [[nodiscard]] std::size_t pendingCount() const override;
  [[nodiscard]] bool synchronous() const override { return false; }
  /// Cross-session batch composition affects the modeled per-image cost —
  /// the work-stealing driver must flush whole epoch groups (see
  /// core::DetectionExecutor::coalescing).
  [[nodiscard]] bool coalescing() const override { return true; }
  [[nodiscard]] const char* name() const override { return "batching"; }

  [[nodiscard]] const Options& options() const { return options_; }

  // --- coalescing statistics (touched only at flush) ------------------------
  [[nodiscard]] std::int64_t batchesDispatched() const { return batches_; }
  [[nodiscard]] std::int64_t imagesBatched() const { return images_; }
  [[nodiscard]] int largestBatch() const { return largestBatch_; }
  /// Mean images per detectBatch call so far (0 when none ran).
  [[nodiscard]] double meanBatchSize() const {
    return batches_ == 0 ? 0.0
                         : static_cast<double>(images_) / static_cast<double>(batches_);
  }

 private:
  Options options_;
  mutable util::RankedMutex mutex_{util::LockRank::kExecutorQueue,
                                   "fleet.BatchingExecutor"};
  std::vector<core::DetectionRequest> parked_ GUARDED_BY(mutex_);
  // Coalescing statistics: flush-confined (both fleet drivers serialize
  // flush — the lockstep barrier, or kFleetFlush in the work stealer).
  std::int64_t batches_ CONFINED_TO("flush serialization") = 0;
  std::int64_t images_ CONFINED_TO("flush serialization") = 0;
  int largestBatch_ CONFINED_TO("flush serialization") = 0;
};

}  // namespace darpa::fleet
