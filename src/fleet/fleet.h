// Fleet — N DeviceSessions advanced in lockstep epochs across W workers.
//
// The determinism model, in one paragraph: simulated time advances in
// epochs. Within an epoch every session is advanced independently (sessions
// share no state, so the static shard -> worker assignment is a pure
// wall-clock choice); detect stages park DetectionRequests in the shared
// executor instead of blocking. At the epoch barrier the control thread
// flushes the executor — requests are sorted into canonical (sessionId,
// seq) order, executed with any number of threads (detection is a pure
// function of the screenshot), and completions are posted back to each
// owning session's Looper — and a second phase drains those completions.
// Every source of nondeterminism (submit interleaving, worker scheduling,
// batch assembly) is squeezed out at the barrier, so a fleet run's
// aggregated DarpaStats/WorkLedger are identical across repeated runs and
// across worker counts; only wall-clock changes with W.
//
// Aggregation: per-session ledgers and stats are session-confined (the
// ownership rule in core/work_ledger.h); snapshot() copies and merges them
// on the control thread while everything is quiescent, producing the
// fleet-wide roll-up that perf::DeviceModel consumes unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/detection_executor.h"
#include "fleet/device_session.h"
#include "util/thread_annotations.h"

namespace darpa::fleet {

struct FleetConfig {
  int sessions = 1;
  int workers = 1;        ///< Threads advancing sessions (1 = control thread).
  Millis epoch{1000};     ///< Lockstep quantum between executor flushes.
  Millis duration{60'000};
  std::uint64_t seed = 606;
  core::DarpaConfig darpa;  ///< Per-session service config (sessionId and
                            ///< executor are overridden by the fleet).
  android::WindowManager::Config window;
  bool monkey = true;
  std::string packagePrefix = "com.fleet.app";
  /// Share one FramePool across every session's screen captures. Off, each
  /// capture heap-allocates (the pre-pool behavior); on, slabs recycle
  /// across sessions and epochs. Results are byte-identical either way —
  /// the pool only changes where the bytes live.
  bool pooledFrames = true;
  gfx::FramePool::Options framePool;  ///< Caps; zeros = unlimited.
};

/// Fleet-wide roll-up taken at a barrier.
struct FleetSnapshot {
  int sessions = 0;
  Millis simTime{0};             ///< Simulated time covered per session.
  core::DarpaStats stats;        ///< Summed over sessions.
  core::WorkLedger ledger;       ///< Merged over sessions.
  std::int64_t eventsEmitted = 0;
  std::int64_t auiExposures = 0;
  std::int64_t auisCovered = 0;
  gfx::FramePool::Stats framePool;  ///< Zeroed when pooling is off.
};

class Fleet {
 public:
  /// The detector and executor are borrowed and shared by every session;
  /// both must outlive the fleet. The executor is installed into each
  /// session's DarpaConfig.
  Fleet(const cv::Detector& detector, core::DetectionExecutor& executor,
        FleetConfig config);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Runs the whole configured duration in lockstep epochs. May be called
  /// once.
  void run();

  [[nodiscard]] int sessionCount() const {
    return static_cast<int>(sessions_.size());
  }
  [[nodiscard]] DeviceSession& session(int i) { return *sessions_[i]; }
  [[nodiscard]] const DeviceSession& session(int i) const {
    return *sessions_[i];
  }
  [[nodiscard]] const FleetConfig& config() const { return config_; }
  [[nodiscard]] Millis now() const { return now_; }

  /// Aggregates every session's stats/ledger/coverage. The stat-merge path
  /// is deliberately lock-free: per-session ledgers/stats are
  /// session-confined (CONFINED_TO in their headers), so this may only run
  /// on the control thread at a barrier — construction, between run()
  /// epochs, or after run() — when phase()'s joins have made every session
  /// quiescent. A future sharded live merge takes LockRank::kStatMerge.
  [[nodiscard]] FleetSnapshot snapshot() const;

  /// The shared frame pool, or null when pooledFrames is off.
  [[nodiscard]] gfx::FramePool* framePool() { return pool_.get(); }
  [[nodiscard]] const gfx::FramePool* framePool() const { return pool_.get(); }

 private:
  /// Applies fn to every session, sharded session i -> worker (i % W).
  /// Joins before returning (the happens-before edge of the barrier).
  void phase(const std::function<void(DeviceSession&)>& fn);

  const cv::Detector* detector_;
  core::DetectionExecutor* executor_;
  FleetConfig config_;
  /// Declared before sessions_: every pooled Bitmap's slab-return deleter
  /// points back into the pool, so it must outlive all session state.
  std::unique_ptr<gfx::FramePool> pool_;
  /// The vector itself is fixed after construction; each element is
  /// confined to its phase() worker (static shard i % W) while a phase
  /// runs, and to the control thread between phases.
  std::vector<std::unique_ptr<DeviceSession>> sessions_;
  Millis now_ CONFINED_TO("control thread"){0};
  bool started_ CONFINED_TO("control thread") = false;
};

}  // namespace darpa::fleet
