// Fleet — N DeviceSessions driven to a common simulated horizon across W
// workers, by one of two interchangeable drivers.
//
// The determinism model, in one paragraph: simulated time is sliced into
// epochs. A session's slice j covers (target(j-1), target(j)] where
// target(j) = min(duration, j*epoch): the Looper first drains the detect
// completions delivered for slice j-1, then plays the session forward —
// sessions share no mutable state, so WHO runs a slice and WHEN in wall
// clock is irrelevant; only the slice sequence matters, and it is fixed by
// the config. Detect stages park DetectionRequests instead of blocking.
// For a coalescing backend (BatchingExecutor) all slice-j submissions
// fleet-wide form flush group G_j, flushed as one canonical
// (sessionId, seq)-sorted set — batch composition is a pure function of
// the group, so the per-image modeled costs are too. Non-coalescing
// backends price per image and flush per session. Every source of
// nondeterminism (submit interleaving, worker scheduling, steal order,
// batch assembly) is squeezed out at group boundaries, so a fleet run's
// aggregated DarpaStats/WorkLedger are identical across repeated runs,
// across worker counts, and across DRIVERS; only wall-clock changes.
//
// The two drivers:
//  * kWorkStealing (default) — sessions are resumable tasks in per-shard
//    run queues keyed by next-wake simulated time; idle workers steal from
//    siblings; a group flushes the moment no live session can still add to
//    it; sessions that submitted nothing never wait. One straggler slows
//    only itself. See fleet/scheduler.h.
//  * kLockstep — the reference driver: advance-all, join, flush, drain-all,
//    join, repeat. Structurally incapable of reordering anything, which is
//    exactly why it stays: FleetSchedulerTest holds the work-stealing
//    driver's digests byte-equal to it.
//
// Aggregation: under the lockstep driver, per-session ledgers and stats
// are scanned on the control thread at a quiescent barrier (the
// session-confined ownership rule in core/work_ledger.h). The
// work-stealing driver has no barrier: each retiring worker folds its
// session's totals into core::StatMergeShards (LockRank::kStatMerge), and
// snapshot() assembles the roll-up from the shards in session-id order —
// bit-identical to the quiescent scan. perf::DeviceModel consumes either
// unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/detection_executor.h"
#include "core/stat_merge.h"
#include "core/verdict_tier.h"
#include "fleet/device_session.h"
#include "fleet/scheduler.h"
#include "util/thread_annotations.h"

namespace darpa::fleet {

/// Which engine Fleet::run() uses. Byte-identical merged digests either
/// way; they differ only in wall-clock shape (see the header comment).
enum class FleetDriver {
  kWorkStealing,  ///< Barrier-free scheduler (the default).
  kLockstep,      ///< Reference driver: global epoch barriers.
};

struct FleetConfig {
  int sessions = 1;
  int workers = 1;        ///< Worker threads (1 = run on the calling thread).
  Millis epoch{1000};     ///< Slice quantum between executor flush groups.
  Millis duration{60'000};
  std::uint64_t seed = 606;
  FleetDriver driver = FleetDriver::kWorkStealing;
  core::DarpaConfig darpa;  ///< Per-session service config (sessionId and
                            ///< executor are overridden by the fleet).
  android::WindowManager::Config window;
  bool monkey = true;
  std::string packagePrefix = "com.fleet.app";
  /// Per-session config hook, applied after the fleet's own seeding and
  /// before the session is built. Lets tests and benches skew individual
  /// sessions (e.g. one deliberately hyperactive straggler for the
  /// steal-heavy path). The fleet re-asserts its own wiring (id, executor,
  /// frame pool) afterwards, and applies the hook identically under both
  /// drivers, so a tweaked fleet still digests identically across them.
  std::function<void(int, DeviceSession::Config&)> sessionTweak;
  /// Share one FramePool across every session's screen captures. Off, each
  /// capture heap-allocates (the pre-pool behavior); on, slabs recycle
  /// across sessions and epochs. Results are byte-identical either way —
  /// the pool only changes where the bytes live.
  bool pooledFrames = true;
  gfx::FramePool::Options framePool;  ///< Caps; zeros = unlimited. shards=0
                                      ///< resolves to the worker count.
  /// Own a fleet-wide SharedVerdictTier (the L2 behind every session's
  /// verdict cache) and point every session at it. Off by default: a
  /// tier-less fleet is byte-identical to the pre-tier build. On, sessions
  /// share verdicts for recurring screens and deferred detects coalesce
  /// cross-session — per-session verdicts are unchanged, only who pays
  /// for them moves, so digests trade byte-equality for verdict
  /// equivalence (see verdict_tier.h).
  bool sharedVerdictTier = false;
  core::SharedVerdictTier::Options verdictTier;  ///< shards=0 resolves to
                                                 ///< the worker count.
};

/// Fleet-wide roll-up.
struct FleetSnapshot {
  int sessions = 0;
  Millis simTime{0};             ///< Simulated time covered per session.
  core::DarpaStats stats;        ///< Summed over sessions.
  core::WorkLedger ledger;       ///< Merged over sessions.
  std::int64_t eventsEmitted = 0;
  std::int64_t auiExposures = 0;
  std::int64_t auisCovered = 0;
  gfx::FramePool::Stats framePool;  ///< Zeroed when pooling is off.
  /// Shared L2 counters (zeroed when the tier is off). Observability only
  /// — hit/suppression totals depend on cross-session timing, so nothing
  /// digest-stable may consume them.
  core::SharedVerdictTier::Stats verdictTier;
};

class Fleet {
 public:
  /// The detector and executor are borrowed and shared by every session;
  /// both must outlive the fleet. The executor is the shared detection
  /// BACKEND: sessions either submit to it directly (lockstep, or any
  /// synchronous executor) or through per-session SessionInbox proxies
  /// (work-stealing with an asynchronous backend).
  Fleet(const cv::Detector& detector, core::DetectionExecutor& executor,
        FleetConfig config);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Drives every session over the whole configured duration with the
  /// configured driver. Single-use: a second call aborts (a fleet's
  /// sessions have already consumed their event streams, so "run again"
  /// has no meaningful semantics).
  void run();

  [[nodiscard]] int sessionCount() const {
    return static_cast<int>(sessions_.size());
  }
  /// Aborts on an out-of-range index.
  [[nodiscard]] DeviceSession& session(int i) {
    checkSessionIndex(i);
    return *sessions_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const DeviceSession& session(int i) const {
    checkSessionIndex(i);
    return *sessions_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const FleetConfig& config() const { return config_; }
  [[nodiscard]] Millis now() const { return now_; }

  /// Aggregates every session's stats/ledger/coverage. Lockstep driver:
  /// a quiescent control-thread scan in session-id order (per-session
  /// state is session-confined, so this may only run at a barrier —
  /// construction, or after run()). Work-stealing driver: assembled from
  /// the StatMergeShards the retiring workers folded into, replayed in
  /// the same session-id order — bit-identical to the scan.
  [[nodiscard]] FleetSnapshot snapshot() const;

  /// Scheduling observability from the work-stealing run (steals, flush
  /// counts, per-session finish wall times). Null under kLockstep;
  /// meaningful after run().
  [[nodiscard]] const SchedulerMetrics* schedulerMetrics() const {
    return scheduler_ == nullptr ? nullptr : &scheduler_->metrics();
  }

  /// The shared frame pool, or null when pooledFrames is off.
  [[nodiscard]] gfx::FramePool* framePool() { return pool_.get(); }
  [[nodiscard]] const gfx::FramePool* framePool() const { return pool_.get(); }

  /// The fleet-wide verdict tier, or null when sharedVerdictTier is off.
  [[nodiscard]] core::SharedVerdictTier* verdictTier() { return tier_.get(); }
  [[nodiscard]] const core::SharedVerdictTier* verdictTier() const {
    return tier_.get();
  }

 private:
  /// Applies fn to every session, sharded session i -> worker (i % W).
  /// Joins before returning (the happens-before edge of the barrier).
  /// Lockstep driver only.
  void phase(const std::function<void(DeviceSession&)>& fn);
  void runLockstep();
  void checkSessionIndex(int i) const;  ///< Aborts when out of range.

  const cv::Detector* detector_;
  core::DetectionExecutor* executor_;
  FleetConfig config_;
  /// Declared before sessions_: every pooled Bitmap's slab-return deleter
  /// points back into the pool, so it must outlive all session state.
  std::unique_ptr<gfx::FramePool> pool_;
  /// Declared before sessions_ for the same lifetime rule: every session's
  /// pipeline holds a borrowed tier pointer, and a teardown flush can still
  /// run completions that publish into it.
  std::unique_ptr<core::SharedVerdictTier> tier_;
  /// Per-session capture proxies (work-stealing + asynchronous backend
  /// only; empty otherwise). Declared before sessions_ because each
  /// session's DarpaConfig points at its inbox.
  std::vector<std::unique_ptr<SessionInbox>> inboxes_;
  /// The vector itself is fixed after construction; each element is
  /// confined to the worker currently running its slice (hand-offs happen
  /// through the scheduler's queues, or phase()'s spawn/join edges), and
  /// to the control thread outside run().
  std::vector<std::unique_ptr<DeviceSession>> sessions_;
  /// Retirement fold target + snapshot source (work-stealing only).
  std::unique_ptr<core::StatMergeShards> statMerge_;
  std::unique_ptr<WorkStealingScheduler> scheduler_;
  Millis now_ CONFINED_TO("control thread"){0};
  bool started_ CONFINED_TO("control thread") = false;
};

}  // namespace darpa::fleet
