#include "fleet/device_session.h"

#include <algorithm>

namespace darpa::fleet {

namespace {

core::DarpaConfig withSessionId(core::DarpaConfig config, int id) {
  config.sessionId = id;
  return config;
}

}  // namespace

DeviceSession::DeviceSession(const cv::Detector& detector, Config config)
    : config_(std::move(config)),
      system_(config_.window),
      service_(detector, withSessionId(config_.darpa, config_.id)),
      app_(system_, config_.profile, config_.appSeed),
      monkey_(system_, config_.monkeySeed) {
  if (config_.framePool != nullptr) {
    system_.windowManager.setFramePool(config_.framePool, config_.id);
  }
  system_.accessibility.connect(service_);
  // The scoring listener records the positive-verdict timeline (Fig.-8
  // coverage needs it) and forwards to the harness's listener, exactly
  // where the hand-wired benches used to hook in.
  service_.setAnalysisListener(
      [this](bool isAui, const std::vector<cv::Detection>& detections) {
        if (isAui) positiveAnalyses_.push_back(system_.clock.now());
        if (userListener_) userListener_(isAui, detections);
      });
}

// Members tear down in reverse order: monkey and app first, then the
// service (its destructor removes decorations through the still-alive
// window manager), then the Android system. In-flight deferred detections
// must have been flushed by then — the Fleet drains its executor before
// sessions are destroyed.
DeviceSession::~DeviceSession() = default;

void DeviceSession::start() {
  app_.start(config_.duration);
  if (config_.monkey) {
    monkey_.start(system_.clock.now() + config_.duration,
                  config_.monkeyMinGapMs, config_.monkeyMaxGapMs);
  }
}

void DeviceSession::advanceTo(Millis deadline) {
  system_.looper.runUntil(deadline);
}

void DeviceSession::runToCompletion() {
  start();
  advanceTo(system_.clock.now() + config_.duration);
}

std::int64_t DeviceSession::auisCovered() const {
  std::int64_t covered = 0;
  for (const apps::AuiExposure& exposure : app_.exposures()) {
    const bool hit = std::any_of(
        positiveAnalyses_.begin(), positiveAnalyses_.end(), [&](Millis t) {
          return t >= exposure.shownAt && t < exposure.hiddenAt;
        });
    covered += hit;
  }
  return covered;
}

}  // namespace darpa::fleet
