#include "study/user_study.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "cv/features.h"
#include "dataset/dataset.h"
#include "util/rng.h"

namespace darpa::study {

namespace {

Persona samplePersona(Rng& rng) {
  Persona p;
  // The paper's sample skews young and educated (recruited online).
  const double ageWeights[] = {0.04, 0.764, 0.15, 0.046};
  p.ageGroup = static_cast<int>(rng.pickWeighted(ageWeights));
  p.bachelorOrAbove = rng.chance(0.939);
  p.male = rng.chance(74.0 / 165.0);
  p.usedForeignApps = rng.chance(112.0 / 165.0);
  // Younger, more-educated users are savvier on average.
  double savvy = 0.55;
  savvy += p.ageGroup == 1 ? 0.1 : (p.ageGroup >= 2 ? -0.15 : 0.0);
  savvy += p.bachelorOrAbove ? 0.05 : -0.1;
  p.techSavvy = std::clamp(savvy + rng.normal(0.0, 0.12), 0.05, 0.95);
  return p;
}

/// Visual salience of an option measured on the rendered screenshot:
/// combines its size, pop-out contrast against the surroundings, and how
/// central it sits — the same cues §III-A identifies as the asymmetry.
double optionSalience(const cv::FeatureMap& map, const Rect& box) {
  const double W = map.fullSize().width;
  const double H = map.fullSize().height;
  const double areaFrac =
      static_cast<double>(box.area()) / std::max(W * H, 1.0);
  const double sizeTerm = std::sqrt(std::min(areaFrac * 14.0, 1.0));
  const double contrastTerm = std::min(
      (std::fabs(map.ringContrast(cv::Channel::kLuma, box)) +
       std::fabs(map.ringContrast(cv::Channel::kSaliency, box)) * 2.0) *
          3.0,
      1.0);
  const Point c = box.center();
  const double dx = (c.x - W / 2) / (W / 2);
  const double dy = (c.y - H / 2) / (H / 2);
  const double centerTerm = 1.0 - std::min(std::sqrt(dx * dx + dy * dy), 1.0);
  return 0.42 * sizeTerm + 0.38 * contrastTerm + 0.20 * centerTerm;
}

}  // namespace

StudyResults runUserStudy(const StudyConfig& config) {
  Rng rng(config.seed);
  StudyResults results;
  results.participants = config.participants;

  // Render a pool of AUI examples whose measured salience drives every
  // perception answer.
  dataset::DatasetConfig dataConfig;
  dataConfig.totalScreenshots = 40;
  dataConfig.seed = rng.next();
  const dataset::AuiDataset examples = dataset::AuiDataset::build(dataConfig);

  struct ExampleSalience {
    std::vector<double> ago;
    std::vector<double> upo;
  };
  std::vector<ExampleSalience> pool;
  for (std::size_t i = 0; i < examples.size(); ++i) {
    const dataset::Sample sample = examples.materialize(i);
    const cv::FeatureMap map(sample.image);
    ExampleSalience s;
    for (const dataset::Annotation& a : sample.annotations) {
      const double sal = optionSalience(map, a.box);
      (a.label == dataset::BoxLabel::kAgo ? s.ago : s.upo).push_back(sal);
    }
    if (!s.upo.empty()) pool.push_back(std::move(s));
  }

  int misleadingAgree = 0;
  int often = 0, occasionally = 0, never = 0;
  int bothered = 0;
  int moreInChina = 0, foreignUsers = 0;
  int upoEqually = 0;
  int wantHighlight = 0;
  int bachelor = 0, age18to35 = 0;
  double agoRatingSum = 0.0, upoRatingSum = 0.0;
  std::int64_t agoRatings = 0, upoRatings = 0;
  double demandSum = 0.0;

  for (int i = 0; i < config.participants; ++i) {
    const Persona p = samplePersona(rng);
    bachelor += p.bachelorOrAbove;
    age18to35 += p.ageGroup == 1;

    // Q3-Q5: accessibility ratings for the options of `ratedExamples` AUIs.
    double personalAgoAvg = 0.0, personalUpoAvg = 0.0;
    int personalUpoCount = 0, personalAgoCount = 0;
    for (int e = 0; e < config.ratedExamples; ++e) {
      const ExampleSalience& ex = pool[rng.next() % pool.size()];
      for (double sal : ex.ago) {
        const double rating = std::clamp(
            2.2 + 6.4 * sal + rng.normal(0.0, 0.9), 1.0, 10.0);
        agoRatingSum += rating;
        personalAgoAvg += rating;
        ++agoRatings;
        ++personalAgoCount;
      }
      for (double sal : ex.upo) {
        const double rating = std::clamp(
            2.2 + 6.4 * sal + rng.normal(0.0, 0.9), 1.0, 10.0);
        upoRatingSum += rating;
        personalUpoAvg += rating;
        ++upoRatings;
        ++personalUpoCount;
      }
    }
    personalAgoAvg /= std::max(personalAgoCount, 1);
    personalUpoAvg /= std::max(personalUpoCount, 1);

    // Q1: "are these misleading?" — driven by the perceived asymmetry.
    const double asymmetry = personalAgoAvg - personalUpoAvg;
    if (asymmetry + rng.normal(0.0, 0.8) > 0.8) ++misleadingAgree;

    // Q2: misclick frequency across simulated weekly encounters. Low UPO
    // salience means the escape option is genuinely hard to hit.
    int misclicks = 0;
    // A small fraction of participants barely use apps; they are the
    // plausible "never misclick" answers (4/165 in the paper).
    const int encounters =
        rng.chance(0.05) ? 3 : config.weeklyEncounters;
    for (int e = 0; e < encounters; ++e) {
      const ExampleSalience& ex = pool[rng.next() % pool.size()];
      const double upoSal =
          ex.upo.empty() ? 0.2 : ex.upo[rng.next() % ex.upo.size()];
      const double pMisclick = std::clamp(
          0.04 + 0.66 * (1.0 - upoSal) * (1.25 - p.techSavvy), 0.0, 0.95);
      misclicks += rng.chance(pMisclick) ? 1 : 0;
    }
    const double misclickRate =
        static_cast<double>(misclicks) / encounters;
    if (misclickRate >= 0.25) {
      ++often;
    } else if (misclickRate > 0.02) {
      ++occasionally;
    } else {
      ++never;
    }

    // Q7: bothered by unintended clicks (savvier users more annoyed).
    if (misclickRate > 0.02 && rng.chance(0.55 + 0.45 * p.techSavvy)) {
      ++bothered;
    }

    // Q8: among foreign-app users, do Chinese apps have more AUIs?
    if (p.usedForeignApps) {
      ++foreignUsers;
      if (rng.chance(0.768)) ++moreInChina;
    }

    // Q9: is the UPO at least as important as the AGO?
    if (rng.chance(0.45 + 0.45 * p.techSavvy)) ++upoEqually;

    // Q10-Q12: demand for a mitigation scales with how much the user
    // suffers (misclick rate) and their perceived asymmetry.
    const double demand = std::clamp(
        5.3 + 3.6 * misclickRate + 0.35 * asymmetry + rng.normal(0.0, 1.0),
        1.0, 10.0);
    demandSum += demand;
    if (rng.chance(0.35 + 0.4 * misclickRate + 0.05 * asymmetry)) {
      ++wantHighlight;
    }
  }

  const double n = config.participants;
  results.misleadingAgreePct = 100.0 * misleadingAgree / n;
  results.avgAgoRating = agoRatingSum / std::max<std::int64_t>(agoRatings, 1);
  results.avgUpoRating = upoRatingSum / std::max<std::int64_t>(upoRatings, 1);
  results.upoEquallyImportantPct = 100.0 * upoEqually / n;
  results.oftenMisclickPct = 100.0 * often / n;
  results.occasionallyMisclickPct = 100.0 * occasionally / n;
  results.neverMisclickPct = 100.0 * never / n;
  results.botheredPct = 100.0 * bothered / n;
  results.moreAuisInChinaPct =
      foreignUsers == 0 ? 0.0 : 100.0 * moreInChina / foreignUsers;
  results.demandRating = demandSum / n;
  results.wantHighlightPct = 100.0 * wantHighlight / n;
  results.bachelorPct = 100.0 * bachelor / n;
  results.age18to35Pct = 100.0 * age18to35 / n;
  return results;
}

}  // namespace darpa::study
