// User-study simulation (§III-B).
//
// The paper surveys 165 app users about AUIs: perceived misleadingness,
// accessibility ratings for AGO vs UPO, misclick frequency, and demand for
// a mitigation. We cannot survey humans, so we simulate a persona
// population whose *perception model is grounded in the rendered pixels*:
// each persona rates an option by its actual visual salience (area, ring
// contrast, centrality measured on the generated screenshots), modulated by
// tech-savviness and noise. Findings 1-3 then emerge from the same visual
// asymmetry the CV detector exploits, rather than being hard-coded survey
// percentages. The bench prints paper-vs-simulated side by side.
#pragma once

#include <cstdint>

namespace darpa::study {

/// One simulated participant.
struct Persona {
  int ageGroup = 1;            ///< 0:<18, 1:18-35, 2:36-50, 3:>50.
  bool bachelorOrAbove = true; ///< 93.9 % in the paper's sample.
  bool male = false;           ///< 74/165 in the paper.
  double techSavvy = 0.5;      ///< 0..1; higher = fewer misclicks.
  bool usedForeignApps = false;
};

/// Aggregated questionnaire outcomes (the quantities of Findings 1-3).
struct StudyResults {
  int participants = 0;

  // Finding 1 — AUIs are misleading.
  double misleadingAgreePct = 0;   ///< Q1; paper: 94.5 %.
  double avgAgoRating = 0;         ///< Q3-Q5; paper: 7.49 / 10.
  double avgUpoRating = 0;         ///< Q3-Q5; paper: 4.38 / 10.
  double upoEquallyImportantPct = 0;  ///< Q9; paper: 72.7 %.

  // Finding 2 — AUIs hurt usability.
  double oftenMisclickPct = 0;        ///< Q2; paper: 77.0 %.
  double occasionallyMisclickPct = 0; ///< Q2; paper: 20.6 %.
  double neverMisclickPct = 0;        ///< Q2; paper: 2.4 %.
  double botheredPct = 0;             ///< Q7; paper: 83.0 %.
  double moreAuisInChinaPct = 0;      ///< Q8; paper: 76.8 % (of 112).

  // Finding 3 — users want a mitigation.
  double demandRating = 0;      ///< paper: 7.64 / 10.
  double wantHighlightPct = 0;  ///< paper: > 50 %.

  // Demographics echoes.
  double bachelorPct = 0;  ///< paper: 93.9 %.
  double age18to35Pct = 0; ///< paper: 76.4 %.
};

struct StudyConfig {
  int participants = 165;
  /// AUI examples each participant rates (the paper shows 3 in Q3-Q5).
  int ratedExamples = 3;
  /// Simulated everyday encounters used for the misclick-frequency answer.
  int weeklyEncounters = 24;
  std::uint64_t seed = 1121;  ///< Survey opened Nov 21, 2022.
};

/// Runs the simulated survey.
[[nodiscard]] StudyResults runUserStudy(const StudyConfig& config);

}  // namespace darpa::study
