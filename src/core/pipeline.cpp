#include "core/pipeline.h"

#include <utility>

#include "analysis/lint.h"
#include "core/darpa_service.h"
#include "core/verdict_tier.h"

namespace darpa::core {

// ----------------------------------------------------------- VerdictCache

const VerdictCache::Entry* VerdictCache::find(std::uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);
  return &lru_.front().second;
}

void VerdictCache::put(std::uint64_t key, Entry entry) {
  if (capacity_ == 0) return;
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

void VerdictCache::clear() {
  lru_.clear();
  index_.clear();
}

// ----------------------------------------------------------------- stages

bool LintStage::shouldRun(const AnalysisContext& ctx) const {
  return !ctx.fromCache && ctx.config->lintPrefilter != nullptr &&
         ctx.wm != nullptr;
}

void LintStage::run(AnalysisContext& ctx, WorkLedger& ledger) {
  const analysis::LintReport lint = ctx.config->lintPrefilter->run(
      ctx.frame->dump(), ctx.wm->config().screenSize);
  ++ctx.stats->lintRuns;
  ledger.recordRun(Stage::kLint, ledger.costs().lintCpuMs);
  if (!lint.verdict.confident) return;
  ctx.resolvedByLint = true;
  ++ctx.stats->cvSkippedByLint;
  if (lint.verdict.isAui) {
    const auto confidence = static_cast<float>(lint.verdict.score);
    for (const Rect& box : lint.verdict.upoBoxes) {
      ctx.detections.push_back({box, dataset::BoxLabel::kUpo, confidence});
    }
    for (const Rect& box : lint.verdict.agoBoxes) {
      ctx.detections.push_back({box, dataset::BoxLabel::kAgo, confidence});
    }
  }
}

bool ScreenshotStage::shouldRun(const AnalysisContext& ctx) const {
  return !ctx.fromCache && !ctx.resolvedByLint;
}

void ScreenshotStage::run(AnalysisContext& ctx, WorkLedger& ledger) {
  gfx::Bitmap shot = ctx.service->takeScreenshot();
  ctx.screenshotOk = ctx.frame != nullptr && !shot.empty();
  if (!ctx.screenshotOk) {
    // A failed capture is not billable work and must not drift the stats:
    // no screenshot was taken, so none is counted, priced, or vaulted.
    ledger.recordSkip(Stage::kScreenshot);
    return;
  }
  // The allocation axis reads the capture's slab provenance: a pooled
  // reuse is the allocation the FramePool saved, anything else is a fresh
  // heap buffer. Neither record adds modeled CPU.
  if (shot.source() == gfx::SlabSource::kPoolReused) {
    ledger.recordPooledReuse(Stage::kScreenshot, shot.pixelBytes());
  } else {
    ledger.recordAlloc(Stage::kScreenshot, shot.pixelBytes());
  }
  // The pixels join the pass's frame (zero-copy) and the vault takes
  // shared custody of the same frame — one buffer, every holder.
  ctx.frame->attachPixels(std::move(shot));
  ctx.vault->store(ctx.frame);
  ++ctx.stats->screenshotsTaken;
  ledger.recordRun(Stage::kScreenshot, ledger.costs().screenshotCpuMs);
}

bool DetectStage::shouldRun(const AnalysisContext& ctx) const {
  return !ctx.fromCache && !ctx.resolvedByLint && ctx.screenshotOk;
}

void DetectStage::run(AnalysisContext& ctx, WorkLedger& ledger) {
  // Never reached: the pipeline intercepts Stage::kDetect and routes the
  // work through its DetectionExecutor (see AnalysisPipeline::advance).
  (void)ctx;
  (void)ledger;
}

bool VerdictStage::shouldRun(const AnalysisContext& ctx) const {
  return !ctx.fromCache;
}

void VerdictStage::run(AnalysisContext& ctx, WorkLedger& ledger) {
  bool hasUpo = false;
  bool hasAgo = false;
  for (const cv::Detection& det : ctx.detections) {
    if (det.label == dataset::BoxLabel::kUpo) hasUpo = true;
    if (det.label == dataset::BoxLabel::kAgo) hasAgo = true;
  }
  ctx.isAui = ctx.config->requireUpoForAui ? hasUpo : (hasUpo || hasAgo);
  ledger.recordRun(Stage::kVerdict, ledger.costs().verdictCpuMs);
  // Cache only verdicts that rest on real evidence (a lint resolution or a
  // usable capture); a transient screenshot failure must stay transient.
  const bool evidenced = ctx.resolvedByLint || ctx.screenshotOk;
  if (cache_->enabled() && ctx.wm != nullptr && evidenced) {
    cache_->put(ctx.fingerprint(), {ctx.isAui, ctx.detections});
  }
  // Publish to the fleet L2 with the evidence grade attached; the tier's
  // poisoning guard enforces the same seeding rule fleet-wide (an
  // unevidenced publish is counted and dropped there, keeping one
  // session's failed capture from becoming everyone's verdict).
  if (tier_ != nullptr && ctx.wm != nullptr) {
    const auto evidence = ctx.resolvedByLint
                              ? SharedVerdictTier::Evidence::kLint
                              : (ctx.screenshotOk
                                     ? SharedVerdictTier::Evidence::kCapture
                                     : SharedVerdictTier::Evidence::kNone);
    tier_->publish(ctx.fingerprint(), {ctx.isAui, ctx.detections}, evidence);
  }
}

bool ActStage::shouldRun(const AnalysisContext& ctx) const {
  return ctx.isAui;
}

void ActStage::run(AnalysisContext& ctx, WorkLedger& ledger) {
  (void)ledger;  // Act work is priced inside the service helpers.
  ++ctx.stats->auisFlagged;
  if (ctx.config->autoBypass) {
    ctx.service->tryBypass(ctx.detections);
    return;
  }
  if (ctx.config->decorate) {
    // The §IV-D anchor-overlay offset is measured inside decorate() — only
    // this path consumes it, so only this path pays for it.
    ctx.service->decorate(ctx.detections);
  }
}

// --------------------------------------------------------------- pipeline

AnalysisPipeline::AnalysisPipeline(std::size_t cacheCapacity,
                                   SharedVerdictTier* tier)
    : cache_(cacheCapacity), tier_(tier) {
  stages_.push_back(std::make_unique<LintStage>());
  stages_.push_back(std::make_unique<ScreenshotStage>());
  stages_.push_back(std::make_unique<DetectStage>());
  stages_.push_back(std::make_unique<VerdictStage>(cache_, tier_));
  stages_.push_back(std::make_unique<ActStage>());
}

void AnalysisPipeline::run(std::shared_ptr<AnalysisContext> ctx,
                           WorkLedger& ledger, DetectionExecutor& executor,
                           AnalysisDone done) {
  // One ScreenFrame per pass: the UI dump is captured once, shared by the
  // fingerprint probe and the lint stage, and later joined by the pixels
  // (screenshot stage) — the frame is the single owner of everything the
  // pass perceives. Decoration overlays are never part of the dump (they
  // live outside the app window), so a decorated screen fingerprints like
  // its clean self.
  if (ctx->wm != nullptr) {
    const android::Window* top = ctx->wm->topAppWindow();
    ctx->frame = std::make_shared<ScreenFrame>(
        ctx->wm->dumpTopWindow(),
        top != nullptr ? top->packageName() : std::string{});
    // Memoize the fingerprint on the session thread, before the frame can
    // be shared with executor worker threads (ScreenFrame's protocol); the
    // value itself is re-read wherever it is needed.
    (void)ctx->frame->fingerprint();
  }

  // Verdict-cache probe, L1 then L2: a hit in either tier resolves the
  // whole analysis for the cost of the dump walk + lookup(s) and routes
  // straight to the act stage. An L2 hit is promoted into L1 so the next
  // repeat of this screen is a session-local hit again. With no tier
  // wired this block is byte-identical to the historical L1-only probe.
  if (ctx->wm != nullptr && (cache_.enabled() || tier_ != nullptr)) {
    ledger.recordRun(Stage::kVerdict, ledger.costs().cacheLookupCpuMs);
    const VerdictCache::Entry* hit =
        cache_.enabled() ? cache_.find(ctx->fingerprint()) : nullptr;
    if (hit != nullptr) {
      ledger.recordCacheHit();
      ctx->fromCache = true;
      ctx->isAui = hit->isAui;
      ctx->detections = hit->detections;
    } else if (tier_ != nullptr) {
      // The L2 probe is a second lookup; price it as one when the L1
      // probe above already paid the first.
      if (cache_.enabled()) {
        ledger.recordRun(Stage::kVerdict, ledger.costs().cacheLookupCpuMs);
      }
      if (auto shared = tier_->find(ctx->fingerprint())) {
        ledger.recordCacheHit();
        ctx->fromCache = true;
        ctx->fromSharedTier = true;
        ctx->isAui = shared->isAui;
        ctx->detections = std::move(shared->detections);
        if (cache_.enabled()) {
          cache_.put(ctx->fingerprint(), {ctx->isAui, ctx->detections});
        }
      } else {
        ledger.recordCacheMiss();
      }
    } else {
      ledger.recordCacheMiss();
    }
  }

  // In-flight coalescing (deferred backends only): if a detect for this
  // exact screen is already out, park the whole pass — nothing has run yet
  // — and replay it once the primary lands. Inline backends never get here
  // with an in-flight entry (their completions run inside submit()).
  if (!ctx->fromCache && !executor.synchronous() && ctx->wm != nullptr) {
    if (const auto it = inflight_.find(ctx->fingerprint());
        it != inflight_.end()) {
      ctx->pass = ledger.suspendAnalysis();
      it->second.push_back({std::move(ctx), std::move(done)});
      ++coalesced_;
      return;
    }
  }

  advance(0, std::move(ctx), ledger, executor, std::move(done));
}

void AnalysisPipeline::advance(std::size_t from,
                               std::shared_ptr<AnalysisContext> ctx,
                               WorkLedger& ledger, DetectionExecutor& executor,
                               AnalysisDone done) {
  for (std::size_t i = from; i < stages_.size(); ++i) {
    AnalysisStage& stage = *stages_[i];
    if (!stage.shouldRun(*ctx)) {
      ledger.recordSkip(stage.kind());
      continue;
    }
    if (stage.kind() == Stage::kDetect) {
      // Detach into the executor; the completion resumes at stage i + 1.
      submitDetect(i + 1, std::move(ctx), ledger, executor, std::move(done));
      return;
    }
    // Wall-clock observability around the stage's real execution; the
    // stage's own recordRun keeps pricing the modeled axis. Audited: both
    // reads feed only recordActual -> StageTally::actualUs, which nothing
    // digest-stable may consume (work_ledger.h).
    // detlint: begin-allow(wall-clock-in-digest-path) observability axis only
    const double startUs = wallMicros();
    stage.run(*ctx, ledger);
    ledger.recordActual(stage.kind(), wallMicros() - startUs);
    // detlint: end-allow(wall-clock-in-digest-path)
  }
  if (done) done(*ctx);
}

void AnalysisPipeline::submitDetect(std::size_t next,
                                    std::shared_ptr<AnalysisContext> ctx,
                                    WorkLedger& ledger,
                                    DetectionExecutor& executor,
                                    AnalysisDone done) {
  DetectionRequest request;
  // Custody of the frame transfers out of the vault and into the request —
  // a refcount move, not a pixel copy. The executor drops its reference
  // after the model ran and the frame scrubs itself on last release, so
  // the §IV-E single-screenshot discipline holds across deferred backends.
  request.frame = ctx->vault->take();
  request.detector = ctx->detector;
  request.sessionId = ctx->sessionId;
  request.seq = nextSeq_++;
  request.replyLooper =
      ctx->service != nullptr && ctx->service->connected()
          ? ctx->service->looper()
          : nullptr;
  // Park the ledger's in-flight pass so other passes of this session can
  // begin and end while the detection is out; the completion restores it.
  // For the inline executor the completion runs before submit() returns,
  // making the park/restore an exact no-op.
  ctx->pass = ledger.suspendAnalysis();
  // Register the in-flight key so same-fingerprint passes coalesce behind
  // this request instead of duplicating it (deferred backends only; the
  // inline executor completes before run() could ever observe the entry).
  if (!executor.synchronous()) inflight_.try_emplace(ctx->fingerprint());
  // Cross-SESSION single-flight (tiered pipelines only): tag the request
  // with the screen fingerprint so a deferred executor's flush can
  // coalesce concurrent misses from different sessions into one model run
  // (the fingerprint determines the verdict, so any leader's detections
  // serve every follower). Untagged (0) requests never coalesce.
  request.coalesceKey = tier_ != nullptr ? ctx->fingerprint() : 0;
  request.onComplete = [this, next, ctx, &ledger, &executor,
                        done = std::move(done)](
                           std::vector<cv::Detection> detections,
                           int batchSize,
                           const DetectionTiming& timing) mutable {
    ledger.resumeAnalysis(ctx->pass);
    ctx->detections = std::move(detections);
    if (batchSize == 0) {
      // Single-flight suppressed delivery: another session's canonical
      // leader ran the model in this flush and these are its detections.
      // No model ran for this request, so the stage prices at zero
      // modeled CPU — the whole point of the coalescing — and the saved
      // detect is reported to the tier's observability counters.
      ledger.recordRun(Stage::kDetect, 0.0, timing.actualMicros);
      if (tier_ != nullptr) tier_->noteSuppressedDetect();
    } else {
      // Deferred backends report the batch the request rode in; its
      // amortized per-image share prices the stage. An unbatched detect
      // (batchSize 1) costs exactly costMacsPerImage. The executor's
      // measured wall clock and scratch warm-up ride along on their own
      // observability axes.
      const double macsShare =
          ctx->detector->costMacsPerBatch(batchSize) / batchSize;
      ledger.recordRun(Stage::kDetect, macsShare / ledger.costs().macsPerCpuMs,
                       timing.actualMicros);
      ledger.recordScratchGrowth(Stage::kDetect, timing.scratchGrowths,
                                 timing.scratchGrownBytes);
    }
    advance(next, ctx, ledger, executor, std::move(done));
    // The pass (verdict cached, epilogue run) is complete: release the
    // in-flight key, then replay the coalesced followers. The cache now
    // holds this screen's verdict, so they resolve as the cache hits they
    // would have been under a synchronous backend; a follower whose screen
    // moved on re-runs in full and may become a new primary.
    auto node = inflight_.extract(ctx->fingerprint());
    if (!node.empty()) {
      for (Follower& follower : node.mapped()) {
        ledger.resumeAnalysis(follower.ctx->pass);
        run(std::move(follower.ctx), ledger, executor,
            std::move(follower.done));
      }
    }
  };
  executor.submit(std::move(request));
}

}  // namespace darpa::core
