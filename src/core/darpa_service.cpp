#include "core/darpa_service.h"

#include <algorithm>
#include <memory>

#include "analysis/lint.h"
#include "core/decoration.h"
#include "util/log.h"

namespace darpa::core {

DarpaService::DarpaService(const cv::Detector& detector, DarpaConfig config)
    : detector_(&detector),
      config_(config),
      pipeline_(config.verdictCacheCapacity, config.verdictTier) {}

DarpaService::~DarpaService() {
  if (connected()) clearDecorations();
}

void DarpaService::onServiceConnected() {
  // Fig. 5 "Event registration": all 23 event types, 200 ms notification
  // delay to avoid being overwhelmed by redundant UI updates.
  setEventTypesMask(android::kAllEventTypesMask);
  setNotificationTimeout(config_.notificationDelay);
  logInfo("DARPA connected: ct=", config_.cutoff.count, "ms decorate=",
          config_.decorate, " bypass=", config_.autoBypass,
          " cache=", config_.verdictCacheCapacity);
}

void DarpaService::onAccessibilityEvent(
    const android::AccessibilityEvent& event) {
  // Selective monitoring: trusted packages are exempt before any work is
  // accounted (the framework still wakes us, but we return immediately).
  if (!config_.trustedPackages.empty() &&
      config_.trustedPackages.contains(event.packageName)) {
    return;
  }
  ++stats_.eventsReceived;
  ledger_.recordEvent(event.time);
  logDebug("DARPA event ", android::eventTypeName(event.type), " from ",
           event.packageName);
  // Debounce to stability: any UI update resets the ct timer, so only
  // screens that stay unchanged for `cutoff` get analyzed.
  android::Looper* loop = looper();
  if (loop == nullptr) return;
  if (pendingAnalysis_ != 0) {
    loop->cancel(pendingAnalysis_);
  } else {
    // First event of a new burst: the screen's debounce wait is measured
    // from here until the analysis actually fires.
    burstStartAt_ = event.time;
  }
  pendingAnalysis_ = loop->postDelayed(
      [this] {
        pendingAnalysis_ = 0;
        analyzeNow();
      },
      config_.cutoff);
}

DetectionExecutor& DarpaService::detectionExecutor() const {
  return config_.executor != nullptr ? *config_.executor
                                     : defaultInlineExecutor();
}

void DarpaService::analyzeNow() {
  if (!connected()) return;
  android::WindowManager* wm = windowManager();

  // Selective-monitoring guard for mid-debounce app transitions: if a
  // trusted package reached the foreground after the trigger event, its
  // screen must not be analyzed — and in particular must never touch the
  // verdict cache (neither probing it nor seeding it).
  if (wm != nullptr && !config_.trustedPackages.empty()) {
    const android::Window* top = wm->topAppWindow();
    if (top != nullptr &&
        config_.trustedPackages.contains(top->packageName())) {
      clearDecorations();
      burstStartAt_ = Millis{-1};
      return;
    }
  }

  ++stats_.analysesRun;
  const Millis now = looper() != nullptr ? looper()->now() : Millis{0};
  Millis debounceLatency{0};
  if (burstStartAt_.count >= 0) {
    debounceLatency = now - burstStartAt_;
    burstStartAt_ = Millis{-1};
  }
  ledger_.beginAnalysis(now, debounceLatency);

  // Remove our own decorations before the pipeline runs so the model never
  // sees (and re-detects) DARPA's overlay.
  clearDecorations();

  auto ctx = std::make_shared<AnalysisContext>();
  ctx->service = this;
  ctx->config = &config_;
  ctx->detector = detector_;
  ctx->wm = wm;
  ctx->vault = &vault_;
  ctx->stats = &stats_;
  ctx->now = now;
  ctx->sessionId = config_.sessionId;
  // The epilogue runs when the pass fully completes: synchronously for the
  // inline executor, or inside the deferred completion on our Looper at the
  // executor's flush. Everything it touches is owned by the service, which
  // outlives any in-flight pass (fleets flush before teardown).
  pipeline_.run(ctx, ledger_, detectionExecutor(), [this](AnalysisContext& c) {
    // A cache-served analysis counts against the tier that served it.
    if (c.fromCache) {
      ++(c.fromSharedTier ? stats_.verdictTierHits : stats_.verdictCacheHits);
    }
    lastDetections_ = c.detections;
    lastWasAui_ = c.isAui;
    ledger_.endAnalysis();
    if (analysisListener_) analysisListener_(c.isAui, c.detections);
  });
}

void DarpaService::decorate(const std::vector<cv::Detection>& detections) {
  decorateDetections(detections, measureWindowOffset());
}

bool DarpaService::decorateVirtualNode(std::string_view virtualId,
                                       bool asUpo) {
  android::WindowManager* wm = windowManager();
  if (wm == nullptr || virtualId.empty()) return false;
  // The hybrid dump already carries every virtual node's bounds in screen
  // coordinates (page bounds translated through the hosting WebView), so
  // resolving the id is a linear scan — no native findViewById analogue
  // exists for virtual nodes.
  const android::UiDump dump = wm->dumpTopWindow();
  for (const android::UiNode& node : dump) {
    if (!node.isVirtual || node.virtualId != virtualId) continue;
    cv::Detection det;
    det.box = node.boundsOnScreen;
    det.label = asUpo ? dataset::BoxLabel::kUpo : dataset::BoxLabel::kAgo;
    det.confidence = 1.0f;
    decorateDetections({det}, measureWindowOffset());
    return true;
  }
  return false;
}

void DarpaService::tryBypass(const std::vector<cv::Detection>& detections) {
  // Click the most confident UPO to dismiss the AUI on the user's behalf.
  const cv::Detection* bestUpo = nullptr;
  for (const cv::Detection& det : detections) {
    if (det.label != dataset::BoxLabel::kUpo) continue;
    if (bestUpo == nullptr || det.confidence > bestUpo->confidence) {
      bestUpo = &det;
    }
  }
  if (bestUpo == nullptr) return;
  const Millis now = looper() != nullptr ? looper()->now() : Millis{0};
  const bool repeat = iou(bestUpo->box, lastBypassBox_) > 0.8 &&
                      now - lastBypassAt_ < config_.bypassCooldown;
  if (repeat) return;
  // The cooldown covers attempts, not landed clicks: the dispatched gesture
  // itself raises touch events that re-trigger analysis, so an unconsumed
  // click retried every pass would spin the event loop forever.
  lastBypassBox_ = bestUpo->box;
  lastBypassAt_ = now;
  if (dispatchClick(bestUpo->box.center())) {
    ++stats_.bypassClicks;
    ledger_.recordBypass();
  }
}

Point DarpaService::measureWindowOffset() {
  // §IV-D: Android exposes no API for the app-window offset, so DARPA adds
  // an invisible 1x1 anchor view at window coordinates (0, 0) and reads its
  // location on screen.
  android::WindowManager* wm = windowManager();
  if (wm == nullptr) return {0, 0};
  ++stats_.anchorMeasurements;
  auto anchor = std::make_unique<android::View>();
  anchor->setVisible(false);
  const int anchorId = wm->addOverlay(std::move(anchor), {0, 0, 1, 1});
  const auto location = wm->overlayLocationOnScreen(anchorId);
  wm->removeOverlay(anchorId);
  return location.value_or(Point{0, 0});
}

void DarpaService::decorateDetections(
    const std::vector<cv::Detection>& detections, Point windowOffset) {
  android::WindowManager* wm = windowManager();
  if (wm == nullptr) return;
  // Keep only the most confident detections of each class.
  std::vector<cv::Detection> selected(detections.begin(), detections.end());
  std::sort(selected.begin(), selected.end(),
            [](const cv::Detection& a, const cv::Detection& b) {
              return a.confidence > b.confidence;
            });
  int upoKept = 0;
  int agoKept = 0;
  std::vector<cv::Detection> toDraw;
  for (const cv::Detection& det : selected) {
    int& kept = det.label == dataset::BoxLabel::kUpo ? upoKept : agoKept;
    if (kept >= config_.maxDecorationsPerClass) continue;
    ++kept;
    toDraw.push_back(det);
  }
  for (const cv::Detection& det : toDraw) {
    const bool isUpo = det.label == dataset::BoxLabel::kUpo;
    const Color color = isUpo ? config_.upoColor : config_.agoColor;
    auto view = std::make_unique<DecorationView>(
        color, config_.decorationThickness,
        isUpo ? config_.upoStyle : config_.agoStyle);
    // Grow the box so the border ring sits around the option, then convert
    // screen -> window coordinates with the measured offset (Fig. 6).
    const Rect target = det.box.inflated(config_.decorationThickness + 1);
    android::LayoutParams lp;
    lp.x = target.x - windowOffset.x;
    lp.y = target.y - windowOffset.y;
    lp.width = target.width;
    lp.height = target.height;
    lp.type = android::LayoutParams::Type::kAccessibilityOverlay;
    decorationOverlayIds_.push_back(wm->addOverlay(std::move(view), lp));
    ++stats_.decorationsDrawn;
    ledger_.recordDecoration();
  }
}

std::vector<Rect> DarpaService::decorationRects() const {
  std::vector<Rect> rects;
  const android::WindowManager* wm = windowManager();
  if (wm == nullptr) return rects;
  for (int id : decorationOverlayIds_) {
    if (const auto bounds = wm->overlayBoundsOnScreen(id)) {
      rects.push_back(*bounds);
    }
  }
  return rects;
}

void DarpaService::clearDecorations() {
  android::WindowManager* wm = windowManager();
  if (wm == nullptr) {
    decorationOverlayIds_.clear();
    return;
  }
  for (int id : decorationOverlayIds_) wm->removeOverlay(id);
  decorationOverlayIds_.clear();
}

}  // namespace darpa::core
